// The paper's §1 motivating example, made measurable: a skip-list priority
// queue where Insert operations parallelize on HTM but RemoveMin operations
// always conflict. Sweeps the Insert/RemoveMin mix and compares all engines;
// HCF uses the per-class configuration described in §2.1 (RemoveMin skips
// the private/visible HTM attempts and goes straight to combining).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "harness/issuers.hpp"
#include "mem/ebr.hpp"
#include "util/table.hpp"

namespace {

using namespace hcf;
using Pq = ds::SkipListPq<std::uint64_t>;

constexpr std::uint64_t kKeyRange = 1 << 20;
constexpr std::uint64_t kPrefill = 64 * 1024;

std::unique_ptr<Pq> make_prefilled() {
  auto pq = std::make_unique<Pq>();
  util::Xoshiro256 rng(12345);
  for (std::uint64_t i = 0; i < kPrefill; ++i) {
    pq->insert(rng.next_bounded(kKeyRange));
  }
  return pq;
}

template <typename Engine>
harness::RunResult run_one(Engine& engine, int insert_pct,
                           std::size_t threads,
                           const harness::DriverOptions& options,
                           std::uint32_t cs_work) {
  return harness::run_timed(
      engine, threads,
      [&](std::size_t t) {
        return harness::PqWorker<Engine>(engine, insert_pct, kKeyRange,
                                         91 + t * 47, cs_work);
      },
      options);
}

harness::RunResult run_named(const std::string& name, int insert_pct,
                             std::size_t threads,
                             const harness::DriverOptions& options,
                             std::uint32_t cs_work) {
  auto pq = make_prefilled();
  harness::RunResult result;
  if (name == "Lock") {
    core::LockEngine<Pq> e(*pq);
    result = run_one(e, insert_pct, threads, options, cs_work);
  } else if (name == "TLE") {
    core::TleEngine<Pq> e(*pq);
    result = run_one(e, insert_pct, threads, options, cs_work);
  } else if (name == "FC") {
    core::FcEngine<Pq> e(*pq);
    result = run_one(e, insert_pct, threads, options, cs_work);
  } else if (name == "SCM") {
    core::ScmEngine<Pq> e(*pq);
    result = run_one(e, insert_pct, threads, options, cs_work);
  } else if (name == "TLE+FC") {
    core::TleFcEngine<Pq> e(*pq);
    result = run_one(e, insert_pct, threads, options, cs_work);
  } else {
    // §2.4: with one publication array per operation type, the paper uses
    // the specialized single-combiner variant — the combiner holds the
    // selection lock for its whole run, so waiting RemoveMins accumulate
    // into large combined batches.
    core::HcfSingleCombinerEngine<Pq> e(*pq, adapters::pq_paper_config(),
                                        adapters::kPqNumArrays);
    result = run_one(e, insert_pct, threads, options, cs_work);
  }
  mem::EbrDomain::instance().drain();
  return result;
}

const char* kEngines[] = {"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"};

}  // namespace

int main(int argc, char** argv) {
  auto opts = hcf::bench::BenchOptions::parse(argc, argv);
  hcf::bench::BenchReport report(opts, "pq_motivation");
  bench::print_header(
      "PQ motivation (paper §1/§3.1)",
      "skip-list priority queue, Insert vs RemoveMin mixes (Mops/s)");

  for (const std::uint32_t work : opts.work_settings()) {
  std::printf("\n=== %s ===\n", work == 0 ? "paper parameters"
                                            : "contention-amplified");
  for (int insert_pct : {100, 50, 20, 0}) {
    std::printf("\n%d%% Insert / %d%% RemoveMin (prefill %llu):\n",
                insert_pct, 100 - insert_pct,
                static_cast<unsigned long long>(kPrefill));
    std::vector<std::string> header{"threads"};
    for (const char* e : kEngines) header.push_back(e);
    util::TextTable table(header);
    for (std::size_t threads : opts.threads) {
      std::vector<std::string> row{std::to_string(threads)};
      for (const char* engine : kEngines) {
        const auto result = run_named(engine, insert_pct, threads,
                                      opts.driver, work);
        report.add(std::to_string(insert_pct) + "i/" +
                       std::to_string(100 - insert_pct) + "rm",
                   engine, threads, work, result);
        row.push_back(util::TextTable::num(result.throughput_mops()));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  }
  return report.finish();
}
