// Ablation of the per-phase HTM trial budget. The paper fixes
// (TryPrivate, TryVisible, TryCombining) = (2, 3, 5) out of a total budget
// of 10 for all experiments; this bench sweeps alternative splits of the
// same total budget — plus the TLE and FC degenerations — on the 40%-Find
// hash-table workload, to show how the split trades speculation against
// combining.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "harness/issuers.hpp"
#include "mem/ebr.hpp"
#include "util/table.hpp"

namespace {

using namespace hcf;
using Table = ds::HashTable<std::uint64_t, std::uint64_t>;
using Engine = core::HcfEngine<Table>;

constexpr std::uint64_t kKeyRange = 16 * 1024;

harness::RunResult run_with_policy(const core::PhasePolicy& insert_policy,
                                   const harness::WorkloadSpec& spec,
                                   std::size_t threads,
                                   const harness::DriverOptions& options) {
  auto table = std::make_unique<Table>(spec.key_range);
  for (std::uint64_t k = 0; k < spec.prefill; ++k) {
    table->insert(k * 2 % spec.key_range, (k * 2 % spec.key_range) * 2 + 1);
  }
  std::vector<core::ClassConfig> classes = {
      {0, core::PhasePolicy::tle_like()},  // Find/Remove as in the paper
      {1, insert_policy},
  };
  Engine engine(*table, classes, 2);
  const auto result = harness::run_timed(
      engine, threads,
      [&](std::size_t t) {
        return harness::HtWorker<Engine>(engine, spec, 67 + t * 29);
      },
      options);
  mem::EbrDomain::instance().drain();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = hcf::bench::BenchOptions::parse(argc, argv);
  hcf::bench::BenchReport report(opts, "ablation_trials");
  bench::print_header(
      "Ablation: phase trial budgets",
      "HT 40% Find; Insert-class (private,visible,combining) splits");

  auto spec = harness::WorkloadSpec::reads(40, kKeyRange);
  spec.cs_work = opts.cs_work >= 0 ? static_cast<std::uint32_t>(opts.cs_work)
                                   : opts.amplified_work;
  std::printf("(cs_work=%u; trial-budget effects need contention)\n",
              spec.cs_work);

  struct Variant {
    const char* name;
    core::PhasePolicy policy;
  };
  const Variant variants[] = {
      {"(2,3,5) paper", core::PhasePolicy{2, 3, 5, true}},
      {"(10,0,0)+announce", core::PhasePolicy{10, 0, 0, true}},
      {"(0,0,10)", core::PhasePolicy{0, 0, 10, true}},
      {"(5,5,0)", core::PhasePolicy{5, 5, 0, true}},
      {"(3,3,4)", core::PhasePolicy{3, 3, 4, true}},
      {"TLE-like", core::PhasePolicy::tle_like()},
      {"FC-like", core::PhasePolicy::fc_like()},
  };

  std::vector<std::string> header{"threads"};
  for (const auto& v : variants) header.push_back(v.name);
  util::TextTable table(header);
  for (std::size_t threads : opts.threads) {
    std::vector<std::string> row{std::to_string(threads)};
    for (const auto& v : variants) {
      const auto result = run_with_policy(v.policy, spec, threads,
                                          opts.driver);
      report.add(spec.label(), v.name, threads, spec.cs_work, result);
      row.push_back(util::TextTable::num(result.throughput_mops()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return report.finish();
}
