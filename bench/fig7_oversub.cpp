// Figure 7 (repo extension, not in the paper): oversubscription behaviour
// of the futex-parking wait tier. Hash table, the Fig 2(c) 40% Find mix,
// sweeping 2..32 threads — deliberately past the core count — with HCF
// under the two interesting wait policies:
//
//   HCF-spinyield   the pre-parking default (spin -> sched_yield forever)
//   HCF-spinpark    spin -> yield -> futex park (PhasePolicy::wait)
//
// Two panels: the paper-parameters run, and a preemption-amplified run
// (WorkloadSpec::cs_preempt) where operations are descheduled mid-flight
// so announced-operation backlogs actually form. Besides throughput we
// report p999 operation latency (DriverOptions::measure_latency): parking
// trades a wake syscall on the critical path for not burning the
// preempted combiner's quantum, which shows up in the tail long before it
// shows up in the mean (DESIGN.md §12, EXPERIMENTS.md "Figure 7").
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "harness/issuers.hpp"
#include "mem/ebr.hpp"
#include "util/parking.hpp"
#include "util/table.hpp"

namespace {

using namespace hcf;
using Table = ds::HashTable<std::uint64_t, std::uint64_t>;

constexpr std::uint64_t kKeyRange = 16 * 1024;

std::unique_ptr<Table> make_prefilled_table(const harness::WorkloadSpec& spec) {
  auto table = std::make_unique<Table>(spec.key_range);
  // Deterministic prefill of every other key up to half the range.
  for (std::uint64_t k = 0; k < spec.prefill; ++k) {
    table->insert(k * 2 % spec.key_range, (k * 2 % spec.key_range) * 2 + 1);
  }
  return table;
}

harness::RunResult run_policy(util::WaitPolicy wait,
                              const harness::WorkloadSpec& spec,
                              std::size_t threads,
                              const harness::DriverOptions& options) {
  auto table = make_prefilled_table(spec);
  core::HcfEngine<Table> engine(*table, adapters::ht_paper_config(),
                                adapters::kHtNumArrays);
  for (std::size_t cls = 0; cls < engine.num_classes(); ++cls) {
    core::PhasePolicy policy = engine.class_config(cls).policy;
    policy.wait = wait;
    engine.set_class_policy(cls, policy);
  }
  auto result = harness::run_timed(
      engine, threads,
      [&](std::size_t t) {
        return harness::HtWorker<core::HcfEngine<Table>>(engine, spec,
                                                         17 + t * 7919);
      },
      options);
  mem::EbrDomain::instance().drain();
  return result;
}

struct Variant {
  const char* name;
  util::WaitPolicy wait;
};
const Variant kVariants[] = {
    {"HCF-spinyield", util::WaitPolicy::SpinYield},
    {"HCF-spinpark", util::WaitPolicy::SpinPark},
};

std::string us(std::uint64_t ns) {
  return hcf::util::TextTable::num(static_cast<double>(ns) / 1000.0);
}

}  // namespace

int main(int argc, char** argv) {
  // Unless the caller picked a sweep, default to the oversubscribed range:
  // parking only differentiates itself once threads outnumber cores.
  bool threads_chosen = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0 || arg == "--quick") {
      threads_chosen = true;
    }
  }
  auto opts = hcf::bench::BenchOptions::parse(argc, argv);
  if (!threads_chosen) opts.threads = {2, 4, 8, 16, 32};
  opts.driver.measure_latency = true;
  hcf::bench::BenchReport report(opts, "fig7_oversub");
  hcf::bench::print_header(
      "Figure 7",
      "oversubscribed hash table (40f mix): wait-policy throughput and tail");

  struct Panel {
    const char* id;
    const char* tag;
    bool preempt;
  };
  const Panel panels[] = {{"7(a)", "paper", false}, {"7(b)", "preempt", true}};

  for (const auto& panel : panels) {
    if (!opts.workload_filter.empty() && opts.workload_filter != panel.tag) {
      continue;
    }
    auto spec = hcf::harness::WorkloadSpec::reads(40, kKeyRange);
    // Preemption (not critical-section width) is the axis of this figure;
    // --cs-work still lets a sweep pin a nonzero width if it wants both.
    spec.cs_work = opts.cs_work > 0 ? static_cast<std::uint32_t>(opts.cs_work)
                                    : 0;
    spec.cs_preempt = panel.preempt;
    std::printf("\nFig %s: workload %s (key range %llu, prefill %llu)%s\n",
                panel.id, spec.label().c_str(),
                static_cast<unsigned long long>(spec.key_range),
                static_cast<unsigned long long>(spec.prefill),
                panel.preempt ? " [preemption-amplified]"
                              : " [paper parameters]");
    hcf::util::TextTable table({"threads", "spinyield Mops", "spinpark Mops",
                                "spinyield p999(us)", "spinpark p999(us)"});
    for (std::size_t threads : opts.threads) {
      std::vector<std::string> row{std::to_string(threads)};
      std::vector<std::string> tails;
      for (const auto& variant : kVariants) {
        const auto result =
            run_policy(variant.wait, spec, threads, opts.driver);
        report.add(spec.label(), variant.name, threads, spec.cs_work, result);
        row.push_back(hcf::util::TextTable::num(result.throughput_mops()));
        tails.push_back(us(result.latency_p999_ns));
      }
      for (auto& t : tails) row.push_back(std::move(t));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return report.finish();
}
