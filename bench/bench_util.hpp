// Shared option parsing and reporting for the figure benchmarks.
//
// Every figure binary accepts:
//   --duration-ms=N     measurement window per configuration (default 300)
//   --warmup-ms=N       warmup before each measurement (default 50)
//   --threads=1,2,4,..  thread counts to sweep (default 1,2,4,8,16)
//   --quick             short run (100ms windows, threads 1,2,4)
//   --extended          adds the paper's beyond-one-socket thread counts
//   --workload=NAME     restrict to one workload where applicable
//   --cs-work=N         fix the critical-section work parameter
//   --json=FILE         also write results as hcf-bench-v1 JSON (report.hpp)
//   --trace=FILE        enable telemetry and write a Chrome trace_event file
//   --report-interval-ms=N  periodic progress lines on stderr mid-window
//
// Unknown options and malformed numbers are hard errors (exit 2): a sweep
// script that typos a flag must fail loudly, not silently run the default
// configuration for an hour.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_export.hpp"
#include "util/table.hpp"

namespace hcf::bench {

[[noreturn]] inline void option_error(const std::string& message) {
  std::fprintf(stderr, "error: %s\n(--help lists the accepted options)\n",
               message.c_str());
  std::exit(2);
}

// Strict decimal parse: the whole token must be a number. std::stol-style
// partial parses ("--threads=4x" -> 4) and uncaught std::invalid_argument
// ("--threads=,") are exactly what this replaces.
inline long parse_number(const std::string& text, const char* flag,
                         long min_value) {
  if (text.empty()) {
    option_error(std::string("empty value for ") + flag);
  }
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) {
    option_error("malformed number '" + text + "' for " + flag);
  }
  if (value < min_value) {
    option_error(std::string(flag) + "=" + text + " is below the minimum (" +
                 std::to_string(min_value) + ")");
  }
  return value;
}

struct BenchOptions {
  harness::DriverOptions driver;
  std::vector<std::size_t> threads{1, 2, 4, 8, 16};
  bool extended = false;
  std::string workload_filter;
  // -1: run both cs_work=0 (paper parameters) and the amplified setting.
  long cs_work = -1;
  std::uint32_t amplified_work = 1000;
  std::string json_path;   // --json=FILE: hcf-bench-v1 output
  std::string trace_path;  // --trace=FILE: Chrome trace_event output

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions opts;
    opts.driver.warmup = std::chrono::milliseconds(50);
    opts.driver.duration = std::chrono::milliseconds(300);
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--duration-ms=", 0) == 0) {
        opts.driver.duration = std::chrono::milliseconds(
            parse_number(arg.substr(14), "--duration-ms", 1));
      } else if (arg.rfind("--warmup-ms=", 0) == 0) {
        opts.driver.warmup = std::chrono::milliseconds(
            parse_number(arg.substr(12), "--warmup-ms", 0));
      } else if (arg.rfind("--report-interval-ms=", 0) == 0) {
        opts.driver.report_interval = std::chrono::milliseconds(
            parse_number(arg.substr(21), "--report-interval-ms", 1));
      } else if (arg.rfind("--threads=", 0) == 0) {
        opts.threads.clear();
        const std::string list = arg.substr(10);
        std::size_t pos = 0;
        while (pos <= list.size()) {
          std::size_t comma = list.find(',', pos);
          if (comma == std::string::npos) comma = list.size();
          opts.threads.push_back(static_cast<std::size_t>(
              parse_number(list.substr(pos, comma - pos), "--threads", 1)));
          pos = comma + 1;
        }
      } else if (arg == "--quick") {
        opts.driver.duration = std::chrono::milliseconds(100);
        opts.driver.warmup = std::chrono::milliseconds(20);
        opts.threads = {1, 2, 4};
      } else if (arg.rfind("--cs-work=", 0) == 0) {
        opts.cs_work = parse_number(arg.substr(10), "--cs-work", 0);
      } else if (arg == "--extended") {
        opts.extended = true;
      } else if (arg.rfind("--workload=", 0) == 0) {
        opts.workload_filter = arg.substr(11);
      } else if (arg.rfind("--json=", 0) == 0) {
        opts.json_path = arg.substr(7);
        if (opts.json_path.empty()) option_error("empty value for --json");
      } else if (arg.rfind("--trace=", 0) == 0) {
        opts.trace_path = arg.substr(8);
        if (opts.trace_path.empty()) option_error("empty value for --trace");
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "options: --duration-ms=N --warmup-ms=N --threads=a,b,c "
            "--quick --extended --workload=NAME --cs-work=N "
            "--json=FILE --trace=FILE --report-interval-ms=N\n");
        std::exit(0);
      } else {
        option_error("unknown option '" + arg + "'");
      }
    }
    if (opts.extended) {
      // The beyond-one-socket counts, skipping any the user already listed.
      for (const std::size_t extra : {std::size_t{36}, std::size_t{72}}) {
        bool present = false;
        for (const std::size_t t : opts.threads) {
          if (t == extra) {
            present = true;
            break;
          }
        }
        if (!present) opts.threads.push_back(extra);
      }
    }
    return opts;
  }

  // The cs_work settings a figure bench should sweep: either the single
  // value requested on the command line, or {paper-verbatim, amplified}.
  std::vector<std::uint32_t> work_settings() const {
    if (cs_work >= 0) return {static_cast<std::uint32_t>(cs_work)};
    return {0, amplified_work};
  }
};

inline void print_header(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(software-simulated HTM; see DESIGN.md for the substitution\n");
  std::printf(" notes and EXPERIMENTS.md for paper-vs-measured analysis)\n");
  std::printf("==============================================================\n");
}

// Collects rows for --json and drives telemetry for --trace. Construct one
// per binary right after BenchOptions::parse, feed it every RunResult, and
// return finish() from main.
class BenchReport {
 public:
  BenchReport(const BenchOptions& opts, std::string bench_name)
      : json_path_(opts.json_path),
        trace_path_(opts.trace_path),
        report_(std::move(bench_name)) {
    if (!trace_path_.empty()) {
      if (!telemetry::kCompiledIn) {
        std::fprintf(stderr,
                     "warning: --trace requested but telemetry is compiled "
                     "out (HCF_TELEMETRY=OFF); the trace will be empty\n");
      }
      telemetry::set_enabled(true);
    }
  }

  void add(const std::string& workload, const std::string& engine,
           std::size_t threads, std::uint32_t cs_work,
           const harness::RunResult& result) {
    if (!json_path_.empty()) {
      report_.add_row(workload, engine, threads, cs_work, result);
    }
  }

  // Writes the requested artifacts; the return value is main()'s exit code.
  int finish() {
    int rc = 0;
    if (!json_path_.empty() && !report_.write_file(json_path_)) rc = 1;
    if (!trace_path_.empty()) {
      telemetry::set_enabled(false);
      std::ofstream out(trace_path_);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_path_.c_str());
        rc = 1;
      } else {
        telemetry::write_chrome_trace(out);
        telemetry::write_summary(std::cerr);
      }
    }
    return rc;
  }

 private:
  std::string json_path_;
  std::string trace_path_;
  harness::JsonReport report_;
};

}  // namespace hcf::bench
