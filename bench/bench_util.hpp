// Shared option parsing and reporting for the figure benchmarks.
//
// Every figure binary accepts:
//   --duration-ms=N     measurement window per configuration (default 300)
//   --warmup-ms=N       warmup before each measurement (default 50)
//   --threads=1,2,4,..  thread counts to sweep (default 1,2,4,8,16)
//   --quick             short run (100ms windows, threads 1,2,4)
//   --extended          adds the paper's beyond-one-socket thread counts
//   --workload=NAME     restrict to one workload where applicable
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/driver.hpp"
#include "util/table.hpp"

namespace hcf::bench {

struct BenchOptions {
  harness::DriverOptions driver;
  std::vector<std::size_t> threads{1, 2, 4, 8, 16};
  bool extended = false;
  std::string workload_filter;
  // -1: run both cs_work=0 (paper parameters) and the amplified setting.
  long cs_work = -1;
  std::uint32_t amplified_work = 1000;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions opts;
    opts.driver.warmup = std::chrono::milliseconds(50);
    opts.driver.duration = std::chrono::milliseconds(300);
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--duration-ms=", 0) == 0) {
        opts.driver.duration =
            std::chrono::milliseconds(std::stol(arg.substr(14)));
      } else if (arg.rfind("--warmup-ms=", 0) == 0) {
        opts.driver.warmup =
            std::chrono::milliseconds(std::stol(arg.substr(12)));
      } else if (arg.rfind("--threads=", 0) == 0) {
        opts.threads.clear();
        std::string list = arg.substr(10);
        std::size_t pos = 0;
        while (pos < list.size()) {
          std::size_t comma = list.find(',', pos);
          if (comma == std::string::npos) comma = list.size();
          opts.threads.push_back(std::stoul(list.substr(pos, comma - pos)));
          pos = comma + 1;
        }
      } else if (arg == "--quick") {
        opts.driver.duration = std::chrono::milliseconds(100);
        opts.driver.warmup = std::chrono::milliseconds(20);
        opts.threads = {1, 2, 4};
      } else if (arg.rfind("--cs-work=", 0) == 0) {
        opts.cs_work = std::stol(arg.substr(10));
      } else if (arg == "--extended") {
        opts.extended = true;
      } else if (arg.rfind("--workload=", 0) == 0) {
        opts.workload_filter = arg.substr(11);
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "options: --duration-ms=N --warmup-ms=N --threads=a,b,c "
            "--quick --extended --workload=NAME --cs-work=N\n");
        std::exit(0);
      }
    }
    if (opts.extended) {
      opts.threads.push_back(36);
      opts.threads.push_back(72);
    }
    return opts;
  }

  // The cs_work settings a figure bench should sweep: either the single
  // value requested on the command line, or {paper-verbatim, amplified}.
  std::vector<std::uint32_t> work_settings() const {
    if (cs_work >= 0) return {static_cast<std::uint32_t>(cs_work)};
    return {0, amplified_work};
  }
};

inline void print_header(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(software-simulated HTM; see DESIGN.md for the substitution\n");
  std::printf(" notes and EXPERIMENTS.md for paper-vs-measured analysis)\n");
  std::printf("==============================================================\n");
}

}  // namespace hcf::bench
