// Figure 6 (beyond the paper): sharded HCF scalability — throughput of
// ShardedEngine<HcfEngine> over the fig2 hash-table workload (40% Find,
// remainder split between Insert and Remove, 16K keys prefilled to half)
// as the shard count sweeps 1/2/4/8, against the flat single-lock HCF
// engine. Each shard owns a slice of the Fibonacci-hashed key space with
// its own elidable lock, publication arrays, and combiners, so insert
// traffic that serializes on the flat engine's single table-list head and
// selection lock spreads across independent conflict domains. The total
// bucket count is held constant (16K split across shards) so the sweep
// isolates synchronization, not table geometry.
//
// Three panels per run:
//   [paper parameters]      — the fig2 mix verbatim.
//   [contention-amplified]  — cs_work widens transaction windows
//                             (EXPERIMENTS.md, "contention amplification").
//   [preemption-amplified]  — cs_preempt yields mid-operation, modeling a
//                             loaded machine where transactions are
//                             routinely descheduled in flight. On few-core
//                             hosts this panel is the only one in which
//                             transactions overlap in time at all, so it is
//                             where the shard sweep separates: every insert
//                             writes the table-list head, so the flat
//                             engine aborts and serializes while shards
//                             split the conflict domain N ways
//                             (EXPERIMENTS.md, "preemption amplification").
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "harness/issuers.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace hcf;
using Table = ds::HashTable<std::uint64_t, std::uint64_t>;
using Sharded = core::ShardedEngine<core::HcfEngine<Table>>;

constexpr std::uint64_t kKeyRange = 16 * 1024;
constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};

struct ShardedTables {
  std::vector<std::unique_ptr<Table>> tables;
  std::vector<Table*> ptrs;
};

// Same deterministic prefill as fig2 (every other key up to half the
// range), with each key routed to the shard the engine will route it to.
ShardedTables make_prefilled_shards(const harness::WorkloadSpec& spec,
                                    std::size_t shards) {
  ShardedTables out;
  const std::uint64_t buckets =
      std::max<std::uint64_t>(spec.key_range / shards, 64);
  for (std::size_t s = 0; s < shards; ++s) {
    out.tables.push_back(std::make_unique<Table>(buckets));
    out.ptrs.push_back(out.tables.back().get());
  }
  for (std::uint64_t k = 0; k < spec.prefill; ++k) {
    const std::uint64_t key = k * 2 % spec.key_range;
    const std::size_t s = Sharded::route(util::mix64(key), shards);
    out.tables[s]->insert(key, key * 2 + 1);
  }
  return out;
}

template <typename Engine>
harness::RunResult run_one(Engine& engine, const harness::WorkloadSpec& spec,
                           std::size_t threads,
                           const harness::DriverOptions& options) {
  return harness::run_timed(
      engine, threads,
      [&](std::size_t t) {
        return harness::HtWorker<Engine>(engine, spec, 17 + t * 7919);
      },
      options);
}

harness::RunResult run_flat(const harness::WorkloadSpec& spec,
                            std::size_t threads,
                            const harness::DriverOptions& options) {
  auto table = std::make_unique<Table>(spec.key_range);
  for (std::uint64_t k = 0; k < spec.prefill; ++k) {
    table->insert(k * 2 % spec.key_range, (k * 2 % spec.key_range) * 2 + 1);
  }
  core::HcfEngine<Table> e(*table, adapters::ht_paper_config(),
                           adapters::kHtNumArrays);
  const auto result = run_one(e, spec, threads, options);
  mem::EbrDomain::instance().drain();
  return result;
}

harness::RunResult run_sharded(std::size_t shards,
                               const harness::WorkloadSpec& spec,
                               std::size_t threads,
                               const harness::DriverOptions& options) {
  auto setup = make_prefilled_shards(spec, shards);
  Sharded engine(std::span<Table* const>(setup.ptrs),
                 adapters::ht_paper_config(), adapters::kHtNumArrays);
  const auto result = run_one(engine, spec, threads, options);
  mem::EbrDomain::instance().drain();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = hcf::bench::BenchOptions::parse(argc, argv);
  hcf::bench::BenchReport report(opts, "fig6_sharded");
  hcf::bench::print_header(
      "Figure 6", "sharded HCF throughput (Mops/s), 40% find, 16K keys");

  const auto base_spec = hcf::harness::WorkloadSpec::reads(40, kKeyRange);
  if (!opts.workload_filter.empty() &&
      opts.workload_filter != base_spec.label() &&
      opts.workload_filter != "40f") {
    return report.finish();
  }

  struct Panel {
    hcf::harness::WorkloadSpec spec;
    const char* tag;
  };
  std::vector<Panel> panels;
  for (const std::uint32_t work : opts.work_settings()) {
    auto spec = base_spec;
    spec.cs_work = work;
    panels.push_back(
        {spec, work == 0 ? " [paper parameters]" : " [contention-amplified]"});
  }
  {
    auto spec = base_spec;
    spec.cs_preempt = true;
    panels.push_back({spec, " [preemption-amplified]"});
  }

  for (const Panel& panel : panels) {
    const auto& spec = panel.spec;
    const std::uint32_t work = spec.cs_work;
    std::printf("\nFig 6: workload %s (key range %llu, prefill %llu)%s\n",
                spec.label().c_str(),
                static_cast<unsigned long long>(spec.key_range),
                static_cast<unsigned long long>(spec.prefill), panel.tag);
    std::vector<std::string> header{"threads", "HCF"};
    for (const std::size_t shards : kShardCounts) {
      header.push_back("HCF-s" + std::to_string(shards));
    }
    hcf::util::TextTable table(header);
    double s1_at_max = 0.0, s8_at_max = 0.0;
    for (std::size_t threads : opts.threads) {
      std::vector<std::string> row{std::to_string(threads)};
      const auto flat = run_flat(spec, threads, opts.driver);
      report.add(spec.label(), "HCF", threads, work, flat);
      row.push_back(hcf::util::TextTable::num(flat.throughput_mops()));
      for (const std::size_t shards : kShardCounts) {
        const auto result = run_sharded(shards, spec, threads, opts.driver);
        report.add(spec.label(), "HCF-s" + std::to_string(shards), threads,
                   work, result);
        row.push_back(hcf::util::TextTable::num(result.throughput_mops()));
        if (threads == opts.threads.back()) {
          if (shards == 1) s1_at_max = result.throughput_mops();
          if (shards == 8) s8_at_max = result.throughput_mops();
        }
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    if (s1_at_max > 0.0) {
      std::printf("8-shard vs 1-shard gain at %zu threads: %.2fx\n",
                  opts.threads.back(), s8_at_max / s1_at_max);
    }
  }
  return report.finish();
}
