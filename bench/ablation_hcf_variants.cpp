// Ablation of the HCF design choices the paper calls out (§2.4, §3.4):
//
//   HCF            — paper configuration (same-subtree selection, sorted
//                    combine + eliminate run_multi)
//   HCF-nocomb     — selection kept, but ops applied one-by-one (no
//                    combining/elimination), the §3.4 ablation
//   HCF-help-all   — one array, should_help always true (no subtree
//                    filtering)
//   HCF-1C         — specialized single-combiner variant (selection lock
//                    held for the whole combining phase)
//
// Workload: the Fig. 5(a) setting (AVL, 0% Find, Zipf 0.9) where combining
// matters most.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "harness/issuers.hpp"
#include "mem/ebr.hpp"
#include "util/table.hpp"

namespace {

using namespace hcf;
using Tree = ds::AvlTree<std::uint64_t>;
using K = std::uint64_t;

constexpr std::uint64_t kKeyRange = 1024;

// Variant ops: help-all (ignore the subtree hint).
template <typename Base>
class HelpAllOp final : public Base {
 public:
  using Base::Base;
  bool should_help(const core::Operation<Tree>&) const override {
    return true;
  }
};

std::unique_ptr<Tree> make_prefilled_tree() {
  auto tree = std::make_unique<Tree>();
  for (std::uint64_t k = 0; k < kKeyRange; k += 2) tree->insert(k);
  return tree;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = hcf::bench::BenchOptions::parse(argc, argv);
  hcf::bench::BenchReport report(opts, "ablation_hcf_variants");
  bench::print_header("Ablation: HCF variants",
                      "AVL set, 0% Find, Zipf 0.9 (Mops/s)");

  auto spec = harness::WorkloadSpec::reads(0, kKeyRange,
                                           harness::KeyDist::Zipfian, 0.9);
  spec.cs_work = opts.cs_work >= 0 ? static_cast<std::uint32_t>(opts.cs_work)
                                   : opts.amplified_work;
  std::printf("(cs_work=%u; variant effects need contention)\n",
              spec.cs_work);
  util::TextTable table({"threads", "HCF", "HCF-nocomb", "HCF-help-all",
                         "HCF-1C"});
  for (std::size_t threads : opts.threads) {
    std::vector<std::string> row{std::to_string(threads)};

    {  // paper configuration
      auto tree = make_prefilled_tree();
      core::HcfEngine<Tree> e(*tree, adapters::avl_paper_config(), 1);
      const auto r = harness::run_timed(
          e, threads,
          [&](std::size_t t) {
            return harness::AvlWorker<core::HcfEngine<Tree>>(e, spec,
                                                             11 + t);
          },
          opts.driver);
      report.add(spec.label(), "HCF", threads, spec.cs_work, r);
      row.push_back(util::TextTable::num(r.throughput_mops()));
      mem::EbrDomain::instance().drain();
    }
    {  // no combining/elimination
      auto tree = make_prefilled_tree();
      core::HcfEngine<Tree> e(*tree, adapters::avl_paper_config(), 1);
      using NC = adapters::AvlNoCombine<K>;
      const auto r = harness::run_timed(
          e, threads,
          [&](std::size_t t) {
            return harness::AvlWorker<core::HcfEngine<Tree>,
                                      typename NC::Contains,
                                      typename NC::Insert,
                                      typename NC::Remove>(e, spec, 23 + t);
          },
          opts.driver);
      report.add(spec.label(), "HCF-nocomb", threads, spec.cs_work, r);
      row.push_back(util::TextTable::num(r.throughput_mops()));
      mem::EbrDomain::instance().drain();
    }
    {  // help-all (no subtree filtering)
      auto tree = make_prefilled_tree();
      core::HcfEngine<Tree> e(*tree, adapters::avl_paper_config(), 1);
      const auto r = harness::run_timed(
          e, threads,
          [&](std::size_t t) {
            return harness::AvlWorker<core::HcfEngine<Tree>,
                                      HelpAllOp<adapters::AvlContainsOp<K>>,
                                      HelpAllOp<adapters::AvlInsertOp<K>>,
                                      HelpAllOp<adapters::AvlRemoveOp<K>>>(
                e, spec, 37 + t);
          },
          opts.driver);
      report.add(spec.label(), "HCF-help-all", threads, spec.cs_work, r);
      row.push_back(util::TextTable::num(r.throughput_mops()));
      mem::EbrDomain::instance().drain();
    }
    {  // single-combiner specialization
      auto tree = make_prefilled_tree();
      core::HcfSingleCombinerEngine<Tree> e(*tree,
                                            adapters::avl_paper_config(), 1);
      const auto r = harness::run_timed(
          e, threads,
          [&](std::size_t t) {
            return harness::AvlWorker<core::HcfSingleCombinerEngine<Tree>>(
                e, spec, 41 + t);
          },
          opts.driver);
      report.add(spec.label(), "HCF-1C", threads, spec.cs_work, r);
      row.push_back(util::TextTable::num(r.throughput_mops()));
      mem::EbrDomain::instance().drain();
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return report.finish();
}
