// Figure 4 reproduction (per DESIGN.md's substitution note): the paper
// reports lock-acquisition counts, combining degree, and L1-D cache-miss
// rates for the 40%-Find hash-table workload. Without PMU access we report
// the simulator's equivalents:
//
//   * lock acquisitions per 1000 ops   (same metric as the paper)
//   * combining degree                 (same metric as the paper)
//   * instrumented shared accesses/op  (cache-traffic proxy)
//   * HTM aborts per op                (explains where time is lost)
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "harness/issuers.hpp"
#include "mem/ebr.hpp"
#include "util/table.hpp"

namespace {

using namespace hcf;
using Table = ds::HashTable<std::uint64_t, std::uint64_t>;

constexpr std::uint64_t kKeyRange = 16 * 1024;

template <typename Engine>
harness::RunResult run_one(Engine& engine, const harness::WorkloadSpec& spec,
                           std::size_t threads,
                           const harness::DriverOptions& options) {
  harness::DriverOptions with_latency = options;
  with_latency.measure_latency = true;
  return harness::run_timed(
      engine, threads,
      [&](std::size_t t) {
        return harness::HtWorker<Engine>(engine, spec, 53 + t * 13);
      },
      with_latency);
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = hcf::bench::BenchOptions::parse(argc, argv);
  hcf::bench::BenchReport report(opts, "fig4_combining_stats");
  bench::print_header(
      "Figure 4",
      "lock acquisitions, combining degree, cache-traffic proxy (HT, 40% Find)");

  const char* engines[] = {"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"};

  for (const std::uint32_t work : opts.work_settings()) {
  auto spec = harness::WorkloadSpec::reads(40, kKeyRange);
  spec.cs_work = work;
  std::printf("\n=== %s ===\n", work == 0 ? "paper parameters"
                                            : "contention-amplified");
  for (const char* name : engines) {
    std::printf("\n%s:\n", name);
    util::TextTable table({"threads", "mops", "locks/kop", "combine-degree",
                           "aborts/op", "shared-acc/op", "p50us", "p99us"});
    for (std::size_t threads : opts.threads) {
      auto ds = std::make_unique<Table>(spec.key_range);
      for (std::uint64_t k = 0; k < spec.prefill; ++k) {
        ds->insert(k * 2 % spec.key_range, (k * 2 % spec.key_range) * 2 + 1);
      }
      harness::RunResult result;
      const std::string n = name;
      if (n == "Lock") {
        core::LockEngine<Table> e(*ds);
        result = run_one(e, spec, threads, opts.driver);
      } else if (n == "TLE") {
        core::TleEngine<Table> e(*ds);
        result = run_one(e, spec, threads, opts.driver);
      } else if (n == "FC") {
        core::FcEngine<Table> e(*ds);
        result = run_one(e, spec, threads, opts.driver);
      } else if (n == "SCM") {
        core::ScmEngine<Table> e(*ds);
        result = run_one(e, spec, threads, opts.driver);
      } else if (n == "TLE+FC") {
        core::TleFcEngine<Table> e(*ds);
        result = run_one(e, spec, threads, opts.driver);
      } else {
        core::HcfEngine<Table> e(*ds, adapters::ht_paper_config(),
                                 adapters::kHtNumArrays);
        result = run_one(e, spec, threads, opts.driver);
      }
      report.add(spec.label(), name, threads, work, result);
      table.add_row({std::to_string(threads),
                     util::TextTable::num(result.throughput_mops()),
                     util::TextTable::num(result.lock_rate_per_kop()),
                     util::TextTable::num(result.engine.combining_degree()),
                     util::TextTable::num(result.aborts_per_op()),
                     util::TextTable::num(result.shared_accesses_per_op()),
                     util::TextTable::num(
                         static_cast<double>(result.latency_p50_ns) / 1000.0),
                     util::TextTable::num(
                         static_cast<double>(result.latency_p99_ns) / 1000.0)});
      mem::EbrDomain::instance().drain();
    }
    table.print(std::cout);
  }
  }
  return report.finish();
}
