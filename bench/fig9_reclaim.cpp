// Figure 9 (beyond the paper): batched cross-thread reclamation.
//
// The paper's combining engines make one thread free nodes another thread
// allocated — every combined Remove is a cross-thread retirement. This
// figure measures what the pooled allocator (mem/pool.hpp, DESIGN.md §14)
// buys over the seed EBR path on exactly that pattern, in two panels:
//
//   (a) retire-throughput micro: pairs of threads exchange freshly
//       allocated nodes through SPSC rings and retire their partner's —
//       every retire is foreign, the combiner-retires pattern distilled.
//       Variants: legacy (raw new + EbrDomain deleter batches) vs pooled
//       (mem::alloc / mem::retire), each in local and cross-thread flavor.
//       The acceptance bar for this PR is pooled-remote >= 2x legacy-remote.
//
//   (b) node-heavy engine workloads: sorted-list and AVL sets under a
//       0%-find mix (every op allocates or retires a node), on the sharded
//       meta-engine at 1 and 8 shards. Sharding multiplies independent
//       combiners, so more retires land on foreign pools; the reclamation
//       JSON object (--json) records how much traffic stayed local vs
//       crossed, and with what batching.
#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

#include "adapters/avl_ops.hpp"
#include "adapters/list_ops.hpp"
#include "bench_util.hpp"
#include "core/engine.hpp"
#include "harness/workload.hpp"
#include "mem/alloc.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace hcf;

// ---- Panel (a): retire-throughput micro ------------------------------------

// ~40 B payload: class-0 pooled block, trivially destructible — eligible
// for the pre-grace remote-retire path when freed by a non-owner.
struct MicroNode {
  std::uint64_t payload[5];
};
static_assert(std::is_trivially_destructible_v<MicroNode>);

// Single-producer single-consumer handoff ring (null = empty slot). The
// partner thread allocates into it; we retire out of it. Bounded so a
// descheduled consumer exerts back-pressure instead of unbounded growth.
// The capacity must cover a whole scheduling quantum of ops on an
// oversubscribed host: with a small ring, a thread drains its ring and
// fills its partner's within the first sliver of its quantum and then
// self-retires for the rest — quietly turning the cross-thread panel into
// a second copy of the local one.
class HandoffRing {
 public:
  static constexpr std::size_t kCap = 1u << 16;

  bool push(void* p) noexcept {
    auto& slot = slots_[head_ & (kCap - 1)];
    if (slot.load(std::memory_order_acquire) != nullptr) return false;
    slot.store(p, std::memory_order_release);
    ++head_;
    return true;
  }

  void* pop() noexcept {
    auto& slot = slots_[tail_ & (kCap - 1)];
    void* p = slot.load(std::memory_order_acquire);
    if (p == nullptr) return nullptr;
    slot.store(nullptr, std::memory_order_release);
    ++tail_;
    return p;
  }

 private:
  std::atomic<void*> slots_[kCap] = {};
  alignas(64) std::size_t head_ = 0;  // producer-side only
  alignas(64) std::size_t tail_ = 0;  // consumer-side only
};

// run_timed only needs stats plumbing from its "engine"; the micro has no
// engine, so give it an inert one and let the driver's reclamation
// snapshot do the measuring.
struct MicroEngine {
  void reset_stats() {}
  core::EngineStatsSnapshot stats_snapshot() const { return {}; }
  std::uint64_t lock_acquisitions() const { return 0; }
};

enum class Alloc : std::uint8_t { Legacy, Pooled };
enum class Flow : std::uint8_t { Local, Remote };

const char* variant_name(Alloc a, Flow f) {
  if (a == Alloc::Legacy) {
    return f == Flow::Local ? "legacy-local" : "legacy-remote";
  }
  return f == Flow::Local ? "pooled-local" : "pooled-remote";
}

void* micro_alloc(Alloc a) {
  if (a == Alloc::Legacy) return new MicroNode{};
  return mem::alloc<MicroNode>();
}

void micro_retire(Alloc a, void* p) {
  auto* n = static_cast<MicroNode*>(p);
  if (a == Alloc::Legacy) {
    mem::EbrDomain::instance().retire(n);  // deleter runs `delete`
  } else {
    mem::retire(n);  // foreign + trivially destructible -> remote path
  }
}

// One micro worker op: retire one node our partner allocated (when one is
// waiting), then allocate one and hand it over. If the partner's ring is
// full — or there is no partner (odd thread counts, Flow::Local) — retire
// our own node instead, so allocation and retirement stay balanced and
// memory stays bounded regardless of scheduling.
harness::RunResult run_micro(Alloc alloc_kind, Flow flow,
                             std::size_t threads,
                             const harness::DriverOptions& options) {
  std::vector<std::unique_ptr<HandoffRing>> rings;
  for (std::size_t t = 0; t < threads; ++t) {
    rings.push_back(std::make_unique<HandoffRing>());
  }
  MicroEngine engine;
  auto result = harness::run_timed(
      engine, threads,
      [&](std::size_t t) {
        const std::size_t partner = t ^ 1;
        const bool paired = flow == Flow::Remote && partner < threads;
        HandoffRing* in = rings[t].get();
        HandoffRing* out = paired ? rings[partner].get() : nullptr;
        return [alloc_kind, in, out] {
          if (out != nullptr) {
            if (void* p = in->pop()) micro_retire(alloc_kind, p);
            void* mine = micro_alloc(alloc_kind);
            if (!out->push(mine)) micro_retire(alloc_kind, mine);
          } else {
            micro_retire(alloc_kind, micro_alloc(alloc_kind));
          }
        };
      },
      options);
  // Workers stop with nodes still in flight; retire the leftovers (foreign
  // to this thread — the remote path again) and converge.
  for (auto& ring : rings) {
    while (void* p = ring->pop()) micro_retire(alloc_kind, p);
  }
  mem::flush_remote_frees();
  mem::EbrDomain::instance().drain();
  return result;
}

// ---- Panel (b): node-heavy engine workloads --------------------------------

using List = ds::SortedList<std::uint64_t>;
using ShardedList = core::ShardedEngine<core::HcfEngine<List>>;
using Tree = ds::AvlTree<std::uint64_t>;
using ShardedAvl = core::ShardedEngine<core::HcfEngine<Tree>>;

constexpr std::uint64_t kListKeyRange = 512;  // list is O(n): keep it modest
constexpr std::uint64_t kAvlKeyRange = 4096;
constexpr std::size_t kShardCounts[] = {1, 8};

template <typename ContainsOp, typename InsertOp, typename RemoveOp,
          typename Engine>
class NodeChurnWorker {
 public:
  NodeChurnWorker(Engine& engine, const harness::WorkloadSpec& spec,
                  std::uint64_t seed)
      : engine_(engine), spec_(spec), keys_(spec, seed) {
    contains_.set_sharded(true);
    insert_.set_sharded(true);
    remove_.set_sharded(true);
    contains_.set_work(spec.cs_work);
    insert_.set_work(spec.cs_work);
    remove_.set_work(spec.cs_work);
  }

  void operator()() {
    const std::uint64_t key = keys_.next_key();
    const int p = keys_.next_percent();
    if (p < spec_.find_pct) {
      contains_.set(key);
      engine_.execute(contains_);
    } else if (p < spec_.find_pct + spec_.insert_pct) {
      insert_.set(key);
      engine_.execute(insert_);
    } else {
      remove_.set(key);
      engine_.execute(remove_);
    }
  }

 private:
  Engine& engine_;
  harness::WorkloadSpec spec_;
  harness::KeyGenerator keys_;
  ContainsOp contains_;
  InsertOp insert_;
  RemoveOp remove_;
};

template <typename DS, typename Sharded, typename Worker>
harness::RunResult run_node_heavy(std::size_t shards,
                                  const harness::WorkloadSpec& spec,
                                  std::size_t threads,
                                  const harness::DriverOptions& options,
                                  std::vector<core::ClassConfig> classes) {
  std::vector<std::unique_ptr<DS>> owned;
  std::vector<DS*> ptrs;
  for (std::size_t s = 0; s < shards; ++s) {
    owned.push_back(std::make_unique<DS>());
    ptrs.push_back(owned.back().get());
  }
  for (std::uint64_t k = 0; k < spec.key_range; k += 2) {
    ptrs[Sharded::route(util::mix64(k), shards)]->insert(k);
  }
  Sharded engine(std::span<DS* const>(ptrs), std::move(classes));
  auto result = harness::run_timed(
      engine, threads,
      [&](std::size_t t) { return Worker(engine, spec, 23 + t * 7919); },
      options);
  mem::EbrDomain::instance().drain();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = hcf::bench::BenchOptions::parse(argc, argv);
  hcf::bench::BenchReport report(opts, "fig9_reclaim");
  hcf::bench::print_header(
      "Figure 9", "batched cross-thread reclamation (Mops/s)");

  using hcf::harness::RunResult;

  // ---- panel (a) ----
  const bool micro_wanted =
      opts.workload_filter.empty() || opts.workload_filter == "retire-micro";
  double legacy_remote_at_max = 0.0, pooled_remote_at_max = 0.0;
  if (micro_wanted) {
    std::printf("\nFig 9a: retire micro — alloc+retire round trips, "
                "partner pairs exchange nodes\n");
    hcf::util::TextTable table({"threads", "legacy-local", "legacy-remote",
                                "pooled-local", "pooled-remote"});
    for (const std::size_t threads : opts.threads) {
      std::vector<std::string> row{std::to_string(threads)};
      for (const Alloc a : {Alloc::Legacy, Alloc::Pooled}) {
        for (const Flow f : {Flow::Local, Flow::Remote}) {
          const RunResult r = run_micro(a, f, threads, opts.driver);
          report.add("retire-micro", variant_name(a, f), threads, 0, r);
          row.push_back(hcf::util::TextTable::num(r.throughput_mops()));
          if (threads == opts.threads.back() && f == Flow::Remote) {
            (a == Alloc::Legacy ? legacy_remote_at_max
                                : pooled_remote_at_max) =
                r.throughput_mops();
          }
        }
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    if (legacy_remote_at_max > 0.0) {
      std::printf(
          "pooled vs legacy cross-thread retire gain at %zu threads: %.2fx\n",
          opts.threads.back(), pooled_remote_at_max / legacy_remote_at_max);
    }
  }

  // ---- panel (b) ----
  auto list_spec = hcf::harness::WorkloadSpec::reads(0, kListKeyRange);
  auto avl_spec = hcf::harness::WorkloadSpec::reads(0, kAvlKeyRange);
  if (opts.cs_work > 0) {
    list_spec.cs_work = static_cast<std::uint32_t>(opts.cs_work);
    avl_spec.cs_work = static_cast<std::uint32_t>(opts.cs_work);
  }

  struct Structure {
    const char* name;
    const hcf::harness::WorkloadSpec& spec;
    RunResult (*run)(std::size_t, const hcf::harness::WorkloadSpec&,
                     std::size_t, const hcf::harness::DriverOptions&);
  };
  const Structure structures[] = {
      {"list", list_spec,
       [](std::size_t shards, const hcf::harness::WorkloadSpec& spec,
          std::size_t threads, const hcf::harness::DriverOptions& options) {
         using Worker = NodeChurnWorker<
             hcf::adapters::ListContainsOp<std::uint64_t>,
             hcf::adapters::ListInsertOp<std::uint64_t>,
             hcf::adapters::ListRemoveOp<std::uint64_t>, ShardedList>;
         return run_node_heavy<List, ShardedList, Worker>(
             shards, spec, threads, options,
             hcf::adapters::list_paper_config());
       }},
      {"avl", avl_spec,
       [](std::size_t shards, const hcf::harness::WorkloadSpec& spec,
          std::size_t threads, const hcf::harness::DriverOptions& options) {
         using Worker = NodeChurnWorker<
             hcf::adapters::AvlContainsOp<std::uint64_t>,
             hcf::adapters::AvlInsertOp<std::uint64_t>,
             hcf::adapters::AvlRemoveOp<std::uint64_t>, ShardedAvl>;
         return run_node_heavy<Tree, ShardedAvl, Worker>(
             shards, spec, threads, options,
             hcf::adapters::avl_paper_config());
       }},
  };

  for (const Structure& s : structures) {
    if (!opts.workload_filter.empty() && opts.workload_filter != s.name) {
      continue;
    }
    std::printf("\nFig 9b: %s set, %s (key range %llu) — node churn across "
                "shards\n",
                s.name, s.spec.label().c_str(),
                static_cast<unsigned long long>(s.spec.key_range));
    std::vector<std::string> header{"threads"};
    for (const std::size_t shards : kShardCounts) {
      header.push_back(std::string(s.name) + "-s" + std::to_string(shards));
    }
    hcf::util::TextTable table(header);
    for (const std::size_t threads : opts.threads) {
      std::vector<std::string> row{std::to_string(threads)};
      for (const std::size_t shards : kShardCounts) {
        const RunResult r = s.run(shards, s.spec, threads, opts.driver);
        report.add(s.name, std::string(s.name) + "-s" + std::to_string(shards),
                   threads, s.spec.cs_work, r);
        row.push_back(hcf::util::TextTable::num(r.throughput_mops()));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return report.finish();
}
