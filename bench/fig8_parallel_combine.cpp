// Figure 8 (repo extension, not in the paper): parallel combining —
// delegating disjoint batch groups to waiting clients (DESIGN.md §13).
// Hash table, an insert-heavy 20% Find mix so the insert class actually
// combines, comparing HCF with the serial combiner against HCF with
// delegation enabled (PhasePolicy::delegate + the hash table's seeded
// commutativity graph, adapters::ht_seed_commutes):
//
//   HCF-serial     the combiner applies every selected group itself
//   HCF-delegate   the combiner hands disjoint key-range groups to the
//                  waiting owners; unclaimed groups fall back to serial
//
// Two panels, mirroring Figure 6/7's methodology: the paper-parameters
// run, and a preemption-amplified run (WorkloadSpec::cs_preempt) where
// combiners are descheduled mid-session — exactly the regime where a
// serial combiner becomes the convoy head and spreading the apply work
// across blocked clients pays. Besides throughput we report combine-round
// rate (rounds/s): delegation's claim is that the *session* retires
// faster because groups apply in parallel, which shows up as more rounds
// per second before it shows up in end-to-end Mops.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "harness/issuers.hpp"
#include "mem/ebr.hpp"
#include "util/table.hpp"

namespace {

using namespace hcf;
using Table = ds::HashTable<std::uint64_t, std::uint64_t>;

constexpr std::uint64_t kKeyRange = 16 * 1024;

std::unique_ptr<Table> make_prefilled_table(const harness::WorkloadSpec& spec) {
  auto table = std::make_unique<Table>(spec.key_range);
  // Deterministic prefill of every other key up to half the range.
  for (std::uint64_t k = 0; k < spec.prefill; ++k) {
    table->insert(k * 2 % spec.key_range, (k * 2 % spec.key_range) * 2 + 1);
  }
  return table;
}

harness::RunResult run_variant(bool delegate, const harness::WorkloadSpec& spec,
                               std::size_t threads,
                               const harness::DriverOptions& options) {
  auto table = make_prefilled_table(spec);
  core::HcfEngine<Table> engine(
      *table,
      delegate ? adapters::ht_delegate_config() : adapters::ht_paper_config(),
      adapters::kHtNumArrays);
  if (delegate) adapters::ht_seed_commutes(engine);
  auto result = harness::run_timed(
      engine, threads,
      [&](std::size_t t) {
        return harness::HtWorker<core::HcfEngine<Table>>(engine, spec,
                                                         23 + t * 7919);
      },
      options);
  mem::EbrDomain::instance().drain();
  return result;
}

// Combine-round throughput: sessions retired per second is the quantity
// delegation accelerates (the serial combiner is the round's critical
// path; delegates shorten it).
double rounds_per_sec(const harness::RunResult& r) {
  return r.duration_s > 0
             ? static_cast<double>(r.engine.combine_rounds) / r.duration_s
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  // Default past the core count: delegation needs waiters to delegate to,
  // and the preempt panel needs oversubscription to deschedule combiners.
  bool threads_chosen = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0 || arg == "--quick") {
      threads_chosen = true;
    }
  }
  auto opts = hcf::bench::BenchOptions::parse(argc, argv);
  if (!threads_chosen) opts.threads = {2, 4, 8, 16, 32};
  hcf::bench::BenchReport report(opts, "fig8_parallel_combine");
  hcf::bench::print_header(
      "Figure 8",
      "parallel combining (20f mix): serial vs delegated group apply");

  struct Panel {
    const char* id;
    const char* tag;
    bool preempt;
  };
  const Panel panels[] = {{"8(a)", "paper", false}, {"8(b)", "preempt", true}};

  for (const auto& panel : panels) {
    if (!opts.workload_filter.empty() && opts.workload_filter != panel.tag) {
      continue;
    }
    auto spec = hcf::harness::WorkloadSpec::reads(20, kKeyRange);
    spec.cs_work = opts.cs_work > 0 ? static_cast<std::uint32_t>(opts.cs_work)
                                    : 0;
    spec.cs_preempt = panel.preempt;
    std::printf("\nFig %s: workload %s (key range %llu, prefill %llu)%s\n",
                panel.id, spec.label().c_str(),
                static_cast<unsigned long long>(spec.key_range),
                static_cast<unsigned long long>(spec.prefill),
                panel.preempt ? " [preemption-amplified]"
                              : " [paper parameters]");
    hcf::util::TextTable table({"threads", "serial Mops", "delegate Mops",
                                "serial rounds/s", "delegate rounds/s",
                                "delegated ops", "fallbacks"});
    for (std::size_t threads : opts.threads) {
      std::vector<std::string> row{std::to_string(threads)};
      std::vector<std::string> extra;
      for (const bool delegate : {false, true}) {
        const auto result = run_variant(delegate, spec, threads, opts.driver);
        report.add(spec.label(), delegate ? "HCF-delegate" : "HCF-serial",
                   threads, spec.cs_work, result);
        row.push_back(hcf::util::TextTable::num(result.throughput_mops()));
        extra.push_back(hcf::util::TextTable::num(rounds_per_sec(result)));
        if (delegate) {
          extra.push_back(std::to_string(result.engine.delegated_ops));
          extra.push_back(std::to_string(result.engine.delegate_fallbacks));
        }
      }
      for (auto& e : extra) row.push_back(std::move(e));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return report.finish();
}
