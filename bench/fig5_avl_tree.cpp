// Figure 5 reproduction: AVL-tree set under a skewed workload. Keys in
// [0..1023], prefilled to half, Zipfian key selection with theta = 0.9;
// panels with 0% / 40% / 80% Find. Engines: Lock, TLE, FC, SCM, TLE+FC,
// HCF (FC/TLE+FC/HCF share the same sorted combine+eliminate run_multi,
// as in §3.4).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "harness/issuers.hpp"
#include "mem/ebr.hpp"
#include "util/table.hpp"

namespace {

using namespace hcf;
using Tree = ds::AvlTree<std::uint64_t>;

constexpr std::uint64_t kKeyRange = 1024;
constexpr double kTheta = 0.9;

std::unique_ptr<Tree> make_prefilled_tree() {
  auto tree = std::make_unique<Tree>();
  for (std::uint64_t k = 0; k < kKeyRange; k += 2) tree->insert(k);
  return tree;
}

template <typename Engine>
harness::RunResult run_one(Engine& engine, const harness::WorkloadSpec& spec,
                           std::size_t threads,
                           const harness::DriverOptions& options) {
  return harness::run_timed(
      engine, threads,
      [&](std::size_t t) {
        return harness::AvlWorker<Engine>(engine, spec, 71 + t * 31);
      },
      options);
}

harness::RunResult run_named(const std::string& name,
                             const harness::WorkloadSpec& spec,
                             std::size_t threads,
                             const harness::DriverOptions& options) {
  auto tree = make_prefilled_tree();
  harness::RunResult result;
  if (name == "Lock") {
    core::LockEngine<Tree> e(*tree);
    result = run_one(e, spec, threads, options);
  } else if (name == "TLE") {
    core::TleEngine<Tree> e(*tree);
    result = run_one(e, spec, threads, options);
  } else if (name == "FC") {
    core::FcEngine<Tree> e(*tree);
    result = run_one(e, spec, threads, options);
  } else if (name == "SCM") {
    core::ScmEngine<Tree> e(*tree);
    result = run_one(e, spec, threads, options);
  } else if (name == "TLE+FC") {
    core::TleFcEngine<Tree> e(*tree);
    result = run_one(e, spec, threads, options);
  } else {
    core::HcfEngine<Tree> e(*tree, adapters::avl_paper_config(), 1);
    result = run_one(e, spec, threads, options);
  }
  mem::EbrDomain::instance().drain();
  return result;
}

const char* kEngines[] = {"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"};

}  // namespace

int main(int argc, char** argv) {
  auto opts = hcf::bench::BenchOptions::parse(argc, argv);
  hcf::bench::BenchReport report(opts, "fig5_avl_tree");
  bench::print_header(
      "Figure 5",
      "AVL set throughput (Mops/s), keys [0..1023], Zipf theta=0.9");

  struct Panel {
    const char* id;
    const char* tag;
    int find_pct;
  };
  const Panel panels[] = {{"5(a)", "0f", 0}, {"5(b)", "40f", 40},
                          {"5(c)", "80f", 80}};

  for (const auto& panel : panels) {
    if (!opts.workload_filter.empty() && opts.workload_filter != panel.tag) {
      continue;
    }
    for (const std::uint32_t work : opts.work_settings()) {
    auto spec = harness::WorkloadSpec::reads(
        panel.find_pct, kKeyRange, harness::KeyDist::Zipfian, kTheta);
    spec.cs_work = work;
    std::printf("\nFig %s: workload %s%s\n", panel.id, spec.label().c_str(),
                work == 0 ? " [paper parameters]"
                          : " [contention-amplified]");
    std::vector<std::string> header{"threads"};
    for (const char* e : kEngines) header.push_back(e);
    util::TextTable table(header);
    for (std::size_t threads : opts.threads) {
      std::vector<std::string> row{std::to_string(threads)};
      for (const char* engine : kEngines) {
        const auto result = run_named(engine, spec, threads, opts.driver);
        report.add(spec.label(), engine, threads, work, result);
        row.push_back(util::TextTable::num(result.throughput_mops()));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    }
  }
  return report.finish();
}
