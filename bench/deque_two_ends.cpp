// §2.4's two-ends deque example: separate publication arrays (and thus
// separate combiners) per end. Compares all engines plus the specialized
// single-combiner HCF variant, which §2.4 recommends for exactly this
// configuration. Threads are pinned to one end each ("split" mode) or pick
// ends at random ("mixed" mode).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "harness/issuers.hpp"
#include "mem/ebr.hpp"
#include "util/table.hpp"

namespace {

using namespace hcf;
using Dq = ds::Deque<std::uint64_t>;

constexpr int kPushPct = 60;

std::unique_ptr<Dq> make_prefilled() {
  auto dq = std::make_unique<Dq>();
  for (std::uint64_t v = 0; v < 4096; ++v) dq->push_right(v);
  return dq;
}

template <typename Engine>
harness::RunResult run_one(Engine& engine, bool split, std::size_t threads,
                           const harness::DriverOptions& options) {
  return harness::run_timed(
      engine, threads,
      [&](std::size_t t) {
        const int pin_side = split ? static_cast<int>(t % 2) : -1;
        return harness::DequeWorker<Engine>(engine, kPushPct, 7 + t * 3,
                                            pin_side);
      },
      options);
}

harness::RunResult run_named(const std::string& name, bool split,
                             std::size_t threads,
                             const harness::DriverOptions& options) {
  auto dq = make_prefilled();
  harness::RunResult result;
  if (name == "Lock") {
    core::LockEngine<Dq> e(*dq);
    result = run_one(e, split, threads, options);
  } else if (name == "TLE") {
    core::TleEngine<Dq> e(*dq);
    result = run_one(e, split, threads, options);
  } else if (name == "FC") {
    core::FcEngine<Dq> e(*dq);
    result = run_one(e, split, threads, options);
  } else if (name == "SCM") {
    core::ScmEngine<Dq> e(*dq);
    result = run_one(e, split, threads, options);
  } else if (name == "TLE+FC") {
    core::TleFcEngine<Dq> e(*dq);
    result = run_one(e, split, threads, options);
  } else if (name == "HCF") {
    core::HcfEngine<Dq> e(*dq, adapters::deque_paper_config(),
                          adapters::kDequeNumArrays);
    result = run_one(e, split, threads, options);
  } else {  // HCF-1C
    core::HcfSingleCombinerEngine<Dq> e(*dq, adapters::deque_paper_config(),
                                        adapters::kDequeNumArrays);
    result = run_one(e, split, threads, options);
  }
  mem::EbrDomain::instance().drain();
  return result;
}

const char* kEngines[] = {"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF",
                          "HCF-1C"};

}  // namespace

int main(int argc, char** argv) {
  auto opts = hcf::bench::BenchOptions::parse(argc, argv);
  hcf::bench::BenchReport report(opts, "deque_two_ends");
  bench::print_header("Deque (paper §2.4)",
                      "two-ends deque, per-end publication arrays (Mops/s)");

  for (bool split : {true, false}) {
    std::printf("\n%s mode (60%% push / 40%% pop):\n",
                split ? "split (threads pinned per end)" : "mixed");
    std::vector<std::string> header{"threads"};
    for (const char* e : kEngines) header.push_back(e);
    util::TextTable table(header);
    for (std::size_t threads : opts.threads) {
      std::vector<std::string> row{std::to_string(threads)};
      for (const char* engine : kEngines) {
        const auto result = run_named(engine, split, threads, opts.driver);
        report.add(split ? "split" : "mixed", engine, threads, 0, result);
        row.push_back(util::TextTable::num(result.throughput_mops()));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return report.finish();
}
