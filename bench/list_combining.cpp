// Sorted-list set benchmark: the structure with the strongest asymptotic
// combining win (k combined ops = one O(n + k) traversal instead of k
// O(n) traversals). Long traversals also make capacity aborts and
// validation costs visible, complementing the short-operation structures.
#include <cstdio>
#include <functional>
#include <memory>

#include "adapters/list_ops.hpp"
#include "bench_util.hpp"
#include "harness/workload.hpp"
#include "core/engine.hpp"
#include "mem/ebr.hpp"
#include "util/table.hpp"

namespace {

using namespace hcf;
using List = ds::SortedList<std::uint64_t>;

constexpr std::uint64_t kKeyRange = 512;  // list is O(n): keep it modest

class ListWorker {
 public:
  template <typename Engine>
  ListWorker(Engine& engine, const harness::WorkloadSpec& spec,
             std::uint64_t seed)
      : spec_(spec), keys_(spec, seed) {
    contains_.set_work(spec.cs_work);
    insert_.set_work(spec.cs_work);
    remove_.set_work(spec.cs_work);
    execute_ = [&engine](core::Operation<List>& op) { engine.execute(op); };
  }

  void operator()() {
    const std::uint64_t key = keys_.next_key();
    const int p = keys_.next_percent();
    if (p < spec_.find_pct) {
      contains_.set(key);
      execute_(contains_);
    } else if (p < spec_.find_pct + spec_.insert_pct) {
      insert_.set(key);
      execute_(insert_);
    } else {
      remove_.set(key);
      execute_(remove_);
    }
  }

 private:
  harness::WorkloadSpec spec_;
  harness::KeyGenerator keys_;
  adapters::ListContainsOp<std::uint64_t> contains_;
  adapters::ListInsertOp<std::uint64_t> insert_;
  adapters::ListRemoveOp<std::uint64_t> remove_;
  std::function<void(core::Operation<List>&)> execute_;
};

std::unique_ptr<List> make_prefilled() {
  auto list = std::make_unique<List>();
  for (std::uint64_t k = 0; k < kKeyRange; k += 2) list->insert(k);
  return list;
}

template <typename Engine>
harness::RunResult run_one(Engine& engine, const harness::WorkloadSpec& spec,
                           std::size_t threads,
                           const harness::DriverOptions& options) {
  return harness::run_timed(
      engine, threads,
      [&](std::size_t t) { return ListWorker(engine, spec, 5 + t * 7); },
      options);
}

harness::RunResult run_named(const std::string& name,
                             const harness::WorkloadSpec& spec,
                             std::size_t threads,
                             const harness::DriverOptions& options) {
  auto list = make_prefilled();
  harness::RunResult result;
  if (name == "Lock") {
    core::LockEngine<List> e(*list);
    result = run_one(e, spec, threads, options);
  } else if (name == "TLE") {
    core::TleEngine<List> e(*list);
    result = run_one(e, spec, threads, options);
  } else if (name == "FC") {
    core::FcEngine<List> e(*list);
    result = run_one(e, spec, threads, options);
  } else if (name == "SCM") {
    core::ScmEngine<List> e(*list);
    result = run_one(e, spec, threads, options);
  } else if (name == "TLE+FC") {
    core::TleFcEngine<List> e(*list);
    result = run_one(e, spec, threads, options);
  } else {
    core::HcfEngine<List> e(*list, adapters::list_paper_config(), 1);
    result = run_one(e, spec, threads, options);
  }
  mem::EbrDomain::instance().drain();
  return result;
}

const char* kEngines[] = {"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"};

}  // namespace

int main(int argc, char** argv) {
  auto opts = hcf::bench::BenchOptions::parse(argc, argv);
  hcf::bench::BenchReport report(opts, "list_combining");
  bench::print_header("Sorted list", "single-traversal batch combining");

  for (const std::uint32_t work : opts.work_settings()) {
    for (int find_pct : {90, 20}) {
      auto spec = harness::WorkloadSpec::reads(find_pct, kKeyRange);
      spec.cs_work = work;
      std::printf("\nworkload %s%s:\n", spec.label().c_str(),
                  work == 0 ? " [paper parameters]"
                            : " [contention-amplified]");
      std::vector<std::string> header{"threads"};
      for (const char* e : kEngines) header.push_back(e);
      util::TextTable table(header);
      for (std::size_t threads : opts.threads) {
        std::vector<std::string> row{std::to_string(threads)};
        for (const char* engine : kEngines) {
          const auto result = run_named(engine, spec, threads, opts.driver);
          report.add(spec.label(), engine, threads, work, result);
          row.push_back(util::TextTable::num(result.throughput_mops()));
        }
        table.add_row(std::move(row));
      }
      table.print(std::cout);
    }
  }
  return report.finish();
}
