// Figure 3 reproduction: percentage of operations completed in each of the
// four HCF phases for the 40%-Find hash-table workload — for all
// operations, Insert operations alone, and Find+Remove operations alone.
// One measurement per (work, threads) configuration feeds all three views.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "harness/issuers.hpp"
#include "mem/ebr.hpp"
#include "util/table.hpp"

namespace {

using namespace hcf;
using Table = ds::HashTable<std::uint64_t, std::uint64_t>;
using Engine = core::HcfEngine<Table>;

constexpr std::uint64_t kKeyRange = 16 * 1024;

std::string pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? "0.00"
                    : util::TextTable::num(100.0 * static_cast<double>(part) /
                                           static_cast<double>(whole));
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = hcf::bench::BenchOptions::parse(argc, argv);
  hcf::bench::BenchReport report(opts, "fig3_phase_breakdown");
  bench::print_header("Figure 3",
                      "HCF phase completion breakdown, hash table, 40% Find");

  for (const std::uint32_t work : opts.work_settings()) {
    auto spec = harness::WorkloadSpec::reads(40, kKeyRange);
    spec.cs_work = work;
    std::printf("\n=== %s (workload %s) ===\n",
                work == 0 ? "paper parameters" : "contention-amplified",
                spec.label().c_str());

    std::vector<harness::RunResult> results;
    for (std::size_t threads : opts.threads) {
      auto ds = std::make_unique<Table>(spec.key_range);
      for (std::uint64_t k = 0; k < spec.prefill; ++k) {
        ds->insert(k * 2 % spec.key_range, (k * 2 % spec.key_range) * 2 + 1);
      }
      Engine engine(*ds, adapters::ht_paper_config(), adapters::kHtNumArrays);
      results.push_back(harness::run_timed(
          engine, threads,
          [&](std::size_t t) {
            return harness::HtWorker<Engine>(engine, spec, 31 + t * 101);
          },
          opts.driver));
      report.add(spec.label(), "HCF", threads, work, results.back());
      mem::EbrDomain::instance().drain();
    }

    struct View {
      const char* name;
      int cls;  // -1: aggregate over all classes
    };
    const View views[] = {{"all ops", -1},
                          {"Insert only", adapters::kHtInsertClass},
                          {"Find+Remove only", adapters::kHtReadWriteClass}};
    for (const auto& view : views) {
      std::printf("\n%s:\n", view.name);
      util::TextTable table({"threads", "TryPrivate%", "TryVisible%",
                             "TryCombining%", "CombineUnderLock%", "ops"});
      for (std::size_t i = 0; i < opts.threads.size(); ++i) {
        const auto& result = results[i];
        std::uint64_t per_phase[core::kNumPhases] = {};
        std::uint64_t total = 0;
        for (int p = 0; p < core::kNumPhases; ++p) {
          per_phase[p] =
              view.cls < 0
                  ? result.engine.phase_total(static_cast<core::Phase>(p))
                  : result.engine.completions[static_cast<std::size_t>(
                        view.cls)][static_cast<std::size_t>(p)];
          total += per_phase[p];
        }
        table.add_row({std::to_string(opts.threads[i]),
                       pct(per_phase[0], total), pct(per_phase[1], total),
                       pct(per_phase[2], total), pct(per_phase[3], total),
                       std::to_string(total)});
      }
      table.print(std::cout);
    }
  }
  return report.finish();
}
