// Stack benchmark (paper §3.1: "one should not expect HCF always to be the
// winner when the contention is high, e.g., when experimenting with a
// stack"). Every operation conflicts at the top, so combining-based
// engines (FC, HCF-with-combine-first) should match or beat TLE here, and
// Push/Pop *elimination* (pairs cancel without touching the stack) is the
// dominant effect on mixed workloads.
//
// Reports throughput and the elimination rate per engine.
#include <cstdio>
#include <memory>

#include "adapters/stack_ops.hpp"
#include "bench_util.hpp"
#include "core/engine.hpp"
#include "mem/ebr.hpp"
#include "util/table.hpp"

namespace {

using namespace hcf;
using St = ds::Stack<std::uint64_t>;
using Base = adapters::StackOpBase<std::uint64_t>;

class StackWorker {
 public:
  template <typename Engine>
  StackWorker(Engine& engine, int push_pct, std::uint64_t seed,
              std::uint32_t cs_work)
      : push_pct_(push_pct), rng_(seed) {
    push_.set_work(cs_work);
    pop_.set_work(cs_work);
    execute_ = [&engine](core::Operation<St>& op) { engine.execute(op); };
  }

  void operator()() {
    if (static_cast<int>(rng_.next_bounded(100)) < push_pct_) {
      push_.set(rng_.next());
      execute_(push_);
    } else {
      execute_(pop_);
    }
  }

 private:
  int push_pct_;
  util::Xoshiro256 rng_;
  adapters::StackPushOp<std::uint64_t> push_;
  adapters::StackPopOp<std::uint64_t> pop_;
  std::function<void(core::Operation<St>&)> execute_;
};

template <typename Engine>
std::pair<harness::RunResult, std::uint64_t> run_one(
    Engine& engine, int push_pct, std::size_t threads,
    const harness::DriverOptions& options, std::uint32_t cs_work) {
  Base::reset_eliminations();
  auto result = harness::run_timed(
      engine, threads,
      [&](std::size_t t) {
        return StackWorker(engine, push_pct, 3 + t * 11, cs_work);
      },
      options);
  return {result, Base::eliminations()};
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = hcf::bench::BenchOptions::parse(argc, argv);
  hcf::bench::BenchReport report(opts, "stack_elimination");
  bench::print_header("Stack (paper §3.1)",
                      "always-conflicting stack; throughput + elimination");

  for (const std::uint32_t work : opts.work_settings()) {
    std::printf("\n=== %s (50%% push / 50%% pop) ===\n",
                work == 0 ? "paper parameters" : "contention-amplified");
    util::TextTable table({"threads", "Lock", "TLE", "FC", "FC-elim/kop",
                           "HCF", "HCF-elim/kop", "HCF-1C"});
    for (std::size_t threads : opts.threads) {
      std::vector<std::string> row{std::to_string(threads)};
      {
        St st;
        for (int i = 0; i < 4096; ++i) st.push(i);
        core::LockEngine<St> e(st);
        const auto result = run_one(e, 50, threads, opts.driver, work).first;
        report.add("50push/50pop", "Lock", threads, work, result);
        row.push_back(util::TextTable::num(result.throughput_mops()));
        mem::EbrDomain::instance().drain();
      }
      {
        St st;
        for (int i = 0; i < 4096; ++i) st.push(i);
        core::TleEngine<St> e(st);
        const auto result = run_one(e, 50, threads, opts.driver, work).first;
        report.add("50push/50pop", "TLE", threads, work, result);
        row.push_back(util::TextTable::num(result.throughput_mops()));
        mem::EbrDomain::instance().drain();
      }
      {
        St st;
        for (int i = 0; i < 4096; ++i) st.push(i);
        core::FcEngine<St> e(st);
        const auto [result, elims] =
            run_one(e, 50, threads, opts.driver, work);
        report.add("50push/50pop", "FC", threads, work, result);
        row.push_back(util::TextTable::num(result.throughput_mops()));
        row.push_back(util::TextTable::num(
            result.total_ops == 0
                ? 0.0
                : 1000.0 * static_cast<double>(elims) /
                      static_cast<double>(result.total_ops)));
        mem::EbrDomain::instance().drain();
      }
      {
        St st;
        for (int i = 0; i < 4096; ++i) st.push(i);
        core::HcfEngine<St> e(st, adapters::stack_paper_config(), 1);
        const auto [result, elims] =
            run_one(e, 50, threads, opts.driver, work);
        report.add("50push/50pop", "HCF", threads, work, result);
        row.push_back(util::TextTable::num(result.throughput_mops()));
        row.push_back(util::TextTable::num(
            result.total_ops == 0
                ? 0.0
                : 1000.0 * static_cast<double>(elims) /
                      static_cast<double>(result.total_ops)));
        mem::EbrDomain::instance().drain();
      }
      {
        St st;
        for (int i = 0; i < 4096; ++i) st.push(i);
        core::HcfSingleCombinerEngine<St> e(st,
                                            adapters::stack_paper_config(), 1);
        const auto result = run_one(e, 50, threads, opts.driver, work).first;
        report.add("50push/50pop", "HCF-1C", threads, work, result);
        row.push_back(util::TextTable::num(result.throughput_mops()));
        mem::EbrDomain::instance().drain();
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return report.finish();
}
