// Adaptive-policy ablation (the paper's §2.4 future work, implemented in
// core/adaptive_hcf.hpp): compare fixed policies against the adaptive
// controller on workloads at both ends of the contention spectrum plus the
// in-between case. The adaptive engine should track the better fixed
// policy in each regime without per-workload hand-tuning.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "harness/issuers.hpp"
#include "mem/ebr.hpp"
#include "util/table.hpp"

namespace {

using namespace hcf;
using Tree = ds::AvlTree<std::uint64_t>;

std::unique_ptr<Tree> make_tree(std::uint64_t range) {
  auto tree = std::make_unique<Tree>();
  for (std::uint64_t k = 0; k < range; k += 2) tree->insert(k);
  return tree;
}

template <typename Engine>
harness::RunResult run_one(Engine& engine, const harness::WorkloadSpec& spec,
                           std::size_t threads,
                           const harness::DriverOptions& options) {
  return harness::run_timed(
      engine, threads,
      [&](std::size_t t) {
        return harness::AvlWorker<Engine>(engine, spec, 19 + t * 3);
      },
      options);
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = hcf::bench::BenchOptions::parse(argc, argv);
  hcf::bench::BenchReport report(opts, "ablation_adaptive");
  bench::print_header(
      "Ablation: adaptive policy",
      "AVL set; fixed policies vs the adaptive controller (Mops/s)");

  struct Scenario {
    const char* name;
    harness::WorkloadSpec spec;
  };
  const std::uint32_t work =
      opts.cs_work >= 0 ? static_cast<std::uint32_t>(opts.cs_work)
                        : opts.amplified_work;
  Scenario scenarios[] = {
      {"read-heavy uniform (low contention)",
       harness::WorkloadSpec::reads(90, 64 * 1024)},
      {"update-heavy zipf (high contention)",
       harness::WorkloadSpec::reads(0, 512, harness::KeyDist::Zipfian, 0.95)},
      {"mixed zipf",
       harness::WorkloadSpec::reads(50, 4096, harness::KeyDist::Zipfian,
                                    0.9)},
  };
  scenarios[1].spec.cs_work = work;
  scenarios[2].spec.cs_work = work;

  for (const auto& scenario : scenarios) {
    std::printf("\n%s (%s):\n", scenario.name, scenario.spec.label().c_str());
    util::TextTable table({"threads", "HCF(2,3,5)", "HCF-TLE-like",
                           "HCF-combine-first", "HCF-adaptive", "lean"});
    for (std::size_t threads : opts.threads) {
      std::vector<std::string> row{std::to_string(threads)};
      const std::uint64_t range = scenario.spec.key_range;
      {
        auto tree = make_tree(range);
        core::HcfEngine<Tree> e(*tree, adapters::avl_paper_config(), 1);
        const auto result = run_one(e, scenario.spec, threads, opts.driver);
        report.add(scenario.spec.label(), "HCF(2,3,5)", threads,
                   scenario.spec.cs_work, result);
        row.push_back(util::TextTable::num(result.throughput_mops()));
        mem::EbrDomain::instance().drain();
      }
      {
        auto tree = make_tree(range);
        core::HcfEngine<Tree> e(
            *tree, {core::ClassConfig{0, core::PhasePolicy{8, 1, 1, true}}},
            1);
        const auto result = run_one(e, scenario.spec, threads, opts.driver);
        report.add(scenario.spec.label(), "HCF-TLE-like", threads,
                   scenario.spec.cs_work, result);
        row.push_back(util::TextTable::num(result.throughput_mops()));
        mem::EbrDomain::instance().drain();
      }
      {
        auto tree = make_tree(range);
        core::HcfEngine<Tree> e(
            *tree,
            {core::ClassConfig{0, core::PhasePolicy::combine_first()}}, 1);
        const auto result = run_one(e, scenario.spec, threads, opts.driver);
        report.add(scenario.spec.label(), "HCF-combine-first", threads,
                   scenario.spec.cs_work, result);
        row.push_back(util::TextTable::num(result.throughput_mops()));
        mem::EbrDomain::instance().drain();
      }
      {
        auto tree = make_tree(range);
        core::AdaptiveHcfEngine<Tree> e(*tree, adapters::avl_paper_config(),
                                        1);
        const auto result = run_one(e, scenario.spec, threads, opts.driver);
        report.add(scenario.spec.label(), "HCF-adaptive", threads,
                   scenario.spec.cs_work, result);
        row.push_back(util::TextTable::num(result.throughput_mops()));
        const char* lean = "balanced";
        if (e.current_lean(0) ==
            core::AdaptiveHcfEngine<Tree>::Lean::Speculative) {
          lean = "speculative";
        } else if (e.current_lean(0) ==
                   core::AdaptiveHcfEngine<Tree>::Lean::Combining) {
          lean = "combining";
        }
        row.push_back(lean);
        mem::EbrDomain::instance().drain();
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return report.finish();
}
