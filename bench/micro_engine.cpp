// Engine-layer microbenchmarks (google-benchmark): the combiner fast path
// in isolation (DESIGN.md §9). Two families:
//
//   BM_SelectionScanFull/N — the seed's scan shape: walk every one of the
//     kMaxThreads cache-aligned slots, with N of them announced. Cost is
//     proportional to configured capacity.
//   BM_SelectionScan/N     — the occupancy-indexed scan over the same
//     state. Cost is proportional to announced work (N), which is the
//     tentpole claim; the acceptance bar is >=3x at N=2.
//   BM_CombineRound/N      — one combining round over N selected stack
//     operations: key-grouping (group_batch), prefetch, then batched
//     run_multi application with push/pop elimination.
//
// Same machine-readable protocol as micro_substrate:
//   --json=FILE   write an hcf-bench-v1 report (one row per benchmark run)
//   --quick       short measurement window (maps to --benchmark_min_time)
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "harness/report.hpp"

#include "adapters/stack_ops.hpp"
#include "core/operation.hpp"
#include "core/publication_array.hpp"
#include "ds/stack.hpp"
#include "util/thread_id.hpp"

namespace {

using namespace hcf;

struct NullDs {};
struct NullOp : core::Operation<NullDs> {
  void run_seq(NullDs&) override {}
};

// Parks `n` announcer threads, each occupying its own publication slot for
// the whole benchmark run, so scans see a stable set of n announced ops.
class AnnouncedSlots {
 public:
  AnnouncedSlots(core::PublicationArray<NullDs>& pa, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      ops_.push_back(std::make_unique<NullOp>());
      threads_.emplace_back([this, &pa, i] {
        pa.add(ops_[i].get());
        announced_.fetch_add(1, std::memory_order_release);
        while (!release_.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        pa.remove_strong();
      });
    }
    while (announced_.load(std::memory_order_acquire) !=
           static_cast<int>(n)) {
      std::this_thread::yield();
    }
  }

  ~AnnouncedSlots() {
    release_.store(true, std::memory_order_release);
    for (auto& t : threads_) t.join();
  }

 private:
  std::vector<std::unique_ptr<NullOp>> ops_;
  std::vector<std::thread> threads_;
  std::atomic<int> announced_{0};
  std::atomic<bool> release_{false};
};

// The pre-occupancy scan: visit all kMaxThreads slots unconditionally.
void BM_SelectionScanFull(benchmark::State& state) {
  core::PublicationArray<NullDs> pa;
  AnnouncedSlots slots(pa, static_cast<std::size_t>(state.range(0)));
  pa.selection_lock().lock();
  for (auto _ : state) {
    std::size_t seen = 0;
    for (std::size_t s = 0; s < util::kMaxThreads; ++s) {
      if (pa.peek(s) != nullptr) ++seen;
    }
    benchmark::DoNotOptimize(seen);
  }
  pa.selection_lock().unlock();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectionScanFull)->Arg(2)->Arg(8)->Arg(64);

// The occupancy-indexed scan over identical state.
void BM_SelectionScan(benchmark::State& state) {
  core::PublicationArray<NullDs> pa;
  AnnouncedSlots slots(pa, static_cast<std::size_t>(state.range(0)));
  pa.selection_lock().lock();
  for (auto _ : state) {
    std::size_t seen = 0;
    // scan-locked: selection lock acquired before the benchmark loop.
    pa.for_each_announced(
        [&](core::Operation<NullDs>*, std::size_t) { ++seen; });
    benchmark::DoNotOptimize(seen);
  }
  pa.selection_lock().unlock();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectionScan)->Arg(2)->Arg(8)->Arg(64);

// One combining round over N already-selected stack operations: grouping,
// prefetch, then batched application (push/pop elimination included).
void BM_CombineRound(benchmark::State& state) {
  using Push = adapters::StackPushOp<std::uint64_t>;
  using Pop = adapters::StackPopOp<std::uint64_t>;
  using Op = core::Operation<ds::Stack<std::uint64_t>>;

  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ds::Stack<std::uint64_t> stack;
  for (std::size_t i = 0; i < 64; ++i) stack.push(i);

  std::vector<std::unique_ptr<Push>> pushes;
  std::vector<std::unique_ptr<Pop>> pops;
  std::vector<Op*> master;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      pushes.push_back(std::make_unique<Push>());
      pushes.back()->set(i);
      master.push_back(pushes.back().get());
    } else {
      pops.push_back(std::make_unique<Pop>());
      master.push_back(pops.back().get());
    }
  }

  std::vector<Op*> batch;
  batch.reserve(util::kMaxThreads);
  for (auto _ : state) {
    batch.assign(master.begin(), master.end());
    if (batch.size() > 1 && batch[0]->combine_keyed()) {
      benchmark::DoNotOptimize(core::group_batch(std::span<Op*>(batch)));
    }
    core::prefetch_batch(std::span<Op* const>(batch));
    std::span<Op*> pending(batch);
    while (!pending.empty()) {
      const std::size_t k = batch[0]->run_multi(stack, pending);
      pending = pending.subspan(k);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CombineRound)->Arg(2)->Arg(8)->Arg(16);

// Console output plus a side-channel capture of every run, so we can emit
// the hcf-bench-v1 JSON rows after google-benchmark finishes.
class CollectingReporter final : public benchmark::ConsoleReporter {
 public:
  struct Sample {
    std::string name;
    int threads;
    std::uint64_t iterations;
    double real_seconds;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      samples_.push_back({run.benchmark_name(),
                          static_cast<int>(run.threads),
                          static_cast<std::uint64_t>(run.iterations),
                          run.real_accumulated_time});
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<Sample>& samples() const { return samples_; }

 private:
  std::vector<Sample> samples_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> bench_args;
  bench_args.push_back(argv[0]);
  // Injected first so an explicit --benchmark_min_time later wins.
  static char quick_flag[] = "--benchmark_min_time=0.05";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
      if (json_path.empty()) {
        std::fprintf(stderr, "error: --json requires a file path\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      bench_args.insert(bench_args.begin() + 1, quick_flag);
    } else {
      bench_args.push_back(argv[i]);
    }
  }

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 2;
  }

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    hcf::harness::JsonReport report("micro_engine");
    for (const auto& s : reporter.samples()) {
      hcf::harness::RunResult result;
      result.total_ops = s.iterations;
      result.duration_s = s.real_seconds;
      report.add_row(s.name, "engine",
                     static_cast<std::size_t>(s.threads), 0, result);
    }
    if (!report.write_file(json_path)) {
      std::fprintf(stderr, "error: failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
