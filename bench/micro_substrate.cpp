// Substrate microbenchmarks (google-benchmark): raw costs of the simulated
// HTM primitives, locks, publication array, and workload generators. These
// quantify the simulator's constant factors — useful context when reading
// the figure benchmarks' absolute numbers.
//
// Custom main (instead of benchmark_main) so this binary speaks the same
// machine-readable protocol as the figure benches:
//   --json=FILE   write an hcf-bench-v1 report (one row per benchmark run)
//   --quick       short measurement window (maps to --benchmark_min_time)
// All --benchmark_* flags pass through to google-benchmark unchanged.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/report.hpp"

#include "core/publication_array.hpp"
#include "mem/ebr.hpp"
#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"
#include "sync/spinlock.hpp"
#include "sync/tx_lock.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace {

using namespace hcf;

void BM_TxnEmptyCommit(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(htm::attempt([] {}));
  }
}
BENCHMARK(BM_TxnEmptyCommit);

void BM_TxnReadOnly(benchmark::State& state) {
  static std::uint64_t data[64] = {};
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    htm::attempt([&] {
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < n; ++i) sum += htm::read(&data[i]);
      benchmark::DoNotOptimize(sum);
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TxnReadOnly)->Arg(1)->Arg(8)->Arg(32);

void BM_TxnWrite(benchmark::State& state) {
  static std::uint64_t data[256] = {};
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    htm::attempt([&] {
      for (std::size_t i = 0; i < n; ++i) htm::write(&data[i], i);
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TxnWrite)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

// The write-set lookup workload: buffer n writes, then read each one back
// through the write buffer. With the linear-scan write set this was
// quadratic in n; the signature + index make it linear.
void BM_TxnReadAfterWrite(benchmark::State& state) {
  static std::uint64_t data[256] = {};
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    htm::attempt([&] {
      for (std::size_t i = 0; i < n; ++i) htm::write(&data[i], i);
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < n; ++i) sum += htm::read(&data[i]);
      benchmark::DoNotOptimize(sum);
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_TxnReadAfterWrite)->Arg(8)->Arg(32)->Arg(128);

// Commit-path contention: every thread commits small disjoint write
// transactions (private padded slots, so no orec conflicts). What remains
// is the shared commit machinery — version clock and write-back counter.
void BM_TxnContendedCommit(benchmark::State& state) {
  static util::CacheAligned<std::uint64_t> slots[16];
  auto& slot = slots[static_cast<std::size_t>(state.thread_index()) & 15]
                   .value;
  for (auto _ : state) {
    htm::attempt([&] { htm::write(&slot, htm::read(&slot) + 1); });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TxnContendedCommit)->Threads(2)->Threads(4)->Threads(8);

// Read-mostly transactions next to an unrelated writer: thread 0 commits
// write transactions on a private word, the rest run 32-word read-only
// transactions over untouched data. Under EpochMode::Tick every writer
// commit forces the readers to revalidate their whole read set; under
// EpochMode::Sampled the readers never notice the writer.
void ReadMostlyLoop(benchmark::State& state) {
  static std::uint64_t data[32] = {};
  static util::CacheAligned<std::uint64_t> writer_word;
  if (state.thread_index() == 0) {
    for (auto _ : state) {
      htm::attempt([&] {
        htm::write(&writer_word.value, htm::read(&writer_word.value) + 1);
      });
    }
  } else {
    for (auto _ : state) {
      htm::attempt([&] {
        std::uint64_t sum = 0;
        for (auto& d : data) sum += htm::read(&d);
        benchmark::DoNotOptimize(sum);
      });
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TxnReadMostlyTick(benchmark::State& state) { ReadMostlyLoop(state); }
BENCHMARK(BM_TxnReadMostlyTick)->Threads(4);

void SetSampledMode(const benchmark::State&) {
  htm::config().epoch_mode.store(htm::EpochMode::Sampled);
}
void RestoreTickMode(const benchmark::State&) {
  htm::config().epoch_mode.store(htm::EpochMode::Tick);
}

void BM_TxnReadMostlySampled(benchmark::State& state) {
  ReadMostlyLoop(state);
}
BENCHMARK(BM_TxnReadMostlySampled)
    ->Threads(4)
    ->Setup(SetSampledMode)
    ->Teardown(RestoreTickMode);

void BM_UninstrumentedRead(benchmark::State& state) {
  static std::uint64_t data[64] = {};
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (auto& d : data) sum += htm::read(&d);  // no txn: plain path
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_UninstrumentedRead);

void BM_TxCellStrongStore(benchmark::State& state) {
  static htm::TxCell<std::uint64_t> cell{0};
  std::uint64_t v = 0;
  for (auto _ : state) cell.store(++v);
}
BENCHMARK(BM_TxCellStrongStore);

void BM_TxLockUncontended(benchmark::State& state) {
  static sync::TxLock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_TxLockUncontended);

void BM_FairTxLockUncontended(benchmark::State& state) {
  static sync::FairTxLock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_FairTxLockUncontended);

void BM_SpinLockUncontended(benchmark::State& state) {
  static sync::SpinLock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_SpinLockUncontended);

void BM_EbrGuard(benchmark::State& state) {
  for (auto _ : state) {
    mem::Guard guard;
    benchmark::DoNotOptimize(&guard);
  }
}
BENCHMARK(BM_EbrGuard);

struct NullDs {};
struct NullOp : core::Operation<NullDs> {
  void run_seq(NullDs&) override {}
};

void BM_PubArrayAddRemove(benchmark::State& state) {
  static core::PublicationArray<NullDs> pa;
  NullOp op;
  for (auto _ : state) {
    pa.add(&op);
    pa.remove_strong();
  }
}
BENCHMARK(BM_PubArrayAddRemove);

void BM_ZipfDraw(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  util::ZipfianGenerator zipf(16 * 1024, 0.9);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.next(rng));
}
BENCHMARK(BM_ZipfDraw);

void BM_UniformDraw(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_bounded(16 * 1024));
}
BENCHMARK(BM_UniformDraw);

void BM_TxnConflictAbortCost(benchmark::State& state) {
  // Cost of a doomed transaction: subscribe to a held lock, abort.
  static sync::TxLock lock;
  lock.lock();
  for (auto _ : state) {
    benchmark::DoNotOptimize(htm::attempt([&] { lock.subscribe(); }));
  }
  lock.unlock();
}
BENCHMARK(BM_TxnConflictAbortCost);

// Console output plus a side-channel capture of every run, so we can emit
// the hcf-bench-v1 JSON rows after google-benchmark finishes.
class CollectingReporter final : public benchmark::ConsoleReporter {
 public:
  struct Sample {
    std::string name;
    int threads;
    std::uint64_t iterations;
    double real_seconds;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      samples_.push_back({run.benchmark_name(),
                          static_cast<int>(run.threads),
                          static_cast<std::uint64_t>(run.iterations),
                          run.real_accumulated_time});
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<Sample>& samples() const { return samples_; }

 private:
  std::vector<Sample> samples_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> bench_args;
  bench_args.push_back(argv[0]);
  // Injected first so an explicit --benchmark_min_time later wins.
  static char quick_flag[] = "--benchmark_min_time=0.05";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
      if (json_path.empty()) {
        std::fprintf(stderr, "error: --json requires a file path\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      bench_args.insert(bench_args.begin() + 1, quick_flag);
    } else {
      bench_args.push_back(argv[i]);
    }
  }

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 2;
  }

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    hcf::harness::JsonReport report("micro_substrate");
    for (const auto& s : reporter.samples()) {
      hcf::harness::RunResult result;
      result.total_ops = s.iterations;
      result.duration_s = s.real_seconds;
      report.add_row(s.name, "substrate",
                     static_cast<std::size_t>(s.threads), 0, result);
    }
    if (!report.write_file(json_path)) {
      std::fprintf(stderr, "error: failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
