// Substrate microbenchmarks (google-benchmark): raw costs of the simulated
// HTM primitives, locks, publication array, and workload generators. These
// quantify the simulator's constant factors — useful context when reading
// the figure benchmarks' absolute numbers.
#include <benchmark/benchmark.h>

#include "core/publication_array.hpp"
#include "mem/ebr.hpp"
#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"
#include "sync/spinlock.hpp"
#include "sync/tx_lock.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace {

using namespace hcf;

void BM_TxnEmptyCommit(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(htm::attempt([] {}));
  }
}
BENCHMARK(BM_TxnEmptyCommit);

void BM_TxnReadOnly(benchmark::State& state) {
  static std::uint64_t data[64] = {};
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    htm::attempt([&] {
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < n; ++i) sum += htm::read(&data[i]);
      benchmark::DoNotOptimize(sum);
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TxnReadOnly)->Arg(1)->Arg(8)->Arg(32);

void BM_TxnWrite(benchmark::State& state) {
  static std::uint64_t data[64] = {};
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    htm::attempt([&] {
      for (std::size_t i = 0; i < n; ++i) htm::write(&data[i], i);
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TxnWrite)->Arg(1)->Arg(8)->Arg(32);

void BM_UninstrumentedRead(benchmark::State& state) {
  static std::uint64_t data[64] = {};
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (auto& d : data) sum += htm::read(&d);  // no txn: plain path
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_UninstrumentedRead);

void BM_TxCellStrongStore(benchmark::State& state) {
  static htm::TxCell<std::uint64_t> cell{0};
  std::uint64_t v = 0;
  for (auto _ : state) cell.store(++v);
}
BENCHMARK(BM_TxCellStrongStore);

void BM_TxLockUncontended(benchmark::State& state) {
  static sync::TxLock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_TxLockUncontended);

void BM_FairTxLockUncontended(benchmark::State& state) {
  static sync::FairTxLock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_FairTxLockUncontended);

void BM_SpinLockUncontended(benchmark::State& state) {
  static sync::SpinLock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_SpinLockUncontended);

void BM_EbrGuard(benchmark::State& state) {
  for (auto _ : state) {
    mem::Guard guard;
    benchmark::DoNotOptimize(&guard);
  }
}
BENCHMARK(BM_EbrGuard);

struct NullDs {};
struct NullOp : core::Operation<NullDs> {
  void run_seq(NullDs&) override {}
};

void BM_PubArrayAddRemove(benchmark::State& state) {
  static core::PublicationArray<NullDs> pa;
  NullOp op;
  for (auto _ : state) {
    pa.add(&op);
    pa.remove_strong();
  }
}
BENCHMARK(BM_PubArrayAddRemove);

void BM_ZipfDraw(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  util::ZipfianGenerator zipf(16 * 1024, 0.9);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.next(rng));
}
BENCHMARK(BM_ZipfDraw);

void BM_UniformDraw(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_bounded(16 * 1024));
}
BENCHMARK(BM_UniformDraw);

void BM_TxnConflictAbortCost(benchmark::State& state) {
  // Cost of a doomed transaction: subscribe to a held lock, abort.
  static sync::TxLock lock;
  lock.lock();
  for (auto _ : state) {
    benchmark::DoNotOptimize(htm::attempt([&] { lock.subscribe(); }));
  }
  lock.unlock();
}
BENCHMARK(BM_TxnConflictAbortCost);

}  // namespace
