// Figure 2 reproduction: hash-table throughput vs. thread count for
// workloads with 100% / 80% / 40% Find (remainder split evenly between
// Insert and Remove). Key range and bucket count 16K, prefilled to half,
// matching §3.3. Engines: Lock, TLE, FC, SCM, TLE+FC, HCF.
//
// Fig 2(b) in the paper shows the 80% workload on both sockets (72
// threads); pass --extended to include the oversubscribed thread counts.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "harness/issuers.hpp"
#include "mem/ebr.hpp"
#include "util/table.hpp"

namespace {

using namespace hcf;
using Table = ds::HashTable<std::uint64_t, std::uint64_t>;

constexpr std::uint64_t kKeyRange = 16 * 1024;

std::unique_ptr<Table> make_prefilled_table(const harness::WorkloadSpec& spec) {
  auto table = std::make_unique<Table>(spec.key_range);
  // Deterministic prefill of every other key up to half the range.
  for (std::uint64_t k = 0; k < spec.prefill; ++k) {
    table->insert(k * 2 % spec.key_range, (k * 2 % spec.key_range) * 2 + 1);
  }
  return table;
}

template <typename Engine>
harness::RunResult run_one(Engine& engine, const harness::WorkloadSpec& spec,
                           std::size_t threads,
                           const harness::DriverOptions& options) {
  return harness::run_timed(
      engine, threads,
      [&](std::size_t t) {
        return harness::HtWorker<Engine>(engine, spec, 17 + t * 7919);
      },
      options);
}

harness::RunResult run_named(const std::string& name,
                             const harness::WorkloadSpec& spec,
                             std::size_t threads,
                             const harness::DriverOptions& options) {
  auto table = make_prefilled_table(spec);
  harness::RunResult result;
  if (name == "Lock") {
    core::LockEngine<Table> e(*table);
    result = run_one(e, spec, threads, options);
  } else if (name == "TLE") {
    core::TleEngine<Table> e(*table);
    result = run_one(e, spec, threads, options);
  } else if (name == "FC") {
    core::FcEngine<Table> e(*table);
    result = run_one(e, spec, threads, options);
  } else if (name == "SCM") {
    core::ScmEngine<Table> e(*table);
    result = run_one(e, spec, threads, options);
  } else if (name == "TLE+FC") {
    core::TleFcEngine<Table> e(*table);
    result = run_one(e, spec, threads, options);
  } else {  // HCF
    core::HcfEngine<Table> e(*table, adapters::ht_paper_config(),
                             adapters::kHtNumArrays);
    result = run_one(e, spec, threads, options);
  }
  mem::EbrDomain::instance().drain();
  return result;
}

const char* kEngines[] = {"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"};

}  // namespace

int main(int argc, char** argv) {
  auto opts = hcf::bench::BenchOptions::parse(argc, argv);
  hcf::bench::BenchReport report(opts, "fig2_hash_table");
  hcf::bench::print_header(
      "Figure 2", "hash table throughput (Mops/s), 16K keys/buckets");

  struct Panel {
    const char* id;
    const char* tag;
    int find_pct;
  };
  const Panel panels[] = {
      {"2(a)", "100f", 100}, {"2(b)", "80f", 80}, {"2(c)", "40f", 40}};

  for (const auto& panel : panels) {
    if (!opts.workload_filter.empty() && opts.workload_filter != panel.tag) {
      continue;
    }
    for (const std::uint32_t work : opts.work_settings()) {
    auto spec = hcf::harness::WorkloadSpec::reads(panel.find_pct, kKeyRange);
    spec.cs_work = work;
    std::printf("\nFig %s: workload %s (key range %llu, prefill %llu)%s\n",
                panel.id, spec.label().c_str(),
                static_cast<unsigned long long>(spec.key_range),
                static_cast<unsigned long long>(spec.prefill),
                work == 0 ? " [paper parameters]"
                          : " [contention-amplified]");
    std::vector<std::string> header{"threads"};
    for (const char* e : kEngines) header.push_back(e);
    hcf::util::TextTable table(header);
    for (std::size_t threads : opts.threads) {
      std::vector<std::string> row{std::to_string(threads)};
      for (const char* engine : kEngines) {
        const auto result = run_named(engine, spec, threads, opts.driver);
        report.add(spec.label(), engine, threads, work, result);
        row.push_back(hcf::util::TextTable::num(result.throughput_mops()));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    }
  }
  return report.finish();
}
