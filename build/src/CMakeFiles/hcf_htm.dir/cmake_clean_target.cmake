file(REMOVE_RECURSE
  "libhcf_htm.a"
)
