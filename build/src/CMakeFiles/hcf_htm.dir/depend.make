# Empty dependencies file for hcf_htm.
# This may be replaced when dependencies are built.
