file(REMOVE_RECURSE
  "CMakeFiles/hcf_htm.dir/sim_htm/htm.cpp.o"
  "CMakeFiles/hcf_htm.dir/sim_htm/htm.cpp.o.d"
  "libhcf_htm.a"
  "libhcf_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcf_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
