# Empty dependencies file for engine_avl_test.
# This may be replaced when dependencies are built.
