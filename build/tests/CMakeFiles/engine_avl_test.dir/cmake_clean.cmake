file(REMOVE_RECURSE
  "CMakeFiles/engine_avl_test.dir/engine_avl_test.cpp.o"
  "CMakeFiles/engine_avl_test.dir/engine_avl_test.cpp.o.d"
  "engine_avl_test"
  "engine_avl_test.pdb"
  "engine_avl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_avl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
