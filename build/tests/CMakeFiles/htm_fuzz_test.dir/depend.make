# Empty dependencies file for htm_fuzz_test.
# This may be replaced when dependencies are built.
