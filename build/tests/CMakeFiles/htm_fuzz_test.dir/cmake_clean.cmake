file(REMOVE_RECURSE
  "CMakeFiles/htm_fuzz_test.dir/htm_fuzz_test.cpp.o"
  "CMakeFiles/htm_fuzz_test.dir/htm_fuzz_test.cpp.o.d"
  "htm_fuzz_test"
  "htm_fuzz_test.pdb"
  "htm_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
