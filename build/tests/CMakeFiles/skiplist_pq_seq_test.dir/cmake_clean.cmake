file(REMOVE_RECURSE
  "CMakeFiles/skiplist_pq_seq_test.dir/skiplist_pq_seq_test.cpp.o"
  "CMakeFiles/skiplist_pq_seq_test.dir/skiplist_pq_seq_test.cpp.o.d"
  "skiplist_pq_seq_test"
  "skiplist_pq_seq_test.pdb"
  "skiplist_pq_seq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skiplist_pq_seq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
