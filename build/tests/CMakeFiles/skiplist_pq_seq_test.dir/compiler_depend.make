# Empty compiler generated dependencies file for skiplist_pq_seq_test.
# This may be replaced when dependencies are built.
