file(REMOVE_RECURSE
  "CMakeFiles/adaptive_hcf_test.dir/adaptive_hcf_test.cpp.o"
  "CMakeFiles/adaptive_hcf_test.dir/adaptive_hcf_test.cpp.o.d"
  "adaptive_hcf_test"
  "adaptive_hcf_test.pdb"
  "adaptive_hcf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_hcf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
