# Empty compiler generated dependencies file for adaptive_hcf_test.
# This may be replaced when dependencies are built.
