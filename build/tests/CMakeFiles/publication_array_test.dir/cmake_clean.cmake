file(REMOVE_RECURSE
  "CMakeFiles/publication_array_test.dir/publication_array_test.cpp.o"
  "CMakeFiles/publication_array_test.dir/publication_array_test.cpp.o.d"
  "publication_array_test"
  "publication_array_test.pdb"
  "publication_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/publication_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
