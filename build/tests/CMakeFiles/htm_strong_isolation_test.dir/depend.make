# Empty dependencies file for htm_strong_isolation_test.
# This may be replaced when dependencies are built.
