file(REMOVE_RECURSE
  "CMakeFiles/htm_strong_isolation_test.dir/htm_strong_isolation_test.cpp.o"
  "CMakeFiles/htm_strong_isolation_test.dir/htm_strong_isolation_test.cpp.o.d"
  "htm_strong_isolation_test"
  "htm_strong_isolation_test.pdb"
  "htm_strong_isolation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_strong_isolation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
