file(REMOVE_RECURSE
  "CMakeFiles/avl_tree_seq_test.dir/avl_tree_seq_test.cpp.o"
  "CMakeFiles/avl_tree_seq_test.dir/avl_tree_seq_test.cpp.o.d"
  "avl_tree_seq_test"
  "avl_tree_seq_test.pdb"
  "avl_tree_seq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avl_tree_seq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
