# Empty dependencies file for engine_list_test.
# This may be replaced when dependencies are built.
