file(REMOVE_RECURSE
  "CMakeFiles/engine_list_test.dir/engine_list_test.cpp.o"
  "CMakeFiles/engine_list_test.dir/engine_list_test.cpp.o.d"
  "engine_list_test"
  "engine_list_test.pdb"
  "engine_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
