file(REMOVE_RECURSE
  "CMakeFiles/engine_deque_test.dir/engine_deque_test.cpp.o"
  "CMakeFiles/engine_deque_test.dir/engine_deque_test.cpp.o.d"
  "engine_deque_test"
  "engine_deque_test.pdb"
  "engine_deque_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_deque_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
