file(REMOVE_RECURSE
  "CMakeFiles/engine_capacity_test.dir/engine_capacity_test.cpp.o"
  "CMakeFiles/engine_capacity_test.dir/engine_capacity_test.cpp.o.d"
  "engine_capacity_test"
  "engine_capacity_test.pdb"
  "engine_capacity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_capacity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
