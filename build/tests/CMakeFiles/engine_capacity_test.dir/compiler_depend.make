# Empty compiler generated dependencies file for engine_capacity_test.
# This may be replaced when dependencies are built.
