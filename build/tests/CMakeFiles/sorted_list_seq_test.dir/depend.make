# Empty dependencies file for sorted_list_seq_test.
# This may be replaced when dependencies are built.
