file(REMOVE_RECURSE
  "CMakeFiles/sorted_list_seq_test.dir/sorted_list_seq_test.cpp.o"
  "CMakeFiles/sorted_list_seq_test.dir/sorted_list_seq_test.cpp.o.d"
  "sorted_list_seq_test"
  "sorted_list_seq_test.pdb"
  "sorted_list_seq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorted_list_seq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
