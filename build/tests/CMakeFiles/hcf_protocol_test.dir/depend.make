# Empty dependencies file for hcf_protocol_test.
# This may be replaced when dependencies are built.
