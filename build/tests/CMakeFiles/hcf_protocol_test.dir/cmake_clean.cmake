file(REMOVE_RECURSE
  "CMakeFiles/hcf_protocol_test.dir/hcf_protocol_test.cpp.o"
  "CMakeFiles/hcf_protocol_test.dir/hcf_protocol_test.cpp.o.d"
  "hcf_protocol_test"
  "hcf_protocol_test.pdb"
  "hcf_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcf_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
