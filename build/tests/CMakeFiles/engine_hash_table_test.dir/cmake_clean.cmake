file(REMOVE_RECURSE
  "CMakeFiles/engine_hash_table_test.dir/engine_hash_table_test.cpp.o"
  "CMakeFiles/engine_hash_table_test.dir/engine_hash_table_test.cpp.o.d"
  "engine_hash_table_test"
  "engine_hash_table_test.pdb"
  "engine_hash_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_hash_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
