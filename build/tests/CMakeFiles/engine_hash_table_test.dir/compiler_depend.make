# Empty compiler generated dependencies file for engine_hash_table_test.
# This may be replaced when dependencies are built.
