file(REMOVE_RECURSE
  "CMakeFiles/engine_stack_test.dir/engine_stack_test.cpp.o"
  "CMakeFiles/engine_stack_test.dir/engine_stack_test.cpp.o.d"
  "engine_stack_test"
  "engine_stack_test.pdb"
  "engine_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
