# Empty dependencies file for engine_stack_test.
# This may be replaced when dependencies are built.
