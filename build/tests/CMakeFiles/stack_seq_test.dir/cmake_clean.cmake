file(REMOVE_RECURSE
  "CMakeFiles/stack_seq_test.dir/stack_seq_test.cpp.o"
  "CMakeFiles/stack_seq_test.dir/stack_seq_test.cpp.o.d"
  "stack_seq_test"
  "stack_seq_test.pdb"
  "stack_seq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_seq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
