# Empty compiler generated dependencies file for stack_seq_test.
# This may be replaced when dependencies are built.
