file(REMOVE_RECURSE
  "CMakeFiles/deque_seq_test.dir/deque_seq_test.cpp.o"
  "CMakeFiles/deque_seq_test.dir/deque_seq_test.cpp.o.d"
  "deque_seq_test"
  "deque_seq_test.pdb"
  "deque_seq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deque_seq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
