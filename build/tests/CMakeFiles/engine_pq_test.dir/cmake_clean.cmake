file(REMOVE_RECURSE
  "CMakeFiles/engine_pq_test.dir/engine_pq_test.cpp.o"
  "CMakeFiles/engine_pq_test.dir/engine_pq_test.cpp.o.d"
  "engine_pq_test"
  "engine_pq_test.pdb"
  "engine_pq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_pq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
