# Empty compiler generated dependencies file for engine_pq_test.
# This may be replaced when dependencies are built.
