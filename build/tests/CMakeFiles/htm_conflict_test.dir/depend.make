# Empty dependencies file for htm_conflict_test.
# This may be replaced when dependencies are built.
