file(REMOVE_RECURSE
  "CMakeFiles/htm_conflict_test.dir/htm_conflict_test.cpp.o"
  "CMakeFiles/htm_conflict_test.dir/htm_conflict_test.cpp.o.d"
  "htm_conflict_test"
  "htm_conflict_test.pdb"
  "htm_conflict_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_conflict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
