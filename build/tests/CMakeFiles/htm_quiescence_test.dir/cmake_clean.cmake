file(REMOVE_RECURSE
  "CMakeFiles/htm_quiescence_test.dir/htm_quiescence_test.cpp.o"
  "CMakeFiles/htm_quiescence_test.dir/htm_quiescence_test.cpp.o.d"
  "htm_quiescence_test"
  "htm_quiescence_test.pdb"
  "htm_quiescence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_quiescence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
