# Empty dependencies file for htm_quiescence_test.
# This may be replaced when dependencies are built.
