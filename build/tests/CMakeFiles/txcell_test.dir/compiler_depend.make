# Empty compiler generated dependencies file for txcell_test.
# This may be replaced when dependencies are built.
