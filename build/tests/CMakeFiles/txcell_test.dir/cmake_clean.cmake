file(REMOVE_RECURSE
  "CMakeFiles/txcell_test.dir/txcell_test.cpp.o"
  "CMakeFiles/txcell_test.dir/txcell_test.cpp.o.d"
  "txcell_test"
  "txcell_test.pdb"
  "txcell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txcell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
