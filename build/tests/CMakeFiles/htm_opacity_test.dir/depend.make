# Empty dependencies file for htm_opacity_test.
# This may be replaced when dependencies are built.
