file(REMOVE_RECURSE
  "CMakeFiles/htm_opacity_test.dir/htm_opacity_test.cpp.o"
  "CMakeFiles/htm_opacity_test.dir/htm_opacity_test.cpp.o.d"
  "htm_opacity_test"
  "htm_opacity_test.pdb"
  "htm_opacity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_opacity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
