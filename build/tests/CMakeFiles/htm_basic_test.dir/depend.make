# Empty dependencies file for htm_basic_test.
# This may be replaced when dependencies are built.
