file(REMOVE_RECURSE
  "CMakeFiles/htm_basic_test.dir/htm_basic_test.cpp.o"
  "CMakeFiles/htm_basic_test.dir/htm_basic_test.cpp.o.d"
  "htm_basic_test"
  "htm_basic_test.pdb"
  "htm_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
