add_test([=[CrossEngine.ThreeEnginesShareTheSubstrate]=]  /root/repo/build/tests/cross_engine_test [==[--gtest_filter=CrossEngine.ThreeEnginesShareTheSubstrate]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[CrossEngine.ThreeEnginesShareTheSubstrate]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  cross_engine_test_TESTS CrossEngine.ThreeEnginesShareTheSubstrate)
