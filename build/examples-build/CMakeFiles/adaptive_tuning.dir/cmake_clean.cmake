file(REMOVE_RECURSE
  "../examples/adaptive_tuning"
  "../examples/adaptive_tuning.pdb"
  "CMakeFiles/adaptive_tuning.dir/adaptive_tuning.cpp.o"
  "CMakeFiles/adaptive_tuning.dir/adaptive_tuning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
