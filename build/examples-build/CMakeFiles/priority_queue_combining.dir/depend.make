# Empty dependencies file for priority_queue_combining.
# This may be replaced when dependencies are built.
