file(REMOVE_RECURSE
  "../examples/priority_queue_combining"
  "../examples/priority_queue_combining.pdb"
  "CMakeFiles/priority_queue_combining.dir/priority_queue_combining.cpp.o"
  "CMakeFiles/priority_queue_combining.dir/priority_queue_combining.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_queue_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
