file(REMOVE_RECURSE
  "../examples/zipfian_contention"
  "../examples/zipfian_contention.pdb"
  "CMakeFiles/zipfian_contention.dir/zipfian_contention.cpp.o"
  "CMakeFiles/zipfian_contention.dir/zipfian_contention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipfian_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
