# Empty compiler generated dependencies file for zipfian_contention.
# This may be replaced when dependencies are built.
