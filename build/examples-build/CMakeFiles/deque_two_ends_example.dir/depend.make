# Empty dependencies file for deque_two_ends_example.
# This may be replaced when dependencies are built.
