# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for deque_two_ends_example.
