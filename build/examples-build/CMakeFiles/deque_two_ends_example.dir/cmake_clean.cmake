file(REMOVE_RECURSE
  "../examples/deque_two_ends_example"
  "../examples/deque_two_ends_example.pdb"
  "CMakeFiles/deque_two_ends_example.dir/deque_two_ends_example.cpp.o"
  "CMakeFiles/deque_two_ends_example.dir/deque_two_ends_example.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deque_two_ends_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
