file(REMOVE_RECURSE
  "../bench/fig2_hash_table"
  "../bench/fig2_hash_table.pdb"
  "CMakeFiles/fig2_hash_table.dir/fig2_hash_table.cpp.o"
  "CMakeFiles/fig2_hash_table.dir/fig2_hash_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_hash_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
