# Empty dependencies file for fig2_hash_table.
# This may be replaced when dependencies are built.
