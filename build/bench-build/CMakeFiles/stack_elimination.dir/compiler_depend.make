# Empty compiler generated dependencies file for stack_elimination.
# This may be replaced when dependencies are built.
