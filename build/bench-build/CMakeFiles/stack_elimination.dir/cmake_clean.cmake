file(REMOVE_RECURSE
  "../bench/stack_elimination"
  "../bench/stack_elimination.pdb"
  "CMakeFiles/stack_elimination.dir/stack_elimination.cpp.o"
  "CMakeFiles/stack_elimination.dir/stack_elimination.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
