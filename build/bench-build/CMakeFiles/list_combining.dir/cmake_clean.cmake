file(REMOVE_RECURSE
  "../bench/list_combining"
  "../bench/list_combining.pdb"
  "CMakeFiles/list_combining.dir/list_combining.cpp.o"
  "CMakeFiles/list_combining.dir/list_combining.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
