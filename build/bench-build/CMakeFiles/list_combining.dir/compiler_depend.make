# Empty compiler generated dependencies file for list_combining.
# This may be replaced when dependencies are built.
