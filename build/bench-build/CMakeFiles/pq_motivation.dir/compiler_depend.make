# Empty compiler generated dependencies file for pq_motivation.
# This may be replaced when dependencies are built.
