file(REMOVE_RECURSE
  "../bench/pq_motivation"
  "../bench/pq_motivation.pdb"
  "CMakeFiles/pq_motivation.dir/pq_motivation.cpp.o"
  "CMakeFiles/pq_motivation.dir/pq_motivation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pq_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
