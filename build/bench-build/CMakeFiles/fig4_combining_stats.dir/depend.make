# Empty dependencies file for fig4_combining_stats.
# This may be replaced when dependencies are built.
