file(REMOVE_RECURSE
  "../bench/ablation_hcf_variants"
  "../bench/ablation_hcf_variants.pdb"
  "CMakeFiles/ablation_hcf_variants.dir/ablation_hcf_variants.cpp.o"
  "CMakeFiles/ablation_hcf_variants.dir/ablation_hcf_variants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hcf_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
