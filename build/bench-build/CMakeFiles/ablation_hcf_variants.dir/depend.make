# Empty dependencies file for ablation_hcf_variants.
# This may be replaced when dependencies are built.
