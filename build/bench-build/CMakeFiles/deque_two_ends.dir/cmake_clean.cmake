file(REMOVE_RECURSE
  "../bench/deque_two_ends"
  "../bench/deque_two_ends.pdb"
  "CMakeFiles/deque_two_ends.dir/deque_two_ends.cpp.o"
  "CMakeFiles/deque_two_ends.dir/deque_two_ends.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deque_two_ends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
