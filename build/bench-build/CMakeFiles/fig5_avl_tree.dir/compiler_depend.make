# Empty compiler generated dependencies file for fig5_avl_tree.
# This may be replaced when dependencies are built.
