file(REMOVE_RECURSE
  "../bench/fig5_avl_tree"
  "../bench/fig5_avl_tree.pdb"
  "CMakeFiles/fig5_avl_tree.dir/fig5_avl_tree.cpp.o"
  "CMakeFiles/fig5_avl_tree.dir/fig5_avl_tree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_avl_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
