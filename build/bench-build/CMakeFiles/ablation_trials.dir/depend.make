# Empty dependencies file for ablation_trials.
# This may be replaced when dependencies are built.
