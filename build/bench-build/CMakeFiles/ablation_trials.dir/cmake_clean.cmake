file(REMOVE_RECURSE
  "../bench/ablation_trials"
  "../bench/ablation_trials.pdb"
  "CMakeFiles/ablation_trials.dir/ablation_trials.cpp.o"
  "CMakeFiles/ablation_trials.dir/ablation_trials.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
