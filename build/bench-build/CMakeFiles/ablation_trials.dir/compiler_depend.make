# Empty compiler generated dependencies file for ablation_trials.
# This may be replaced when dependencies are built.
