#include "ds/deque.hpp"

#include <gtest/gtest.h>

#include "ebr_drain_env.hpp"

#include <deque>
#include <vector>

#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::ds {
namespace {

using Dq = Deque<std::uint64_t>;

TEST(DequeSeq, PushPopBothEnds) {
  Dq d;
  EXPECT_TRUE(d.empty());
  d.push_left(1);
  d.push_right(2);
  d.push_left(0);
  // [0, 1, 2]
  EXPECT_EQ(d.size_slow(), 3u);
  EXPECT_TRUE(d.check_invariants());
  EXPECT_EQ(d.pop_left(), 0u);
  EXPECT_EQ(d.pop_right(), 2u);
  EXPECT_EQ(d.pop_left(), 1u);
  EXPECT_FALSE(d.pop_left().has_value());
  EXPECT_FALSE(d.pop_right().has_value());
  EXPECT_TRUE(d.empty());
}

TEST(DequeSeq, SingleElementPopsFromEitherEnd) {
  {
    Dq d;
    d.push_left(9);
    EXPECT_EQ(d.pop_right(), 9u);
    EXPECT_TRUE(d.empty());
    EXPECT_TRUE(d.check_invariants());
  }
  {
    Dq d;
    d.push_right(9);
    EXPECT_EQ(d.pop_left(), 9u);
    EXPECT_TRUE(d.empty());
  }
}

TEST(DequeSeq, PushNLeftOrder) {
  Dq d;
  d.push_right(100);
  const std::uint64_t vals[] = {1, 2, 3};
  d.push_n_left(vals);
  // values[0] outermost left: [1, 2, 3, 100]
  EXPECT_EQ(d.pop_left(), 1u);
  EXPECT_EQ(d.pop_left(), 2u);
  EXPECT_EQ(d.pop_left(), 3u);
  EXPECT_EQ(d.pop_left(), 100u);
  EXPECT_TRUE(d.check_invariants());
}

TEST(DequeSeq, PushNRightOrder) {
  Dq d;
  d.push_left(100);
  const std::uint64_t vals[] = {1, 2, 3};
  d.push_n_right(vals);
  // values[0] outermost right: [100, 3, 2, 1]
  EXPECT_EQ(d.pop_right(), 1u);
  EXPECT_EQ(d.pop_right(), 2u);
  EXPECT_EQ(d.pop_right(), 3u);
  EXPECT_EQ(d.pop_right(), 100u);
}

TEST(DequeSeq, PushNIntoEmpty) {
  Dq d;
  const std::uint64_t vals[] = {4, 5};
  d.push_n_left(vals);
  EXPECT_EQ(d.size_slow(), 2u);
  EXPECT_TRUE(d.check_invariants());
  EXPECT_EQ(d.pop_right(), 5u);
  EXPECT_EQ(d.pop_right(), 4u);

  d.push_n_right(vals);
  EXPECT_TRUE(d.check_invariants());
  EXPECT_EQ(d.pop_left(), 5u);
  EXPECT_EQ(d.pop_left(), 4u);
}

TEST(DequeSeq, PopNLeftMatchesRepeatedPops) {
  Dq batched, single;
  for (std::uint64_t v = 0; v < 10; ++v) {
    batched.push_right(v);
    single.push_right(v);
  }
  std::uint64_t out[4];
  EXPECT_EQ(batched.pop_n_left(std::span<std::uint64_t>(out, 4)), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], *single.pop_left());
  EXPECT_EQ(batched.size_slow(), single.size_slow());
  EXPECT_TRUE(batched.check_invariants());
}

TEST(DequeSeq, PopNRightDrainsPastEmpty) {
  Dq d;
  d.push_left(1);
  d.push_left(2);
  std::uint64_t out[5];
  EXPECT_EQ(d.pop_n_right(std::span<std::uint64_t>(out, 5)), 2u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 2u);
  EXPECT_TRUE(d.empty());
  EXPECT_TRUE(d.check_invariants());
  EXPECT_EQ(d.pop_n_right(std::span<std::uint64_t>(out, 5)), 0u);
}

TEST(DequeSeq, RandomizedAgainstStdDeque) {
  Dq d;
  std::deque<std::uint64_t> ref;
  util::Xoshiro256 rng(31);
  for (int i = 0; i < 30000; ++i) {
    switch (rng.next_bounded(4)) {
      case 0: {
        const auto v = rng.next();
        d.push_left(v);
        ref.push_front(v);
        break;
      }
      case 1: {
        const auto v = rng.next();
        d.push_right(v);
        ref.push_back(v);
        break;
      }
      case 2: {
        const auto got = d.pop_left();
        if (ref.empty()) {
          ASSERT_FALSE(got.has_value());
        } else {
          ASSERT_EQ(*got, ref.front());
          ref.pop_front();
        }
        break;
      }
      default: {
        const auto got = d.pop_right();
        if (ref.empty()) {
          ASSERT_FALSE(got.has_value());
        } else {
          ASSERT_EQ(*got, ref.back());
          ref.pop_back();
        }
      }
    }
  }
  EXPECT_EQ(d.size_slow(), ref.size());
  EXPECT_TRUE(d.check_invariants());
  std::vector<std::uint64_t> contents;
  d.for_each([&](std::uint64_t v) { contents.push_back(v); });
  EXPECT_TRUE(std::equal(contents.begin(), contents.end(), ref.begin(),
                         ref.end()));
  mem::EbrDomain::instance().drain();
}

TEST(DequeSeq, TransactionalRollback) {
  Dq d;
  d.push_left(1);
  htm::attempt([&] {
    d.push_right(2);
    (void)d.pop_left();
    htm::abort_tx();
  });
  EXPECT_EQ(d.size_slow(), 1u);
  EXPECT_EQ(*d.pop_left(), 1u);
  EXPECT_TRUE(d.check_invariants());
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::ds
