#include "core/publication_array.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/operation.hpp"
#include "sim_htm/htm.hpp"
#include "util/thread_id.hpp"

namespace hcf::core {
namespace {

struct NullDs {};

class NoopOp : public Operation<NullDs> {
 public:
  void run_seq(NullDs&) override {}
};

TEST(PublicationArray, AddPeekClear) {
  PublicationArray<NullDs> pa;
  NoopOp op;
  const std::size_t self = util::this_thread_id();
  EXPECT_EQ(pa.peek(self), nullptr);
  pa.add(&op);
  EXPECT_EQ(pa.peek(self), &op);
  pa.clear_slot(self);
  EXPECT_EQ(pa.peek(self), nullptr);
}

TEST(PublicationArray, RemoveStrongClearsOwnSlot) {
  PublicationArray<NullDs> pa;
  NoopOp op;
  pa.add(&op);
  pa.remove_strong();
  EXPECT_EQ(pa.peek(util::this_thread_id()), nullptr);
}

TEST(PublicationArray, ForEachSeesAllAnnounced) {
  PublicationArray<NullDs> pa;
  constexpr int kThreads = 6;
  std::vector<std::unique_ptr<NoopOp>> ops;
  for (int i = 0; i < kThreads; ++i) ops.push_back(std::make_unique<NoopOp>());

  std::atomic<int> announced{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      pa.add(ops[i].get());
      announced.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
      pa.remove_strong();
    });
  }
  while (announced.load() != kThreads) std::this_thread::yield();

  pa.selection_lock().lock();
  int seen = 0;
  pa.for_each_announced([&](Operation<NullDs>* op, std::size_t) {
    EXPECT_NE(op, nullptr);
    ++seen;
  });
  pa.selection_lock().unlock();
  EXPECT_EQ(seen, kThreads);

  release = true;
  for (auto& t : threads) t.join();

  pa.selection_lock().lock();
  seen = 0;
  pa.for_each_announced([&](Operation<NullDs>*, std::size_t) { ++seen; });
  pa.selection_lock().unlock();
  EXPECT_EQ(seen, 0);
}

TEST(PublicationArray, TransactionalRemoveCommits) {
  PublicationArray<NullDs> pa;
  NoopOp op;
  pa.add(&op);
  const bool ok = htm::attempt([&] { pa.remove_tx(&op); });
  EXPECT_TRUE(ok);
  EXPECT_EQ(pa.peek(util::this_thread_id()), nullptr);
}

TEST(PublicationArray, TransactionalRemoveRolledBackOnAbort) {
  PublicationArray<NullDs> pa;
  NoopOp op;
  pa.add(&op);
  htm::attempt([&] {
    pa.remove_tx(&op);
    htm::abort_tx();
  });
  EXPECT_EQ(pa.peek(util::this_thread_id()), &op);
  pa.remove_strong();
}

TEST(PublicationArray, SelectionLockSubscriptionAborts) {
  PublicationArray<NullDs> pa;
  pa.selection_lock().lock();
  EXPECT_FALSE(htm::attempt([&] { pa.selection_lock().subscribe(); }));
  pa.selection_lock().unlock();
  EXPECT_TRUE(htm::attempt([&] { pa.selection_lock().subscribe(); }));
}

TEST(OperationDescriptor, StatusLifecycle) {
  NoopOp op;
  op.prepare();
  EXPECT_EQ(op.status(), OpStatus::UnAnnounced);
  op.mark_announced();
  EXPECT_EQ(op.status(), OpStatus::Announced);
  op.mark_being_helped();
  EXPECT_EQ(op.status(), OpStatus::BeingHelped);
  op.mark_done(Phase::Combining);
  EXPECT_EQ(op.status(), OpStatus::Done);
  EXPECT_EQ(op.completed_phase(), Phase::Combining);
  op.wait_done();  // must not block once Done
}

TEST(OperationDescriptor, DefaultRunMultiRunsAll) {
  struct CountDs {
    int count = 0;
  };
  struct CountOp : Operation<CountDs> {
    void run_seq(CountDs& ds) override { ++ds.count; }
  };
  CountDs ds;
  CountOp a, b, c;
  Operation<CountDs>* ops[] = {&a, &b, &c};
  const std::size_t k = a.run_multi(ds, std::span<Operation<CountDs>*>(ops));
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(ds.count, 3);
}

TEST(OperationDescriptor, HelpNobodyRefuses) {
  HelpNobody<NullDs, NoopOp> op;
  NoopOp other;
  EXPECT_FALSE(op.should_help(other));
  NoopOp helper;
  EXPECT_TRUE(helper.should_help(op));  // default helps everyone
}

}  // namespace
}  // namespace hcf::core
