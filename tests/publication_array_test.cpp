#include "core/publication_array.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/operation.hpp"
#include "sim_htm/htm.hpp"
#include "util/thread_id.hpp"

namespace hcf::core {
namespace {

struct NullDs {};

class NoopOp : public Operation<NullDs> {
 public:
  void run_seq(NullDs&) override {}
};

TEST(PublicationArray, AddPeekClear) {
  PublicationArray<NullDs> pa;
  NoopOp op;
  const std::size_t self = util::this_thread_id();
  EXPECT_EQ(pa.peek(self), nullptr);
  pa.add(&op);
  EXPECT_EQ(pa.peek(self), &op);
  pa.selection_lock().lock();
  pa.clear_slot(self);
  pa.selection_lock().unlock();
  EXPECT_EQ(pa.peek(self), nullptr);
}

TEST(PublicationArray, RemoveStrongClearsOwnSlot) {
  PublicationArray<NullDs> pa;
  NoopOp op;
  pa.add(&op);
  pa.remove_strong();
  EXPECT_EQ(pa.peek(util::this_thread_id()), nullptr);
}

TEST(PublicationArray, ForEachSeesAllAnnounced) {
  PublicationArray<NullDs> pa;
  constexpr int kThreads = 6;
  std::vector<std::unique_ptr<NoopOp>> ops;
  for (int i = 0; i < kThreads; ++i) ops.push_back(std::make_unique<NoopOp>());

  std::atomic<int> announced{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      pa.add(ops[i].get());
      announced.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
      pa.remove_strong();
    });
  }
  while (announced.load() != kThreads) std::this_thread::yield();

  pa.selection_lock().lock();
  int seen = 0;
  pa.for_each_announced([&](Operation<NullDs>* op, std::size_t) {
    EXPECT_NE(op, nullptr);
    ++seen;
  });
  pa.selection_lock().unlock();
  EXPECT_EQ(seen, kThreads);

  release = true;
  for (auto& t : threads) t.join();

  pa.selection_lock().lock();
  seen = 0;
  pa.for_each_announced([&](Operation<NullDs>*, std::size_t) { ++seen; });
  pa.selection_lock().unlock();
  EXPECT_EQ(seen, 0);
}

TEST(PublicationArray, TransactionalRemoveCommits) {
  PublicationArray<NullDs> pa;
  NoopOp op;
  pa.add(&op);
  const bool ok = htm::attempt([&] { pa.remove_tx(&op); });
  EXPECT_TRUE(ok);
  EXPECT_EQ(pa.peek(util::this_thread_id()), nullptr);
}

TEST(PublicationArray, TransactionalRemoveRolledBackOnAbort) {
  PublicationArray<NullDs> pa;
  NoopOp op;
  pa.add(&op);
  htm::attempt([&] {
    pa.remove_tx(&op);
    htm::abort_tx();
  });
  EXPECT_EQ(pa.peek(util::this_thread_id()), &op);
  pa.remove_strong();
}

TEST(PublicationArray, SelectionLockSubscriptionAborts) {
  PublicationArray<NullDs> pa;
  pa.selection_lock().lock();
  EXPECT_FALSE(htm::attempt([&] { pa.selection_lock().subscribe(); }));
  pa.selection_lock().unlock();
  EXPECT_TRUE(htm::attempt([&] { pa.selection_lock().subscribe(); }));
}

// ---- occupancy-indexed scanning (DESIGN.md §9.1) --------------------------

TEST(PublicationArrayOccupancy, EmptyScanSkipsEveryWord) {
  PublicationArray<NullDs> pa;
  pa.selection_lock().lock();
  std::size_t visited = 0;
  const std::size_t skipped =
      pa.for_each_announced([&](Operation<NullDs>*, std::size_t) { ++visited; });
  pa.selection_lock().unlock();
  EXPECT_EQ(visited, 0u);
  EXPECT_EQ(skipped, PublicationArray<NullDs>::kOccupancyWords);
}

// A full-capacity array scan must visit exactly the announced slots — no
// phantom visits from stale metadata, no missed announcements — and must
// skip every occupancy word with no announced slot in it.
TEST(PublicationArrayOccupancy, ScanVisitsExactlyAnnouncedSlots) {
  PublicationArray<NullDs> pa;
  constexpr int kThreads = 5;
  std::vector<std::unique_ptr<NoopOp>> ops;
  for (int i = 0; i < kThreads; ++i) ops.push_back(std::make_unique<NoopOp>());

  std::array<std::size_t, kThreads> announced_slot{};
  std::atomic<int> announced{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      announced_slot[static_cast<std::size_t>(i)] = util::this_thread_id();
      pa.add(ops[i].get());
      announced.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
      pa.remove_strong();
    });
  }
  while (announced.load() != kThreads) std::this_thread::yield();

  std::set<std::size_t> expected(announced_slot.begin(), announced_slot.end());
  std::set<std::size_t> expected_words;
  for (std::size_t slot : expected) expected_words.insert(slot >> 6);

  pa.selection_lock().lock();
  std::set<std::size_t> visited;
  const std::size_t skipped = pa.for_each_announced(
      [&](Operation<NullDs>* op, std::size_t slot) {
        EXPECT_NE(op, nullptr);
        EXPECT_TRUE(visited.insert(slot).second) << "slot visited twice";
      });
  pa.selection_lock().unlock();

  EXPECT_EQ(visited, expected);
  EXPECT_EQ(skipped, PublicationArray<NullDs>::kOccupancyWords -
                         expected_words.size());

  release = true;
  for (auto& t : threads) t.join();
}

// remove_tx leaves the occupancy bit stale by design; the scan re-verifies
// the slot and must neither visit the removed op nor skip the word.
TEST(PublicationArrayOccupancy, StaleBitFromTxRemoveIsReverifiedAway) {
  PublicationArray<NullDs> pa;
  NoopOp op;
  const std::size_t self = util::this_thread_id();
  pa.add(&op);
  ASSERT_TRUE(htm::attempt([&] { pa.remove_tx(&op); }));
  ASSERT_EQ(pa.peek(self), nullptr);
  // The hint is stale: bit still set for an empty slot.
  EXPECT_NE(pa.occupancy_word(self >> 6) & (std::uint64_t{1} << (self & 63)),
            0u);

  pa.selection_lock().lock();
  std::size_t visited = 0;
  std::size_t skipped =
      pa.for_each_announced([&](Operation<NullDs>*, std::size_t) { ++visited; });
  pa.selection_lock().unlock();
  EXPECT_EQ(visited, 0u);  // stale bit never yields a phantom op
  EXPECT_EQ(skipped, PublicationArray<NullDs>::kOccupancyWords - 1);

  // Re-announcing reuses the slot; the op must be seen exactly once.
  pa.add(&op);
  pa.selection_lock().lock();
  visited = 0;
  pa.for_each_announced([&](Operation<NullDs>* seen, std::size_t slot) {
    EXPECT_EQ(seen, &op);
    EXPECT_EQ(slot, self);
    ++visited;
  });
  pa.selection_lock().unlock();
  EXPECT_EQ(visited, 1u);
  pa.remove_strong();
}

TEST(PublicationArrayOccupancy, ClearSlotClearsBit) {
  PublicationArray<NullDs> pa;
  NoopOp op;
  const std::size_t self = util::this_thread_id();
  pa.add(&op);
  ASSERT_NE(pa.occupancy_word(self >> 6), 0u);
  pa.selection_lock().lock();
  pa.clear_slot(self);
  pa.selection_lock().unlock();
  EXPECT_EQ(pa.occupancy_word(self >> 6) & (std::uint64_t{1} << (self & 63)),
            0u);
}

TEST(PublicationArrayOccupancy, CollectAnnouncedSelectsAndUnpublishes) {
  PublicationArray<NullDs> pa;
  NoopOp op;
  op.prepare();
  op.mark_announced();
  pa.add(&op);

  std::vector<Operation<NullDs>*> out;
  out.reserve(util::kMaxThreads);
  pa.selection_lock().lock();
  // scan-locked: selection lock acquired on the line above.
  pa.collect_announced(
      out, [](Operation<NullDs>* o) { return o->status() == OpStatus::Announced; });
  pa.selection_lock().unlock();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], &op);
  EXPECT_EQ(pa.peek(util::this_thread_id()), nullptr);

  out.clear();
  pa.selection_lock().lock();
  // scan-locked: selection lock acquired on the line above.
  const std::size_t skipped = pa.collect_announced(
      out, [](Operation<NullDs>*) { return true; });
  pa.selection_lock().unlock();
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(skipped, PublicationArray<NullDs>::kOccupancyWords);
}

TEST(PublicationArrayEpoch, PublishAdvancesMonotonically) {
  PublicationArray<NullDs> pa;
  EXPECT_EQ(pa.combined_epoch(), 0u);
  pa.publish_combined(3);
  EXPECT_EQ(pa.combined_epoch(), 3u);
  pa.publish_combined(2);
  EXPECT_EQ(pa.combined_epoch(), 5u);
}

TEST(OperationDescriptor, StatusLifecycle) {
  NoopOp op;
  op.prepare();
  EXPECT_EQ(op.status(), OpStatus::UnAnnounced);
  op.mark_announced();
  EXPECT_EQ(op.status(), OpStatus::Announced);
  op.mark_being_helped();
  EXPECT_EQ(op.status(), OpStatus::BeingHelped);
  op.mark_done(Phase::Combining);
  EXPECT_EQ(op.status(), OpStatus::Done);
  EXPECT_EQ(op.completed_phase(), Phase::Combining);
  op.wait_done();  // must not block once Done
}

TEST(OperationDescriptor, DefaultRunMultiRunsAll) {
  struct CountDs {
    int count = 0;
  };
  struct CountOp : Operation<CountDs> {
    void run_seq(CountDs& ds) override { ++ds.count; }
  };
  CountDs ds;
  CountOp a, b, c;
  Operation<CountDs>* ops[] = {&a, &b, &c};
  const std::size_t k = a.run_multi(ds, std::span<Operation<CountDs>*>(ops));
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(ds.count, 3);
}

TEST(OperationDescriptor, HelpNobodyRefuses) {
  HelpNobody<NullDs, NoopOp> op;
  NoopOp other;
  EXPECT_FALSE(op.should_help(other));
  NoopOp helper;
  EXPECT_TRUE(helper.should_help(op));  // default helps everyone
}

}  // namespace
}  // namespace hcf::core
