#include "ds/skiplist_pq.hpp"

#include <gtest/gtest.h>

#include "ebr_drain_env.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::ds {
namespace {

using Pq = SkipListPq<std::uint64_t>;

TEST(SkipListPqSeq, RemoveMinReturnsAscendingOrder) {
  Pq pq;
  util::Xoshiro256 rng(5);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 1000; ++i) {
    const auto k = rng.next();
    keys.push_back(k);
    pq.insert(k);
  }
  EXPECT_TRUE(pq.check_invariants());
  std::sort(keys.begin(), keys.end());
  for (std::uint64_t expected : keys) {
    const auto got = pq.remove_min();
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(*got, expected);
  }
  EXPECT_FALSE(pq.remove_min().has_value());
  EXPECT_TRUE(pq.empty());
}

TEST(SkipListPqSeq, DuplicateKeysAllReturned) {
  Pq pq;
  for (int i = 0; i < 5; ++i) pq.insert(7);
  pq.insert(3);
  EXPECT_EQ(pq.remove_min(), 3u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(pq.remove_min(), 7u);
  EXPECT_TRUE(pq.empty());
}

TEST(SkipListPqSeq, PeekDoesNotRemove) {
  Pq pq;
  pq.insert(9);
  EXPECT_EQ(pq.peek_min(), 9u);
  EXPECT_EQ(pq.size_slow(), 1u);
  EXPECT_EQ(pq.remove_min(), 9u);
  EXPECT_FALSE(pq.peek_min().has_value());
}

TEST(SkipListPqSeq, RemoveMinNMatchesRepeatedRemoveMin) {
  util::Xoshiro256 rng(8);
  for (int round = 0; round < 50; ++round) {
    Pq batched, single;
    std::vector<std::uint64_t> keys;
    const int n = 40 + static_cast<int>(rng.next_bounded(60));
    for (int i = 0; i < n; ++i) {
      const auto k = rng.next_bounded(1000);
      keys.push_back(k);
      batched.insert(k);
      single.insert(k);
    }
    const std::size_t batch = 1 + rng.next_bounded(12);
    std::vector<std::uint64_t> got(batch);
    const std::size_t removed = batched.remove_min_n(std::span(got.data(), batch));
    ASSERT_EQ(removed, std::min<std::size_t>(batch, keys.size()));
    for (std::size_t i = 0; i < removed; ++i) {
      ASSERT_EQ(got[i], *single.remove_min()) << "round " << round;
    }
    ASSERT_EQ(batched.size_slow(), single.size_slow());
    ASSERT_TRUE(batched.check_invariants());
  }
  mem::EbrDomain::instance().drain();
}

TEST(SkipListPqSeq, RemoveMinNOnEmptyReturnsZero) {
  Pq pq;
  std::uint64_t out[4];
  EXPECT_EQ(pq.remove_min_n(std::span<std::uint64_t>(out, 4)), 0u);
}

TEST(SkipListPqSeq, RemoveMinNDrainsExactly) {
  Pq pq;
  for (std::uint64_t k = 0; k < 10; ++k) pq.insert(k);
  std::uint64_t out[16];
  const std::size_t removed = pq.remove_min_n(std::span<std::uint64_t>(out, 16));
  EXPECT_EQ(removed, 10u);
  for (std::uint64_t k = 0; k < 10; ++k) EXPECT_EQ(out[k], k);
  EXPECT_TRUE(pq.empty());
  EXPECT_TRUE(pq.check_invariants());
}

TEST(SkipListPqSeq, InterleavedInsertRemoveAgainstStdPq) {
  Pq pq;
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>> ref;
  util::Xoshiro256 rng(21);
  for (int i = 0; i < 20000; ++i) {
    if (ref.empty() || rng.next_bounded(2) == 0) {
      const auto k = rng.next_bounded(1 << 20);
      pq.insert(k);
      ref.push(k);
    } else {
      ASSERT_EQ(*pq.remove_min(), ref.top()) << i;
      ref.pop();
    }
  }
  EXPECT_EQ(pq.size_slow(), ref.size());
  EXPECT_TRUE(pq.check_invariants());
  mem::EbrDomain::instance().drain();
}

TEST(SkipListPqSeq, TransactionalRollback) {
  Pq pq;
  pq.insert(1);
  htm::attempt([&] {
    pq.insert(0);
    (void)pq.remove_min();
    htm::abort_tx();
  });
  EXPECT_EQ(pq.size_slow(), 1u);
  EXPECT_EQ(pq.peek_min(), 1u);
  EXPECT_TRUE(pq.check_invariants());
}

TEST(SkipListPqSeq, TransactionalCommit) {
  Pq pq;
  ASSERT_TRUE(htm::attempt([&] {
    pq.insert(5);
    pq.insert(3);
    EXPECT_EQ(pq.remove_min(), 3u);
  }));
  EXPECT_EQ(pq.size_slow(), 1u);
  EXPECT_EQ(pq.peek_min(), 5u);
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::ds
