// Sequential (single-threaded) correctness of the hash table, randomized
// against std::unordered_map as the reference model.
#include "ds/hash_table.hpp"

#include <gtest/gtest.h>

#include "ebr_drain_env.hpp"

#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::ds {
namespace {

using Table = HashTable<std::uint64_t, std::uint64_t>;

TEST(HashTableSeq, InsertFindRemoveBasics) {
  Table t(16);
  EXPECT_FALSE(t.find(1).has_value());
  EXPECT_TRUE(t.insert(1, 10));
  EXPECT_EQ(t.find(1), 10u);
  EXPECT_FALSE(t.insert(1, 11));  // update, not insert
  EXPECT_EQ(t.find(1), 11u);
  EXPECT_TRUE(t.remove(1));
  EXPECT_FALSE(t.remove(1));
  EXPECT_FALSE(t.find(1).has_value());
  EXPECT_TRUE(t.check_invariants());
}

TEST(HashTableSeq, BucketCountRoundsUpToPowerOfTwo) {
  Table t(1000);
  EXPECT_EQ(t.bucket_count(), 1024u);
  Table t2(1);
  EXPECT_EQ(t2.bucket_count(), 1u);
}

TEST(HashTableSeq, ManyKeysInFewBucketsChainCorrectly) {
  Table t(2);  // force long chains
  for (std::uint64_t k = 0; k < 200; ++k) EXPECT_TRUE(t.insert(k, k * 3));
  for (std::uint64_t k = 0; k < 200; ++k) EXPECT_EQ(t.find(k), k * 3);
  EXPECT_EQ(t.size_slow(), 200u);
  EXPECT_TRUE(t.check_invariants());
  for (std::uint64_t k = 0; k < 200; k += 2) EXPECT_TRUE(t.remove(k));
  EXPECT_EQ(t.size_slow(), 100u);
  for (std::uint64_t k = 0; k < 200; ++k) {
    EXPECT_EQ(t.find(k).has_value(), k % 2 == 1);
  }
  EXPECT_TRUE(t.check_invariants());
}

TEST(HashTableSeq, TableListOrderIsMostRecentFirst) {
  Table t(16);
  t.insert(1, 1);
  t.insert(2, 2);
  t.insert(3, 3);
  std::vector<std::uint64_t> keys;
  t.for_each([&](std::uint64_t k, std::uint64_t) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{3, 2, 1}));
  t.remove(2);  // middle removal must keep the list linked
  keys.clear();
  t.for_each([&](std::uint64_t k, std::uint64_t) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{3, 1}));
  EXPECT_TRUE(t.check_invariants());
}

TEST(HashTableSeq, InsertNMatchesIndividualInserts) {
  Table batch(64), individual(64);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> kvs;
  for (std::uint64_t i = 0; i < 20; ++i) kvs.push_back({i % 12, i * 100});
  auto batch_results = std::make_unique<bool[]>(kvs.size());
  // Reference: individual inserts.
  std::vector<bool> individual_results;
  for (auto [k, v] : kvs) individual_results.push_back(individual.insert(k, v));

  // insert_n applied in chunks of 5.
  for (std::size_t i = 0; i < kvs.size(); i += 5) {
    const std::size_t n = std::min<std::size_t>(5, kvs.size() - i);
    batch.insert_n(std::span<const std::pair<std::uint64_t, std::uint64_t>>(
                       kvs.data() + i, n),
                   std::span<bool>(batch_results.get() + i, n));
  }
  for (std::size_t i = 0; i < kvs.size(); ++i) {
    EXPECT_EQ(batch_results[i], individual_results[i]) << i;
  }
  EXPECT_EQ(batch.size_slow(), individual.size_slow());
  for (std::uint64_t k = 0; k < 12; ++k) {
    EXPECT_EQ(batch.find(k), individual.find(k)) << k;
  }
  EXPECT_TRUE(batch.check_invariants());
}

TEST(HashTableSeq, InsertNWithDuplicateKeysInOneBatch) {
  Table t(16);
  const std::pair<std::uint64_t, std::uint64_t> kvs[] = {
      {7, 1}, {7, 2}, {8, 3}, {7, 4}};
  bool results[4];
  t.insert_n(kvs, results);
  EXPECT_TRUE(results[0]);    // first 7 inserts
  EXPECT_FALSE(results[1]);   // second 7 updates
  EXPECT_TRUE(results[2]);    // 8 inserts
  EXPECT_FALSE(results[3]);   // third 7 updates
  EXPECT_EQ(t.find(7), 4u);
  EXPECT_EQ(t.size_slow(), 2u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(HashTableSeq, InsertNEmptyBatchIsNoop) {
  Table t(16);
  t.insert(1, 1);
  t.insert_n({}, {});
  EXPECT_EQ(t.size_slow(), 1u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(HashTableSeq, RandomizedAgainstUnorderedMap) {
  Table t(256);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  util::Xoshiro256 rng(2024);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t key = rng.next_bounded(512);
    switch (rng.next_bounded(3)) {
      case 0: {  // insert
        const std::uint64_t value = rng.next();
        const bool added = t.insert(key, value);
        const bool ref_added = ref.find(key) == ref.end();
        ref[key] = value;
        ASSERT_EQ(added, ref_added) << "iter " << i;
        break;
      }
      case 1: {  // remove
        const bool removed = t.remove(key);
        ASSERT_EQ(removed, ref.erase(key) > 0) << "iter " << i;
        break;
      }
      default: {  // find
        const auto found = t.find(key);
        const auto it = ref.find(key);
        if (it == ref.end()) {
          ASSERT_FALSE(found.has_value()) << "iter " << i;
        } else {
          ASSERT_EQ(found, it->second) << "iter " << i;
        }
      }
    }
  }
  EXPECT_EQ(t.size_slow(), ref.size());
  EXPECT_TRUE(t.check_invariants());
  mem::EbrDomain::instance().drain();
}

TEST(HashTableSeq, TransactionalOpsRollBackCleanly) {
  // The same sequential code inside an aborted transaction must leave no
  // trace — including the allocation (freed via the alloc log).
  Table t(16);
  t.insert(1, 1);
  htm::attempt([&] {
    t.insert(2, 2);
    t.remove(1);
    htm::abort_tx();
  });
  EXPECT_EQ(t.find(1), 1u);
  EXPECT_FALSE(t.find(2).has_value());
  EXPECT_EQ(t.size_slow(), 1u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(HashTableSeq, TransactionalOpsCommitVisibly) {
  Table t(16);
  ASSERT_TRUE(htm::attempt([&] {
    t.insert(5, 50);
    t.insert(6, 60);
    t.remove(5);
  }));
  EXPECT_FALSE(t.find(5).has_value());
  EXPECT_EQ(t.find(6), 60u);
  EXPECT_TRUE(t.check_invariants());
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::ds
