// Tests for the telemetry exporters: aggregate summary counting, the
// Chrome trace_event emitter's slice balancing, and the pinned
// correspondence between telemetry's local name tables and the core/ and
// sim_htm/ enums they mirror.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>

#include "core/types.hpp"
#include "sim_htm/abort.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_export.hpp"

namespace {

using namespace hcf;
using telemetry::EventType;

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// telemetry/ sits below core/ and sim_htm/, so trace_export.hpp carries
// its own name tables; this pins them to the enums they must track.
TEST(TelemetryTrace, NameTablesMatchEnums) {
  using telemetry::detail::abort_name;
  using telemetry::detail::phase_name;
  EXPECT_STREQ(phase_name(static_cast<int>(core::Phase::Private)),
               "try-private");
  EXPECT_STREQ(phase_name(static_cast<int>(core::Phase::Visible)),
               "try-visible");
  EXPECT_STREQ(phase_name(static_cast<int>(core::Phase::Combining)),
               "try-combining");
  EXPECT_STREQ(phase_name(static_cast<int>(core::Phase::UnderLock)),
               "combine-under-lock");
  EXPECT_STREQ(abort_name(static_cast<int>(htm::AbortCode::Conflict)),
               "conflict");
  EXPECT_STREQ(abort_name(static_cast<int>(htm::AbortCode::Capacity)),
               "capacity");
  EXPECT_STREQ(abort_name(static_cast<int>(htm::AbortCode::Explicit)),
               "explicit");
  EXPECT_STREQ(abort_name(static_cast<int>(htm::AbortCode::LockBusy)),
               "lock-busy");
}

TEST(TelemetryTrace, SummaryCountsKnownSequence) {
  if (!telemetry::kCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telemetry::set_enabled(false);
  telemetry::reset();
  telemetry::set_enabled(true);
  telemetry::phase_enter(0);
  telemetry::phase_exit(0, false);
  telemetry::phase_enter(2);
  telemetry::sel_lock_acquired();
  telemetry::combine_begin(3);
  telemetry::combine_end(3);
  telemetry::sel_lock_released();
  telemetry::phase_exit(2, true);
  telemetry::htm_commit(true);
  telemetry::htm_abort(static_cast<int>(htm::AbortCode::Conflict));
  telemetry::op_latency(2000);
  telemetry::set_enabled(false);

  const telemetry::TraceSummary s = telemetry::collect_summary();
  EXPECT_EQ(s.count(EventType::PhaseEnter), 2u);
  EXPECT_EQ(s.count(EventType::PhaseExit), 2u);
  EXPECT_EQ(s.count(EventType::HtmCommit), 1u);
  EXPECT_EQ(s.count(EventType::HtmAbort), 1u);
  EXPECT_EQ(s.count(EventType::CombineBegin), 1u);
  EXPECT_EQ(s.count(EventType::SelLockAcquire), 1u);
  EXPECT_EQ(s.count(EventType::OpLatency), 1u);
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(htm::AbortCode::Conflict)], 1u);
  EXPECT_EQ(s.phase_completions[0], 0u);  // exit with completed=false
  EXPECT_EQ(s.phase_completions[2], 1u);
  EXPECT_EQ(s.ops_selected, 3u);
  EXPECT_EQ(s.latency_samples, 1u);
  EXPECT_EQ(s.threads, 1);
  EXPECT_EQ(s.events_dropped, 0u);

  std::ostringstream os;
  telemetry::write_summary(os, s);
  const std::string text = os.str();
  EXPECT_NE(text.find("[telemetry]"), std::string::npos);
  EXPECT_NE(text.find("try-combining=1"), std::string::npos);
  EXPECT_NE(text.find("conflict=1"), std::string::npos);
  EXPECT_NE(text.find("ops-selected=3"), std::string::npos);
  telemetry::reset();
}

TEST(TelemetryTrace, ChromeTraceIsBalanced) {
  if (!telemetry::kCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telemetry::set_enabled(false);
  telemetry::reset();
  telemetry::set_enabled(true);
  telemetry::phase_enter(0);
  telemetry::phase_exit(0, true);
  telemetry::sel_lock_acquired();
  telemetry::combine_begin(4);
  telemetry::combine_end(4);
  telemetry::sel_lock_released();
  telemetry::htm_commit(false);
  telemetry::htm_abort(static_cast<int>(htm::AbortCode::Capacity));
  telemetry::set_enabled(false);

  std::ostringstream os;
  telemetry::write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"try-private\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"combine\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"selection-lock\""), std::string::npos);
  EXPECT_NE(json.find("htm-abort:capacity"), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  telemetry::reset();
}

// An exit whose begin fell off the ring must be dropped, and a begin with
// no exit at snapshot time must be closed, so B/E always balance.
TEST(TelemetryTrace, ChromeTraceHandlesOrphansAndDanglers) {
  if (!telemetry::kCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telemetry::set_enabled(false);
  telemetry::reset();
  telemetry::set_enabled(true);
  telemetry::phase_exit(1, true);   // orphan exit: begin was never recorded
  telemetry::combine_end(9);        // orphan combine end
  telemetry::phase_enter(3);        // dangling begin, never exited
  telemetry::sel_lock_acquired();   // dangling lock slice
  telemetry::set_enabled(false);

  std::ostringstream os;
  telemetry::write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  telemetry::reset();
}

TEST(TelemetryTrace, EmptyTraceIsValid) {
  if (telemetry::kCompiledIn) {
    telemetry::set_enabled(false);
    telemetry::reset();
  }
  std::ostringstream os;
  telemetry::write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));

  std::ostringstream summary;
  telemetry::write_summary(summary);
  EXPECT_NE(summary.str().find("events=0"), std::string::npos);
}

}  // namespace
