#include "mem/ebr.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace hcf::mem {
namespace {

std::atomic<int> g_frees{0};

struct Tracked {
  explicit Tracked(int v) : value(v) {}
  ~Tracked() { g_frees.fetch_add(1); }
  int value;
};

class EbrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_frees = 0;
    EbrDomain::instance().drain();
  }
  void TearDown() override { EbrDomain::instance().drain(); }
};

TEST_F(EbrTest, DrainFreesRetired) {
  auto* p = new Tracked(1);
  EbrDomain::instance().retire(p);
  EbrDomain::instance().drain();
  EXPECT_EQ(g_frees.load(), 1);
}

TEST_F(EbrTest, NoFreeWhileGuardActiveInAnotherThread) {
  std::atomic<int> stage{0};
  std::thread reader([&] {
    Guard guard;
    stage = 1;
    while (stage.load() != 2) std::this_thread::yield();
    // Still inside the guard: retired memory must not have been freed.
    EXPECT_EQ(g_frees.load(), 0);
  });
  while (stage.load() != 1) std::this_thread::yield();
  EbrDomain::instance().retire(new Tracked(2));
  // Attempt aggressive collection; the reader pins the epoch.
  EbrDomain::instance().drain();
  EXPECT_EQ(g_frees.load(), 0);
  stage = 2;
  reader.join();
  EbrDomain::instance().drain();
  EXPECT_EQ(g_frees.load(), 1);
}

// tsa: the nesting under test is deliberate double entry — EBR read-side
// sections are depth-counted reentrant, which TSA's non-reentrant
// capability model reports as a double acquire.
NO_THREAD_SAFETY_ANALYSIS
void nested_guard_roundtrip() {
  auto& dom = EbrDomain::instance();
  EXPECT_FALSE(dom.in_critical_section());
  {
    Guard outer;
    EXPECT_TRUE(dom.in_critical_section());
    {
      Guard inner;
      EXPECT_TRUE(dom.in_critical_section());
    }
    EXPECT_TRUE(dom.in_critical_section());
  }
  EXPECT_FALSE(dom.in_critical_section());
}

TEST_F(EbrTest, GuardNestingKeepsCriticalSection) { nested_guard_roundtrip(); }

TEST_F(EbrTest, ThresholdTriggersCollection) {
  // Retire many objects with no guards active; the internal threshold must
  // bound the limbo list rather than letting it grow unboundedly.
  for (int i = 0; i < 1000; ++i) {
    EbrDomain::instance().retire(new Tracked(i));
  }
  EXPECT_GT(g_frees.load(), 0);
  EbrDomain::instance().drain();
  EXPECT_EQ(g_frees.load(), 1000);
}

TEST_F(EbrTest, OrphansFromDeadThreadReclaimed) {
  std::thread t([] {
    for (int i = 0; i < 10; ++i) {
      EbrDomain::instance().retire(new Tracked(i));
    }
    // Thread exits with a non-empty limbo list -> orphaned.
  });
  t.join();
  EbrDomain::instance().drain();
  EXPECT_EQ(g_frees.load(), 10);
}

TEST_F(EbrTest, StressReadersNeverSeeFreedMemory) {
  // Writers publish nodes into a shared slot, retire the old one; readers
  // dereference under a guard. With correct grace periods the value read
  // is always one of the published magic constants.
  struct Node {
    explicit Node(std::uint64_t m) : magic(m) {}
    ~Node() { magic = 0xDEADDEADDEADDEADull; }
    std::uint64_t magic;
  };
  std::atomic<Node*> slot{new Node(0xA5A5A5A5ull)};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        Guard guard;
        Node* n = slot.load(std::memory_order_acquire);
        if (n->magic != 0xA5A5A5A5ull) bad.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      Node* fresh = new Node(0xA5A5A5A5ull);
      Node* old = slot.exchange(fresh, std::memory_order_acq_rel);
      EbrDomain::instance().retire(old);
    }
    stop = true;
  });
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0u);
  EbrDomain::instance().retire(slot.load());
  EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::mem
