// Randomized transaction fuzzing: threads run random sum-preserving
// transfers over a shared array of accounts, with random transaction
// shapes (fan-in/fan-out, read-only audits, nested attempts, explicit
// aborts) and occasional capacity squeezes. Invariants:
//
//   * the global sum is conserved at the end (atomicity, no lost updates);
//   * every in-transaction audit observes the exact expected sum (opacity);
//   * explicit aborts leave no trace.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "sim_htm/htm.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace hcf::htm {
namespace {

constexpr int kAccounts = 32;
constexpr std::int64_t kInitialBalance = 1000;

struct Bank {
  alignas(64) std::int64_t accounts[kAccounts];
  void reset() {
    for (auto& a : accounts) a = kInitialBalance;
  }
  std::int64_t expected_total() const {
    return kAccounts * kInitialBalance;
  }
};

TEST(HtmFuzz, RandomTransfersConserveTotal) {
  static Bank bank;
  bank.reset();
  constexpr int kThreads = 4;
  constexpr int kIters = 12000;
  std::atomic<std::uint64_t> opacity_violations{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(0xF0 + t);
      util::ExpBackoff backoff(t);
      for (int i = 0; i < kIters; ++i) {
        const auto shape = rng.next_bounded(10);
        if (shape < 5) {
          // Simple transfer between two random accounts.
          const auto from = rng.next_bounded(kAccounts);
          const auto to = rng.next_bounded(kAccounts);
          const auto amount = static_cast<std::int64_t>(rng.next_bounded(20));
          while (!attempt([&] {
            write(&bank.accounts[from], read(&bank.accounts[from]) - amount);
            write(&bank.accounts[to], read(&bank.accounts[to]) + amount);
          })) {
            backoff.pause();
          }
        } else if (shape < 7) {
          // Fan-out: take from one account, sprinkle over several.
          const auto from = rng.next_bounded(kAccounts);
          const int n = 2 + static_cast<int>(rng.next_bounded(4));
          while (!attempt([&] {
            std::int64_t taken = 0;
            for (int j = 0; j < n; ++j) {
              const auto to = (from + 1 + static_cast<std::uint64_t>(j)) %
                              kAccounts;
              write(&bank.accounts[to], read(&bank.accounts[to]) + 1);
              ++taken;
            }
            write(&bank.accounts[from],
                  read(&bank.accounts[from]) - taken);
          })) {
            backoff.pause();
          }
        } else if (shape < 9) {
          // Read-only audit of a random window; inside a transaction the
          // window's balances must be mutually consistent — but partial
          // sums are workload-dependent, so audit the *whole* bank, whose
          // in-transaction sum must equal the invariant exactly.
          bool done = false;
          while (!done) {
            done = attempt([&] {
              std::int64_t sum = 0;
              for (const auto& account : bank.accounts) {
                sum += read(&account);
              }
              if (sum != bank.expected_total()) {
                opacity_violations.fetch_add(1);
              }
            });
            if (!done) backoff.pause();
          }
        } else {
          // Start a transfer, then abort explicitly: must be a no-op.
          const auto from = rng.next_bounded(kAccounts);
          attempt([&] {
            write(&bank.accounts[from],
                  read(&bank.accounts[from]) - 1000000);
            abort_tx();
          });
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(opacity_violations.load(), 0u);
  std::int64_t total = 0;
  for (const auto& account : bank.accounts) total += account;
  EXPECT_EQ(total, bank.expected_total());
}

TEST(HtmFuzz, NestedAndFlatMixedShapes) {
  static Bank bank;
  bank.reset();
  constexpr int kThreads = 3;
  constexpr int kIters = 8000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(0xAB + t);
      util::ExpBackoff backoff(t);
      for (int i = 0; i < kIters; ++i) {
        const auto a = rng.next_bounded(kAccounts);
        const auto b = rng.next_bounded(kAccounts);
        while (!attempt([&] {
          // Outer moves 2 from a to b; inner (flat-nested) moves 1 back.
          write(&bank.accounts[a], read(&bank.accounts[a]) - 2);
          write(&bank.accounts[b], read(&bank.accounts[b]) + 2);
          attempt([&] {
            write(&bank.accounts[b], read(&bank.accounts[b]) - 1);
            write(&bank.accounts[a], read(&bank.accounts[a]) + 1);
          });
        })) {
          backoff.pause();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::int64_t total = 0;
  for (const auto& account : bank.accounts) total += account;
  EXPECT_EQ(total, bank.expected_total());
}

TEST(HtmFuzz, CapacitySqueezeUnderConcurrency) {
  // Shrink capacity so the whole-bank audit cannot run speculatively; the
  // transfers (2-6 locations) still fit. Aborted audits must not corrupt
  // anything, and capacity aborts must be classified as such.
  static Bank bank;
  bank.reset();
  ScopedCapacity caps(16, 8);
  stats().reset();
  constexpr int kThreads = 3;
  constexpr int kIters = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(0xCC + t);
      util::ExpBackoff backoff(t);
      for (int i = 0; i < kIters; ++i) {
        if (rng.next_bounded(10) == 0) {
          // Oversized read-only txn: capacity abort expected; just try once.
          attempt([&] {
            std::int64_t sum = 0;
            for (const auto& account : bank.accounts) sum += read(&account);
            (void)sum;
          });
        } else {
          const auto from = rng.next_bounded(kAccounts);
          const auto to = rng.next_bounded(kAccounts);
          while (!attempt([&] {
            write(&bank.accounts[from], read(&bank.accounts[from]) - 1);
            write(&bank.accounts[to], read(&bank.accounts[to]) + 1);
          })) {
            backoff.pause();
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::int64_t total = 0;
  for (const auto& account : bank.accounts) total += account;
  EXPECT_EQ(total, bank.expected_total());
  EXPECT_GT(StatsSnapshot::capture()
                .aborts[static_cast<int>(AbortCode::Capacity)],
            0u);
}

}  // namespace
}  // namespace hcf::htm
