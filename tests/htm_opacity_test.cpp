// Opacity: transactions must never act on mutually inconsistent state,
// even when they are doomed to abort — the property that makes it safe to
// run arbitrary sequential code speculatively (no zombie crashes/loops).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mem/ebr.hpp"
#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"
#include "util/backoff.hpp"

namespace hcf::htm {
namespace {

TEST(HtmOpacity, InvariantNeverObservedBroken) {
  // Writers atomically move amounts between x and y keeping x + y == 0.
  // Readers read both inside one transaction; any observed x + y != 0 is
  // an opacity violation (the transaction would later abort, but it must
  // not have *seen* the broken invariant).
  alignas(64) std::int64_t x = 0;
  alignas(64) std::int64_t y = 0;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> reads_ok{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      util::Xoshiro256 rng(1000 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto delta = static_cast<std::int64_t>(rng.next_bounded(100));
        attempt([&] {
          write(&x, read(&x) + delta);
          write(&y, read(&y) - delta);
        });
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        attempt([&] {
          const std::int64_t vx = read(&x);
          const std::int64_t vy = read(&y);
          // Inside the transaction: every pair of validated reads must be
          // consistent, committed or not.
          if (vx + vy != 0) violations.fetch_add(1);
          reads_ok.fetch_add(1);
        });
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop = true;
  for (auto& t : writers) t.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(reads_ok.load(), 0u);
  EXPECT_EQ(x + y, 0);
}

TEST(HtmOpacity, PointerChaseNeverDereferencesTornState) {
  // A two-node ring where writers swap which node is "current" and update
  // a generation stamp in both the pointer cell and the node. A reader
  // that observes node->stamp != expected stamp for the pointer it read
  // has seen an inconsistent snapshot.
  struct Node {
    TxField<std::uint64_t> stamp{0};
  };
  Node nodes[2];
  alignas(64) Node* current = &nodes[0];
  alignas(64) std::uint64_t generation = 0;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  std::thread writer([&] {
    std::uint64_t gen = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++gen;
      Node* next = &nodes[gen % 2];
      const std::uint64_t g = gen;
      attempt([&] {
        next->stamp = g;
        write(&generation, g);
        write(&current, next);
      });
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        attempt([&] {
          const std::uint64_t g = read(&generation);
          Node* n = read(&current);
          const std::uint64_t s = n->stamp.get();
          if (s != g) violations.fetch_add(1);
        });
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop = true;
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);
}

TEST(HtmOpacity, TraversalOverRetiringNodesIsSafe) {
  // Readers traverse a transactional linked list while a writer keeps
  // replacing nodes (retiring the old ones). EBR + opacity must make the
  // traversal safe and every observed list consistent: the list always
  // holds exactly kLen nodes with values summing to a multiple of kLen.
  struct Node {
    TxField<std::uint64_t> value{0};
    TxField<Node*> next{nullptr};
  };
  constexpr int kLen = 8;
  TxField<Node*> head{nullptr};
  // Build initial list: value v in every node.
  {
    Node* first = nullptr;
    for (int i = 0; i < kLen; ++i) {
      // Through the facade: the writer below retires these via htm::retire,
      // which expects pool-headered blocks.
      auto* n = make<Node>();
      n->value.init(0);
      n->next.init(first);
      first = n;
    }
    head.init(first);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  std::thread writer([&] {
    std::uint64_t round = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      // Rebuild the whole list with the new round value in one txn.
      const std::uint64_t v = round++;
      attempt([&] {
        // Retire old nodes, link fresh ones.
        Node* old = head.get();
        Node* fresh = nullptr;
        for (int i = 0; i < kLen; ++i) {
          auto* n = make<Node>();
          n->value.init(v);
          n->next.init(fresh);
          fresh = n;
        }
        head = fresh;
        while (old != nullptr) {
          Node* nx = old->next.get();
          retire(old);
          old = nx;
        }
      });
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        mem::Guard guard;  // operations hold an EBR guard, as engines do
        attempt([&] {
          std::uint64_t sum = 0;
          int count = 0;
          for (Node* n = head.get(); n != nullptr; n = n->next.get()) {
            sum += n->value.get();
            if (++count > kLen) break;  // structurally impossible if opaque
          }
          if (count != kLen || sum % kLen != 0) violations.fetch_add(1);
        });
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop = true;
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);
  // Cleanup.
  Node* n = head.get();
  while (n != nullptr) {
    Node* nx = n->next.get();
    mem::dealloc(n);
    n = nx;
  }
  mem::EbrDomain::instance().drain();
}

TEST(HtmOpacity, SnapshotExtensionAllowsNonConflictingProgress) {
  // A transaction whose read set is untouched must survive commits to
  // unrelated data (the epoch-based revalidation must pass, not abort).
  alignas(64) std::uint64_t mine = 1;
  alignas(64) std::uint64_t other = 0;
  std::atomic<int> stage{0};
  std::thread t([&] {
    const bool ok = attempt([&] {
      EXPECT_EQ(read(&mine), 1u);
      stage.store(1);
      while (stage.load() != 2) util::cpu_relax();
      EXPECT_EQ(read(&mine), 1u);  // epoch moved; revalidation must pass
      write(&mine, std::uint64_t{2});
    });
    EXPECT_TRUE(ok);
  });
  while (stage.load() != 1) util::cpu_relax();
  ASSERT_TRUE(attempt([&] { write(&other, std::uint64_t{9}); }));
  stage.store(2);
  t.join();
  EXPECT_EQ(mine, 2u);
  EXPECT_EQ(other, 9u);
}

}  // namespace
}  // namespace hcf::htm
