// Strong isolation between non-transactional (TxCell strong) operations
// and transactions on the same words: mixed-mode counters must never lose
// updates, and transactional snapshots across multiple TxCells must stay
// consistent in the presence of strong stores.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"
#include "util/backoff.hpp"

namespace hcf::htm {
namespace {

TEST(StrongIsolation, MixedStrongAndTransactionalIncrements) {
  TxCell<std::uint64_t> cell{0};
  constexpr int kThreads = 4;
  constexpr int kIters = 15000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 1);
      util::ExpBackoff backoff(t);
      for (int i = 0; i < kIters; ++i) {
        if (rng.next_bounded(2) == 0) {
          cell.fetch_add(1);  // strong path
        } else {
          while (!attempt([&] { cell.tx_write(cell.read() + 1); })) {
            backoff.pause();  // transactional path
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cell.load(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(StrongIsolation, TransactionalSnapshotAcrossCells) {
  // Strong stores update two cells to equal values (sequentially, cell by
  // cell); transactions reading both must never observe a mixed pair *from
  // different rounds going backwards*: since each strong store is its own
  // atomic event, a transaction may see (n+1, n) transiently being
  // written... no: reads are validated, and each strong store bumps the
  // epoch, so the pair read inside one transaction is a consistent point
  // between strong stores — meaning a == b or a == b + 1 (first cell
  // written first). Anything else is an isolation bug.
  TxCell<std::uint64_t> a{0}, b{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  std::thread writer([&] {
    std::uint64_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++round;
      a.store(round);
      b.store(round);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        attempt([&] {
          const std::uint64_t va = a.read();
          const std::uint64_t vb = b.read();
          if (va != vb && va != vb + 1) violations.fetch_add(1);
        });
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop = true;
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);
}

TEST(StrongIsolation, CasLoopVsCommittingWriters) {
  // One thread implements a CAS-based claim protocol on a TxCell while
  // transactions increment a neighbouring counter word guarded by the
  // cell's "ownership". Claim values must never interleave wrongly.
  TxCell<std::uint64_t> owner{0};
  alignas(64) std::uint64_t protected_value = 0;
  constexpr int kThreads = 3;
  constexpr int kClaims = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::uint64_t me = static_cast<std::uint64_t>(t) + 1;
      for (int i = 0; i < kClaims; ++i) {
        while (!owner.cas(0, me)) util::cpu_relax();
        // We own the cell: mutate the protected word transactionally,
        // subscribing to the owner cell. Competitors' failing CAS attempts
        // can still cause transient orec conflicts, so retry.
        util::ExpBackoff backoff(t);
        while (!attempt([&] {
          if (owner.read() != me) abort_tx();
          write(&protected_value, read(&protected_value) + 1);
        })) {
          backoff.pause();
        }
        owner.store(0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(protected_value,
            static_cast<std::uint64_t>(kThreads) * kClaims);
  EXPECT_EQ(owner.load(), 0u);
}

TEST(StrongIsolation, StorePlainVisibleToTransactions) {
  TxCell<std::uint64_t> cell{1};
  cell.store_plain(2);
  bool ok = attempt([&] { EXPECT_EQ(cell.read(), 2u); });
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace hcf::htm
