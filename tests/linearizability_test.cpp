// 1) Unit tests of the checker itself on hand-built histories with known
//    verdicts; 2) end-to-end linearizability validation of the engines:
//    concurrent rounds of operations on tiny structures, recorded with
//    invoke/response stamps and checked against sequential models.
#include "harness/linearizability.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "adapters/ht_ops.hpp"
#include "adapters/stack_ops.hpp"
#include "core/engine.hpp"
#include "mem/ebr.hpp"
#include "sim_htm/tsan.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"

namespace hcf::harness {
namespace {

// ---- Models ---------------------------------------------------------------

// Single-key set: state is "present".
struct SetKeyModel {
  using State = bool;
  struct Op {
    enum Kind : std::uint8_t { Insert, Remove, Contains } kind;
    bool result;
    bool operator<(const Op& o) const {
      return std::tie(kind, result) < std::tie(o.kind, o.result);
    }
  };
  static bool apply(State& present, const Op& op) {
    switch (op.kind) {
      case Op::Insert: {
        const bool expect = !present;
        present = true;
        return op.result == expect;
      }
      case Op::Remove: {
        const bool expect = present;
        present = false;
        return op.result == expect;
      }
      case Op::Contains:
        return op.result == present;
    }
    return false;
  }
};

// Bounded stack of small integers.
struct StackModel {
  using State = std::vector<std::uint64_t>;
  struct Op {
    enum Kind : std::uint8_t { Push, Pop } kind;
    std::uint64_t value;          // pushed value / popped value
    bool popped_empty = false;    // pop returned nullopt
    bool operator<(const Op& o) const {
      return std::tie(kind, value, popped_empty) <
             std::tie(o.kind, o.value, o.popped_empty);
    }
  };
  static bool apply(State& stack, const Op& op) {
    if (op.kind == Op::Push) {
      stack.push_back(op.value);
      return true;
    }
    if (op.popped_empty) return stack.empty();
    if (stack.empty() || stack.back() != op.value) return false;
    stack.pop_back();
    return true;
  }
};

using SetOp = SetKeyModel::Op;
using TSet = TimedOp<SetOp>;

// ---- checker unit tests ----------------------------------------------------

TEST(Checker, AcceptsSequentialHistory) {
  std::vector<TSet> h = {
      {0, 1, {SetOp::Insert, true}},
      {2, 3, {SetOp::Contains, true}},
      {4, 5, {SetOp::Remove, true}},
      {6, 7, {SetOp::Contains, false}},
  };
  const auto finals =
      LinearizabilityChecker<SetKeyModel>::check_window(h, {false});
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_FALSE(*finals.begin());
}

TEST(Checker, RejectsImpossibleResult) {
  // Contains(true) with nothing ever inserted.
  std::vector<TSet> h = {{0, 1, {SetOp::Contains, true}}};
  EXPECT_TRUE(LinearizabilityChecker<SetKeyModel>::check_window(h, {false})
                  .empty());
}

TEST(Checker, AcceptsConcurrentReordering) {
  // Overlapping Insert and Contains: Contains may see either value.
  for (bool seen : {false, true}) {
    std::vector<TSet> h = {
        {0, 3, {SetOp::Insert, true}},
        {1, 2, {SetOp::Contains, seen}},
    };
    EXPECT_FALSE(LinearizabilityChecker<SetKeyModel>::check_window(h, {false})
                     .empty())
        << seen;
  }
}

TEST(Checker, RespectsRealTimeOrder) {
  // Insert completed strictly before Contains began: Contains must see it.
  std::vector<TSet> h = {
      {0, 1, {SetOp::Insert, true}},
      {2, 3, {SetOp::Contains, false}},  // stale read -> not linearizable
  };
  EXPECT_TRUE(LinearizabilityChecker<SetKeyModel>::check_window(h, {false})
                  .empty());
}

TEST(Checker, TracksMultipleFinalStates) {
  // One overlapping Insert whose effect may or may not be ordered before
  // the window's end... a single op always executes, so instead: Insert
  // overlapping Remove — final state depends on chosen order.
  std::vector<TSet> h = {
      {0, 3, {SetOp::Insert, true}},
      {1, 2, {SetOp::Remove, false}},  // remove first (absent) -> present
  };
  const auto finals =
      LinearizabilityChecker<SetKeyModel>::check_window(h, {false});
  ASSERT_FALSE(finals.empty());
  EXPECT_TRUE(finals.count(true));
  // Remove(false) after Insert(true) is impossible, so the only final is
  // "present".
  EXPECT_FALSE(finals.count(false));
}

TEST(Checker, StackLifoVerdicts) {
  using Op = StackModel::Op;
  using T = TimedOp<Op>;
  // push 1, push 2 (sequential), then pop must give 2.
  std::vector<T> good = {
      {0, 1, {Op::Push, 1}},
      {2, 3, {Op::Push, 2}},
      {4, 5, {Op::Pop, 2}},
  };
  EXPECT_FALSE(LinearizabilityChecker<StackModel>::check_window(good, {{}})
                   .empty());
  std::vector<T> bad = {
      {0, 1, {Op::Push, 1}},
      {2, 3, {Op::Push, 2}},
      {4, 5, {Op::Pop, 1}},  // FIFO, not LIFO
  };
  EXPECT_TRUE(LinearizabilityChecker<StackModel>::check_window(bad, {{}})
                  .empty());
}

TEST(Checker, RoundsThreadStates) {
  std::vector<std::vector<TSet>> rounds = {
      {{0, 3, {SetOp::Insert, true}}, {1, 2, {SetOp::Remove, false}}},
      // Round 2 only works from state "present".
      {{10, 11, {SetOp::Remove, true}}},
  };
  EXPECT_TRUE(check_rounds<SetKeyModel>(rounds, false));
  std::vector<std::vector<TSet>> bad_rounds = {
      {{0, 1, {SetOp::Remove, true}}},  // impossible from empty
  };
  EXPECT_FALSE(check_rounds<SetKeyModel>(bad_rounds, false));
}

// ---- end-to-end: engines produce linearizable histories --------------------

// Runs `rounds` barrier-separated rounds of random single-key set ops on
// key 7 through `engine`, recording a timed history, then checks it.
template <typename Engine>
bool engine_history_linearizable(Engine& engine, int num_threads, int rounds,
                                 int ops_per_round, std::uint64_t seed) {
  HistoryClock clock;
  std::vector<std::vector<std::vector<TimedOp<SetOp>>>> per_round(
      static_cast<std::size_t>(rounds));
  for (auto& r : per_round) r.resize(static_cast<std::size_t>(num_threads));
  util::SpinBarrier barrier(static_cast<std::size_t>(num_threads));
  std::vector<std::thread> threads;
  std::vector<HistoryRecorder<SetOp>> recorders(
      static_cast<std::size_t>(num_threads), HistoryRecorder<SetOp>(clock));

  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(seed + static_cast<std::uint64_t>(t));
      adapters::HtInsertOp<std::uint64_t, std::uint64_t> insert;
      adapters::HtRemoveOp<std::uint64_t, std::uint64_t> remove;
      adapters::HtFindOp<std::uint64_t, std::uint64_t> find;
      auto& rec = recorders[static_cast<std::size_t>(t)];
      for (int r = 0; r < rounds; ++r) {
        barrier.arrive_and_wait();
        rec.clear();
        for (int i = 0; i < ops_per_round; ++i) {
          const auto seq = rec.invoke();
          switch (rng.next_bounded(3)) {
            case 0:
              insert.set(7, 1);
              engine.execute(insert);
              rec.response(seq, {SetOp::Insert, insert.result()});
              break;
            case 1:
              remove.set(7);
              engine.execute(remove);
              rec.response(seq, {SetOp::Remove, remove.result()});
              break;
            default:
              find.set(7);
              engine.execute(find);
              rec.response(seq, {SetOp::Contains, find.result().has_value()});
          }
        }
        barrier.arrive_and_wait();  // quiesce: round boundary
        per_round[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)] =
            rec.ops();
      }
    });
  }
  for (auto& th : threads) th.join();

  std::vector<std::vector<TimedOp<SetOp>>> merged;
  for (auto& round : per_round) {
    merged.push_back(merge_histories(std::move(round)));
  }
  return check_rounds<SetKeyModel>(merged, false);
}

using Table = ds::HashTable<std::uint64_t, std::uint64_t>;

template <typename Engine>
class EngineLinearizabilityTest : public ::testing::Test {};

using EngineTypes =
    ::testing::Types<core::LockEngine<Table>, core::TleEngine<Table>,
                     core::ScmEngine<Table>, core::FcEngine<Table>,
                     core::TleFcEngine<Table>, core::HcfEngine<Table>,
                     core::HcfSingleCombinerEngine<Table>>;
TYPED_TEST_SUITE(EngineLinearizabilityTest, EngineTypes);

template <typename Engine>
std::unique_ptr<Engine> make_for(Table& table) {
  if constexpr (std::is_same_v<Engine, core::HcfEngine<Table>> ||
                std::is_same_v<Engine,
                               core::HcfSingleCombinerEngine<Table>>) {
    return std::make_unique<Engine>(table, adapters::ht_paper_config(),
                                    adapters::kHtNumArrays);
  } else {
    return std::make_unique<Engine>(table);
  }
}

TYPED_TEST(EngineLinearizabilityTest, SingleKeyHistoriesLinearizable) {
  Table table(16);
  auto engine = make_for<TypeParam>(table);
  EXPECT_TRUE(
      engine_history_linearizable(*engine, /*threads=*/3, /*rounds=*/60,
                                  /*ops_per_round=*/4, /*seed=*/1234));
  mem::EbrDomain::instance().drain();
}

// Sanity: the harness itself can detect a broken "structure" — a racy
// non-atomic set where lost updates are expected under contention.
TEST(EngineLinearizability, HarnessDetectsBrokenImplementation) {
#if HCF_TSAN_ENABLED
  GTEST_SKIP() << "intentional data race; TSan would (correctly) report it";
#endif
  struct RacySet {
    volatile bool present = false;
  };
  struct RacyEngine {
    RacySet s;
    // insert: returns true iff it believes it inserted (racy check). The
    // yield() inside the read-modify-write window forces a preemption point
    // so the lost-update race manifests even on a single hardware thread,
    // where a busy-wait window is never preempted mid-operation.
    bool insert() {
      const bool was = s.present;
      std::this_thread::yield();  // widen the race window deterministically
      s.present = true;
      return !was;
    }
    bool remove() {
      const bool was = s.present;
      std::this_thread::yield();
      s.present = false;
      return was;
    }
  };
  RacyEngine racy;
  HistoryClock clock;
  constexpr int kThreads = 3;
  constexpr int kRounds = 200;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::vector<std::vector<TimedOp<SetOp>>>> per_round(kRounds);
  for (auto& r : per_round) r.resize(kThreads);
  std::vector<HistoryRecorder<SetOp>> recorders(kThreads,
                                                HistoryRecorder<SetOp>(clock));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(77 + t);
      auto& rec = recorders[static_cast<std::size_t>(t)];
      for (int r = 0; r < kRounds; ++r) {
        barrier.arrive_and_wait();
        rec.clear();
        for (int i = 0; i < 3; ++i) {
          const auto seq = rec.invoke();
          if (rng.next_bounded(2) == 0) {
            rec.response(seq, {SetOp::Insert, racy.insert()});
          } else {
            rec.response(seq, {SetOp::Remove, racy.remove()});
          }
        }
        barrier.arrive_and_wait();
        per_round[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)] =
            rec.ops();
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<std::vector<TimedOp<SetOp>>> merged;
  for (auto& round : per_round) {
    merged.push_back(merge_histories(std::move(round)));
  }
  // With 200 contended rounds, a racy set virtually always produces at
  // least one non-linearizable window (duplicate "I inserted" claims).
  EXPECT_FALSE(check_rounds<SetKeyModel>(merged, false));
}

}  // namespace
}  // namespace hcf::harness
