// Unit tests for the telemetry ring buffer and the recording API: event
// packing, wrap-around/drop accounting, snapshot consistency under a
// concurrent writer, and the disabled-is-a-no-op contract.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "telemetry/ring_buffer.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace hcf;
using telemetry::Event;
using telemetry::EventType;

Event make_event(std::uint64_t ts, EventType type, std::uint8_t code,
                 std::uint32_t arg) {
  Event e;
  e.ts_ns = ts;
  e.type = type;
  e.code = code;
  e.arg = arg;
  return e;
}

TEST(TelemetryEvent, PackingRoundTrips) {
  const Event e = make_event(0x0123456789abcdefULL, EventType::HtmAbort, 4,
                             0xdeadbeef);
  const Event r = Event::unpack(e.word0(), e.word1());
  EXPECT_EQ(r.ts_ns, e.ts_ns);
  EXPECT_EQ(r.type, e.type);
  EXPECT_EQ(r.code, e.code);
  EXPECT_EQ(r.arg, e.arg);
}

TEST(TelemetryRing, EmptySnapshot) {
  telemetry::EventRing<4> ring;
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<Event> out;
  ring.snapshot(out);
  EXPECT_TRUE(out.empty());
}

TEST(TelemetryRing, RetainsInOrderBelowCapacity) {
  telemetry::EventRing<4> ring;  // capacity 16
  ring.assume_writer();  // single-threaded test: this thread is the writer
  for (std::uint32_t i = 0; i < 10; ++i) {
    ring.push(make_event(i, EventType::PhaseEnter, 0, i));
  }
  std::vector<Event> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].arg, i);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TelemetryRing, WrapAroundKeepsNewestAndCountsDrops) {
  telemetry::EventRing<4> ring;  // capacity 16
  ring.assume_writer();  // single-threaded test: this thread is the writer
  constexpr std::uint32_t kTotal = 40;
  for (std::uint32_t i = 0; i < kTotal; ++i) {
    ring.push(make_event(i, EventType::PhaseEnter, 0, i));
  }
  EXPECT_EQ(ring.pushed(), kTotal);
  EXPECT_EQ(ring.dropped(), kTotal - 16);
  std::vector<Event> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 16u);
  // Oldest-first suffix of the history: args 24..39.
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(out[i].arg, kTotal - 16 + i);
    EXPECT_EQ(out[i].ts_ns, kTotal - 16 + i);
  }
}

TEST(TelemetryRing, ClearResets) {
  telemetry::EventRing<4> ring;
  ring.assume_writer();  // single-threaded test: this thread is the writer
  for (std::uint32_t i = 0; i < 20; ++i) {
    ring.push(make_event(i, EventType::PhaseEnter, 0, i));
  }
  ring.clear();
  EXPECT_EQ(ring.pushed(), 0u);
  std::vector<Event> out;
  ring.snapshot(out);
  EXPECT_TRUE(out.empty());
  ring.push(make_event(99, EventType::PhaseExit, 1, 99));
  out.clear();
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].arg, 99u);
}

// One writer hammers the ring while a reader snapshots concurrently. Every
// snapshot must be a clean (gap-tolerant, torn-slot-free) ascending slice
// of the history: args strictly increasing, types valid.
TEST(TelemetryRing, SnapshotIsConsistentUnderConcurrentWriter) {
  telemetry::EventRing<6> ring;  // capacity 64: wraps constantly
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    ring.assume_writer();  // only this thread ever pushes
    std::uint32_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ring.push(make_event(i, EventType::OpLatency, 7, i));
      ++i;
    }
  });
  std::vector<Event> out;
  for (int round = 0; round < 2000; ++round) {
    out.clear();
    ring.snapshot(out);
    std::uint64_t prev_arg = 0;
    bool have_prev = false;
    for (const Event& e : out) {
      ASSERT_EQ(e.type, EventType::OpLatency);
      ASSERT_EQ(e.code, 7);
      ASSERT_EQ(e.ts_ns, e.arg);  // torn slots would break this pairing
      if (have_prev) {
        ASSERT_GT(e.arg, prev_arg);
      }
      prev_arg = e.arg;
      have_prev = true;
    }
  }
  stop.store(true);
  writer.join();
}

TEST(TelemetryGate, DefaultsOff) {
  telemetry::RuntimeGate gate;
  EXPECT_FALSE(gate.enabled());
  gate.set(true);
  EXPECT_TRUE(gate.enabled());
  gate.set(false);
  EXPECT_FALSE(gate.enabled());
}

// ---- Recording API (the process-wide Domain) ---------------------------

TEST(TelemetryApi, DisabledRecordingIsANoOp) {
  if (!telemetry::kCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telemetry::set_enabled(false);
  telemetry::reset();
  telemetry::phase_enter(0);
  telemetry::htm_commit(false);
  telemetry::op_latency(123);
  EXPECT_EQ(telemetry::total_pushed(), 0u);
  EXPECT_EQ(telemetry::latency_samples(), 0u);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(telemetry::should_sample_op());
}

TEST(TelemetryApi, EnabledRecordingIsVisibleInSnapshots) {
  if (!telemetry::kCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telemetry::set_enabled(false);
  telemetry::reset();
  telemetry::set_enabled(true);
  telemetry::phase_enter(2);
  telemetry::combine_begin(5);
  telemetry::combine_end(5);
  telemetry::phase_exit(2, true);
  telemetry::op_latency(1000);
  telemetry::set_enabled(false);

  EXPECT_EQ(telemetry::total_pushed(), 5u);  // incl. the OpLatency event
  EXPECT_EQ(telemetry::latency_samples(), 1u);
  EXPECT_GE(telemetry::latency_percentile(0.5), 1000u);

  std::vector<std::pair<std::size_t, std::vector<Event>>> per_thread;
  telemetry::snapshot_all(per_thread);
  ASSERT_EQ(per_thread.size(), 1u);
  const auto& events = per_thread[0].second;
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].type, EventType::PhaseEnter);
  EXPECT_EQ(events[0].code, 2);
  EXPECT_EQ(events[1].type, EventType::CombineBegin);
  EXPECT_EQ(events[1].arg, 5u);
  EXPECT_EQ(events[3].type, EventType::PhaseExit);
  EXPECT_EQ(events[3].arg, 1u);  // completed
  EXPECT_EQ(events[4].type, EventType::OpLatency);
  telemetry::reset();
}

TEST(TelemetryApi, SamplingHitsOncePerPeriod) {
  if (!telemetry::kCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telemetry::set_enabled(true);
  int hits = 0;
  const int kWindows = 100;
  for (std::uint32_t i = 0;
       i < kWindows * telemetry::kLatencySamplePeriod; ++i) {
    if (telemetry::should_sample_op()) ++hits;
  }
  telemetry::set_enabled(false);
  // The thread-local phase may start mid-window, so allow one of slack.
  EXPECT_GE(hits, kWindows - 1);
  EXPECT_LE(hits, kWindows + 1);
}

}  // namespace
