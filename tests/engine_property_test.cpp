// Parameterized property sweeps: operation accounting must reconcile for
// every (engine, thread count, operation mix, key range) combination. This
// is the broad-coverage net over the per-engine suites.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "engine_test_util.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::test {
namespace {

using Table = ds::HashTable<std::uint64_t, std::uint64_t>;

struct SweepParam {
  const char* engine;
  int threads;
  int find_pct;
  std::uint64_t key_range;
};

std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
  return os << p.engine << "_t" << p.threads << "_f" << p.find_pct << "_k"
            << p.key_range;
}

// Type-erased engine handle.
struct AnyEngine {
  std::function<void(core::Operation<Table>&)> execute;
  std::function<std::uint64_t()> total_completions;
};

template <typename E>
AnyEngine wrap(std::shared_ptr<E> e) {
  return {
      [e](core::Operation<Table>& op) { e->execute(op); },
      [e] { return e->stats().total(); },
  };
}

AnyEngine make_engine(const std::string& name, Table& table) {
  const HcfConfig cfg{adapters::ht_paper_config(), adapters::kHtNumArrays};
  if (name == "Lock") return wrap(std::make_shared<core::LockEngine<Table>>(table));
  if (name == "TLE") return wrap(std::make_shared<core::TleEngine<Table>>(table));
  if (name == "SCM") return wrap(std::make_shared<core::ScmEngine<Table>>(table));
  if (name == "CoreLock") {
    return wrap(std::make_shared<core::CoreLockEngine<Table>>(table));
  }
  if (name == "FC") return wrap(std::make_shared<core::FcEngine<Table>>(table));
  if (name == "TLE+FC") return wrap(std::make_shared<core::TleFcEngine<Table>>(table));
  if (name == "HCF") {
    return wrap(std::make_shared<core::HcfEngine<Table>>(table, cfg.classes,
                                                         cfg.num_arrays));
  }
  if (name == "HCF-1C") {
    return wrap(std::make_shared<core::HcfSingleCombinerEngine<Table>>(
        table, cfg.classes, cfg.num_arrays));
  }
  ADD_FAILURE() << "unknown engine " << name;
  return {};
}

class EngineSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EngineSweepTest, AccountingReconciles) {
  const SweepParam p = GetParam();
  Table table(p.key_range);
  std::vector<bool> initially_present(p.key_range, false);
  for (std::uint64_t k = 0; k < p.key_range; k += 2) {
    table.insert(k, k * 2 + 1);
    initially_present[k] = true;
  }
  AnyEngine engine = make_engine(p.engine, table);

  const int ops_per_thread = 24000 / p.threads;
  std::vector<std::vector<std::int64_t>> net(p.threads);
  std::vector<std::thread> threads;
  for (int t = 0; t < p.threads; ++t) {
    net[t].assign(p.key_range, 0);
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(40000 + t);
      adapters::HtFindOp<std::uint64_t, std::uint64_t> find;
      adapters::HtInsertOp<std::uint64_t, std::uint64_t> insert;
      adapters::HtRemoveOp<std::uint64_t, std::uint64_t> remove;
      for (int i = 0; i < ops_per_thread; ++i) {
        const std::uint64_t key = rng.next_bounded(p.key_range);
        const int roll = static_cast<int>(rng.next_bounded(100));
        if (roll < p.find_pct) {
          find.set(key);
          engine.execute(find);
          if (find.result().has_value()) {
            ASSERT_EQ(*find.result(), key * 2 + 1);
          }
        } else if (roll < p.find_pct + (100 - p.find_pct) / 2) {
          insert.set(key, key * 2 + 1);
          engine.execute(insert);
          if (insert.result()) ++net[t][key];
        } else {
          remove.set(key);
          engine.execute(remove);
          if (remove.result()) --net[t][key];
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  for (std::uint64_t k = 0; k < p.key_range; ++k) {
    std::int64_t expected = initially_present[k] ? 1 : 0;
    for (int t = 0; t < p.threads; ++t) expected += net[t][k];
    ASSERT_TRUE(expected == 0 || expected == 1) << "key " << k;
    ASSERT_EQ(table.contains(k), expected == 1) << "key " << k;
  }
  EXPECT_TRUE(table.check_invariants());
  EXPECT_EQ(engine.total_completions(),
            static_cast<std::uint64_t>(p.threads) * ops_per_thread);
  mem::EbrDomain::instance().drain();
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (const char* engine : {"Lock", "TLE", "SCM", "CoreLock", "FC",
                             "TLE+FC", "HCF", "HCF-1C"}) {
    for (int threads : {1, 2, 4}) {
      for (int find_pct : {0, 40, 90}) {
        // Tiny range for contention, larger for parallelism.
        for (std::uint64_t range : {std::uint64_t{16}, std::uint64_t{1024}}) {
          params.push_back({engine, threads, find_pct, range});
        }
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllEnginesMixesThreads, EngineSweepTest,
                         ::testing::ValuesIn(sweep_params()),
                         [](const auto& param_info) {
                           std::ostringstream os;
                           os << param_info.param;
                           std::string s = os.str();
                           for (char& c : s) {
                             if (c == '+' || c == '-') c = '_';
                           }
                           return s;
                         });

}  // namespace
}  // namespace hcf::test
