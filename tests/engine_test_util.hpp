// Shared helpers for engine correctness tests: uniform construction of
// every engine over a given data structure, so correctness suites can be
// typed over the full engine list.
#pragma once

#include <memory>

#include "adapters/avl_ops.hpp"
#include "adapters/deque_ops.hpp"
#include "adapters/ht_ops.hpp"
#include "adapters/pq_ops.hpp"
#include "core/engine.hpp"

namespace hcf::test {

// Engine factory: specialize construction per engine family. `Config` is a
// tag carrying the HCF class configs for the data structure under test.
template <typename E>
struct EngineMaker;

template <typename DS, typename L>
struct EngineMaker<core::LockEngine<DS, L>> {
  template <typename Cfg>
  static auto make(DS& ds, const Cfg&) {
    return std::make_unique<core::LockEngine<DS, L>>(ds);
  }
};

template <typename DS, typename L>
struct EngineMaker<core::TleEngine<DS, L>> {
  template <typename Cfg>
  static auto make(DS& ds, const Cfg&) {
    return std::make_unique<core::TleEngine<DS, L>>(ds);
  }
};

template <typename DS, typename L>
struct EngineMaker<core::ScmEngine<DS, L>> {
  template <typename Cfg>
  static auto make(DS& ds, const Cfg&) {
    return std::make_unique<core::ScmEngine<DS, L>>(ds);
  }
};

template <typename DS, typename L>
struct EngineMaker<core::CoreLockEngine<DS, L>> {
  template <typename Cfg>
  static auto make(DS& ds, const Cfg&) {
    return std::make_unique<core::CoreLockEngine<DS, L>>(ds);
  }
};

template <typename DS, typename L, typename SL>
struct EngineMaker<core::FcEngine<DS, L, SL>> {
  template <typename Cfg>
  static auto make(DS& ds, const Cfg&) {
    return std::make_unique<core::FcEngine<DS, L, SL>>(ds);
  }
};

template <typename DS, typename L, typename SL>
struct EngineMaker<core::TleFcEngine<DS, L, SL>> {
  template <typename Cfg>
  static auto make(DS& ds, const Cfg&) {
    return std::make_unique<core::TleFcEngine<DS, L, SL>>(ds);
  }
};

template <typename DS, typename L, typename SL>
struct EngineMaker<core::HcfEngine<DS, L, SL>> {
  template <typename Cfg>
  static auto make(DS& ds, const Cfg& cfg) {
    return std::make_unique<core::HcfEngine<DS, L, SL>>(ds, cfg.classes,
                                                        cfg.num_arrays);
  }
};

template <typename DS, typename L, typename SL>
struct EngineMaker<core::HcfSingleCombinerEngine<DS, L, SL>> {
  template <typename Cfg>
  static auto make(DS& ds, const Cfg& cfg) {
    return std::make_unique<core::HcfSingleCombinerEngine<DS, L, SL>>(
        ds, cfg.classes, cfg.num_arrays);
  }
};

struct HcfConfig {
  std::vector<core::ClassConfig> classes;
  std::size_t num_arrays = 1;
};

// All engines over one data structure, for typed test suites.
template <typename DS>
struct Engines {
  using Lock = core::LockEngine<DS>;
  using Tle = core::TleEngine<DS>;
  using Scm = core::ScmEngine<DS>;
  using CoreLock = core::CoreLockEngine<DS>;
  using Fc = core::FcEngine<DS>;
  using TleFc = core::TleFcEngine<DS>;
  using Hcf = core::HcfEngine<DS>;
  using Hcf1C = core::HcfSingleCombinerEngine<DS>;
};

}  // namespace hcf::test
