// The wait hierarchy (util/parking.hpp, DESIGN.md §12): the park/wake
// primitive's contract, the tiered waiter's policy behaviour, the parkable
// epoch's Dekker pairing, and — the part that actually matters — no lost
// wakeups across the four converted wait families under WaitPolicy::SpinPark.
// The stress tests here are the TSan targets for the parking protocol: run
// them under -DHCF_SANITIZE=thread to check the ordering story, not just
// the outcomes.
#include "util/parking.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "mem/ebr.hpp"
#include "sync/tx_lock.hpp"

namespace hcf::util {
namespace {

TEST(ParkWake, WakeAfterValueChangeReleasesParkedThread) {
  std::atomic<std::uint32_t> word{0};
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    while (word.load(std::memory_order_acquire) == 0) park(word, 0u);
    EXPECT_TRUE(released.load());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  released.store(true);
  word.store(1, std::memory_order_release);
  // One wake suffices even if the waiter is not asleep yet: its next park
  // sees word != expected and returns immediately (the kernel-side
  // equality check; the fallback's reload check).
  wake_all(word);
  waiter.join();
}

TEST(ParkWake, ParkOnChangedWordReturnsImmediately) {
  std::atomic<std::uint32_t> word{7};
  // No other thread exists, so the only way this returns is the
  // equality check — a lost-wakeup-prone implementation would hang.
  EXPECT_EQ(park(word, 3u), ParkResult::Woken);
}

TEST(ParkWake, PlainWordFlavourRoundTrips) {
  // The TxCell wait_address() path: a plain uint32_t re-read through
  // std::atomic_ref.
  std::uint32_t word = 0;
  std::thread waiter([&] {
    while (std::atomic_ref<std::uint32_t>(word).load(
               std::memory_order_acquire) == 0) {
      park(&word, 0u);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::atomic_ref<std::uint32_t>(word).store(1, std::memory_order_release);
  wake_all(&word);
  waiter.join();
}

TEST(ParkWake, SpuriousWakeIsReportedAndSurvivable) {
  std::atomic<std::uint32_t> word{0};
  std::atomic<bool> saw_spurious{false};
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    while (word.load(std::memory_order_acquire) == 0) {
      if (park(word, 0u) == ParkResult::Spurious) {
        saw_spurious.store(true);
      }
    }
    done.store(true);
  });
  // Hammer wakes without changing the word until the waiter reports one:
  // parks must return Spurious (value unchanged) and loop back to waiting
  // rather than treating the wake as completion.
  while (!saw_spurious.load()) {
    wake_all(word);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_FALSE(done.load());
  word.store(1, std::memory_order_release);
  wake_all(word);
  waiter.join();
  EXPECT_TRUE(done.load());
}

TEST(ParkWake, StatsCountParksAndWakes) {
  const std::uint64_t parks_before = park_stats().parks.total();
  const std::uint64_t wakes_before = park_stats().wakes.total();
  std::atomic<std::uint32_t> word{0};
  std::thread waiter([&] {
    while (word.load(std::memory_order_acquire) == 0) park(word, 0u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  word.store(1, std::memory_order_release);
  wake_all(word);
  waiter.join();
  EXPECT_GE(park_stats().parks.total(), parks_before + 1);
  EXPECT_GE(park_stats().wakes.total(), wakes_before + 1);
}

TEST(TieredWait, SpinYieldNeverRequestsPark) {
  TieredWait waiter(WaitSite::kLockWord, WaitPolicy::SpinYield);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(waiter.wait());
}

TEST(TieredWait, SpinOnlyNeverRequestsPark) {
  TieredWait waiter(WaitSite::kLockWord, WaitPolicy::SpinOnly);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(waiter.wait());
}

TEST(TieredWait, SpinParkEscalatesAfterSpinAndYieldTiers) {
  TieredWait waiter(WaitSite::kLockWord, WaitPolicy::SpinPark);
  int steps_before_park = 0;
  while (!waiter.wait()) {
    ++steps_before_park;
    ASSERT_LT(steps_before_park, 1000) << "SpinPark never escalated";
  }
  // The spin and yield tiers must both run before the first park request.
  const WaitTuning t = wait_tuning(WaitSite::kLockWord);
  EXPECT_GE(static_cast<std::uint32_t>(steps_before_park),
            t.yields_before_park);
  // reset() drops back to the spin tier.
  waiter.reset();
  EXPECT_FALSE(waiter.wait());
}

TEST(ParkableEpoch, AdvanceWakesParkedWaiter) {
  ParkableEpoch epoch;
  EXPECT_EQ(epoch.load(), 0u);
  std::thread waiter([&] {
    while (epoch.load() == 0) epoch.park_if(0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  epoch.advance(3);
  waiter.join();
  EXPECT_EQ(epoch.load(), 3u);
}

TEST(ParkableEpoch, ParkOnMovedValueReturnsImmediately) {
  ParkableEpoch epoch;
  epoch.advance(5);
  epoch.park_if(0);  // single-threaded: must not sleep
  EXPECT_EQ(epoch.load(), 5u);
}

TEST(ParkableEpoch, WakeWaitersWithNobodyParkedIsANoOp) {
  ParkableEpoch epoch;
  const std::uint64_t wakes_before = park_stats().wakes.total();
  epoch.wake_waiters();
  // The waiters counter is zero, so no wake syscall may fire.
  EXPECT_EQ(park_stats().wakes.total(), wakes_before);
}

}  // namespace
}  // namespace hcf::util

namespace hcf::sync {
namespace {

// Lost-wakeup stress for the lock-word waiters-bit protocol: every round a
// cohort piles onto the lock under SpinPark; a single dropped wake parks a
// thread forever and the test hangs. Run under TSan for the ordering half.
template <typename L>
class ParkingLockTest : public ::testing::Test {};

using LockTypes = ::testing::Types<TxLock, FairTxLock>;
TYPED_TEST_SUITE(ParkingLockTest, LockTypes);

TYPED_TEST(ParkingLockTest, SpinParkMutualExclusionStress) {
  TypeParam lock;
  std::uint64_t counter = 0;  // deliberately non-atomic
  constexpr int kThreads = 4;
  constexpr int kRounds = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        lock.lock(util::WaitPolicy::SpinPark);
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kRounds);
}

TYPED_TEST(ParkingLockTest, WaitUntilFreeParksAndWakes) {
  TypeParam lock;
  lock.lock();
  std::atomic<bool> released{false};
  std::thread t([&] {
    lock.wait_until_free(util::WaitPolicy::SpinPark);
    EXPECT_TRUE(released.load());
  });
  // Long enough for the waiter to exhaust its spin/yield tiers and park.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  released = true;
  lock.unlock();
  t.join();
}

TYPED_TEST(ParkingLockTest, WaitersBitNeverLeaksIntoSubscribe) {
  // The waiters bit is only set while the lock is held and cleared with
  // the release, so a subscription after a parked wait must commit.
  TypeParam lock;
  lock.lock();
  std::thread t([&] { lock.wait_until_free(util::WaitPolicy::SpinPark); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  lock.unlock();
  t.join();
  EXPECT_FALSE(lock.is_locked());
  EXPECT_TRUE(htm::attempt([&] { lock.subscribe(); }));
}

}  // namespace
}  // namespace hcf::sync

namespace hcf::core {
namespace {

struct HotSpot {
  htm::TxField<std::uint64_t> value{0};
};

class IncOp : public Operation<HotSpot> {
 public:
  using Operation<HotSpot>::Operation;
  void run_seq(HotSpot& ds) override { ds.value = ds.value + 1; }
};

TEST(OperationParking, WaitDoneParksUntilMarkDone) {
  IncOp op;
  op.prepare();
  op.mark_announced();
  op.mark_being_helped();
  std::atomic<bool> completed{false};
  std::thread owner([&] {
    op.wait_done(util::WaitPolicy::SpinPark);
    EXPECT_TRUE(completed.load());
    EXPECT_EQ(op.status(), OpStatus::Done);
    EXPECT_EQ(op.completed_phase(), Phase::Combining);
  });
  // Give the owner time to park on its status word.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  completed.store(true);
  op.mark_done(Phase::Combining);
  owner.join();
  // The parked bit must not survive into the visible status.
  EXPECT_EQ(op.status(), OpStatus::Done);
}

TEST(OperationParking, MarkDoneWithoutParkedOwnerSkipsWake) {
  const std::uint64_t wakes_before = util::park_stats().wakes.total();
  IncOp op;
  op.prepare();
  op.mark_announced();
  op.mark_being_helped();
  op.mark_done(Phase::UnderLock);
  EXPECT_EQ(op.status(), OpStatus::Done);
  EXPECT_EQ(util::park_stats().wakes.total(), wakes_before);
}

// The end-to-end regression for live policy flips: threads hammer a
// one-word structure through the full HCF engine while the main thread
// flips the class policy between SpinYield and SpinPark. Waiters parked
// under the old policy must still be woken under the new one (the wake
// sites are policy-independent), and every operation must execute exactly
// once.
TEST(EnginePolicyFlip, SpinYieldToSpinParkUnderLoad) {
  HotSpot ds;
  HcfEngine<HotSpot> engine(ds, PhasePolicy::paper_default());
  constexpr int kThreads = 4;
  constexpr int kOps = 4000;
  std::atomic<bool> stop_flipping{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      IncOp op;
      for (int i = 0; i < kOps; ++i) engine.execute(op);
    });
  }
  std::thread flipper([&] {
    PhasePolicy yield = PhasePolicy::paper_default();
    PhasePolicy parking = PhasePolicy::paper_default();
    parking.wait = util::WaitPolicy::SpinPark;
    bool parked = false;
    while (!stop_flipping.load()) {
      for (std::size_t cls = 0; cls < engine.num_classes(); ++cls) {
        engine.set_class_policy(cls, parked ? yield : parking);
      }
      parked = !parked;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& th : threads) th.join();
  stop_flipping.store(true);
  flipper.join();
  EXPECT_EQ(ds.value.get(), static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(engine.class_config(0).policy.announce, true);
  mem::EbrDomain::instance().drain();
}

// Pure-SpinPark engine run: all four wait families (lock word, selection
// competition, op status, ticket queue via FairTxLock engines elsewhere)
// exercise the park path at once. A lost wake anywhere hangs the test.
TEST(EnginePolicyFlip, AllSpinParkExactlyOnce) {
  HotSpot ds;
  PhasePolicy policy = PhasePolicy::paper_default();
  policy.wait = util::WaitPolicy::SpinPark;
  HcfEngine<HotSpot> engine(ds, policy);
  constexpr int kThreads = 4;
  constexpr int kOps = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      IncOp op;
      for (int i = 0; i < kOps; ++i) engine.execute(op);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ds.value.get(), static_cast<std::uint64_t>(kThreads) * kOps);
  mem::EbrDomain::instance().drain();
}

// Flat-combining engine under SpinPark: epoch parking in the global-lock
// waiter loop plus the session-ending wake_all_epoch_waiters.
TEST(EnginePolicyFlip, FlatCombiningSpinParkExactlyOnce) {
  HotSpot ds;
  FcEngine<HotSpot> engine(ds);
  PhasePolicy policy = PhasePolicy::fc_like();
  policy.wait = util::WaitPolicy::SpinPark;
  for (std::size_t cls = 0; cls < engine.num_classes(); ++cls) {
    engine.set_class_policy(cls, policy);
  }
  constexpr int kThreads = 4;
  constexpr int kOps = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      IncOp op;
      for (int i = 0; i < kOps; ++i) engine.execute(op);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ds.value.get(), static_cast<std::uint64_t>(kThreads) * kOps);
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::core
