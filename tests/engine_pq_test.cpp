// Concurrent correctness of every engine over the skip-list priority queue:
// every key inserted with a unique tag must be removed at most once, and
// inserted-but-not-removed keys must all still be present at the end.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "engine_test_util.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::test {
namespace {

using Pq = ds::SkipListPq<std::uint64_t>;

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 8000;

HcfConfig pq_config() {
  return {adapters::pq_paper_config(), adapters::kPqNumArrays};
}

template <typename Engine>
class EnginePqTest : public ::testing::Test {};

using EngineTypes =
    ::testing::Types<Engines<Pq>::Lock, Engines<Pq>::Tle, Engines<Pq>::Scm,
                     Engines<Pq>::Fc, Engines<Pq>::TleFc, Engines<Pq>::Hcf,
                     Engines<Pq>::Hcf1C>;
TYPED_TEST_SUITE(EnginePqTest, EngineTypes);

TYPED_TEST(EnginePqTest, EveryInsertedKeyRemovedAtMostOnce) {
  Pq pq;
  auto engine = EngineMaker<TypeParam>::make(pq, pq_config());

  // Unique keys: thread id in the high bits, sequence in the low bits,
  // scrambled into the priority order via a shared low field.
  std::vector<std::vector<std::uint64_t>> inserted(kThreads);
  std::vector<std::vector<std::uint64_t>> removed(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(321 + t);
      adapters::PqInsertOp<std::uint64_t> insert;
      adapters::PqRemoveMinOp<std::uint64_t> remove_min;
      std::uint64_t seq = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.next_bounded(2) == 0) {
          // priority (random) | thread | seq  -> globally unique
          const std::uint64_t key = (rng.next_bounded(1 << 16) << 32) |
                                    (static_cast<std::uint64_t>(t) << 24) |
                                    seq++;
          insert.set(key);
          engine->execute(insert);
          inserted[t].push_back(key);
        } else {
          engine->execute(remove_min);
          if (remove_min.result().has_value()) {
            removed[t].push_back(*remove_min.result());
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::multiset<std::uint64_t> all_inserted;
  for (const auto& v : inserted) all_inserted.insert(v.begin(), v.end());
  std::multiset<std::uint64_t> all_removed;
  for (const auto& v : removed) all_removed.insert(v.begin(), v.end());

  // No phantom or duplicate removals.
  for (std::uint64_t k : all_removed) {
    ASSERT_EQ(all_inserted.count(k), 1u) << TypeParam::name() << " key " << k;
    ASSERT_EQ(all_removed.count(k), 1u) << TypeParam::name() << " key " << k;
  }
  // Remaining queue contents == inserted \ removed.
  std::multiset<std::uint64_t> expected_left = all_inserted;
  for (std::uint64_t k : all_removed) expected_left.erase(k);
  std::multiset<std::uint64_t> actual_left;
  while (auto k = pq.remove_min()) actual_left.insert(*k);
  EXPECT_EQ(actual_left, expected_left) << TypeParam::name();
  EXPECT_TRUE(pq.check_invariants());
  mem::EbrDomain::instance().drain();
}

TYPED_TEST(EnginePqTest, DrainReturnsSortedKeys) {
  Pq pq;
  auto engine = EngineMaker<TypeParam>::make(pq, pq_config());
  adapters::PqInsertOp<std::uint64_t> insert;
  adapters::PqRemoveMinOp<std::uint64_t> remove_min;
  util::Xoshiro256 rng(5);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 200; ++i) {
    const auto k = rng.next();
    keys.push_back(k);
    insert.set(k);
    engine->execute(insert);
  }
  std::sort(keys.begin(), keys.end());
  // Single-threaded drain must return keys in ascending order.
  for (std::uint64_t expected : keys) {
    engine->execute(remove_min);
    ASSERT_TRUE(remove_min.result().has_value());
    ASSERT_EQ(*remove_min.result(), expected) << TypeParam::name();
  }
  engine->execute(remove_min);
  EXPECT_FALSE(remove_min.result().has_value());
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::test
