// Direct unit tests of the adapter run_multi batch semantics (prefix
// contract, partitioning, result distribution), single-threaded so every
// outcome is deterministic.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "adapters/deque_ops.hpp"
#include "adapters/ht_ops.hpp"
#include "adapters/pq_ops.hpp"
#include "adapters/stack_ops.hpp"
#include "mem/ebr.hpp"

namespace hcf::adapters {
namespace {

// ---- hash table ----

using Table = ds::HashTable<std::uint64_t, std::uint64_t>;
using HtOp = core::Operation<Table>;

TEST(HtRunMulti, MixedBatchPartitionsInsertsFirst) {
  Table table(64);
  table.insert(5, 50);

  HtInsertOp<std::uint64_t, std::uint64_t> ins1, ins2;
  HtFindOp<std::uint64_t, std::uint64_t> find;
  HtRemoveOp<std::uint64_t, std::uint64_t> rem;
  ins1.set(1, 10);
  ins2.set(2, 20);
  find.set(5);
  rem.set(5);

  HtOp* ops[] = {&find, &ins1, &rem, &ins2};
  std::span<HtOp*> pending(ops);
  while (!pending.empty()) {
    const std::size_t k = ins1.run_multi(table, pending);
    ASSERT_GE(k, 1u);
    pending = pending.subspan(k);
  }
  EXPECT_TRUE(ins1.result());
  EXPECT_TRUE(ins2.result());
  EXPECT_EQ(table.find(1), 10u);
  EXPECT_EQ(table.find(2), 20u);
  // find/remove ran after the partitioned inserts; both targeted key 5.
  // One of them saw it before the other removed it — with this adapter,
  // partition order is deterministic: inserts first, then the remaining
  // ops in (possibly permuted) order. The important bits: results are
  // consistent with the final state.
  EXPECT_FALSE(table.contains(5));
  EXPECT_TRUE(rem.result());
  EXPECT_TRUE(table.check_invariants());
  mem::EbrDomain::instance().drain();
}

TEST(HtRunMulti, PrefixBoundedByMaxBatch) {
  Table table(64);
  std::vector<std::unique_ptr<HtInsertOp<std::uint64_t, std::uint64_t>>> ops;
  std::vector<HtOp*> raw;
  for (std::uint64_t i = 0; i < kHtMaxBatch + 5; ++i) {
    ops.push_back(std::make_unique<HtInsertOp<std::uint64_t, std::uint64_t>>());
    ops.back()->set(i, i);
    raw.push_back(ops.back().get());
  }
  const std::size_t k = ops[0]->run_multi(table, std::span<HtOp*>(raw));
  EXPECT_EQ(k, kHtMaxBatch);
  EXPECT_EQ(table.size_slow(), kHtMaxBatch);
}

// ---- priority queue ----

using Pq = ds::SkipListPq<std::uint64_t>;
using PqOp = core::Operation<Pq>;

TEST(PqRunMulti, InsertEliminatesAgainstRemoveMin) {
  // Pending Insert(5) is below the queue minimum (10), so it is consumed
  // by a RemoveMin directly: removes get {5, 10, 20}, the insert never
  // touches the skip list.
  Pq pq;
  for (std::uint64_t k : {30, 10, 20, 40}) pq.insert(k);
  PqRemoveMinOp<std::uint64_t> rm1, rm2, rm3;
  PqInsertOp<std::uint64_t> ins;
  ins.set(5);
  PqOpBase<std::uint64_t>::reset_eliminations();
  PqOp* ops[] = {&rm1, &ins, &rm2, &rm3};
  std::span<PqOp*> pending(ops);
  while (!pending.empty()) {
    const std::size_t k = rm1.run_multi(pq, pending);
    ASSERT_GE(k, 1u);
    pending = pending.subspan(k);
  }
  std::multiset<std::uint64_t> got = {*rm1.result(), *rm2.result(),
                                      *rm3.result()};
  EXPECT_EQ(got, (std::multiset<std::uint64_t>{5, 10, 20}));
  EXPECT_EQ(pq.size_slow(), 2u);  // 30 and 40 remain
  EXPECT_EQ(pq.peek_min(), 30u);
  EXPECT_EQ(PqOpBase<std::uint64_t>::eliminations(), 1u);
  mem::EbrDomain::instance().drain();
}

TEST(PqRunMulti, HighInsertKeysDontEliminate) {
  // Insert key above the queue minimum: RemoveMins take the batched
  // remove_min_n path, the insert lands in the queue afterwards.
  Pq pq;
  for (std::uint64_t k : {10, 20}) pq.insert(k);
  PqRemoveMinOp<std::uint64_t> rm1, rm2;
  PqInsertOp<std::uint64_t> ins;
  ins.set(50);
  PqOpBase<std::uint64_t>::reset_eliminations();
  PqOp* ops[] = {&rm1, &ins, &rm2};
  std::span<PqOp*> pending(ops);
  while (!pending.empty()) {
    const std::size_t k = rm1.run_multi(pq, pending);
    ASSERT_GE(k, 1u);
    pending = pending.subspan(k);
  }
  std::multiset<std::uint64_t> got = {*rm1.result(), *rm2.result()};
  EXPECT_EQ(got, (std::multiset<std::uint64_t>{10, 20}));
  EXPECT_EQ(pq.size_slow(), 1u);
  EXPECT_EQ(pq.peek_min(), 50u);
  EXPECT_EQ(PqOpBase<std::uint64_t>::eliminations(), 0u);
  mem::EbrDomain::instance().drain();
}

TEST(PqRunMulti, EliminationIntoEmptyQueue) {
  // Empty queue: RemoveMins are served from pending inserts in ascending
  // order; surplus RemoveMins get nullopt.
  Pq pq;
  PqRemoveMinOp<std::uint64_t> rm1, rm2, rm3;
  PqInsertOp<std::uint64_t> i1, i2;
  i1.set(9);
  i2.set(3);
  PqOp* ops[] = {&rm1, &i1, &rm2, &i2, &rm3};
  std::span<PqOp*> pending(ops);
  while (!pending.empty()) {
    const std::size_t k = rm1.run_multi(pq, pending);
    ASSERT_GE(k, 1u);
    pending = pending.subspan(k);
  }
  std::multiset<std::uint64_t> got;
  int empties = 0;
  for (auto* rm : {&rm1, &rm2, &rm3}) {
    if (rm->result().has_value()) {
      got.insert(*rm->result());
    } else {
      ++empties;
    }
  }
  EXPECT_EQ(got, (std::multiset<std::uint64_t>{3, 9}));
  EXPECT_EQ(empties, 1);
  EXPECT_TRUE(pq.empty());
  mem::EbrDomain::instance().drain();
}

TEST(PqRunMulti, RemoveMinOnEmptyYieldsNullopt) {
  Pq pq;
  PqRemoveMinOp<std::uint64_t> rm1, rm2;
  PqOp* ops[] = {&rm1, &rm2};
  const std::size_t k = rm1.run_multi(pq, std::span<PqOp*>(ops));
  EXPECT_EQ(k, 2u);
  EXPECT_FALSE(rm1.result().has_value());
  EXPECT_FALSE(rm2.result().has_value());
}

TEST(PqRunMulti, PartiallyEmptyQueue) {
  Pq pq;
  pq.insert(7);
  PqRemoveMinOp<std::uint64_t> rm1, rm2;
  PqOp* ops[] = {&rm1, &rm2};
  rm1.run_multi(pq, std::span<PqOp*>(ops));
  EXPECT_EQ(rm1.result(), 7u);
  EXPECT_FALSE(rm2.result().has_value());
  mem::EbrDomain::instance().drain();
}

// ---- deque ----

using Dq = ds::Deque<std::uint64_t>;
using DqOp = core::Operation<Dq>;

TEST(DequeRunMulti, SameKindPrefixBatches) {
  Dq dq;
  PushLeftOp<std::uint64_t> p1, p2;
  PopLeftOp<std::uint64_t> q1;
  p1.set(1);
  p2.set(2);
  DqOp* ops[] = {&p1, &q1, &p2};
  // First call batches the two pushes (partitioned to the front).
  const std::size_t k1 = p1.run_multi(dq, std::span<DqOp*>(ops));
  EXPECT_EQ(k1, 2u);
  EXPECT_EQ(dq.size_slow(), 2u);
  // Second call handles the pop.
  const std::size_t k2 =
      q1.run_multi(dq, std::span<DqOp*>(ops).subspan(k1));
  EXPECT_EQ(k2, 1u);
  ASSERT_TRUE(q1.result().has_value());
  mem::EbrDomain::instance().drain();
}

TEST(DequeRunMulti, PopBatchAssignsInOrder) {
  Dq dq;
  for (std::uint64_t v = 0; v < 6; ++v) dq.push_right(v);  // [0..5]
  PopLeftOp<std::uint64_t> q1, q2, q3;
  DqOp* ops[] = {&q1, &q2, &q3};
  const std::size_t k = q1.run_multi(dq, std::span<DqOp*>(ops));
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(q1.result(), 0u);
  EXPECT_EQ(q2.result(), 1u);
  EXPECT_EQ(q3.result(), 2u);
  mem::EbrDomain::instance().drain();
}

// ---- stack elimination ----

using St = ds::Stack<std::uint64_t>;
using StOp = core::Operation<St>;

TEST(StackRunMulti, PairsEliminateWithoutTouchingStack) {
  St st;
  st.push(99);
  StackPushOp<std::uint64_t> push;
  StackPopOp<std::uint64_t> pop;
  push.set(42);
  StackOpBase<std::uint64_t>::reset_eliminations();
  StOp* ops[] = {&push, &pop};
  const std::size_t k = push.run_multi(st, std::span<StOp*>(ops));
  EXPECT_EQ(k, 2u);
  EXPECT_EQ(pop.result(), 42u);            // served by the eliminated push
  EXPECT_EQ(st.size_slow(), 1u);           // stack untouched
  EXPECT_EQ(st.peek(), 99u);
  EXPECT_EQ(StackOpBase<std::uint64_t>::eliminations(), 1u);
}

TEST(StackRunMulti, SurplusPushesChain) {
  St st;
  StackPushOp<std::uint64_t> p1, p2, p3;
  StackPopOp<std::uint64_t> q1;
  p1.set(1);
  p2.set(2);
  p3.set(3);
  StOp* ops[] = {&p1, &q1, &p2, &p3};
  const std::size_t k = p1.run_multi(st, std::span<StOp*>(ops));
  EXPECT_EQ(k, 4u);
  ASSERT_TRUE(q1.result().has_value());    // eliminated against one push
  EXPECT_EQ(st.size_slow(), 2u);           // the two surviving pushes
  mem::EbrDomain::instance().drain();
}

TEST(StackRunMulti, SurplusPopsDrainTopFirst) {
  St st;
  st.push(10);
  st.push(20);  // top
  StackPopOp<std::uint64_t> q1, q2;
  StOp* ops[] = {&q1, &q2};
  q1.run_multi(st, std::span<StOp*>(ops));
  EXPECT_EQ(q1.result(), 20u);
  EXPECT_EQ(q2.result(), 10u);
  EXPECT_TRUE(st.empty());
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::adapters
