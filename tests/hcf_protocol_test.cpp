// HCF protocol-level properties: exactly-once execution under contention,
// phase accounting, helping, policy degenerations (TLE-like / FC-like), and
// the single-combiner variant.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::core {
namespace {

// A data structure with one hot word — every operation conflicts, forcing
// traffic through announce/combine/lock phases.
struct HotSpot {
  htm::TxField<std::uint64_t> value{0};
};

// Each op increments the hot word and counts its own *effective*
// executions. The counter is a TxField: increments made by speculative
// attempts that abort are rolled back with the rest of the transaction, so
// the counter reflects exactly the executions that took effect — which is
// what "exactly once" means for speculative execution.
class CountedIncOp : public Operation<HotSpot> {
 public:
  using Operation<HotSpot>::Operation;

  void run_seq(HotSpot& ds) override {
    ds.value = ds.value + 1;
    executions_ = executions_ + 1;
  }

  std::uint64_t executions() const noexcept { return executions_.get(); }
  void reset_executions() noexcept { executions_.init(0); }

 private:
  htm::TxField<std::uint64_t> executions_{0};
};

TEST(HcfProtocol, ExactlyOnceUnderHeavyContention) {
  HotSpot ds;
  HcfEngine<HotSpot> engine(ds, PhasePolicy::paper_default());
  constexpr int kThreads = 4;
  constexpr int kOps = 8000;
  std::atomic<std::uint64_t> total_claimed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      CountedIncOp op;
      for (int i = 0; i < kOps; ++i) {
        op.reset_executions();
        engine.execute(op);
        // Exactly-once: the op must have run exactly one time.
        ASSERT_EQ(op.executions(), 1u);
        total_claimed.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ds.value.get(), static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(engine.stats().total(), total_claimed.load());
  mem::EbrDomain::instance().drain();
}

TEST(HcfProtocol, ExactlyOnceSingleCombinerVariant) {
  HotSpot ds;
  HcfSingleCombinerEngine<HotSpot> engine(ds, PhasePolicy::paper_default());
  constexpr int kThreads = 4;
  constexpr int kOps = 8000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      CountedIncOp op;
      for (int i = 0; i < kOps; ++i) {
        op.reset_executions();
        engine.execute(op);
        ASSERT_EQ(op.executions(), 1u);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ds.value.get(), static_cast<std::uint64_t>(kThreads) * kOps);
  mem::EbrDomain::instance().drain();
}

TEST(HcfProtocol, PhaseCountsSumToOps) {
  HotSpot ds;
  HcfEngine<HotSpot> engine(ds, PhasePolicy::paper_default());
  constexpr int kThreads = 4;
  constexpr int kOps = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      CountedIncOp op;
      for (int i = 0; i < kOps; ++i) engine.execute(op);
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = EngineStatsSnapshot::capture(engine.stats());
  std::uint64_t sum = 0;
  for (int p = 0; p < kNumPhases; ++p) {
    sum += snap.phase_total(static_cast<Phase>(p));
  }
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kThreads) * kOps);
  // (Whether later phases engage is timing-dependent with the default
  // policy; HelpingActuallyHappens pins that down with combine_first.)
  mem::EbrDomain::instance().drain();
}

TEST(HcfProtocol, HelpingActuallyHappens) {
  // combine_first: every op announces and goes straight to the combining
  // phases, so selection-lock contention makes helping overwhelmingly
  // likely — but not certain: the threads can fall into a lock-step
  // convoy where every scan happens while nobody else is announced
  // (observed ~20% of runs on the development container, at the seed
  // commit too). The property under test is "helping CAN happen and the
  // stats account for it", so retry the workload a few times and assert
  // on the run that escaped the convoy.
  HotSpot ds;
  HcfEngine<HotSpot> engine(ds, PhasePolicy::combine_first());
  constexpr int kThreads = 4;
  constexpr int kOps = 8000;
  constexpr int kAttempts = 5;
  EngineStatsSnapshot snap;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        CountedIncOp op;
        for (int i = 0; i < kOps; ++i) engine.execute(op);
      });
    }
    for (auto& th : threads) th.join();
    snap = EngineStatsSnapshot::capture(engine.stats());
    if (snap.helped_ops > 0) break;
  }
  EXPECT_GT(snap.helped_ops, 0u);
  EXPECT_GT(snap.combiner_sessions, 0u);
  EXPECT_GE(snap.ops_selected, snap.combiner_sessions);  // >= own op each
  EXPECT_GT(snap.combining_degree(), 1.0);
  mem::EbrDomain::instance().drain();
}

TEST(HcfProtocol, TleLikePolicyNeverAnnounces) {
  HotSpot ds;
  HcfEngine<HotSpot> engine(ds, PhasePolicy::tle_like());
  constexpr int kThreads = 4;
  constexpr int kOps = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      CountedIncOp op;
      for (int i = 0; i < kOps; ++i) {
        op.reset_executions();
        engine.execute(op);
        ASSERT_EQ(op.executions(), 1u);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ds.value.get(), static_cast<std::uint64_t>(kThreads) * kOps);
  const auto snap = EngineStatsSnapshot::capture(engine.stats());
  // TLE degeneration: no visible-phase completions, no helping.
  EXPECT_EQ(snap.phase_total(Phase::Visible), 0u);
  EXPECT_EQ(snap.helped_ops, 0u);
  EXPECT_EQ(snap.phase_total(Phase::Private) +
                snap.phase_total(Phase::Combining) +
                snap.phase_total(Phase::UnderLock),
            static_cast<std::uint64_t>(kThreads) * kOps);
  mem::EbrDomain::instance().drain();
}

TEST(HcfProtocol, FcLikePolicySkipsAllSpeculation) {
  HotSpot ds;
  HcfEngine<HotSpot> engine(ds, PhasePolicy::fc_like());
  htm::stats().reset();
  constexpr int kThreads = 4;
  constexpr int kOps = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      CountedIncOp op;
      for (int i = 0; i < kOps; ++i) {
        op.reset_executions();
        engine.execute(op);
        ASSERT_EQ(op.executions(), 1u);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ds.value.get(), static_cast<std::uint64_t>(kThreads) * kOps);
  const auto snap = EngineStatsSnapshot::capture(engine.stats());
  // FC degeneration: everything completes under the lock, with combining.
  EXPECT_EQ(snap.phase_total(Phase::Private), 0u);
  EXPECT_EQ(snap.phase_total(Phase::Visible), 0u);
  EXPECT_EQ(snap.phase_total(Phase::Combining), 0u);
  EXPECT_EQ(snap.phase_total(Phase::UnderLock),
            static_cast<std::uint64_t>(kThreads) * kOps);
  // No transactions were even started by the engine.
  EXPECT_EQ(htm::StatsSnapshot::capture().starts, 0u);
  mem::EbrDomain::instance().drain();
}

TEST(HcfProtocol, MultipleArraysIsolateClasses) {
  // Two classes on two arrays; class-1 combiners must never select class-0
  // ops. Observable: every op-0 execution is by its own thread (helped_ops
  // stays zero when only class 0 announces... instead we check per-class
  // phase totals reconcile exactly).
  HotSpot ds;
  std::vector<ClassConfig> classes = {
      ClassConfig{0, PhasePolicy::paper_default()},
      ClassConfig{1, PhasePolicy::paper_default()},
  };
  HcfEngine<HotSpot> engine(ds, classes, 2);
  constexpr int kThreads = 4;
  constexpr int kOps = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      CountedIncOp op(t % 2);  // half the threads use class 1
      for (int i = 0; i < kOps; ++i) {
        op.reset_executions();
        engine.execute(op);
        ASSERT_EQ(op.executions(), 1u);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ds.value.get(), static_cast<std::uint64_t>(kThreads) * kOps);
  const auto snap = EngineStatsSnapshot::capture(engine.stats());
  EXPECT_EQ(snap.class_total(0), static_cast<std::uint64_t>(kThreads / 2) * kOps * 2 / 2);
  EXPECT_EQ(snap.class_total(1), static_cast<std::uint64_t>(kThreads / 2) * kOps);
  mem::EbrDomain::instance().drain();
}

TEST(HcfProtocol, ZeroTrialsEverywhereStillCompletes) {
  // Degenerate policy: no HTM anywhere, no announcing — pure lock.
  HotSpot ds;
  HcfEngine<HotSpot> engine(ds, PhasePolicy{0, 0, 0, false});
  CountedIncOp op;
  for (int i = 0; i < 100; ++i) engine.execute(op);
  EXPECT_EQ(ds.value.get(), 100u);
  const auto snap = EngineStatsSnapshot::capture(engine.stats());
  EXPECT_EQ(snap.phase_total(Phase::UnderLock), 100u);
}

TEST(HcfProtocol, RunMultiPartialBatchesRetireInPrefixOrder) {
  // An op whose run_multi executes at most 2 ops per call: the engine must
  // loop until all selected ops are done, never losing or repeating one.
  struct SlowBatchOp : public CountedIncOp {
    using CountedIncOp::CountedIncOp;
    std::size_t run_multi(HotSpot& ds,
                          std::span<Operation<HotSpot>*> ops) override {
      const std::size_t k = std::min<std::size_t>(2, ops.size());
      for (std::size_t i = 0; i < k; ++i) ops[i]->run_seq(ds);
      return k;
    }
  };
  HotSpot ds;
  HcfEngine<HotSpot> engine(ds, PhasePolicy::fc_like());
  constexpr int kThreads = 4;
  constexpr int kOps = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      SlowBatchOp op;
      for (int i = 0; i < kOps; ++i) {
        op.reset_executions();
        engine.execute(op);
        ASSERT_EQ(op.executions(), 1u);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ds.value.get(), static_cast<std::uint64_t>(kThreads) * kOps);
  mem::EbrDomain::instance().drain();
}

TEST(HcfProtocol, CapacityAbortsFallThroughToCombining) {
  // Shrink capacity so speculative attempts always fail; operations must
  // still complete exactly once via the lock phases.
  struct WideDs {
    htm::TxField<std::uint64_t> words[64];
  };
  class WideOp : public Operation<WideDs> {
   public:
    void run_seq(WideDs& ds) override {
      for (auto& w : ds.words) w = w + 1;
    }
  };
  htm::ScopedCapacity caps(16, 4);
  WideDs ds;
  HcfEngine<WideDs> engine(ds, PhasePolicy::paper_default());
  constexpr int kThreads = 3;
  constexpr int kOps = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      WideOp op;
      for (int i = 0; i < kOps; ++i) engine.execute(op);
    });
  }
  for (auto& th : threads) th.join();
  for (auto& w : ds.words) {
    EXPECT_EQ(w.get(), static_cast<std::uint64_t>(kThreads) * kOps);
  }
  mem::EbrDomain::instance().drain();
}

TEST(HcfProtocol, FairLocksProvideProgressForEveryThread) {
  // With fair (ticket) data-structure and selection locks, every thread
  // must complete its quota in bounded time even under total conflict —
  // the paper's starvation-freedom claim (§2.3) in executable form.
  HotSpot ds;
  HcfEngine<HotSpot, sync::FairTxLock, sync::FairTxLock> engine(
      ds, PhasePolicy::paper_default());
  constexpr int kThreads = 6;  // oversubscribed on 2 cores
  constexpr int kOps = 2000;
  std::atomic<int> finished{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      CountedIncOp op;
      for (int i = 0; i < kOps; ++i) engine.execute(op);
      finished.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(finished.load(), kThreads);
  EXPECT_EQ(ds.value.get(), static_cast<std::uint64_t>(kThreads) * kOps);
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::core
