#include "util/zipf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace hcf::util {
namespace {

TEST(Zipf, ValuesStayInRange) {
  Xoshiro256 rng(1);
  ZipfianGenerator zipf(100, 0.9);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(zipf.next(rng), 100u);
  }
}

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfianGenerator zipf(1000, 0.9);
  double sum = 0.0;
  for (std::uint64_t k = 0; k < 1000; ++k) sum += zipf.probability(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, ProbabilitiesMonotoneDecreasing) {
  ZipfianGenerator zipf(64, 0.7);
  for (std::uint64_t k = 1; k < 64; ++k) {
    EXPECT_LT(zipf.probability(k), zipf.probability(k - 1));
  }
}

TEST(Zipf, EmpiricalMatchesAnalytic) {
  // theta = 0.9 over 16 ranks: compare empirical frequencies to p(k).
  Xoshiro256 rng(42);
  ZipfianGenerator zipf(16, 0.9);
  std::vector<std::uint64_t> hits(16, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++hits[zipf.next(rng)];
  for (std::uint64_t k = 0; k < 16; ++k) {
    const double expected = zipf.probability(k);
    const double observed = static_cast<double>(hits[k]) / n;
    // The inversion method is approximate for mid ranks; 25% relative
    // tolerance (plus absolute floor) is tight enough to catch real bugs.
    EXPECT_NEAR(observed, expected, expected * 0.25 + 0.002)
        << "rank " << k;
  }
}

TEST(Zipf, HigherThetaMoreSkewed) {
  Xoshiro256 rng1(5), rng2(5);
  ZipfianGenerator mild(1024, 0.3), sharp(1024, 0.95);
  std::uint64_t mild_rank0 = 0, sharp_rank0 = 0;
  for (int i = 0; i < 100000; ++i) {
    if (mild.next(rng1) == 0) ++mild_rank0;
    if (sharp.next(rng2) == 0) ++sharp_rank0;
  }
  EXPECT_GT(sharp_rank0, mild_rank0 * 2);
}

TEST(Zipf, ThetaZeroIsRoughlyUniform) {
  Xoshiro256 rng(11);
  ZipfianGenerator zipf(10, 0.0);
  std::vector<std::uint64_t> hits(10, 0);
  for (int i = 0; i < 100000; ++i) ++hits[zipf.next(rng)];
  const auto [mn, mx] = std::minmax_element(hits.begin(), hits.end());
  EXPECT_LT(static_cast<double>(*mx) / static_cast<double>(*mn), 1.25);
}

TEST(Zipf, SingleElementRange) {
  Xoshiro256 rng(3);
  ZipfianGenerator zipf(1, 0.5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.next(rng), 0u);
}

TEST(ScatteredZipf, StaysInRange) {
  Xoshiro256 rng(8);
  ScatteredZipf zipf(1000, 0.9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.next(rng), 1000u);
}

TEST(ScatteredZipf, HotKeysNotAdjacent) {
  // With scattering, the two hottest observed keys should (with high
  // probability) not be numerically adjacent.
  Xoshiro256 rng(8);
  ScatteredZipf zipf(1 << 16, 0.99);
  std::vector<std::uint64_t> hits(1 << 16, 0);
  for (int i = 0; i < 200000; ++i) ++hits[zipf.next(rng)];
  std::size_t best = 0, second = 1;
  if (hits[second] > hits[best]) std::swap(best, second);
  for (std::size_t k = 2; k < hits.size(); ++k) {
    if (hits[k] > hits[best]) {
      second = best;
      best = k;
    } else if (hits[k] > hits[second]) {
      second = k;
    }
  }
  const auto distance = best > second ? best - second : second - best;
  EXPECT_GT(distance, 1u);
}

}  // namespace
}  // namespace hcf::util
