#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace hcf::util {
namespace {

TEST(Histogram, BucketIndexMonotone) {
  int prev = -1;
  for (std::uint64_t v :
       {0ull, 1ull, 15ull, 16ull, 17ull, 100ull, 1000ull, 1ull << 20,
        (1ull << 20) + 12345, 1ull << 35}) {
    const int idx = LatencyHistogram::bucket_index(v);
    EXPECT_GE(idx, prev) << v;
    EXPECT_LT(idx, LatencyHistogram::kTotalBuckets);
    prev = idx;
  }
}

TEST(Histogram, UpperBoundContainsValue) {
  // Within the covered range (< 2^38 ns ~ 4.5 minutes) the bucket's upper
  // bound contains the recorded value; larger values saturate into the
  // last bucket (checked separately below).
  Xoshiro256 rng(4);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.next() >> (26 + rng.next() % 38);
    const int idx = LatencyHistogram::bucket_index(v);
    EXPECT_GE(LatencyHistogram::bucket_upper_bound(idx), v)
        << "value " << v << " idx " << idx;
  }
}

TEST(Histogram, OutOfRangeValuesSaturate) {
  const int last = LatencyHistogram::kTotalBuckets - 1;
  EXPECT_EQ(LatencyHistogram::bucket_index(~0ull), last);
  EXPECT_EQ(LatencyHistogram::bucket_index(1ull << 60), last);
}

TEST(Histogram, SmallValuesExact) {
  auto h = std::make_unique<LatencyHistogram>();
  for (std::uint64_t v = 0; v < 10; ++v) h->record(v);
  EXPECT_EQ(h->total(), 10u);
  EXPECT_EQ(h->percentile(0.1), 0u);
  EXPECT_EQ(h->percentile(1.0), 9u);
}

TEST(Histogram, PercentilesOrdered) {
  auto h = std::make_unique<LatencyHistogram>();
  Xoshiro256 rng(9);
  for (int i = 0; i < 100000; ++i) h->record(rng.next_bounded(1 << 20));
  const auto p50 = h->percentile(0.50);
  const auto p90 = h->percentile(0.90);
  const auto p99 = h->percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Uniform distribution: medians near the middle, 3% bucket tolerance.
  EXPECT_NEAR(static_cast<double>(p50), 0.5 * (1 << 20), 0.08 * (1 << 20));
}

TEST(Histogram, TailCaptured) {
  auto h = std::make_unique<LatencyHistogram>();
  for (int i = 0; i < 999; ++i) h->record(100);
  h->record(1 << 22);  // one 4ms outlier
  EXPECT_LE(h->percentile(0.99), 200u);
  EXPECT_GE(h->percentile(0.9999), 1u << 22);
}

TEST(Histogram, ResetClears) {
  auto h = std::make_unique<LatencyHistogram>();
  h->record(5);
  h->reset();
  EXPECT_EQ(h->total(), 0u);
  EXPECT_EQ(h->percentile(0.5), 0u);
}

TEST(Histogram, ConcurrentRecording) {
  auto h = std::make_unique<LatencyHistogram>();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t);
      for (int i = 0; i < 50000; ++i) h->record(rng.next_bounded(10000));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h->total(), 200000u);
}

}  // namespace
}  // namespace hcf::util
