// Tests for the hcf-bench-v1 JSON emitter: golden-file comparison of a
// fully-populated report (determinism is part of the schema contract —
// see harness/report.hpp), escaping, and file round-trip.
//
// Regenerate the golden after an intentional schema change with:
//   HCF_UPDATE_GOLDEN=1 ./build/tests/report_json_test
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/report.hpp"

namespace {

using namespace hcf;

std::string golden_path() {
  return std::string(HCF_GOLDEN_DIR) + "/report_v1.json";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// A report with two rows whose every field is deterministic.
harness::JsonReport make_fixed_report() {
  harness::JsonReport report("golden_bench",
                             harness::HostInfo::fixed_for_tests());

  harness::RunResult hcf_row;
  hcf_row.total_ops = 120000;
  hcf_row.duration_s = 0.5;
  hcf_row.engine.completions[0][0] = 70000;  // class 0: private
  hcf_row.engine.completions[0][2] = 20000;  // class 0: combining
  hcf_row.engine.completions[1][1] = 25000;  // class 1: visible
  hcf_row.engine.completions[1][3] = 5000;   // class 1: under lock
  hcf_row.engine.combiner_sessions = 4000;
  hcf_row.engine.ops_selected = 25000;
  hcf_row.engine.combine_rounds = 6000;
  hcf_row.engine.helped_ops = 21000;
  hcf_row.engine.delegated_groups = 1500;
  hcf_row.engine.delegated_ops = 6000;
  hcf_row.engine.delegate_applies = 1400;
  hcf_row.engine.delegate_fallbacks = 100;
  hcf_row.engine.delegate_conflict_aborts = 40;
  hcf_row.htm.starts = 200000;
  hcf_row.htm.commits = 115000;
  hcf_row.htm.read_only_commits = 60000;
  hcf_row.htm.aborts[static_cast<int>(htm::AbortCode::Conflict)] = 50000;
  hcf_row.htm.aborts[static_cast<int>(htm::AbortCode::Capacity)] = 1000;
  hcf_row.htm.aborts[static_cast<int>(htm::AbortCode::Explicit)] = 30000;
  hcf_row.htm.aborts[static_cast<int>(htm::AbortCode::LockBusy)] = 4000;
  hcf_row.lock_acquisitions = 5000;
  hcf_row.latency_p50_ns = 800;
  hcf_row.latency_p99_ns = 12000;
  hcf_row.latency_p999_ns = 90000;
  report.add_row("40f/30i/30r", "HCF", 4, 0, hcf_row);

  harness::RunResult lock_row;  // mostly-zero row: defaults must serialize
  lock_row.total_ops = 30000;
  lock_row.duration_s = 0.5;
  lock_row.engine.completions[0][3] = 30000;
  lock_row.lock_acquisitions = 30000;
  report.add_row("40f/30i/30r", "Lock", 1, 25, lock_row);

  return report;
}

TEST(ReportJson, MatchesGoldenFile) {
  const harness::JsonReport report = make_fixed_report();
  std::ostringstream os;
  report.write(os);
  const std::string produced = os.str();

  if (std::getenv("HCF_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << produced;
    GTEST_SKIP() << "golden updated: " << golden_path();
  }

  const std::string expected = read_file(golden_path());
  ASSERT_FALSE(expected.empty())
      << "missing golden file " << golden_path()
      << " (generate with HCF_UPDATE_GOLDEN=1)";
  EXPECT_EQ(produced, expected);
}

TEST(ReportJson, ComputedFieldsAreConsistent) {
  const harness::JsonReport report = make_fixed_report();
  std::ostringstream os;
  report.write(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"hcf-bench-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"ops_per_sec\": 240000.000000"), std::string::npos);
  EXPECT_NE(json.find("\"degree\": 6.250000"), std::string::npos);
  // phase_total sums across classes: private 70000, visible 25000.
  EXPECT_NE(json.find("\"private\": 70000"), std::string::npos);
  EXPECT_NE(json.find("\"visible\": 25000"), std::string::npos);
  // Parallel-combining block (delegated groups and who applied them).
  EXPECT_NE(json.find("\"delegation\": {\"groups\": 1500"), std::string::npos);
  EXPECT_NE(json.find("\"delegate_applies\": 1400"), std::string::npos);
  EXPECT_EQ(report.size(), 2u);
}

TEST(ReportJson, EscapesStrings) {
  harness::JsonReport report("quote\"back\\slash",
                             harness::HostInfo::fixed_for_tests());
  harness::RunResult r;
  r.total_ops = 1;
  r.duration_s = 1.0;
  report.add_row("tab\there", "new\nline", 1, 0, r);
  std::ostringstream os;
  report.write(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
  EXPECT_NE(json.find("new\\nline"), std::string::npos);
}

TEST(ReportJson, WriteFileRoundTrips) {
  const harness::JsonReport report = make_fixed_report();
  const std::string path = ::testing::TempDir() + "report_json_test.json";
  ASSERT_TRUE(report.write_file(path));
  std::ostringstream os;
  report.write(os);
  EXPECT_EQ(read_file(path), os.str());
  std::remove(path.c_str());

  EXPECT_FALSE(report.write_file("/nonexistent-dir/x/y.json"));
}

}  // namespace
