// Tests for the dynamic HTM protocol checker (sim_htm/protocol_check.hpp):
// the documented usage restrictions of the simulator must be *detected* at
// runtime, not just documented. Violations are provoked deliberately in
// Count mode (so the process survives and the counters can be asserted) and
// once each in Trap mode through death tests.
#include "sim_htm/protocol_check.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"
#include "sync/tx_lock.hpp"

namespace hcf {
namespace {

using htm::protocol::Mode;
using htm::protocol::ScopedMode;

#define SKIP_WITHOUT_CHECKER()                                       \
  if constexpr (!htm::protocol::kEnabled) {                          \
    GTEST_SKIP() << "built without HCF_CHECK_PROTOCOL";              \
  }

TEST(ProtocolChecker, StrongStoreInsideTxIsCounted) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  htm::TxCell<std::uint64_t> cell{0};
  const auto before = htm::stats().proto_strong_in_tx.total();
  const bool committed = htm::attempt([&] {
    cell.store(42);  // lint:allow(tx-strong-op) — provoked on purpose
  });
  EXPECT_TRUE(committed);
  EXPECT_EQ(htm::stats().proto_strong_in_tx.total(), before + 1);
  EXPECT_EQ(cell.load(), 42u);
}

TEST(ProtocolChecker, StrongCasAndFetchAddInsideTxAreCounted) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  htm::TxCell<std::uint64_t> cell{1};
  const auto before = htm::stats().proto_strong_in_tx.total();
  htm::attempt([&] {
    (void)cell.cas(1, 2);        // lint:allow(tx-strong-op)
    (void)cell.fetch_add(3);     // lint:allow(tx-strong-op)
  });
  EXPECT_EQ(htm::stats().proto_strong_in_tx.total(), before + 2);
}

TEST(ProtocolChecker, StrongStoreOutsideTxIsClean) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  htm::TxCell<std::uint64_t> cell{0};
  const auto before = htm::stats().proto_strong_in_tx.total();
  cell.store(7);
  EXPECT_EQ(htm::stats().proto_strong_in_tx.total(), before);
}

TEST(ProtocolChecker, MisalignedAccessIsCounted) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  alignas(8) char buf[16] = {};
  const auto before = htm::stats().proto_misaligned.total();
  // Checked directly (the hook htm::read/write call) rather than through a
  // real access: performing a misaligned atomic access is UB and would be
  // flagged by UBSan.
  htm::protocol::check_access_alignment(buf + 1, 4);
  EXPECT_EQ(htm::stats().proto_misaligned.total(), before + 1);
  htm::protocol::check_access_alignment(buf + 8, 4);  // aligned: clean
  EXPECT_EQ(htm::stats().proto_misaligned.total(), before + 1);
}

TEST(ProtocolChecker, UnsubscribedCommitWhileLockHeldIsCounted) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  sync::TxLock lock;
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    lock.lock();
    held.store(true);
    while (!release.load()) std::this_thread::yield();
    lock.unlock();
  });
  while (!held.load()) std::this_thread::yield();

  htm::TxField<std::uint64_t> field;
  field.init(0);
  const auto before = htm::stats().proto_unsubscribed_commits.total();
  const bool committed = htm::attempt([&] { field = 5; });
  EXPECT_TRUE(committed);
  EXPECT_EQ(htm::stats().proto_unsubscribed_commits.total(), before + 1);

  release.store(true);
  holder.join();
}

TEST(ProtocolChecker, SubscribedCommitIsClean) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  sync::TxLock lock;  // free: subscription succeeds and commit is clean
  htm::TxField<std::uint64_t> field;
  field.init(0);
  const auto before = htm::stats().proto_unsubscribed_commits.total();
  const bool committed = htm::attempt([&] {
    lock.subscribe();
    field = 6;
  });
  EXPECT_TRUE(committed);
  EXPECT_EQ(htm::stats().proto_unsubscribed_commits.total(), before);
}

TEST(ProtocolChecker, CommitWithoutAnyLockHeldIsClean) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  htm::TxField<std::uint64_t> field;
  field.init(0);
  const auto before = htm::stats().proto_unsubscribed_commits.total();
  htm::attempt([&] { field = 8; });
  EXPECT_EQ(htm::stats().proto_unsubscribed_commits.total(), before);
}

using ProtocolCheckerDeathTest = ::testing::Test;

TEST(ProtocolCheckerDeathTest, StrongStoreInsideTxTraps) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Trap);
  htm::TxCell<std::uint64_t> cell{0};
  EXPECT_DEATH(
      {
        htm::attempt([&] {
          cell.store(1);  // lint:allow(tx-strong-op)
        });
      },
      "strong-op-inside-tx");
}

TEST(ProtocolCheckerDeathTest, MisalignedAccessTraps) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Trap);
  alignas(8) char buf[16] = {};
  EXPECT_DEATH(htm::protocol::check_access_alignment(buf + 1, 8),
               "misaligned-access");
}

TEST(ProtocolChecker, ViolationTotalsAggregate) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  const auto before = htm::stats().total_protocol_violations();
  alignas(8) char buf[16] = {};
  htm::protocol::check_access_alignment(buf + 2, 4);
  EXPECT_EQ(htm::stats().total_protocol_violations(), before + 1);
}

}  // namespace
}  // namespace hcf
