// Tests for the dynamic HTM protocol checker (sim_htm/protocol_check.hpp):
// the documented usage restrictions of the simulator must be *detected* at
// runtime, not just documented. Violations are provoked deliberately in
// Count mode (so the process survives and the counters can be asserted) and
// once each in Trap mode through death tests.
#include "sim_htm/protocol_check.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/operation.hpp"
#include "core/publication_array.hpp"
#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"
#include "sync/tx_lock.hpp"
#include "util/backoff.hpp"
#include "util/thread_id.hpp"

namespace hcf {
namespace {

using htm::protocol::Mode;
using htm::protocol::ScopedMode;

#define SKIP_WITHOUT_CHECKER()                                       \
  if constexpr (!htm::protocol::kEnabled) {                          \
    GTEST_SKIP() << "built without HCF_CHECK_PROTOCOL";              \
  }

TEST(ProtocolChecker, StrongStoreInsideTxIsCounted) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  htm::TxCell<std::uint64_t> cell{0};
  const auto before = htm::stats().proto_strong_in_tx.total();
  const bool committed = htm::attempt([&] {
    cell.store(42);  // lint:allow(tx-strong-op) — provoked on purpose
  });
  EXPECT_TRUE(committed);
  EXPECT_EQ(htm::stats().proto_strong_in_tx.total(), before + 1);
  EXPECT_EQ(cell.load(), 42u);
}

TEST(ProtocolChecker, StrongCasAndFetchAddInsideTxAreCounted) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  htm::TxCell<std::uint64_t> cell{1};
  const auto before = htm::stats().proto_strong_in_tx.total();
  htm::attempt([&] {
    (void)cell.cas(1, 2);        // lint:allow(tx-strong-op)
    (void)cell.fetch_add(3);     // lint:allow(tx-strong-op)
  });
  EXPECT_EQ(htm::stats().proto_strong_in_tx.total(), before + 2);
}

TEST(ProtocolChecker, StrongStoreOutsideTxIsClean) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  htm::TxCell<std::uint64_t> cell{0};
  const auto before = htm::stats().proto_strong_in_tx.total();
  cell.store(7);
  EXPECT_EQ(htm::stats().proto_strong_in_tx.total(), before);
}

TEST(ProtocolChecker, MisalignedAccessIsCounted) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  alignas(8) char buf[16] = {};
  const auto before = htm::stats().proto_misaligned.total();
  // Checked directly (the hook htm::read/write call) rather than through a
  // real access: performing a misaligned atomic access is UB and would be
  // flagged by UBSan.
  htm::protocol::check_access_alignment(buf + 1, 4);
  EXPECT_EQ(htm::stats().proto_misaligned.total(), before + 1);
  htm::protocol::check_access_alignment(buf + 8, 4);  // aligned: clean
  EXPECT_EQ(htm::stats().proto_misaligned.total(), before + 1);
}

TEST(ProtocolChecker, UnsubscribedCommitWhileLockHeldIsCounted) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  sync::TxLock lock;
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    lock.lock();
    held.store(true);
    while (!release.load()) std::this_thread::yield();
    lock.unlock();
  });
  while (!held.load()) std::this_thread::yield();

  htm::TxField<std::uint64_t> field;
  field.init(0);
  const auto before = htm::stats().proto_unsubscribed_commits.total();
  const bool committed = htm::attempt([&] { field = 5; });
  EXPECT_TRUE(committed);
  EXPECT_EQ(htm::stats().proto_unsubscribed_commits.total(), before + 1);

  release.store(true);
  holder.join();
}

TEST(ProtocolChecker, SubscribedCommitIsClean) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  sync::TxLock lock;  // free: subscription succeeds and commit is clean
  htm::TxField<std::uint64_t> field;
  field.init(0);
  const auto before = htm::stats().proto_unsubscribed_commits.total();
  const bool committed = htm::attempt([&] {
    lock.subscribe();
    field = 6;
  });
  EXPECT_TRUE(committed);
  EXPECT_EQ(htm::stats().proto_unsubscribed_commits.total(), before);
}

TEST(ProtocolChecker, CommitWithoutAnyLockHeldIsClean) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  htm::TxField<std::uint64_t> field;
  field.init(0);
  const auto before = htm::stats().proto_unsubscribed_commits.total();
  htm::attempt([&] { field = 8; });
  EXPECT_EQ(htm::stats().proto_unsubscribed_commits.total(), before);
}

using ProtocolCheckerDeathTest = ::testing::Test;

TEST(ProtocolCheckerDeathTest, StrongStoreInsideTxTraps) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Trap);
  htm::TxCell<std::uint64_t> cell{0};
  EXPECT_DEATH(
      {
        htm::attempt([&] {
          cell.store(1);  // lint:allow(tx-strong-op)
        });
      },
      "strong-op-inside-tx");
}

TEST(ProtocolCheckerDeathTest, MisalignedAccessTraps) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Trap);
  alignas(8) char buf[16] = {};
  EXPECT_DEATH(htm::protocol::check_access_alignment(buf + 1, 8),
               "misaligned-access");
}

// ---- stale-occupancy stress (DESIGN.md §9.1) ------------------------------
//
// Owners repeatedly announce and then remove their slot *transactionally*,
// which leaves the slot's occupancy bit stale by design, while a dedicated
// combiner continuously selects announced operations under the selection
// lock. Invariant under test: every round of every owner is applied exactly
// once — by the owner's committed transaction XOR by the combiner — no
// matter how many stale bits the scans chew through, and the combiner never
// selects an already-applied operation. Under TSan this additionally proves
// the bit/slot/status protocol race-free; under HCF_CHECK_PROTOCOL it runs
// with the checker live.
TEST(OccupancyStress, StaleBitsNeverDoubleApply) {
  struct NullDs {};
  class StressOp : public core::Operation<NullDs> {
   public:
    void run_seq(NullDs&) override {}
    std::atomic<std::uint32_t> applied{0};
  };

  core::PublicationArray<NullDs> pa;
  constexpr int kOwners = 4;
  constexpr int kRounds = 400;

  std::vector<std::unique_ptr<StressOp>> ops;
  for (int t = 0; t < kOwners; ++t) ops.push_back(std::make_unique<StressOp>());
  std::atomic<int> owners_left{kOwners};

  std::vector<std::thread> owners;
  for (int t = 0; t < kOwners; ++t) {
    owners.emplace_back([&, t] {
      StressOp& op = *ops[static_cast<std::size_t>(t)];
      util::ExpBackoff backoff(0x57a1e + t);
      for (int r = 0; r < kRounds; ++r) {
        op.prepare();
        op.mark_announced();
        pa.add(&op);
        for (;;) {
          if (op.status() != core::OpStatus::Announced) {
            op.wait_done();  // selected: the combiner applies us
            break;
          }
          pa.selection_lock().wait_until_free();
          // Same shape as the engines' TryVisible: the status read joins
          // the read set (dooming us if the combiner selects concurrently)
          // and the slot removal commits with the application.
          const bool committed = htm::attempt([&] {
            if (op.status_tx() != core::OpStatus::Announced) htm::abort_tx();
            pa.selection_lock().subscribe();
            pa.remove_tx(&op);  // occupancy bit left stale on purpose
          });
          if (committed) {
            op.applied.fetch_add(1, std::memory_order_relaxed);
            op.mark_done(core::Phase::Visible);
            break;
          }
          backoff.pause();
        }
      }
      owners_left.fetch_sub(1, std::memory_order_release);
    });
  }

  // Combiner: select under the selection lock (status moves Announced ->
  // BeingHelped there, dooming the owner's speculation), apply after.
  std::vector<core::Operation<NullDs>*> batch;
  batch.reserve(util::kMaxThreads);
  while (owners_left.load(std::memory_order_acquire) != 0) {
    batch.clear();
    pa.selection_lock().lock();
    // scan-locked: selection lock acquired on the line above.
    pa.collect_announced(batch, [](core::Operation<NullDs>* o) {
      if (o->status() != core::OpStatus::Announced) return false;
      o->mark_being_helped();
      return true;
    });
    pa.selection_lock().unlock();
    for (core::Operation<NullDs>* o : batch) {
      static_cast<StressOp*>(o)->applied.fetch_add(1,
                                                   std::memory_order_relaxed);
      o->mark_done(core::Phase::Combining);
    }
    std::this_thread::yield();
  }
  for (auto& th : owners) th.join();

  for (int t = 0; t < kOwners; ++t) {
    EXPECT_EQ(ops[static_cast<std::size_t>(t)]->applied.load(),
              static_cast<std::uint32_t>(kRounds))
        << "owner " << t << " applied a round zero or multiple times";
  }
}

TEST(ProtocolChecker, ViolationTotalsAggregate) {
  SKIP_WITHOUT_CHECKER();
  ScopedMode guard(Mode::Count);
  const auto before = htm::stats().total_protocol_violations();
  alignas(8) char buf[16] = {};
  htm::protocol::check_access_alignment(buf + 2, 4);
  EXPECT_EQ(htm::stats().total_protocol_violations(), before + 1);
}

}  // namespace
}  // namespace hcf
