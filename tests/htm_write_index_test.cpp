// Write-set index (Bloom signature + open-addressed index) and epoch-mode
// coverage: collision-heavy address patterns, capacity boundaries, index
// state isolation across transactions, and Sampled-mode opacity under
// concurrency (run under TSan in the sanitizer CI jobs).
#include "sim_htm/htm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim_htm/config.hpp"
#include "sim_htm/stats.hpp"

namespace hcf::htm {
namespace {

TEST(HtmWriteIndex, LargeWriteSetReadAfterWriteAndUpsert) {
  ScopedCapacity caps(8192, 4096);
  std::vector<std::uint64_t> arr(1000, 0);
  const bool ok = attempt([&] {
    for (std::size_t i = 0; i < arr.size(); ++i) {
      write(&arr[i], static_cast<std::uint64_t>(i + 1));
    }
    // Read-after-write resolves through the index, not memory.
    for (std::size_t i = 0; i < arr.size(); ++i) {
      EXPECT_EQ(read(&arr[i]), i + 1);
      EXPECT_EQ(arr[i], 0u);  // lazy versioning: memory untouched
    }
    // Upserts must hit the existing entries, not append duplicates.
    for (std::size_t i = 0; i < arr.size(); ++i) {
      write(&arr[i], static_cast<std::uint64_t>(i + 2));
    }
    for (std::size_t i = 0; i < arr.size(); ++i) {
      EXPECT_EQ(read(&arr[i]), i + 2);
    }
  });
  EXPECT_TRUE(ok);
  for (std::size_t i = 0; i < arr.size(); ++i) {
    EXPECT_EQ(arr[i], i + 2);
  }
}

TEST(HtmWriteIndex, CollisionHeavyProbing) {
  // Adversarial probe pattern: pick only addresses whose initial index
  // slot collides (same top hash bits), forcing maximal linear-probe
  // chains and wraparound in the open-addressed table.
  static std::uint64_t pool[4096];
  std::vector<std::uint64_t*> picks;
  for (auto& w : pool) {
    const auto h =
        detail::addr_hash(reinterpret_cast<std::uintptr_t>(&w));
    if ((h >> 58) == 7) picks.push_back(&w);
  }
  ASSERT_GT(picks.size(), 8u) << "hash spread defeated the fixture";
  const bool ok = attempt([&] {
    for (std::size_t k = 0; k < picks.size(); ++k) {
      write(picks[k], static_cast<std::uint64_t>(k + 1));
    }
    for (std::size_t k = 0; k < picks.size(); ++k) {
      EXPECT_EQ(read(picks[k]), k + 1);
    }
  });
  EXPECT_TRUE(ok);
  for (std::size_t k = 0; k < picks.size(); ++k) {
    EXPECT_EQ(*picks[k], k + 1);
  }
}

TEST(HtmWriteIndex, TwoAddressesSharingAnOrecCommitTogether) {
  // Distinct addresses can hash to one orec; the write set must keep both
  // entries while the commit path locks the shared orec exactly once.
  // Fibonacci hashing maps consecutive addresses to a low-discrepancy
  // sequence, so the pool must exceed the orec table for the pigeonhole
  // principle to guarantee a collision.
  static std::vector<std::uint64_t> pool(kOrecCount + 1);
  std::unordered_map<const void*, std::size_t> seen;
  std::uint64_t* a = nullptr;
  std::uint64_t* b = nullptr;
  for (std::size_t i = 0; i < pool.size() && a == nullptr; ++i) {
    const auto [it, fresh] = seen.emplace(&detail::orec_for(&pool[i]), i);
    if (!fresh) {
      a = &pool[it->second];
      b = &pool[i];
    }
  }
  ASSERT_NE(a, nullptr) << "no orec collision found";
  const bool ok = attempt([&] {
    write(a, std::uint64_t{11});
    write(b, std::uint64_t{22});
    EXPECT_EQ(read(a), 11u);
    EXPECT_EQ(read(b), 22u);
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(*a, 11u);
  EXPECT_EQ(*b, 22u);
}

TEST(HtmWriteIndex, CapacityAbortAtExactlyWriteCapacity) {
  ScopedCapacity caps(8192, 32);
  static std::uint64_t arr[40] = {};
  // Exactly write_capacity distinct addresses commit.
  EXPECT_TRUE(attempt([&] {
    for (std::size_t i = 0; i < 32; ++i) {
      write(&arr[i], static_cast<std::uint64_t>(i));
    }
  }));
  // One more distinct address is a capacity abort.
  const bool ok = attempt([&] {
    for (std::size_t i = 0; i < 33; ++i) {
      write(&arr[i], static_cast<std::uint64_t>(i));
    }
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(last_abort_code(), AbortCode::Capacity);
  // Upserts of already-buffered addresses never count against capacity.
  EXPECT_TRUE(attempt([&] {
    for (std::size_t i = 0; i < 32; ++i) {
      write(&arr[i], static_cast<std::uint64_t>(i));
    }
    for (std::size_t i = 0; i < 32; ++i) {
      write(&arr[i], static_cast<std::uint64_t>(i + 100));
    }
  }));
  EXPECT_EQ(arr[0], 100u);
}

TEST(HtmWriteIndex, IndexStateDoesNotLeakAcrossTransactions) {
  static std::uint64_t arr[8] = {};
  EXPECT_TRUE(attempt([&] {
    for (auto& w : arr) write(&w, std::uint64_t{1});
  }));
  // A new transaction's reads must miss the (stale) index entries of the
  // previous one and see committed memory.
  EXPECT_TRUE(attempt([&] {
    for (auto& w : arr) EXPECT_EQ(read(&w), 1u);
  }));
  // Same after an abort: the discarded buffer must be unreachable.
  (void)attempt([&] {
    for (auto& w : arr) write(&w, std::uint64_t{2});
    abort_tx();
  });
  EXPECT_TRUE(attempt([&] {
    for (auto& w : arr) EXPECT_EQ(read(&w), 1u);
  }));
}

TEST(HtmWriteIndexDeathTest, MixedSizeSameAddressAsserts) {
  static std::uint64_t word = 0;
  // Debug builds assert on a mixed-size hit in the write buffer; NDEBUG
  // builds execute the (documented-unsupported) truncating read.
  EXPECT_DEBUG_DEATH(
      attempt([&] {
        write(&word, std::uint64_t{0x1122334455667788ULL});
        auto* half = reinterpret_cast<std::uint32_t*>(&word);
        volatile std::uint32_t sink = read(half);
        (void)sink;
      }),
      "mixed-size");
}

// ---- Epoch modes ----------------------------------------------------------

// Runs `mid` on a helper thread while a transaction is open on this one.
template <typename Mid, typename Body>
bool run_with_interference(Mid mid, Body body) {
  return attempt([&] {
    body(/*phase=*/0);
    std::thread t(mid);
    t.join();  // lint:allow(tx-blocking-call) — helper never blocks on us
    body(/*phase=*/1);
  });
}

TEST(HtmEpochMode, SampledSkipsRevalidationOnUnrelatedCommit) {
  ScopedEpochMode mode(EpochMode::Sampled);
  static std::uint64_t x = 1;
  static std::uint64_t y = 2;
  const auto before = StatsSnapshot::capture();
  const bool ok = run_with_interference(
      [] { EXPECT_TRUE(attempt([] { write(&y, read(&y) + 1); })); },
      [](int) { (void)read(&x); });
  EXPECT_TRUE(ok);
  const auto d = StatsSnapshot::capture().delta_since(before);
  EXPECT_EQ(d.snapshot_extensions, 0u);
}

TEST(HtmEpochMode, TickRevalidatesOnUnrelatedCommit) {
  ScopedEpochMode mode(EpochMode::Tick);
  static std::uint64_t x = 1;
  static std::uint64_t y = 2;
  const auto before = StatsSnapshot::capture();
  const bool ok = run_with_interference(
      [] { EXPECT_TRUE(attempt([] { write(&y, read(&y) + 1); })); },
      [](int) { (void)read(&x); });
  EXPECT_TRUE(ok);
  const auto d = StatsSnapshot::capture().delta_since(before);
  EXPECT_GE(d.snapshot_extensions, 1u);
}

TEST(HtmEpochMode, SampledStrongStoreOnReadWordAborts) {
  ScopedEpochMode mode(EpochMode::Sampled);
  static std::uint64_t x = 5;
  const bool ok = run_with_interference(
      [] { strong_store(&x, std::uint64_t{9}); },
      [](int) { (void)read(&x); });
  EXPECT_FALSE(ok);
  EXPECT_EQ(last_abort_code(), AbortCode::Conflict);
  EXPECT_EQ(x, 9u);
}

TEST(HtmEpochMode, SampledStrongStoreElsewhereForcesExtension) {
  ScopedEpochMode mode(EpochMode::Sampled);
  static std::uint64_t x = 5;
  static std::uint64_t z = 0;
  const auto before = StatsSnapshot::capture();
  const bool ok = run_with_interference(
      [] { strong_store(&z, std::uint64_t{1}); },
      [](int) { (void)read(&x); });
  // The strong clock moved, so the second read extends; x is untouched,
  // so the extension validates and the transaction commits.
  EXPECT_TRUE(ok);
  const auto d = StatsSnapshot::capture().delta_since(before);
  EXPECT_GE(d.snapshot_extensions, 1u);
}

// Bank-invariant opacity stress in Sampled mode: transfers preserve the
// total; read-only sum transactions and a strong-store "pulse" run
// alongside. Any zombie read (torn snapshot) shows up as a wrong sum in a
// committed transaction. TSan builds additionally check the HB edges.
TEST(HtmEpochMode, SampledOpacityStress) {
  ScopedEpochMode mode(EpochMode::Sampled);
  constexpr std::size_t kAccounts = 64;
  constexpr std::uint64_t kInitial = 100;
  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  constexpr int kWriterOps = 6000;
  constexpr int kReaderOps = 3000;
  static std::uint64_t accounts[kAccounts];
  static std::uint64_t pulse_word;
  pulse_word = 0;
  for (auto& a : accounts) a = kInitial;
  const std::uint64_t total = kAccounts * kInitial;

  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([w] {
      std::uint64_t rng = 0x9e3779b97f4a7c15ULL * (w + 1);
      for (int op = 0; op < kWriterOps; ++op) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::size_t i = (rng >> 33) % kAccounts;
        const std::size_t j = (rng >> 13) % kAccounts;
        const std::uint64_t amount = 1 + (rng % 7);
        while (!attempt([&] {
          const std::uint64_t a = read(&accounts[i]);
          const std::uint64_t b = read(&accounts[j]);
          if (i != j && a >= amount) {
            write(&accounts[i], a - amount);
            write(&accounts[j], b + amount);
          }
        })) {
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&bad, total] {
      for (int op = 0; op < kReaderOps; ++op) {
        std::uint64_t sum = 0;
        if (attempt([&] {
              sum = 0;
              (void)read(&pulse_word);
              for (const auto& a : accounts) sum += read(&a);
            })) {
          if (sum != total) bad.store(true);
        }
      }
    });
  }
  // Strong-store pulses: rare-event path the Sampled mode polls for.
  threads.emplace_back([] {
    for (int p = 0; p < 200; ++p) {
      strong_store(&pulse_word, static_cast<std::uint64_t>(p));
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();

  EXPECT_FALSE(bad.load()) << "committed read-only txn saw a torn sum";
  std::uint64_t final_sum = 0;
  for (const auto& a : accounts) final_sum += a;
  EXPECT_EQ(final_sum, total);
}

}  // namespace
}  // namespace hcf::htm
