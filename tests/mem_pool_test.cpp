// Tests for the pooled-allocation layer (mem/pool.hpp, mem/alloc.hpp) and
// its interaction with epoch reclamation (mem/ebr.hpp):
//
//   * facade round-trips: header stamping, owner/class bits, dealloc reuse;
//   * the refill boundary at exactly one batch — the free list drains to
//     empty, refills with precisely refill_batch() blocks, and a
//     free-then-realloc cycle recycles the same blocks (the ABA-prone
//     LIFO path) without touching the arena again;
//   * cross-thread retirement: a foreign trivially-destructible retire
//     bypasses the local limbo, travels the owner's MPSC inbox, and is
//     freed exactly once by the owner's drain;
//   * the orphan handoff race: producers exit while consumers still hold
//     and retire their nodes, concurrently with epoch collects and
//     non-empty remote queues. Counting destructors prove exactly-once
//     deletion; run under TSan this is the layer's main race stress.
//
// Tunable knobs (refill batch, flush batch, collect threshold) are saved
// and restored per test so ordering cannot leak configuration.
#include "mem/alloc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "mem/ebr.hpp"
#include "mem/pool.hpp"
#include "util/thread_id.hpp"

namespace hcf::mem {
namespace {

std::atomic<std::uint64_t> g_dtors{0};

// Class-0 (48-byte bucket) pooled node with a counting destructor: retires
// always take the limbo path (non-trivially-destructible), and the counter
// proves exactly-once destruction.
struct Counted {
  explicit Counted(std::uint64_t v = 0) noexcept : value(v) {}
  ~Counted() { g_dtors.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t value;
};

// Trivially destructible sibling: eligible for the pre-grace remote-retire
// path when freed by a non-owner.
struct Triv {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};
static_assert(std::is_trivially_destructible_v<Triv>);

class MemPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_refill_ = refill_batch();
    saved_flush_ = remote_flush_batch();
    saved_collect_ = collect_threshold();
    g_dtors.store(0, std::memory_order_relaxed);
    EbrDomain::instance().drain();
  }
  void TearDown() override {
    EbrDomain::instance().drain();
    set_refill_batch(saved_refill_);
    set_remote_flush_batch(saved_flush_);
    set_collect_threshold(saved_collect_);
  }

 private:
  std::size_t saved_refill_ = 0;
  std::size_t saved_flush_ = 0;
  std::size_t saved_collect_ = 0;
};

TEST_F(MemPoolTest, HeaderStampsOwnerAndClass) {
  Triv* p = alloc<Triv>();
  ASSERT_NE(p, nullptr);
  BlockHeader* h = header_of(p);
  EXPECT_EQ(h->owner(), util::this_thread_id());
  EXPECT_EQ(h->size_class(), detail::class_for_size(sizeof(Triv)));
  EXPECT_LT(h->size_class(), kNumClasses);
  EXPECT_EQ(h->object(), static_cast<void*>(p));
  dealloc(p);
}

TEST_F(MemPoolTest, OversizeFallsBackBehindSameHeader) {
  struct Big {
    char bytes[kMaxPooledSize + 1];
  };
  Big* p = alloc<Big>();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(header_of(p)->size_class(), kOversizeClass);
  dealloc(p);
}

TEST_F(MemPoolTest, TunableSettersRoundTrip) {
  set_refill_batch(7);
  EXPECT_EQ(refill_batch(), 7u);
  set_remote_flush_batch(9);
  EXPECT_EQ(remote_flush_batch(), 9u);
  set_collect_threshold(11);
  EXPECT_EQ(collect_threshold(), 11u);
}

// The ABA/refill boundary at exactly one batch. After the free list runs
// dry, one refill must hand out exactly refill_batch() blocks: batch-1
// further allocations are refill-free, the batch'th + 1 triggers exactly
// one more. Freeing the second batch and reallocating must recycle the
// same block addresses (LIFO free list) with no arena traffic.
TEST_F(MemPoolTest, RefillBoundaryAtExactlyOneBatch) {
  constexpr std::size_t kBatch = 8;
  set_refill_batch(kBatch);

  // Drain whatever the free list holds from earlier tests: allocate until
  // the pool is forced into its next refill. That refill hands out kBatch
  // blocks; the triggering allocation consumes one.
  std::vector<Triv*> warm;
  const std::uint64_t base = ReclaimSnapshot::capture().pool_refills;
  while (ReclaimSnapshot::capture().pool_refills == base) {
    warm.push_back(alloc<Triv>());
  }
  const std::uint64_t after_first = ReclaimSnapshot::capture().pool_refills;

  // kBatch - 1 more allocations ride the same refill...
  std::vector<Triv*> batch;
  batch.push_back(warm.back());
  warm.pop_back();
  for (std::size_t i = 0; i < kBatch - 1; ++i) batch.push_back(alloc<Triv>());
  EXPECT_EQ(ReclaimSnapshot::capture().pool_refills, after_first);

  // ...and the next one crosses the boundary: exactly one more refill.
  Triv* over = alloc<Triv>();
  EXPECT_EQ(ReclaimSnapshot::capture().pool_refills, after_first + 1);

  // Free the full batch and reallocate it: every pointer must be recycled
  // from the free list (set equality) without another refill.
  for (Triv* p : batch) dealloc(p);
  std::vector<Triv*> recycled;
  for (std::size_t i = 0; i < kBatch; ++i) recycled.push_back(alloc<Triv>());
  EXPECT_EQ(ReclaimSnapshot::capture().pool_refills, after_first + 1);
  auto sorted = [](std::vector<Triv*> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(batch), sorted(recycled));

  for (Triv* p : recycled) dealloc(p);
  dealloc(over);
  for (Triv* p : warm) dealloc(p);
}

// A foreign trivially-destructible retire takes the pre-grace remote path:
// no local limbo entry, one batched CAS into the owner's inbox, freed by
// the owner's drain. The owner's slot sees the traffic; stats see the
// retire, the flush, and the drain.
TEST_F(MemPoolTest, CrossThreadRetireTravelsOwnerInbox) {
  constexpr std::size_t kNodes = 100;
  set_remote_flush_batch(1u << 12);  // no capacity flush: we flush by hand

  std::vector<Triv*> nodes;
  std::size_t owner_slot = 0;
  std::atomic<int> stage{0};
  std::thread owner([&] {
    owner_slot = util::this_thread_id();
    for (std::size_t i = 0; i < kNodes; ++i) nodes.push_back(alloc<Triv>());
    stage.store(1);
    while (stage.load() != 2) std::this_thread::yield();
    // Owner-side drain: absorbs the inbox (deferred chain -> epoch batch),
    // advances the epoch, and frees. Runs here so the blocks land back on
    // *this* pool's free lists, proving the owner got its memory back.
    EbrDomain::instance().drain();
    stage.store(3);
  });
  while (stage.load() != 1) std::this_thread::yield();

  const ReclaimSnapshot base = ReclaimSnapshot::capture();
  ASSERT_NE(util::this_thread_id(), owner_slot);
  for (Triv* p : nodes) retire(p);
  const ReclaimSnapshot after_retire = ReclaimSnapshot::capture();
  EXPECT_EQ(after_retire.remote_retires - base.remote_retires, kNodes);
  EXPECT_EQ(after_retire.local_retires - base.local_retires, 0u);

  flush_remote_frees();
  EXPECT_EQ(remote_queue_depth(owner_slot), kNodes);
  EXPECT_GE(ReclaimSnapshot::capture().remote_flushes - base.remote_flushes,
            1u);

  stage.store(2);
  owner.join();
  EXPECT_EQ(remote_queue_depth(owner_slot), 0u);
  const ReclaimSnapshot end = ReclaimSnapshot::capture();
  EXPECT_GE(end.drained_blocks - base.drained_blocks, kNodes);
  EXPECT_GE(end.remote_drains - base.remote_drains, 1u);
}

// The orphan-handoff race (TSan stress): producers allocate nodes, publish
// them, retire a few of their own, and exit *while consumers are still
// retiring the rest* — so thread-exit limbo handoff races concurrent
// collects, and remote frees keep arriving on inboxes whose owner threads
// are gone. Counting destructors prove every node is destroyed exactly
// once; the final convergence drain must leave every inbox empty.
TEST_F(MemPoolTest, OrphanHandoffRacesCollectAndRemoteQueue) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 400;
  set_collect_threshold(32);  // frequent collects during the race
  set_remote_flush_batch(8);  // frequent inbox traffic during the race

  std::mutex mu;
  std::vector<Counted*> shared;
  std::vector<Triv*> shared_triv;
  std::atomic<int> producers_live{kProducers};

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        Counted* c = alloc<Counted>(static_cast<std::uint64_t>(i));
        Triv* v = alloc<Triv>();
        if (i % 4 == 0) {
          // Retire a slice locally so this thread's limbo is non-empty at
          // exit — the orphan handoff under test.
          retire(c);
          retire(v);
        } else {
          std::lock_guard<std::mutex> lk(mu);
          shared.push_back(c);
          shared_triv.push_back(v);
        }
      }
      // Exit immediately: limbo (and possibly inbox traffic) outlives us.
      producers_live.fetch_sub(1);
    });
  }

  std::vector<std::thread> consumers;
  for (int t = 0; t < kConsumers; ++t) {
    consumers.emplace_back([&] {
      for (;;) {
        Counted* c = nullptr;
        Triv* v = nullptr;
        {
          std::lock_guard<std::mutex> lk(mu);
          if (!shared.empty()) {
            c = shared.back();
            shared.pop_back();
          }
          if (!shared_triv.empty()) {
            v = shared_triv.back();
            shared_triv.pop_back();
          }
        }
        if (c != nullptr) retire(c);  // foreign, non-trivial: limbo path
        if (v != nullptr) retire(v);  // foreign, trivial: remote path
        if (c == nullptr && v == nullptr) {
          if (producers_live.load() == 0) break;
          std::this_thread::yield();
        }
      }
      flush_remote_frees();
    });
  }

  for (auto& th : producers) th.join();
  for (auto& th : consumers) th.join();

  EbrDomain::instance().drain();
  EXPECT_EQ(g_dtors.load(), static_cast<std::uint64_t>(kProducers) *
                                static_cast<std::uint64_t>(kPerProducer));
  for (std::size_t slot = 0; slot < util::kMaxThreads; ++slot) {
    EXPECT_EQ(remote_queue_depth(slot), 0u) << "slot " << slot;
  }
}

}  // namespace
}  // namespace hcf::mem
