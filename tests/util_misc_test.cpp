#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "util/backoff.hpp"
#include "util/barrier.hpp"
#include "util/cacheline.hpp"
#include "util/counters.hpp"
#include "util/table.hpp"
#include "util/thread_id.hpp"

namespace hcf::util {
namespace {

TEST(CacheAligned, SizeAndAlignment) {
  CacheAligned<char> c;
  EXPECT_EQ(sizeof(c), kCacheLineSize);
  CacheAligned<std::uint64_t> arr[4];
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&arr[1]) -
                reinterpret_cast<std::uintptr_t>(&arr[0]),
            kCacheLineSize);
}

TEST(Backoff, WindowGrowsAndCaps) {
  ExpBackoff b(1, 4, 64);
  EXPECT_EQ(b.window(), 4u);
  for (int i = 0; i < 10; ++i) b.pause();
  EXPECT_EQ(b.window(), 64u);
  b.reset();
  EXPECT_EQ(b.window(), 4u);
}

TEST(ThreadId, StableWithinThread) {
  const std::size_t id1 = this_thread_id();
  const std::size_t id2 = this_thread_id();
  EXPECT_EQ(id1, id2);
  EXPECT_LT(id1, kMaxThreads);
}

TEST(ThreadId, DistinctAcrossLiveThreads) {
  const std::size_t main_id = this_thread_id();
  std::atomic<std::size_t> other{kMaxThreads};
  std::thread t([&] { other = this_thread_id(); });
  t.join();
  EXPECT_NE(other.load(), main_id);
}

TEST(ThreadId, RecycledAfterThreadExit) {
  // Spawn many more sequential threads than kMaxThreads; ids must recycle.
  for (int i = 0; i < static_cast<int>(kMaxThreads) + 20; ++i) {
    std::thread t([] {
      EXPECT_LT(this_thread_id(), kMaxThreads);
    });
    t.join();
  }
}

TEST(Counter, PerThreadAggregation) {
  Counter c;
  c.add(5);
  std::thread t([&] { c.add(7); });
  t.join();
  EXPECT_EQ(c.total(), 12u);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(Barrier, ReleasesAllParties) {
  constexpr int kThreads = 4;
  SpinBarrier barrier(kThreads);
  std::atomic<int> before{0}, after{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      barrier.arrive_and_wait();
      EXPECT_EQ(before.load(), kThreads);  // nobody passes early
      after.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(after.load(), kThreads);
}

TEST(Barrier, Reusable) {
  SpinBarrier barrier(2);
  std::atomic<int> round{0};
  std::thread t([&] {
    for (int i = 0; i < 100; ++i) {
      barrier.arrive_and_wait();
      round.fetch_add(1);
      barrier.arrive_and_wait();
    }
  });
  for (int i = 0; i < 100; ++i) {
    barrier.arrive_and_wait();
    barrier.arrive_and_wait();
    EXPECT_EQ(round.load(), i + 1);
  }
  t.join();
}

TEST(TextTable, FormatsAlignedColumns) {
  TextTable table({"engine", "threads", "mops"});
  table.add_row({"HCF", "16", "12.34"});
  table.add_row({"TLE", "1", "3.50"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("engine"), std::string::npos);
  EXPECT_NE(out.find("12.34"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // All rows have equal width.
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
}

}  // namespace
}  // namespace hcf::util
