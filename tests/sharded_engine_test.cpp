// ShardedEngine unit + stress tests: routing, cross-shard size(), stats
// aggregation, policy broadcast atomicity (the per-shard
// detail::AtomicPolicy path), and the ShardedStress interleaving of
// all-shard-lock sweeps with per-shard combining.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "adapters/ht_ops.hpp"
#include "core/engine.hpp"
#include "ds/hash_table.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace {

using hcf::adapters::HtFindOp;
using hcf::adapters::HtInsertOp;
using hcf::adapters::HtRemoveOp;
using hcf::adapters::kHtInsertClass;

using Table = hcf::ds::HashTable<std::uint64_t, std::uint64_t>;
using HcfT = hcf::core::HcfEngine<Table>;
using Sharded = hcf::core::ShardedEngine<HcfT>;
using ShardedAdaptive =
    hcf::core::ShardedEngine<hcf::core::AdaptiveHcfEngine<Table>>;

static_assert(hcf::core::PolicyConfigurable<Sharded>,
              "sharded engine must keep the policy surface");
static_assert(hcf::core::PolicyConfigurable<ShardedAdaptive>,
              "sharded adaptive engine must keep the policy surface");

// Owns the per-shard sub-tables plus the meta-engine over them.
template <typename Engine = Sharded>
struct ShardedHt {
  std::vector<std::unique_ptr<Table>> tables;
  std::vector<Table*> ptrs;
  std::unique_ptr<Engine> engine;

  explicit ShardedHt(std::size_t shards, std::size_t buckets = 256) {
    for (std::size_t i = 0; i < shards; ++i) {
      tables.push_back(std::make_unique<Table>(buckets));
      ptrs.push_back(tables.back().get());
    }
    engine = std::make_unique<Engine>(std::span<Table* const>(ptrs),
                                      hcf::adapters::ht_paper_config(),
                                      hcf::adapters::kHtNumArrays);
  }
};

std::uint64_t shard_key_of(std::uint64_t key) { return hcf::util::mix64(key); }

TEST(ShardedRouting, RouteIsDeterministicAndInRange) {
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    ShardedHt<> ht(shards);
    for (std::uint64_t k = 0; k < 4096; ++k) {
      const std::size_t s = ht.engine->shard_of(shard_key_of(k));
      ASSERT_LT(s, shards);
      // The instance router and the static helper must agree so prefill
      // code can route without an engine.
      ASSERT_EQ(s, Sharded::route(shard_key_of(k), shards));
      ASSERT_EQ(s, ht.engine->shard_of(shard_key_of(k)));
    }
  }
}

TEST(ShardedRouting, AllShardsReceiveTraffic) {
  const std::size_t shards = 8;
  ShardedHt<> ht(shards);
  std::vector<std::size_t> hits(shards, 0);
  for (std::uint64_t k = 0; k < 4096; ++k) {
    ++hits[ht.engine->shard_of(shard_key_of(k))];
  }
  for (std::size_t s = 0; s < shards; ++s) {
    // Fibonacci mixing spreads sequential keys near-uniformly; anything
    // grossly skewed means the router is reading the wrong bits.
    EXPECT_GT(hits[s], 4096 / shards / 2) << "shard " << s;
    EXPECT_LT(hits[s], 4096 / shards * 2) << "shard " << s;
  }
}

TEST(ShardedRouting, OperationLandsOnExactlyTheRoutedShard) {
  const std::size_t shards = 4;
  ShardedHt<> ht(shards);
  for (std::uint64_t k = 0; k < 64; ++k) {
    HtInsertOp<std::uint64_t, std::uint64_t> ins;
    ins.set(k, k * 10 + 1);
    ht.engine->execute(ins);
    EXPECT_TRUE(ins.result());
    const std::size_t expect = ht.engine->shard_of(shard_key_of(k));
    for (std::size_t s = 0; s < shards; ++s) {
      const bool present = ht.tables[s]->contains(k);
      EXPECT_EQ(present, s == expect) << "key " << k << " shard " << s;
    }
  }
  hcf::mem::EbrDomain::instance().drain();
}

TEST(ShardedCrossShard, SizeSumsAllShards) {
  ShardedHt<> ht(8);
  EXPECT_EQ(ht.engine->size(), 0u);
  const std::uint64_t n = 500;
  for (std::uint64_t k = 0; k < n; ++k) {
    HtInsertOp<std::uint64_t, std::uint64_t> ins;
    ins.set(k, k);
    ht.engine->execute(ins);
  }
  EXPECT_EQ(ht.engine->size(), n);
  for (std::uint64_t k = 0; k < n; k += 2) {
    HtRemoveOp<std::uint64_t, std::uint64_t> rem;
    rem.set(k);
    ht.engine->execute(rem);
    EXPECT_TRUE(rem.result());
  }
  EXPECT_EQ(ht.engine->size(), n / 2);
  // Reads still route correctly after removals.
  for (std::uint64_t k = 1; k < n; k += 2) {
    HtFindOp<std::uint64_t, std::uint64_t> find;
    find.set(k);
    ht.engine->execute(find);
    ASSERT_TRUE(find.result().has_value());
    EXPECT_EQ(*find.result(), k);
  }
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_TRUE(ht.tables[s]->check_invariants());
  }
  hcf::mem::EbrDomain::instance().drain();
}

TEST(ShardedStats, AggregateCountsEveryShardsCompletions) {
  ShardedHt<> ht(4);
  const std::uint64_t n = 300;
  for (std::uint64_t k = 0; k < n; ++k) {
    HtInsertOp<std::uint64_t, std::uint64_t> ins;
    ins.set(k, k);
    ht.engine->execute(ins);
  }
  const auto agg = ht.engine->stats_snapshot();
  EXPECT_EQ(agg.total(), n);
  std::uint64_t per_shard_sum = 0;
  std::uint64_t per_shard_locks = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    per_shard_sum += ht.engine->shard(s).stats().total();
    per_shard_locks += ht.engine->shard(s).lock_acquisitions();
  }
  EXPECT_EQ(per_shard_sum, n);
  EXPECT_EQ(ht.engine->lock_acquisitions(), per_shard_locks);

  ht.engine->reset_stats();
  EXPECT_EQ(ht.engine->stats_snapshot().total(), 0u);
  EXPECT_EQ(ht.engine->lock_acquisitions(), 0u);
  hcf::mem::EbrDomain::instance().drain();
}

TEST(ShardedPolicy, BroadcastReachesEveryShard) {
  ShardedHt<> ht(8);
  const auto policy = hcf::core::PhasePolicy::combine_first();
  ht.engine->set_class_policy(kHtInsertClass, policy);
  EXPECT_EQ(ht.engine->num_classes(), 2u);
  for (std::size_t s = 0; s < 8; ++s) {
    const auto cfg = ht.engine->shard(s).class_config(kHtInsertClass);
    EXPECT_EQ(cfg.policy.try_private, policy.try_private) << "shard " << s;
    EXPECT_EQ(cfg.policy.try_visible, policy.try_visible) << "shard " << s;
    EXPECT_EQ(cfg.policy.try_combining, policy.try_combining)
        << "shard " << s;
    EXPECT_EQ(cfg.policy.announce, policy.announce) << "shard " << s;
  }
  // The meta-engine's own class_config mirrors shard 0.
  const auto cfg = ht.engine->class_config(kHtInsertClass);
  EXPECT_EQ(cfg.policy.try_combining, policy.try_combining);
}

// Satellite regression: concurrent policy flips must stay field-wise
// atomic per shard (routed through detail::AtomicPolicy) while operations
// execute across shards — every op still runs exactly once with a sane
// hybrid policy, and the final broadcast is visible on every shard.
TEST(ShardedPolicy, ConcurrentFlipsKeepOpsExactlyOnce) {
  const std::size_t shards = 4;
  const int workers = 3;
  const std::uint64_t keys_per_worker = 400;
  ShardedHt<> ht(shards);

  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    const auto a = hcf::core::PhasePolicy::paper_default();
    const auto b = hcf::core::PhasePolicy::combine_first();
    const auto c = hcf::core::PhasePolicy{6, 2, 2, true};
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto& p = i % 3 == 0 ? a : (i % 3 == 1 ? b : c);
      ht.engine->set_class_policy(kHtInsertClass, p);
      ++i;
      std::this_thread::yield();
    }
    // Deterministic final state for the post-join check.
    ht.engine->set_class_policy(kHtInsertClass, b);
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < workers; ++t) {
    threads.emplace_back([&, t] {
      const std::uint64_t base =
          static_cast<std::uint64_t>(t) * keys_per_worker;
      for (std::uint64_t k = base; k < base + keys_per_worker; ++k) {
        HtInsertOp<std::uint64_t, std::uint64_t> ins;
        ins.set(k, k + 7);
        ht.engine->execute(ins);
        EXPECT_TRUE(ins.result()) << "key " << k << " double-inserted";
        if (k % 16 == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_relaxed);
  flipper.join();

  EXPECT_EQ(ht.engine->size(),
            static_cast<std::size_t>(workers) * keys_per_worker);
  const auto want = hcf::core::PhasePolicy::combine_first();
  for (std::size_t s = 0; s < shards; ++s) {
    const auto got = ht.engine->shard(s).class_config(kHtInsertClass).policy;
    EXPECT_EQ(got.try_private, want.try_private) << "shard " << s;
    EXPECT_EQ(got.try_visible, want.try_visible) << "shard " << s;
    EXPECT_EQ(got.try_combining, want.try_combining) << "shard " << s;
  }
  hcf::mem::EbrDomain::instance().drain();
}

// ShardedStress (run under TSan in the sanitizer builds): cross-shard
// size() sweeps — ascending all-shard lock acquisition — interleave with
// per-shard combining traffic. Checks deadlock freedom, that every
// observed size is a plausible whole-structure snapshot, and exact final
// accounting.
TEST(ShardedStress, CrossShardSizeVsPerShardCombining) {
  const std::size_t shards = 8;
  const int workers = 3;
  const std::uint64_t keys_per_worker = 600;
  ShardedHt<> ht(shards, 512);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sweeps{0};
  std::thread sizer([&] {
    std::size_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t n = ht.engine->size();
      // Workers only insert (fresh keys), so sizes are monotone.
      EXPECT_GE(n, last);
      EXPECT_LE(n, static_cast<std::size_t>(workers) * keys_per_worker);
      last = n;
      sweeps.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < workers; ++t) {
    threads.emplace_back([&, t] {
      const std::uint64_t base =
          1000000 + static_cast<std::uint64_t>(t) * keys_per_worker;
      for (std::uint64_t k = base; k < base + keys_per_worker; ++k) {
        HtInsertOp<std::uint64_t, std::uint64_t> ins;
        ins.set(k, k);
        ht.engine->execute(ins);
        if (k % 32 == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_relaxed);
  sizer.join();

  EXPECT_GT(sweeps.load(), 0u);
  EXPECT_EQ(ht.engine->size(),
            static_cast<std::size_t>(workers) * keys_per_worker);
  for (std::size_t s = 0; s < shards; ++s) {
    EXPECT_TRUE(ht.tables[s]->check_invariants());
  }
  hcf::mem::EbrDomain::instance().drain();
}

TEST(ShardedAdaptiveTest, PerShardControllersRunIndependently) {
  ShardedHt<ShardedAdaptive> ht(2);
  for (std::uint64_t k = 0; k < 200; ++k) {
    HtInsertOp<std::uint64_t, std::uint64_t> ins;
    ins.set(k, k);
    ht.engine->execute(ins);
    EXPECT_TRUE(ins.result());
  }
  EXPECT_EQ(ht.engine->size(), 200u);
  // Each shard wraps its own controller; both are reachable and their
  // inner engines carry the shard's share of the completions.
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < 2; ++s) {
    total += ht.engine->shard(s).stats().total();
    (void)ht.engine->shard(s).adaptations();
  }
  EXPECT_EQ(total, 200u);
  hcf::mem::EbrDomain::instance().drain();
}

}  // namespace
