// The §2.4 degeneration theorem as an executable check: the unified phase
// machine (core/phase_exec.hpp) configured with tle_like / fc_like policies
// must behave observably like the dedicated TLE / FC engines — same Phase
// returned for every operation of a scripted single-threaded sequence, same
// per-class completion histogram, same final structure contents. This pins
// the policy table in DESIGN.md §10 to the engines that implement it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adapters/stack_ops.hpp"
#include "core/engine.hpp"
#include "mem/ebr.hpp"

namespace hcf::test {
namespace {

using St = ds::Stack<std::uint64_t>;

// Deterministic single-threaded script: push-heavy prefix, drain-heavy
// suffix, pops past empty at the end. Returns the Phase per operation.
template <typename Engine>
std::vector<core::Phase> run_script(Engine& engine) {
  adapters::StackPushOp<std::uint64_t> push;
  adapters::StackPopOp<std::uint64_t> pop;
  std::vector<core::Phase> phases;
  for (std::uint64_t i = 0; i < 200; ++i) {
    if (i % 3 != 2) {
      push.set(i);
      phases.push_back(engine.execute(push));
    } else {
      phases.push_back(engine.execute(pop));
    }
  }
  for (int i = 0; i < 160; ++i) {
    phases.push_back(engine.execute(pop));
  }
  return phases;
}

std::vector<std::uint64_t> contents(St& s) {
  std::vector<std::uint64_t> out;
  s.for_each([&](std::uint64_t v) { out.push_back(v); });
  return out;
}

void expect_same_histogram(core::EngineStats& a, core::EngineStats& b) {
  const auto sa = core::EngineStatsSnapshot::capture(a);
  const auto sb = core::EngineStatsSnapshot::capture(b);
  for (int c = 0; c < core::kMaxOpClasses; ++c) {
    for (int p = 0; p < core::kNumPhases; ++p) {
      EXPECT_EQ(sa.completions[c][p], sb.completions[c][p])
          << "class " << c << " phase " << p;
    }
  }
}

TEST(PhaseEquivalence, TleLikeUnifiedMatchesDedicatedTle) {
  St s_unified, s_dedicated;
  core::HcfEngine<St> unified(s_unified, core::PhasePolicy::tle_like());
  core::TleEngine<St> dedicated(s_dedicated);

  const auto unified_phases = run_script(unified);
  const auto dedicated_phases = run_script(dedicated);

  EXPECT_EQ(unified_phases, dedicated_phases);
  expect_same_histogram(unified.stats(), dedicated.stats());
  EXPECT_EQ(contents(s_unified), contents(s_dedicated));
  // A TLE-like class never announces, so the unified core must not have
  // opened a combining session on its behalf.
  EXPECT_EQ(unified.stats().combiner_sessions.total(), 0u);
  mem::EbrDomain::instance().drain();
}

TEST(PhaseEquivalence, FcLikeUnifiedMatchesDedicatedFc) {
  St s_unified, s_dedicated;
  core::HcfEngine<St> unified(s_unified, core::PhasePolicy::fc_like());
  core::FcEngine<St> dedicated(s_dedicated);

  const auto unified_phases = run_script(unified);
  const auto dedicated_phases = run_script(dedicated);

  EXPECT_EQ(unified_phases, dedicated_phases);
  // fc_like starts zero transactions: every op goes under the lock.
  for (core::Phase p : unified_phases) {
    EXPECT_EQ(p, core::Phase::UnderLock);
  }
  expect_same_histogram(unified.stats(), dedicated.stats());
  EXPECT_EQ(contents(s_unified), contents(s_dedicated));
  mem::EbrDomain::instance().drain();
}

TEST(PhaseEquivalence, PaperDefaultCompletesPrivatelyWhenUncontended) {
  // Single-threaded, the paper_default policy should never need to
  // announce: everything commits in TryPrivate, in both combiner modes.
  St s_multi, s_single;
  core::HcfEngine<St> multi(s_multi);
  core::HcfSingleCombinerEngine<St> single(s_single);

  const auto multi_phases = run_script(multi);
  const auto single_phases = run_script(single);

  EXPECT_EQ(multi_phases, single_phases);
  for (core::Phase p : multi_phases) {
    EXPECT_EQ(p, core::Phase::Private);
  }
  expect_same_histogram(multi.stats(), single.stats());
  EXPECT_EQ(contents(s_multi), contents(s_single));
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::test
