#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "harness/driver.hpp"
#include "harness/issuers.hpp"
#include "harness/workload.hpp"
#include "mem/ebr.hpp"

namespace hcf::harness {
namespace {

using Table = ds::HashTable<std::uint64_t, std::uint64_t>;

TEST(Workload, ReadsSplitsRemainderEvenly) {
  const auto w = WorkloadSpec::reads(40, 1000);
  EXPECT_EQ(w.find_pct, 40);
  EXPECT_EQ(w.insert_pct, 30);
  EXPECT_EQ(w.remove_pct, 30);
  EXPECT_EQ(w.prefill, 500u);

  const auto w2 = WorkloadSpec::reads(85, 100);
  EXPECT_EQ(w2.find_pct + w2.insert_pct + w2.remove_pct, 100);
}

TEST(Workload, LabelMentionsZipf) {
  const auto w = WorkloadSpec::reads(0, 1024, KeyDist::Zipfian, 0.9);
  EXPECT_NE(w.label().find("zipf"), std::string::npos);
  const auto u = WorkloadSpec::reads(0, 1024);
  EXPECT_EQ(u.label().find("zipf"), std::string::npos);
}

TEST(KeyGen, UniformWithinRange) {
  WorkloadSpec spec;
  spec.key_range = 77;
  KeyGenerator gen(spec, 1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(gen.next_key(), 77u);
}

TEST(KeyGen, ZipfianFavorsLowKeys) {
  auto spec = WorkloadSpec::reads(100, 1024, KeyDist::Zipfian, 0.9);
  KeyGenerator gen(spec, 2);
  std::uint64_t low = 0, total = 20000;
  for (std::uint64_t i = 0; i < total; ++i) {
    if (gen.next_key() < 102) ++low;  // lowest 10% of the range
  }
  EXPECT_GT(low, total / 2);  // >50% of draws hit the lowest 10%
}

TEST(Driver, MeasuresThroughputAndStats) {
  Table table(1024);
  const auto spec = WorkloadSpec::reads(40, 1024);
  for (std::uint64_t k = 0; k < spec.prefill; ++k) table.insert(k, k * 2 + 1);
  core::HcfEngine<Table> engine(table, adapters::ht_paper_config(),
                                adapters::kHtNumArrays);

  DriverOptions options;
  options.warmup = std::chrono::milliseconds(20);
  options.duration = std::chrono::milliseconds(100);
  using Engine = core::HcfEngine<Table>;
  const RunResult result = run_timed(
      engine, 2,
      [&](std::size_t t) { return HtWorker<Engine>(engine, spec, 100 + t); },
      options);

  EXPECT_GT(result.total_ops, 0u);
  EXPECT_GT(result.throughput_mops(), 0.0);
  // Generous tolerance: sleep_for can overshoot when cores are busy.
  EXPECT_GE(result.duration_s, 0.1);
  EXPECT_LT(result.duration_s, 0.5);
  // Completions recorded during the window never exceed ops counted
  // (counting starts strictly after the stats reset).
  EXPECT_GE(result.engine.total(), result.total_ops);
  EXPECT_TRUE(table.check_invariants());
  mem::EbrDomain::instance().drain();
}

TEST(Driver, LockEngineReportsAcquisitions) {
  Table table(128);
  core::LockEngine<Table> engine(table);
  const auto spec = WorkloadSpec::reads(50, 128);
  DriverOptions options;
  options.warmup = std::chrono::milliseconds(5);
  options.duration = std::chrono::milliseconds(50);
  using Engine = core::LockEngine<Table>;
  const RunResult result = run_timed(
      engine, 2,
      [&](std::size_t t) { return HtWorker<Engine>(engine, spec, t); },
      options);
  // Lock engine: every op acquires the lock.
  EXPECT_GT(result.lock_acquisitions, 0u);
  EXPECT_GE(result.lock_rate_per_kop(), 900.0);
  mem::EbrDomain::instance().drain();
}

TEST(Driver, TleOnReadOnlyWorkloadRarelyLocks) {
  Table table(4096);
  for (std::uint64_t k = 0; k < 2048; ++k) table.insert(k, k * 2 + 1);
  core::TleEngine<Table> engine(table);
  const auto spec = WorkloadSpec::reads(100, 4096);
  DriverOptions options;
  options.warmup = std::chrono::milliseconds(5);
  options.duration = std::chrono::milliseconds(100);
  using Engine = core::TleEngine<Table>;
  const RunResult result = run_timed(
      engine, 2,
      [&](std::size_t t) { return HtWorker<Engine>(engine, spec, t); },
      options);
  // Read-only: effectively everything commits speculatively.
  EXPECT_LT(result.lock_rate_per_kop(), 5.0);
  EXPECT_GT(result.engine.phase_total(core::Phase::Private),
            result.engine.total() * 95 / 100);
  mem::EbrDomain::instance().drain();
}

TEST(Driver, LatencyPercentilesWhenEnabled) {
  Table table(256);
  core::TleEngine<Table> engine(table);
  const auto spec = WorkloadSpec::reads(100, 256);
  DriverOptions options;
  options.warmup = std::chrono::milliseconds(5);
  options.duration = std::chrono::milliseconds(60);
  options.measure_latency = true;
  using Engine = core::TleEngine<Table>;
  const RunResult result = run_timed(
      engine, 2,
      [&](std::size_t t) { return HtWorker<Engine>(engine, spec, t); },
      options);
  EXPECT_GT(result.latency_p50_ns, 0u);
  EXPECT_GE(result.latency_p99_ns, result.latency_p50_ns);
  // Sub-second operations: p99 below 100ms on any sane run.
  EXPECT_LT(result.latency_p99_ns, 100'000'000u);
  mem::EbrDomain::instance().drain();
}

TEST(Driver, LatencyZeroWhenDisabled) {
  Table table(64);
  core::LockEngine<Table> engine(table);
  const auto spec = WorkloadSpec::reads(100, 64);
  DriverOptions options;
  options.warmup = std::chrono::milliseconds(2);
  options.duration = std::chrono::milliseconds(20);
  using Engine = core::LockEngine<Table>;
  const RunResult result = run_timed(
      engine, 1,
      [&](std::size_t t) { return HtWorker<Engine>(engine, spec, t); },
      options);
  EXPECT_EQ(result.latency_p50_ns, 0u);
  EXPECT_EQ(result.latency_p99_ns, 0u);
}

TEST(Driver, YieldEveryOpStillCorrect) {
  Table table(64);
  core::HcfEngine<Table> engine(table, adapters::ht_paper_config(),
                                adapters::kHtNumArrays);
  const auto spec = WorkloadSpec::reads(0, 64);
  DriverOptions options;
  options.warmup = std::chrono::milliseconds(2);
  options.duration = std::chrono::milliseconds(50);
  options.yield_every_op = true;
  using Engine = core::HcfEngine<Table>;
  const RunResult result = run_timed(
      engine, 4,
      [&](std::size_t t) { return HtWorker<Engine>(engine, spec, t); },
      options);
  EXPECT_GT(result.total_ops, 0u);
  EXPECT_TRUE(table.check_invariants());
  mem::EbrDomain::instance().drain();
}

TEST(RunResult, DerivedMetrics) {
  RunResult r;
  r.total_ops = 2000;
  r.duration_s = 2.0;
  r.lock_acquisitions = 100;
  EXPECT_DOUBLE_EQ(r.throughput_mops(), 0.001);
  EXPECT_DOUBLE_EQ(r.lock_rate_per_kop(), 50.0);
  RunResult zero;
  EXPECT_DOUBLE_EQ(zero.throughput_mops(), 0.0);
  EXPECT_DOUBLE_EQ(zero.lock_rate_per_kop(), 0.0);
}

}  // namespace
}  // namespace hcf::harness
