// Concurrent correctness of every engine over the AVL-tree set, including
// the combining/eliminating run_multi. Same operation-accounting strategy
// as the hash-table suite, under a Zipfian key distribution to exercise the
// contended paths the paper targets.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "engine_test_util.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace hcf::test {
namespace {

using Tree = ds::AvlTree<std::uint64_t>;

constexpr std::uint64_t kKeyRange = 64;
constexpr int kThreads = 4;
constexpr int kOpsPerThread = 10000;

HcfConfig avl_config() { return {adapters::avl_paper_config(), 1}; }

template <typename Engine>
class EngineAvlTest : public ::testing::Test {};

using EngineTypes =
    ::testing::Types<Engines<Tree>::Lock, Engines<Tree>::Tle,
                     Engines<Tree>::Scm, Engines<Tree>::Fc,
                     Engines<Tree>::TleFc, Engines<Tree>::Hcf,
                     Engines<Tree>::Hcf1C>;
TYPED_TEST_SUITE(EngineAvlTest, EngineTypes);

TYPED_TEST(EngineAvlTest, OperationAccountingReconcilesUnderZipf) {
  Tree tree;
  std::vector<bool> initially_present(kKeyRange, false);
  for (std::uint64_t k = 0; k < kKeyRange; k += 2) {
    tree.insert(k);
    initially_present[k] = true;
  }
  auto engine = EngineMaker<TypeParam>::make(tree, avl_config());

  std::vector<std::vector<std::int64_t>> net(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    net[t].assign(kKeyRange, 0);
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(7100 + t);
      util::ZipfianGenerator zipf(kKeyRange, 0.9);
      adapters::AvlContainsOp<std::uint64_t> contains;
      adapters::AvlInsertOp<std::uint64_t> insert;
      adapters::AvlRemoveOp<std::uint64_t> remove;
      contains.bind_tree(&tree);
      insert.bind_tree(&tree);
      remove.bind_tree(&tree);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t key = zipf.next(rng);
        switch (rng.next_bounded(4)) {
          case 0:
            insert.set(key);
            engine->execute(insert);
            if (insert.result()) ++net[t][key];
            break;
          case 1:
            remove.set(key);
            engine->execute(remove);
            if (remove.result()) --net[t][key];
            break;
          default:
            contains.set(key);
            engine->execute(contains);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  for (std::uint64_t k = 0; k < kKeyRange; ++k) {
    std::int64_t expected = initially_present[k] ? 1 : 0;
    for (int t = 0; t < kThreads; ++t) expected += net[t][k];
    ASSERT_TRUE(expected == 0 || expected == 1)
        << TypeParam::name() << " key " << k << " net " << expected;
    EXPECT_EQ(tree.contains(k), expected == 1)
        << TypeParam::name() << " key " << k;
  }
  EXPECT_TRUE(tree.check_invariants()) << TypeParam::name();
  EXPECT_EQ(engine->stats().total(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  mem::EbrDomain::instance().drain();
}

// The no-combining ablation ops must also be correct under every engine.
TYPED_TEST(EngineAvlTest, NoCombineVariantAlsoCorrect) {
  Tree tree;
  auto engine = EngineMaker<TypeParam>::make(tree, avl_config());
  using NC = adapters::AvlNoCombine<std::uint64_t>;
  constexpr int kSmallThreads = 3;
  constexpr int kSmallOps = 4000;
  std::vector<std::vector<std::int64_t>> net(kSmallThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kSmallThreads; ++t) {
    net[t].assign(kKeyRange, 0);
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(81 + t);
      typename NC::Insert insert;
      typename NC::Remove remove;
      insert.bind_tree(&tree);
      remove.bind_tree(&tree);
      for (int i = 0; i < kSmallOps; ++i) {
        const std::uint64_t key = rng.next_bounded(kKeyRange);
        if (rng.next_bounded(2) == 0) {
          insert.set(key);
          engine->execute(insert);
          if (insert.result()) ++net[t][key];
        } else {
          remove.set(key);
          engine->execute(remove);
          if (remove.result()) --net[t][key];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::uint64_t k = 0; k < kKeyRange; ++k) {
    std::int64_t expected = 0;
    for (int t = 0; t < kSmallThreads; ++t) expected += net[t][k];
    ASSERT_TRUE(expected == 0 || expected == 1) << k;
    EXPECT_EQ(tree.contains(k), expected == 1) << k;
  }
  EXPECT_TRUE(tree.check_invariants());
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::test
