// Concurrent correctness of every engine over the hash table.
//
// Verification strategy ("operation accounting"): each worker records, per
// key, the net effect its *successful* operations claim (new inserts minus
// successful removes) and validates every Find result against the fixed
// value scheme (value == key * 2 + 1). After the run:
//
//     initially_present(k) + sum_over_threads(net(k)) == present_now(k)
//
// must hold for every key. Any lost/duplicated/phantom operation breaks the
// equation, so this catches double execution, lost updates, and torn state
// across all four HCF phases and all baseline engines.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "engine_test_util.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::test {
namespace {

using Table = ds::HashTable<std::uint64_t, std::uint64_t>;
using Ops = adapters::HtOpBase<std::uint64_t, std::uint64_t>;

constexpr std::uint64_t kKeyRange = 128;  // small: force contention
constexpr int kThreads = 4;
constexpr int kOpsPerThread = 15000;

HcfConfig ht_config() {
  return {adapters::ht_paper_config(), adapters::kHtNumArrays};
}

template <typename Engine>
class EngineHashTableTest : public ::testing::Test {};

using EngineTypes =
    ::testing::Types<Engines<Table>::Lock, Engines<Table>::Tle,
                     Engines<Table>::Scm, Engines<Table>::CoreLock,
                     Engines<Table>::Fc, Engines<Table>::TleFc,
                     Engines<Table>::Hcf, Engines<Table>::Hcf1C>;
TYPED_TEST_SUITE(EngineHashTableTest, EngineTypes);

TYPED_TEST(EngineHashTableTest, OperationAccountingReconciles) {
  Table table(kKeyRange);
  std::vector<bool> initially_present(kKeyRange, false);
  for (std::uint64_t k = 0; k < kKeyRange; k += 2) {
    table.insert(k, k * 2 + 1);
    initially_present[k] = true;
  }
  auto engine = EngineMaker<TypeParam>::make(table, ht_config());

  std::vector<std::vector<std::int64_t>> net(kThreads);
  std::vector<std::uint64_t> bad_finds(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    net[t].assign(kKeyRange, 0);
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(9000 + t);
      adapters::HtFindOp<std::uint64_t, std::uint64_t> find;
      adapters::HtInsertOp<std::uint64_t, std::uint64_t> insert;
      adapters::HtRemoveOp<std::uint64_t, std::uint64_t> remove;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t key = rng.next_bounded(kKeyRange);
        switch (rng.next_bounded(4)) {
          case 0: {
            insert.set(key, key * 2 + 1);
            engine->execute(insert);
            if (insert.result()) ++net[t][key];
            break;
          }
          case 1: {
            remove.set(key);
            engine->execute(remove);
            if (remove.result()) --net[t][key];
            break;
          }
          default: {
            find.set(key);
            engine->execute(find);
            if (find.result().has_value() && *find.result() != key * 2 + 1) {
              ++bad_finds[t];
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(bad_finds[t], 0u);
  for (std::uint64_t k = 0; k < kKeyRange; ++k) {
    std::int64_t expected = initially_present[k] ? 1 : 0;
    for (int t = 0; t < kThreads; ++t) expected += net[t][k];
    ASSERT_TRUE(expected == 0 || expected == 1)
        << TypeParam::name() << " key " << k << " net " << expected;
    EXPECT_EQ(table.contains(k), expected == 1)
        << TypeParam::name() << " key " << k;
  }
  EXPECT_TRUE(table.check_invariants()) << TypeParam::name();
  // Every operation completed in exactly one phase.
  EXPECT_EQ(engine->stats().total(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  mem::EbrDomain::instance().drain();
}

TYPED_TEST(EngineHashTableTest, SingleThreadedMatchesReference) {
  Table table(64);
  auto engine = EngineMaker<TypeParam>::make(table, ht_config());
  adapters::HtFindOp<std::uint64_t, std::uint64_t> find;
  adapters::HtInsertOp<std::uint64_t, std::uint64_t> insert;
  adapters::HtRemoveOp<std::uint64_t, std::uint64_t> remove;

  insert.set(3, 7);
  engine->execute(insert);
  EXPECT_TRUE(insert.result());
  find.set(3);
  engine->execute(find);
  EXPECT_EQ(find.result(), 7u);
  remove.set(3);
  engine->execute(remove);
  EXPECT_TRUE(remove.result());
  find.set(3);
  engine->execute(find);
  EXPECT_FALSE(find.result().has_value());
  remove.set(3);
  engine->execute(remove);
  EXPECT_FALSE(remove.result());
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::test
