#include "ds/sorted_list.hpp"

#include <gtest/gtest.h>

#include "ebr_drain_env.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::ds {
namespace {

using List = SortedList<std::uint64_t>;
using BatchOp = List::BatchOp;
using Kind = List::BatchOpKind;

TEST(SortedListSeq, InsertRemoveContains) {
  List l;
  EXPECT_TRUE(l.insert(5));
  EXPECT_FALSE(l.insert(5));
  EXPECT_TRUE(l.insert(3));
  EXPECT_TRUE(l.insert(7));
  EXPECT_TRUE(l.contains(5));
  EXPECT_FALSE(l.contains(4));
  EXPECT_TRUE(l.check_invariants());
  EXPECT_TRUE(l.remove(5));
  EXPECT_FALSE(l.remove(5));
  EXPECT_FALSE(l.contains(5));
  EXPECT_EQ(l.size_slow(), 2u);
  EXPECT_TRUE(l.check_invariants());
}

TEST(SortedListSeq, KeysStaySorted) {
  List l;
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 300; ++i) l.insert(rng.next_bounded(1000));
  std::vector<std::uint64_t> keys;
  l.for_each([&](std::uint64_t k) { keys.push_back(k); });
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_TRUE(std::adjacent_find(keys.begin(), keys.end()) == keys.end());
}

TEST(SortedListSeq, RemoveHeadMiddleTail) {
  List l;
  for (std::uint64_t k : {1, 2, 3, 4, 5}) l.insert(k);
  EXPECT_TRUE(l.remove(1));  // head
  EXPECT_TRUE(l.remove(3));  // middle
  EXPECT_TRUE(l.remove(5));  // tail
  EXPECT_EQ(l.size_slow(), 2u);
  EXPECT_TRUE(l.check_invariants());
}

TEST(SortedListSeq, RandomizedAgainstStdSet) {
  List l;
  std::set<std::uint64_t> ref;
  util::Xoshiro256 rng(21);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.next_bounded(200);
    switch (rng.next_bounded(3)) {
      case 0: ASSERT_EQ(l.insert(key), ref.insert(key).second) << i; break;
      case 1: ASSERT_EQ(l.remove(key), ref.erase(key) > 0) << i; break;
      default: ASSERT_EQ(l.contains(key), ref.count(key) > 0) << i;
    }
  }
  EXPECT_EQ(l.size_slow(), ref.size());
  EXPECT_TRUE(l.check_invariants());
  mem::EbrDomain::instance().drain();
}

TEST(SortedListSeq, BatchMatchesSequentialApplication) {
  util::Xoshiro256 rng(4);
  for (int round = 0; round < 300; ++round) {
    List batched, plain;
    std::set<std::uint64_t> init;
    for (int i = 0; i < 20; ++i) init.insert(rng.next_bounded(32));
    for (auto k : init) {
      batched.insert(k);
      plain.insert(k);
    }
    // A key-sorted batch with duplicates.
    std::vector<BatchOp> ops;
    const int n = 1 + static_cast<int>(rng.next_bounded(12));
    for (int i = 0; i < n; ++i) {
      BatchOp op;
      op.key = rng.next_bounded(32);
      op.kind = static_cast<Kind>(rng.next_bounded(3));
      op.result = false;
      ops.push_back(op);
    }
    std::sort(ops.begin(), ops.end(),
              [](const BatchOp& a, const BatchOp& b) { return a.key < b.key; });

    auto expected = ops;
    for (auto& op : expected) {
      switch (op.kind) {
        case Kind::Contains: op.result = plain.contains(op.key); break;
        case Kind::Insert: op.result = plain.insert(op.key); break;
        case Kind::Remove: op.result = plain.remove(op.key); break;
      }
    }
    batched.apply_sorted_batch(ops);
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(ops[static_cast<std::size_t>(i)].result,
                expected[static_cast<std::size_t>(i)].result)
          << "round " << round << " op " << i;
    }
    ASSERT_EQ(batched.size_slow(), plain.size_slow()) << round;
    ASSERT_TRUE(batched.check_invariants()) << round;
    std::vector<std::uint64_t> a, b;
    batched.for_each([&](std::uint64_t k) { a.push_back(k); });
    plain.for_each([&](std::uint64_t k) { b.push_back(k); });
    ASSERT_EQ(a, b) << round;
  }
  mem::EbrDomain::instance().drain();
}

TEST(SortedListSeq, BatchInsertRemovePairEliminates) {
  List l;
  l.insert(1);
  BatchOp ops[] = {{.key = 5, .kind = Kind::Insert, .result = false},
                   {.key = 5, .kind = Kind::Remove, .result = false}};
  l.apply_sorted_batch(ops);
  EXPECT_TRUE(ops[0].result);
  EXPECT_TRUE(ops[1].result);
  EXPECT_FALSE(l.contains(5));
  EXPECT_EQ(l.size_slow(), 1u);
}

TEST(SortedListSeq, EmptyBatchIsNoop) {
  List l;
  l.insert(9);
  l.apply_sorted_batch({});
  EXPECT_EQ(l.size_slow(), 1u);
}

TEST(SortedListSeq, TransactionalRollback) {
  List l;
  l.insert(1);
  htm::attempt([&] {
    l.insert(2);
    l.remove(1);
    htm::abort_tx();
  });
  EXPECT_TRUE(l.contains(1));
  EXPECT_FALSE(l.contains(2));
  EXPECT_TRUE(l.check_invariants());
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::ds
