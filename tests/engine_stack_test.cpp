// Concurrent correctness of every engine over the stack, plus the
// elimination property: Push/Pop pairs cancelled by a combiner must still
// produce a valid linearization (every popped value was pushed exactly
// once; pushed = popped + remaining).
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "adapters/stack_ops.hpp"
#include "engine_test_util.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::test {
namespace {

using St = ds::Stack<std::uint64_t>;

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 8000;

HcfConfig stack_config() { return {adapters::stack_paper_config(), 1}; }

template <typename Engine>
class EngineStackTest : public ::testing::Test {};

using EngineTypes =
    ::testing::Types<Engines<St>::Lock, Engines<St>::Tle, Engines<St>::Scm,
                     Engines<St>::Fc, Engines<St>::TleFc, Engines<St>::Hcf,
                     Engines<St>::Hcf1C>;
TYPED_TEST_SUITE(EngineStackTest, EngineTypes);

TYPED_TEST(EngineStackTest, PushedEqualsPoppedPlusRemaining) {
  St stack;
  auto engine = EngineMaker<TypeParam>::make(stack, stack_config());

  std::vector<std::vector<std::uint64_t>> pushed(kThreads);
  std::vector<std::vector<std::uint64_t>> popped(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(700 + t);
      adapters::StackPushOp<std::uint64_t> push;
      adapters::StackPopOp<std::uint64_t> pop;
      std::uint64_t seq = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.next_bounded(100) < 55) {
          const std::uint64_t value =
              (static_cast<std::uint64_t>(t) << 32) | seq++;
          push.set(value);
          engine->execute(push);
          pushed[t].push_back(value);
        } else {
          engine->execute(pop);
          if (pop.result().has_value()) popped[t].push_back(*pop.result());
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::multiset<std::uint64_t> all_pushed, all_popped;
  for (const auto& v : pushed) all_pushed.insert(v.begin(), v.end());
  for (const auto& v : popped) all_popped.insert(v.begin(), v.end());
  for (std::uint64_t v : all_popped) {
    ASSERT_EQ(all_pushed.count(v), 1u) << TypeParam::name();
    ASSERT_EQ(all_popped.count(v), 1u) << TypeParam::name();
  }
  std::multiset<std::uint64_t> expected_left = all_pushed;
  for (std::uint64_t v : all_popped) expected_left.erase(v);
  std::multiset<std::uint64_t> actual_left;
  stack.for_each([&](std::uint64_t v) { actual_left.insert(v); });
  EXPECT_EQ(actual_left, expected_left) << TypeParam::name();
  mem::EbrDomain::instance().drain();
}

TYPED_TEST(EngineStackTest, SingleThreadLifo) {
  St stack;
  auto engine = EngineMaker<TypeParam>::make(stack, stack_config());
  adapters::StackPushOp<std::uint64_t> push;
  adapters::StackPopOp<std::uint64_t> pop;
  for (std::uint64_t v = 0; v < 50; ++v) {
    push.set(v);
    engine->execute(push);
  }
  for (std::uint64_t v = 50; v-- > 0;) {
    engine->execute(pop);
    ASSERT_EQ(pop.result(), v) << TypeParam::name();
  }
  engine->execute(pop);
  EXPECT_FALSE(pop.result().has_value());
  mem::EbrDomain::instance().drain();
}

TEST(StackElimination, CombinerCancelsPushPopPairs) {
  // Force combining (FC engine selects everything); under a mixed
  // push/pop workload the elimination counter must rise, and accounting
  // must stay exact. Whether a combiner ever sees a push and a pop in the
  // same selection is scheduling-dependent (on a single hardware thread the
  // batches can stay size-1 for a whole run), so repeat the workload until
  // an elimination is observed, with a bounded retry count.
  St stack;
  for (std::uint64_t v = 1000; v < 1200; ++v) stack.push(v);
  core::FcEngine<St> engine(stack);
  using Base = adapters::StackOpBase<std::uint64_t>;
  Base::reset_eliminations();

  std::atomic<std::uint64_t> pop_hits{0};
  constexpr int kMaxAttempts = 10;
  for (int attempt = 0;
       attempt < kMaxAttempts && Base::eliminations() == 0; ++attempt) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t, attempt] {
        util::Xoshiro256 rng(900 + t + 131 * attempt);
        adapters::StackPushOp<std::uint64_t> push;
        adapters::StackPopOp<std::uint64_t> pop;
        for (int i = 0; i < 5000; ++i) {
          if (rng.next_bounded(2) == 0) {
            push.set(rng.next());
            engine.execute(push);
          } else {
            engine.execute(pop);
            if (pop.result().has_value()) pop_hits.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_GT(Base::eliminations(), 0u);
  EXPECT_GT(pop_hits.load(), 0u);
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::test
