#include "sim_htm/txcell.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim_htm/htm.hpp"

namespace hcf::htm {
namespace {

TEST(TxCell, LoadStoreRoundTrip) {
  TxCell<std::uint64_t> cell{5};
  EXPECT_EQ(cell.load(), 5u);
  cell.store(9);
  EXPECT_EQ(cell.load(), 9u);
  cell.store_plain(11);
  EXPECT_EQ(cell.load(), 11u);
  cell.init(2);
  EXPECT_EQ(cell.load(), 2u);
}

TEST(TxCell, CasSemantics) {
  TxCell<std::uint64_t> cell{1};
  EXPECT_FALSE(cell.cas(0, 7));
  EXPECT_EQ(cell.load(), 1u);
  EXPECT_TRUE(cell.cas(1, 7));
  EXPECT_EQ(cell.load(), 7u);
}

TEST(TxCell, FetchAddReturnsPrevious) {
  TxCell<std::uint64_t> cell{10};
  EXPECT_EQ(cell.fetch_add(5), 10u);
  EXPECT_EQ(cell.load(), 15u);
}

TEST(TxCell, TransactionalReadAndWrite) {
  TxCell<std::uint64_t> cell{3};
  const bool ok = attempt([&] {
    EXPECT_EQ(cell.read(), 3u);
    cell.tx_write(8);
    EXPECT_EQ(cell.read(), 8u);  // read-own-buffered-write
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(cell.load(), 8u);
}

TEST(TxCell, TxWriteDiscardedOnAbort) {
  TxCell<std::uint64_t> cell{3};
  attempt([&] {
    cell.tx_write(99);
    abort_tx();
  });
  EXPECT_EQ(cell.load(), 3u);
}

TEST(TxCell, ConcurrentCasExactlyOneWinnerPerRound) {
  TxCell<std::uint64_t> cell{0};
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  std::atomic<int> round_gate{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        // Everyone tries to claim the cell for this round.
        if (cell.cas(static_cast<std::uint64_t>(r) * 2,
                     static_cast<std::uint64_t>(r) * 2 + 1)) {
          winners.fetch_add(1);
          cell.store(static_cast<std::uint64_t>(r + 1) * 2);  // open next
        } else {
          while (cell.load() < static_cast<std::uint64_t>(r + 1) * 2) {
            std::this_thread::yield();
          }
        }
        (void)t;
        (void)round_gate;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(winners.load(), kRounds);
}

TEST(TxCell, ConcurrentFetchAddLosesNothing) {
  TxCell<std::uint64_t> cell{0};
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) cell.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cell.load(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(TxCell, StrongStoreSerializesWithCommittingWriter) {
  // A transaction tx-writes the cell while another thread strong-stores it:
  // the final value must be one of the two, and counters must reconcile.
  for (int round = 0; round < 500; ++round) {
    TxCell<std::uint64_t> cell{0};
    std::atomic<int> ready{0};
    std::thread t1([&] {
      ready.fetch_add(1);
      while (ready.load() != 2) {}
      attempt([&] { cell.tx_write(1); });
    });
    std::thread t2([&] {
      ready.fetch_add(1);
      while (ready.load() != 2) {}
      cell.store(2);
    });
    t1.join();
    t2.join();
    const auto v = cell.load();
    EXPECT_TRUE(v == 1 || v == 2) << v;
  }
}

TEST(TxCell, PointerCell) {
  int a = 0, b = 0;
  TxCell<int*> cell{&a};
  EXPECT_EQ(cell.load(), &a);
  EXPECT_TRUE(cell.cas(&a, &b));
  EXPECT_EQ(cell.load(), &b);
}

}  // namespace
}  // namespace hcf::htm
