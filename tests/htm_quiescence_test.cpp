// The write-back quiescence gate: a thread that acquires an elidable lock
// must never observe a *partial* transactional write-back, and committed
// transactions must never overlap under-lock plain access. These tests
// hammer the exact interleavings the gate exists for.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"
#include "sync/tx_lock.hpp"
#include "util/backoff.hpp"

namespace hcf::htm {
namespace {

TEST(Quiescence, LockHolderNeverSeesPartialWriteback) {
  // Transactions write a multi-word record (all words must carry the same
  // round value); lock holders read it plainly. Any mixed-round read is a
  // quiescence violation (a torn write-back).
  constexpr int kWords = 16;
  struct Record {
    std::uint64_t words[kWords] = {};
  };
  alignas(64) static Record record;
  record = {};
  sync::TxLock lock;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> checks{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      util::Xoshiro256 rng(w + 1);
      util::ExpBackoff backoff(77 + w);
      std::uint64_t round = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t value = (round++ << 8) | static_cast<unsigned>(w);
        const bool ok = attempt([&] {
          lock.subscribe();
          for (auto& word : record.words) write(&word, value);
        });
        if (!ok) backoff.pause();
      }
    });
  }
  std::vector<std::thread> lockers;
  for (int l = 0; l < 2; ++l) {
    lockers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        lock.lock();
        // Plain, uninstrumented reads — exactly what CombineUnderLock does.
        const std::uint64_t first = record.words[0];
        for (const auto& word : record.words) {
          if (word != first) torn.fetch_add(1);
        }
        checks.fetch_add(1);
        lock.unlock();
        util::spin_for(64);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop = true;
  for (auto& t : writers) t.join();
  for (auto& t : lockers) t.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(checks.load(), 0u);
}

TEST(Quiescence, LockHolderPlainWritesNeverLost) {
  // Mixed increments again (like HtmConflict.TransactionsAndLockHoldersExclude)
  // but with a multi-word counter so a broken gate shows up as a torn or
  // lost update rather than an off-by-n.
  struct Pair {
    std::uint64_t a = 0;
    std::uint64_t b = 0;  // must always equal a
  };
  alignas(64) static Pair pair;
  pair = {};
  sync::TxLock lock;
  constexpr int kThreads = 4;
  constexpr int kIters = 8000;
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::ExpBackoff backoff(t);
      for (int i = 0; i < kIters; ++i) {
        if ((i + t) % 3 == 0) {
          lock.lock();
          // Uninstrumented lock-holder access: outside a txn, read/write
          // lower to plain atomic loads/stores (TxField's fast path). The
          // stores must be atomic at the C++ level because doomed
          // subscribers may still be executing speculative read()s of the
          // same words; the quiescence property under test is unchanged.
          const auto la = read(&pair.a);
          const auto lb = read(&pair.b);
          if (la != lb) mismatches.fetch_add(1);
          write(&pair.a, la + 1);
          write(&pair.b, lb + 1);
          lock.unlock();
        } else {
          for (;;) {
            lock.wait_until_free();
            const bool ok = attempt([&] {
              lock.subscribe();
              const auto a = read(&pair.a);
              const auto b = read(&pair.b);
              if (a != b) abort_tx();  // would be a torn observation
              write(&pair.a, a + 1);
              write(&pair.b, b + 1);
            });
            if (ok) break;
            backoff.pause();
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(pair.a, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(pair.b, pair.a);
}

TEST(Quiescence, DrainReturnsPromptlyWhenIdle) {
  wait_writeback_drain();  // no writers: must not block
  SUCCEED();
}

TEST(Quiescence, FairLockAlsoGates) {
  // Same torn-record check through the ticket lock.
  constexpr int kWords = 8;
  struct Record {
    std::uint64_t words[kWords] = {};
  };
  alignas(64) static Record record;
  record = {};
  sync::FairTxLock lock;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::thread writer([&] {
    util::ExpBackoff backoff(3);
    std::uint64_t round = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t value = round++;
      const bool ok = attempt([&] {
        lock.subscribe();
        for (auto& word : record.words) write(&word, value);
      });
      if (!ok) backoff.pause();
    }
  });
  std::thread locker([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      lock.lock();
      const std::uint64_t first = record.words[0];
      for (const auto& word : record.words) {
        if (word != first) torn.fetch_add(1);
      }
      lock.unlock();
      util::spin_for(32);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop = true;
  writer.join();
  locker.join();
  EXPECT_EQ(torn.load(), 0u);
}

}  // namespace
}  // namespace hcf::htm
