#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hcf::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Mix64, BijectivityOnSample) {
  // mix64 is invertible; distinct inputs must produce distinct outputs.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BoundedStaysInBounds) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_bounded(17), 17u);
  }
}

TEST(Xoshiro256, BoundedCoversRange) {
  Xoshiro256 rng(9);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) ++hits[rng.next_bounded(8)];
  for (int h : hits) {
    EXPECT_GT(h, 700);  // each bucket ~1000, allow wide slack
    EXPECT_LT(h, 1300);
  }
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(77);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, BoundedOneAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_bounded(1), 0u);
}

}  // namespace
}  // namespace hcf::util
