#include "ds/stack.hpp"

#include <gtest/gtest.h>

#include "ebr_drain_env.hpp"

#include <stack>
#include <vector>

#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::ds {
namespace {

using St = Stack<std::uint64_t>;

TEST(StackSeq, LifoOrder) {
  St s;
  EXPECT_TRUE(s.empty());
  s.push(1);
  s.push(2);
  s.push(3);
  EXPECT_EQ(s.peek(), 3u);
  EXPECT_EQ(s.pop(), 3u);
  EXPECT_EQ(s.pop(), 2u);
  EXPECT_EQ(s.pop(), 1u);
  EXPECT_FALSE(s.pop().has_value());
  EXPECT_TRUE(s.empty());
}

TEST(StackSeq, PushNOrdering) {
  St s;
  s.push(100);
  const std::uint64_t vals[] = {1, 2, 3};
  s.push_n(vals);
  // values[n-1] on top.
  EXPECT_EQ(s.pop(), 3u);
  EXPECT_EQ(s.pop(), 2u);
  EXPECT_EQ(s.pop(), 1u);
  EXPECT_EQ(s.pop(), 100u);
}

TEST(StackSeq, PushNMatchesIndividualPushes) {
  St batch, individual;
  const std::uint64_t vals[] = {5, 6, 7, 8};
  batch.push_n(vals);
  for (auto v : vals) individual.push(v);
  while (!individual.empty()) {
    ASSERT_EQ(batch.pop(), individual.pop());
  }
  EXPECT_TRUE(batch.empty());
}

TEST(StackSeq, PopNTopFirst) {
  St s;
  for (std::uint64_t v = 0; v < 10; ++v) s.push(v);
  std::uint64_t out[4];
  EXPECT_EQ(s.pop_n(std::span<std::uint64_t>(out, 4)), 4u);
  EXPECT_EQ(out[0], 9u);
  EXPECT_EQ(out[3], 6u);
  EXPECT_EQ(s.size_slow(), 6u);
}

TEST(StackSeq, PopNDrainsPastEmpty) {
  St s;
  s.push(1);
  std::uint64_t out[5];
  EXPECT_EQ(s.pop_n(std::span<std::uint64_t>(out, 5)), 1u);
  EXPECT_EQ(s.pop_n(std::span<std::uint64_t>(out, 5)), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(StackSeq, PushNEmptyIsNoop) {
  St s;
  s.push_n({});
  EXPECT_TRUE(s.empty());
}

TEST(StackSeq, RandomizedAgainstStdStack) {
  St s;
  std::stack<std::uint64_t> ref;
  util::Xoshiro256 rng(17);
  for (int i = 0; i < 30000; ++i) {
    if (ref.empty() || rng.next_bounded(2) == 0) {
      const auto v = rng.next();
      s.push(v);
      ref.push(v);
    } else {
      ASSERT_EQ(*s.pop(), ref.top());
      ref.pop();
    }
  }
  EXPECT_EQ(s.size_slow(), ref.size());
  mem::EbrDomain::instance().drain();
}

TEST(StackSeq, TransactionalRollback) {
  St s;
  s.push(1);
  htm::attempt([&] {
    s.push(2);
    (void)s.pop();
    (void)s.pop();
    htm::abort_tx();
  });
  EXPECT_EQ(s.size_slow(), 1u);
  EXPECT_EQ(s.peek(), 1u);
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::ds
