// Multi-threaded conflict detection, strong isolation, and lock/transaction
// interaction of the simulated HTM.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"
#include "sync/tx_lock.hpp"
#include "util/backoff.hpp"

namespace hcf::htm {
namespace {

// Retry helper: run the body transactionally until it commits.
template <typename F>
void run_tx(F&& body) {
  util::ExpBackoff backoff;
  while (!attempt(body)) backoff.pause();
}

TEST(HtmConflict, ConcurrentIncrementsLoseNoUpdates) {
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  alignas(64) std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        run_tx([&] { write(&counter, read(&counter) + 1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(HtmConflict, DisjointWritesDontAbortEachOther) {
  // Two threads hammering different words: conflict aborts should be rare
  // (only orec hash collisions). We assert *correctness* and that both
  // threads made progress without retry storms.
  stats().reset();
  alignas(64) std::uint64_t a = 0;
  alignas(64) std::uint64_t b = 0;
  constexpr int kIters = 20000;
  std::thread t1([&] {
    for (int i = 0; i < kIters; ++i) {
      run_tx([&] { write(&a, read(&a) + 1); });
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < kIters; ++i) {
      run_tx([&] { write(&b, read(&b) + 1); });
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(a, static_cast<std::uint64_t>(kIters));
  EXPECT_EQ(b, static_cast<std::uint64_t>(kIters));
  const auto snap = StatsSnapshot::capture();
  // Aborts should be a small fraction of commits for disjoint access.
  EXPECT_LT(snap.total_aborts(), snap.commits / 4);
}

TEST(HtmConflict, WriteInvalidatesConcurrentReader) {
  // Deterministic interleaving via stage flags: the reader opens a
  // transaction, reads x, then the writer commits a change to x; the
  // reader's next transactional read must abort it (validation).
  alignas(64) std::uint64_t x = 0;
  alignas(64) std::uint64_t y = 0;
  std::atomic<int> stage{0};

  std::thread reader([&] {
    const bool ok = attempt([&] {
      EXPECT_EQ(read(&x), 0u);
      stage.store(1);
      while (stage.load() != 2) util::cpu_relax();
      (void)read(&y);  // revalidation must fire here or at commit
    });
    EXPECT_FALSE(ok);
    EXPECT_EQ(last_abort_code(), AbortCode::Conflict);
  });

  while (stage.load() != 1) util::cpu_relax();
  ASSERT_TRUE(attempt([&] { write(&x, std::uint64_t{1}); }));
  stage.store(2);
  reader.join();
}

TEST(HtmConflict, StrongStoreInvalidatesConcurrentReader) {
  TxCell<std::uint64_t> cell{0};
  alignas(64) std::uint64_t y = 0;
  std::atomic<int> stage{0};

  std::thread reader([&] {
    const bool ok = attempt([&] {
      EXPECT_EQ(cell.read(), 0u);
      stage.store(1);
      while (stage.load() != 2) util::cpu_relax();
      (void)read(&y);
    });
    EXPECT_FALSE(ok);
  });

  while (stage.load() != 1) util::cpu_relax();
  cell.store(42);  // non-transactional, but must doom the reader
  stage.store(2);
  reader.join();
}

TEST(HtmConflict, CommitValidationCatchesLateConflict) {
  // Reader reads x, writer commits, reader writes y and tries to commit:
  // the final read-set validation must reject the commit.
  alignas(64) std::uint64_t x = 0;
  alignas(64) std::uint64_t y = 0;
  std::atomic<int> stage{0};

  std::thread t([&] {
    const bool ok = attempt([&] {
      (void)read(&x);
      write(&y, std::uint64_t{5});  // buffered; no validation triggered
      stage.store(1);
      while (stage.load() != 2) util::cpu_relax();
    });
    EXPECT_FALSE(ok);
  });

  while (stage.load() != 1) util::cpu_relax();
  ASSERT_TRUE(attempt([&] { write(&x, std::uint64_t{7}); }));
  stage.store(2);
  t.join();
  EXPECT_EQ(y, 0u);  // the doomed writer never wrote back
}

TEST(HtmConflict, TransactionsAndLockHoldersExclude) {
  // Mixed-mode stress: some increments run under the elided lock (plain,
  // uninstrumented), others as subscribed transactions. Total must be
  // exact — this exercises subscription, dooming, and the write-back
  // quiescence gate together.
  sync::TxLock lock;
  alignas(64) std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if ((i + t) % 4 == 0) {
          lock.lock();
          // Uninstrumented access, as CombineUnderLock would do: outside a
          // txn, read/write lower to plain atomic loads/stores (the same
          // fast path TxField takes), keeping the mixed-mode access defined
          // while doomed subscribers may still be reading concurrently.
          write(&counter, read(&counter) + 1);
          lock.unlock();
        } else {
          util::ExpBackoff backoff;
          for (;;) {
            lock.wait_until_free();
            const bool ok = attempt([&] {
              lock.subscribe();
              write(&counter, read(&counter) + 1);
            });
            if (ok) break;
            backoff.pause();
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(HtmConflict, SubscribedTxnAbortsWhenLockHeld) {
  sync::TxLock lock;
  lock.lock();
  const bool ok = attempt([&] { lock.subscribe(); });
  EXPECT_FALSE(ok);
  EXPECT_EQ(last_abort_code(), AbortCode::LockBusy);
  lock.unlock();
  EXPECT_TRUE(attempt([&] { lock.subscribe(); }));
}

TEST(HtmConflict, LockAcquisitionDoomsSubscribedTxn) {
  sync::TxLock lock;
  alignas(64) std::uint64_t y = 0;
  std::atomic<int> stage{0};
  std::thread t([&] {
    const bool ok = attempt([&] {
      lock.subscribe();
      stage.store(1);
      while (stage.load() != 2) util::cpu_relax();
      (void)read(&y);  // must observe the doomed subscription
    });
    EXPECT_FALSE(ok);
  });
  while (stage.load() != 1) util::cpu_relax();
  lock.lock();
  stage.store(2);
  t.join();
  lock.unlock();
}

TEST(HtmConflict, WriteWriteConflictAbortsExactlyOneSide) {
  // Both transactions write the same word with distinct values; whichever
  // committed last determines the final value, and the final value must be
  // one of the two (no torn/merged state). Repeat many rounds.
  alignas(64) std::uint64_t x = 0;
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> ready{0};
    std::thread t1([&] {
      ready.fetch_add(1);
      while (ready.load() != 2) util::cpu_relax();
      run_tx([&] { write(&x, std::uint64_t{100}); });
    });
    std::thread t2([&] {
      ready.fetch_add(1);
      while (ready.load() != 2) util::cpu_relax();
      run_tx([&] { write(&x, std::uint64_t{200}); });
    });
    t1.join();
    t2.join();
    EXPECT_TRUE(x == 100 || x == 200);
    x = 0;
  }
}

}  // namespace
}  // namespace hcf::htm
