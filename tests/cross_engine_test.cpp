// Cross-engine interference: the orec table, global epoch, and EBR domain
// are process-global, so independent engines over independent structures
// share them. Running several engines concurrently must not corrupt any of
// them (false orec conflicts are allowed — lost updates are not).
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "adapters/avl_ops.hpp"
#include "adapters/ht_ops.hpp"
#include "adapters/stack_ops.hpp"
#include "core/engine.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::test {
namespace {

TEST(CrossEngine, ThreeEnginesShareTheSubstrate) {
  using Table = ds::HashTable<std::uint64_t, std::uint64_t>;
  using Tree = ds::AvlTree<std::uint64_t>;
  using St = ds::Stack<std::uint64_t>;

  Table table(64);
  Tree tree;
  St stack;
  core::HcfEngine<Table> ht_engine(table, adapters::ht_paper_config(),
                                   adapters::kHtNumArrays);
  core::TleEngine<Tree> tree_engine(tree);
  core::FcEngine<St> stack_engine(stack);

  constexpr int kOps = 6000;
  constexpr std::uint64_t kRange = 64;

  std::vector<std::thread> threads;
  // Two threads per engine, interleaved across engines.
  std::vector<std::vector<std::int64_t>> ht_net(2), tree_net(2);
  std::vector<std::vector<std::uint64_t>> pushed(2), popped(2);

  for (int t = 0; t < 2; ++t) {
    ht_net[t].assign(kRange, 0);
    tree_net[t].assign(kRange, 0);
    threads.emplace_back([&, t] {  // hash table worker
      util::Xoshiro256 rng(100 + t);
      adapters::HtInsertOp<std::uint64_t, std::uint64_t> insert;
      adapters::HtRemoveOp<std::uint64_t, std::uint64_t> remove;
      for (int i = 0; i < kOps; ++i) {
        const auto key = rng.next_bounded(kRange);
        if (rng.next_bounded(2) == 0) {
          insert.set(key, key * 2 + 1);
          ht_engine.execute(insert);
          if (insert.result()) ++ht_net[t][key];
        } else {
          remove.set(key);
          ht_engine.execute(remove);
          if (remove.result()) --ht_net[t][key];
        }
      }
    });
    threads.emplace_back([&, t] {  // AVL worker
      util::Xoshiro256 rng(200 + t);
      adapters::AvlInsertOp<std::uint64_t> insert;
      adapters::AvlRemoveOp<std::uint64_t> remove;
      insert.bind_tree(&tree);
      remove.bind_tree(&tree);
      for (int i = 0; i < kOps; ++i) {
        const auto key = rng.next_bounded(kRange);
        if (rng.next_bounded(2) == 0) {
          insert.set(key);
          tree_engine.execute(insert);
          if (insert.result()) ++tree_net[t][key];
        } else {
          remove.set(key);
          tree_engine.execute(remove);
          if (remove.result()) --tree_net[t][key];
        }
      }
    });
    threads.emplace_back([&, t] {  // stack worker
      util::Xoshiro256 rng(300 + t);
      adapters::StackPushOp<std::uint64_t> push;
      adapters::StackPopOp<std::uint64_t> pop;
      std::uint64_t seq = 0;
      for (int i = 0; i < kOps; ++i) {
        if (rng.next_bounded(2) == 0) {
          const std::uint64_t v = (static_cast<std::uint64_t>(t) << 32) | seq++;
          push.set(v);
          stack_engine.execute(push);
          pushed[t].push_back(v);
        } else {
          stack_engine.execute(pop);
          if (pop.result().has_value()) popped[t].push_back(*pop.result());
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Hash table accounting.
  for (std::uint64_t k = 0; k < kRange; ++k) {
    std::int64_t expected = ht_net[0][k] + ht_net[1][k];
    ASSERT_TRUE(expected == 0 || expected == 1) << k;
    EXPECT_EQ(table.contains(k), expected == 1) << k;
  }
  EXPECT_TRUE(table.check_invariants());
  // Tree accounting.
  for (std::uint64_t k = 0; k < kRange; ++k) {
    std::int64_t expected = tree_net[0][k] + tree_net[1][k];
    ASSERT_TRUE(expected == 0 || expected == 1) << k;
    EXPECT_EQ(tree.contains(k), expected == 1) << k;
  }
  EXPECT_TRUE(tree.check_invariants());
  // Stack accounting.
  std::multiset<std::uint64_t> all_pushed, all_popped;
  for (auto& v : pushed) all_pushed.insert(v.begin(), v.end());
  for (auto& v : popped) all_popped.insert(v.begin(), v.end());
  for (auto v : all_popped) ASSERT_EQ(all_pushed.count(v), 1u);
  std::multiset<std::uint64_t> left = all_pushed;
  for (auto v : all_popped) left.erase(v);
  std::multiset<std::uint64_t> actual;
  stack.for_each([&](std::uint64_t v) { actual.insert(v); });
  EXPECT_EQ(actual, left);

  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::test
