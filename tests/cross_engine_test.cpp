// Cross-engine interference: the orec table, global epoch, and EBR domain
// are process-global, so independent engines over independent structures
// share them. Running several engines concurrently must not corrupt any of
// them (false orec conflicts are allowed — lost updates are not).
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "adapters/stack_ops.hpp"
#include "engine_test_util.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::test {
namespace {

TEST(CrossEngine, ThreeEnginesShareTheSubstrate) {
  using Table = ds::HashTable<std::uint64_t, std::uint64_t>;
  using Tree = ds::AvlTree<std::uint64_t>;
  using St = ds::Stack<std::uint64_t>;

  Table table(64);
  Tree tree;
  St stack;
  core::HcfEngine<Table> ht_engine(table, adapters::ht_paper_config(),
                                   adapters::kHtNumArrays);
  core::TleEngine<Tree> tree_engine(tree);
  core::FcEngine<St> stack_engine(stack);

  constexpr int kOps = 6000;
  constexpr std::uint64_t kRange = 64;

  std::vector<std::thread> threads;
  // Two threads per engine, interleaved across engines.
  std::vector<std::vector<std::int64_t>> ht_net(2), tree_net(2);
  std::vector<std::vector<std::uint64_t>> pushed(2), popped(2);

  for (int t = 0; t < 2; ++t) {
    ht_net[t].assign(kRange, 0);
    tree_net[t].assign(kRange, 0);
    threads.emplace_back([&, t] {  // hash table worker
      util::Xoshiro256 rng(100 + t);
      adapters::HtInsertOp<std::uint64_t, std::uint64_t> insert;
      adapters::HtRemoveOp<std::uint64_t, std::uint64_t> remove;
      for (int i = 0; i < kOps; ++i) {
        const auto key = rng.next_bounded(kRange);
        if (rng.next_bounded(2) == 0) {
          insert.set(key, key * 2 + 1);
          ht_engine.execute(insert);
          if (insert.result()) ++ht_net[t][key];
        } else {
          remove.set(key);
          ht_engine.execute(remove);
          if (remove.result()) --ht_net[t][key];
        }
      }
    });
    threads.emplace_back([&, t] {  // AVL worker
      util::Xoshiro256 rng(200 + t);
      adapters::AvlInsertOp<std::uint64_t> insert;
      adapters::AvlRemoveOp<std::uint64_t> remove;
      insert.bind_tree(&tree);
      remove.bind_tree(&tree);
      for (int i = 0; i < kOps; ++i) {
        const auto key = rng.next_bounded(kRange);
        if (rng.next_bounded(2) == 0) {
          insert.set(key);
          tree_engine.execute(insert);
          if (insert.result()) ++tree_net[t][key];
        } else {
          remove.set(key);
          tree_engine.execute(remove);
          if (remove.result()) --tree_net[t][key];
        }
      }
    });
    threads.emplace_back([&, t] {  // stack worker
      util::Xoshiro256 rng(300 + t);
      adapters::StackPushOp<std::uint64_t> push;
      adapters::StackPopOp<std::uint64_t> pop;
      std::uint64_t seq = 0;
      for (int i = 0; i < kOps; ++i) {
        if (rng.next_bounded(2) == 0) {
          const std::uint64_t v = (static_cast<std::uint64_t>(t) << 32) | seq++;
          push.set(v);
          stack_engine.execute(push);
          pushed[t].push_back(v);
        } else {
          stack_engine.execute(pop);
          if (pop.result().has_value()) popped[t].push_back(*pop.result());
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Hash table accounting.
  for (std::uint64_t k = 0; k < kRange; ++k) {
    std::int64_t expected = ht_net[0][k] + ht_net[1][k];
    ASSERT_TRUE(expected == 0 || expected == 1) << k;
    EXPECT_EQ(table.contains(k), expected == 1) << k;
  }
  EXPECT_TRUE(table.check_invariants());
  // Tree accounting.
  for (std::uint64_t k = 0; k < kRange; ++k) {
    std::int64_t expected = tree_net[0][k] + tree_net[1][k];
    ASSERT_TRUE(expected == 0 || expected == 1) << k;
    EXPECT_EQ(tree.contains(k), expected == 1) << k;
  }
  EXPECT_TRUE(tree.check_invariants());
  // Stack accounting.
  std::multiset<std::uint64_t> all_pushed, all_popped;
  for (auto& v : pushed) all_pushed.insert(v.begin(), v.end());
  for (auto& v : popped) all_popped.insert(v.begin(), v.end());
  for (auto v : all_popped) ASSERT_EQ(all_pushed.count(v), 1u);
  std::multiset<std::uint64_t> left = all_pushed;
  for (auto v : all_popped) left.erase(v);
  std::multiset<std::uint64_t> actual;
  stack.for_each([&](std::uint64_t v) { actual.insert(v); });
  EXPECT_EQ(actual, left);

  mem::EbrDomain::instance().drain();
}

// ---- Sequential-spec checks over the unified engine list -------------------
// Every engine is now an instantiation of the same phase machine; a scripted
// single-threaded sequence must therefore produce the exact sequential-spec
// outcome regardless of which policy/mode drives it.

using Dq = ds::Deque<std::uint64_t>;
using Pq = ds::SkipListPq<std::uint64_t>;

HcfConfig deque_cfg() {
  return {adapters::deque_paper_config(), adapters::kDequeNumArrays};
}
HcfConfig pq_cfg() {
  return {adapters::pq_paper_config(), adapters::kPqNumArrays};
}

template <typename Engine>
void check_deque_sequential_spec() {
  Dq dq;
  auto engine = EngineMaker<Engine>::make(dq, deque_cfg());
  adapters::PushLeftOp<std::uint64_t> push_left;
  adapters::PushRightOp<std::uint64_t> push_right;
  adapters::PopLeftOp<std::uint64_t> pop_left;
  adapters::PopRightOp<std::uint64_t> pop_right;
  for (std::uint64_t v = 0; v < 5; ++v) {
    push_left.set(v);
    engine->execute(push_left);
  }
  for (std::uint64_t v = 5; v < 10; ++v) {
    push_right.set(v);
    engine->execute(push_right);
  }
  // Deque is now 4 3 2 1 0 5 6 7 8 9.
  for (std::uint64_t expected : {4u, 3u, 2u, 1u, 0u}) {
    engine->execute(pop_left);
    ASSERT_EQ(pop_left.result(), expected) << Engine::name();
  }
  for (std::uint64_t expected : {9u, 8u, 7u, 6u, 5u}) {
    engine->execute(pop_right);
    ASSERT_EQ(pop_right.result(), expected) << Engine::name();
  }
  engine->execute(pop_left);
  EXPECT_FALSE(pop_left.result().has_value()) << Engine::name();
  engine->execute(pop_right);
  EXPECT_FALSE(pop_right.result().has_value()) << Engine::name();
  EXPECT_TRUE(dq.check_invariants()) << Engine::name();
}

template <typename Engine>
void check_pq_sequential_spec() {
  Pq pq;
  auto engine = EngineMaker<Engine>::make(pq, pq_cfg());
  adapters::PqInsertOp<std::uint64_t> insert;
  adapters::PqRemoveMinOp<std::uint64_t> remove_min;
  for (std::uint64_t k : {5u, 1u, 9u, 3u, 7u, 0u, 8u}) {
    insert.set(k);
    engine->execute(insert);
  }
  for (std::uint64_t expected : {0u, 1u, 3u, 5u, 7u, 8u, 9u}) {
    engine->execute(remove_min);
    ASSERT_EQ(remove_min.result(), expected) << Engine::name();
  }
  engine->execute(remove_min);
  EXPECT_FALSE(remove_min.result().has_value()) << Engine::name();
  EXPECT_TRUE(pq.check_invariants()) << Engine::name();
}

TEST(CrossEngine, EveryEngineMeetsDequeSequentialSpec) {
  check_deque_sequential_spec<Engines<Dq>::Lock>();
  check_deque_sequential_spec<Engines<Dq>::Tle>();
  check_deque_sequential_spec<Engines<Dq>::Scm>();
  check_deque_sequential_spec<Engines<Dq>::CoreLock>();
  check_deque_sequential_spec<Engines<Dq>::Fc>();
  check_deque_sequential_spec<Engines<Dq>::TleFc>();
  check_deque_sequential_spec<Engines<Dq>::Hcf>();
  check_deque_sequential_spec<Engines<Dq>::Hcf1C>();
  mem::EbrDomain::instance().drain();
}

TEST(CrossEngine, EveryEngineMeetsPqSequentialSpec) {
  check_pq_sequential_spec<Engines<Pq>::Lock>();
  check_pq_sequential_spec<Engines<Pq>::Tle>();
  check_pq_sequential_spec<Engines<Pq>::Scm>();
  check_pq_sequential_spec<Engines<Pq>::CoreLock>();
  check_pq_sequential_spec<Engines<Pq>::Fc>();
  check_pq_sequential_spec<Engines<Pq>::TleFc>();
  check_pq_sequential_spec<Engines<Pq>::Hcf>();
  check_pq_sequential_spec<Engines<Pq>::Hcf1C>();
  mem::EbrDomain::instance().drain();
}

// ---- Concurrent cross-structure run per unified engine ---------------------
// A deque engine and a PQ engine of the same family run side by side (shared
// orec table / epoch / EBR domain); both structures must satisfy their
// multiset accounting afterwards.
template <typename DqEngine, typename PqEngine>
void run_deque_and_pq_concurrently() {
  constexpr int kOps = 3000;
  Dq dq;
  Pq pq;
  auto dq_engine = EngineMaker<DqEngine>::make(dq, deque_cfg());
  auto pq_engine = EngineMaker<PqEngine>::make(pq, pq_cfg());

  std::vector<std::vector<std::uint64_t>> dq_pushed(2), dq_popped(2);
  std::vector<std::vector<std::uint64_t>> pq_inserted(2), pq_removed(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {  // deque worker
      util::Xoshiro256 rng(400 + t);
      adapters::PushLeftOp<std::uint64_t> push_left;
      adapters::PopRightOp<std::uint64_t> pop_right;
      std::uint64_t seq = 0;
      for (int i = 0; i < kOps; ++i) {
        if (rng.next_bounded(2) == 0) {
          const std::uint64_t v = (static_cast<std::uint64_t>(t) << 32) | seq++;
          push_left.set(v);
          dq_engine->execute(push_left);
          dq_pushed[t].push_back(v);
        } else {
          dq_engine->execute(pop_right);
          if (pop_right.result().has_value()) {
            dq_popped[t].push_back(*pop_right.result());
          }
        }
      }
    });
    threads.emplace_back([&, t] {  // priority-queue worker
      util::Xoshiro256 rng(500 + t);
      adapters::PqInsertOp<std::uint64_t> insert;
      adapters::PqRemoveMinOp<std::uint64_t> remove_min;
      std::uint64_t seq = 0;
      for (int i = 0; i < kOps; ++i) {
        if (rng.next_bounded(2) == 0) {
          const std::uint64_t key = (rng.next_bounded(1 << 16) << 32) |
                                    (static_cast<std::uint64_t>(t) << 24) |
                                    seq++;
          insert.set(key);
          pq_engine->execute(insert);
          pq_inserted[t].push_back(key);
        } else {
          pq_engine->execute(remove_min);
          if (remove_min.result().has_value()) {
            pq_removed[t].push_back(*remove_min.result());
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::multiset<std::uint64_t> pushed, popped;
  for (auto& v : dq_pushed) pushed.insert(v.begin(), v.end());
  for (auto& v : dq_popped) popped.insert(v.begin(), v.end());
  for (std::uint64_t v : popped) {
    ASSERT_EQ(pushed.count(v), 1u) << DqEngine::name();
    ASSERT_EQ(popped.count(v), 1u) << DqEngine::name();
  }
  std::multiset<std::uint64_t> expected_left = pushed;
  for (std::uint64_t v : popped) expected_left.erase(v);
  std::multiset<std::uint64_t> actual_left;
  dq.for_each([&](std::uint64_t v) { actual_left.insert(v); });
  EXPECT_EQ(actual_left, expected_left) << DqEngine::name();
  EXPECT_TRUE(dq.check_invariants()) << DqEngine::name();

  std::multiset<std::uint64_t> inserted, removed;
  for (auto& v : pq_inserted) inserted.insert(v.begin(), v.end());
  for (auto& v : pq_removed) removed.insert(v.begin(), v.end());
  for (std::uint64_t k : removed) {
    ASSERT_EQ(inserted.count(k), 1u) << PqEngine::name();
    ASSERT_EQ(removed.count(k), 1u) << PqEngine::name();
  }
  std::multiset<std::uint64_t> pq_expected = inserted;
  for (std::uint64_t k : removed) pq_expected.erase(k);
  std::multiset<std::uint64_t> pq_actual;
  while (auto k = pq.remove_min()) pq_actual.insert(*k);
  EXPECT_EQ(pq_actual, pq_expected) << PqEngine::name();
  EXPECT_TRUE(pq.check_invariants()) << PqEngine::name();
  mem::EbrDomain::instance().drain();
}

TEST(CrossEngine, UnifiedEnginesShareSubstrateAcrossDequeAndPq) {
  run_deque_and_pq_concurrently<Engines<Dq>::Lock, Engines<Pq>::Lock>();
  run_deque_and_pq_concurrently<Engines<Dq>::Tle, Engines<Pq>::Tle>();
  run_deque_and_pq_concurrently<Engines<Dq>::Fc, Engines<Pq>::Fc>();
  run_deque_and_pq_concurrently<Engines<Dq>::TleFc, Engines<Pq>::TleFc>();
  run_deque_and_pq_concurrently<Engines<Dq>::Hcf, Engines<Pq>::Hcf>();
  run_deque_and_pq_concurrently<Engines<Dq>::Hcf1C, Engines<Pq>::Hcf1C>();
}

}  // namespace
}  // namespace hcf::test
