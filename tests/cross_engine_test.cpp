// Cross-engine interference: the orec table, global epoch, and EBR domain
// are process-global, so independent engines over independent structures
// share them. Running several engines concurrently must not corrupt any of
// them (false orec conflicts are allowed — lost updates are not).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "adapters/stack_ops.hpp"
#include "engine_test_util.hpp"
#include "harness/linearizability.hpp"
#include "mem/ebr.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"

namespace hcf::test {
namespace {

TEST(CrossEngine, ThreeEnginesShareTheSubstrate) {
  using Table = ds::HashTable<std::uint64_t, std::uint64_t>;
  using Tree = ds::AvlTree<std::uint64_t>;
  using St = ds::Stack<std::uint64_t>;

  Table table(64);
  Tree tree;
  St stack;
  core::HcfEngine<Table> ht_engine(table, adapters::ht_paper_config(),
                                   adapters::kHtNumArrays);
  core::TleEngine<Tree> tree_engine(tree);
  core::FcEngine<St> stack_engine(stack);

  constexpr int kOps = 6000;
  constexpr std::uint64_t kRange = 64;

  std::vector<std::thread> threads;
  // Two threads per engine, interleaved across engines.
  std::vector<std::vector<std::int64_t>> ht_net(2), tree_net(2);
  std::vector<std::vector<std::uint64_t>> pushed(2), popped(2);

  for (int t = 0; t < 2; ++t) {
    ht_net[t].assign(kRange, 0);
    tree_net[t].assign(kRange, 0);
    threads.emplace_back([&, t] {  // hash table worker
      util::Xoshiro256 rng(100 + t);
      adapters::HtInsertOp<std::uint64_t, std::uint64_t> insert;
      adapters::HtRemoveOp<std::uint64_t, std::uint64_t> remove;
      for (int i = 0; i < kOps; ++i) {
        const auto key = rng.next_bounded(kRange);
        if (rng.next_bounded(2) == 0) {
          insert.set(key, key * 2 + 1);
          ht_engine.execute(insert);
          if (insert.result()) ++ht_net[t][key];
        } else {
          remove.set(key);
          ht_engine.execute(remove);
          if (remove.result()) --ht_net[t][key];
        }
      }
    });
    threads.emplace_back([&, t] {  // AVL worker
      util::Xoshiro256 rng(200 + t);
      adapters::AvlInsertOp<std::uint64_t> insert;
      adapters::AvlRemoveOp<std::uint64_t> remove;
      insert.bind_tree(&tree);
      remove.bind_tree(&tree);
      for (int i = 0; i < kOps; ++i) {
        const auto key = rng.next_bounded(kRange);
        if (rng.next_bounded(2) == 0) {
          insert.set(key);
          tree_engine.execute(insert);
          if (insert.result()) ++tree_net[t][key];
        } else {
          remove.set(key);
          tree_engine.execute(remove);
          if (remove.result()) --tree_net[t][key];
        }
      }
    });
    threads.emplace_back([&, t] {  // stack worker
      util::Xoshiro256 rng(300 + t);
      adapters::StackPushOp<std::uint64_t> push;
      adapters::StackPopOp<std::uint64_t> pop;
      std::uint64_t seq = 0;
      for (int i = 0; i < kOps; ++i) {
        if (rng.next_bounded(2) == 0) {
          const std::uint64_t v = (static_cast<std::uint64_t>(t) << 32) | seq++;
          push.set(v);
          stack_engine.execute(push);
          pushed[t].push_back(v);
        } else {
          stack_engine.execute(pop);
          if (pop.result().has_value()) popped[t].push_back(*pop.result());
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Hash table accounting.
  for (std::uint64_t k = 0; k < kRange; ++k) {
    std::int64_t expected = ht_net[0][k] + ht_net[1][k];
    ASSERT_TRUE(expected == 0 || expected == 1) << k;
    EXPECT_EQ(table.contains(k), expected == 1) << k;
  }
  EXPECT_TRUE(table.check_invariants());
  // Tree accounting.
  for (std::uint64_t k = 0; k < kRange; ++k) {
    std::int64_t expected = tree_net[0][k] + tree_net[1][k];
    ASSERT_TRUE(expected == 0 || expected == 1) << k;
    EXPECT_EQ(tree.contains(k), expected == 1) << k;
  }
  EXPECT_TRUE(tree.check_invariants());
  // Stack accounting.
  std::multiset<std::uint64_t> all_pushed, all_popped;
  for (auto& v : pushed) all_pushed.insert(v.begin(), v.end());
  for (auto& v : popped) all_popped.insert(v.begin(), v.end());
  for (auto v : all_popped) ASSERT_EQ(all_pushed.count(v), 1u);
  std::multiset<std::uint64_t> left = all_pushed;
  for (auto v : all_popped) left.erase(v);
  std::multiset<std::uint64_t> actual;
  stack.for_each([&](std::uint64_t v) { actual.insert(v); });
  EXPECT_EQ(actual, left);

  mem::EbrDomain::instance().drain();
}

// ---- Sequential-spec checks over the unified engine list -------------------
// Every engine is now an instantiation of the same phase machine; a scripted
// single-threaded sequence must therefore produce the exact sequential-spec
// outcome regardless of which policy/mode drives it.

using Dq = ds::Deque<std::uint64_t>;
using Pq = ds::SkipListPq<std::uint64_t>;

HcfConfig deque_cfg() {
  return {adapters::deque_paper_config(), adapters::kDequeNumArrays};
}
HcfConfig pq_cfg() {
  return {adapters::pq_paper_config(), adapters::kPqNumArrays};
}

template <typename Engine>
void check_deque_sequential_spec() {
  Dq dq;
  auto engine = EngineMaker<Engine>::make(dq, deque_cfg());
  adapters::PushLeftOp<std::uint64_t> push_left;
  adapters::PushRightOp<std::uint64_t> push_right;
  adapters::PopLeftOp<std::uint64_t> pop_left;
  adapters::PopRightOp<std::uint64_t> pop_right;
  for (std::uint64_t v = 0; v < 5; ++v) {
    push_left.set(v);
    engine->execute(push_left);
  }
  for (std::uint64_t v = 5; v < 10; ++v) {
    push_right.set(v);
    engine->execute(push_right);
  }
  // Deque is now 4 3 2 1 0 5 6 7 8 9.
  for (std::uint64_t expected : {4u, 3u, 2u, 1u, 0u}) {
    engine->execute(pop_left);
    ASSERT_EQ(pop_left.result(), expected) << Engine::name();
  }
  for (std::uint64_t expected : {9u, 8u, 7u, 6u, 5u}) {
    engine->execute(pop_right);
    ASSERT_EQ(pop_right.result(), expected) << Engine::name();
  }
  engine->execute(pop_left);
  EXPECT_FALSE(pop_left.result().has_value()) << Engine::name();
  engine->execute(pop_right);
  EXPECT_FALSE(pop_right.result().has_value()) << Engine::name();
  EXPECT_TRUE(dq.check_invariants()) << Engine::name();
}

template <typename Engine>
void check_pq_sequential_spec() {
  Pq pq;
  auto engine = EngineMaker<Engine>::make(pq, pq_cfg());
  adapters::PqInsertOp<std::uint64_t> insert;
  adapters::PqRemoveMinOp<std::uint64_t> remove_min;
  for (std::uint64_t k : {5u, 1u, 9u, 3u, 7u, 0u, 8u}) {
    insert.set(k);
    engine->execute(insert);
  }
  for (std::uint64_t expected : {0u, 1u, 3u, 5u, 7u, 8u, 9u}) {
    engine->execute(remove_min);
    ASSERT_EQ(remove_min.result(), expected) << Engine::name();
  }
  engine->execute(remove_min);
  EXPECT_FALSE(remove_min.result().has_value()) << Engine::name();
  EXPECT_TRUE(pq.check_invariants()) << Engine::name();
}

TEST(CrossEngine, EveryEngineMeetsDequeSequentialSpec) {
  check_deque_sequential_spec<Engines<Dq>::Lock>();
  check_deque_sequential_spec<Engines<Dq>::Tle>();
  check_deque_sequential_spec<Engines<Dq>::Scm>();
  check_deque_sequential_spec<Engines<Dq>::CoreLock>();
  check_deque_sequential_spec<Engines<Dq>::Fc>();
  check_deque_sequential_spec<Engines<Dq>::TleFc>();
  check_deque_sequential_spec<Engines<Dq>::Hcf>();
  check_deque_sequential_spec<Engines<Dq>::Hcf1C>();
  mem::EbrDomain::instance().drain();
}

TEST(CrossEngine, EveryEngineMeetsPqSequentialSpec) {
  check_pq_sequential_spec<Engines<Pq>::Lock>();
  check_pq_sequential_spec<Engines<Pq>::Tle>();
  check_pq_sequential_spec<Engines<Pq>::Scm>();
  check_pq_sequential_spec<Engines<Pq>::CoreLock>();
  check_pq_sequential_spec<Engines<Pq>::Fc>();
  check_pq_sequential_spec<Engines<Pq>::TleFc>();
  check_pq_sequential_spec<Engines<Pq>::Hcf>();
  check_pq_sequential_spec<Engines<Pq>::Hcf1C>();
  mem::EbrDomain::instance().drain();
}

// ---- Concurrent cross-structure run per unified engine ---------------------
// A deque engine and a PQ engine of the same family run side by side (shared
// orec table / epoch / EBR domain); both structures must satisfy their
// multiset accounting afterwards.
template <typename DqEngine, typename PqEngine>
void run_deque_and_pq_concurrently() {
  constexpr int kOps = 3000;
  Dq dq;
  Pq pq;
  auto dq_engine = EngineMaker<DqEngine>::make(dq, deque_cfg());
  auto pq_engine = EngineMaker<PqEngine>::make(pq, pq_cfg());

  std::vector<std::vector<std::uint64_t>> dq_pushed(2), dq_popped(2);
  std::vector<std::vector<std::uint64_t>> pq_inserted(2), pq_removed(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {  // deque worker
      util::Xoshiro256 rng(400 + t);
      adapters::PushLeftOp<std::uint64_t> push_left;
      adapters::PopRightOp<std::uint64_t> pop_right;
      std::uint64_t seq = 0;
      for (int i = 0; i < kOps; ++i) {
        if (rng.next_bounded(2) == 0) {
          const std::uint64_t v = (static_cast<std::uint64_t>(t) << 32) | seq++;
          push_left.set(v);
          dq_engine->execute(push_left);
          dq_pushed[t].push_back(v);
        } else {
          dq_engine->execute(pop_right);
          if (pop_right.result().has_value()) {
            dq_popped[t].push_back(*pop_right.result());
          }
        }
      }
    });
    threads.emplace_back([&, t] {  // priority-queue worker
      util::Xoshiro256 rng(500 + t);
      adapters::PqInsertOp<std::uint64_t> insert;
      adapters::PqRemoveMinOp<std::uint64_t> remove_min;
      std::uint64_t seq = 0;
      for (int i = 0; i < kOps; ++i) {
        if (rng.next_bounded(2) == 0) {
          const std::uint64_t key = (rng.next_bounded(1 << 16) << 32) |
                                    (static_cast<std::uint64_t>(t) << 24) |
                                    seq++;
          insert.set(key);
          pq_engine->execute(insert);
          pq_inserted[t].push_back(key);
        } else {
          pq_engine->execute(remove_min);
          if (remove_min.result().has_value()) {
            pq_removed[t].push_back(*remove_min.result());
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::multiset<std::uint64_t> pushed, popped;
  for (auto& v : dq_pushed) pushed.insert(v.begin(), v.end());
  for (auto& v : dq_popped) popped.insert(v.begin(), v.end());
  for (std::uint64_t v : popped) {
    ASSERT_EQ(pushed.count(v), 1u) << DqEngine::name();
    ASSERT_EQ(popped.count(v), 1u) << DqEngine::name();
  }
  std::multiset<std::uint64_t> expected_left = pushed;
  for (std::uint64_t v : popped) expected_left.erase(v);
  std::multiset<std::uint64_t> actual_left;
  dq.for_each([&](std::uint64_t v) { actual_left.insert(v); });
  EXPECT_EQ(actual_left, expected_left) << DqEngine::name();
  EXPECT_TRUE(dq.check_invariants()) << DqEngine::name();

  std::multiset<std::uint64_t> inserted, removed;
  for (auto& v : pq_inserted) inserted.insert(v.begin(), v.end());
  for (auto& v : pq_removed) removed.insert(v.begin(), v.end());
  for (std::uint64_t k : removed) {
    ASSERT_EQ(inserted.count(k), 1u) << PqEngine::name();
    ASSERT_EQ(removed.count(k), 1u) << PqEngine::name();
  }
  std::multiset<std::uint64_t> pq_expected = inserted;
  for (std::uint64_t k : removed) pq_expected.erase(k);
  std::multiset<std::uint64_t> pq_actual;
  while (auto k = pq.remove_min()) pq_actual.insert(*k);
  EXPECT_EQ(pq_actual, pq_expected) << PqEngine::name();
  EXPECT_TRUE(pq.check_invariants()) << PqEngine::name();
  mem::EbrDomain::instance().drain();
}

TEST(CrossEngine, UnifiedEnginesShareSubstrateAcrossDequeAndPq) {
  run_deque_and_pq_concurrently<Engines<Dq>::Lock, Engines<Pq>::Lock>();
  run_deque_and_pq_concurrently<Engines<Dq>::Tle, Engines<Pq>::Tle>();
  run_deque_and_pq_concurrently<Engines<Dq>::Fc, Engines<Pq>::Fc>();
  run_deque_and_pq_concurrently<Engines<Dq>::TleFc, Engines<Pq>::TleFc>();
  run_deque_and_pq_concurrently<Engines<Dq>::Hcf, Engines<Pq>::Hcf>();
  run_deque_and_pq_concurrently<Engines<Dq>::Hcf1C, Engines<Pq>::Hcf1C>();
}

// ---- Sharded variants ------------------------------------------------------
// The sharded meta-engine partitions the hash table across N independent
// HCF instances. Per-shard runs must still meet the sequential spec, and
// the whole — including the cross-shard size() path — must stay
// linearizable: sharding changes where state lives, never what histories
// are admissible.

using ShardTable = ds::HashTable<std::uint64_t, std::uint64_t>;
using ShardedHcf = core::ShardedEngine<core::HcfEngine<ShardTable>>;

struct ShardedFixture {
  std::vector<std::unique_ptr<ShardTable>> tables;
  std::vector<ShardTable*> ptrs;
  std::unique_ptr<ShardedHcf> engine;

  explicit ShardedFixture(std::size_t shards) {
    for (std::size_t i = 0; i < shards; ++i) {
      tables.push_back(std::make_unique<ShardTable>(64));
      ptrs.push_back(tables.back().get());
    }
    engine = std::make_unique<ShardedHcf>(std::span<ShardTable* const>(ptrs),
                                          adapters::ht_paper_config(),
                                          adapters::kHtNumArrays);
  }
};

void check_sharded_ht_sequential_spec(std::size_t shards) {
  ShardedFixture f(shards);
  adapters::HtInsertOp<std::uint64_t, std::uint64_t> insert;
  adapters::HtRemoveOp<std::uint64_t, std::uint64_t> remove;
  adapters::HtFindOp<std::uint64_t, std::uint64_t> find;

  for (std::uint64_t k = 0; k < 20; ++k) {
    insert.set(k, k * 3 + 1);
    f.engine->execute(insert);
    ASSERT_TRUE(insert.result()) << shards << " shards, key " << k;
  }
  ASSERT_EQ(f.engine->size(), 20u) << shards << " shards";
  // Re-insert updates in place (set semantics of HashTable::insert).
  insert.set(5, 999);
  f.engine->execute(insert);
  EXPECT_FALSE(insert.result()) << shards << " shards";
  find.set(5);
  f.engine->execute(find);
  ASSERT_TRUE(find.result().has_value());
  EXPECT_EQ(*find.result(), 999u) << shards << " shards";

  for (std::uint64_t k = 0; k < 20; k += 2) {
    remove.set(k);
    f.engine->execute(remove);
    ASSERT_TRUE(remove.result()) << shards << " shards, key " << k;
  }
  remove.set(4);
  f.engine->execute(remove);
  EXPECT_FALSE(remove.result()) << shards << " shards";
  ASSERT_EQ(f.engine->size(), 10u) << shards << " shards";

  for (std::uint64_t k = 0; k < 20; ++k) {
    find.set(k);
    f.engine->execute(find);
    EXPECT_EQ(find.result().has_value(), k % 2 == 1)
        << shards << " shards, key " << k;
  }
  for (std::size_t s = 0; s < shards; ++s) {
    EXPECT_TRUE(f.tables[s]->check_invariants()) << shards << " shards";
  }
}

TEST(CrossEngine, ShardedHtMeetsSequentialSpec) {
  check_sharded_ht_sequential_spec(1);
  check_sharded_ht_sequential_spec(2);
  check_sharded_ht_sequential_spec(8);
  mem::EbrDomain::instance().drain();
}

// Sequential specification of the sharded hash table as one abstract map,
// with whole-structure Size as a first-class operation (the cross-shard
// all-lock path must linearize against the per-shard fast paths).
struct ShardedMapModel {
  using State = std::map<std::uint64_t, std::uint64_t>;
  struct Op {
    enum Kind : std::uint8_t { Find, Insert, Remove, Size };
    Kind kind = Find;
    std::uint64_t key = 0;
    std::uint64_t value = 0;     // Insert argument
    bool ok = false;             // Insert ("was new") / Remove ("was present")
    bool found = false;          // Find: key present
    std::uint64_t observed = 0;  // Find: value seen; Size: count seen
  };

  static bool apply(State& s, const Op& op) {
    switch (op.kind) {
      case Op::Find: {
        const auto it = s.find(op.key);
        if (op.found != (it != s.end())) return false;
        return !op.found || it->second == op.observed;
      }
      case Op::Insert: {
        const bool fresh = s.find(op.key) == s.end();
        if (op.ok != fresh) return false;
        s[op.key] = op.value;  // set semantics: update in place when present
        return true;
      }
      case Op::Remove: {
        if (op.ok != (s.find(op.key) != s.end())) return false;
        s.erase(op.key);
        return true;
      }
      case Op::Size:
        return op.observed == s.size();
    }
    return false;
  }
};

using ShardedTimedOp = harness::TimedOp<ShardedMapModel::Op>;

// Barrier-separated rounds of randomized map ops on a tiny key space;
// thread 0 additionally issues one cross-shard size() per round.
bool sharded_history_linearizable(std::size_t shards, int num_threads,
                                  int rounds, int ops_per_round,
                                  std::uint64_t seed) {
  using MOp = ShardedMapModel::Op;
  ShardedFixture f(shards);
  harness::HistoryClock clock;
  std::vector<std::vector<std::vector<ShardedTimedOp>>> per_round(
      static_cast<std::size_t>(rounds));
  for (auto& r : per_round) r.resize(static_cast<std::size_t>(num_threads));
  util::SpinBarrier barrier(static_cast<std::size_t>(num_threads));
  std::vector<harness::HistoryRecorder<MOp>> recorders(
      static_cast<std::size_t>(num_threads),
      harness::HistoryRecorder<MOp>(clock));

  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(seed + static_cast<std::uint64_t>(t) * 77);
      adapters::HtInsertOp<std::uint64_t, std::uint64_t> insert;
      adapters::HtRemoveOp<std::uint64_t, std::uint64_t> remove;
      adapters::HtFindOp<std::uint64_t, std::uint64_t> find;
      auto& rec = recorders[static_cast<std::size_t>(t)];
      for (int r = 0; r < rounds; ++r) {
        barrier.arrive_and_wait();
        rec.clear();
        for (int i = 0; i < ops_per_round; ++i) {
          // Keys 0..5 scatter across shards; low cardinality keeps the
          // abstract state set small and the contention high.
          const std::uint64_t key = rng.next_bounded(6);
          const auto seq = rec.invoke();
          if (t == 0 && i == 0) {
            const std::size_t n = f.engine->size();
            MOp op;
            op.kind = MOp::Size;
            op.observed = n;
            rec.response(seq, op);
            continue;
          }
          switch (rng.next_bounded(3)) {
            case 0: {
              const std::uint64_t value = rng.next_bounded(1000);
              insert.set(key, value);
              f.engine->execute(insert);
              MOp op;
              op.kind = MOp::Insert;
              op.key = key;
              op.value = value;
              op.ok = insert.result();
              rec.response(seq, op);
              break;
            }
            case 1: {
              remove.set(key);
              f.engine->execute(remove);
              MOp op;
              op.kind = MOp::Remove;
              op.key = key;
              op.ok = remove.result();
              rec.response(seq, op);
              break;
            }
            default: {
              find.set(key);
              f.engine->execute(find);
              MOp op;
              op.kind = MOp::Find;
              op.key = key;
              op.found = find.result().has_value();
              op.observed = op.found ? *find.result() : 0;
              rec.response(seq, op);
            }
          }
        }
        barrier.arrive_and_wait();  // quiesce: round boundary
        per_round[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)] =
            rec.ops();
      }
    });
  }
  for (auto& th : threads) th.join();

  std::vector<std::vector<ShardedTimedOp>> merged;
  for (auto& round : per_round) {
    merged.push_back(harness::merge_histories(std::move(round)));
  }
  return harness::check_rounds<ShardedMapModel>(merged, {});
}

TEST(CrossEngine, ShardedHtHistoriesLinearizable) {
  EXPECT_TRUE(sharded_history_linearizable(1, 3, 24, 4, 0xA1));
  EXPECT_TRUE(sharded_history_linearizable(2, 3, 24, 4, 0xB2));
  EXPECT_TRUE(sharded_history_linearizable(8, 3, 24, 4, 0xC3));
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::test
