// Sequential data-structure tests retire removed nodes through EBR but have
// no reason to drain mid-test. LeakSanitizer scans after the domain's
// per-thread retire lists are torn down, so retired-but-undrained nodes
// would read as direct leaks. Including this header registers a gtest
// environment that flushes the domain once, after the last test in the
// process — mirroring the explicit drain() the concurrency tests do inline
// (see docs/SANITIZERS.md, "Leak checking").
#pragma once

#include <gtest/gtest.h>

#include "mem/ebr.hpp"

namespace hcf::test {

class DrainEbrAtExit : public ::testing::Environment {
 public:
  void TearDown() override { mem::EbrDomain::instance().drain(); }
};

inline ::testing::Environment* const kDrainEbrAtExit =
    ::testing::AddGlobalTestEnvironment(new DrainEbrAtExit());

}  // namespace hcf::test
