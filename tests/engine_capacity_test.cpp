// Failure injection: shrink the simulated HTM's capacity so speculative
// paths abort deterministically, and verify every engine still completes
// every operation exactly once through its fallback machinery.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "engine_test_util.hpp"
#include "mem/ebr.hpp"
#include "sim_htm/config.hpp"
#include "util/rng.hpp"

namespace hcf::test {
namespace {

using Table = ds::HashTable<std::uint64_t, std::uint64_t>;

HcfConfig ht_config() {
  return {adapters::ht_paper_config(), adapters::kHtNumArrays};
}

template <typename Engine>
class EngineCapacityTest : public ::testing::Test {};

using EngineTypes =
    ::testing::Types<Engines<Table>::Tle, Engines<Table>::Scm,
                     Engines<Table>::CoreLock, Engines<Table>::TleFc,
                     Engines<Table>::Hcf, Engines<Table>::Hcf1C>;
TYPED_TEST_SUITE(EngineCapacityTest, EngineTypes);

TYPED_TEST(EngineCapacityTest, TinyReadCapacityForcesFallbacks) {
  // 6 read slots is below what a table op needs -> every speculative
  // attempt capacity-aborts; everything must complete under the lock.
  htm::ScopedCapacity caps(6, 1024);
  Table table(64);
  auto engine = EngineMaker<TypeParam>::make(table, ht_config());
  constexpr int kThreads = 3;
  constexpr int kOps = 2000;
  std::vector<std::vector<std::int64_t>> net(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    net[t].assign(64, 0);
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(42 + t);
      adapters::HtInsertOp<std::uint64_t, std::uint64_t> insert;
      adapters::HtRemoveOp<std::uint64_t, std::uint64_t> remove;
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t key = rng.next_bounded(64);
        if (rng.next_bounded(2) == 0) {
          insert.set(key, key * 2 + 1);
          engine->execute(insert);
          if (insert.result()) ++net[t][key];
        } else {
          remove.set(key);
          engine->execute(remove);
          if (remove.result()) --net[t][key];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::uint64_t k = 0; k < 64; ++k) {
    std::int64_t expected = 0;
    for (int t = 0; t < kThreads; ++t) expected += net[t][k];
    ASSERT_TRUE(expected == 0 || expected == 1) << TypeParam::name();
    EXPECT_EQ(table.contains(k), expected == 1) << TypeParam::name();
  }
  EXPECT_TRUE(table.check_invariants()) << TypeParam::name();
  // Speculation was indeed futile: ops completed under the lock.
  const auto snap = core::EngineStatsSnapshot::capture(engine->stats());
  EXPECT_GT(snap.phase_total(core::Phase::UnderLock), 0u)
      << TypeParam::name();
  mem::EbrDomain::instance().drain();
}

TYPED_TEST(EngineCapacityTest, TinyWriteCapacityForcesFallbacks) {
  htm::ScopedCapacity caps(4096, 2);
  Table table(64);
  auto engine = EngineMaker<TypeParam>::make(table, ht_config());
  adapters::HtInsertOp<std::uint64_t, std::uint64_t> insert;
  for (std::uint64_t k = 0; k < 128; ++k) {
    insert.set(k % 64, k);
    engine->execute(insert);
  }
  EXPECT_EQ(table.size_slow(), 64u);
  EXPECT_TRUE(table.check_invariants());
  mem::EbrDomain::instance().drain();
}

TEST(EngineCapacity, CapacityAbortsAreCountedAsCapacity) {
  htm::ScopedCapacity caps(2, 2);
  htm::stats().reset();
  Table table(64);
  core::TleEngine<Table> engine(table);
  adapters::HtInsertOp<std::uint64_t, std::uint64_t> insert;
  insert.set(1, 1);
  engine.execute(insert);
  const auto snap = htm::StatsSnapshot::capture();
  EXPECT_GT(snap.aborts[static_cast<int>(htm::AbortCode::Capacity)], 0u);
  // TLE gives up after the first capacity abort rather than burning the
  // whole budget (retrying a deterministic abort is futile).
  EXPECT_LE(snap.starts, 2u);
  mem::EbrDomain::instance().drain();
}

TEST(EngineCapacity, CoreLockEngineSerializesOnCapacity) {
  htm::ScopedCapacity caps(6, 1024);  // every speculative attempt fails
  Table table(64);
  core::CoreLockEngine<Table> engine(table);
  adapters::HtInsertOp<std::uint64_t, std::uint64_t> insert;
  for (std::uint64_t k = 0; k < 64; ++k) {
    insert.set(k, k);
    engine.execute(insert);
  }
  EXPECT_EQ(table.size_slow(), 64u);
  // The capacity path engaged the per-core auxiliary lock.
  EXPECT_GT(engine.core_lock_acquisitions(), 0u);
  mem::EbrDomain::instance().drain();
}

TEST(EngineCapacity, HcfCombiningBatchRespectsTinyCapacity) {
  // With a small write capacity, run_multi batches capacity-abort and the
  // engine must finish the batch under the lock without losing ops.
  htm::ScopedCapacity caps(4096, 8);
  struct Wide {
    htm::TxField<std::uint64_t> words[16];
  };
  struct WideOp : core::Operation<Wide> {
    void run_seq(Wide& ds) override {
      for (auto& w : ds.words) w = w + 1;
    }
  };
  Wide ds;
  core::HcfEngine<Wide> engine(ds, core::PhasePolicy::combine_first());
  constexpr int kThreads = 3;
  constexpr int kOps = 1500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      WideOp op;
      for (int i = 0; i < kOps; ++i) engine.execute(op);
    });
  }
  for (auto& th : threads) th.join();
  for (auto& w : ds.words) {
    EXPECT_EQ(w.get(), static_cast<std::uint64_t>(kThreads) * kOps);
  }
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::test
