#include "sync/tx_lock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim_htm/htm.hpp"
#include "sync/spinlock.hpp"

namespace hcf::sync {
namespace {

template <typename L>
class ElidableLockTest : public ::testing::Test {};

using LockTypes = ::testing::Types<TxLock, FairTxLock>;
TYPED_TEST_SUITE(ElidableLockTest, LockTypes);

TYPED_TEST(ElidableLockTest, MutualExclusionCounter) {
  TypeParam lock;
  std::uint64_t counter = 0;  // deliberately non-atomic
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(lock.acquisition_count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TYPED_TEST(ElidableLockTest, TryLockRespectsHolder) {
  // try_lock results feed plain `if`s rather than EXPECT_* so the
  // thread-safety analysis can see which branch holds the lock.
  TypeParam lock;
  EXPECT_FALSE(lock.is_locked());
  if (!lock.try_lock()) FAIL() << "try_lock on a free lock must succeed";
  EXPECT_TRUE(lock.is_locked());
  std::thread t([&] {
    if (lock.try_lock()) {
      ADD_FAILURE() << "try_lock must fail while another thread holds it";
      lock.unlock();
    }
  });
  t.join();
  lock.unlock();
  EXPECT_FALSE(lock.is_locked());
  if (!lock.try_lock()) FAIL() << "try_lock after unlock must succeed";
  lock.unlock();
}

TYPED_TEST(ElidableLockTest, SubscribeAbortsWhenHeld) {
  TypeParam lock;
  lock.lock();
  EXPECT_FALSE(htm::attempt([&] { lock.subscribe(); }));
  EXPECT_EQ(htm::last_abort_code(), htm::AbortCode::LockBusy);
  lock.unlock();
  EXPECT_TRUE(htm::attempt([&] { lock.subscribe(); }));
}

TYPED_TEST(ElidableLockTest, WaitUntilFreeReturnsAfterUnlock) {
  TypeParam lock;
  lock.lock();
  std::atomic<bool> released{false};
  std::thread t([&] {
    lock.wait_until_free();
    EXPECT_TRUE(released.load());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  released = true;
  lock.unlock();
  t.join();
}

TYPED_TEST(ElidableLockTest, GuardReleasesOnScopeExit) {
  TypeParam lock;
  {
    LockGuard<TypeParam> guard(lock);
    EXPECT_TRUE(lock.is_locked());
  }
  EXPECT_FALSE(lock.is_locked());
}

TEST(FairTxLock, FifoOrderUnderContention) {
  // While the main thread holds the lock, spawn contenders one at a time
  // and wait (via pending()) until each has taken its ticket — enqueue
  // order is then deterministic, and grants must follow it exactly.
  FairTxLock lock;
  std::vector<int> grant_order;
  constexpr int kThreads = 6;

  lock.lock();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    const std::uint64_t before = lock.pending();
    threads.emplace_back([&, t] {
      lock.lock();
      grant_order.push_back(t);  // protected by the lock itself
      lock.unlock();
    });
    while (lock.pending() == before) std::this_thread::yield();
  }
  lock.unlock();
  for (auto& th : threads) th.join();
  ASSERT_EQ(grant_order.size(), static_cast<std::size_t>(kThreads));
  for (int i = 0; i < kThreads; ++i) EXPECT_EQ(grant_order[i], i);
}

TEST(SpinLock, MutualExclusion) {
  SpinLock lock;
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

// tsa: deliberately re-try-locks a lock this thread already holds — the
// exact misuse the analysis exists to reject — to pin down the failure
// return path of try_lock.
NO_THREAD_SAFETY_ANALYSIS
void spinlock_try_lock_roundtrip() {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLock, TryLock) { spinlock_try_lock_roundtrip(); }

TEST(TxLock, AcquisitionCountResets) {
  TxLock lock;
  lock.lock();
  lock.unlock();
  EXPECT_EQ(lock.acquisition_count(), 1u);
  lock.reset_stats();
  EXPECT_EQ(lock.acquisition_count(), 0u);
}

}  // namespace
}  // namespace hcf::sync
