// Parallel-combining delegation (core/delegation.hpp, DESIGN.md §13):
// claim-CAS exactly-once semantics, delegate_batch's group carving under
// the commutativity graph, the combiner's serial fallback when a delegate
// never shows (crash simulation), the done-word park/wake handshake, the
// ConflictGraph's demote/decay/re-probe refinement, and an engine-level
// exactly-once stress where delegates race the fallback sweep at 1, 2 and
// 8 shards (run under TSan in the sanitizer build).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "adapters/ht_ops.hpp"
#include "core/engine.hpp"
#include "ds/hash_table.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace {

using namespace hcf;

using Table = ds::HashTable<std::uint64_t, std::uint64_t>;
using Op = core::Operation<Table>;
using InsertOp = adapters::HtInsertOp<std::uint64_t, std::uint64_t>;
using Core = core::CombineCore<Table>;

// ---- ConflictGraph unit tests -----------------------------------------

TEST(ConflictGraph, UnseededPairsNeverCommute) {
  core::ConflictGraph graph;
  EXPECT_FALSE(graph.commutes(0, 0));
  EXPECT_FALSE(graph.commutes(0, 1));
  EXPECT_FALSE(graph.masks_commute(0b01, 0b01));
  // Cross-class pairs are checked too — disjoint masks don't help.
  EXPECT_FALSE(graph.masks_commute(0b01, 0b10));
  // Only an empty side is trivially commuting.
  EXPECT_TRUE(graph.masks_commute(0b01, 0));
}

TEST(ConflictGraph, SeedingIsSymmetricAndMaskWide) {
  core::ConflictGraph graph;
  graph.seed(0, 1);
  EXPECT_TRUE(graph.commutes(0, 1));
  EXPECT_TRUE(graph.commutes(1, 0));
  EXPECT_FALSE(graph.commutes(0, 0));
  // Mixed mask: the (0,0) pair is unseeded, so the cross product fails.
  EXPECT_FALSE(graph.masks_commute(0b11, 0b11));
  graph.seed(0, 0);
  graph.seed(1, 1);
  EXPECT_TRUE(graph.masks_commute(0b11, 0b11));
  // Un-seeding turns the pair back off.
  graph.seed(0, 1, false);
  EXPECT_FALSE(graph.commutes(0, 1));
}

TEST(ConflictGraph, SustainedConflictsDemotePair) {
  core::ConflictGraph graph;
  graph.seed(1, 1);
  for (std::uint32_t i = 0;
       i + 1 < core::ConflictGraph::kDemoteConflicts; ++i) {
    graph.record_conflict(0b10, 0b10);
  }
  EXPECT_TRUE(graph.commutes(1, 1));  // one below the budget
  graph.record_conflict(0b10, 0b10);
  EXPECT_FALSE(graph.commutes(1, 1));  // demoted
  EXPECT_FALSE(graph.masks_commute(0b10, 0b10));
}

TEST(ConflictGraph, CleanSessionsDecayTheConflictCount) {
  core::ConflictGraph graph;
  graph.seed(1, 1);
  // Interleave conflicts with clean commits 1:1 — the count never grows,
  // so the pair must survive far past the raw demote budget.
  for (std::uint32_t i = 0; i < 4 * core::ConflictGraph::kDemoteConflicts;
       ++i) {
    graph.record_conflict(0b10, 0b10);
    graph.record_clean(0b10);
  }
  EXPECT_TRUE(graph.commutes(1, 1));
}

TEST(ConflictGraph, ReprobeRestoresDemotedPair) {
  core::ConflictGraph graph;
  graph.seed(1, 1);
  for (std::uint32_t i = 0; i < core::ConflictGraph::kDemoteConflicts; ++i) {
    graph.record_conflict(0b10, 0b10);
  }
  ASSERT_FALSE(graph.commutes(1, 1));
  // After kReprobeSessions delegating sessions the sit-out expires and the
  // pair is restored with a clean slate.
  for (std::uint32_t i = 0; i < 2 * core::ConflictGraph::kReprobeSessions;
       ++i) {
    graph.on_session();
  }
  EXPECT_TRUE(graph.commutes(1, 1));
}

// ---- claim protocol ----------------------------------------------------

TEST(DelegationClaim, ExactlyOneClaimSucceeds) {
  InsertOp op;
  op.set(1, 2);
  op.prepare();
  op.mark_announced();
  op.mark_being_helped();

  InsertOp other;
  other.set(3, 4);
  other.prepare();
  other.mark_announced();
  other.mark_being_helped();

  core::DelegationSession<Table> session;
  Op* ops[] = {&op, &other};
  auto* group = session.add_group(ops, 2, 0b10);
  ASSERT_NE(group, nullptr);
  EXPECT_FALSE(group->finished());

  op.mark_delegated(group);
  EXPECT_EQ(op.status(), core::OpStatus::Delegated);
  EXPECT_EQ(op.delegate_group(), group);

  EXPECT_TRUE(op.claim_delegation());
  EXPECT_EQ(op.status(), core::OpStatus::BeingHelped);
  EXPECT_FALSE(op.claim_delegation());  // already claimed

  // Completion still flows through the normal status protocol.
  op.mark_done(core::Phase::Combining);
  other.mark_done(core::Phase::Combining);
  group->finish();
  EXPECT_TRUE(group->finished());
}

TEST(DelegationClaim, TwoThreadRaceHasOneWinner) {
  for (int iter = 0; iter < 500; ++iter) {
    InsertOp op;
    op.set(1, 2);
    op.prepare();
    op.mark_announced();
    op.mark_being_helped();
    core::DelegationSession<Table> session;
    Op* ops[] = {&op};
    auto* group = session.add_group(ops, 1, 0b10);
    op.mark_delegated(group);

    std::atomic<int> ready{0};
    std::atomic<int> wins{0};
    auto contender = [&] {
      ready.fetch_add(1);
      while (ready.load() != 2) {
      }
      if (op.claim_delegation()) wins.fetch_add(1);
    };
    std::thread a(contender);
    std::thread b(contender);
    a.join();
    b.join();
    ASSERT_EQ(wins.load(), 1) << "iteration " << iter;
    op.mark_done(core::Phase::Combining);
    group->finish();
  }
}

TEST(DelegationSession, ArenaRejectsOverflow) {
  core::DelegationSession<Table> session;
  InsertOp op;
  op.set(1, 1);
  Op* ops[] = {&op, &op};
  for (std::size_t i = 0; i < core::kMaxDelegateGroups; ++i) {
    ASSERT_NE(session.add_group(ops, 2, 0b10), nullptr);
  }
  EXPECT_EQ(session.add_group(ops, 2, 0b10), nullptr);  // group cap
  EXPECT_EQ(session.num_groups(), core::kMaxDelegateGroups);
}

// ---- delegate_batch group carving --------------------------------------

// Finds `n` distinct keys whose delegate_key() (top two bits of the mixed
// key) equals `range`, avoiding keys already in `used`.
std::vector<std::uint64_t> keys_in_range(std::uint64_t range, std::size_t n,
                                         std::vector<std::uint64_t>& used) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t k = 1; out.size() < n; ++k) {
    if ((util::mix64(k) >> 62) != range) continue;
    bool taken = false;
    for (const std::uint64_t u : used) taken |= (u == k);
    if (taken) continue;
    out.push_back(k);
    used.push_back(k);
  }
  return out;
}

struct BatchFixture {
  std::vector<std::unique_ptr<InsertOp>> storage;
  std::vector<Op*> batch;

  InsertOp* add(std::uint64_t key) {
    auto op = std::make_unique<InsertOp>();
    op->set(key, key * 2 + 1);
    op->prepare();
    op->mark_announced();
    op->mark_being_helped();
    batch.push_back(op.get());
    storage.push_back(std::move(op));
    return static_cast<InsertOp*>(storage.back().get());
  }
};

TEST(DelegateBatch, CarvesDisjointKeyGroupsAndKeepsOwnGroup) {
  std::vector<std::uint64_t> used;
  const auto range_a = keys_in_range(0, 3, used);
  const auto range_b = keys_in_range(1, 2, used);
  const auto range_c = keys_in_range(2, 2, used);  // own lives here
  const auto range_d = keys_in_range(3, 1, used);  // singleton: kept

  BatchFixture fx;
  for (const auto k : range_a) fx.add(k);
  for (const auto k : range_b) fx.add(k);
  InsertOp* own = fx.add(range_c[0]);
  fx.add(range_c[1]);
  fx.add(range_d[0]);

  core::ConflictGraph graph;
  graph.seed(adapters::kHtInsertClass, adapters::kHtInsertClass);
  core::DelegationSession<Table> session;
  core::EngineStats stats;
  Core::delegate_batch(*own, fx.batch, session, graph, stats);

  // Ranges A and B were delegated; C (contains own) and the D singleton
  // stay with the combiner.
  EXPECT_EQ(session.num_groups(), 2u);
  EXPECT_EQ(fx.batch.size(), 3u);
  EXPECT_EQ(stats.delegated_groups.total(), 2u);
  EXPECT_EQ(stats.delegated_ops.total(), 5u);
  for (Op* kept : fx.batch) {
    EXPECT_EQ(kept->status(), core::OpStatus::BeingHelped);
  }
  std::size_t delegated_seen = 0;
  for (std::size_t g = 0; g < session.num_groups(); ++g) {
    auto& group = session.group(g);
    EXPECT_GE(group.count, core::kMinDelegateGroupSize);
    EXPECT_EQ(group.ops[0]->status(), core::OpStatus::Delegated);
    delegated_seen += group.count;
  }
  EXPECT_EQ(delegated_seen, 5u);

  // Drain the session: nobody owns the assignees, so the fallback sweep
  // must claim and apply every group (keys land in the table).
  Table table(64);
  sync::TxLock lock;
  Core::PubArray pa;
  Core::finish_delegation(lock, table, pa, session, graph, stats,
                          util::WaitPolicy::SpinYield);
  for (std::size_t g = 0; g < 2; ++g) {
    EXPECT_TRUE(session.group(g).finished());
  }
  for (const auto k : range_a) EXPECT_TRUE(table.contains(k));
  for (const auto k : range_b) EXPECT_TRUE(table.contains(k));
  EXPECT_EQ(stats.delegate_fallbacks.total(), 2u);
  mem::EbrDomain::instance().drain();
}

TEST(DelegateBatch, UnseededGraphDelegatesNothing) {
  std::vector<std::uint64_t> used;
  BatchFixture fx;
  for (const auto k : keys_in_range(0, 3, used)) fx.add(k);
  InsertOp* own = nullptr;
  for (const auto k : keys_in_range(1, 3, used)) own = fx.add(k);

  core::ConflictGraph graph;  // nothing seeded
  core::DelegationSession<Table> session;
  core::EngineStats stats;
  Core::delegate_batch(*own, fx.batch, session, graph, stats);
  EXPECT_EQ(session.num_groups(), 0u);
  EXPECT_EQ(fx.batch.size(), 6u);
  EXPECT_EQ(stats.delegated_groups.total(), 0u);
}

TEST(DelegateBatch, SmallBatchesAreNeverDelegated) {
  std::vector<std::uint64_t> used;
  BatchFixture fx;
  fx.add(keys_in_range(0, 1, used)[0]);
  fx.add(keys_in_range(0, 1, used)[0]);
  InsertOp* own = fx.add(keys_in_range(1, 1, used)[0]);

  core::ConflictGraph graph;
  graph.seed(adapters::kHtInsertClass, adapters::kHtInsertClass);
  core::DelegationSession<Table> session;
  core::EngineStats stats;
  Core::delegate_batch(*own, fx.batch, session, graph, stats);
  EXPECT_EQ(session.num_groups(), 0u);  // below kMinDelegateBatch
  EXPECT_EQ(fx.batch.size(), 3u);
}

// ---- crash simulation: the delegate never shows ------------------------

TEST(DelegationFallback, CombinerCompletesWhenDelegateParksForever) {
  // The assignees' owners are simulated as parked forever (no thread ever
  // calls claim_delegation on them); finish_delegation must win every
  // claim and complete all groups serially — progress never depends on a
  // delegate.
  std::vector<std::uint64_t> used;
  BatchFixture fx;
  for (const auto k : keys_in_range(0, 2, used)) fx.add(k);
  for (const auto k : keys_in_range(1, 2, used)) fx.add(k);

  core::ConflictGraph graph;
  graph.seed(adapters::kHtInsertClass, adapters::kHtInsertClass);
  core::DelegationSession<Table> session;
  core::EngineStats stats;
  Op* group_a[] = {fx.batch[0], fx.batch[1]};
  Op* group_b[] = {fx.batch[2], fx.batch[3]};
  auto* ga = session.add_group(group_a, 2, 0b10);
  auto* gb = session.add_group(group_b, 2, 0b10);
  ASSERT_NE(ga, nullptr);
  ASSERT_NE(gb, nullptr);
  fx.batch[0]->mark_delegated(ga);
  fx.batch[2]->mark_delegated(gb);

  Table table(64);
  sync::TxLock lock;
  Core::PubArray pa;
  Core::finish_delegation(lock, table, pa, session, graph, stats,
                          util::WaitPolicy::SpinYield);
  for (Op* op : fx.batch) {
    EXPECT_EQ(op->status(), core::OpStatus::Done);
  }
  for (const auto k : used) EXPECT_TRUE(table.contains(k));
  EXPECT_EQ(stats.delegate_fallbacks.total(), 2u);
  EXPECT_EQ(stats.delegate_applies.total(), 0u);
  mem::EbrDomain::instance().drain();
}

TEST(DelegationFallback, DelegateAndSweepRaceAppliesExactlyOnce) {
  // A live delegate claims (and slowly applies) its group while the
  // combiner's fallback sweep runs concurrently: whoever wins the claim
  // applies; the other waits. Either way every op applies exactly once.
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::uint64_t> used;
    BatchFixture fx;
    for (const auto k : keys_in_range(0, 2, used)) fx.add(k);

    core::ConflictGraph graph;
    graph.seed(adapters::kHtInsertClass, adapters::kHtInsertClass);
    core::DelegationSession<Table> session;
    core::EngineStats stats;
    Op* ops[] = {fx.batch[0], fx.batch[1]};
    auto* group = session.add_group(ops, 2, 0b10);
    fx.batch[0]->mark_delegated(group);

    Table table(64);
    sync::TxLock lock;
    Core::PubArray pa;
    std::thread delegate([&] {
      if (fx.batch[0]->claim_delegation()) {
        Core::apply_delegated_group(lock, table, *fx.batch[0], pa, graph,
                                    stats, util::WaitPolicy::SpinYield,
                                    /*by_delegate=*/true);
      }
    });
    Core::finish_delegation(lock, table, pa, session, graph, stats,
                            util::WaitPolicy::SpinYield);
    delegate.join();
    for (Op* op : fx.batch) {
      ASSERT_EQ(op->status(), core::OpStatus::Done) << "iteration " << iter;
    }
    for (const auto k : used) ASSERT_TRUE(table.contains(k));
    // Exactly one claim winner applied the group this iteration (stats are
    // reset at the bottom of every loop), and exactly one completion was
    // recorded per op.
    ASSERT_EQ(stats.delegate_applies.total() +
                  stats.delegate_fallbacks.total(),
              1u)
        << "iteration " << iter;
    ASSERT_EQ(stats.total(), 2u) << "iteration " << iter;
    stats.reset();
    mem::EbrDomain::instance().drain();
  }
}

TEST(DelegationFallback, SweepParksOnDoneWordUntilDelegateFinishes) {
  // SpinPark combiner: loses the claim race on purpose, parks on the
  // group's done word, and must be woken by the delegate's finish().
  std::vector<std::uint64_t> used;
  BatchFixture fx;
  for (const auto k : keys_in_range(0, 2, used)) fx.add(k);

  core::ConflictGraph graph;
  graph.seed(adapters::kHtInsertClass, adapters::kHtInsertClass);
  core::DelegationSession<Table> session;
  core::EngineStats stats;
  Op* ops[] = {fx.batch[0], fx.batch[1]};
  auto* group = session.add_group(ops, 2, 0b10);
  fx.batch[0]->mark_delegated(group);

  Table table(64);
  sync::TxLock lock;
  Core::PubArray pa;
  ASSERT_TRUE(fx.batch[0]->claim_delegation());  // delegate owns the apply
  std::thread delegate([&] {
    // Let the sweep reach the park tier before finishing.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Core::apply_delegated_group(lock, table, *fx.batch[0], pa, graph, stats,
                                util::WaitPolicy::SpinYield,
                                /*by_delegate=*/true);
  });
  Core::finish_delegation(lock, table, pa, session, graph, stats,
                          util::WaitPolicy::SpinPark);
  delegate.join();
  for (Op* op : fx.batch) EXPECT_EQ(op->status(), core::OpStatus::Done);
  EXPECT_EQ(stats.delegate_applies.total(), 1u);
  EXPECT_EQ(stats.delegate_fallbacks.total(), 0u);
  mem::EbrDomain::instance().drain();
}

// ---- engine-level exactly-once stress ----------------------------------

// Unique-key inserts through a delegating engine: a double apply would
// flip the second insert's result to false (the key already exists), a
// lost op would leave its key missing, and a double retirement would
// inflate the completion stats past the op count. Checked at 1 shard
// (flat HcfEngine) and at 2/8 shards (ShardedEngine), with cs_work wide
// enough that batches and delegations actually form.
template <typename Engine>
void run_exactly_once_stress(Engine& engine, std::size_t threads,
                             std::size_t ops_per_thread) {
  std::atomic<std::uint64_t> false_results{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      InsertOp ins;
      ins.set_work(60);
      for (std::size_t r = 0; r < ops_per_thread; ++r) {
        const std::uint64_t key = t * ops_per_thread + r + 1;
        ins.set(key, key * 2 + 1);
        engine.execute(ins);
        if (!ins.result()) false_results.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(false_results.load(), 0u)
      << "an insert of a unique key returned false: applied twice";
}

TEST(DelegationStress, ExactlyOnceOnFlatEngine) {
  Table table(256);
  core::HcfEngine<Table> engine(table, adapters::ht_delegate_config(),
                                adapters::kHtNumArrays);
  adapters::ht_seed_commutes(engine);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOps = 1200;
  run_exactly_once_stress(engine, kThreads, kOps);
  EXPECT_EQ(table.size_slow(), kThreads * kOps);
  EXPECT_TRUE(table.check_invariants());
  // Exactly one completion per executed op.
  EXPECT_EQ(engine.stats().total(), kThreads * kOps);
  mem::EbrDomain::instance().drain();
}

TEST(DelegationStress, ExactlyOnceAcrossShards) {
  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    std::vector<std::unique_ptr<Table>> tables;
    std::vector<Table*> ptrs;
    for (std::size_t i = 0; i < shards; ++i) {
      tables.push_back(std::make_unique<Table>(256));
      ptrs.push_back(tables.back().get());
    }
    core::ShardedEngine<core::HcfEngine<Table>> engine(
        std::span<Table* const>(ptrs), adapters::ht_delegate_config(),
        adapters::kHtNumArrays);
    adapters::ht_seed_commutes(engine);
    constexpr std::size_t kThreads = 8;
    const std::size_t ops = shards == 2 ? 1200 : 800;
    run_exactly_once_stress(engine, kThreads, ops);
    EXPECT_EQ(engine.size(), kThreads * ops) << shards << " shards";
    std::uint64_t completions = 0;
    const auto snap = engine.stats_snapshot();
    for (int c = 0; c < core::kMaxOpClasses; ++c) {
      for (int p = 0; p < core::kNumPhases; ++p) {
        completions += snap.completions[static_cast<std::size_t>(c)]
                                       [static_cast<std::size_t>(p)];
      }
    }
    EXPECT_EQ(completions, kThreads * ops) << shards << " shards";
    mem::EbrDomain::instance().drain();
  }
}

}  // namespace
