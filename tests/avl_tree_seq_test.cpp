// Sequential correctness of the AVL tree, randomized against std::set,
// plus structural (balance/height/order) invariants and the batch
// combining/elimination semantics of the adapter's run_multi.
#include "ds/avl_tree.hpp"

#include <gtest/gtest.h>

#include "ebr_drain_env.hpp"

#include <set>
#include <vector>

#include "adapters/avl_ops.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::ds {
namespace {

using Tree = AvlTree<std::uint64_t>;

TEST(AvlSeq, InsertContainsRemoveBasics) {
  Tree t;
  EXPECT_FALSE(t.contains(5));
  EXPECT_TRUE(t.insert(5));
  EXPECT_FALSE(t.insert(5));
  EXPECT_TRUE(t.contains(5));
  EXPECT_TRUE(t.remove(5));
  EXPECT_FALSE(t.remove(5));
  EXPECT_FALSE(t.contains(5));
  EXPECT_TRUE(t.check_invariants());
}

TEST(AvlSeq, AscendingInsertStaysBalanced) {
  Tree t;
  for (std::uint64_t k = 0; k < 1024; ++k) ASSERT_TRUE(t.insert(k));
  EXPECT_TRUE(t.check_invariants());
  // AVL height bound: <= 1.44 * log2(n + 2).
  EXPECT_LE(t.height_of_root(), 15);
  EXPECT_EQ(t.size_slow(), 1024u);
}

TEST(AvlSeq, DescendingInsertStaysBalanced) {
  Tree t;
  for (std::uint64_t k = 1024; k > 0; --k) ASSERT_TRUE(t.insert(k));
  EXPECT_TRUE(t.check_invariants());
  EXPECT_LE(t.height_of_root(), 15);
}

TEST(AvlSeq, InOrderTraversalSorted) {
  Tree t;
  util::Xoshiro256 rng(3);
  std::set<std::uint64_t> ref;
  for (int i = 0; i < 500; ++i) {
    const auto k = rng.next_bounded(10000);
    t.insert(k);
    ref.insert(k);
  }
  std::vector<std::uint64_t> keys;
  t.for_each([&](std::uint64_t k) { keys.push_back(k); });
  EXPECT_EQ(keys, std::vector<std::uint64_t>(ref.begin(), ref.end()));
}

TEST(AvlSeq, RemoveInteriorNodesKeepsInvariants) {
  Tree t;
  for (std::uint64_t k = 0; k < 128; ++k) t.insert(k);
  // Remove nodes with two children (interior) by walking from the middle.
  for (std::uint64_t k = 32; k < 96; ++k) {
    ASSERT_TRUE(t.remove(k)) << k;
    ASSERT_TRUE(t.check_invariants()) << k;
  }
  EXPECT_EQ(t.size_slow(), 64u);
}

TEST(AvlSeq, RandomizedAgainstStdSet) {
  Tree t;
  std::set<std::uint64_t> ref;
  util::Xoshiro256 rng(77);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t key = rng.next_bounded(300);
    switch (rng.next_bounded(3)) {
      case 0:
        ASSERT_EQ(t.insert(key), ref.insert(key).second) << i;
        break;
      case 1:
        ASSERT_EQ(t.remove(key), ref.erase(key) > 0) << i;
        break;
      default:
        ASSERT_EQ(t.contains(key), ref.count(key) > 0) << i;
    }
    if (i % 1000 == 0) {
      ASSERT_TRUE(t.check_invariants()) << i;
    }
  }
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.size_slow(), ref.size());
  mem::EbrDomain::instance().drain();
}

TEST(AvlSeq, RootKeyHintTracksRoot) {
  Tree t;
  std::uint64_t hint = 0;
  EXPECT_FALSE(t.root_key_hint(&hint));
  t.insert(10);
  ASSERT_TRUE(t.root_key_hint(&hint));
  EXPECT_EQ(hint, 10u);
  // Force rotations that move the root.
  t.insert(20);
  t.insert(30);  // root becomes 20
  ASSERT_TRUE(t.root_key_hint(&hint));
  EXPECT_EQ(hint, 20u);
  t.remove(10);
  t.remove(20);
  t.remove(30);
  EXPECT_FALSE(t.root_key_hint(&hint));
}

TEST(AvlSeq, TransactionalRollback) {
  Tree t;
  t.insert(1);
  htm::attempt([&] {
    t.insert(2);
    t.remove(1);
    htm::abort_tx();
  });
  EXPECT_TRUE(t.contains(1));
  EXPECT_FALSE(t.contains(2));
  EXPECT_TRUE(t.check_invariants());
}

// ---- adapter batch semantics (run_multi combining + elimination) ----

using Op = core::Operation<Tree>;

TEST(AvlBatch, SortedCombineEliminateMatchesSequential) {
  util::Xoshiro256 rng(11);
  for (int round = 0; round < 200; ++round) {
    Tree tree;
    std::set<std::uint64_t> ref;
    for (std::uint64_t k = 0; k < 32; k += 2) {
      tree.insert(k);
      ref.insert(k);
    }
    // Random batch of ops over a tiny key range to force same-key groups.
    std::vector<std::unique_ptr<adapters::AvlOpBase<std::uint64_t>>> ops;
    for (int i = 0; i < 12; ++i) {
      const auto key = rng.next_bounded(8);
      switch (rng.next_bounded(3)) {
        case 0: ops.push_back(std::make_unique<adapters::AvlInsertOp<std::uint64_t>>()); break;
        case 1: ops.push_back(std::make_unique<adapters::AvlRemoveOp<std::uint64_t>>()); break;
        default: ops.push_back(std::make_unique<adapters::AvlContainsOp<std::uint64_t>>());
      }
      ops.back()->set(key);
    }
    std::vector<Op*> raw;
    for (auto& op : ops) raw.push_back(op.get());

    // Apply through run_multi (possibly several prefix calls).
    std::span<Op*> pending(raw);
    while (!pending.empty()) {
      const std::size_t k = ops[0]->run_multi(tree, pending);
      ASSERT_GE(k, 1u);
      pending = pending.subspan(k);
    }

    // Reference: the ops in the order run_multi chose (it sorts, so we
    // must compare against *some* linearization — replay in the permuted
    // order produced by run_multi and compare results).
    for (Op* op : raw) {
      auto* o = static_cast<adapters::AvlOpBase<std::uint64_t>*>(op);
      bool expected = false;
      switch (o->kind()) {
        case adapters::AvlOpBase<std::uint64_t>::Kind::Contains:
          expected = ref.count(o->key()) > 0;
          break;
        case adapters::AvlOpBase<std::uint64_t>::Kind::Insert:
          expected = ref.insert(o->key()).second;
          break;
        case adapters::AvlOpBase<std::uint64_t>::Kind::Remove:
          expected = ref.erase(o->key()) > 0;
          break;
      }
      ASSERT_EQ(o->result(), expected) << "round " << round;
    }
    // Final states agree.
    ASSERT_EQ(tree.size_slow(), ref.size()) << round;
    for (std::uint64_t k = 0; k < 8; ++k) {
      ASSERT_EQ(tree.contains(k), ref.count(k) > 0) << round;
    }
    ASSERT_TRUE(tree.check_invariants());
  }
  mem::EbrDomain::instance().drain();
}

TEST(AvlBatch, InsertRemovePairEliminates) {
  // An Insert(42) followed by Remove(42) on an absent key must combine to
  // zero physical mutations: size unchanged, results per set semantics.
  Tree tree;
  tree.insert(1);
  adapters::AvlInsertOp<std::uint64_t> ins;
  adapters::AvlRemoveOp<std::uint64_t> rem;
  ins.set(42);
  rem.set(42);
  Op* ops[] = {&ins, &rem};
  const std::size_t k = ins.run_multi(tree, std::span<Op*>(ops));
  EXPECT_EQ(k, 2u);
  EXPECT_TRUE(ins.result());   // inserted (logically)
  EXPECT_TRUE(rem.result());   // removed (logically)
  EXPECT_FALSE(tree.contains(42));
  EXPECT_EQ(tree.size_slow(), 1u);
}

TEST(AvlBatch, DuplicateInsertsOnlyFirstWins) {
  Tree tree;
  adapters::AvlInsertOp<std::uint64_t> a, b, c;
  a.set(7);
  b.set(7);
  c.set(7);
  Op* ops[] = {&a, &b, &c};
  a.run_multi(tree, std::span<Op*>(ops));
  int wins = (a.result() ? 1 : 0) + (b.result() ? 1 : 0) + (c.result() ? 1 : 0);
  EXPECT_EQ(wins, 1);
  EXPECT_TRUE(tree.contains(7));
}

TEST(AvlBatch, ShouldHelpSelectsSameSubtree) {
  Tree tree;
  for (std::uint64_t k = 0; k < 64; ++k) tree.insert(k);
  std::uint64_t root = 0;
  ASSERT_TRUE(tree.root_key_hint(&root));
  ASSERT_GT(root, 0u);

  adapters::AvlContainsOp<std::uint64_t> left_op, another_left, right_op;
  left_op.bind_tree(&tree);
  left_op.set(root - 1);
  another_left.set(0);
  right_op.set(root + 1);
  EXPECT_TRUE(left_op.should_help(another_left));
  EXPECT_FALSE(left_op.should_help(right_op));
}

TEST(AvlBatch, ShouldHelpWithoutHintHelpsAll) {
  adapters::AvlContainsOp<std::uint64_t> a, b;
  a.set(1);
  b.set(1000);
  EXPECT_TRUE(a.should_help(b));  // no tree bound -> help everyone
}

}  // namespace
}  // namespace hcf::ds
