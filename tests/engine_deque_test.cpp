// Concurrent correctness of every engine over the deque (two-ends
// configuration): unique pushed values, every value popped at most once,
// pushed = popped + remaining.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "engine_test_util.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::test {
namespace {

using Dq = ds::Deque<std::uint64_t>;

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 8000;

HcfConfig deque_config() {
  return {adapters::deque_paper_config(), adapters::kDequeNumArrays};
}

template <typename Engine>
class EngineDequeTest : public ::testing::Test {};

using EngineTypes =
    ::testing::Types<Engines<Dq>::Lock, Engines<Dq>::Tle, Engines<Dq>::Scm,
                     Engines<Dq>::Fc, Engines<Dq>::TleFc, Engines<Dq>::Hcf,
                     Engines<Dq>::Hcf1C>;
TYPED_TEST_SUITE(EngineDequeTest, EngineTypes);

TYPED_TEST(EngineDequeTest, PushedEqualsPoppedPlusRemaining) {
  Dq dq;
  auto engine = EngineMaker<TypeParam>::make(dq, deque_config());

  std::vector<std::vector<std::uint64_t>> pushed(kThreads);
  std::vector<std::vector<std::uint64_t>> popped(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(555 + t);
      adapters::PushLeftOp<std::uint64_t> push_left;
      adapters::PopLeftOp<std::uint64_t> pop_left;
      adapters::PushRightOp<std::uint64_t> push_right;
      adapters::PopRightOp<std::uint64_t> pop_right;
      std::uint64_t seq = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t value =
            (static_cast<std::uint64_t>(t) << 32) | seq;
        const bool left = (rng.next() & 1) == 0;
        if (rng.next_bounded(100) < 55) {  // slight push bias
          ++seq;
          if (left) {
            push_left.set(value);
            engine->execute(push_left);
          } else {
            push_right.set(value);
            engine->execute(push_right);
          }
          pushed[t].push_back(value);
        } else {
          const std::optional<std::uint64_t>* result;
          if (left) {
            engine->execute(pop_left);
            result = &pop_left.result();
          } else {
            engine->execute(pop_right);
            result = &pop_right.result();
          }
          if (result->has_value()) popped[t].push_back(**result);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::multiset<std::uint64_t> all_pushed, all_popped;
  for (const auto& v : pushed) all_pushed.insert(v.begin(), v.end());
  for (const auto& v : popped) all_popped.insert(v.begin(), v.end());

  for (std::uint64_t v : all_popped) {
    ASSERT_EQ(all_pushed.count(v), 1u) << TypeParam::name() << " " << v;
    ASSERT_EQ(all_popped.count(v), 1u) << TypeParam::name() << " " << v;
  }
  std::multiset<std::uint64_t> expected_left = all_pushed;
  for (std::uint64_t v : all_popped) expected_left.erase(v);
  std::multiset<std::uint64_t> actual_left;
  dq.for_each([&](std::uint64_t v) { actual_left.insert(v); });
  EXPECT_EQ(actual_left, expected_left) << TypeParam::name();
  EXPECT_TRUE(dq.check_invariants()) << TypeParam::name();
  mem::EbrDomain::instance().drain();
}

TYPED_TEST(EngineDequeTest, FifoThroughOppositeEnds) {
  // Single-threaded: push right, pop left => FIFO order preserved.
  Dq dq;
  auto engine = EngineMaker<TypeParam>::make(dq, deque_config());
  adapters::PushRightOp<std::uint64_t> push;
  adapters::PopLeftOp<std::uint64_t> pop;
  for (std::uint64_t v = 0; v < 100; ++v) {
    push.set(v);
    engine->execute(push);
  }
  for (std::uint64_t v = 0; v < 100; ++v) {
    engine->execute(pop);
    ASSERT_EQ(pop.result(), v) << TypeParam::name();
  }
  engine->execute(pop);
  EXPECT_FALSE(pop.result().has_value());
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::test
