// The adaptive HCF controller (§2.4 future work): policy retuning must
// follow the observed phase distribution and never affect correctness.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::core {
namespace {

struct HotSpot {
  htm::TxField<std::uint64_t> value{0};
};

class IncOp : public Operation<HotSpot> {
 public:
  void run_seq(HotSpot& ds) override { ds.value = ds.value + 1; }
};

// Disjoint counters: no conflicts, everything commits in TryPrivate.
struct Disjoint {
  util::CacheAligned<htm::TxField<std::uint64_t>> slots[util::kMaxThreads];
};

class DisjointIncOp : public Operation<Disjoint> {
 public:
  void run_seq(Disjoint& ds) override {
    auto& slot = ds.slots[util::this_thread_id()].value;
    slot = slot + 1;
  }
};

TEST(AdaptiveHcf, ConvergesToSpeculativeWhenUncontended) {
  Disjoint ds;
  AdaptiveOptions options;
  options.window = 1024;
  AdaptiveHcfEngine<Disjoint> engine(
      ds, {ClassConfig{0, PhasePolicy::paper_default()}}, 1, options);
  constexpr int kThreads = 2;
  constexpr int kOps = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      DisjointIncOp op;
      for (int i = 0; i < kOps; ++i) engine.execute(op);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(engine.current_lean(0),
            AdaptiveHcfEngine<Disjoint>::Lean::Speculative);
  EXPECT_GT(engine.adaptations(), 0u);
  // Policy change must be reflected in the inner engine.
  EXPECT_EQ(engine.inner().class_config(0).policy.try_private, 6);
}

TEST(AdaptiveHcf, ConvergesToCombiningUnderTotalConflict) {
  HotSpot ds;
  AdaptiveOptions options;
  options.window = 1024;
  // Make speculation nearly useless: every op writes the same word, and we
  // inflate conflict windows by running many threads.
  AdaptiveHcfEngine<HotSpot> engine(
      ds, {ClassConfig{0, PhasePolicy::paper_default()}}, 1, options);
  constexpr int kThreads = 4;
  constexpr int kOps = 30000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      IncOp op;
      for (int i = 0; i < kOps; ++i) engine.execute(op);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ds.value.get(), static_cast<std::uint64_t>(kThreads) * kOps);
  // Under 2-core scheduling the conflict rate may or may not push the
  // controller all the way to Combining; what must hold is correctness
  // (above) and that adaptation engaged.
  EXPECT_GT(engine.adaptations() + (engine.current_lean(0) ==
                                            AdaptiveHcfEngine<HotSpot>::Lean::Balanced
                                        ? 1u
                                        : 0u),
            0u);
  mem::EbrDomain::instance().drain();
}

TEST(AdaptiveHcf, PolicyChangeMidRunKeepsExactlyOnce) {
  // Flip policies aggressively while operations run; totals must be exact.
  HotSpot ds;
  AdaptiveOptions options;
  options.window = 256;  // adapt very frequently
  AdaptiveHcfEngine<HotSpot> engine(
      ds, {ClassConfig{0, PhasePolicy::paper_default()}}, 1, options);
  constexpr int kThreads = 4;
  constexpr int kOps = 15000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      IncOp op;
      for (int i = 0; i < kOps; ++i) engine.execute(op);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ds.value.get(), static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(engine.stats().total(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  mem::EbrDomain::instance().drain();
}

TEST(AdaptiveHcf, ManualReconfigurationIsSafe) {
  // Direct set_class_policy while threads run (the §2.4 "dynamic
  // customization"): correctness must be unaffected.
  HotSpot ds;
  HcfEngine<HotSpot> engine(ds, PhasePolicy::paper_default());
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> executed{0};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      IncOp op;
      while (!stop.load(std::memory_order_relaxed)) {
        engine.execute(op);
        executed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  util::Xoshiro256 rng(5);
  const PhasePolicy menu[] = {
      PhasePolicy::paper_default(), PhasePolicy{0, 0, 10, true},
      PhasePolicy{8, 1, 1, true}, PhasePolicy::fc_like()};
  for (int i = 0; i < 300; ++i) {
    engine.set_class_policy(0, menu[rng.next_bounded(4)]);
    std::this_thread::yield();
  }
  stop = true;
  for (auto& th : threads) th.join();
  EXPECT_EQ(ds.value.get(), executed.load());
  mem::EbrDomain::instance().drain();
}

TEST(AdaptiveWaitFlip, ParksUnderPressureUnparksAfterDwell) {
  // The wait-mode controller (AdaptiveOptions::adapt_wait) must flip
  // SpinYield -> SpinPark on one oversubscribed window, and need
  // park_dwell *consecutive* quiet windows to flip back — a pressure
  // burst mid-dwell restarts the count (hysteresis).
  Disjoint ds;
  AdaptiveOptions options;
  options.window = 256;
  options.park_dwell = 3;
  AdaptiveHcfEngine<Disjoint> engine(
      ds, {ClassConfig{0, PhasePolicy::paper_default()}}, 1, options);
  DisjointIncOp op;
  // Exactly one controller window: execute() adapts at the boundary.
  auto run_window = [&] {
    for (std::uint64_t i = 0; i < options.window; ++i) engine.execute(op);
  };
  // Simulated oversubscription: the signal is yields per op over the
  // window, so injecting into the global parking counter is
  // indistinguishable from real waiters burning quanta.
  auto inject_pressure = [&] {
    util::park_stats().yields.add(10 * options.window);
  };

  ASSERT_FALSE(engine.parked_wait());
  ASSERT_EQ(engine.class_config(0).policy.wait, util::WaitPolicy::SpinYield);

  inject_pressure();
  run_window();
  EXPECT_TRUE(engine.parked_wait());
  EXPECT_EQ(engine.wait_flips(), 1u);
  EXPECT_EQ(engine.class_config(0).policy.wait, util::WaitPolicy::SpinPark);

  // Two quiet windows: still parked (dwell is 3).
  run_window();
  run_window();
  EXPECT_TRUE(engine.parked_wait());

  // Pressure returns before the third quiet window: dwell restarts.
  inject_pressure();
  run_window();
  EXPECT_TRUE(engine.parked_wait());
  run_window();
  run_window();
  EXPECT_TRUE(engine.parked_wait());  // only two quiet windows since burst
  run_window();
  EXPECT_FALSE(engine.parked_wait());  // third quiet window: unpark
  EXPECT_EQ(engine.wait_flips(), 2u);
  // The class returns to its pre-flip baseline wait policy.
  EXPECT_EQ(engine.class_config(0).policy.wait, util::WaitPolicy::SpinYield);
}

TEST(AdaptiveWaitFlip, DisabledControllerNeverFlips) {
  Disjoint ds;
  AdaptiveOptions options;
  options.window = 256;
  options.adapt_wait = false;
  AdaptiveHcfEngine<Disjoint> engine(
      ds, {ClassConfig{0, PhasePolicy::paper_default()}}, 1, options);
  DisjointIncOp op;
  util::park_stats().yields.add(100 * options.window);
  for (std::uint64_t i = 0; i < 4 * options.window; ++i) engine.execute(op);
  EXPECT_FALSE(engine.parked_wait());
  EXPECT_EQ(engine.wait_flips(), 0u);
  EXPECT_EQ(engine.class_config(0).policy.wait, util::WaitPolicy::SpinYield);
}

TEST(AdaptiveHcf, PreservesAnnounceFlagOfClass) {
  Disjoint ds;
  AdaptiveOptions options;
  options.window = 512;
  AdaptiveHcfEngine<Disjoint> engine(
      ds, {ClassConfig{0, PhasePolicy::tle_like()}}, 1, options);
  DisjointIncOp op;
  for (int i = 0; i < 5000; ++i) engine.execute(op);
  // The class never announced; adaptation must not turn announcing on.
  EXPECT_FALSE(engine.inner().class_config(0).policy.announce);
}

}  // namespace
}  // namespace hcf::core
