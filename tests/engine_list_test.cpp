// Concurrent correctness of every engine over the sorted-list set with the
// single-traversal batch combiner, using the same operation-accounting
// verification as the other set suites.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "adapters/list_ops.hpp"
#include "engine_test_util.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

namespace hcf::test {
namespace {

using List = ds::SortedList<std::uint64_t>;

constexpr std::uint64_t kKeyRange = 64;
constexpr int kThreads = 4;
constexpr int kOpsPerThread = 6000;

HcfConfig list_config() { return {adapters::list_paper_config(), 1}; }

template <typename Engine>
class EngineListTest : public ::testing::Test {};

using EngineTypes =
    ::testing::Types<Engines<List>::Lock, Engines<List>::Tle,
                     Engines<List>::Scm, Engines<List>::Fc,
                     Engines<List>::TleFc, Engines<List>::Hcf,
                     Engines<List>::Hcf1C>;
TYPED_TEST_SUITE(EngineListTest, EngineTypes);

TYPED_TEST(EngineListTest, OperationAccountingReconciles) {
  List list;
  std::vector<bool> initially_present(kKeyRange, false);
  for (std::uint64_t k = 0; k < kKeyRange; k += 2) {
    list.insert(k);
    initially_present[k] = true;
  }
  auto engine = EngineMaker<TypeParam>::make(list, list_config());

  std::vector<std::vector<std::int64_t>> net(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    net[t].assign(kKeyRange, 0);
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(7200 + t);
      adapters::ListContainsOp<std::uint64_t> contains;
      adapters::ListInsertOp<std::uint64_t> insert;
      adapters::ListRemoveOp<std::uint64_t> remove;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t key = rng.next_bounded(kKeyRange);
        switch (rng.next_bounded(4)) {
          case 0:
            insert.set(key);
            engine->execute(insert);
            if (insert.result()) ++net[t][key];
            break;
          case 1:
            remove.set(key);
            engine->execute(remove);
            if (remove.result()) --net[t][key];
            break;
          default:
            contains.set(key);
            engine->execute(contains);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  for (std::uint64_t k = 0; k < kKeyRange; ++k) {
    std::int64_t expected = initially_present[k] ? 1 : 0;
    for (int t = 0; t < kThreads; ++t) expected += net[t][k];
    ASSERT_TRUE(expected == 0 || expected == 1)
        << TypeParam::name() << " key " << k;
    EXPECT_EQ(list.contains(k), expected == 1)
        << TypeParam::name() << " key " << k;
  }
  EXPECT_TRUE(list.check_invariants()) << TypeParam::name();
  EXPECT_EQ(engine->stats().total(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  mem::EbrDomain::instance().drain();
}

TYPED_TEST(EngineListTest, SingleThreadedMatchesReference) {
  List list;
  auto engine = EngineMaker<TypeParam>::make(list, list_config());
  adapters::ListInsertOp<std::uint64_t> insert;
  adapters::ListRemoveOp<std::uint64_t> remove;
  adapters::ListContainsOp<std::uint64_t> contains;
  insert.set(9);
  engine->execute(insert);
  EXPECT_TRUE(insert.result());
  contains.set(9);
  engine->execute(contains);
  EXPECT_TRUE(contains.result());
  remove.set(9);
  engine->execute(remove);
  EXPECT_TRUE(remove.result());
  remove.set(9);
  engine->execute(remove);
  EXPECT_FALSE(remove.result());
  mem::EbrDomain::instance().drain();
}

}  // namespace
}  // namespace hcf::test
