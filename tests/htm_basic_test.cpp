// Single-threaded semantics of the simulated HTM: visibility, abort
// discarding, nesting, capacity, allocation logs, statistics.
#include "sim_htm/htm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "mem/ebr.hpp"
#include "sim_htm/txcell.hpp"

namespace hcf::htm {
namespace {

TEST(HtmBasic, ReadWriteOutsideTxnPassThrough) {
  std::uint64_t x = 5;
  EXPECT_EQ(read(&x), 5u);
  write(&x, std::uint64_t{9});
  EXPECT_EQ(x, 9u);
  EXPECT_FALSE(in_txn());
}

TEST(HtmBasic, CommittedWritesVisible) {
  std::uint64_t x = 0, y = 0;
  const bool ok = attempt([&] {
    write(&x, std::uint64_t{1});
    write(&y, std::uint64_t{2});
    // Lazy versioning: memory untouched until commit.
    EXPECT_EQ(std::atomic_ref<std::uint64_t>(x).load(), 0u);
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(x, 1u);
  EXPECT_EQ(y, 2u);
}

TEST(HtmBasic, ExplicitAbortDiscardsWrites) {
  std::uint64_t x = 7;
  const bool ok = attempt([&] {
    write(&x, std::uint64_t{100});
    abort_tx();
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(x, 7u);
  EXPECT_EQ(last_abort_code(), AbortCode::Explicit);
}

TEST(HtmBasic, AbortWithCustomCode) {
  std::uint64_t x = 0;
  attempt([&] {
    (void)read(&x);
    abort_tx(AbortCode::LockBusy);
  });
  EXPECT_EQ(last_abort_code(), AbortCode::LockBusy);
}

TEST(HtmBasic, ReadOwnWrite) {
  std::uint64_t x = 1;
  attempt([&] {
    write(&x, std::uint64_t{42});
    EXPECT_EQ(read(&x), 42u);
    write(&x, std::uint64_t{43});
    EXPECT_EQ(read(&x), 43u);
  });
  EXPECT_EQ(x, 43u);
}

TEST(HtmBasic, ExceptionAbortsAndPropagates) {
  std::uint64_t x = 3;
  EXPECT_THROW(
      attempt([&] {
        write(&x, std::uint64_t{99});
        throw std::runtime_error("boom");
      }),
      std::runtime_error);
  EXPECT_EQ(x, 3u);
  EXPECT_FALSE(in_txn());
}

TEST(HtmBasic, FlatNestingCommitsWithOuter) {
  std::uint64_t x = 0;
  const bool ok = attempt([&] {
    write(&x, std::uint64_t{1});
    const bool inner = attempt([&] { write(&x, std::uint64_t{2}); });
    EXPECT_TRUE(inner);        // subsumed, reports success
    EXPECT_TRUE(in_txn());     // still in the outer txn
    EXPECT_EQ(read(&x), 2u);   // inner write visible to outer
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(x, 2u);
}

TEST(HtmBasic, NestedAbortUnwindsToOuter) {
  std::uint64_t x = 5;
  const bool ok = attempt([&] {
    write(&x, std::uint64_t{6});
    attempt([&] { abort_tx(); });  // throws through both levels
    ADD_FAILURE() << "unreachable";
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(x, 5u);
}

TEST(HtmBasic, ReadCapacityAbort) {
  ScopedCapacity caps(8, 1024);
  std::uint64_t data[64] = {};
  const bool ok = attempt([&] {
    std::uint64_t sum = 0;
    for (auto& d : data) sum += read(&d);
    (void)sum;
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(last_abort_code(), AbortCode::Capacity);
}

TEST(HtmBasic, WriteCapacityAbort) {
  ScopedCapacity caps(1024, 8);
  std::uint64_t data[64] = {};
  const bool ok = attempt([&] {
    for (std::uint64_t i = 0; i < 64; ++i) write(&data[i], i);
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(last_abort_code(), AbortCode::Capacity);
}

TEST(HtmBasic, RepeatedReadsOfSameWordDontExhaustCapacity) {
  ScopedCapacity caps(8, 8);
  std::uint64_t x = 1;
  const bool ok = attempt([&] {
    std::uint64_t sum = 0;
    for (int i = 0; i < 1000; ++i) sum += read(&x);
    EXPECT_EQ(sum, 1000u);
  });
  EXPECT_TRUE(ok);  // dedup of consecutive identical reads
}

TEST(HtmBasic, MixedSizesOnDistinctAddresses) {
  struct Fields {
    std::uint8_t a = 0;
    std::uint8_t pad_a[7];
    std::uint16_t b = 0;
    std::uint16_t pad_b[3];
    std::uint32_t c = 0;
    std::uint32_t pad_c;
    std::uint64_t d = 0;
  } f;
  attempt([&] {
    write(&f.a, std::uint8_t{1});
    write(&f.b, std::uint16_t{2});
    write(&f.c, std::uint32_t{3});
    write(&f.d, std::uint64_t{4});
    EXPECT_EQ(read(&f.a), 1);
    EXPECT_EQ(read(&f.b), 2);
    EXPECT_EQ(read(&f.c), 3u);
    EXPECT_EQ(read(&f.d), 4u);
  });
  EXPECT_EQ(f.a, 1);
  EXPECT_EQ(f.b, 2);
  EXPECT_EQ(f.c, 3u);
  EXPECT_EQ(f.d, 4u);
}

TEST(HtmBasic, PointerValues) {
  int target = 9;
  int* p = nullptr;
  attempt([&] { write(&p, &target); });
  EXPECT_EQ(p, &target);
  attempt([&] { EXPECT_EQ(read(&p), &target); });
}

struct AllocTracker {
  static inline std::atomic<int> live{0};
  AllocTracker() { live.fetch_add(1); }
  ~AllocTracker() { live.fetch_sub(1); }
};

TEST(HtmBasic, MakeFreedOnAbort) {
  AllocTracker::live = 0;
  attempt([&] {
    auto* p = make<AllocTracker>();
    (void)p;
    EXPECT_EQ(AllocTracker::live.load(), 1);
    abort_tx();
  });
  EXPECT_EQ(AllocTracker::live.load(), 0);
}

TEST(HtmBasic, MakeSurvivesCommit) {
  AllocTracker::live = 0;
  AllocTracker* p = nullptr;
  attempt([&] { p = make<AllocTracker>(); });
  EXPECT_EQ(AllocTracker::live.load(), 1);
  // make<> allocates through the pool facade, so the committed node must be
  // released through it too — raw delete would corrupt the pool block.
  mem::dealloc(p);
}

TEST(HtmBasic, RetireDeferredUntilCommitThenEbr) {
  AllocTracker::live = 0;
  // retire() hands the pointer to the facade, which expects a pool-headered
  // block — so the node must come from the facade, not raw new.
  auto* p = mem::alloc<AllocTracker>();
  // Abort: retire must NOT free.
  attempt([&] {
    retire(p);
    abort_tx();
  });
  EXPECT_EQ(AllocTracker::live.load(), 1);
  // Commit: retire hands off to EBR; drain reclaims.
  attempt([&] { retire(p); });
  mem::EbrDomain::instance().drain();
  EXPECT_EQ(AllocTracker::live.load(), 0);
}

TEST(HtmBasic, RetireOutsideTxnGoesStraightToEbr) {
  AllocTracker::live = 0;
  retire(mem::alloc<AllocTracker>());
  mem::EbrDomain::instance().drain();
  EXPECT_EQ(AllocTracker::live.load(), 0);
}

TEST(HtmBasic, StatsCountCommitsAndAborts) {
  stats().reset();
  std::uint64_t x = 0;
  attempt([&] { write(&x, std::uint64_t{1}); });
  attempt([&] { (void)read(&x); });  // read-only
  attempt([&] { abort_tx(); });
  const auto snap = StatsSnapshot::capture();
  EXPECT_EQ(snap.starts, 3u);
  EXPECT_EQ(snap.commits, 2u);
  EXPECT_EQ(snap.read_only_commits, 1u);
  EXPECT_EQ(snap.aborts[static_cast<int>(AbortCode::Explicit)], 1u);
}

TEST(HtmBasic, TxFieldSugar) {
  TxField<std::uint64_t> f{10};
  EXPECT_EQ(f.get(), 10u);
  attempt([&] {
    f = f + 5;
    EXPECT_EQ(static_cast<std::uint64_t>(f), 15u);
  });
  EXPECT_EQ(f.get(), 15u);
  f.init(3);
  EXPECT_EQ(f.get(), 3u);
}

TEST(HtmBasic, TxFieldCopyCopiesValue) {
  TxField<int> a{7};
  TxField<int> b{0};
  b = a;
  EXPECT_EQ(b.get(), 7);
}

}  // namespace
}  // namespace hcf::htm
