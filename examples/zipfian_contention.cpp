// The paper's §3.4 scenario: an AVL-tree set under a *skewed* workload,
// where the programmer cannot know upfront which operations conflict.
// HCF's dynamic selection (should_help restricted to the same root
// subtree) lets a combiner batch the hot keys while the other subtree
// proceeds concurrently.
//
// The example contrasts HCF with TLE on the same skewed update-heavy
// workload and prints throughput plus the evidence (lock rate, combining
// degree) explaining the difference.
#include <cstdio>

#include "adapters/avl_ops.hpp"
#include "core/engine.hpp"
#include "ds/avl_tree.hpp"
#include "harness/driver.hpp"
#include "harness/issuers.hpp"
#include "mem/ebr.hpp"

int main() {
  using namespace hcf;
  using Tree = ds::AvlTree<std::uint64_t>;

  const auto spec = harness::WorkloadSpec::reads(
      /*find_pct=*/0, /*key_range=*/1024, harness::KeyDist::Zipfian,
      /*theta=*/0.9);
  harness::DriverOptions options;
  options.warmup = std::chrono::milliseconds(100);
  options.duration = std::chrono::milliseconds(500);
  constexpr std::size_t kThreads = 4;

  std::printf("AVL set, %s, %zu threads\n\n", spec.label().c_str(), kThreads);

  harness::RunResult tle_result, hcf_result;
  {
    Tree tree;
    for (std::uint64_t k = 0; k < 1024; k += 2) tree.insert(k);
    core::TleEngine<Tree> engine(tree);
    tle_result = harness::run_timed(
        engine, kThreads,
        [&](std::size_t t) {
          return harness::AvlWorker<core::TleEngine<Tree>>(engine, spec,
                                                           100 + t);
        },
        options);
    mem::EbrDomain::instance().drain();
  }
  {
    Tree tree;
    for (std::uint64_t k = 0; k < 1024; k += 2) tree.insert(k);
    core::HcfEngine<Tree> engine(tree, adapters::avl_paper_config(), 1);
    hcf_result = harness::run_timed(
        engine, kThreads,
        [&](std::size_t t) {
          return harness::AvlWorker<core::HcfEngine<Tree>>(engine, spec,
                                                           100 + t);
        },
        options);
    mem::EbrDomain::instance().drain();
  }

  std::printf("%-8s %12s %14s %16s %12s\n", "engine", "Mops/s", "locks/kop",
              "combine-degree", "aborts/op");
  std::printf("%-8s %12.2f %14.2f %16s %12.2f\n", "TLE",
              tle_result.throughput_mops(), tle_result.lock_rate_per_kop(),
              "-", tle_result.aborts_per_op());
  std::printf("%-8s %12.2f %14.2f %16.2f %12.2f\n", "HCF",
              hcf_result.throughput_mops(), hcf_result.lock_rate_per_kop(),
              hcf_result.engine.combining_degree(),
              hcf_result.aborts_per_op());
  std::printf(
      "\nHCF/TLE throughput ratio: %.2fx (paper: HCF's advantage grows with\n"
      "the update rate and skew — see EXPERIMENTS.md, Fig. 5)\n",
      hcf_result.throughput_mops() /
          (tle_result.throughput_mops() > 0 ? tle_result.throughput_mops()
                                            : 1.0));
  return 0;
}
