// §2.4's deque example: operations on the two ends of a deque are mapped
// to two publication arrays — each end gets its own combiner, and the
// specialized single-combiner HCF variant (selection lock held throughout)
// applies. Producers push on the right, consumers pop from the left, so
// each class is internally conflicting but the classes rarely interact.
#include <cstdio>
#include <thread>
#include <vector>

#include "adapters/deque_ops.hpp"
#include "core/engine.hpp"
#include "ds/deque.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

int main() {
  using namespace hcf;
  using Dq = ds::Deque<std::uint64_t>;

  Dq dq;
  for (std::uint64_t v = 0; v < 10000; ++v) dq.push_right(v);

  // Single-combiner specialization: ideal for per-end arrays (§2.4).
  core::HcfSingleCombinerEngine<Dq> engine(dq, adapters::deque_paper_config(),
                                           adapters::kDequeNumArrays);

  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kOpsPerThread = 40000;
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> consumed(kConsumers, 0);

  for (int t = 0; t < kProducers; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(500 + t);
      adapters::PushRightOp<std::uint64_t> push;
      for (int i = 0; i < kOpsPerThread; ++i) {
        push.set(rng.next());
        engine.execute(push);
      }
    });
  }
  for (int t = 0; t < kConsumers; ++t) {
    threads.emplace_back([&, t] {
      adapters::PopLeftOp<std::uint64_t> pop;
      for (int i = 0; i < kOpsPerThread; ++i) {
        engine.execute(pop);
        if (pop.result().has_value()) ++consumed[t];
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto snap = core::EngineStatsSnapshot::capture(engine.stats());
  std::uint64_t total_consumed = 0;
  for (auto c : consumed) total_consumed += c;
  std::printf("pushed %d, consumed %llu, remaining %zu\n",
              kProducers * kOpsPerThread,
              static_cast<unsigned long long>(total_consumed),
              dq.size_slow());
  std::printf("left-class ops: %llu, right-class ops: %llu\n",
              static_cast<unsigned long long>(
                  snap.class_total(adapters::kDequeLeftClass)),
              static_cast<unsigned long long>(
                  snap.class_total(adapters::kDequeRightClass)));
  std::printf("combiner sessions: %llu, combining degree: %.2f\n",
              static_cast<unsigned long long>(snap.combiner_sessions),
              snap.combining_degree());
  const bool ok =
      dq.check_invariants() &&
      dq.size_slow() ==
          10000 + kProducers * kOpsPerThread - total_consumed;
  std::printf("deque invariants + accounting: %s\n", ok ? "OK" : "BROKEN");
  mem::EbrDomain::instance().drain();
  return ok ? 0 : 1;
}
