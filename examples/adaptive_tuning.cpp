// Adaptive HCF in action (the paper's §2.4 future work): one engine, two
// workload phases. Phase 1 is read-heavy and uniform — speculation wins and
// the controller leans TLE-like. Phase 2 is update-heavy and highly skewed —
// conflicts dominate and the controller leans toward announcing early and
// combining. No reconfiguration code appears in the workload: the engine
// observes its own phase histogram and retunes itself.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "adapters/avl_ops.hpp"
#include "core/engine.hpp"
#include "ds/avl_tree.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace {

using namespace hcf;
using Tree = ds::AvlTree<std::uint64_t>;
using Engine = core::AdaptiveHcfEngine<Tree>;

const char* lean_name(Engine::Lean lean) {
  switch (lean) {
    case Engine::Lean::Balanced: return "balanced (2,3,5)";
    case Engine::Lean::Speculative: return "speculative (6,2,2)";
    case Engine::Lean::Combining: return "combining (1,1,8)";
  }
  return "?";
}

void run_phase(Engine& engine, const char* name, bool contended,
               std::chrono::milliseconds duration) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> ops{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(50 + t);
      util::ZipfianGenerator zipf(512, 0.95);
      adapters::AvlContainsOp<std::uint64_t> contains;
      adapters::AvlInsertOp<std::uint64_t> insert;
      adapters::AvlRemoveOp<std::uint64_t> remove;
      for (auto* op : {static_cast<adapters::AvlOpBase<std::uint64_t>*>(
                           &contains),
                       static_cast<adapters::AvlOpBase<std::uint64_t>*>(
                           &insert),
                       static_cast<adapters::AvlOpBase<std::uint64_t>*>(
                           &remove)}) {
        op->bind_tree(&engine.data());
        op->set_work(contended ? 2000 : 0);
      }
      while (!stop.load(std::memory_order_relaxed)) {
        if (!contended) {
          // 95% lookups over a wide uniform range.
          const auto key = rng.next_bounded(64 * 1024);
          if (rng.next_bounded(100) < 95) {
            contains.set(key);
            engine.execute(contains);
          } else {
            insert.set(key);
            engine.execute(insert);
          }
        } else {
          // 100% updates over a handful of hot keys with long operations.
          const auto key = zipf.next(rng) % 6;
          if (rng.next_bounded(2) == 0) {
            insert.set(key);
            engine.execute(insert);
          } else {
            remove.set(key);
            engine.execute(remove);
          }
        }
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(duration);
  stop = true;
  for (auto& th : threads) th.join();
  std::printf("%-38s %9llu ops, controller lean: %s (adaptations: %llu)\n",
              name, static_cast<unsigned long long>(ops.load()),
              lean_name(engine.current_lean(0)),
              static_cast<unsigned long long>(engine.adaptations()));
}

}  // namespace

int main() {
  Tree tree;
  for (std::uint64_t k = 0; k < 64 * 1024; k += 2) tree.insert(k);

  core::AdaptiveOptions options;
  options.window = 2048;
  options.failure_floor = 0.75;  // this workload's conflicts are bursty
  Engine engine(tree, adapters::avl_paper_config(), 1, options);

  std::printf("initial lean: %s\n", lean_name(engine.current_lean(0)));
  run_phase(engine, "phase 1: read-heavy uniform", false,
            std::chrono::milliseconds(600));
  run_phase(engine, "phase 2: update-heavy zipf + long ops", true,
            std::chrono::milliseconds(600));
  run_phase(engine, "phase 3: read-heavy uniform again", false,
            std::chrono::milliseconds(600));

  const bool ok = tree.check_invariants();
  std::printf("tree invariants: %s\n", ok ? "OK" : "BROKEN");
  hcf::mem::EbrDomain::instance().drain();
  return ok ? 0 : 1;
}
