// Quickstart: wrap a sequential hash table with the HCF framework and use
// it from multiple threads.
//
// The workflow mirrors the paper's programming model:
//   1. Write (or reuse) a *sequential* data structure. hcf ships one — the
//      paper's hash table with bucket lists plus an iteration "table list".
//   2. Describe each operation with a descriptor: run_seq is mandatory;
//      run_multi / should_help unlock combining but have sensible defaults.
//   3. Pick per-operation-class policies: here Find/Remove behave like TLE
//      and Inserts combine through insert_n, the paper's §3.3 setup
//      (already packaged as adapters::ht_paper_config()).
//   4. Call engine.execute(op) from any thread. No further concurrency
//      reasoning required.
#include <cstdio>
#include <thread>
#include <vector>

#include "adapters/ht_ops.hpp"
#include "core/engine.hpp"
#include "ds/hash_table.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

int main() {
  using namespace hcf;
  using Table = ds::HashTable<std::uint64_t, std::uint64_t>;

  // 1. The sequential data structure (1024 buckets) + the HCF engine.
  Table table(1024);
  core::HcfEngine<Table> engine(table, adapters::ht_paper_config(),
                                adapters::kHtNumArrays);

  // 2-4. Hammer it from several threads.
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(42 + t);
      adapters::HtInsertOp<std::uint64_t, std::uint64_t> insert;
      adapters::HtFindOp<std::uint64_t, std::uint64_t> find;
      adapters::HtRemoveOp<std::uint64_t, std::uint64_t> remove;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t key = rng.next_bounded(2048);
        switch (rng.next_bounded(3)) {
          case 0:
            insert.set(key, key * 10);
            engine.execute(insert);
            break;
          case 1:
            find.set(key);
            engine.execute(find);
            break;
          default:
            remove.set(key);
            engine.execute(remove);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Where did operations complete? (the paper's Fig. 3 view)
  const auto snap = core::EngineStatsSnapshot::capture(engine.stats());
  std::printf("executed %llu operations across %d threads\n",
              static_cast<unsigned long long>(snap.total()), kThreads);
  for (int p = 0; p < core::kNumPhases; ++p) {
    const auto phase = static_cast<core::Phase>(p);
    std::printf("  %-18s %8llu\n", core::to_string(phase),
                static_cast<unsigned long long>(snap.phase_total(phase)));
  }
  std::printf("combining degree: %.2f ops/combiner\n",
              snap.combining_degree());
  std::printf("final table size: %zu (invariants %s)\n", table.size_slow(),
              table.check_invariants() ? "OK" : "BROKEN");
  mem::EbrDomain::instance().drain();
  return table.check_invariants() ? 0 : 1;
}
