// The paper's motivating example (§1), end to end: a skip-list priority
// queue where Insert operations parallelize on HTM while RemoveMin
// operations always conflict — and HCF handles each class with its own
// policy and publication array:
//
//   Insert    -> all four phases (speculation usually wins)
//   RemoveMin -> announce immediately, combine via remove_min_n
//
// The example runs a producer/consumer mix and prints, per class, where
// operations completed — demonstrating that RemoveMins get batched by
// combiners while Inserts mostly commit privately.
#include <cstdio>
#include <thread>
#include <vector>

#include "adapters/pq_ops.hpp"
#include "core/engine.hpp"
#include "ds/skiplist_pq.hpp"
#include "mem/ebr.hpp"
#include "util/rng.hpp"

int main() {
  using namespace hcf;
  using Pq = ds::SkipListPq<std::uint64_t>;

  Pq pq;
  for (std::uint64_t i = 0; i < 10000; ++i) pq.insert(i * 7 % 100000);

  // Per-op-type publication arrays fit the single-combiner specialization
  // (§2.4): the combiner keeps the selection lock while it works, so
  // concurrent RemoveMins accumulate into one combined batch.
  core::HcfSingleCombinerEngine<Pq> engine(pq, adapters::pq_paper_config(),
                                           adapters::kPqNumArrays);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 40000;
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> removed_counts(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(7 + t);
      adapters::PqInsertOp<std::uint64_t> insert;
      adapters::PqRemoveMinOp<std::uint64_t> remove_min;
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.next_bounded(100) < 60) {
          insert.set(rng.next_bounded(100000));
          engine.execute(insert);
        } else {
          engine.execute(remove_min);
          if (remove_min.result().has_value()) ++removed_counts[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto snap = core::EngineStatsSnapshot::capture(engine.stats());
  const char* class_names[] = {"Insert", "RemoveMin"};
  for (int cls = 0; cls < 2; ++cls) {
    std::printf("%s operations (%llu total):\n", class_names[cls],
                static_cast<unsigned long long>(snap.class_total(cls)));
    for (int p = 0; p < core::kNumPhases; ++p) {
      const auto phase = static_cast<core::Phase>(p);
      const auto count = snap.completions[cls][p];
      if (snap.class_total(cls) > 0) {
        std::printf("  %-18s %8llu (%.1f%%)\n", core::to_string(phase),
                    static_cast<unsigned long long>(count),
                    100.0 * static_cast<double>(count) /
                        static_cast<double>(snap.class_total(cls)));
      }
    }
  }
  std::printf("combining degree: %.2f ops per combiner session\n",
              snap.combining_degree());
  std::uint64_t removed = 0;
  for (auto c : removed_counts) removed += c;
  std::printf("removed %llu keys; %zu remain; invariants %s\n",
              static_cast<unsigned long long>(removed), pq.size_slow(),
              pq.check_invariants() ? "OK" : "BROKEN");
  mem::EbrDomain::instance().drain();
  return pq.check_invariants() ? 0 : 1;
}
