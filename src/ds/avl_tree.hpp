// Sequential AVL-tree set (paper §3.4).
//
// Beyond the textbook algorithm, two details matter for speculation and
// combining:
//
//   * Writes are conditional: child pointers and heights are only stored
//     when their value actually changes. A textbook implementation that
//     re-assigns every pointer on the search path would make any two
//     updates conflict at the root, destroying the TLE scalability the
//     paper reports for uniform workloads; with conditional writes,
//     updates in disjoint subtrees share only reads.
//   * A "look-aside" copy of the root's key is maintained (the paper's few
//     trivial changes), read non-transactionally by should_help to select
//     only pending operations on the same side of the root. The value may
//     be stale — that can only affect performance, never correctness.
//
// Batch combining/elimination over set operations lives in
// adapters/avl_ops.hpp; here we provide the plain set interface.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"

namespace hcf::ds {

template <htm::detail::TxValue K>
class AvlTree {
 public:
  struct Node {
    explicit Node(K k) {
      key.init(k);
      height.init(1);
    }
    htm::TxField<K> key;  // mutable: delete-by-successor copies keys
    htm::TxField<std::int32_t> height{1};
    htm::TxField<Node*> left{nullptr};
    htm::TxField<Node*> right{nullptr};
  };

  AvlTree() = default;
  ~AvlTree() { destroy(root_.get()); }
  AvlTree(const AvlTree&) = delete;
  AvlTree& operator=(const AvlTree&) = delete;

  bool insert(K key) {
    bool added = false;
    Node* new_root = insert_rec(root_.get(), key, &added);
    set_root(new_root);
    return added;
  }

  bool remove(K key) {
    bool removed = false;
    Node* new_root = remove_rec(root_.get(), key, &removed);
    if (removed) set_root(new_root);
    return removed;
  }

  bool contains(K key) const {
    Node* n = root_.get();
    while (n != nullptr) {
      const K nk = n->key.get();
      if (key == nk) return true;
      n = key < nk ? n->left.get() : n->right.get();
    }
    return false;
  }

  // Non-transactional peek at the root key (the look-aside variable used by
  // should_help). May be stale; never wrong to act on.
  bool root_key_hint(K* out) const noexcept {
    if (!has_root_hint_field_.load_plain()) return false;
    *out = root_key_hint_field_.load_plain();
    return true;
  }

  // ---- test / inspection helpers (single-threaded use) ----

  std::size_t size_slow() const { return count(root_.get()); }

  bool check_invariants() const {
    bool ok = true;
    K prev{};
    bool have_prev = false;
    check_rec(root_.get(), &ok, &prev, &have_prev);
    return ok;
  }

  template <typename F>
  void for_each(F&& f) const {
    in_order(root_.get(), f);
  }

  int height_of_root() const {
    Node* r = root_.get();
    return r == nullptr ? 0 : r->height.get();
  }

 private:
  // ---- conditional-write helpers ----
  static void set_child(htm::TxField<Node*>& field, Node* value) {
    if (field.get() != value) field = value;
  }
  static void set_height(Node* n, std::int32_t h) {
    if (n->height.get() != h) n->height = h;
  }

  static std::int32_t height(Node* n) {
    return n == nullptr ? 0 : n->height.get();
  }
  static std::int32_t balance(Node* n) {
    return height(n->left.get()) - height(n->right.get());
  }
  static void update_height(Node* n) {
    set_height(n, 1 + std::max(height(n->left.get()), height(n->right.get())));
  }

  static Node* rotate_right(Node* y) {
    Node* x = y->left.get();
    Node* t2 = x->right.get();
    x->right = y;
    y->left = t2;
    update_height(y);
    update_height(x);
    return x;
  }

  static Node* rotate_left(Node* x) {
    Node* y = x->right.get();
    Node* t2 = y->left.get();
    y->left = x;
    x->right = t2;
    update_height(x);
    update_height(y);
    return y;
  }

  static Node* rebalance(Node* n) {
    update_height(n);
    const std::int32_t b = balance(n);
    if (b > 1) {
      if (balance(n->left.get()) < 0) n->left = rotate_left(n->left.get());
      return rotate_right(n);
    }
    if (b < -1) {
      if (balance(n->right.get()) > 0) n->right = rotate_right(n->right.get());
      return rotate_left(n);
    }
    return n;
  }

  Node* insert_rec(Node* n, K key, bool* added) {
    if (n == nullptr) {
      *added = true;
      return htm::make<Node>(key);
    }
    const K nk = n->key.get();
    if (key == nk) return n;
    if (key < nk) {
      set_child(n->left, insert_rec(n->left.get(), key, added));
    } else {
      set_child(n->right, insert_rec(n->right.get(), key, added));
    }
    return *added ? rebalance(n) : n;
  }

  Node* remove_rec(Node* n, K key, bool* removed) {
    if (n == nullptr) return nullptr;
    const K nk = n->key.get();
    if (key < nk) {
      set_child(n->left, remove_rec(n->left.get(), key, removed));
    } else if (key > nk) {
      set_child(n->right, remove_rec(n->right.get(), key, removed));
    } else {
      *removed = true;
      Node* l = n->left.get();
      Node* r = n->right.get();
      if (l == nullptr || r == nullptr) {
        htm::retire(n);
        return l != nullptr ? l : r;
      }
      // Two children: copy in-order successor's key, then delete it.
      Node* succ = r;
      while (succ->left.get() != nullptr) succ = succ->left.get();
      const K sk = succ->key.get();
      n->key = sk;
      bool dummy = false;
      set_child(n->right, remove_rec(r, sk, &dummy));
    }
    return *removed ? rebalance(n) : n;
  }

  void set_root(Node* new_root) {
    if (root_.get() != new_root) root_ = new_root;
    // Maintain the look-aside root key. Conditional writes keep it off the
    // hot path for updates that do not move the root.
    if (new_root == nullptr) {
      if (has_root_hint_field_.get()) has_root_hint_field_ = false;
      return;
    }
    const K rk = new_root->key.get();
    if (!has_root_hint_field_.get()) has_root_hint_field_ = true;
    if (root_key_hint_field_.get() != rk) root_key_hint_field_ = rk;
  }

  static void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left.get());
    destroy(n->right.get());
    mem::dealloc(n);
  }

  static std::size_t count(Node* n) {
    return n == nullptr
               ? 0
               : 1 + count(n->left.get()) + count(n->right.get());
  }

  static std::int32_t check_rec(Node* n, bool* ok, K* prev, bool* have_prev) {
    if (n == nullptr || !*ok) return 0;
    const std::int32_t lh = check_rec(n->left.get(), ok, prev, have_prev);
    if (*have_prev && !(*prev < n->key.get())) *ok = false;  // sortedness
    *prev = n->key.get();
    *have_prev = true;
    const std::int32_t rh = check_rec(n->right.get(), ok, prev, have_prev);
    const std::int32_t h = 1 + std::max(lh, rh);
    if (n->height.get() != h) *ok = false;       // height bookkeeping
    if (lh - rh > 1 || rh - lh > 1) *ok = false;  // AVL balance
    return h;
  }

  template <typename F>
  static void in_order(Node* n, F&& f) {
    if (n == nullptr) return;
    in_order(n->left.get(), f);
    f(n->key.get());
    in_order(n->right.get(), f);
  }

  htm::TxField<Node*> root_{nullptr};
  // Look-aside root key (§3.4), read with load_plain() by should_help.
  htm::TxField<K> root_key_hint_field_{};
  htm::TxField<bool> has_root_hint_field_{false};
};

}  // namespace hcf::ds
