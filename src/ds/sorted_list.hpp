// Sequential sorted singly-linked list set — the classic coarse-grained
// testbed from the TLE/FC literature (long traversals, large read sets,
// updates anywhere in the list). Complements the hash table (short ops,
// one hotspot) and the AVL tree (logarithmic ops): list operations are
// linear, so capacity aborts and read-set validation costs actually matter.
//
// Batch hook: apply_sorted_batch performs one traversal for an entire
// key-sorted batch of insert/remove/contains operations — the natural
// combining for a sorted structure (k operations in one O(n + k) pass
// instead of k O(n) passes).
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <span>

#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"

namespace hcf::ds {

template <htm::detail::TxValue K>
class SortedList {
 public:
  struct Node {
    explicit Node(K k) : key(k) {}
    const K key;
    htm::TxField<Node*> next{nullptr};
  };

  enum class BatchOpKind : std::uint8_t { Contains, Insert, Remove };
  struct BatchOp {
    K key;
    BatchOpKind kind;
    bool result;  // out
  };

  SortedList() = default;
  ~SortedList() {
    Node* n = head_.get();
    while (n != nullptr) {
      Node* next = n->next.get();
      mem::dealloc(n);
      n = next;
    }
  }
  SortedList(const SortedList&) = delete;
  SortedList& operator=(const SortedList&) = delete;

  bool insert(K key) {
    Node* prev = nullptr;
    Node* cur = head_.get();
    while (cur != nullptr && cur->key < key) {
      prev = cur;
      cur = cur->next.get();
    }
    if (cur != nullptr && cur->key == key) return false;
    Node* node = htm::make<Node>(key);
    node->next.init(cur);
    set_next(prev, node);
    return true;
  }

  bool remove(K key) {
    Node* prev = nullptr;
    Node* cur = head_.get();
    while (cur != nullptr && cur->key < key) {
      prev = cur;
      cur = cur->next.get();
    }
    if (cur == nullptr || cur->key != key) return false;
    set_next(prev, cur->next.get());
    htm::retire(cur);
    return true;
  }

  bool contains(K key) const {
    Node* cur = head_.get();
    while (cur != nullptr && cur->key < key) cur = cur->next.get();
    return cur != nullptr && cur->key == key;
  }

  // Applies a batch of operations *sorted by key* in a single traversal.
  // Operations on equal keys are applied in batch order against the
  // evolving state (combining + elimination, as in the AVL adapter).
  // Precondition: ops sorted ascending by key.
  void apply_sorted_batch(std::span<BatchOp> ops) {
    Node* prev = nullptr;
    Node* cur = head_.get();
    std::size_t i = 0;
    while (i < ops.size()) {
      const K key = ops[i].key;
      assert(i == 0 || ops[i - 1].key <= key);
      while (cur != nullptr && cur->key < key) {
        prev = cur;
        cur = cur->next.get();
      }
      bool present = cur != nullptr && cur->key == key;
      const bool initially_present = present;
      std::size_t j = i;
      while (j < ops.size() && ops[j].key == key) {
        switch (ops[j].kind) {
          case BatchOpKind::Contains:
            ops[j].result = present;
            break;
          case BatchOpKind::Insert:
            ops[j].result = !present;
            present = true;
            break;
          case BatchOpKind::Remove:
            ops[j].result = present;
            present = false;
            break;
        }
        ++j;
      }
      if (present != initially_present) {
        if (present) {
          Node* node = htm::make<Node>(key);
          node->next.init(cur);
          set_next(prev, node);
          prev = node;  // continue scanning after the new node
        } else {
          Node* next = cur->next.get();
          set_next(prev, next);
          htm::retire(cur);
          cur = next;
        }
      } else if (initially_present) {
        // Key stays; step past it so later (larger) keys continue from here.
        prev = cur;
        cur = cur->next.get();
      }
      i = j;
    }
  }

  std::size_t size_slow() const {
    std::size_t count = 0;
    for (Node* n = head_.get(); n != nullptr; n = n->next.get()) ++count;
    return count;
  }

  bool empty() const { return head_.get() == nullptr; }

  // Invariant: strictly ascending keys.
  bool check_invariants() const {
    Node* prev = nullptr;
    for (Node* n = head_.get(); n != nullptr; n = n->next.get()) {
      if (prev != nullptr && !(prev->key < n->key)) return false;
      prev = n;
    }
    return true;
  }

  template <typename F>
  void for_each(F&& f) const {
    for (Node* n = head_.get(); n != nullptr; n = n->next.get()) f(n->key);
  }

 private:
  void set_next(Node* prev, Node* value) {
    if (prev == nullptr) {
      head_ = value;
    } else {
      prev->next = value;
    }
  }

  htm::TxField<Node*> head_{nullptr};
};

}  // namespace hcf::ds
