// Sequential skip-list-based priority queue (the paper's §1 motivating
// example): Insert operations on random keys touch disjoint regions and can
// run concurrently on HTM, while RemoveMin operations all contend on the
// head of the list and always conflict — precisely the split HCF targets.
//
// RemoveMin-n removes the n smallest keys with one write of each head
// pointer level, the combining hook used by the HCF priority-queue
// configuration (k combined RemoveMins cost barely more than one).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"
#include "util/rng.hpp"
#include "util/thread_id.hpp"

namespace hcf::ds {

template <htm::detail::TxValue K>
class SkipListPq {
 public:
  static constexpr int kMaxLevel = 16;

  struct Node {
    Node(K k, int lvl) : key(k), level(lvl) {}
    const K key;
    const int level;  // number of levels this node participates in (>= 1)
    htm::TxField<Node*> next[kMaxLevel];
  };

  SkipListPq() : head_(K{}, kMaxLevel) {}

  ~SkipListPq() {
    Node* n = head_.next[0].get();
    while (n != nullptr) {
      Node* next = n->next[0].get();
      mem::dealloc(n);
      n = next;
    }
  }

  SkipListPq(const SkipListPq&) = delete;
  SkipListPq& operator=(const SkipListPq&) = delete;

  // Inserts a key (duplicates allowed — it is a priority queue, not a set).
  void insert(K key) {
    Node* preds[kMaxLevel];
    find_predecessors(key, preds);
    const int level = random_level();
    Node* node = htm::make<Node>(key, level);
    for (int l = 0; l < level; ++l) {
      node->next[l].init(preds[l]->next[l].get());
      preds[l]->next[l] = node;
    }
  }

  // Removes and returns the smallest key, or nullopt when empty. Always
  // reads and writes head_.next[0] — the designed-in contention point.
  std::optional<K> remove_min() {
    Node* first = head_.next[0].get();
    if (first == nullptr) return std::nullopt;
    const K key = first->key;
    for (int l = 0; l < first->level; ++l) {
      head_.next[l] = first->next[l].get();
    }
    htm::retire(first);
    return key;
  }

  // Removes up to `out.size()` smallest keys; returns how many were
  // removed. Each head level is rewritten once for the whole batch.
  std::size_t remove_min_n(std::span<K> out) {
    std::size_t n = 0;
    Node* cursor = head_.next[0].get();
    Node* removed[util::kMaxThreads > 64 ? util::kMaxThreads : 64];
    int max_level = 0;
    while (n < out.size() && cursor != nullptr &&
           n < std::size(removed)) {
      out[n] = cursor->key;
      removed[n] = cursor;
      if (cursor->level > max_level) max_level = cursor->level;
      cursor = cursor->next[0].get();
      ++n;
    }
    if (n == 0) return 0;
    // `cursor` is the first survivor in level-0 order. For each level, the
    // new head successor is the first survivor present at that level; all
    // removed nodes are a prefix of every level's list, so we can follow
    // the removed nodes' own next pointers.
    for (int l = 0; l < max_level; ++l) {
      Node* succ = head_.next[l].get();
      while (succ != nullptr && is_removed(removed, n, succ)) {
        succ = succ->next[l].get();
      }
      head_.next[l] = succ;
    }
    for (std::size_t i = 0; i < n; ++i) htm::retire(removed[i]);
    return n;
  }

  std::optional<K> peek_min() const {
    Node* first = head_.next[0].get();
    if (first == nullptr) return std::nullopt;
    return first->key;
  }

  bool empty() const { return head_.next[0].get() == nullptr; }

  std::size_t size_slow() const {
    std::size_t count = 0;
    for (Node* n = head_.next[0].get(); n != nullptr; n = n->next[0].get()) {
      ++count;
    }
    return count;
  }

  // Invariants: each level sorted, every level-l list is a sublist of
  // level l-1, bottom level contains all nodes.
  bool check_invariants() const {
    for (int l = 0; l < kMaxLevel; ++l) {
      Node* prev = nullptr;
      for (Node* n = head_.next[l].get(); n != nullptr;
           n = n->next[l].get()) {
        if (n->level <= l) return false;
        if (prev != nullptr && n->key < prev->key) return false;
        if (l > 0 && !level_below_contains(n, l - 1)) return false;
        prev = n;
      }
    }
    return true;
  }

 private:
  void find_predecessors(K key, Node* preds[kMaxLevel]) {
    Node* cur = &head_;
    for (int l = kMaxLevel - 1; l >= 0; --l) {
      Node* next = cur->next[l].get();
      while (next != nullptr && next->key < key) {
        cur = next;
        next = cur->next[l].get();
      }
      preds[l] = cur;
    }
  }

  static bool is_removed(Node* const* removed, std::size_t n, Node* node) {
    for (std::size_t i = 0; i < n; ++i) {
      if (removed[i] == node) return true;
    }
    return false;
  }

  bool level_below_contains(Node* node, int level) const {
    for (Node* n = head_.next[level].get(); n != nullptr;
         n = n->next[level].get()) {
      if (n == node) return true;
    }
    return false;
  }

  static int random_level() {
    thread_local util::Xoshiro256 rng(0x5517 ^ util::this_thread_id());
    int level = 1;
    while (level < kMaxLevel && (rng.next() & 3) == 0) ++level;
    return level;
  }

  Node head_;
};

}  // namespace hcf::ds
