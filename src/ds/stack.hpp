// Sequential linked stack — the classic flat-combining testbed (the paper
// cites FC stacks outperforming all concurrent alternatives, and notes HCF
// is *not* expected to win here: every operation conflicts at the top).
//
// Batch hooks: push_n (one top write for the whole chain), pop_n (one top
// write). Elimination lives in adapters/stack_ops.hpp, where concurrent
// Push/Pop pairs cancel without touching the stack at all — the strongest
// form of combining the FC literature describes.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"

namespace hcf::ds {

template <htm::detail::TxValue T>
class Stack {
 public:
  struct Node {
    explicit Node(T v) : value(v) {}
    const T value;
    htm::TxField<Node*> next{nullptr};
  };

  Stack() = default;
  ~Stack() {
    Node* n = top_.get();
    while (n != nullptr) {
      Node* next = n->next.get();
      mem::dealloc(n);
      n = next;
    }
  }
  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  void push(T value) {
    Node* node = htm::make<Node>(value);
    node->next.init(top_.get());
    top_ = node;
  }

  std::optional<T> pop() {
    Node* node = top_.get();
    if (node == nullptr) return std::nullopt;
    top_ = node->next.get();
    const T value = node->value;
    htm::retire(node);
    return value;
  }

  std::optional<T> peek() const {
    Node* node = top_.get();
    if (node == nullptr) return std::nullopt;
    return node->value;
  }

  // Pushes values[0..n); values[n-1] ends up on top. One top write.
  void push_n(std::span<const T> values) {
    if (values.empty()) return;
    Node* chain_top = nullptr;
    Node* chain_bottom = nullptr;
    for (const T& v : values) {
      Node* node = htm::make<Node>(v);
      node->next.init(chain_top);
      if (chain_bottom == nullptr) chain_bottom = node;
      chain_top = node;
    }
    // chain_top holds values[n-1] ... values[0] == chain_bottom; link the
    // chain bottom to the current top with private writes, then publish.
    chain_bottom->next.init(top_.get());
    top_ = chain_top;
  }

  // Pops up to out.size() values (top first); one top write.
  std::size_t pop_n(std::span<T> out) {
    std::size_t n = 0;
    Node* cur = top_.get();
    while (n < out.size() && cur != nullptr) {
      out[n++] = cur->value;
      Node* next = cur->next.get();
      htm::retire(cur);
      cur = next;
    }
    if (n > 0) top_ = cur;
    return n;
  }

  bool empty() const { return top_.get() == nullptr; }

  std::size_t size_slow() const {
    std::size_t count = 0;
    for (Node* n = top_.get(); n != nullptr; n = n->next.get()) ++count;
    return count;
  }

  template <typename F>
  void for_each(F&& f) const {
    for (Node* n = top_.get(); n != nullptr; n = n->next.get()) f(n->value);
  }

 private:
  htm::TxField<Node*> top_{nullptr};
};

}  // namespace hcf::ds
