// Sequential hash table, following the paper's §3.3 design exactly:
//
//   * a preset number of buckets, each a singly-linked list of key-value
//     nodes;
//   * a global doubly-linked "table list" threading every node, supporting
//     efficient whole-table iteration. Insert pushes at the table-list
//     head (the contention point); Remove unlinks from a random position
//     (rarely a conflict); Find never touches it.
//   * Insert-n: inserts a batch of pairs, chaining the new nodes so the
//     table-list head is written once per batch — the combining hook the
//     paper adds for FC/HCF.
//
// The code is sequential: no concurrency logic appears here. Fields are
// TxField, whose accesses are plain when running under the lock and
// instrumented inside a hardware transaction — the mechanical substitute
// for real HTM's transparent cache-line tracking (see DESIGN.md).
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"
#include "util/rng.hpp"

namespace hcf::ds {

template <htm::detail::TxValue K, htm::detail::TxValue V>
class HashTable {
 public:
  struct Node {
    Node(K k, V v) : key(k) { value.init(v); }
    const K key;  // immutable once published; reads need no instrumentation
    htm::TxField<V> value;
    htm::TxField<Node*> bucket_next{nullptr};
    htm::TxField<Node*> list_prev{nullptr};
    htm::TxField<Node*> list_next{nullptr};
  };

  explicit HashTable(std::size_t num_buckets)
      : mask_(round_up_pow2(num_buckets) - 1),
        buckets_(round_up_pow2(num_buckets)) {}

  ~HashTable() {
    Node* n = list_head_.get();
    while (n) {
      Node* next = n->list_next.get();
      mem::dealloc(n);
      n = next;
    }
  }

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;

  // Inserts (key, value); if the key exists, updates the value in place.
  // Returns true iff a new node was inserted.
  bool insert(K key, V value) {
    htm::TxField<Node*>& bucket = bucket_for(key);
    for (Node* n = bucket.get(); n != nullptr; n = n->bucket_next.get()) {
      if (n->key == key) {
        n->value = value;
        return false;
      }
    }
    Node* node = htm::make<Node>(key, value);
    link_bucket(bucket, node);
    link_table_list(node);
    return true;
  }

  std::optional<V> find(K key) const {
    const htm::TxField<Node*>& bucket = bucket_for(key);
    for (Node* n = bucket.get(); n != nullptr; n = n->bucket_next.get()) {
      if (n->key == key) return n->value.get();
    }
    return std::nullopt;
  }

  bool contains(K key) const { return find(key).has_value(); }

  // Removes the key from its bucket *and* from the table list (§3.3).
  // Returns true iff the key was present.
  bool remove(K key) {
    htm::TxField<Node*>& bucket = bucket_for(key);
    Node* prev = nullptr;
    for (Node* n = bucket.get(); n != nullptr;
         prev = n, n = n->bucket_next.get()) {
      if (n->key != key) continue;
      Node* next = n->bucket_next.get();
      if (prev != nullptr) {
        prev->bucket_next = next;
      } else {
        bucket = next;
      }
      unlink_table_list(n);
      htm::retire(n);
      return true;
    }
    return false;
  }

  // Insert-n: applies `kvs` as one batch. results[i] is set to true iff
  // kvs[i] inserted a new node (false means value update). New nodes are
  // chained privately and spliced into the table list with a single write
  // of the head pointer, regardless of batch size.
  void insert_n(std::span<const std::pair<K, V>> kvs,
                std::span<bool> results) {
    assert(results.size() >= kvs.size());
    Node* chain_head = nullptr;
    Node* chain_tail = nullptr;
    for (std::size_t i = 0; i < kvs.size(); ++i) {
      const auto [key, value] = kvs[i];
      htm::TxField<Node*>& bucket = bucket_for(key);
      Node* existing = nullptr;
      for (Node* n = bucket.get(); n != nullptr; n = n->bucket_next.get()) {
        if (n->key == key) {
          existing = n;
          break;
        }
      }
      if (existing != nullptr) {
        existing->value = value;
        results[i] = false;
        continue;
      }
      Node* node = htm::make<Node>(key, value);
      link_bucket(bucket, node);
      // Chain privately; list_prev fixed up during the splice below.
      node->list_next.init(chain_head);
      if (chain_head != nullptr) {
        chain_head->list_prev.init(node);
      } else {
        chain_tail = node;
      }
      chain_head = node;
      results[i] = true;
    }
    if (chain_head != nullptr) splice_table_list(chain_head, chain_tail);
  }

  // Iterates key-value pairs in table-list order (most recent first).
  template <typename F>
  void for_each(F&& f) const {
    for (Node* n = list_head_.get(); n != nullptr; n = n->list_next.get()) {
      f(n->key, n->value.get());
    }
  }

  // O(n) element count via the table list.
  std::size_t size_slow() const {
    std::size_t count = 0;
    for (Node* n = list_head_.get(); n != nullptr; n = n->list_next.get()) {
      ++count;
    }
    return count;
  }

  std::size_t bucket_count() const noexcept { return mask_ + 1; }

  // Structural invariant check for tests: every node is in exactly the
  // bucket its key hashes to, bucket membership matches table-list
  // membership, and the table list is consistently doubly linked.
  bool check_invariants() const {
    std::size_t list_count = 0;
    Node* prev = nullptr;
    for (Node* n = list_head_.get(); n != nullptr; n = n->list_next.get()) {
      if (n->list_prev.get() != prev) return false;
      if (!bucket_contains(n)) return false;
      prev = n;
      ++list_count;
    }
    std::size_t bucket_total = 0;
    for (const auto& b : buckets_) {
      for (Node* n = b.get(); n != nullptr; n = n->bucket_next.get()) {
        ++bucket_total;
        if (bucket_index(n->key) !=
            static_cast<std::size_t>(&b - buckets_.data())) {
          return false;
        }
      }
    }
    return bucket_total == list_count;
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::size_t bucket_index(K key) const noexcept {
    return static_cast<std::size_t>(
               util::mix64(static_cast<std::uint64_t>(key))) &
           mask_;
  }

  htm::TxField<Node*>& bucket_for(K key) noexcept {
    return buckets_[bucket_index(key)];
  }
  const htm::TxField<Node*>& bucket_for(K key) const noexcept {
    return buckets_[bucket_index(key)];
  }

  static void link_bucket(htm::TxField<Node*>& bucket, Node* node) {
    node->bucket_next.init(bucket.get());
    bucket = node;
  }

  void link_table_list(Node* node) {
    Node* head = list_head_.get();
    node->list_next.init(head);
    node->list_prev.init(nullptr);
    if (head != nullptr) head->list_prev = node;
    list_head_ = node;
  }

  void unlink_table_list(Node* node) {
    Node* prev = node->list_prev.get();
    Node* next = node->list_next.get();
    if (prev != nullptr) {
      prev->list_next = next;
    } else {
      list_head_ = next;
    }
    if (next != nullptr) next->list_prev = prev;
  }

  void splice_table_list(Node* chain_head, Node* chain_tail) {
    Node* old_head = list_head_.get();
    chain_tail->list_next.init(old_head);
    chain_head->list_prev.init(nullptr);
    if (old_head != nullptr) old_head->list_prev = chain_tail;
    list_head_ = chain_head;
  }

  bool bucket_contains(Node* node) const {
    for (Node* n = bucket_for(node->key).get(); n != nullptr;
         n = n->bucket_next.get()) {
      if (n == node) return true;
    }
    return false;
  }

  std::size_t mask_;
  std::vector<htm::TxField<Node*>> buckets_;
  htm::TxField<Node*> list_head_{nullptr};
};

}  // namespace hcf::ds
