// Sequential doubly-linked deque (paper §2.4's "operations on different
// ends of a double-ended queue" example). Left-end and right-end operations
// conflict with their own end but — when the deque is long enough — not
// with the opposite end, which is exactly the structure HCF's multiple
// publication arrays exploit (one array + combiner per end).
//
// Batch hooks: push_n_left / push_n_right splice a privately-built chain
// with one write of the end pointer; pop_n_left / pop_n_right unlink a
// batch with one write per end.
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <span>

#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"

namespace hcf::ds {

template <htm::detail::TxValue T>
class Deque {
 public:
  struct Node {
    explicit Node(T v) : value(v) {}
    const T value;
    htm::TxField<Node*> prev{nullptr};
    htm::TxField<Node*> next{nullptr};
  };

  Deque() = default;
  ~Deque() {
    Node* n = left_.get();
    while (n != nullptr) {
      Node* next = n->next.get();
      mem::dealloc(n);
      n = next;
    }
  }
  Deque(const Deque&) = delete;
  Deque& operator=(const Deque&) = delete;

  void push_left(T value) {
    Node* node = htm::make<Node>(value);
    Node* old = left_.get();
    node->next.init(old);
    if (old != nullptr) {
      old->prev = node;
    } else {
      right_ = node;
    }
    left_ = node;
  }

  void push_right(T value) {
    Node* node = htm::make<Node>(value);
    Node* old = right_.get();
    node->prev.init(old);
    if (old != nullptr) {
      old->next = node;
    } else {
      left_ = node;
    }
    right_ = node;
  }

  std::optional<T> pop_left() {
    Node* node = left_.get();
    if (node == nullptr) return std::nullopt;
    const T value = node->value;
    Node* next = node->next.get();
    left_ = next;
    if (next != nullptr) {
      next->prev = nullptr;
    } else {
      right_ = nullptr;
    }
    htm::retire(node);
    return value;
  }

  std::optional<T> pop_right() {
    Node* node = right_.get();
    if (node == nullptr) return std::nullopt;
    const T value = node->value;
    Node* prev = node->prev.get();
    right_ = prev;
    if (prev != nullptr) {
      prev->next = nullptr;
    } else {
      left_ = nullptr;
    }
    htm::retire(node);
    return value;
  }

  // Pushes values[0..n) so that values[0] ends up outermost on the left.
  void push_n_left(std::span<const T> values) {
    if (values.empty()) return;
    // Build the chain privately: values[0] <-> values[1] <-> ...
    Node* chain_head = htm::make<Node>(values[0]);
    Node* chain_tail = chain_head;
    for (std::size_t i = 1; i < values.size(); ++i) {
      Node* node = htm::make<Node>(values[i]);
      node->prev.init(chain_tail);
      chain_tail->next.init(node);
      chain_tail = node;
    }
    Node* old = left_.get();
    chain_tail->next.init(old);
    if (old != nullptr) {
      old->prev = chain_tail;
    } else {
      right_ = chain_tail;
    }
    left_ = chain_head;
  }

  // Pushes values[0..n) so that values[0] ends up outermost on the right.
  void push_n_right(std::span<const T> values) {
    if (values.empty()) return;
    Node* chain_tail = htm::make<Node>(values[0]);  // outermost right
    Node* chain_head = chain_tail;
    for (std::size_t i = 1; i < values.size(); ++i) {
      Node* node = htm::make<Node>(values[i]);
      node->next.init(chain_head);
      chain_head->prev.init(node);
      chain_head = node;
    }
    Node* old = right_.get();
    chain_head->prev.init(old);
    if (old != nullptr) {
      old->next = chain_head;
    } else {
      left_ = chain_head;
    }
    right_ = chain_tail;
  }

  // Pops up to out.size() values from the left; returns the count.
  std::size_t pop_n_left(std::span<T> out) {
    std::size_t n = 0;
    Node* cur = left_.get();
    Node* last = nullptr;
    while (n < out.size() && cur != nullptr) {
      out[n++] = cur->value;
      last = cur;
      cur = cur->next.get();
    }
    if (n == 0) return 0;
    left_ = cur;
    if (cur != nullptr) {
      cur->prev = nullptr;
    } else {
      right_ = nullptr;
    }
    // Retire the unlinked prefix.
    Node* p = last;
    for (std::size_t i = 0; i < n; ++i) {
      Node* prev = p->prev.get();
      htm::retire(p);
      p = prev;
    }
    return n;
  }

  std::size_t pop_n_right(std::span<T> out) {
    std::size_t n = 0;
    Node* cur = right_.get();
    Node* last = nullptr;
    while (n < out.size() && cur != nullptr) {
      out[n++] = cur->value;
      last = cur;
      cur = cur->prev.get();
    }
    if (n == 0) return 0;
    right_ = cur;
    if (cur != nullptr) {
      cur->next = nullptr;
    } else {
      left_ = nullptr;
    }
    Node* p = last;
    for (std::size_t i = 0; i < n; ++i) {
      Node* next = p->next.get();
      htm::retire(p);
      p = next;
    }
    return n;
  }

  bool empty() const { return left_.get() == nullptr; }

  std::size_t size_slow() const {
    std::size_t count = 0;
    for (Node* n = left_.get(); n != nullptr; n = n->next.get()) ++count;
    return count;
  }

  // Doubly-linked consistency: forward and backward traversals agree.
  bool check_invariants() const {
    Node* prev = nullptr;
    for (Node* n = left_.get(); n != nullptr; n = n->next.get()) {
      if (n->prev.get() != prev) return false;
      prev = n;
    }
    if (right_.get() != prev) return false;
    return true;
  }

  template <typename F>
  void for_each(F&& f) const {
    for (Node* n = left_.get(); n != nullptr; n = n->next.get()) {
      f(n->value);
    }
  }

 private:
  htm::TxField<Node*> left_{nullptr};
  htm::TxField<Node*> right_{nullptr};
};

}  // namespace hcf::ds
