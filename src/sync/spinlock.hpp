// Plain test-and-test-and-set spinlock with exponential backoff.
// Used where elision is *not* wanted: the SCM auxiliary lock (Afek et al.)
// and internal bookkeeping. Not subscribable by transactions.
#pragma once

#include <atomic>

#include "util/backoff.hpp"
#include "util/cacheline.hpp"

namespace hcf::sync {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    util::SpinWait waiter;
    while (!try_lock()) {
      while (locked_.load(std::memory_order_relaxed)) waiter.wait();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

  bool is_locked() const noexcept {
    return locked_.load(std::memory_order_acquire);
  }

 private:
  alignas(util::kCacheLineSize) std::atomic<bool> locked_{false};
};

}  // namespace hcf::sync
