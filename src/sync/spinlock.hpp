// Plain test-and-test-and-set spinlock with exponential backoff.
// Used where elision is *not* wanted: the SCM auxiliary lock (Afek et al.),
// the EBR orphan list, and internal bookkeeping. Not subscribable by
// transactions.
#pragma once

#include <atomic>

#include "util/cacheline.hpp"
#include "util/parking.hpp"
#include "util/thread_annotations.hpp"

namespace hcf::sync {

class CAPABILITY("spinlock") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept ACQUIRE() {
    // Internal bookkeeping lock: critical sections are a few loads, so the
    // wait never escalates past spin/yield (kSpinLockWord never parks).
    util::TieredWait waiter(util::WaitSite::kSpinLockWord);
    for (;;) {
      if (try_lock()) return;
      while (locked_.load(std::memory_order_relaxed)) waiter.wait();
    }
  }

  bool try_lock() noexcept TRY_ACQUIRE(true) {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept RELEASE() {
    locked_.store(false, std::memory_order_release);
  }

  bool is_locked() const noexcept {
    return locked_.load(std::memory_order_acquire);
  }

 private:
  alignas(util::kCacheLineSize) std::atomic<bool> locked_{false};
};

// RAII guard for SpinLock (sync::LockGuard is constrained to ElidableLock,
// which SpinLock deliberately is not).
class SCOPED_CAPABILITY SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) noexcept ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinGuard() RELEASE() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace hcf::sync
