// Elidable locks: locks whose state transactions can subscribe to, in the
// TLE sense. Two variants:
//
//   * TxLock      — test-and-test-and-set; minimal latency, unfair.
//   * FairTxLock  — ticket-based; starvation-free, required by the paper's
//                   progress argument (§2.3) for HCF starvation freedom.
//
// Both route state changes through TxCell strong operations (dooming
// overlapping transactions) and wait for commit write-back quiescence after
// acquisition, so a lock holder never observes — or races with — partial
// transactional state. See DESIGN.md "quiescence gate".
//
// Wait hierarchy (DESIGN.md §12): the lock word is 4 bytes so it doubles
// as a futex word. Under WaitPolicy::SpinPark a waiter that exhausts its
// spin/yield tiers publishes a waiters bit (the word's MSB) and sleeps on
// the word; unlock issues a wake only when the displaced value carries the
// bit, so uncontended release stays syscall-free. The transactional
// subscribe() path is untouched — elided readers abort on a held lock,
// they never park (a parked transaction would be aborted by the context
// switch on real HTM anyway).
#pragma once

#include <atomic>
#include <cstdint>

#include "sim_htm/txcell.hpp"
#include "util/backoff.hpp"
#include "util/cacheline.hpp"
#include "util/counters.hpp"
#include "util/parking.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_id.hpp"

namespace hcf::sync {

template <typename L>
concept ElidableLock = requires(L l, const L cl, util::WaitPolicy p) {
  l.lock();
  l.lock(p);
  l.unlock();
  { l.try_lock() } -> std::same_as<bool>;
  { cl.is_locked() } -> std::same_as<bool>;
  cl.subscribe();
  cl.wait_until_free();
  cl.wait_until_free(p);
};

namespace detail {

// MSB of every parkable lock word. Invariant: the bit is only ever set by
// a CAS from a *nonzero* (held) value and is cleared atomically with the
// release exchange, so "word != 0 iff the lock is held" keeps holding —
// subscribe() and try_lock() need no masking.
inline constexpr std::uint32_t kWaitersBit = 0x8000'0000u;

// Spin/yield/park until `word` reads 0. The park tier publishes the
// waiters bit, then sleeps on the exact observed value; the kernel-side
// equality check closes the window against a concurrent release (a word
// that changed before the syscall lands makes the wait return
// immediately).
inline void wait_word_free(htm::TxCell<std::uint32_t>& word,
                           util::WaitPolicy policy) noexcept {
  util::TieredWait waiter(util::WaitSite::kLockWord, policy);
  std::uint32_t v;
  while ((v = word.load()) != 0) {
    if (!waiter.wait()) continue;
    // Set the waiters bit (strong CAS from a held value only). A failed
    // CAS means the word moved under us — re-read before deciding again.
    if ((v & kWaitersBit) == 0 && !word.cas(v, v | kWaitersBit)) continue;
    util::park(word.wait_address(), v | kWaitersBit);
    waiter.reset();
  }
}

// Release a parkable word: clear it and wake the cohort iff the displaced
// value carried the waiters bit.
inline void release_word(htm::TxCell<std::uint32_t>& word) noexcept {
  if ((word.exchange(0) & kWaitersBit) != 0) {
    util::wake_all(word.wait_address());
  }
}

}  // namespace detail

class CAPABILITY("elidable_lock") TxLock {
 public:
  TxLock() = default;
  TxLock(const TxLock&) = delete;
  TxLock& operator=(const TxLock&) = delete;

  void lock(util::WaitPolicy policy = util::WaitPolicy::SpinYield) noexcept
      ACQUIRE() {
    util::ExpBackoff backoff(
        util::backoff_seed(util::BackoffSite::kLockAcquire));
    for (;;) {
      if (try_lock()) return;
      wait_until_free(policy);  // tiered wait; survives oversubscription
      backoff.pause();  // jitter so waiters don't re-CAS in lockstep
    }
  }

  bool try_lock() noexcept TRY_ACQUIRE(true) {
    if (word_.load() != 0) return false;
    if (!word_.cas(0, owner_word())) return false;
    acquisitions_.add();
    htm::protocol::note_lock_acquired();
    // Doomed subscribers are now guaranteed to fail validation; flush the
    // transactions that validated before our CAS.
    htm::wait_writeback_drain();
    return true;
  }

  void unlock() noexcept RELEASE() {
    htm::protocol::note_lock_released();
    detail::release_word(word_);
  }

  // Non-transactional probe.
  bool is_locked() const noexcept { return word_.load() != 0; }

  // Inside a transaction: joins the lock word to the read set and aborts
  // immediately if the lock is held (the paper's `if (L.isLocked()) abortHT`).
  // The waiters bit never makes this spuriously abort: it is only set
  // while the lock is held, when the subscription must abort anyway.
  // To TSA a successful subscription is the shared (reader) right: the
  // transaction either commits having observed no holder, or aborts — it
  // can never see a holder's partial state.
  void subscribe() const ASSERT_SHARED_CAPABILITY(this) {
    htm::note_lock_subscription();
    if (word_.read() != 0) htm::abort_tx(htm::AbortCode::LockBusy);
  }

  // Standard TLE discipline: do not start (or restart) a transaction while
  // the lock is held — it would abort immediately anyway. The wait-state
  // mutation (waiters bit, parking) is logically const, hence the mutable
  // word.
  void wait_until_free(
      util::WaitPolicy policy = util::WaitPolicy::SpinYield) const noexcept {
    detail::wait_word_free(word_, policy);
  }

  // Total successful acquisitions (the paper's "lock acquisition" metric).
  std::uint64_t acquisition_count() const noexcept {
    return acquisitions_.total();
  }
  void reset_stats() noexcept { acquisitions_.reset(); }

 private:
  static std::uint32_t owner_word() noexcept {
    // Dense thread ids stay far below the waiters bit.
    return static_cast<std::uint32_t>(util::this_thread_id()) + 1;
  }

  mutable htm::TxCell<std::uint32_t> word_{0};
  util::Counter acquisitions_;
};

class CAPABILITY("elidable_lock") FairTxLock {
 public:
  FairTxLock() = default;
  FairTxLock(const FairTxLock&) = delete;
  FairTxLock& operator=(const FairTxLock&) = delete;

  void lock(util::WaitPolicy policy = util::WaitPolicy::SpinYield) noexcept
      ACQUIRE() {
    const std::uint32_t ticket =
        next_.fetch_add(1, std::memory_order_acq_rel);
    util::TieredWait waiter(util::WaitSite::kTicketQueue, policy);
    for (;;) {
      if (serving_.load(std::memory_order_acquire) == ticket) break;
      if (!waiter.wait()) continue;
      // Park on the serving counter. Registration before the re-read and
      // the release side's bump before its waiter check are both seq_cst,
      // so one side always sees the other (Dekker); the kernel-side value
      // check absorbs the remaining window.
      ticket_waiters_.fetch_add(1, std::memory_order_seq_cst);
      const std::uint32_t cur = serving_.load(std::memory_order_seq_cst);
      if (cur != ticket) util::park(serving_, cur);
      ticket_waiters_.fetch_sub(1, std::memory_order_relaxed);
      waiter.reset();
    }
    held_.store(1);
    acquisitions_.add();
    htm::protocol::note_lock_acquired();
    htm::wait_writeback_drain();
  }

  bool try_lock() noexcept TRY_ACQUIRE(true) {
    std::uint32_t ticket = serving_.load(std::memory_order_acquire);
    if (next_.load(std::memory_order_acquire) != ticket) return false;
    if (!next_.compare_exchange_strong(ticket, ticket + 1,
                                       std::memory_order_acq_rel)) {
      return false;
    }
    held_.store(1);
    acquisitions_.add();
    htm::protocol::note_lock_acquired();
    htm::wait_writeback_drain();
    return true;
  }

  void unlock() noexcept RELEASE() {
    htm::protocol::note_lock_released();
    const std::uint32_t held = held_.exchange(0);
    // seq_cst: the serving bump must be ordered before the ticket-waiters
    // read below, pairing with lock()'s registration-then-recheck.
    serving_.fetch_add(1, std::memory_order_seq_cst);
    if ((held & detail::kWaitersBit) != 0) {
      util::wake_all(held_.wait_address());
    }
    if (ticket_waiters_.load(std::memory_order_seq_cst) != 0) {
      // Whole-cohort wake; only the next ticket proceeds, the rest re-park.
      // Thundering herds are bounded by kMaxThreads and only form under
      // SpinPark at high oversubscription, where a few extra wakes are
      // noise next to the quanta the old yield loop burned.
      util::wake_all(serving_);
    }
  }

  bool is_locked() const noexcept { return held_.load() != 0; }

  void subscribe() const ASSERT_SHARED_CAPABILITY(this) {
    htm::note_lock_subscription();
    if (held_.read() != 0) htm::abort_tx(htm::AbortCode::LockBusy);
  }

  void wait_until_free(
      util::WaitPolicy policy = util::WaitPolicy::SpinYield) const noexcept {
    detail::wait_word_free(held_, policy);
  }

  std::uint64_t acquisition_count() const noexcept {
    return acquisitions_.total();
  }
  void reset_stats() noexcept { acquisitions_.reset(); }

  // Tickets issued but not yet served (holder included). Observability
  // hook for tests and adaptive policies. 32-bit tickets wrap; the
  // difference is taken modulo 2^32, which is exact for any realistic
  // in-flight count.
  std::uint64_t pending() const noexcept {
    return next_.load(std::memory_order_acquire) -
           serving_.load(std::memory_order_acquire);
  }

 private:
  alignas(util::kCacheLineSize) std::atomic<std::uint32_t> next_{0};
  alignas(util::kCacheLineSize) std::atomic<std::uint32_t> serving_{0};
  // Count of threads parked on serving_; unlock only syscalls when someone
  // actually sleeps. Shares the serving line deliberately: both are
  // touched together on the park path only.
  std::atomic<std::uint32_t> ticket_waiters_{0};
  mutable htm::TxCell<std::uint32_t> held_{0};
  util::Counter acquisitions_;
};

static_assert(ElidableLock<TxLock>);
static_assert(ElidableLock<FairTxLock>);

// RAII guard compatible with both.
template <ElidableLock L>
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(L& lock,
                     util::WaitPolicy policy = util::WaitPolicy::SpinYield)
      noexcept ACQUIRE(lock) : lock_(lock) {
    lock_.lock(policy);
  }
  ~LockGuard() RELEASE() { lock_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  L& lock_;
};

}  // namespace hcf::sync
