// Elidable locks: locks whose state transactions can subscribe to, in the
// TLE sense. Two variants:
//
//   * TxLock      — test-and-test-and-set; minimal latency, unfair.
//   * FairTxLock  — ticket-based; starvation-free, required by the paper's
//                   progress argument (§2.3) for HCF starvation freedom.
//
// Both route state changes through TxCell strong operations (dooming
// overlapping transactions) and wait for commit write-back quiescence after
// acquisition, so a lock holder never observes — or races with — partial
// transactional state. See DESIGN.md "quiescence gate".
#pragma once

#include <atomic>
#include <cstdint>

#include "sim_htm/txcell.hpp"
#include "util/backoff.hpp"
#include "util/cacheline.hpp"
#include "util/counters.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_id.hpp"

namespace hcf::sync {

template <typename L>
concept ElidableLock = requires(L l, const L cl) {
  l.lock();
  l.unlock();
  { l.try_lock() } -> std::same_as<bool>;
  { cl.is_locked() } -> std::same_as<bool>;
  cl.subscribe();
  cl.wait_until_free();
};

class CAPABILITY("elidable_lock") TxLock {
 public:
  TxLock() = default;
  TxLock(const TxLock&) = delete;
  TxLock& operator=(const TxLock&) = delete;

  void lock() noexcept ACQUIRE() {
    util::ExpBackoff backoff(
        util::backoff_seed(util::BackoffSite::kLockAcquire));
    for (;;) {
      if (try_lock()) return;
      wait_until_free();  // spin-then-yield; survives oversubscription
      backoff.pause();    // jitter so waiters don't re-CAS in lockstep
    }
  }

  bool try_lock() noexcept TRY_ACQUIRE(true) {
    if (word_.load() != 0) return false;
    if (!word_.cas(0, owner_word())) return false;
    acquisitions_.add();
    htm::protocol::note_lock_acquired();
    // Doomed subscribers are now guaranteed to fail validation; flush the
    // transactions that validated before our CAS.
    htm::wait_writeback_drain();
    return true;
  }

  void unlock() noexcept RELEASE() {
    htm::protocol::note_lock_released();
    word_.store(0);
  }

  // Non-transactional probe.
  bool is_locked() const noexcept { return word_.load() != 0; }

  // Inside a transaction: joins the lock word to the read set and aborts
  // immediately if the lock is held (the paper's `if (L.isLocked()) abortHT`).
  // To TSA a successful subscription is the shared (reader) right: the
  // transaction either commits having observed no holder, or aborts — it
  // can never see a holder's partial state.
  void subscribe() const ASSERT_SHARED_CAPABILITY(this) {
    htm::note_lock_subscription();
    if (word_.read() != 0) htm::abort_tx(htm::AbortCode::LockBusy);
  }

  // Standard TLE discipline: do not start (or restart) a transaction while
  // the lock is held — it would abort immediately anyway.
  void wait_until_free() const noexcept {
    util::SpinWait waiter;
    while (word_.load() != 0) waiter.wait();
  }

  // Total successful acquisitions (the paper's "lock acquisition" metric).
  std::uint64_t acquisition_count() const noexcept {
    return acquisitions_.total();
  }
  void reset_stats() noexcept { acquisitions_.reset(); }

 private:
  static std::uint64_t owner_word() noexcept {
    return static_cast<std::uint64_t>(util::this_thread_id()) + 1;
  }

  htm::TxCell<std::uint64_t> word_{0};
  util::Counter acquisitions_;
};

class CAPABILITY("elidable_lock") FairTxLock {
 public:
  FairTxLock() = default;
  FairTxLock(const FairTxLock&) = delete;
  FairTxLock& operator=(const FairTxLock&) = delete;

  void lock() noexcept ACQUIRE() {
    const std::uint64_t ticket =
        next_.fetch_add(1, std::memory_order_acq_rel);
    util::SpinWait waiter;
    while (serving_.load(std::memory_order_acquire) != ticket) {
      waiter.wait();
    }
    held_.store(1);
    acquisitions_.add();
    htm::protocol::note_lock_acquired();
    htm::wait_writeback_drain();
  }

  bool try_lock() noexcept TRY_ACQUIRE(true) {
    std::uint64_t ticket = serving_.load(std::memory_order_acquire);
    if (next_.load(std::memory_order_acquire) != ticket) return false;
    if (!next_.compare_exchange_strong(ticket, ticket + 1,
                                       std::memory_order_acq_rel)) {
      return false;
    }
    held_.store(1);
    acquisitions_.add();
    htm::protocol::note_lock_acquired();
    htm::wait_writeback_drain();
    return true;
  }

  void unlock() noexcept RELEASE() {
    htm::protocol::note_lock_released();
    held_.store(0);
    serving_.fetch_add(1, std::memory_order_acq_rel);
  }

  bool is_locked() const noexcept { return held_.load() != 0; }

  void subscribe() const ASSERT_SHARED_CAPABILITY(this) {
    htm::note_lock_subscription();
    if (held_.read() != 0) htm::abort_tx(htm::AbortCode::LockBusy);
  }

  void wait_until_free() const noexcept {
    util::SpinWait waiter;
    while (held_.load() != 0) waiter.wait();
  }

  std::uint64_t acquisition_count() const noexcept {
    return acquisitions_.total();
  }
  void reset_stats() noexcept { acquisitions_.reset(); }

  // Tickets issued but not yet served (holder included). Observability
  // hook for tests and adaptive policies.
  std::uint64_t pending() const noexcept {
    return next_.load(std::memory_order_acquire) -
           serving_.load(std::memory_order_acquire);
  }

 private:
  alignas(util::kCacheLineSize) std::atomic<std::uint64_t> next_{0};
  alignas(util::kCacheLineSize) std::atomic<std::uint64_t> serving_{0};
  htm::TxCell<std::uint64_t> held_{0};
  util::Counter acquisitions_;
};

static_assert(ElidableLock<TxLock>);
static_assert(ElidableLock<FairTxLock>);

// RAII guard compatible with both.
template <ElidableLock L>
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(L& lock) noexcept ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~LockGuard() RELEASE() { lock_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  L& lock_;
};

}  // namespace hcf::sync
