// Global transaction statistics, aggregated from per-thread counters.
// Engines and benchmarks snapshot these around measurement intervals.
#pragma once

#include <cstdint>

#include "sim_htm/abort.hpp"
#include "util/counters.hpp"

namespace hcf::htm {

struct Stats {
  util::Counter starts;
  util::Counter commits;
  util::Counter read_only_commits;
  util::Counter aborts[kNumAbortCodes];
  // Shared-memory accesses made through the instrumentation (the paper's
  // cache-traffic proxy; see DESIGN.md on Figure 4).
  util::Counter tx_reads;
  util::Counter tx_writes;
  util::Counter strong_stores;
  // Read-set revalidations (snapshot extensions). The Tick/Sampled epoch
  // modes trade these off against per-read clock polling; see config.hpp.
  util::Counter snapshot_extensions;
  // Protocol-checker violation counters (sim_htm/protocol_check.hpp).
  // Always present so release and checker builds share one layout; only
  // bumped when HCF_CHECK_PROTOCOL is compiled in and the mode is Count.
  util::Counter proto_strong_in_tx;
  util::Counter proto_misaligned;
  util::Counter proto_unsubscribed_commits;

  std::uint64_t total_aborts() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& c : aborts) sum += c.total();
    return sum;
  }

  std::uint64_t total_protocol_violations() const noexcept {
    return proto_strong_in_tx.total() + proto_misaligned.total() +
           proto_unsubscribed_commits.total();
  }

  void reset() noexcept {
    starts.reset();
    commits.reset();
    read_only_commits.reset();
    for (auto& c : aborts) c.reset();
    tx_reads.reset();
    tx_writes.reset();
    strong_stores.reset();
    snapshot_extensions.reset();
    proto_strong_in_tx.reset();
    proto_misaligned.reset();
    proto_unsubscribed_commits.reset();
  }
};

Stats& stats() noexcept;

// Plain-value snapshot for interval deltas.
struct StatsSnapshot {
  std::uint64_t starts = 0;
  std::uint64_t commits = 0;
  std::uint64_t read_only_commits = 0;
  std::uint64_t aborts[kNumAbortCodes] = {};
  std::uint64_t tx_reads = 0;
  std::uint64_t tx_writes = 0;
  std::uint64_t strong_stores = 0;
  std::uint64_t snapshot_extensions = 0;

  static StatsSnapshot capture() noexcept {
    StatsSnapshot s;
    auto& g = stats();
    s.starts = g.starts.total();
    s.commits = g.commits.total();
    s.read_only_commits = g.read_only_commits.total();
    for (int i = 0; i < kNumAbortCodes; ++i) s.aborts[i] = g.aborts[i].total();
    s.tx_reads = g.tx_reads.total();
    s.tx_writes = g.tx_writes.total();
    s.strong_stores = g.strong_stores.total();
    s.snapshot_extensions = g.snapshot_extensions.total();
    return s;
  }

  StatsSnapshot delta_since(const StatsSnapshot& base) const noexcept {
    StatsSnapshot d;
    d.starts = starts - base.starts;
    d.commits = commits - base.commits;
    d.read_only_commits = read_only_commits - base.read_only_commits;
    for (int i = 0; i < kNumAbortCodes; ++i) d.aborts[i] = aborts[i] - base.aborts[i];
    d.tx_reads = tx_reads - base.tx_reads;
    d.tx_writes = tx_writes - base.tx_writes;
    d.strong_stores = strong_stores - base.strong_stores;
    d.snapshot_extensions = snapshot_extensions - base.snapshot_extensions;
    return d;
  }

  std::uint64_t total_aborts() const noexcept {
    std::uint64_t sum = 0;
    for (auto a : aborts) sum += a;
    return sum;
  }
};

}  // namespace hcf::htm
