// Explicit happens-before annotations for ThreadSanitizer.
//
// The simulator's orec protocol synchronizes exclusively through
// std::atomic / std::atomic_ref operations, which TSan models natively, so
// the tree is TSan-clean without any annotation. These macros make the
// *protocol-level* edges explicit anyway:
//
//   * they survive refactors that weaken individual atomic orderings (e.g.
//     replacing seq_cst orec releases with relaxed stores + fences, which
//     TSan does not model) — the annotated edge keeps the report suppressed
//     exactly where the protocol argues it is safe, and nowhere else;
//   * they document, in code, which accesses the DESIGN.md happens-before
//     argument leans on (commit write-back ordering and the quiescence
//     gate), so a new TSan report is a real protocol race by construction.
//
// HCF_TSAN_RELEASE(addr) publishes everything the thread did so far to any
// thread that later runs HCF_TSAN_ACQUIRE(addr) on the same address. Both
// compile to nothing unless the build is TSan-instrumented (CMake defines
// HCF_TSAN for -DHCF_SANITIZE=thread; compiler macros are auto-detected).
#pragma once

#if !defined(HCF_TSAN)
#if defined(__SANITIZE_THREAD__)
#define HCF_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HCF_TSAN 1
#endif
#endif
#endif

#if defined(HCF_TSAN)

extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}

#define HCF_TSAN_ACQUIRE(addr) \
  __tsan_acquire(const_cast<void*>(static_cast<const void*>(addr)))
#define HCF_TSAN_RELEASE(addr) \
  __tsan_release(const_cast<void*>(static_cast<const void*>(addr)))
#define HCF_TSAN_ENABLED 1

#else

#define HCF_TSAN_ACQUIRE(addr) ((void)0)
#define HCF_TSAN_RELEASE(addr) ((void)0)
#define HCF_TSAN_ENABLED 0

#endif
