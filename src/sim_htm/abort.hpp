// Abort codes and the abort-unwinding exception for the simulated HTM.
//
// Real RTM reports an abort cause in EAX; TLE-style code distinguishes
// (a) conflict/transient aborts worth retrying, (b) capacity aborts that
// will repeat deterministically, and (c) explicit aborts (lock was held).
// The simulator reproduces exactly that taxonomy.
#pragma once

#include <cstdint>

namespace hcf::htm {

enum class AbortCode : std::uint8_t {
  None = 0,
  // Read/write-set conflict with a concurrent transaction or a strong
  // (non-transactional) store; transient, worth retrying.
  Conflict = 1,
  // Read- or write-set exceeded the configured capacity; retrying the same
  // operation transactionally is futile.
  Capacity = 2,
  // Transaction requested its own abort (xabort), e.g. lock subscription
  // found the lock held.
  Explicit = 3,
  // Lock subscription failed at begin (lock already held). Distinguished
  // from Explicit so engines can wait for the lock to become free before
  // burning another attempt, like production TLE.
  LockBusy = 4,
};

inline const char* to_string(AbortCode c) noexcept {
  switch (c) {
    case AbortCode::None: return "none";
    case AbortCode::Conflict: return "conflict";
    case AbortCode::Capacity: return "capacity";
    case AbortCode::Explicit: return "explicit";
    case AbortCode::LockBusy: return "lock-busy";
  }
  return "?";
}

inline constexpr int kNumAbortCodes = 5;

// Thrown by the simulator to unwind out of a transaction body. User code
// inside transactions must not catch(...) without rethrowing (same
// restriction every STM with exception-based aborts imposes).
struct TxAbort {
  AbortCode code;
};

}  // namespace hcf::htm
