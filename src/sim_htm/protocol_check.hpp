// Dynamic checker for the simulated HTM's documented usage restrictions
// (htm.hpp header comment): strong operations must not run inside a
// transaction, instrumented accesses must be naturally aligned ≤ 8-byte
// words, and a transaction that commits while an elidable lock is held
// should have subscribed to a lock.
//
// Compiled in only when HCF_CHECK_PROTOCOL is defined (CMake option, ON by
// default outside Release); otherwise every hook folds to nothing. With the
// checker compiled in, a runtime mode selects the response:
//
//   * Trap  (default) — print the violation and abort(). Debug/CI builds
//     die at the first protocol break instead of corrupting data silently.
//   * Count — bump the violation counters in htm::Stats and continue.
//     Tests use this (via ScopedMode) to provoke violations on purpose and
//     assert they are detected.
//   * Off   — hooks stay compiled but do nothing.
//
// The commit-without-subscription check is *always* count-only, even in
// Trap mode: a transaction on structure A is not required to subscribe to
// structure B's lock, and this checker cannot know which lock guards which
// structure. The counter is precise in single-structure scenarios (all of
// tests/protocol_checker_test.cpp) and a useful smell elsewhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "sim_htm/stats.hpp"

namespace hcf::htm::protocol {

#if defined(HCF_CHECK_PROTOCOL)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

enum class Mode : std::uint8_t { Off = 0, Count = 1, Trap = 2 };

namespace detail {

inline std::atomic<Mode>& mode_ref() noexcept {
  static std::atomic<Mode> m{Mode::Trap};
  return m;
}

// Number of currently held elidable locks (TxLock / FairTxLock), across all
// lock instances. Maintained only when the checker is compiled in.
inline std::atomic<std::int64_t>& held_locks_ref() noexcept {
  static std::atomic<std::int64_t> n{0};
  return n;
}

[[noreturn]] inline void trap(const char* rule, const char* detail) noexcept {
  std::fprintf(stderr, "[hcf-protocol] violation: %s (%s)\n", rule, detail);
  std::abort();
}

}  // namespace detail

inline Mode mode() noexcept {
  if constexpr (!kEnabled) return Mode::Off;
  return detail::mode_ref().load(std::memory_order_relaxed);
}

inline void set_mode(Mode m) noexcept {
  detail::mode_ref().store(m, std::memory_order_relaxed);
}

// RAII mode override for tests.
class ScopedMode {
 public:
  explicit ScopedMode(Mode m) noexcept : old_(mode()) { set_mode(m); }
  ~ScopedMode() { set_mode(old_); }
  ScopedMode(const ScopedMode&) = delete;
  ScopedMode& operator=(const ScopedMode&) = delete;

 private:
  Mode old_;
};

// ---- Lock tracking (called from sync/tx_lock.hpp) -------------------------

inline void note_lock_acquired() noexcept {
  if constexpr (kEnabled) {
    detail::held_locks_ref().fetch_add(1, std::memory_order_relaxed);
  }
}

inline void note_lock_released() noexcept {
  if constexpr (kEnabled) {
    detail::held_locks_ref().fetch_sub(1, std::memory_order_relaxed);
  }
}

inline std::int64_t held_elidable_locks() noexcept {
  if constexpr (!kEnabled) return 0;
  return detail::held_locks_ref().load(std::memory_order_relaxed);
}

// ---- Checks (called from sim_htm/htm.{hpp,cpp}) ---------------------------

// Strong (non-transactional) operation attempted with a transaction active
// on this thread.
inline void check_strong_op(bool in_tx, const char* what) noexcept {
  if constexpr (!kEnabled) return;
  if (!in_tx) return;
  const Mode m = mode();
  if (m == Mode::Off) return;
  if (m == Mode::Trap) detail::trap("strong-op-inside-tx", what);
  stats().proto_strong_in_tx.add();
}

// Instrumented access that is not naturally aligned for its size. Returns
// true when the access may proceed (Count/Off modes still perform it; on
// x86 the misaligned atomic works, it is merely outside the documented
// contract and outside what real HTM guarantees).
inline void check_access_alignment(const void* addr,
                                   std::size_t size) noexcept {
  if constexpr (!kEnabled) return;
  if ((reinterpret_cast<std::uintptr_t>(addr) & (size - 1)) == 0) return;
  const Mode m = mode();
  if (m == Mode::Off) return;
  if (m == Mode::Trap) detail::trap("misaligned-access", "htm::read/write");
  stats().proto_misaligned.add();
}

// Commit of a transaction that never subscribed to any elidable lock while
// at least one such lock was held somewhere in the process. Count-only by
// design (see header comment).
inline void check_commit_subscription(bool subscribed) noexcept {
  if constexpr (!kEnabled) return;
  if (subscribed || mode() == Mode::Off) return;
  if (held_elidable_locks() > 0) stats().proto_unsubscribed_commits.add();
}

}  // namespace hcf::htm::protocol
