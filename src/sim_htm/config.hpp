// Runtime-tunable parameters of the simulated HTM. Capacity limits model
// the L1-bounded read/write sets of real RTM; tests shrink them to exercise
// capacity-abort paths deterministically.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace hcf::htm {

// Number of ownership records. Power of two; 2^16 orecs * 8B = 512 KiB,
// large enough that false conflicts are rare for our data-structure sizes.
inline constexpr std::size_t kOrecCountLog2 = 16;
inline constexpr std::size_t kOrecCount = std::size_t{1} << kOrecCountLog2;

// htm::read deduplicates against this many most-recent read-set entries
// before appending, keeping read sets compact in pointer-chasing loops
// without an O(n) scan. A window of 8 was tried and measured slower on
// distinct-address read sets (BM_TxnReadOnly/32: ~+2.4 ns per read from
// the longer miss scan) with no read-set shrinkage to show for it on the
// figure workloads, so the window stays at 4; see DESIGN.md §8.
inline constexpr std::size_t kReadDedupWindow = 4;

// How transactional reads detect that their snapshot may have gone stale
// (see DESIGN.md §8 "Epoch modes"). Orec versions are derived from one
// global version clock in both modes, so the modes interoperate and can be
// switched whenever no transaction is in flight.
//
//   * Tick    — every read polls the global clock and fully revalidates the
//               read set whenever *any* writer committed since the snapshot
//               (the original, maximally conservative behaviour; read-mostly
//               transactions pay O(read-set) per unrelated writer commit).
//   * Sampled — GV-style: a read revalidates only when it actually observes
//               a version newer than its snapshot, or when the rare-event
//               strong clock (lock acquisitions / strong stores) moved.
//               Unrelated writer commits cost read-mostly transactions
//               nothing, and read-only transactions commit without a final
//               validation pass.
enum class EpochMode : std::uint8_t { Tick = 0, Sampled = 1 };

struct Config {
  // Maximum tracked read locations per transaction (≈ L1 lines on RTM).
  std::atomic<std::size_t> read_capacity{8192};
  // Maximum buffered writes per transaction.
  std::atomic<std::size_t> write_capacity{2048};
  // Snapshot-staleness detection mode, latched per transaction at begin.
  std::atomic<EpochMode> epoch_mode{EpochMode::Tick};
};

Config& config() noexcept;

// RAII helper for tests: temporarily overrides capacities.
class ScopedCapacity {
 public:
  ScopedCapacity(std::size_t reads, std::size_t writes) noexcept
      : old_reads_(config().read_capacity.load()),
        old_writes_(config().write_capacity.load()) {
    config().read_capacity.store(reads);
    config().write_capacity.store(writes);
  }
  ~ScopedCapacity() {
    config().read_capacity.store(old_reads_);
    config().write_capacity.store(old_writes_);
  }
  ScopedCapacity(const ScopedCapacity&) = delete;
  ScopedCapacity& operator=(const ScopedCapacity&) = delete;

 private:
  std::size_t old_reads_;
  std::size_t old_writes_;
};

// RAII helper: temporarily overrides the epoch mode. Only switch while no
// transaction is in flight (each transaction latches the mode at begin; a
// mid-run switch is safe for *new* transactions but makes stats and abort
// behaviour a mix of both modes).
class ScopedEpochMode {
 public:
  explicit ScopedEpochMode(EpochMode m) noexcept
      : old_(config().epoch_mode.load()) {
    config().epoch_mode.store(m);
  }
  ~ScopedEpochMode() { config().epoch_mode.store(old_); }
  ScopedEpochMode(const ScopedEpochMode&) = delete;
  ScopedEpochMode& operator=(const ScopedEpochMode&) = delete;

 private:
  EpochMode old_;
};

}  // namespace hcf::htm
