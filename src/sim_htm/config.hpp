// Runtime-tunable parameters of the simulated HTM. Capacity limits model
// the L1-bounded read/write sets of real RTM; tests shrink them to exercise
// capacity-abort paths deterministically.
#pragma once

#include <atomic>
#include <cstddef>

namespace hcf::htm {

// Number of ownership records. Power of two; 2^16 orecs * 8B = 512 KiB,
// large enough that false conflicts are rare for our data-structure sizes.
inline constexpr std::size_t kOrecCountLog2 = 16;
inline constexpr std::size_t kOrecCount = std::size_t{1} << kOrecCountLog2;

struct Config {
  // Maximum tracked read locations per transaction (≈ L1 lines on RTM).
  std::atomic<std::size_t> read_capacity{8192};
  // Maximum buffered writes per transaction.
  std::atomic<std::size_t> write_capacity{2048};
};

Config& config() noexcept;

// RAII helper for tests: temporarily overrides capacities.
class ScopedCapacity {
 public:
  ScopedCapacity(std::size_t reads, std::size_t writes) noexcept
      : old_reads_(config().read_capacity.load()),
        old_writes_(config().write_capacity.load()) {
    config().read_capacity.store(reads);
    config().write_capacity.store(writes);
  }
  ~ScopedCapacity() {
    config().read_capacity.store(old_reads_);
    config().write_capacity.store(old_writes_);
  }
  ScopedCapacity(const ScopedCapacity&) = delete;
  ScopedCapacity& operator=(const ScopedCapacity&) = delete;

 private:
  std::size_t old_reads_;
  std::size_t old_writes_;
};

}  // namespace hcf::htm
