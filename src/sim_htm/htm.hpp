// Software-simulated hardware transactional memory.
//
// Observable semantics mirror Intel RTM as used by transactional lock
// elision: optimistic transactions with all-or-nothing visibility, conflict
// aborts, capacity aborts, explicit aborts, and strong isolation against
// non-transactional accesses to the words transactions subscribe to.
//
// Implementation: a lazy-versioning (write-buffer) STM over a global
// ownership-record (orec) table, with TL2-style versions drawn from one
// global version clock.
//
//   * tx reads validate the orec version around the value load and record
//     it in a read set; snapshot staleness is detected against the global
//     version clock and repaired by read-set revalidation ("snapshot
//     extension"), giving opacity (no zombie execution) in the style of
//     LSA/TL2. Two detection policies are available (config.hpp):
//     EpochMode::Tick polls the clock on every read, EpochMode::Sampled
//     revalidates only when a read observes a version newer than its
//     snapshot or the rare-event strong clock moved.
//   * tx writes are buffered; memory is only touched during commit
//     write-back, after the write orecs are acquired and the read set
//     validated. Non-instrumented code (a thread holding the elided lock)
//     therefore never observes speculative state. The write buffer is
//     indexed by a 64-bit Bloom-style signature plus a small open-addressed
//     hash index, so read-after-write and write upserts are O(1).
//   * non-transactional ("strong") stores to words transactions read — lock
//     words, operation statuses, publication slots — go through the same
//     orec protocol via TxCell (txcell.hpp), so they doom overlapping
//     transactions exactly like a cache-line invalidation would on real HTM.
//   * lock acquirers call wait_writeback_drain() after dooming subscribers,
//     closing the race with transactions already past validation (see
//     DESIGN.md, "quiescence gate").
//
// Memory ordering: the substrate runs on acquire/release pairs; the only
// seq_cst operations are the two fences forming the quiescence gate's
// Dekker pattern (htm.cpp), each carrying a `// seq_cst:` justification
// (enforced by tools/lint/hcf_lint.py). The proof obligations are written
// out in DESIGN.md §"Substrate performance".
//
// Usage restrictions (all enforced or documented at call sites):
//   * values accessed via read/write are trivially copyable, ≤ 8 bytes,
//     naturally aligned;
//   * code inside a transaction must not catch(...) without rethrowing;
//   * strong operations must not be called inside a transaction;
//   * every transaction that runs concurrently with under-lock execution
//     must subscribe to that lock (engines do this on their first read).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "mem/alloc.hpp"
#include "mem/ebr.hpp"
#include "sim_htm/abort.hpp"
#include "sim_htm/config.hpp"
#include "sim_htm/protocol_check.hpp"
#include "sim_htm/stats.hpp"
#include "sim_htm/tsan.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_id.hpp"

namespace hcf::htm {

namespace detail {

// ---- Orec table ----------------------------------------------------------
// Word layout: even value => (version << 1) of the last committed write,
// where `version` was drawn from the global version clock; odd value =>
// locked, either by a committing transaction (tid << 1 | 1) or by a strong
// store (kStrongTag).
inline constexpr std::uint64_t kStrongTag = ~std::uint64_t{0};  // odd

std::atomic<std::uint64_t>* orec_table() noexcept;

inline std::atomic<std::uint64_t>& orec_for(const void* addr) noexcept {
  // Fibonacci hashing: one multiply, top bits select the orec. Cheap and
  // spreads word-granularity addresses well.
  const auto a = reinterpret_cast<std::uintptr_t>(addr) >> 3;
  const std::uint64_t h = a * 0x9e3779b97f4a7c15ULL;
  return orec_table()[h >> (64 - kOrecCountLog2)];
}

inline bool is_locked(std::uint64_t word) noexcept { return word & 1; }

inline std::uint64_t tx_lock_word(std::size_t tid) noexcept {
  return (static_cast<std::uint64_t>(tid) << 1) | 1;
}

// Version carried by an (even, unlocked) orec word.
inline std::uint64_t orec_version(std::uint64_t word) noexcept {
  return word >> 1;
}

// ---- Global clocks -------------------------------------------------------
// global_clock: the TL2 version clock. Bumped (acq_rel RMW) by every
// writer commit and strong store *before* the corresponding orecs are
// released, so an orec can never expose a version the clock has not reached.
// strong_clock: counts only strong stores / lock-word transitions — the
// rare events Sampled-mode readers must poll for (lock holders write
// uninstrumented data that leaves no orec evidence).
std::atomic<std::uint64_t>& global_clock() noexcept;
std::atomic<std::uint64_t>& strong_clock() noexcept;
std::atomic<std::uint64_t>& writeback_count() noexcept;

// ---- Transaction descriptor ----------------------------------------------
struct ReadEntry {
  std::atomic<std::uint64_t>* orec;
  std::uint64_t version;
};

struct WriteEntry {
  std::uintptr_t addr;
  std::uint64_t value;
  std::uint8_t size;
};

struct AcquiredOrec {
  std::atomic<std::uint64_t>* orec;
  std::uint64_t old_version;
};

struct CleanupEntry {
  void* ptr;
  void (*fn)(void*);
};

// Write-set index sizing. Slots are u64 = (generation << 32) | (entry+1);
// generation tagging makes per-transaction clear O(1) (bump the tag)
// instead of O(table).
inline constexpr std::size_t kWindexInitialSlots = 64;
inline constexpr std::uint8_t kWindexInitialShift = 64 - 6;  // log2(64)

inline std::uint64_t addr_hash(std::uintptr_t a) noexcept {
  return static_cast<std::uint64_t>(a) * 0x9e3779b97f4a7c15ULL;
}

// Bloom bit for the write signature. Uses bits 52..57 of the hash so the
// signature stays decorrelated from the index's probe slot (top bits).
inline std::uint64_t sig_bit(std::uint64_t h) noexcept {
  return std::uint64_t{1} << ((h >> 52) & 63);
}

struct alignas(util::kCacheLineSize) Txn {
  // --- Hot line: everything the per-access fast path touches. ---
  bool active = false;
  // Set by elidable-lock subscribe() calls; consumed by the protocol
  // checker's commit check. Maintained unconditionally (one byte, one
  // store per subscription) so all build flavours share one Txn layout.
  bool subscribed = false;
  // Snapshot-staleness policy, latched from config() at begin.
  EpochMode mode = EpochMode::Tick;
  // 64 - log2(windex slots): hash >> shift is the probe start.
  std::uint8_t windex_shift = kWindexInitialShift;
  std::uint32_t depth = 0;
  // The read snapshot (TL2 "rv"): reads are consistent as of this clock.
  std::uint64_t snapshot_epoch = 0;
  std::uint64_t snapshot_strong = 0;
  // Bloom signature of buffered write addresses: one AND rejects the
  // write-set lookup for the (dominant) read-with-no-prior-write case.
  std::uint64_t write_sig = 0;
  // Access counters, flushed to the global stats at commit/abort so the
  // hot path pays one local increment instead of a TLS counter lookup.
  std::uint64_t n_reads = 0;
  std::uint64_t n_writes = 0;
  std::size_t tid = 0;

  // --- Validation bookkeeping and cold fields. ---
  // Entries [0, validated_count) are known valid at clock validated_epoch;
  // extension skips them when the clock has not moved since.
  std::uint64_t validated_epoch = 0;
  std::size_t validated_count = 0;
  std::uint64_t n_extensions = 0;
  std::uint32_t windex_gen = 0;
  AbortCode last_abort = AbortCode::None;
  std::vector<ReadEntry> read_set;
  std::vector<WriteEntry> write_set;
  std::vector<std::uint64_t> windex =
      std::vector<std::uint64_t>(kWindexInitialSlots, 0);
  std::vector<AcquiredOrec> acquired;
  std::vector<CleanupEntry> alloc_log;   // freed on abort
  std::vector<CleanupEntry> retire_log;  // EBR-retired on commit

  void reset_logs() {
    read_set.clear();
    write_set.clear();
    acquired.clear();
    alloc_log.clear();
    retire_log.clear();
    write_sig = 0;
    // O(1) index clear: stale-generation slots read as empty. Zero-fill
    // only on the (once per 2^32 transactions) generation wrap.
    if (++windex_gen == 0) {
      std::fill(windex.begin(), windex.end(), std::uint64_t{0});
      windex_gen = 1;
    }
  }
};

Txn& txn() noexcept;

[[noreturn]] void throw_abort(AbortCode code);

// Validates the whole read set; returns false on mismatch. `self_tag` is
// the caller's commit lock word if the caller holds orecs (0 otherwise).
bool validate_read_set(Txn& t, std::uint64_t self_tag) noexcept;

// Revalidates after observing evidence of a newer snapshot (clock moved /
// newer orec version / strong clock moved); aborts (throws) on failure.
// Keeps opacity. Incremental: entries already validated at the current
// clock value are skipped.
void extend_snapshot(Txn& t);

void begin_txn(Txn& t);
void commit_txn(Txn& t);                // throws TxAbort on validation failure
void abort_cleanup(Txn& t, AbortCode code) noexcept;

// Rebuilds the write-set index at double capacity (cold path).
void windex_grow(Txn& t);

// Open-addressed lookup. A slot belongs to the current transaction iff its
// generation tag matches; anything else terminates the probe (there are no
// deletions within a transaction, so probes never skip holes).
inline WriteEntry* windex_find(Txn& t, std::uintptr_t addr,
                               std::uint64_t h) noexcept {
  const std::size_t mask = t.windex.size() - 1;
  const std::uint64_t* slots = t.windex.data();
  for (std::size_t i = static_cast<std::size_t>(h >> t.windex_shift);;
       i = (i + 1) & mask) {
    const std::uint64_t slot = slots[i];
    if ((slot >> 32) != t.windex_gen) return nullptr;
    WriteEntry* w = &t.write_set[static_cast<std::uint32_t>(slot) - 1];
    if (w->addr == addr) return w;
  }
}

// Inserts write_set[idx] (caller guarantees the key is absent and the load
// factor is below 3/4, so an empty slot exists).
inline void windex_insert(Txn& t, std::uint64_t h, std::uint32_t idx) noexcept {
  const std::size_t mask = t.windex.size() - 1;
  std::size_t i = static_cast<std::size_t>(h >> t.windex_shift);
  while ((t.windex[i] >> 32) == t.windex_gen) i = (i + 1) & mask;
  t.windex[i] =
      (static_cast<std::uint64_t>(t.windex_gen) << 32) | (idx + 1);
}

// Raw value transport. Sized so that write-back can replay buffered writes.
template <typename T>
inline std::uint64_t to_word(T v) noexcept {
  std::uint64_t w = 0;
  std::memcpy(&w, &v, sizeof(T));
  return w;
}

template <typename T>
inline T from_word(std::uint64_t w) noexcept {
  T v;
  std::memcpy(&v, &w, sizeof(T));
  return v;
}

template <typename T>
inline T atomic_load_acquire(const T* addr) noexcept {
  return std::atomic_ref<T>(*const_cast<T*>(addr))
      .load(std::memory_order_acquire);
}

template <typename T>
inline void atomic_store_release(T* addr, T v) noexcept {
  std::atomic_ref<T>(*addr).store(v, std::memory_order_release);
}

void store_sized(std::uintptr_t addr, std::uint64_t value,
                 std::uint8_t size) noexcept;

template <typename T>
concept TxValue = std::is_trivially_copyable_v<T> && sizeof(T) <= 8 &&
                  (sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
                   sizeof(T) == 8);

// Looks up `addr` in the write buffer; returns pointer to entry or null.
// O(1): one signature AND rejects the common miss, the index resolves hits.
inline WriteEntry* find_write(Txn& t, std::uintptr_t addr) noexcept {
  // Empty-signature early-out before hashing: read-only transactions (and
  // reads before the first write) skip even the multiply.
  if (t.write_sig == 0) return nullptr;
  const std::uint64_t h = addr_hash(addr);
  if (!(t.write_sig & sig_bit(h))) return nullptr;
  return windex_find(t, addr, h);
}

}  // namespace detail

// ---- Public API -----------------------------------------------------------

inline bool in_txn() noexcept { return detail::txn().active; }

// Requests an abort of the running transaction (like xabort).
[[noreturn]] inline void abort_tx(AbortCode code = AbortCode::Explicit) {
  assert(in_txn());
  detail::throw_abort(code);
}

// Last abort code observed by this thread's most recent failed attempt.
inline AbortCode last_abort_code() noexcept { return detail::txn().last_abort; }

// Transactional load. Outside a transaction: plain atomic load (the
// under-lock / sequential fast path).
template <detail::TxValue T>
inline T read(const T* addr) {
  protocol::check_access_alignment(addr, sizeof(T));
  auto& t = detail::txn();
  if (!t.active) return detail::atomic_load_acquire(addr);
  ++t.n_reads;

  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  if (auto* w = detail::find_write(t, a)) {
    assert(w->size == sizeof(T) && "mixed-size access to the same address");
    return detail::from_word<T>(w->value);
  }

  auto& orec = detail::orec_for(addr);
  T value;
  std::uint64_t v1;
  for (;;) {
    // acquire: pairs with the committer's release store of the orec, so a
    // stable even version implies the whole write-back of that version
    // happened-before our value load.
    v1 = orec.load(std::memory_order_acquire);
    if (detail::is_locked(v1)) detail::throw_abort(AbortCode::Conflict);
    value = detail::atomic_load_acquire(addr);
    // acquire: if the value load ingested a committer's release store, the
    // committer's earlier orec lock CAS is visible here, so v2 reads locked
    // (or a newer version) and we abort instead of keeping a torn read.
    const std::uint64_t v2 = orec.load(std::memory_order_acquire);
    if (v1 != v2) detail::throw_abort(AbortCode::Conflict);
    if (t.mode == EpochMode::Tick) break;
    // Sampled: revalidate only on actual evidence of staleness — a version
    // newer than our snapshot, or movement of the rare-event strong clock
    // (checked *after* the value load so a lock holder's uninstrumented
    // store can never be ingested without the strong bump being visible).
    if (detail::orec_version(v1) > t.snapshot_epoch) {
      detail::extend_snapshot(t);
      continue;
    }
    if (detail::strong_clock().load(std::memory_order_acquire) !=
        t.snapshot_strong) {
      detail::extend_snapshot(t);
      continue;
    }
    break;
  }
  // A stable orec around the load means we read a committed value; import
  // the committing thread's writes (it ran HCF_TSAN_RELEASE on this orec
  // before releasing it). No-op outside TSan builds; see tsan.hpp.
  HCF_TSAN_ACQUIRE(&orec);

  // Cheap dedup against the most recent entries keeps read sets compact in
  // pointer-chasing loops without an O(n) scan. Matches the same orec at
  // the same version anywhere in the window, independent of access order.
  bool dup = false;
  const std::size_t n = t.read_set.size();
  for (std::size_t i = n > kReadDedupWindow ? n - kReadDedupWindow : 0; i < n;
       ++i) {
    if (t.read_set[i].orec == &orec && t.read_set[i].version == v1) {
      dup = true;
      break;
    }
  }
  if (!dup) {
    if (n >= config().read_capacity.load(std::memory_order_relaxed)) {
      detail::throw_abort(AbortCode::Capacity);
    }
    t.read_set.push_back({&orec, v1});
  }

  if (t.mode == EpochMode::Tick) {
    // Opacity, Tick policy: if anyone committed since our snapshot, make
    // sure everything we have read is still mutually consistent.
    const std::uint64_t c =
        detail::global_clock().load(std::memory_order_acquire);
    if (c != t.snapshot_epoch) detail::extend_snapshot(t);
  }
  return value;
}

// Transactional store (buffered until commit). Outside a transaction:
// plain atomic store.
template <detail::TxValue T>
inline void write(T* addr, T value) {
  protocol::check_access_alignment(addr, sizeof(T));
  auto& t = detail::txn();
  if (!t.active) {
    detail::atomic_store_release(addr, value);
    return;
  }
  ++t.n_writes;
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  const std::uint64_t h = detail::addr_hash(a);
  const std::uint64_t bit = detail::sig_bit(h);
  if (t.write_sig & bit) {
    if (auto* w = detail::windex_find(t, a, h)) {
      assert(w->size == sizeof(T) && "mixed-size access to the same address");
      w->value = detail::to_word(value);
      return;
    }
  }
  if (t.write_set.size() >=
      config().write_capacity.load(std::memory_order_relaxed)) {
    detail::throw_abort(AbortCode::Capacity);
  }
  if ((t.write_set.size() + 1) * 4 > t.windex.size() * 3) {
    detail::windex_grow(t);
  }
  t.write_set.push_back({a, detail::to_word(value),
                         static_cast<std::uint8_t>(sizeof(T))});
  t.write_sig |= bit;
  detail::windex_insert(t, h,
                        static_cast<std::uint32_t>(t.write_set.size() - 1));
}

// Runs `body` as one transaction attempt. Returns true if it committed.
// Inside an enclosing transaction the body is flat-nested (subsumed).
template <typename F>
inline bool attempt(F&& body) {
  auto& t = detail::txn();
  if (t.active) {  // flat nesting
    std::forward<F>(body)();
    return true;
  }
  detail::begin_txn(t);
  try {
    std::forward<F>(body)();
    detail::commit_txn(t);
    return true;
  } catch (TxAbort& a) {
    detail::abort_cleanup(t, a.code);
    return false;
  } catch (...) {
    // An exception escaping the body aborts the transaction (discarding
    // speculative state), then propagates — matching RTM, where an
    // exception inside an elided section aborts to the fallback.
    detail::abort_cleanup(t, AbortCode::Explicit);
    throw;
  }
}

// Allocation helpers. Memory allocated inside a transaction must be
// released if the transaction aborts; memory logically freed inside a
// transaction must survive until commit *and* until concurrent speculative
// readers are done (EBR grace period).
template <typename T, typename... Args>
T* make(Args&&... args) {
  T* p = mem::alloc<T>(std::forward<Args>(args)...);
  auto& t = detail::txn();
  if (t.active) {
    // Abort unwind: the node was never published, so an immediate
    // destroy+free through the facade is safe (no grace period needed).
    t.alloc_log.push_back(
        {p, [](void* q) { mem::dealloc(static_cast<T*>(q)); }});
  }
  return p;
}

template <typename T>
void retire(T* p) {
  auto& t = detail::txn();
  if (t.active) {
    // Commit bookkeeping (htm.cpp) invokes the logged fn outside the
    // transaction; going through mem::retire there keeps the facade's
    // remote routing for nodes the committer does not own.
    t.retire_log.push_back(
        {p, [](void* q) { mem::retire(static_cast<T*>(q)); }});
  } else {
    mem::retire(p);
  }
}

// ---- Strong (non-transactional) operations --------------------------------
// For words that transactions subscribe to. Serialized through the word's
// orec so they are atomic with respect to commit write-back, and they bump
// the orec version + version clock (+ strong clock) so overlapping
// transactions abort.

namespace detail {

// Annotation-only capability standing for "this thread holds some orec in
// strong (kStrongTag) mode". The strong path locks exactly one orec at a
// time, so one process-wide capability object suffices to prove every
// strong_lock_orec is paired with its strong_unlock_orec on all paths.
// (Commit write-back acquires a variable *set* of orecs and is tracked by
// its own acquired-count bookkeeping, not by TSA.)
class CAPABILITY("htm.strong_orec") StrongOrecCap {};
StrongOrecCap& strong_orec_cap() noexcept;

// Spins (with randomized exponential backoff) until the orec is unlocked
// and returns the (even) version word after locking it with kStrongTag.
std::uint64_t strong_lock_orec(std::atomic<std::uint64_t>& orec) noexcept
    ACQUIRE(strong_orec_cap());
void strong_unlock_orec(std::atomic<std::uint64_t>& orec, std::uint64_t ver,
                        bool bump) noexcept RELEASE(strong_orec_cap());
}  // namespace detail

template <detail::TxValue T>
inline T strong_load(const T* addr) noexcept {
  return detail::atomic_load_acquire(addr);
}

template <detail::TxValue T>
inline void strong_store(T* addr, T value) noexcept {
  protocol::check_strong_op(in_txn(), "strong_store");
  assert(protocol::kEnabled ||
         (!in_txn() && "strong operations are not allowed inside a txn"));
  auto& orec = detail::orec_for(addr);
  const std::uint64_t ver = detail::strong_lock_orec(orec);
  detail::atomic_store_release(addr, value);
  detail::strong_unlock_orec(orec, ver, /*bump=*/true);
  stats().strong_stores.add();
}

template <detail::TxValue T>
inline bool strong_cas(T* addr, T expected, T desired) noexcept {
  protocol::check_strong_op(in_txn(), "strong_cas");
  assert(protocol::kEnabled ||
         (!in_txn() && "strong operations are not allowed inside a txn"));
  auto& orec = detail::orec_for(addr);
  const std::uint64_t ver = detail::strong_lock_orec(orec);
  const T cur = detail::atomic_load_acquire(addr);
  if (cur != expected) {
    detail::strong_unlock_orec(orec, ver, /*bump=*/false);
    return false;
  }
  detail::atomic_store_release(addr, desired);
  detail::strong_unlock_orec(orec, ver, /*bump=*/true);
  stats().strong_stores.add();
  return true;
}

template <detail::TxValue T>
inline T strong_fetch_add(T* addr, T delta) noexcept {
  protocol::check_strong_op(in_txn(), "strong_fetch_add");
  assert(protocol::kEnabled ||
         (!in_txn() && "strong operations are not allowed inside a txn"));
  auto& orec = detail::orec_for(addr);
  const std::uint64_t ver = detail::strong_lock_orec(orec);
  const T cur = detail::atomic_load_acquire(addr);
  detail::atomic_store_release(addr, static_cast<T>(cur + delta));
  detail::strong_unlock_orec(orec, ver, /*bump=*/true);
  stats().strong_stores.add();
  return cur;
}

template <detail::TxValue T>
inline T strong_exchange(T* addr, T value) noexcept {
  protocol::check_strong_op(in_txn(), "strong_exchange");
  assert(protocol::kEnabled ||
         (!in_txn() && "strong operations are not allowed inside a txn"));
  auto& orec = detail::orec_for(addr);
  const std::uint64_t ver = detail::strong_lock_orec(orec);
  const T cur = detail::atomic_load_acquire(addr);
  detail::atomic_store_release(addr, value);
  detail::strong_unlock_orec(orec, ver, /*bump=*/true);
  stats().strong_stores.add();
  return cur;
}

// Blocks until no transaction is inside commit write-back. Called by
// elidable-lock acquirers after the lock word is set: every transaction
// validating after that point sees the bumped lock orec and aborts, and
// this wait flushes the ones that had already validated.
void wait_writeback_drain() noexcept;

// Called by elidable-lock subscribe() implementations (sync/tx_lock.hpp):
// records, for the protocol checker, that the running transaction
// subscribed to a lock. Cheap unconditional store; no-op outside a txn.
inline void note_lock_subscription() noexcept {
  auto& t = detail::txn();
  if (t.active) t.subscribed = true;
}

// Test hook: number of live (active) transactions on this thread (0/1).
inline std::uint32_t nesting_depth() noexcept { return detail::txn().depth; }

}  // namespace hcf::htm
