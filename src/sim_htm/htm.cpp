#include "sim_htm/htm.hpp"

#include <memory>
#include <new>

#include "telemetry/telemetry.hpp"
#include "util/backoff.hpp"

namespace hcf::htm {

Config& config() noexcept {
  static Config cfg;
  return cfg;
}

Stats& stats() noexcept {
  static Stats s;
  return s;
}

namespace detail {

std::atomic<std::uint64_t>* orec_table() noexcept {
  // Zero-initialized static storage; even (version 0) means unlocked.
  // Cache-line aligned so no orec straddles a line and the table start
  // never shares a line with unrelated allocator metadata.
  static auto* table = new (std::align_val_t{util::kCacheLineSize})
      std::atomic<std::uint64_t>[kOrecCount]{};
  return table;
}

// Each global clock gets a private cache line: the version clock is the
// single hottest shared word in the system and must not false-share with
// the drain counter or the (read-mostly) strong clock.
std::atomic<std::uint64_t>& global_clock() noexcept {
  static util::CacheAligned<std::atomic<std::uint64_t>> clock;
  return clock.value;
}

std::atomic<std::uint64_t>& strong_clock() noexcept {
  static util::CacheAligned<std::atomic<std::uint64_t>> clock;
  return clock.value;
}

std::atomic<std::uint64_t>& writeback_count() noexcept {
  static util::CacheAligned<std::atomic<std::uint64_t>> count;
  return count.value;
}

Txn& txn() noexcept {
  thread_local Txn t;
  return t;
}

// Let the memory layer refuse to drain remote-free queues inside a
// transaction body without mem/ depending on sim_htm/ (mem/pool.hpp).
namespace {
struct InTxnProbeInit {
  InTxnProbeInit() noexcept {
    mem::set_in_txn_probe([] { return txn().active; });
  }
};
InTxnProbeInit g_in_txn_probe_init;
}  // namespace

void throw_abort(AbortCode code) { throw TxAbort{code}; }

bool validate_read_set(Txn& t, std::uint64_t self_tag) noexcept {
  for (const auto& r : t.read_set) {
    const std::uint64_t cur = r.orec->load(std::memory_order_acquire);
    if (cur == r.version) continue;
    if (self_tag != 0 && cur == self_tag) {
      // We hold this orec for commit; compare against its pre-lock version.
      bool ok = false;
      for (const auto& a : t.acquired) {
        if (a.orec == r.orec) {
          ok = (a.old_version == r.version);
          break;
        }
      }
      if (ok) continue;
    }
    return false;
  }
  return true;
}

void extend_snapshot(Txn& t) {
  const std::uint64_t c = global_clock().load(std::memory_order_acquire);
  const std::uint64_t sc = strong_clock().load(std::memory_order_acquire);
  const std::size_t n = t.read_set.size();
  // Incremental revalidation: entries [0, validated_count) were proven
  // consistent at clock `validated_epoch`. If the clock still reads that
  // value, nothing can have been written back over them (writers release
  // orecs only after bumping the clock, and a mid-write-back writer's
  // locked orecs make any read of its target addresses abort), so only the
  // entries appended since need checking.
  const std::size_t from =
      (c == t.validated_epoch) ? t.validated_count : 0;
  for (std::size_t i = from; i < n; ++i) {
    const auto& r = t.read_set[i];
    if (r.orec->load(std::memory_order_acquire) != r.version) {
      throw_abort(AbortCode::Conflict);
    }
  }
  // The set is consistent at some instant at which the clock read `c`;
  // every recorded version is ≤ c, so c is a sound new snapshot.
  t.snapshot_epoch = c;
  t.snapshot_strong = sc;
  t.validated_epoch = c;
  t.validated_count = n;
  ++t.n_extensions;
}

void begin_txn(Txn& t) {
  assert(!t.active);
  t.active = true;
  t.subscribed = false;
  t.depth = 1;
  t.tid = util::this_thread_id();
  t.last_abort = AbortCode::None;
  t.mode = config().epoch_mode.load(std::memory_order_relaxed);
  t.reset_logs();
  t.snapshot_epoch = global_clock().load(std::memory_order_acquire);
  // Only Sampled-mode reads poll the strong clock; Tick transactions skip
  // the extra cross-line load (extend_snapshot refreshes snapshot_strong
  // itself whenever it runs).
  t.snapshot_strong = t.mode == EpochMode::Sampled
                          ? strong_clock().load(std::memory_order_acquire)
                          : 0;
  t.validated_epoch = t.snapshot_epoch;
  t.validated_count = 0;
  stats().starts.add();
}

void store_sized(std::uintptr_t addr, std::uint64_t value,
                 std::uint8_t size) noexcept {
  switch (size) {
    case 1:
      std::atomic_ref<std::uint8_t>(*reinterpret_cast<std::uint8_t*>(addr))
          .store(static_cast<std::uint8_t>(value), std::memory_order_release);
      break;
    case 2:
      std::atomic_ref<std::uint16_t>(*reinterpret_cast<std::uint16_t*>(addr))
          .store(static_cast<std::uint16_t>(value),
                 std::memory_order_release);
      break;
    case 4:
      std::atomic_ref<std::uint32_t>(*reinterpret_cast<std::uint32_t*>(addr))
          .store(static_cast<std::uint32_t>(value),
                 std::memory_order_release);
      break;
    default:
      std::atomic_ref<std::uint64_t>(*reinterpret_cast<std::uint64_t*>(addr))
          .store(value, std::memory_order_release);
      break;
  }
}

void windex_grow(Txn& t) {
  t.windex.assign(t.windex.size() * 2, 0);
  --t.windex_shift;
  for (std::size_t i = 0; i < t.write_set.size(); ++i) {
    windex_insert(t, addr_hash(t.write_set[i].addr),
                  static_cast<std::uint32_t>(i));
  }
}

namespace {

// Releases every held orec. `new_word == 0` rolls back to the pre-lock
// versions (failed commit); otherwise stores `new_word` (the commit
// version, already shifted) into each.
void release_acquired(Txn& t, std::uint64_t new_word) noexcept {
  for (auto it = t.acquired.rbegin(); it != t.acquired.rend(); ++it) {
    // Publish the write-back to transactional readers: their post-load orec
    // validation runs HCF_TSAN_ACQUIRE on the same orec (htm.hpp, read()).
    HCF_TSAN_RELEASE(it->orec);
    // release: pairs with readers' acquire loads of the orec — a reader
    // that observes the new version also observes the whole write-back.
    it->orec->store(new_word != 0 ? new_word : it->old_version,
                    std::memory_order_release);
  }
  t.acquired.clear();
}

// Try to lock every orec covering the write set. Returns false (with all
// partial acquisitions rolled back) on any conflict.
bool acquire_write_orecs(Txn& t) noexcept {
  const std::uint64_t my_tag = tx_lock_word(t.tid);
  for (const auto& w : t.write_set) {
    auto& orec = orec_for(reinterpret_cast<const void*>(w.addr));
    std::uint64_t cur = orec.load(std::memory_order_relaxed);
    // Orecs we already own (several writes can share one orec): the tid
    // tag is unique to this thread, so one compare replaces a scan.
    if (cur == my_tag) continue;
    // acquire on success: imports the previous owner's write-back, so our
    // own write-back of this line cannot be reordered before theirs.
    if (is_locked(cur) ||
        !orec.compare_exchange_strong(cur, my_tag, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      release_acquired(t, /*new_word=*/0);
      return false;
    }
    t.acquired.push_back({&orec, cur});
  }
  return true;
}

void flush_access_counters(Txn& t) noexcept {
  if (t.n_reads != 0) stats().tx_reads.add(t.n_reads);
  if (t.n_writes != 0) stats().tx_writes.add(t.n_writes);
  if (t.n_extensions != 0) stats().snapshot_extensions.add(t.n_extensions);
  t.n_reads = 0;
  t.n_writes = 0;
  t.n_extensions = 0;
}

void finish_commit_bookkeeping(Txn& t) noexcept {
  // Allocations survive (ownership passed to the data structure); logical
  // frees become facade retirements so speculative readers stay safe. The
  // transaction is marked inactive *first*: the logged fns run mem::retire,
  // whose collect path may drain the pool inbox — legal only outside a
  // transaction body (mem/pool.hpp), and the write-back is already done.
  t.active = false;
  t.depth = 0;
  t.alloc_log.clear();
  for (const auto& r : t.retire_log) r.fn(r.ptr);
  t.retire_log.clear();
  flush_access_counters(t);
  stats().commits.add();
}

}  // namespace

void commit_txn(Txn& t) {
  assert(t.active);
  if (t.depth > 1) {  // flat-nested inner commit: nothing to do
    --t.depth;
    return;
  }
  protocol::check_commit_subscription(t.subscribed);

  if (t.write_set.empty()) {
    if (t.mode == EpochMode::Tick) {
      // Read-only, Tick: the per-read clock checks kept the snapshot
      // consistent; a final validation is needed only if the clock moved
      // since (and then only for entries not already validated at it).
      if (global_clock().load(std::memory_order_acquire) !=
          t.snapshot_epoch) {
        extend_snapshot(t);
      }
    }
    // Read-only, Sampled: every read individually proved version ≤ snapshot
    // with the strong clock unchanged, so the read set is consistent at the
    // snapshot and the transaction serializes there — no validation at all.
    stats().read_only_commits.add();
    finish_commit_bookkeeping(t);
    telemetry::htm_commit(/*read_only=*/true);
    return;
  }

  if (!acquire_write_orecs(t)) throw_abort(AbortCode::Conflict);

  // Register as a write-back in progress *before* the final validation:
  // elidable-lock acquirers first doom future validators (by bumping the
  // lock word's orec) and then wait for this counter to drain, which
  // together guarantee no write-back overlaps under-lock execution.
  writeback_count().fetch_add(1, std::memory_order_relaxed);
  // seq_cst: Dekker/store-buffering pair with the fence in
  // wait_writeback_drain(). Either the drainer's counter load observes our
  // increment (it waits for our fetch_sub), or this fence follows the
  // drainer's in the fence order and our validation below observes the
  // lock word's bumped orec (stored before the drainer's fence) and
  // aborts. acquire/release alone cannot order these two store→load pairs;
  // see DESIGN.md §"Substrate performance" and
  // HtmQuiescence.LockHolderNeverSeesPartialWriteback.
  std::atomic_thread_fence(std::memory_order_seq_cst);

  // Draw the commit version. acq_rel: the release half publishes our orec
  // locks (and counter increment) to the next clock RMW, the acquire half
  // imports every earlier committer's locks, making the fast path below
  // sound — two writers cannot both skip validation against each other.
  const std::uint64_t wv =
      global_clock().fetch_add(1, std::memory_order_acq_rel) + 1;

  // TL2 fast path: wv == snapshot + 1 means no clock increment happened
  // between our snapshot and our own — nothing was committed or strong-
  // stored in between, and any concurrent writer drew a later version and
  // will see our locks when it validates. The read set is trivially valid.
  if (wv != t.snapshot_epoch + 1 &&
      !validate_read_set(t, tx_lock_word(t.tid))) {
    writeback_count().fetch_sub(1, std::memory_order_release);
    release_acquired(t, /*new_word=*/0);
    throw_abort(AbortCode::Conflict);
  }

  for (const auto& w : t.write_set) store_sized(w.addr, w.value, w.size);

  // The clock already reached wv (our own fetch_add), so releasing the
  // orecs to version wv keeps the invariant that a reader observing the
  // new version finds the clock at ≥ wv and revalidates against it.
  release_acquired(t, /*new_word=*/wv << 1);
  // Publish the completed write-back to lock acquirers spinning in
  // wait_writeback_drain (they HCF_TSAN_ACQUIRE the counter on exit).
  HCF_TSAN_RELEASE(&writeback_count());
  // release: the drainer's acquire load of 0 imports our write-back (the
  // RMW release sequence keeps this intact across interleaved committers).
  writeback_count().fetch_sub(1, std::memory_order_release);

  finish_commit_bookkeeping(t);
  telemetry::htm_commit(/*read_only=*/false);
}

void abort_cleanup(Txn& t, AbortCode code) noexcept {
  assert(t.active);
  // Nothing was written back (lazy versioning), so "undo" is just
  // releasing speculative allocations.
  for (auto it = t.alloc_log.rbegin(); it != t.alloc_log.rend(); ++it) {
    it->fn(it->ptr);
  }
  t.reset_logs();
  t.active = false;
  t.depth = 0;
  detail::flush_access_counters(t);
  t.last_abort = code;
  const auto idx = static_cast<std::size_t>(code);
  stats().aborts[idx < kNumAbortCodes ? idx : 0].add();
  // The transaction is torn down (t.active is false): recording here is a
  // plain per-thread side effect, not an in-transaction call.
  telemetry::htm_abort(static_cast<int>(code));
}

StrongOrecCap& strong_orec_cap() noexcept {
  static StrongOrecCap cap;
  return cap;
}

std::uint64_t strong_lock_orec(std::atomic<std::uint64_t>& orec) noexcept {
  // Uncontended fast path: one load, one CAS, no backoff state.
  std::uint64_t cur = orec.load(std::memory_order_acquire);
  if (!is_locked(cur) &&
      orec.compare_exchange_strong(cur, kStrongTag, std::memory_order_acquire,
                                   std::memory_order_relaxed)) {
    // Import the previous owner's write-back (commit or strong store).
    HCF_TSAN_ACQUIRE(&orec);
    return cur;
  }
  // Contended: randomized exponential backoff so strong-store storms on a
  // hot orec (lock hand-offs, status-word broadcasts) spread out instead
  // of livelocking the commit path with CAS traffic. Back off only while
  // the orec is observed held; a failed CAS against a *free* orec retries
  // immediately — orec hold times are sub-microsecond, so waiting past
  // them (measured: fig4 Lock @2 threads, -60%) costs more than the CAS
  // traffic it saves. The small cap keeps the worst wait near one
  // write-back, not one scheduling quantum.
  util::ExpBackoff backoff(util::this_thread_id() * 0x9e3779b97f4a7c15ULL + 1,
                           /*min_spins=*/4, /*max_spins=*/128);
  for (;;) {
    cur = orec.load(std::memory_order_acquire);
    if (is_locked(cur)) {
      backoff.pause();
      continue;
    }
    if (orec.compare_exchange_weak(cur, kStrongTag, std::memory_order_acquire,
                                   std::memory_order_relaxed)) {
      HCF_TSAN_ACQUIRE(&orec);
      return cur;
    }
  }
}

void strong_unlock_orec(std::atomic<std::uint64_t>& orec, std::uint64_t ver,
                        bool bump) noexcept {
  if (bump) {
    // Same discipline as commit: draw a fresh version (clock bump) before
    // the orec release, so any transaction that can observe the new value
    // must revalidate. The strong clock moves second but still before the
    // orec release and before the caller's subsequent uninstrumented
    // stores, which is what Sampled-mode readers poll.
    const std::uint64_t wv =
        global_clock().fetch_add(1, std::memory_order_acq_rel) + 1;
    strong_clock().fetch_add(1, std::memory_order_acq_rel);
    HCF_TSAN_RELEASE(&orec);
    orec.store(wv << 1, std::memory_order_release);
    return;
  }
  HCF_TSAN_RELEASE(&orec);
  orec.store(ver, std::memory_order_release);
}

}  // namespace detail

void wait_writeback_drain() noexcept {
  // seq_cst: Dekker/store-buffering pair with the fence in commit_txn().
  // Our caller already stored the doom (bumped lock-word orec) before
  // calling; this fence orders that store before the counter loads below,
  // so every committer either sees the doom during validation or is seen
  // here and drained. See DESIGN.md §"Substrate performance".
  std::atomic_thread_fence(std::memory_order_seq_cst);
  auto& count = detail::writeback_count();
  if (count.load(std::memory_order_acquire) != 0) {
    // Write-backs are a bounded store loop, so the drain is short; the
    // small cap bounds added lock-acquisition latency while still taking
    // the counter line out of the spin loop's cache traffic.
    util::ExpBackoff backoff(
        util::this_thread_id() * 0x9e3779b97f4a7c15ULL + 1,
        /*min_spins=*/4, /*max_spins=*/128);
    do {
      backoff.pause();
    } while (count.load(std::memory_order_acquire) != 0);
  }
  // Quiescence gate: everything written back by the drained transactions is
  // now visible to this (lock-holding) thread's uninstrumented accesses.
  HCF_TSAN_ACQUIRE(&count);
}

}  // namespace hcf::htm
