#include "sim_htm/htm.hpp"

#include <memory>

#include "telemetry/telemetry.hpp"
#include "util/backoff.hpp"

namespace hcf::htm {

Config& config() noexcept {
  static Config cfg;
  return cfg;
}

Stats& stats() noexcept {
  static Stats s;
  return s;
}

namespace detail {

std::atomic<std::uint64_t>* orec_table() noexcept {
  // Zero-initialized static storage; even (version 0) means unlocked.
  static auto* table = new std::atomic<std::uint64_t>[kOrecCount]{};
  return table;
}

std::atomic<std::uint64_t>& global_epoch() noexcept {
  static std::atomic<std::uint64_t> epoch{0};
  return epoch;
}

std::atomic<std::uint64_t>& writeback_count() noexcept {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

Txn& txn() noexcept {
  thread_local Txn t;
  return t;
}

void throw_abort(AbortCode code) { throw TxAbort{code}; }

bool validate_read_set(Txn& t, std::uint64_t self_tag) noexcept {
  for (const auto& r : t.read_set) {
    const std::uint64_t cur = r.orec->load(std::memory_order_seq_cst);
    if (cur == r.version) continue;
    if (self_tag != 0 && cur == self_tag) {
      // We hold this orec for commit; compare against its pre-lock version.
      bool ok = false;
      for (const auto& a : t.acquired) {
        if (a.orec == r.orec) {
          ok = (a.old_version == r.version);
          break;
        }
      }
      if (ok) continue;
    }
    return false;
  }
  return true;
}

void extend_snapshot(Txn& t) {
  const std::uint64_t e = global_epoch().load(std::memory_order_seq_cst);
  if (!validate_read_set(t, /*self_tag=*/0)) {
    throw_abort(AbortCode::Conflict);
  }
  t.snapshot_epoch = e;
}

void begin_txn(Txn& t) {
  assert(!t.active);
  t.active = true;
  t.subscribed = false;
  t.depth = 1;
  t.tid = util::this_thread_id();
  t.last_abort = AbortCode::None;
  t.reset_logs();
  t.snapshot_epoch = global_epoch().load(std::memory_order_seq_cst);
  stats().starts.add();
}

void store_sized(std::uintptr_t addr, std::uint64_t value,
                 std::uint8_t size) noexcept {
  switch (size) {
    case 1:
      std::atomic_ref<std::uint8_t>(*reinterpret_cast<std::uint8_t*>(addr))
          .store(static_cast<std::uint8_t>(value), std::memory_order_release);
      break;
    case 2:
      std::atomic_ref<std::uint16_t>(*reinterpret_cast<std::uint16_t*>(addr))
          .store(static_cast<std::uint16_t>(value),
                 std::memory_order_release);
      break;
    case 4:
      std::atomic_ref<std::uint32_t>(*reinterpret_cast<std::uint32_t*>(addr))
          .store(static_cast<std::uint32_t>(value),
                 std::memory_order_release);
      break;
    default:
      std::atomic_ref<std::uint64_t>(*reinterpret_cast<std::uint64_t*>(addr))
          .store(value, std::memory_order_release);
      break;
  }
}

namespace {

void release_acquired(Txn& t, bool bump) noexcept {
  for (auto it = t.acquired.rbegin(); it != t.acquired.rend(); ++it) {
    // Publish the write-back to transactional readers: their post-load orec
    // validation runs HCF_TSAN_ACQUIRE on the same orec (htm.hpp, read()).
    HCF_TSAN_RELEASE(it->orec);
    it->orec->store(bump ? it->old_version + 2 : it->old_version,
                    std::memory_order_seq_cst);
  }
  t.acquired.clear();
}

// Try to lock every orec covering the write set. Returns false (with all
// partial acquisitions rolled back) on any conflict.
bool acquire_write_orecs(Txn& t) noexcept {
  const std::uint64_t my_tag = tx_lock_word(t.tid);
  for (const auto& w : t.write_set) {
    auto& orec = orec_for(reinterpret_cast<const void*>(w.addr));
    // Skip orecs we already own (several writes can share one orec).
    bool mine = false;
    for (const auto& a : t.acquired) {
      if (a.orec == &orec) {
        mine = true;
        break;
      }
    }
    if (mine) continue;
    std::uint64_t cur = orec.load(std::memory_order_seq_cst);
    if (is_locked(cur) ||
        !orec.compare_exchange_strong(cur, my_tag,
                                      std::memory_order_seq_cst)) {
      release_acquired(t, /*bump=*/false);
      return false;
    }
    t.acquired.push_back({&orec, cur});
  }
  return true;
}

void flush_access_counters(Txn& t) noexcept {
  if (t.n_reads != 0) stats().tx_reads.add(t.n_reads);
  if (t.n_writes != 0) stats().tx_writes.add(t.n_writes);
  t.n_reads = 0;
  t.n_writes = 0;
}

void finish_commit_bookkeeping(Txn& t) noexcept {
  // Allocations survive (ownership passed to the data structure); logical
  // frees become EBR retirements so speculative readers stay safe.
  t.alloc_log.clear();
  for (const auto& r : t.retire_log) {
    mem::EbrDomain::instance().retire(r.ptr, r.fn);
  }
  t.retire_log.clear();
  t.active = false;
  t.depth = 0;
  flush_access_counters(t);
  stats().commits.add();
}

}  // namespace

void commit_txn(Txn& t) {
  assert(t.active);
  if (t.depth > 1) {  // flat-nested inner commit: nothing to do
    --t.depth;
    return;
  }
  protocol::check_commit_subscription(t.subscribed);

  if (t.write_set.empty()) {
    // Read-only: the incremental epoch checks kept the snapshot consistent;
    // one final validation is needed only if the epoch moved since.
    if (global_epoch().load(std::memory_order_seq_cst) != t.snapshot_epoch &&
        !validate_read_set(t, /*self_tag=*/0)) {
      throw_abort(AbortCode::Conflict);
    }
    stats().read_only_commits.add();
    finish_commit_bookkeeping(t);
    telemetry::htm_commit(/*read_only=*/true);
    return;
  }

  if (!acquire_write_orecs(t)) throw_abort(AbortCode::Conflict);

  // Register as a write-back in progress *before* the final validation:
  // elidable-lock acquirers first doom future validators (by bumping the
  // lock word's orec) and then wait for this counter to drain, which
  // together guarantee no write-back overlaps under-lock execution.
  writeback_count().fetch_add(1, std::memory_order_seq_cst);

  if (!validate_read_set(t, tx_lock_word(t.tid))) {
    writeback_count().fetch_sub(1, std::memory_order_seq_cst);
    release_acquired(t, /*bump=*/false);
    throw_abort(AbortCode::Conflict);
  }

  for (const auto& w : t.write_set) store_sized(w.addr, w.value, w.size);

  // Epoch must move *before* the orecs are released: a reader that loads a
  // freshly written value (possible only after release) is then guaranteed
  // to observe the epoch change and revalidate its read set — otherwise a
  // zombie could pair the new value with stale earlier reads (opacity
  // violation, caught by HtmOpacity.InvariantNeverObservedBroken).
  global_epoch().fetch_add(1, std::memory_order_seq_cst);
  release_acquired(t, /*bump=*/true);
  // Publish the completed write-back to lock acquirers spinning in
  // wait_writeback_drain (they HCF_TSAN_ACQUIRE the counter on exit).
  HCF_TSAN_RELEASE(&writeback_count());
  writeback_count().fetch_sub(1, std::memory_order_seq_cst);

  finish_commit_bookkeeping(t);
  telemetry::htm_commit(/*read_only=*/false);
}

void abort_cleanup(Txn& t, AbortCode code) noexcept {
  assert(t.active);
  // Nothing was written back (lazy versioning), so "undo" is just
  // releasing speculative allocations.
  for (auto it = t.alloc_log.rbegin(); it != t.alloc_log.rend(); ++it) {
    it->fn(it->ptr);
  }
  t.reset_logs();
  t.active = false;
  t.depth = 0;
  detail::flush_access_counters(t);
  t.last_abort = code;
  const auto idx = static_cast<std::size_t>(code);
  stats().aborts[idx < kNumAbortCodes ? idx : 0].add();
  // The transaction is torn down (t.active is false): recording here is a
  // plain per-thread side effect, not an in-transaction call.
  telemetry::htm_abort(static_cast<int>(code));
}

std::uint64_t strong_lock_orec(std::atomic<std::uint64_t>& orec) noexcept {
  for (;;) {
    std::uint64_t cur = orec.load(std::memory_order_seq_cst);
    if (!is_locked(cur) &&
        orec.compare_exchange_weak(cur, kStrongTag,
                                   std::memory_order_seq_cst)) {
      // Import the previous owner's write-back (commit or strong store).
      HCF_TSAN_ACQUIRE(&orec);
      return cur;
    }
    util::cpu_relax();
  }
}

void strong_unlock_orec(std::atomic<std::uint64_t>& orec, std::uint64_t ver,
                        bool bump) noexcept {
  // Same ordering requirement as commit write-back: epoch before release,
  // so any transaction that can observe the new value must revalidate.
  if (bump) global_epoch().fetch_add(1, std::memory_order_seq_cst);
  HCF_TSAN_RELEASE(&orec);
  orec.store(bump ? ver + 2 : ver, std::memory_order_seq_cst);
}

}  // namespace detail

void wait_writeback_drain() noexcept {
  while (detail::writeback_count().load(std::memory_order_seq_cst) != 0) {
    util::cpu_relax();
  }
  // Quiescence gate: everything written back by the drained transactions is
  // now visible to this (lock-holding) thread's uninstrumented accesses.
  HCF_TSAN_ACQUIRE(&detail::writeback_count());
}

}  // namespace hcf::htm
