// TxCell<T>: a shared word accessed both transactionally (subscription
// reads, transactional removal of publication slots) and non-transactionally
// (lock acquisition, status transitions). All mutations funnel through the
// strong orec protocol so they doom overlapping transactions — the
// simulator's equivalent of a cache-line invalidation under real HTM.
//
// TxField<T>: a data-structure field with transparent instrumentation.
// Reads/writes go through htm::read / htm::write, which fall through to
// plain atomic accesses outside transactions — so the *same* sequential
// code runs speculatively, under the lock, and single-threaded.
//
// ThreadSanitizer: every access below compiles to a std::atomic /
// std::atomic_ref operation, which TSan models natively; the protocol-level
// happens-before edges (orec release on commit write-back, quiescence
// drain) carry explicit HCF_TSAN_* annotations in htm.{hpp,cpp} — see
// sim_htm/tsan.hpp and DESIGN.md §7. A TSan report on a TxCell/TxField
// access is therefore a real protocol race, not instrumentation noise.
#pragma once

#include <type_traits>

#include "sim_htm/htm.hpp"

namespace hcf::htm {

template <detail::TxValue T>
class TxCell {
 public:
  constexpr TxCell() noexcept : value_{} {}
  explicit constexpr TxCell(T v) noexcept : value_(v) {}

  TxCell(const TxCell&) = delete;
  TxCell& operator=(const TxCell&) = delete;

  // Transactional read: joins the read set (i.e. subscribes) inside a
  // transaction; plain acquire load outside.
  T read() const { return htm::read(&value_); }

  // Non-transactional accesses.
  T load() const noexcept { return strong_load(&value_); }
  void store(T v) noexcept { strong_store(&value_, v); }
  bool cas(T expected, T desired) noexcept {
    return strong_cas(&value_, expected, desired);
  }
  T fetch_add(T delta) noexcept { return strong_fetch_add(&value_, delta); }
  T exchange(T v) noexcept { return strong_exchange(&value_, v); }

  // Plain release store, *without* dooming subscribed transactions. Only
  // valid for transitions no live transaction's correctness depends on
  // (e.g. Announce before the owner's first transaction, Done after the
  // helped operation's owner can no longer be speculating on it).
  void store_plain(T v) noexcept { detail::atomic_store_release(&value_, v); }

  // Plain (non-dooming) exchange, same validity rules as store_plain; used
  // where the transition must also report the displaced value — e.g.
  // mark_done observing whether a parked-waiter flag was set.
  T exchange_plain(T v) noexcept {
    return std::atomic_ref<T>(value_).exchange(v, std::memory_order_acq_rel);
  }

  // Transactional (buffered) write — used when a cell must change atomically
  // with the rest of a transaction (e.g. publication-slot removal).
  void tx_write(T v) { htm::write(&value_, v); }

  // Direct initialization before the cell is shared. Not thread-safe.
  void init(T v) noexcept { value_ = v; }

  // Location of the underlying word, for kernel-assisted waiting
  // (util::park / util::wake_*). This exposes *where* the cell lives, not
  // a protocol bypass: the only accesses through it are the futex
  // syscall's own equality check and util::park's atomic_ref re-reads —
  // both reads, both racing benignly with strong mutations by design
  // (a parked waiter always re-checks its predicate after waking).
  const T* wait_address() const noexcept { return &value_; }

 private:
  T value_;
};

template <detail::TxValue T>
class TxField {
 public:
  constexpr TxField() noexcept : value_{} {}
  constexpr TxField(T v) noexcept : value_(v) {}  // NOLINT: implicit by design

  // Copying a field copies the (instrumented) value.
  TxField(const TxField& other) : value_{} { *this = other.get(); }
  TxField& operator=(const TxField& other) {
    *this = other.get();
    return *this;
  }

  operator T() const { return htm::read(&value_); }  // NOLINT
  T get() const { return htm::read(&value_); }

  TxField& operator=(T v) {
    htm::write(&value_, v);
    return *this;
  }

  // Pre-publication initialization of freshly allocated nodes: bypasses the
  // write buffer (the node is still private), keeping write sets small.
  void init(T v) noexcept { value_ = v; }

  // Plain (uninstrumented) atomic load, for advisory reads outside any
  // transaction — e.g. look-aside hints consulted by should_help. The value
  // may be stale relative to in-flight transactions.
  T load_plain() const noexcept { return detail::atomic_load_acquire(&value_); }

  // Pointer-like sugar for TxField<U*>.
  T operator->() const
    requires std::is_pointer_v<T>
  {
    return get();
  }

 private:
  T value_;
};

}  // namespace hcf::htm
