// SCM: TLE with software-assisted conflict management (Afek, Levy &
// Morrison). Threads whose transactions abort on conflicts serialize on an
// *auxiliary* lock and retry speculatively while holding it — conflicting
// transactions run one at a time, but non-conflicting threads continue to
// run concurrently because the auxiliary lock is never subscribed to.
// Only when the auxiliary-phase budget is also exhausted does the thread
// acquire the real data-structure lock.
#pragma once

#include <string_view>

#include "core/engine_stats.hpp"
#include "core/operation.hpp"
#include "mem/ebr.hpp"
#include "sim_htm/htm.hpp"
#include "sync/spinlock.hpp"
#include "sync/tx_lock.hpp"
#include "telemetry/telemetry.hpp"
#include "util/backoff.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock Lock = sync::TxLock>
class ScmEngine {
 public:
  using Op = Operation<DS>;

  // The total budget matches the paper's setup (ten attempts for every
  // HTM-based engine), split between the free phase and the aux-lock phase.
  explicit ScmEngine(DS& ds, int free_budget = 5, int aux_budget = 5) noexcept
      : ds_(ds), free_budget_(free_budget), aux_budget_(aux_budget) {}

  static std::string_view name() noexcept { return "SCM"; }

  Phase execute(Op& op) {
    mem::Guard ebr;
    op.prepare();

    bool capacity = false;
    // Both speculative rounds (free and aux-serialized) count as the
    // private phase for telemetry; hooks stay outside htm::attempt bodies.
    telemetry::phase_enter(static_cast<int>(Phase::Private));
    if (try_speculative(op, free_budget_, &capacity)) {
      telemetry::phase_exit(static_cast<int>(Phase::Private), true);
      op.mark_done(Phase::Private);
      stats_.record_completion(op.class_id(), Phase::Private);
      return Phase::Private;
    }

    if (!capacity) {
      // Conflict path: serialize conflicting threads on the aux lock and
      // retry. The aux lock is not elided and not subscribed — holders
      // still run speculatively against the main lock.
      aux_lock_.lock();
      const bool ok = try_speculative(op, aux_budget_, &capacity);
      aux_lock_.unlock();
      if (ok) {
        telemetry::phase_exit(static_cast<int>(Phase::Private), true);
        op.mark_done(Phase::Private);
        stats_.record_completion(op.class_id(), Phase::Private);
        return Phase::Private;
      }
    }
    telemetry::phase_exit(static_cast<int>(Phase::Private), false);

    telemetry::phase_enter(static_cast<int>(Phase::UnderLock));
    {
      sync::LockGuard<Lock> guard(lock_);
      op.run_seq(ds_);
    }
    telemetry::phase_exit(static_cast<int>(Phase::UnderLock), true);
    op.mark_done(Phase::UnderLock);
    stats_.record_completion(op.class_id(), Phase::UnderLock);
    return Phase::UnderLock;
  }

  EngineStats& stats() noexcept { return stats_; }
  std::uint64_t lock_acquisitions() const noexcept {
    return lock_.acquisition_count();
  }
  void reset_stats() noexcept {
    stats_.reset();
    lock_.reset_stats();
  }

  DS& data() noexcept { return ds_; }
  Lock& lock() noexcept { return lock_; }

 private:
  bool try_speculative(Op& op, int budget, bool* capacity) {
    util::ExpBackoff backoff(
        util::backoff_seed(util::BackoffSite::kScmSpeculate));
    for (int attempt = 0; attempt < budget; ++attempt) {
      lock_.wait_until_free();
      const bool committed = htm::attempt([&] {
        lock_.subscribe();
        op.run_seq(ds_);
      });
      if (committed) return true;
      if (htm::last_abort_code() == htm::AbortCode::Capacity) {
        *capacity = true;
        return false;
      }
      if (htm::last_abort_code() == htm::AbortCode::Conflict) backoff.pause();
    }
    return false;
  }

  DS& ds_;
  int free_budget_;
  int aux_budget_;
  Lock lock_;
  sync::SpinLock aux_lock_;
  EngineStats stats_;
};

}  // namespace hcf::core
