// Baseline engine: every operation runs under the data-structure lock.
#pragma once

#include <string_view>

#include "core/engine_stats.hpp"
#include "core/operation.hpp"
#include "mem/ebr.hpp"
#include "sync/tx_lock.hpp"
#include "telemetry/telemetry.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock Lock = sync::TxLock>
class LockEngine {
 public:
  using Op = Operation<DS>;

  explicit LockEngine(DS& ds) noexcept : ds_(ds) {}

  static std::string_view name() noexcept { return "Lock"; }

  Phase execute(Op& op) {
    mem::Guard ebr;
    op.prepare();
    telemetry::phase_enter(static_cast<int>(Phase::UnderLock));
    {
      sync::LockGuard<Lock> guard(lock_);
      op.run_seq(ds_);
    }
    telemetry::phase_exit(static_cast<int>(Phase::UnderLock), true);
    op.mark_done(Phase::UnderLock);
    stats_.record_completion(op.class_id(), Phase::UnderLock);
    return Phase::UnderLock;
  }

  EngineStats& stats() noexcept { return stats_; }
  std::uint64_t lock_acquisitions() const noexcept {
    return lock_.acquisition_count();
  }
  void reset_stats() noexcept {
    stats_.reset();
    lock_.reset_stats();
  }

  DS& data() noexcept { return ds_; }
  Lock& lock() noexcept { return lock_; }

 private:
  DS& ds_;
  Lock lock_;
  EngineStats stats_;
};

}  // namespace hcf::core
