// Baseline engine: every operation runs under the data-structure lock.
// The zero-everything corner of the phase machine — CombinerMode::None
// with no speculation budget, so execute() is exactly the under-lock path.
#pragma once

#include <string_view>

#include "core/phase_exec.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock Lock = sync::TxLock>
class LockEngine
    : public PhaseMachine<DS, EnginePolicy<CombinerMode::None>, Lock> {
  using Base = PhaseMachine<DS, EnginePolicy<CombinerMode::None>, Lock>;

 public:
  explicit LockEngine(DS& ds)
      : Base(ds, uniform_classes(PhasePolicy{0, 0, 0, false})) {}

  static std::string_view name() noexcept { return "Lock"; }
};

}  // namespace hcf::core
