// Umbrella header + the Engine concept all synchronization engines model.
#pragma once

#include <concepts>
#include <cstdint>
#include <string_view>

#include "core/adaptive_hcf.hpp"
#include "core/combine_core.hpp"
#include "core/core_lock_engine.hpp"
#include "core/engine_stats.hpp"
#include "core/fc_engine.hpp"
#include "core/hcf_engine.hpp"
#include "core/hcf_single_combiner.hpp"
#include "core/lock_engine.hpp"
#include "core/operation.hpp"
#include "core/phase_exec.hpp"
#include "core/scm_engine.hpp"
#include "core/sharded_engine.hpp"
#include "core/tle_engine.hpp"
#include "core/tle_fc_engine.hpp"
#include "core/types.hpp"

namespace hcf::core {

template <typename E, typename DS>
concept Engine = requires(E e, Operation<DS>& op) {
  { e.execute(op) } -> std::same_as<Phase>;
  { e.stats() } -> std::same_as<EngineStats&>;
  { e.lock_acquisitions() } -> std::convertible_to<std::uint64_t>;
  e.reset_stats();
  { E::name() } -> std::convertible_to<std::string_view>;
  { e.data() } -> std::same_as<DS&>;
};

}  // namespace hcf::core
