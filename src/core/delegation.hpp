// Parallel combining: delegation descriptors and the commutativity graph.
//
// The paper's combiner applies every selected operation single-handed while
// the owners wait — combining throughput is capped at one thread's apply
// speed. Following "Parallel Combining" (arXiv 1710.07588), the combiner
// instead hands disjoint key-groups of the batch back to *waiting clients*:
// for each delegated group the combiner marks the group's first operation
// (the "assignee") Delegated and stores a pointer to a DelegateGroup in the
// assignee's descriptor. The assignee's owner — blocked in wait_done — wakes,
// claims the group with a single CAS on its own status word
// (Delegated -> BeingHelped), applies the whole group via run_multi on its
// own HTM attempt, and reports completion through the group's done word.
// The combiner applies the rest of the batch itself, then sweeps unclaimed
// groups with the same claim CAS: whoever wins the CAS owns the group, so a
// delegate that is descheduled (or never wakes) costs latency, never
// progress, and an op is applied exactly once.
//
// Lifetime discipline (DESIGN.md §13): all group storage lives in a
// DelegationSession on the *combiner's stack*. A delegate may only touch
// that storage between winning the claim CAS and its final store to the
// group's done word (DelegateGroup::finish); the combiner does not return
// from the session until every group's done word reads 1, so the stack
// frame outlives every reader. Conversely the delegate copies the group's
// op pointers into its own scratch buffer *before* applying, so it never
// reads session storage after signalling done.
//
// The ConflictGraph ("Semantic Lock", arXiv 2606.24250) decides *which*
// groups may be delegated into one concurrently-applied session: a pair of
// operation classes is admitted only if it is seeded (statically, per data
// structure — e.g. inserts to disjoint hash buckets commute) and has not
// been demoted by observed HTM conflict aborts. Demotion is refined online
// from abort telemetry and decays, so a workload shift re-probes the pair.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>

#include "core/engine_stats.hpp"
#include "util/parking.hpp"
#include "util/thread_id.hpp"

namespace hcf::core {

template <typename DS>
class Operation;

// Delegation only pays when the combiner has enough work to share: below
// this batch size the publish/claim/report handshake costs more than the
// serial apply it replaces.
inline constexpr std::size_t kMinDelegateBatch = 4;
// A delegated group must amortize one claim CAS + one HTM attempt + one
// wake; singleton groups stay with the combiner.
inline constexpr std::size_t kMinDelegateGroupSize = 2;
// Per-session cap on published groups (the combiner keeps the remainder).
inline constexpr std::size_t kMaxDelegateGroups = 8;
// Delegates retry HTM less than a combiner would (kDefaultHtmBudget): their
// fallback is the data-structure lock, and a stubborn delegate holds up the
// whole session's retirement.
inline constexpr int kDelegateHtmBudget = 6;

// A delegated unit of work: a contiguous run of same-delegate-key operations
// copied into the session arena. `done` is the completion channel between
// whoever wins the claim (delegate or fallback combiner) and the combiner's
// end-of-session sweep; it reuses the operation status word's parked-bit
// protocol so the combiner can futex-park on it.
template <typename DS>
struct DelegateGroup {
  static constexpr std::uint32_t kParkedBit = 0x8000'0000u;

  Operation<DS>** ops = nullptr;  // into DelegationSession::ops_
  std::uint32_t count = 0;
  std::uint32_t classes = 0;  // bitmask of class ids in this group

  // Single writer: the claim winner. The combiner only reads/parks.
  // Raw atomic, not TxCell: never accessed inside a transaction.
  std::atomic<std::uint32_t> done{0};  // lint:allow(raw-atomic-in-core)

  // The claim winner's LAST touch of the group (and of session storage).
  void finish() noexcept {
    const std::uint32_t old = done.exchange(1u, std::memory_order_acq_rel);
    if ((old & kParkedBit) != 0) util::wake_all(done);
  }

  bool finished() const noexcept {
    return (done.load(std::memory_order_acquire) & ~kParkedBit) != 0;
  }
};

// Stack-allocated arena for one combining session's delegated groups. The
// combiner fills it under no lock (after releasing the selection lock),
// publishes assignees, and must drain it (finish_delegation) before the
// enclosing frame returns.
template <typename DS>
class DelegationSession {
 public:
  std::size_t num_groups() const noexcept { return num_groups_; }
  DelegateGroup<DS>& group(std::size_t i) noexcept {
    assert(i < num_groups_);
    return groups_[i];
  }

  // Appends a group over ops[0..count); returns nullptr when the session
  // arena is full (group caps, kMaxThreads ops total).
  DelegateGroup<DS>* add_group(Operation<DS>* const* ops, std::uint32_t count,
                               std::uint32_t classes) noexcept {
    if (num_groups_ == kMaxDelegateGroups) return nullptr;
    if (num_ops_ + count > util::kMaxThreads) return nullptr;
    DelegateGroup<DS>& g = groups_[num_groups_];
    g.ops = &ops_[num_ops_];
    g.count = count;
    g.classes = classes;
    for (std::uint32_t i = 0; i < count; ++i) ops_[num_ops_ + i] = ops[i];
    num_ops_ += count;
    ++num_groups_;
    return &g;
  }

 private:
  DelegateGroup<DS> groups_[kMaxDelegateGroups];
  Operation<DS>* ops_[util::kMaxThreads] = {};
  std::size_t num_groups_ = 0;
  std::size_t num_ops_ = 0;
};

// Per-class commutativity matrix gating delegated-session admission.
//
// States per (symmetric) class pair: off (never delegated together — the
// conservative default), on (seeded by the adapter), demoted (seeded, but
// observed HTM-conflict aborts crossed kDemoteConflicts; treated as off
// until kReprobeSessions sessions pass, then restored to re-probe).
//
// All counters are relaxed raw atomics: the graph is a performance hint
// read outside transactions; a stale read mis-admits one session's worth
// of groups, which the abort path then counts — never a safety issue.
class ConflictGraph {
 public:
  // Observed-conflict budget before a seeded pair is demoted.
  static constexpr std::uint32_t kDemoteConflicts = 64;
  // Sessions a demoted pair sits out before it is re-probed.
  static constexpr std::uint32_t kReprobeSessions = 512;

  // Adapter-side static seeding (symmetric).
  void seed(int a, int b, bool commutes_flag = true) noexcept {
    pair(a, b).commute.store(commutes_flag ? kOn : kOff,
                             std::memory_order_relaxed);
    pair(b, a).commute.store(commutes_flag ? kOn : kOff,
                             std::memory_order_relaxed);
  }

  bool commutes(int a, int b) const noexcept {
    return pair(a, b).commute.load(std::memory_order_relaxed) == kOn;
  }

  // True iff every class pair across `mask_a` x `mask_b` commutes (a class
  // always "commutes" with a mask it does not intersect; same-class pairs
  // must be seeded too — e.g. two insert groups only run concurrently if
  // insert/insert is seeded).
  bool masks_commute(std::uint32_t mask_a, std::uint32_t mask_b) const noexcept {
    for (int a = 0; a < kMaxOpClasses; ++a) {
      if ((mask_a & (1u << a)) == 0) continue;
      for (int b = 0; b < kMaxOpClasses; ++b) {
        if ((mask_b & (1u << b)) == 0) continue;
        if (!commutes(a, b)) return false;
      }
    }
    return true;
  }

  // Online refinement: an HTM conflict abort while a delegated session was
  // in flight charges every admitted class pair. Crossing the budget
  // demotes the pair (stamped with the session counter for re-probe).
  void record_conflict(std::uint32_t mask_a, std::uint32_t mask_b) noexcept {
    const std::uint32_t now = sessions_.load(std::memory_order_relaxed);
    for (int a = 0; a < kMaxOpClasses; ++a) {
      if ((mask_a & (1u << a)) == 0) continue;
      for (int b = 0; b < kMaxOpClasses; ++b) {
        if ((mask_b & (1u << b)) == 0) continue;
        PairState& p = pair(a, b);
        const std::uint32_t c =
            p.conflicts.fetch_add(1, std::memory_order_relaxed) + 1;
        if (c >= kDemoteConflicts &&
            p.commute.load(std::memory_order_relaxed) == kOn) {
          p.commute.store(kDemoted, std::memory_order_relaxed);
          p.demoted_at.store(now, std::memory_order_relaxed);
        }
      }
    }
  }

  // A clean (committed) delegated session decays the admitted pairs'
  // conflict counts so a burst of aborts must be sustained to demote.
  void record_clean(std::uint32_t mask) noexcept {
    for (int a = 0; a < kMaxOpClasses; ++a) {
      if ((mask & (1u << a)) == 0) continue;
      for (int b = 0; b < kMaxOpClasses; ++b) {
        if ((mask & (1u << b)) == 0) continue;
        PairState& p = pair(a, b);
        std::uint32_t c = p.conflicts.load(std::memory_order_relaxed);
        if (c > 0) p.conflicts.store(c - 1, std::memory_order_relaxed);
      }
    }
  }

  // Called once per delegating session; restores demoted pairs whose
  // sit-out expired so a shifted workload gets re-probed.
  void on_session() noexcept {
    const std::uint32_t now =
        sessions_.fetch_add(1, std::memory_order_relaxed) + 1;
    if ((now & (kReprobeSessions - 1)) != 0) return;
    for (int a = 0; a < kMaxOpClasses; ++a) {
      for (int b = 0; b < kMaxOpClasses; ++b) {
        PairState& p = pair(a, b);
        if (p.commute.load(std::memory_order_relaxed) != kDemoted) continue;
        if (now - p.demoted_at.load(std::memory_order_relaxed) >=
            kReprobeSessions) {
          p.conflicts.store(0, std::memory_order_relaxed);
          p.commute.store(kOn, std::memory_order_relaxed);
        }
      }
    }
  }

 private:
  static constexpr std::uint8_t kOff = 0;
  static constexpr std::uint8_t kOn = 1;
  static constexpr std::uint8_t kDemoted = 2;

  struct PairState {
    std::atomic<std::uint8_t> commute{kOff};     // lint:allow(raw-atomic-in-core)
    std::atomic<std::uint32_t> conflicts{0};     // lint:allow(raw-atomic-in-core)
    std::atomic<std::uint32_t> demoted_at{0};    // lint:allow(raw-atomic-in-core)
  };

  PairState& pair(int a, int b) noexcept {
    return matrix_[static_cast<std::size_t>(a % kMaxOpClasses)]
                  [static_cast<std::size_t>(b % kMaxOpClasses)];
  }
  const PairState& pair(int a, int b) const noexcept {
    return matrix_[static_cast<std::size_t>(a % kMaxOpClasses)]
                  [static_cast<std::size_t>(b % kMaxOpClasses)];
  }

  PairState matrix_[kMaxOpClasses][kMaxOpClasses];
  std::atomic<std::uint32_t> sessions_{0};  // lint:allow(raw-atomic-in-core)
};

}  // namespace hcf::core
