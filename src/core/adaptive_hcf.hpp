// Adaptive HCF — the paper's "future work" (§2.4): "the customization may
// be dynamic — we can begin with a certain number of publication arrays and
// the way operations are assigned to them, and change that on-the-fly to
// better fit the given workload. ... calling for an adaptive runtime
// mechanism to tune the HCF performance."
//
// This engine wraps a phase-machine engine with a feedback controller.
// The controller targets the unified policy surface (PolicyConfigurable in
// core/phase_exec.hpp) — num_classes / class_config / set_class_policy —
// so any engine exposing it can be adapted; HcfEngine is the default.
// Every adaptation window (kWindow operations), one thread inspects the
// per-class phase histogram and retunes that class's trial budgets:
//
//   * mostly TryPrivate completions  -> speculate more  (TLE-leaning)
//   * mostly combining / under lock  -> announce early  (FC-leaning)
//   * mixed                          -> the paper's (2,3,5) default
//
// Correctness is configuration-independent (§2.1: "the configuration of
// HCF ... cannot affect the correctness, but only the performance"), so the
// controller may update a policy while other threads execute — readers of a
// half-updated policy just run with a hybrid budget for one operation.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/hcf_engine.hpp"

namespace hcf::core {

struct AdaptiveOptions {
  std::uint64_t window = 8192;  // ops between adaptations
  // Lean thresholds. frac_private = fraction of the window's completions
  // in TryPrivate; failures_per_op = failed HTM attempts per completion.
  double speculate_threshold = 0.90;   // frac_private above -> Speculative
  double combine_threshold = 0.50;     // frac_private below -> Combining
  double failure_ceiling = 0.25;       // failures/op above blocks Speculative
  double failure_floor = 1.50;         // failures/op above -> Combining
  PhasePolicy speculative{6, 2, 2, true};
  PhasePolicy balanced = PhasePolicy::paper_default();
  PhasePolicy combining{1, 1, 8, true};
};

template <typename DS, sync::ElidableLock Lock = sync::TxLock,
          sync::ElidableLock SelectionLock = sync::TxLock,
          PolicyConfigurable InnerEngine = HcfEngine<DS, Lock, SelectionLock>>
class AdaptiveHcfEngine {
 public:
  using Op = Operation<DS>;
  using Inner = InnerEngine;

  AdaptiveHcfEngine(DS& ds, std::vector<ClassConfig> classes,
                    std::size_t num_arrays = 1, AdaptiveOptions options = {})
      : inner_(ds, std::move(classes), num_arrays), options_(options) {
    for (auto& s : last_window_) {
      s = {};
    }
  }

  explicit AdaptiveHcfEngine(DS& ds,
                             PhasePolicy initial = PhasePolicy::paper_default())
      : AdaptiveHcfEngine(ds, {ClassConfig{0, initial}}, 1) {}

  static std::string_view name() noexcept { return "HCF-adaptive"; }

  Phase execute(Op& op) {
    const Phase phase = inner_.execute(op);
    if ((ops_since_adapt_.fetch_add(1, std::memory_order_relaxed) + 1) %
            options_.window ==
        0) {
      adapt();
    }
    return phase;
  }

  EngineStats& stats() noexcept { return inner_.stats(); }
  std::uint64_t lock_acquisitions() const noexcept {
    return inner_.lock_acquisitions();
  }
  void reset_stats() noexcept { inner_.reset_stats(); }
  DS& data() noexcept { return inner_.data(); }
  Inner& inner() noexcept { return inner_; }
  auto& lock() noexcept { return inner_.lock(); }

  // Policy pass-through: the adaptive engine is itself PolicyConfigurable,
  // so meta-engines can wrap it (ShardedEngine<AdaptiveHcfEngine> runs one
  // independent controller per shard). External updates compete with the
  // controller on equal terms — both funnel through the inner engine's
  // per-class detail::AtomicPolicy slot.
  std::size_t num_classes() const noexcept { return inner_.num_classes(); }
  ClassConfig class_config(std::size_t cls) const noexcept {
    return inner_.class_config(cls);
  }
  void set_class_policy(std::size_t cls, const PhasePolicy& policy) noexcept {
    inner_.set_class_policy(cls, policy);
  }

  // Introspection for tests/benches: the lean currently applied per class.
  enum class Lean : std::uint8_t { Balanced = 0, Speculative = 1, Combining = 2 };
  Lean current_lean(std::size_t cls) const noexcept {
    return static_cast<Lean>(lean_[cls].load(std::memory_order_relaxed));
  }
  std::uint64_t adaptations() const noexcept {
    return adaptations_.load(std::memory_order_relaxed);
  }

 private:
  void adapt() {
    // Single adapter at a time; skip if someone else is adapting.
    bool expected = false;
    if (!adapting_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      return;
    }
    const auto snap = EngineStatsSnapshot::capture(inner_.stats());
    for (std::size_t cls = 0; cls < inner_.num_classes(); ++cls) {
      std::uint64_t window_total = 0;
      std::uint64_t window_private = 0;
      for (int p = 0; p < kNumPhases; ++p) {
        const std::uint64_t delta =
            snap.completions[cls][static_cast<std::size_t>(p)] -
            last_window_[cls].completions[cls][static_cast<std::size_t>(p)];
        window_total += delta;
        if (p == static_cast<int>(Phase::Private)) window_private = delta;
      }
      if (window_total < options_.window / 8) continue;  // too few samples
      const double frac =
          static_cast<double>(window_private) /
          static_cast<double>(window_total);
      const double failures_per_op =
          static_cast<double>(snap.attempt_failures[cls] -
                              last_window_[cls].attempt_failures[cls]) /
          static_cast<double>(window_total);
      Lean lean = Lean::Balanced;
      PhasePolicy policy = options_.balanced;
      if (failures_per_op >= options_.failure_floor ||
          frac <= options_.combine_threshold) {
        // Retry storms or frequent fallbacks: announce early and combine.
        lean = Lean::Combining;
        policy = options_.combining;
      } else if (frac >= options_.speculate_threshold &&
                 failures_per_op <= options_.failure_ceiling) {
        lean = Lean::Speculative;
        policy = options_.speculative;
      }
      // Preserve the class's announce choice: a never-announcing class
      // must stay that way (its descriptors may not support helping).
      policy.announce = inner_.class_config(cls).policy.announce;
      if (lean != current_lean(cls)) {
        inner_.set_class_policy(cls, policy);
        lean_[cls].store(static_cast<std::uint8_t>(lean),
                         std::memory_order_relaxed);
        adaptations_.fetch_add(1, std::memory_order_relaxed);
      }
      last_window_[cls] = snap;
    }
    adapting_.store(false, std::memory_order_release);
  }

  Inner inner_;
  AdaptiveOptions options_;
  // Adaptation bookkeeping, never accessed inside a transaction (execute()
  // adapts only after inner_.execute() returns), so raw atomics are safe
  // here — they don't need to doom subscribers.
  std::atomic<std::uint64_t> ops_since_adapt_{0};   // lint:allow(raw-atomic-in-core)
  std::atomic<bool> adapting_{false};               // lint:allow(raw-atomic-in-core)
  std::atomic<std::uint64_t> adaptations_{0};       // lint:allow(raw-atomic-in-core)
  std::atomic<std::uint8_t> lean_[kMaxOpClasses]{};  // lint:allow(raw-atomic-in-core)
  EngineStatsSnapshot last_window_[kMaxOpClasses];
};

}  // namespace hcf::core
