// Adaptive HCF — the paper's "future work" (§2.4): "the customization may
// be dynamic — we can begin with a certain number of publication arrays and
// the way operations are assigned to them, and change that on-the-fly to
// better fit the given workload. ... calling for an adaptive runtime
// mechanism to tune the HCF performance."
//
// This engine wraps a phase-machine engine with a feedback controller.
// The controller targets the unified policy surface (PolicyConfigurable in
// core/phase_exec.hpp) — num_classes / class_config / set_class_policy —
// so any engine exposing it can be adapted; HcfEngine is the default.
// Every adaptation window (kWindow operations), one thread inspects the
// per-class phase histogram and retunes that class's trial budgets:
//
//   * mostly TryPrivate completions  -> speculate more  (TLE-leaning)
//   * mostly combining / under lock  -> announce early  (FC-leaning)
//   * mixed                          -> the paper's (2,3,5) default
//
// Correctness is configuration-independent (§2.1: "the configuration of
// HCF ... cannot affect the correctness, but only the performance"), so the
// controller may update a policy while other threads execute — readers of a
// half-updated policy just run with a hybrid budget for one operation.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/hcf_engine.hpp"
#include "util/parking.hpp"

namespace hcf::core {

struct AdaptiveOptions {
  std::uint64_t window = 8192;  // ops between adaptations
  // Lean thresholds. frac_private = fraction of the window's completions
  // in TryPrivate; failures_per_op = failed HTM attempts per completion.
  double speculate_threshold = 0.90;   // frac_private above -> Speculative
  double combine_threshold = 0.50;     // frac_private below -> Combining
  double failure_ceiling = 0.25;       // failures/op above blocks Speculative
  double failure_floor = 1.50;         // failures/op above -> Combining
  PhasePolicy speculative{6, 2, 2, true};
  PhasePolicy balanced = PhasePolicy::paper_default();
  PhasePolicy combining{1, 1, 8, true};

  // Wait-policy controller (ROADMAP item 3 follow-on): flip every class
  // SpinYield -> SpinPark when the yield tier shows sustained
  // oversubscription — waiters burning scheduler quanta that the combiner
  // needs — and back once the pressure stays low for `park_dwell`
  // consecutive windows (hysteresis, so a borderline workload does not
  // thrash between a syscall tier and a yield tier every window). The
  // signal is util::park_stats().yields per operation over the window;
  // yields are only taken once spinning failed, so a high rate means
  // threads genuinely cannot run, not merely that waits are long.
  bool adapt_wait = true;
  double park_flip_up = 0.5;    // yields/op at or above -> SpinPark
  double park_flip_down = 0.05; // yields/op at or below counts as quiet
  int park_dwell = 3;           // quiet windows required to flip back
};

template <typename DS, sync::ElidableLock Lock = sync::TxLock,
          sync::ElidableLock SelectionLock = sync::TxLock,
          PolicyConfigurable InnerEngine = HcfEngine<DS, Lock, SelectionLock>>
class AdaptiveHcfEngine {
 public:
  using Op = Operation<DS>;
  using Inner = InnerEngine;

  AdaptiveHcfEngine(DS& ds, std::vector<ClassConfig> classes,
                    std::size_t num_arrays = 1, AdaptiveOptions options = {})
      : inner_(ds, std::move(classes), num_arrays), options_(options) {
    for (auto& s : last_window_) {
      s = {};
    }
    // The wait policy each class returns to when the controller unparks.
    for (std::size_t cls = 0; cls < inner_.num_classes(); ++cls) {
      base_wait_[cls].store(
          static_cast<std::uint8_t>(inner_.class_config(cls).policy.wait),
          std::memory_order_relaxed);
    }
  }

  explicit AdaptiveHcfEngine(DS& ds,
                             PhasePolicy initial = PhasePolicy::paper_default())
      : AdaptiveHcfEngine(ds, {ClassConfig{0, initial}}, 1) {}

  static std::string_view name() noexcept { return "HCF-adaptive"; }

  Phase execute(Op& op) {
    const Phase phase = inner_.execute(op);
    if ((ops_since_adapt_.fetch_add(1, std::memory_order_relaxed) + 1) %
            options_.window ==
        0) {
      adapt();
    }
    return phase;
  }

  EngineStats& stats() noexcept { return inner_.stats(); }
  std::uint64_t lock_acquisitions() const noexcept {
    return inner_.lock_acquisitions();
  }
  void reset_stats() noexcept { inner_.reset_stats(); }
  DS& data() noexcept { return inner_.data(); }
  Inner& inner() noexcept { return inner_; }
  auto& lock() noexcept { return inner_.lock(); }

  // Policy pass-through: the adaptive engine is itself PolicyConfigurable,
  // so meta-engines can wrap it (ShardedEngine<AdaptiveHcfEngine> runs one
  // independent controller per shard). External updates compete with the
  // controller on equal terms — both funnel through the inner engine's
  // per-class detail::AtomicPolicy slot.
  std::size_t num_classes() const noexcept { return inner_.num_classes(); }
  ClassConfig class_config(std::size_t cls) const noexcept {
    return inner_.class_config(cls);
  }
  void set_class_policy(std::size_t cls, const PhasePolicy& policy) noexcept {
    // An external update redefines the class's baseline wait policy; the
    // controller re-imposes SpinPark next window if still oversubscribed.
    base_wait_[cls].store(static_cast<std::uint8_t>(policy.wait),
                          std::memory_order_relaxed);
    inner_.set_class_policy(cls, policy);
  }

  // Commutativity pass-through (parallel combining).
  void seed_commutes(int a, int b, bool on = true) noexcept
    requires requires(Inner& e) { e.seed_commutes(a, b, on); }
  {
    inner_.seed_commutes(a, b, on);
  }

  // Introspection for tests/benches: the lean currently applied per class.
  enum class Lean : std::uint8_t { Balanced = 0, Speculative = 1, Combining = 2 };
  Lean current_lean(std::size_t cls) const noexcept {
    return static_cast<Lean>(lean_[cls].load(std::memory_order_relaxed));
  }
  std::uint64_t adaptations() const noexcept {
    return adaptations_.load(std::memory_order_relaxed);
  }

  // Wait-policy controller introspection: whether every class is currently
  // forced to SpinPark, and how many flips (either direction) happened.
  bool parked_wait() const noexcept {
    return parked_mode_.load(std::memory_order_relaxed);
  }
  std::uint64_t wait_flips() const noexcept {
    return wait_flips_.load(std::memory_order_relaxed);
  }

 private:
  void adapt() {
    // Single adapter at a time; skip if someone else is adapting.
    bool expected = false;
    if (!adapting_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      return;
    }
    const auto snap = EngineStatsSnapshot::capture(inner_.stats());
    // The wait-mode controller runs on whole-engine signals, so it decides
    // once per window; a flip must reach every class, including ones the
    // lean logic skips for lack of samples.
    const bool wait_flipped = update_park_mode();
    const bool parked = parked_wait();
    for (std::size_t cls = 0; cls < inner_.num_classes(); ++cls) {
      std::uint64_t window_total = 0;
      std::uint64_t window_private = 0;
      for (int p = 0; p < kNumPhases; ++p) {
        const std::uint64_t delta =
            snap.completions[cls][static_cast<std::size_t>(p)] -
            last_window_[cls].completions[cls][static_cast<std::size_t>(p)];
        window_total += delta;
        if (p == static_cast<int>(Phase::Private)) window_private = delta;
      }
      if (window_total < options_.window / 8) {  // too few lean samples
        if (wait_flipped) {
          PhasePolicy policy = inner_.class_config(cls).policy;
          policy.wait = class_wait(cls, parked);
          inner_.set_class_policy(cls, policy);
        }
        continue;
      }
      const double frac =
          static_cast<double>(window_private) /
          static_cast<double>(window_total);
      const double failures_per_op =
          static_cast<double>(snap.attempt_failures[cls] -
                              last_window_[cls].attempt_failures[cls]) /
          static_cast<double>(window_total);
      Lean lean = Lean::Balanced;
      PhasePolicy policy = options_.balanced;
      if (failures_per_op >= options_.failure_floor ||
          frac <= options_.combine_threshold) {
        // Retry storms or frequent fallbacks: announce early and combine.
        lean = Lean::Combining;
        policy = options_.combining;
      } else if (frac >= options_.speculate_threshold &&
                 failures_per_op <= options_.failure_ceiling) {
        lean = Lean::Speculative;
        policy = options_.speculative;
      }
      // Preserve the class's announce and delegate choices: a
      // never-announcing class must stay that way (its descriptors may not
      // support helping), and the lean templates must not silently turn
      // parallel combining off (or on) for a class.
      const PhasePolicy current = inner_.class_config(cls).policy;
      policy.announce = current.announce;
      policy.delegate = current.delegate;
      // The wait tier belongs to the park controller, not the lean
      // templates: always carry the controller's current choice so a lean
      // change never clobbers a park flip (and vice versa).
      policy.wait = class_wait(cls, parked);
      const bool lean_changed = lean != current_lean(cls);
      if (lean_changed || wait_flipped) {
        inner_.set_class_policy(cls, policy);
        lean_[cls].store(static_cast<std::uint8_t>(lean),
                         std::memory_order_relaxed);
        if (lean_changed) {
          adaptations_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      last_window_[cls] = snap;
    }
    adapting_.store(false, std::memory_order_release);
  }

  util::WaitPolicy class_wait(std::size_t cls, bool parked) const noexcept {
    return parked ? util::WaitPolicy::SpinPark
                  : static_cast<util::WaitPolicy>(
                        base_wait_[cls].load(std::memory_order_relaxed));
  }

  // One wait-mode decision per window, from the global parking counters
  // (process-wide — like the scheduler pressure it measures). Returns true
  // iff the mode changed this window. Runs under the adapting_ guard, so
  // the plain last_*/quiet_windows_ fields have a single writer.
  bool update_park_mode() noexcept {
    if (!options_.adapt_wait) return false;
    const std::uint64_t ops_now =
        ops_since_adapt_.load(std::memory_order_relaxed);
    const std::uint64_t yields_now = util::park_stats().yields.total();
    const std::uint64_t ops_delta = ops_now - last_adapt_ops_;
    const std::uint64_t yields_delta = yields_now - last_yields_;
    last_adapt_ops_ = ops_now;
    last_yields_ = yields_now;
    if (ops_delta == 0) return false;
    const double yields_per_op = static_cast<double>(yields_delta) /
                                 static_cast<double>(ops_delta);
    if (!parked_wait()) {
      if (yields_per_op >= options_.park_flip_up) {
        parked_mode_.store(true, std::memory_order_relaxed);
        quiet_windows_ = 0;
        wait_flips_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      return false;
    }
    // Parked: require park_dwell consecutive quiet windows to flip back —
    // a single calm window under a bursty load must not cost a re-flip.
    if (yields_per_op <= options_.park_flip_down) {
      if (++quiet_windows_ >= options_.park_dwell) {
        parked_mode_.store(false, std::memory_order_relaxed);
        quiet_windows_ = 0;
        wait_flips_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    } else {
      quiet_windows_ = 0;
    }
    return false;
  }

  Inner inner_;
  AdaptiveOptions options_;
  // Adaptation bookkeeping, never accessed inside a transaction (execute()
  // adapts only after inner_.execute() returns), so raw atomics are safe
  // here — they don't need to doom subscribers.
  std::atomic<std::uint64_t> ops_since_adapt_{0};   // lint:allow(raw-atomic-in-core)
  std::atomic<bool> adapting_{false};               // lint:allow(raw-atomic-in-core)
  std::atomic<std::uint64_t> adaptations_{0};       // lint:allow(raw-atomic-in-core)
  std::atomic<std::uint8_t> lean_[kMaxOpClasses]{};  // lint:allow(raw-atomic-in-core)
  EngineStatsSnapshot last_window_[kMaxOpClasses];
  // Wait-mode controller state. parked_mode_/wait_flips_/base_wait_ are
  // read outside the adapting_ guard (introspection, class_wait), hence
  // atomic; the window bookkeeping is guard-private.
  std::atomic<bool> parked_mode_{false};        // lint:allow(raw-atomic-in-core)
  std::atomic<std::uint64_t> wait_flips_{0};    // lint:allow(raw-atomic-in-core)
  std::atomic<std::uint8_t> base_wait_[kMaxOpClasses]{};  // lint:allow(raw-atomic-in-core)
  int quiet_windows_ = 0;
  std::uint64_t last_adapt_ops_ = 0;
  std::uint64_t last_yields_ = 0;
};

}  // namespace hcf::core
