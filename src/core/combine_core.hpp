// Combining core (paper §2.2): the reusable combiner machinery every
// engine instantiates instead of hand-rolling. One implementation of
//
//   * the selection-lock competition loop with the combined-count epoch
//     waiter protocol (DESIGN.md §9.3),
//   * chooseOpsToHelp — the selection scan under the selection lock, with
//     the optional BeingHelped transition that dooms owners' speculation,
//   * batch shaping (combine-key grouping + descriptor prefetch),
//   * the speculative combining loop (run_multi on HTM, prefix retirement),
//   * the combine-under-lock fallback, and
//   * flat-combining-style combining entirely under the global lock.
//
// Engines choose which pieces to compose through EnginePolicy
// (core/phase_exec.hpp); the protocol around operation status and
// publication slots lives here exactly once, so a fix or a telemetry
// counter lands in every engine at the same time.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "core/engine_stats.hpp"
#include "core/operation.hpp"
#include "core/publication_array.hpp"
#include "core/types.hpp"
#include "sim_htm/htm.hpp"
#include "sync/tx_lock.hpp"
#include "telemetry/telemetry.hpp"
#include "util/backoff.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_id.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock Lock = sync::TxLock,
          sync::ElidableLock SelectionLock = sync::TxLock>
struct CombineCore {
  using Op = Operation<DS>;
  using PubArray = PublicationArray<DS, SelectionLock>;

  // Per-thread selection arena, reserved to full capacity once: selection
  // must never regrow a vector while the selection lock is held (the
  // allocation was a hidden serialization point in the seed).
  static std::vector<Op*>& scratch() {
    thread_local std::vector<Op*> ops = [] {
      std::vector<Op*> v;
      v.reserve(util::kMaxThreads);
      return v;
    }();
    return ops;
  }

  // Compete for the array's selection lock *while watching our own
  // status*: if a combiner selects us in the meantime we never need the
  // lock — we just wait for Done. Blocking unconditionally on the lock
  // would make every helped owner serialize through it only to discover it
  // was already helped, which caps the combining degree near 1.
  //
  // Waiter protocol (DESIGN.md §9.3): spin with bounded exponential pause,
  // and watch the array's combined-count epoch — when a combining round
  // retires a batch the epoch moves, and a waiter whose op was in that
  // batch wakes on its next status check instead of re-polling the
  // contended lock line.
  //
  // Parking tier (§12): under WaitPolicy::SpinPark a competition loser
  // sleeps on the epoch word itself. Every wake source it needs is
  // covered: publish_combined advances the epoch (status may have become
  // Done), and every selection-lock release path in the phase machine
  // calls pa.wake_epoch_waiters() (the lock may now be free to take).
  //
  // Returns true with the selection lock held, or false once the op is
  // Done (helped by another combiner).
  static bool acquire_selection_or_done(Op& op, PubArray& pa,
                                        util::WaitPolicy wait)
      TRY_ACQUIRE(true, pa.selection_lock()) {
    util::TieredWait waiter(util::WaitSite::kSelectionLock, wait);
    std::uint32_t epoch = pa.combined_epoch();
    for (;;) {
      if (op.status() != OpStatus::Announced) {
        op.wait_done(wait);
        return false;
      }
      const std::uint32_t now = pa.combined_epoch();
      if (now != epoch) {
        epoch = now;
        waiter.reset();
        continue;  // a batch just retired; re-check our status first
      }
      if (pa.selection_lock().try_lock()) return true;
      if (waiter.wait()) {
        pa.park_on_epoch(now);
        waiter.reset();
      }
    }
  }

  // chooseOpsToHelp (paper §2.2): scan the publication array under the
  // selection lock; the caller's op is chosen unconditionally, every other
  // announced op is offered to should_help. Chosen ops are unpublished;
  // when MarkBeingHelped they also transition to BeingHelped, dooming
  // their owners' speculation (the single-holder variant skips the
  // transition — holding the selection lock for the whole combining phase
  // is what dooms the owners there). The gather target is the caller's
  // preallocated per-thread arena, so nothing allocates while the
  // selection lock is held.
  template <bool MarkBeingHelped>
  static void select_batch(Op& op, PubArray& pa, std::vector<Op*>& out,
                           EngineStats& stats) REQUIRES(pa.selection_lock()) {
    if constexpr (MarkBeingHelped) op.mark_being_helped();
    pa.clear_slot(util::this_thread_id());
    out.push_back(&op);
    const std::size_t words_skipped =
        // scan-locked: the caller holds pa.selection_lock() (acquired via
        // acquire_selection_or_done).
        pa.collect_announced(out, [&](Op* candidate) {
          if (candidate == &op) return false;
          if (candidate->status() != OpStatus::Announced) return false;
          if (!op.should_help(*candidate)) return false;
          if constexpr (MarkBeingHelped) candidate->mark_being_helped();
          return true;
        });
    stats.scan_words_skipped.add(words_skipped);
  }

  // Batch shaping: group by the adapter's combine key (so run_multi sees
  // eliminable pairs adjacent) and pull the descriptors toward this core.
  static void group_and_prefetch(Op& op, std::vector<Op*>& batch,
                                 EngineStats& stats) {
    if (batch.size() > 1 && op.combine_keyed()) {
      const std::size_t groups = group_batch(std::span<Op*>(batch));
      stats.batch_groups.add(groups);
      stats.batch_group_sizes.add(batch.size());
    }
    prefetch_batch(std::span<Op* const>(batch));
  }

  // Speculative combining: apply the selected batch in one or more
  // hardware transactions through run_multi, retiring each committed
  // prefix. Stops after `budget` failed attempts (capacity aborts stop
  // immediately — they repeat deterministically). Returns true iff nothing
  // is left for the under-lock fallback.
  static bool combine_on_htm(Lock& lock, DS& ds, Op& op, PubArray& pa,
                             std::vector<Op*>& ops, int budget,
                             EngineStats& stats,
                             util::WaitPolicy wait = util::WaitPolicy::SpinYield) {
    util::ExpBackoff backoff(
        util::backoff_seed(util::BackoffSite::kPhaseCombining));
    int failures = 0;
    while (failures < budget && !ops.empty()) {
      lock.wait_until_free(wait);
      std::size_t executed = 0;
      const bool committed = htm::attempt([&] {
        lock.subscribe();
        executed = op.run_multi(ds, std::span<Op*>(ops));
      });
      if (committed) {
        assert(executed >= 1 && executed <= ops.size());
        stats.combine_rounds.add();
        retire_prefix(op, pa, ops, executed, Phase::Combining, stats);
      } else {
        ++failures;
        stats.record_attempt_failure(op.class_id());
        if (htm::last_abort_code() == htm::AbortCode::Capacity) break;
        if (htm::last_abort_code() == htm::AbortCode::Conflict) {
          backoff.pause();
        }
      }
    }
    return ops.empty();
  }

  // CombineUnderLock (paper phase 4): acquire the data-structure lock and
  // finish the remaining selected operations non-speculatively.
  static void combine_under_lock(Lock& lock, DS& ds, Op& op, PubArray& pa,
                                 std::vector<Op*>& ops, EngineStats& stats,
                                 util::WaitPolicy wait = util::WaitPolicy::SpinYield) {
    assert(!ops.empty());
    sync::LockGuard<Lock> guard(lock, wait);
    while (!ops.empty()) {
      const std::size_t executed = op.run_multi(ds, std::span<Op*>(ops));
      assert(executed >= 1 && executed <= ops.size());
      stats.combine_rounds.add();
      retire_prefix(op, pa, ops, executed, Phase::UnderLock, stats);
    }
  }

  // Flat-combining-style session: the caller already holds the
  // data-structure lock (which plays the selection lock's role here) and
  // combines every announced operation under it, rescanning `scan_rounds`
  // times to pick up late arrivals.
  static void combine_global(Lock& lock, DS& ds, Op& own, PubArray& pa,
                             EngineStats& stats, int scan_rounds)
      REQUIRES(lock) {
    assert(lock.is_locked() &&
           "combine_global runs under the data-structure lock");
    (void)lock;  // referenced by the REQUIRES attribute and the assert only
    // The data-structure lock held per REQUIRES serializes us against every
    // would-be scanner (nothing scans a global-lock engine's array without
    // this lock), so the selection capability is legitimately ours even
    // though pa.selection_lock() itself stays free.
    pa.assume_scan_serialized();
    stats.combiner_sessions.add();
    std::vector<Op*>& batch = scratch();
    for (int round = 0; round < scan_rounds; ++round) {
      batch.clear();
      // scan-locked: the caller holds the data-structure lock, which is
      // the selection lock for global-lock combining — no other combiner
      // can scan concurrently.
      const std::size_t words_skipped = pa.collect_announced(
          batch, [](Op* op) { return op->status() == OpStatus::Announced; });
      stats.scan_words_skipped.add(words_skipped);
      if (batch.empty()) {
        if (own.status() == OpStatus::Done) return;
        continue;
      }
      group_and_prefetch(own, batch, stats);
      stats.ops_selected.add(batch.size());
      telemetry::combine_begin(batch.size());
      std::span<Op*> pending(batch);
      while (!pending.empty()) {
        stats.combine_rounds.add();
        const std::size_t k = own.run_multi(ds, pending);
        assert(k >= 1 && k <= pending.size());
        for (std::size_t i = 0; i < k; ++i) {
          Op* done = pending[i];
          const int cls = done->class_id();
          done->mark_done(Phase::UnderLock);
          stats.record_completion(cls, Phase::UnderLock);
          if (done != &own) stats.helped_ops.add();
        }
        pending = pending.subspan(k);
        pa.publish_combined(k);
      }
      telemetry::combine_end(batch.size());
    }
    // Late safety net: if our own op is somehow still pending after the
    // last scan — impossible by construction (we announced before trying
    // the lock) — run it directly.
    if (own.status() != OpStatus::Done) {
      pa.remove_strong();
      own.run_seq(ds);
      own.mark_done(Phase::UnderLock);
      stats.record_completion(own.class_id(), Phase::UnderLock);
    }
  }

  // Retire the first k selected ops: mark Done, record completions, count
  // helped ops, and move the combined-count epoch so helped owners'
  // selection-lock competition wakes in O(1) — a waiter observing the
  // epoch re-checks its own status before touching the lock.
  static void retire_prefix(Op& own, PubArray& pa, std::vector<Op*>& ops,
                            std::size_t k, Phase phase, EngineStats& stats) {
    for (std::size_t i = 0; i < k; ++i) {
      Op* done = ops[i];
      const int cls = done->class_id();
      done->mark_done(phase);
      stats.record_completion(cls, phase);
      if (done != &own) stats.helped_ops.add();
    }
    ops.erase(ops.begin(), ops.begin() + static_cast<std::ptrdiff_t>(k));
    pa.publish_combined(k);
  }
};

}  // namespace hcf::core
