// Combining core (paper §2.2): the reusable combiner machinery every
// engine instantiates instead of hand-rolling. One implementation of
//
//   * the selection-lock competition loop with the combined-count epoch
//     waiter protocol (DESIGN.md §9.3),
//   * chooseOpsToHelp — the selection scan under the selection lock, with
//     the optional BeingHelped transition that dooms owners' speculation,
//   * batch shaping (combine-key grouping + descriptor prefetch),
//   * the speculative combining loop (run_multi on HTM, prefix retirement),
//   * the combine-under-lock fallback, and
//   * flat-combining-style combining entirely under the global lock.
//
// Engines choose which pieces to compose through EnginePolicy
// (core/phase_exec.hpp); the protocol around operation status and
// publication slots lives here exactly once, so a fix or a telemetry
// counter lands in every engine at the same time.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "core/delegation.hpp"
#include "core/engine_stats.hpp"
#include "core/operation.hpp"
#include "core/publication_array.hpp"
#include "core/types.hpp"
#include "mem/pool.hpp"
#include "sim_htm/htm.hpp"
#include "sync/tx_lock.hpp"
#include "telemetry/telemetry.hpp"
#include "util/backoff.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_id.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock Lock = sync::TxLock,
          sync::ElidableLock SelectionLock = sync::TxLock>
struct CombineCore {
  using Op = Operation<DS>;
  using PubArray = PublicationArray<DS, SelectionLock>;

  // Per-thread selection arena, reserved to full capacity once: selection
  // must never regrow a vector while the selection lock is held (the
  // allocation was a hidden serialization point in the seed).
  static std::vector<Op*>& scratch() {
    thread_local std::vector<Op*> ops = [] {
      std::vector<Op*> v;
      v.reserve(util::kMaxThreads);
      return v;
    }();
    return ops;
  }

  // Separate arena for applying a delegated group: a delegate claims and
  // applies while its own combining-session state (scratch) may be live,
  // and the fallback combiner applies unclaimed groups while its session
  // batch still owns scratch.
  static std::vector<Op*>& delegate_scratch() {
    thread_local std::vector<Op*> ops = [] {
      std::vector<Op*> v;
      v.reserve(util::kMaxThreads);
      return v;
    }();
    return ops;
  }

  // Compete for the array's selection lock *while watching our own
  // status*: if a combiner selects us in the meantime we never need the
  // lock — we just wait for Done. Blocking unconditionally on the lock
  // would make every helped owner serialize through it only to discover it
  // was already helped, which caps the combining degree near 1.
  //
  // Waiter protocol (DESIGN.md §9.3): spin with bounded exponential pause,
  // and watch the array's combined-count epoch — when a combining round
  // retires a batch the epoch moves, and a waiter whose op was in that
  // batch wakes on its next status check instead of re-polling the
  // contended lock line.
  //
  // Parking tier (§12): under WaitPolicy::SpinPark a competition loser
  // sleeps on the epoch word itself. Every wake source it needs is
  // covered: publish_combined advances the epoch (status may have become
  // Done), and every selection-lock release path in the phase machine
  // calls pa.wake_epoch_waiters() (the lock may now be free to take).
  //
  // Returns true with the selection lock held, or false once the op is
  // Done (helped by another combiner). `await` is the caller's terminal
  // wait: invoked once the op has been selected, it must not return until
  // the op is Done — engines that delegate pass an awaiter that can also
  // claim and apply a delegated group (PhaseMachine::await_done) instead of
  // plain wait_done.
  template <typename AwaitDone>
  static bool acquire_selection_or_done(Op& op, PubArray& pa,
                                        util::WaitPolicy wait,
                                        AwaitDone&& await)
      TRY_ACQUIRE(true, pa.selection_lock()) {
    util::TieredWait waiter(util::WaitSite::kSelectionLock, wait);
    std::uint32_t epoch = pa.combined_epoch();
    for (;;) {
      if (op.status() != OpStatus::Announced) {
        await();
        return false;
      }
      const std::uint32_t now = pa.combined_epoch();
      if (now != epoch) {
        epoch = now;
        waiter.reset();
        continue;  // a batch just retired; re-check our status first
      }
      if (pa.selection_lock().try_lock()) return true;
      if (waiter.wait()) {
        pa.park_on_epoch(now);
        waiter.reset();
      }
    }
  }

  // chooseOpsToHelp (paper §2.2): scan the publication array under the
  // selection lock; the caller's op is chosen unconditionally, every other
  // announced op is offered to should_help. Chosen ops are unpublished;
  // when MarkBeingHelped they also transition to BeingHelped, dooming
  // their owners' speculation (the single-holder variant skips the
  // transition — holding the selection lock for the whole combining phase
  // is what dooms the owners there). The gather target is the caller's
  // preallocated per-thread arena, so nothing allocates while the
  // selection lock is held.
  template <bool MarkBeingHelped>
  static void select_batch(Op& op, PubArray& pa, std::vector<Op*>& out,
                           EngineStats& stats) REQUIRES(pa.selection_lock()) {
    if constexpr (MarkBeingHelped) op.mark_being_helped();
    pa.clear_slot(util::this_thread_id());
    out.push_back(&op);
    const std::size_t words_skipped =
        // scan-locked: the caller holds pa.selection_lock() (acquired via
        // acquire_selection_or_done).
        pa.collect_announced(out, [&](Op* candidate) {
          if (candidate == &op) return false;
          if (candidate->status() != OpStatus::Announced) return false;
          if (!op.should_help(*candidate)) return false;
          if constexpr (MarkBeingHelped) candidate->mark_being_helped();
          return true;
        });
    stats.scan_words_skipped.add(words_skipped);
  }

  // Batch shaping: group by the adapter's combine key (so run_multi sees
  // eliminable pairs adjacent) and pull the descriptors toward this core.
  static void group_and_prefetch(Op& op, std::vector<Op*>& batch,
                                 EngineStats& stats) {
    if (batch.size() > 1 && op.combine_keyed()) {
      const std::size_t groups = group_batch(std::span<Op*>(batch));
      stats.batch_groups.add(groups);
      stats.batch_group_sizes.add(batch.size());
    }
    prefetch_batch(std::span<Op* const>(batch));
  }

  // Speculative combining: apply the selected batch in one or more
  // hardware transactions through run_multi, retiring each committed
  // prefix. Stops after `budget` failed attempts (capacity aborts stop
  // immediately — they repeat deterministically). Returns true iff nothing
  // is left for the under-lock fallback.
  //
  // When a delegating session is in flight, `graph`/`session_classes`
  // feed the commutativity graph's online refinement: the first conflict
  // abort of the call charges the admitted class pairs (enough charged
  // applies demotes the pair), committed rounds decay them. Performance
  // feedback only — the abort itself already preserved correctness.
  static bool combine_on_htm(Lock& lock, DS& ds, Op& op, PubArray& pa,
                             std::vector<Op*>& ops, int budget,
                             EngineStats& stats,
                             util::WaitPolicy wait = util::WaitPolicy::SpinYield,
                             ConflictGraph* graph = nullptr,
                             std::uint32_t session_classes = 0) {
    util::ExpBackoff backoff(
        util::backoff_seed(util::BackoffSite::kPhaseCombining));
    int failures = 0;
    bool charged = false;
    while (failures < budget && !ops.empty()) {
      lock.wait_until_free(wait);
      std::size_t executed = 0;
      const bool committed = htm::attempt([&] {
        lock.subscribe();
        executed = op.run_multi(ds, std::span<Op*>(ops));
      });
      if (committed) {
        assert(executed >= 1 && executed <= ops.size());
        stats.combine_rounds.add();
        if (graph != nullptr) graph->record_clean(session_classes);
        retire_prefix(op, pa, ops, executed, Phase::Combining, stats);
      } else {
        ++failures;
        stats.record_attempt_failure(op.class_id());
        if (htm::last_abort_code() == htm::AbortCode::Capacity) break;
        if (htm::last_abort_code() == htm::AbortCode::Conflict) {
          if (graph != nullptr) {
            stats.delegate_conflict_aborts.add();
            // Charge the pair at most once per group apply, not once per
            // abort: a retry loop burning its whole budget against one
            // transient conflict would otherwise demote a seeded pair in
            // ~kDemoteConflicts/budget applies. A genuinely non-commuting
            // pair still demotes — it charges on every apply and its
            // committed-round decay never keeps pace.
            if (!charged) {
              graph->record_conflict(session_classes, session_classes);
              charged = true;
            }
          }
          backoff.pause();
        }
      }
    }
    return ops.empty();
  }

  // CombineUnderLock (paper phase 4): acquire the data-structure lock and
  // finish the remaining selected operations non-speculatively.
  static void combine_under_lock(Lock& lock, DS& ds, Op& op, PubArray& pa,
                                 std::vector<Op*>& ops, EngineStats& stats,
                                 util::WaitPolicy wait = util::WaitPolicy::SpinYield) {
    assert(!ops.empty());
    sync::LockGuard<Lock> guard(lock, wait);
    while (!ops.empty()) {
      const std::size_t executed = op.run_multi(ds, std::span<Op*>(ops));
      assert(executed >= 1 && executed <= ops.size());
      stats.combine_rounds.add();
      retire_prefix(op, pa, ops, executed, Phase::UnderLock, stats);
    }
  }

  // ---- parallel combining (core/delegation.hpp, DESIGN.md §13) ----------

  static std::uint32_t class_bit(const Op* op) noexcept {
    return 1u << (static_cast<unsigned>(op->class_id()) %
                  static_cast<unsigned>(kMaxOpClasses));
  }

  // Carve delegable key-groups out of a freshly selected batch and publish
  // them for waiting clients. Runs after selection, with NO lock held (in
  // Multi mode the selection lock is already released): every op in the
  // batch is BeingHelped, so owners are waiting, not speculating.
  //
  // A group is a maximal run of equal delegate_key() after sorting; it is
  // delegated iff it does not contain the combiner's own op (the combiner
  // must not wait on itself), meets kMinDelegateGroupSize, the graph admits
  // its class mask against the whole batch (delegates run concurrently
  // with every other group and with the combiner's serial remainder), and
  // the session arena has room. Delegated ops are copied into `session`
  // (combiner stack storage) and removed from `batch`; the group's first op
  // becomes the assignee and flips to Delegated, waking its parked owner.
  static void delegate_batch(Op& own, std::vector<Op*>& batch,
                             DelegationSession<DS>& session,
                             ConflictGraph& graph, EngineStats& stats) {
    if (batch.size() < kMinDelegateBatch || !own.delegate_keyed()) return;
    // Tick the re-probe clock on every delegation-eligible session, not
    // just the ones that publish groups: a demoted pair suppresses
    // publication, and if only publishing sessions advanced the clock a
    // single demotion would freeze it and never re-probe.
    graph.on_session();
    std::sort(batch.begin(), batch.end(), [](const Op* a, const Op* b) {
      return a->delegate_key() < b->delegate_key();
    });
    std::uint32_t batch_mask = 0;
    for (const Op* op : batch) batch_mask |= class_bit(op);
    std::size_t write = 0;
    std::size_t groups = 0;
    std::size_t delegated = 0;
    std::size_t i = 0;
    while (i < batch.size()) {
      const std::uint64_t key = batch[i]->delegate_key();
      std::uint32_t group_mask = 0;
      bool has_own = false;
      std::size_t j = i;
      for (; j < batch.size() && batch[j]->delegate_key() == key; ++j) {
        group_mask |= class_bit(batch[j]);
        has_own |= (batch[j] == &own);
      }
      const std::size_t size = j - i;
      DelegateGroup<DS>* group = nullptr;
      if (!has_own && size >= kMinDelegateGroupSize &&
          graph.masks_commute(group_mask, batch_mask)) {
        group = session.add_group(batch.data() + i,
                                  static_cast<std::uint32_t>(size),
                                  group_mask);
      }
      if (group != nullptr) {
        // Publish last: the assignee's owner may claim and read the group
        // the instant this store lands.
        group->ops[0]->mark_delegated(group);
        ++groups;
        delegated += size;
      } else {
        for (std::size_t k = i; k < j; ++k) batch[write++] = batch[k];
      }
      i = j;
    }
    if (groups == 0) return;
    batch.resize(write);
    stats.delegated_groups.add(groups);
    stats.delegated_ops.add(delegated);
    telemetry::delegate_groups(groups, delegated);
  }

  // Apply one delegated group — called by the claim winner, either the
  // assignee's owner (delegate) or the sweeping combiner (fallback). The
  // caller must have won assignee.claim_delegation(). Copies the group out
  // of session storage first, signals the group's done word last; between
  // those two points it holds no reference the combiner could outlive.
  // This function must never touch the selection lock (lint rule
  // delegated-apply-no-selection-lock): the delegating combiner released
  // it before publishing, and a delegate re-entering selection while its
  // combiner parks on the group would invert the wait order.
  static void apply_delegated_group(Lock& lock, DS& ds, Op& assignee,
                                    PubArray& pa, ConflictGraph& graph,
                                    EngineStats& stats, util::WaitPolicy wait,
                                    bool by_delegate) {
    DelegateGroup<DS>* group = assignee.delegate_group();
    assert(group != nullptr && group->count >= 1);
    std::vector<Op*>& ops = delegate_scratch();
    ops.assign(group->ops, group->ops + group->count);
    const std::uint32_t classes = group->classes;
    if (by_delegate) {
      stats.delegate_applies.add();
    } else {
      stats.delegate_fallbacks.add();
    }
    telemetry::delegate_apply(by_delegate, ops.size());
    // Charge the commutativity graph only on the delegate path: a delegate
    // applies concurrently with the combiner's serial remainder and any
    // sibling delegates, so its conflict aborts are evidence the admitted
    // class pairs do not commute. The fallback sweep runs after the
    // combiner's own batch, one group at a time — its aborts come from
    // ambient speculation (preemption, unrelated phase-1/2 attempts) and
    // say nothing about group-vs-group commutativity; charging them would
    // demote seeded pairs in exactly the oversubscribed regime delegation
    // targets.
    ConflictGraph* feedback = by_delegate ? &graph : nullptr;
    if (!combine_on_htm(lock, ds, assignee, pa, ops, kDelegateHtmBudget,
                        stats, wait, feedback, classes)) {
      combine_under_lock(lock, ds, assignee, pa, ops, stats, wait);
    }
    // The group's retires ran on behalf of foreign owners: each node freed
    // by run_multi routed toward its allocation-time owner's pool (the ops'
    // owner_slot() tags name the announcing threads), batched in this
    // thread's outbound bins. Push them to the owners' inboxes now — one
    // CAS per destination pool — so a delegated apply frees remotely as
    // part of the group, not whenever the bins next hit capacity.
    mem::flush_remote_frees();
    // Every op in the group is Done and the epoch advanced (retire_prefix
    // inside the combiners above). Release the group back to the combiner;
    // after this store the session stack frame may die.
    group->finish();
  }

  // End-of-session sweep, combiner side: every published group must be
  // fully applied before the session's stack storage goes away. For each
  // group, race the delegate for the claim — winning means the delegate
  // never showed (descheduled, parked, or its owner crashed mid-wait) and
  // the combiner applies the group serially, so progress never depends on
  // a delegate. Losing means the delegate owns the apply; park on the
  // group's done word (its finish() wakes us).
  static void finish_delegation(Lock& lock, DS& ds, PubArray& pa,
                                DelegationSession<DS>& session,
                                ConflictGraph& graph, EngineStats& stats,
                                util::WaitPolicy wait) {
    for (std::size_t i = 0; i < session.num_groups(); ++i) {
      DelegateGroup<DS>& group = session.group(i);
      Op* assignee = group.ops[0];
      if (assignee->claim_delegation()) {
        apply_delegated_group(lock, ds, *assignee, pa, graph, stats, wait,
                              /*by_delegate=*/false);
        continue;
      }
      constexpr std::uint32_t kParked = DelegateGroup<DS>::kParkedBit;
      util::TieredWait waiter(util::WaitSite::kOpStatus, wait);
      for (;;) {
        const std::uint32_t raw = group.done.load(std::memory_order_acquire);
        if ((raw & ~kParked) != 0) break;
        if (!waiter.wait()) continue;
        std::uint32_t expected = raw;
        if ((expected & kParked) == 0) {
          if (!group.done.compare_exchange_strong(
                  expected, expected | kParked, std::memory_order_acq_rel,
                  std::memory_order_acquire)) {
            continue;
          }
          expected |= kParked;
        }
        util::park(group.done, expected);
        waiter.reset();
      }
    }
  }

  // Flat-combining-style session: the caller already holds the
  // data-structure lock (which plays the selection lock's role here) and
  // combines every announced operation under it, rescanning `scan_rounds`
  // times to pick up late arrivals.
  static void combine_global(Lock& lock, DS& ds, Op& own, PubArray& pa,
                             EngineStats& stats, int scan_rounds)
      REQUIRES(lock) {
    assert(lock.is_locked() &&
           "combine_global runs under the data-structure lock");
    (void)lock;  // referenced by the REQUIRES attribute and the assert only
    // The data-structure lock held per REQUIRES serializes us against every
    // would-be scanner (nothing scans a global-lock engine's array without
    // this lock), so the selection capability is legitimately ours even
    // though pa.selection_lock() itself stays free.
    pa.assume_scan_serialized();
    stats.combiner_sessions.add();
    std::vector<Op*>& batch = scratch();
    for (int round = 0; round < scan_rounds; ++round) {
      batch.clear();
      // scan-locked: the caller holds the data-structure lock, which is
      // the selection lock for global-lock combining — no other combiner
      // can scan concurrently.
      const std::size_t words_skipped = pa.collect_announced(
          batch, [](Op* op) { return op->status() == OpStatus::Announced; });
      stats.scan_words_skipped.add(words_skipped);
      if (batch.empty()) {
        if (own.status() == OpStatus::Done) return;
        continue;
      }
      group_and_prefetch(own, batch, stats);
      stats.ops_selected.add(batch.size());
      telemetry::combine_begin(batch.size());
      std::span<Op*> pending(batch);
      while (!pending.empty()) {
        stats.combine_rounds.add();
        const std::size_t k = own.run_multi(ds, pending);
        assert(k >= 1 && k <= pending.size());
        for (std::size_t i = 0; i < k; ++i) {
          Op* done = pending[i];
          const int cls = done->class_id();
          done->mark_done(Phase::UnderLock);
          stats.record_completion(cls, Phase::UnderLock);
          if (done != &own) stats.helped_ops.add();
        }
        pending = pending.subspan(k);
        pa.publish_combined(k);
      }
      telemetry::combine_end(batch.size());
      // Nodes retired on helped owners' behalf this round sit batched in
      // our outbound bins; hand them to the owners' pools per session
      // round rather than holding them to bin capacity.
      mem::flush_remote_frees();
    }
    // Late safety net: if our own op is somehow still pending after the
    // last scan — impossible by construction (we announced before trying
    // the lock) — run it directly.
    if (own.status() != OpStatus::Done) {
      pa.remove_strong();
      own.run_seq(ds);
      own.mark_done(Phase::UnderLock);
      stats.record_completion(own.class_id(), Phase::UnderLock);
    }
  }

  // Retire the first k selected ops: mark Done, record completions, count
  // helped ops, and move the combined-count epoch so helped owners'
  // selection-lock competition wakes in O(1) — a waiter observing the
  // epoch re-checks its own status before touching the lock.
  static void retire_prefix(Op& own, PubArray& pa, std::vector<Op*>& ops,
                            std::size_t k, Phase phase, EngineStats& stats) {
    for (std::size_t i = 0; i < k; ++i) {
      Op* done = ops[i];
      const int cls = done->class_id();
      done->mark_done(phase);
      stats.record_completion(cls, phase);
      if (done != &own) stats.helped_ops.add();
    }
    ops.erase(ops.begin(), ops.begin() + static_cast<std::ptrdiff_t>(k));
    pa.publish_combined(k);
  }
};

}  // namespace hcf::core
