// Flat combining (Hendler, Incze, Shavit & Tzafrir). Threads announce their
// operations in the publication array and compete for the data-structure
// lock with try_lock; the winner (the combiner) scans the array and applies
// every announced operation — batched through run_multi so data-structure
// combining/elimination applies — while the losers spin on their status.
//
// No HTM is used anywhere; all work happens under the single global lock.
#pragma once

#include <string_view>
#include <vector>

#include "core/engine_stats.hpp"
#include "core/operation.hpp"
#include "core/publication_array.hpp"
#include "mem/ebr.hpp"
#include "sync/tx_lock.hpp"
#include "telemetry/telemetry.hpp"
#include "util/backoff.hpp"
#include "util/thread_id.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock Lock = sync::TxLock>
class FcEngine {
 public:
  using Op = Operation<DS>;

  // `scan_rounds`: how many times the combiner rescans the publication
  // array before releasing the lock (classic FC performs several passes to
  // pick up late arrivals).
  explicit FcEngine(DS& ds, int scan_rounds = 2) noexcept
      : ds_(ds), scan_rounds_(scan_rounds) {}

  static std::string_view name() noexcept { return "FC"; }

  Phase execute(Op& op) {
    mem::Guard ebr;
    op.prepare();
    op.mark_announced();
    array_.add(&op);
    telemetry::phase_enter(static_cast<int>(Phase::Visible));

    util::SpinWait waiter;
    for (;;) {
      if (op.status() == OpStatus::Done) {
        telemetry::phase_exit(static_cast<int>(Phase::Visible), true);
        return op.completed_phase();
      }
      if (lock_.try_lock()) {
        telemetry::phase_exit(static_cast<int>(Phase::Visible), false);
        telemetry::phase_enter(static_cast<int>(Phase::UnderLock));
        combine(op);
        lock_.unlock();
        telemetry::phase_exit(static_cast<int>(Phase::UnderLock), true);
        // The combiner always executes its own announced operation.
        assert(op.status() == OpStatus::Done);
        return op.completed_phase();
      }
      waiter.wait();
    }
  }

  EngineStats& stats() noexcept { return stats_; }
  std::uint64_t lock_acquisitions() const noexcept {
    return lock_.acquisition_count();
  }
  void reset_stats() noexcept {
    stats_.reset();
    lock_.reset_stats();
  }

  DS& data() noexcept { return ds_; }
  Lock& lock() noexcept { return lock_; }

 private:
  void combine(Op& own) {
    stats_.combiner_sessions.add();
    const std::size_t self = util::this_thread_id();
    std::vector<Op*>& batch = scratch();
    for (int round = 0; round < scan_rounds_; ++round) {
      batch.clear();
      array_.for_each_announced([&](Op* op, std::size_t slot) {
        if (op->status() == OpStatus::Announced) {
          array_.clear_slot(slot);
          batch.push_back(op);
        }
      });
      if (batch.empty()) {
        if (own.status() == OpStatus::Done) return;
        continue;
      }
      stats_.ops_selected.add(batch.size());
      telemetry::combine_begin(batch.size());
      std::span<Op*> pending(batch);
      while (!pending.empty()) {
        stats_.combine_rounds.add();
        const std::size_t k = own.run_multi(ds_, pending);
        assert(k >= 1 && k <= pending.size());
        for (std::size_t i = 0; i < k; ++i) {
          Op* done = pending[i];
          const int cls = done->class_id();
          done->mark_done(Phase::UnderLock);
          stats_.record_completion(cls, Phase::UnderLock);
          if (done != &own) stats_.helped_ops.add();
          (void)self;
        }
        pending = pending.subspan(k);
      }
      telemetry::combine_end(batch.size());
    }
    // Late safety net: if our own op was announced after the last scan
    // cleared it — impossible by construction (we announced before trying
    // the lock) — run it directly.
    if (own.status() != OpStatus::Done) {
      array_.remove_strong();
      own.run_seq(ds_);
      own.mark_done(Phase::UnderLock);
      stats_.record_completion(own.class_id(), Phase::UnderLock);
    }
  }

  static std::vector<Op*>& scratch() {
    thread_local std::vector<Op*> batch;
    return batch;
  }

  DS& ds_;
  int scan_rounds_;
  Lock lock_;
  PublicationArray<DS> array_;
  EngineStats stats_;
};

}  // namespace hcf::core
