// Flat combining (Hendler, Incze, Shavit & Tzafrir). Threads announce their
// operations in the publication array and compete for the data-structure
// lock with try_lock; the winner (the combiner) scans the array and applies
// every announced operation — batched through run_multi so data-structure
// combining/elimination applies — while the losers spin on their status.
//
// No HTM is used anywhere; all work happens under the single global lock.
// Expressed on the shared phase machine: CombinerMode::UnderGlobalLock
// with an fc_like policy (zero HTM budgets everywhere, announce on), so
// the whole execution is the announce/wait/combine-under-lock path of
// core/phase_exec.hpp + core/combine_core.hpp. The per-class policy and
// SelectionLock surface come with the shared core: classes with private
// budgets speculate first, never-announcing classes degrade to Lock.
#pragma once

#include <string_view>
#include <vector>

#include "core/phase_exec.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock Lock = sync::TxLock,
          sync::ElidableLock SelectionLock = sync::TxLock>
class FcEngine
    : public PhaseMachine<DS, EnginePolicy<CombinerMode::UnderGlobalLock>,
                          Lock, SelectionLock> {
  using Base = PhaseMachine<DS, EnginePolicy<CombinerMode::UnderGlobalLock>,
                            Lock, SelectionLock>;

 public:
  // `scan_rounds`: how many times the combiner rescans the publication
  // array before releasing the lock (classic FC performs several passes to
  // pick up late arrivals).
  explicit FcEngine(DS& ds, int scan_rounds = 2)
      : Base(ds, uniform_classes(PhasePolicy::fc_like()), 1, scan_rounds) {}

  FcEngine(DS& ds, std::vector<ClassConfig> classes,
           std::size_t num_arrays = 1, int scan_rounds = 2)
      : Base(ds, std::move(classes), num_arrays, scan_rounds) {}

  static std::string_view name() noexcept { return "FC"; }
};

}  // namespace hcf::core
