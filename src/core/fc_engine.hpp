// Flat combining (Hendler, Incze, Shavit & Tzafrir). Threads announce their
// operations in the publication array and compete for the data-structure
// lock with try_lock; the winner (the combiner) scans the array and applies
// every announced operation — batched through run_multi so data-structure
// combining/elimination applies — while the losers spin on their status.
//
// No HTM is used anywhere; all work happens under the single global lock.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/engine_stats.hpp"
#include "core/operation.hpp"
#include "core/publication_array.hpp"
#include "mem/ebr.hpp"
#include "sync/tx_lock.hpp"
#include "telemetry/telemetry.hpp"
#include "util/backoff.hpp"
#include "util/thread_id.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock Lock = sync::TxLock>
class FcEngine {
 public:
  using Op = Operation<DS>;

  // `scan_rounds`: how many times the combiner rescans the publication
  // array before releasing the lock (classic FC performs several passes to
  // pick up late arrivals).
  explicit FcEngine(DS& ds, int scan_rounds = 2) noexcept
      : ds_(ds), scan_rounds_(scan_rounds) {}

  static std::string_view name() noexcept { return "FC"; }

  Phase execute(Op& op) {
    mem::Guard ebr;
    op.prepare();
    op.mark_announced();
    array_.add(&op);
    telemetry::phase_enter(static_cast<int>(Phase::Visible));

    // Waiter protocol (DESIGN.md §9.3): bounded exponential pause on our
    // own status line; when the combiner's epoch moves a batch just
    // retired, so re-check status before re-polling the lock line.
    util::ProportionalWait waiter;
    std::uint64_t epoch = array_.combined_epoch();
    for (;;) {
      if (op.status() == OpStatus::Done) {
        telemetry::phase_exit(static_cast<int>(Phase::Visible), true);
        return op.completed_phase();
      }
      const std::uint64_t now = array_.combined_epoch();
      if (now != epoch) {
        epoch = now;
        waiter.reset();
        continue;
      }
      if (lock_.try_lock()) {
        telemetry::phase_exit(static_cast<int>(Phase::Visible), false);
        telemetry::phase_enter(static_cast<int>(Phase::UnderLock));
        combine(op);
        lock_.unlock();
        telemetry::phase_exit(static_cast<int>(Phase::UnderLock), true);
        // The combiner always executes its own announced operation.
        assert(op.status() == OpStatus::Done);
        return op.completed_phase();
      }
      waiter.wait();
    }
  }

  EngineStats& stats() noexcept { return stats_; }
  std::uint64_t lock_acquisitions() const noexcept {
    return lock_.acquisition_count();
  }
  void reset_stats() noexcept {
    stats_.reset();
    lock_.reset_stats();
  }

  DS& data() noexcept { return ds_; }
  Lock& lock() noexcept { return lock_; }

 private:
  void combine(Op& own) {
    stats_.combiner_sessions.add();
    std::vector<Op*>& batch = scratch();
    for (int round = 0; round < scan_rounds_; ++round) {
      batch.clear();
      // scan-locked: execute() won the data-structure lock, which is FC's
      // selection lock — no other combiner can scan concurrently.
      const std::size_t words_skipped = array_.collect_announced(
          batch, [](Op* op) { return op->status() == OpStatus::Announced; });
      stats_.scan_words_skipped.add(words_skipped);
      if (batch.empty()) {
        if (own.status() == OpStatus::Done) return;
        continue;
      }
      if (batch.size() > 1 && own.combine_keyed()) {
        const std::size_t groups = group_batch(std::span<Op*>(batch));
        stats_.batch_groups.add(groups);
        stats_.batch_group_sizes.add(batch.size());
      }
      prefetch_batch(std::span<Op* const>(batch));
      stats_.ops_selected.add(batch.size());
      telemetry::combine_begin(batch.size());
      std::span<Op*> pending(batch);
      while (!pending.empty()) {
        stats_.combine_rounds.add();
        const std::size_t k = own.run_multi(ds_, pending);
        assert(k >= 1 && k <= pending.size());
        for (std::size_t i = 0; i < k; ++i) {
          Op* done = pending[i];
          const int cls = done->class_id();
          done->mark_done(Phase::UnderLock);
          stats_.record_completion(cls, Phase::UnderLock);
          if (done != &own) stats_.helped_ops.add();
        }
        pending = pending.subspan(k);
        array_.publish_combined(k);
      }
      telemetry::combine_end(batch.size());
    }
    // Late safety net: if our own op was announced after the last scan
    // cleared it — impossible by construction (we announced before trying
    // the lock) — run it directly.
    if (own.status() != OpStatus::Done) {
      array_.remove_strong();
      own.run_seq(ds_);
      own.mark_done(Phase::UnderLock);
      stats_.record_completion(own.class_id(), Phase::UnderLock);
    }
  }

  // Per-thread selection arena, reserved once (no growth while combining).
  static std::vector<Op*>& scratch() {
    thread_local std::vector<Op*> batch = [] {
      std::vector<Op*> v;
      v.reserve(util::kMaxThreads);
      return v;
    }();
    return batch;
  }

  DS& ds_;
  int scan_rounds_;
  Lock lock_;
  PublicationArray<DS> array_;
  EngineStats stats_;
};

}  // namespace hcf::core
