// TLE+FC: the paper's strawman combination (§3.3). A thread first tries its
// operation on HTM exactly like TLE; if all attempts fail it *announces* the
// operation and proceeds as in flat combining — competing for the
// data-structure lock and, on winning, combining every announced operation
// under that lock.
//
// The paper shows this performs almost identically to TLE: combining only
// happens under the global lock, blocking all concurrent HTM activity, and
// the combining degree stays tiny because most threads are still
// speculating rather than announcing.
//
// Expressed on the shared phase machine: CombinerMode::UnderGlobalLock
// with a {budget, 0, 0, announce} policy — a TLE-sized TryPrivate budget in
// front of the flat-combining path, with a single combiner scan pass.
#pragma once

#include <string_view>
#include <vector>

#include "core/phase_exec.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock Lock = sync::TxLock,
          sync::ElidableLock SelectionLock = sync::TxLock>
class TleFcEngine
    : public PhaseMachine<DS, EnginePolicy<CombinerMode::UnderGlobalLock>,
                          Lock, SelectionLock> {
  using Base = PhaseMachine<DS, EnginePolicy<CombinerMode::UnderGlobalLock>,
                            Lock, SelectionLock>;

 public:
  explicit TleFcEngine(DS& ds, int budget = kDefaultHtmBudget)
      : Base(ds, uniform_classes(PhasePolicy{budget, 0, 0, true}), 1,
             /*scan_rounds=*/1) {}

  TleFcEngine(DS& ds, std::vector<ClassConfig> classes,
              std::size_t num_arrays = 1)
      : Base(ds, std::move(classes), num_arrays, /*scan_rounds=*/1) {}

  static std::string_view name() noexcept { return "TLE+FC"; }
};

}  // namespace hcf::core
