// TLE+FC: the paper's strawman combination (§3.3). A thread first tries its
// operation on HTM exactly like TLE; if all attempts fail it *announces* the
// operation and proceeds as in flat combining — competing for the
// data-structure lock and, on winning, combining every announced operation
// under that lock.
//
// The paper shows this performs almost identically to TLE: combining only
// happens under the global lock, blocking all concurrent HTM activity, and
// the combining degree stays tiny because most threads are still
// speculating rather than announcing.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/engine_stats.hpp"
#include "core/operation.hpp"
#include "core/publication_array.hpp"
#include "core/tle_engine.hpp"
#include "mem/ebr.hpp"
#include "sim_htm/htm.hpp"
#include "sync/tx_lock.hpp"
#include "telemetry/telemetry.hpp"
#include "util/backoff.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock Lock = sync::TxLock>
class TleFcEngine {
 public:
  using Op = Operation<DS>;

  explicit TleFcEngine(DS& ds, int budget = kDefaultHtmBudget) noexcept
      : ds_(ds), budget_(budget) {}

  static std::string_view name() noexcept { return "TLE+FC"; }

  Phase execute(Op& op) {
    mem::Guard ebr;
    op.prepare();

    // --- TLE part ---
    // Telemetry hooks sit between attempts, outside htm::attempt bodies.
    telemetry::phase_enter(static_cast<int>(Phase::Private));
    util::ExpBackoff backoff(0x7fc0 + util::this_thread_id());
    for (int attempt = 0; attempt < budget_; ++attempt) {
      lock_.wait_until_free();
      const bool committed = htm::attempt([&] {
        lock_.subscribe();
        op.run_seq(ds_);
      });
      if (committed) {
        telemetry::phase_exit(static_cast<int>(Phase::Private), true);
        op.mark_done(Phase::Private);
        stats_.record_completion(op.class_id(), Phase::Private);
        return Phase::Private;
      }
      if (htm::last_abort_code() == htm::AbortCode::Capacity) break;
      if (htm::last_abort_code() == htm::AbortCode::Conflict) backoff.pause();
    }
    telemetry::phase_exit(static_cast<int>(Phase::Private), false);

    // --- FC part ---
    telemetry::phase_enter(static_cast<int>(Phase::Visible));
    op.mark_announced();
    array_.add(&op);
    // Waiter protocol (DESIGN.md §9.3), as in FcEngine.
    util::ProportionalWait waiter;
    std::uint64_t epoch = array_.combined_epoch();
    for (;;) {
      if (op.status() == OpStatus::Done) {
        telemetry::phase_exit(static_cast<int>(Phase::Visible), true);
        return op.completed_phase();
      }
      const std::uint64_t now = array_.combined_epoch();
      if (now != epoch) {
        epoch = now;
        waiter.reset();
        continue;
      }
      if (lock_.try_lock()) {
        telemetry::phase_exit(static_cast<int>(Phase::Visible), false);
        telemetry::phase_enter(static_cast<int>(Phase::UnderLock));
        combine(op);
        lock_.unlock();
        telemetry::phase_exit(static_cast<int>(Phase::UnderLock), true);
        assert(op.status() == OpStatus::Done);
        return op.completed_phase();
      }
      waiter.wait();
    }
  }

  EngineStats& stats() noexcept { return stats_; }
  std::uint64_t lock_acquisitions() const noexcept {
    return lock_.acquisition_count();
  }
  void reset_stats() noexcept {
    stats_.reset();
    lock_.reset_stats();
  }

  DS& data() noexcept { return ds_; }
  Lock& lock() noexcept { return lock_; }

 private:
  void combine(Op& own) {
    stats_.combiner_sessions.add();
    std::vector<Op*>& batch = scratch();
    batch.clear();
    // scan-locked: execute() won the data-structure lock, which doubles as
    // the selection lock in the FC phase of TLE+FC.
    const std::size_t words_skipped = array_.collect_announced(
        batch, [](Op* op) { return op->status() == OpStatus::Announced; });
    stats_.scan_words_skipped.add(words_skipped);
    if (batch.size() > 1 && own.combine_keyed()) {
      const std::size_t groups = group_batch(std::span<Op*>(batch));
      stats_.batch_groups.add(groups);
      stats_.batch_group_sizes.add(batch.size());
    }
    prefetch_batch(std::span<Op* const>(batch));
    stats_.ops_selected.add(batch.size());
    telemetry::combine_begin(batch.size());
    std::span<Op*> pending(batch);
    while (!pending.empty()) {
      stats_.combine_rounds.add();
      const std::size_t k = own.run_multi(ds_, pending);
      assert(k >= 1 && k <= pending.size());
      for (std::size_t i = 0; i < k; ++i) {
        Op* done = pending[i];
        const int cls = done->class_id();
        done->mark_done(Phase::UnderLock);
        stats_.record_completion(cls, Phase::UnderLock);
        if (done != &own) stats_.helped_ops.add();
      }
      pending = pending.subspan(k);
      array_.publish_combined(k);
    }
    if (own.status() != OpStatus::Done) {
      array_.remove_strong();
      own.run_seq(ds_);
      own.mark_done(Phase::UnderLock);
      stats_.record_completion(own.class_id(), Phase::UnderLock);
    }
    telemetry::combine_end(batch.size());
  }

  static std::vector<Op*>& scratch() {
    thread_local std::vector<Op*> batch;
    return batch;
  }

  DS& ds_;
  int budget_;
  Lock lock_;
  PublicationArray<DS> array_;
  EngineStats stats_;
};

}  // namespace hcf::core
