// Publication array (paper §2.2, footnote 1): one slot per thread where
// owners announce operation descriptors, plus the array's *selection lock*,
// which serializes combiners' selection scans.
//
// Concurrency protocol (all verified against DESIGN.md's race analysis):
//   * add    — owner publishes its descriptor in its own slot (strong store),
//     then sets the slot's occupancy bit (release, so a scanner that sees
//     the bit sees the slot).
//   * remove_tx — owner clears its slot *inside* the transaction that
//     applied the op, so the removal commits atomically with the effect.
//     The occupancy bit is intentionally left STALE (a transactional
//     write cannot carry a non-transactional bit clear); scans re-verify
//     every hinted slot, so a stale bit costs one extra load, never a
//     wrong selection. See DESIGN.md §9.1 for the staleness argument.
//   * clear_slot — a combiner, holding the selection lock, removes a slot
//     it has selected (and clears its occupancy bit).
//   * for_each_announced — combiner scan; requires the selection lock.
//     Scans need no consistent snapshot: slots can be added concurrently
//     but never removed while the selection lock is held. The scan walks
//     the occupancy summary words and visits only hinted slots, so its
//     cost is proportional to announced work, not configured capacity.
//
// The occupancy words and the combined-count epoch are raw atomics rather
// than TxCells: they are combiner-/waiter-side hints, never read inside a
// transaction, and never part of any correctness argument — re-verification
// (occupancy) and status re-checks (epoch) absorb all staleness.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/operation.hpp"
#include "sim_htm/txcell.hpp"
#include "sync/tx_lock.hpp"
#include "util/cacheline.hpp"
#include "util/parking.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_id.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock SelectionLock = sync::TxLock>
class PublicationArray {
 public:
  using Op = Operation<DS>;

  // One occupancy summary word per 64 slots.
  static constexpr std::size_t kOccupancyWords =
      (util::kMaxThreads + 63) / 64;

  PublicationArray() = default;
  PublicationArray(const PublicationArray&) = delete;
  PublicationArray& operator=(const PublicationArray&) = delete;

  // Owner-side announce into the calling thread's slot. The slot store
  // precedes the occupancy fetch_or (release): a scanner observing the bit
  // is guaranteed to observe the descriptor. The converse window (slot
  // visible, bit not yet) only delays selection by one scan — the owner's
  // own phases never depend on being scanned.
  void add(Op* op) noexcept {
    const std::size_t slot = util::this_thread_id();
    slots_[slot].value.store(op);
    occupancy_[slot >> 6].value.fetch_or(slot_bit(slot),
                                         std::memory_order_release);
  }

  // Owner-side transactional removal (buffered; commits with the op).
  // Leaves the occupancy bit stale on purpose — see the header comment.
  void remove_tx(Op* op) {
    auto& cell = slot_for_current();
    assert(cell.read() == op && "removing an operation we did not announce");
    (void)op;
    cell.tx_write(nullptr);
  }

  // Owner-side non-transactional removal (single-combiner variant, where
  // the owner removes its slot after being helped).
  void remove_strong() noexcept {
    const std::size_t slot = util::this_thread_id();
    slots_[slot].value.store(nullptr);
    clear_bit(slot);
  }

  // Combiner-side removal of any slot; caller must hold the selection lock.
  void clear_slot(std::size_t slot) noexcept REQUIRES(selection_lock_) {
    slots_[slot].value.store(nullptr);
    clear_bit(slot);
  }

  // Re-states the selection capability where scans are serialized by means
  // TSA cannot see: flat-combining engines scan under the data-structure
  // lock (which plays the selection lock's role, DESIGN.md §10), and the
  // internal scan lambda below cannot inherit its enclosing function's
  // capability set. Callers take on the proof obligation the annotation
  // normally discharges — every call site must say why the scan is
  // serialized.
  void assume_scan_serialized() const ASSERT_CAPABILITY(selection_lock_) {}

  // Combiner-side scan; caller must hold the selection lock. Calls
  // f(op, slot_index) for every non-empty hinted slot; empty hinted slots
  // (stale bits from remove_tx) are skipped after re-verification.
  // Returns the number of occupancy words skipped because no slot in them
  // was hinted (the scan-cost signal behind EngineStats::scan_words_skipped).
  template <typename F>
  std::size_t for_each_announced(F&& f) REQUIRES(selection_lock_) {
    std::size_t words_skipped = 0;
    for (std::size_t w = 0; w < kOccupancyWords; ++w) {
      std::uint64_t word =
          occupancy_[w].value.load(std::memory_order_acquire);
      if (word == 0) {
        ++words_skipped;
        continue;
      }
      while (word != 0) {
        const std::size_t slot =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        if (Op* op = slots_[slot].value.load()) f(op, slot);
      }
    }
    return words_skipped;
  }

  // Shared combiner selection loop (the one scan helper all four combining
  // engines build on): offers every announced descriptor to `select`; when
  // it returns true the slot is cleared and the op appended to `out`.
  // `select` runs *before* the slot clear, so it may perform the status
  // transition (mark_being_helped) that dooms the owner's speculation.
  // Caller must hold the selection lock (or, for FC-style engines, the
  // data-structure lock that plays its role) and must have pre-reserved
  // `out` — selection must not allocate.
  // Returns the number of occupancy words the scan skipped.
  template <typename Select>
  std::size_t collect_announced(std::vector<Op*>& out, Select&& select)
      REQUIRES(selection_lock_) {
    // scan-locked: precondition annotated above; enforced at call sites.
    return for_each_announced([&](Op* op, std::size_t slot) {
      // TSA analyzes lambdas as separate functions with an empty capability
      // set; re-state the enclosing REQUIRES for the clear_slot call.
      assume_scan_serialized();
      if (select(op)) {
        clear_slot(slot);
        out.push_back(op);
      }
    });
  }

  // Non-owning peek (tests / stats).
  Op* peek(std::size_t slot) const noexcept {
    return slots_[slot].value.load();
  }

  // Raw occupancy summary word (tests / benches).
  std::uint64_t occupancy_word(std::size_t w) const noexcept {
    return occupancy_[w].value.load(std::memory_order_acquire);
  }

  // ---- combined-count epoch (waiter protocol, DESIGN.md §9.3 + §12) ----
  // A combiner publishes how many operations it just retired; threads
  // competing for the selection lock watch the epoch and re-check their own
  // op's status when it moves, waking in O(1) after being helped instead of
  // re-polling the contended lock line. The epoch is a 32-bit parkable
  // eventcount: under WaitPolicy::SpinPark competition losers sleep on it
  // (park_on_epoch) and publish_combined wakes the cohort. Engines must
  // also call wake_epoch_waiters() whenever they release a lock that ends
  // a combining session — a waiter may have parked just after the
  // session's final publish, watching a value that would otherwise never
  // move again.

  std::uint32_t combined_epoch() const noexcept {
    return combined_epoch_.value.load();
  }

  void publish_combined(std::size_t retired) noexcept {
    combined_epoch_.value.advance(static_cast<std::uint32_t>(retired));
  }

  // Sleep until the epoch moves past `seen` (or spuriously; callers
  // re-check their predicate in a loop).
  void park_on_epoch(std::uint32_t seen) noexcept {
    combined_epoch_.value.park_if(seen);
  }

  void wake_epoch_waiters() noexcept { combined_epoch_.value.wake_waiters(); }

  SelectionLock& selection_lock() noexcept RETURN_CAPABILITY(selection_lock_) {
    return selection_lock_;
  }
  const SelectionLock& selection_lock() const noexcept
      RETURN_CAPABILITY(selection_lock_) {
    return selection_lock_;
  }

 private:
  htm::TxCell<Op*>& slot_for_current() noexcept {
    return slots_[util::this_thread_id()].value;
  }

  static constexpr std::uint64_t slot_bit(std::size_t slot) noexcept {
    return std::uint64_t{1} << (slot & 63);
  }

  // Relaxed is enough for clears: a scanner that misses the bit skips a
  // slot whose op already completed (or was just selected by us, the
  // lock holder) — both are benign under re-verification.
  void clear_bit(std::size_t slot) noexcept {
    occupancy_[slot >> 6].value.fetch_and(~slot_bit(slot),
                                          std::memory_order_relaxed);
  }

  util::CacheAligned<htm::TxCell<Op*>> slots_[util::kMaxThreads];
  // Occupancy hint words; see header comment for why these are raw atomics.
  util::CacheAligned<std::atomic<std::uint64_t>>  // lint:allow(raw-atomic-in-core)
      occupancy_[kOccupancyWords];
  util::CacheAligned<util::ParkableEpoch> combined_epoch_;
  SelectionLock selection_lock_;
};

}  // namespace hcf::core
