// Publication array (paper §2.2, footnote 1): one slot per thread where
// owners announce operation descriptors, plus the array's *selection lock*,
// which serializes combiners' selection scans.
//
// Concurrency protocol (all verified against DESIGN.md's race analysis):
//   * add    — owner publishes its descriptor in its own slot (strong store).
//   * remove_tx — owner clears its slot *inside* the transaction that
//     applied the op, so the removal commits atomically with the effect.
//   * clear_slot — a combiner, holding the selection lock, removes a slot
//     it has selected.
//   * for_each_announced — combiner scan; requires the selection lock.
//     Scans need no consistent snapshot: slots can be added concurrently
//     but never removed while the selection lock is held.
#pragma once

#include <cstddef>

#include "core/operation.hpp"
#include "sim_htm/txcell.hpp"
#include "sync/tx_lock.hpp"
#include "util/cacheline.hpp"
#include "util/thread_id.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock SelectionLock = sync::TxLock>
class PublicationArray {
 public:
  using Op = Operation<DS>;

  PublicationArray() = default;
  PublicationArray(const PublicationArray&) = delete;
  PublicationArray& operator=(const PublicationArray&) = delete;

  // Owner-side announce into the calling thread's slot.
  void add(Op* op) noexcept { slot_for_current().store(op); }

  // Owner-side transactional removal (buffered; commits with the op).
  void remove_tx(Op* op) {
    auto& cell = slot_for_current();
    assert(cell.read() == op && "removing an operation we did not announce");
    (void)op;
    cell.tx_write(nullptr);
  }

  // Owner-side non-transactional removal (single-combiner variant, where
  // the owner removes its slot after being helped).
  void remove_strong() noexcept { slot_for_current().store(nullptr); }

  // Combiner-side removal of any slot; caller must hold the selection lock.
  void clear_slot(std::size_t slot) noexcept {
    slots_[slot].value.store(nullptr);
  }

  // Combiner-side scan; caller must hold the selection lock. Calls
  // f(op, slot_index) for every non-empty slot.
  template <typename F>
  void for_each_announced(F&& f) {
    for (std::size_t i = 0; i < util::kMaxThreads; ++i) {
      if (Op* op = slots_[i].value.load()) f(op, i);
    }
  }

  // Non-owning peek (tests / stats).
  Op* peek(std::size_t slot) const noexcept {
    return slots_[slot].value.load();
  }

  SelectionLock& selection_lock() noexcept { return selection_lock_; }
  const SelectionLock& selection_lock() const noexcept {
    return selection_lock_;
  }

 private:
  htm::TxCell<Op*>& slot_for_current() noexcept {
    return slots_[util::this_thread_id()].value;
  }

  util::CacheAligned<htm::TxCell<Op*>> slots_[util::kMaxThreads];
  SelectionLock selection_lock_;
};

}  // namespace hcf::core
