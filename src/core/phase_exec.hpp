// The phase machine — the paper's four-phase execution protocol (§2.1),
// implemented once and instantiated by every engine:
//
//   1. TryPrivate       — speculative attempts before announcing.
//   2. TryVisible       — announce in the class's publication array, then
//                         more speculative attempts; the transaction checks
//                         (a) the data-structure lock, (b) the operation is
//                         still Announced, (c) the array's selection lock is
//                         free, and removes the announcement in the same
//                         transaction that applies the op.
//   3. TryCombining     — become a combiner: under the selection lock,
//                         select announced operations (should_help); then
//                         apply them in one or more hardware transactions
//                         through run_multi.
//   4. CombineUnderLock — acquire the data-structure lock and finish the
//                         remaining selected operations non-speculatively.
//
// What an engine *is* in this tree is a choice of CombinerMode plus a
// per-class PhasePolicy — the paper's §2.4 degeneration theorem stated
// structurally. The EnginePolicy table (DESIGN.md §10):
//
//   mode             policy (per class)            engine        paper
//   Multi            paper_default() {2,3,5,on}    HcfEngine     HCF §2.1
//   SingleHolder     paper_default()               Hcf-1C        §2.4
//   None             tle_like(b)    {b,0,0,off}    TleEngine     TLE §3
//   None             {0,0,0,off}                   LockEngine    Lock §3
//   UnderGlobalLock  fc_like()      {0,0,0,on}     FcEngine      FC §3
//   UnderGlobalLock  {b,0,0,on}                    TleFcEngine   TLE+FC §3.3
//
// Operation classes (Operation::class_id) map to publication arrays with
// independent per-phase attempt budgets, which is how the paper expresses
// per-operation policies (e.g. hash-table Insert combines, Find/Remove run
// TLE-like). Correctness is configuration-independent; only performance
// changes (§2.1).
#pragma once

#include <atomic>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/combine_core.hpp"
#include "core/engine_stats.hpp"
#include "mem/pool.hpp"
#include "core/operation.hpp"
#include "core/publication_array.hpp"
#include "core/types.hpp"
#include "mem/ebr.hpp"
#include "sim_htm/htm.hpp"
#include "sync/tx_lock.hpp"
#include "telemetry/telemetry.hpp"
#include "util/backoff.hpp"
#include "util/parking.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_id.hpp"

namespace hcf::core {

inline constexpr int kDefaultHtmBudget = 10;

// Per-operation-class policy: HTM attempt budgets per phase (paper's
// TryPrivateTrials / TryVisibleTrials / TryCombiningTrials) and whether the
// class announces at all. announce=false yields pure TLE behaviour for the
// class: failed speculation goes straight to running its own op under the
// lock.
struct PhasePolicy {
  int try_private = 2;
  int try_visible = 3;
  int try_combining = 5;
  bool announce = true;
  // Parallel combining (core/delegation.hpp): a combiner of this class
  // hands disjoint delegate-key groups of its selected batch back to
  // waiting clients instead of applying everything itself. Multi-mode
  // engines only; requires the adapter to be delegate_keyed and the
  // engine's ConflictGraph to be seeded (seed_commutes) for the class
  // pairs that may run concurrently. Off by default: the handshake only
  // pays once batches are deep, and the graph decides per session.
  bool delegate = false;
  // How this class's threads wait — on the data-structure lock, the
  // selection-lock competition, and their own op status (DESIGN.md §12).
  // SpinYield is the paper-faithful default; SpinPark escalates to futex
  // parking and pays off under oversubscription (Figure 7).
  util::WaitPolicy wait = util::WaitPolicy::SpinYield;

  static constexpr PhasePolicy paper_default() noexcept {
    return {2, 3, 5, true};
  }
  // TLE expressed as an HCF configuration (§2.4).
  static constexpr PhasePolicy tle_like(int budget = kDefaultHtmBudget) noexcept {
    return {budget, 0, 0, false};
  }
  // FC expressed as an HCF configuration (§2.4).
  static constexpr PhasePolicy fc_like() noexcept { return {0, 0, 0, true}; }
  // The paper's contended-operation policy (e.g. priority-queue RemoveMin):
  // skip the private phase, announce immediately, combine on HTM.
  static constexpr PhasePolicy combine_first(int combining = 10) noexcept {
    return {0, 0, combining, true};
  }
};

struct ClassConfig {
  std::size_t array = 0;  // publication array index
  PhasePolicy policy{};
};

// A uniform class table: every operation class runs `policy` against
// publication array 0. The degenerate engines (TLE, FC, TLE+FC, Lock) are
// single-policy by definition, but their class tables stay full-width so
// any class_id executes — and set_class_policy can still specialize a
// class afterwards.
inline std::vector<ClassConfig> uniform_classes(const PhasePolicy& policy) {
  return std::vector<ClassConfig>(static_cast<std::size_t>(kMaxOpClasses),
                                  ClassConfig{0, policy});
}

namespace detail {

// Atomically-updatable storage for a PhasePolicy. set_class_policy may
// overwrite a class's policy while concurrent execute() calls read it (§2.4
// dynamic customization), so the fields are independent relaxed atomics: a
// reader snapshotting mid-update can observe a mix of old and new budgets,
// which is harmless — the policy shapes trial budgets, never correctness.
// These atomics are engine configuration, never touched inside a
// transaction, so the TxCell/TxField funnel does not apply.
class AtomicPolicy {
 public:
  explicit AtomicPolicy(const PhasePolicy& p) noexcept { store(p); }
  AtomicPolicy(const AtomicPolicy& other) noexcept { store(other.load()); }
  AtomicPolicy& operator=(const AtomicPolicy& other) noexcept {
    store(other.load());
    return *this;
  }

  void store(const PhasePolicy& p) noexcept {
    try_private_.store(p.try_private, std::memory_order_relaxed);
    try_visible_.store(p.try_visible, std::memory_order_relaxed);
    try_combining_.store(p.try_combining, std::memory_order_relaxed);
    announce_.store(p.announce, std::memory_order_relaxed);
    delegate_.store(p.delegate, std::memory_order_relaxed);
    wait_.store(static_cast<std::uint8_t>(p.wait), std::memory_order_relaxed);
  }
  PhasePolicy load() const noexcept {
    return {try_private_.load(std::memory_order_relaxed),
            try_visible_.load(std::memory_order_relaxed),
            try_combining_.load(std::memory_order_relaxed),
            announce_.load(std::memory_order_relaxed),
            delegate_.load(std::memory_order_relaxed),
            static_cast<util::WaitPolicy>(
                wait_.load(std::memory_order_relaxed))};
  }

 private:
  std::atomic<int> try_private_;    // lint:allow(raw-atomic-in-core)
  std::atomic<int> try_visible_;    // lint:allow(raw-atomic-in-core)
  std::atomic<int> try_combining_;  // lint:allow(raw-atomic-in-core)
  std::atomic<bool> announce_;      // lint:allow(raw-atomic-in-core)
  std::atomic<bool> delegate_;      // lint:allow(raw-atomic-in-core)
  std::atomic<std::uint8_t> wait_;  // lint:allow(raw-atomic-in-core)
};

}  // namespace detail

// The unified policy surface every phase-machine engine exposes: per-class
// introspection plus live PhasePolicy updates. Controllers (the adaptive
// engine, benches, tests) target this concept, not a concrete engine.
template <typename E>
concept PolicyConfigurable =
    requires(E e, const E ce, std::size_t cls, const PhasePolicy& p) {
      { ce.num_classes() } -> std::convertible_to<std::size_t>;
      { ce.class_config(cls) } -> std::same_as<ClassConfig>;
      e.set_class_policy(cls, p);
    };

// How (and whether) an engine combines:
//
//   None            — no publication protocol at all; a failed private
//                     phase runs the thread's own op under the lock.
//   Multi           — the paper's default: combiners hold the selection
//                     lock only while selecting (marking victims
//                     BeingHelped), then combine on HTM concurrently with
//                     owners' visible attempts.
//   SingleHolder    — §2.4 specialization: the combiner keeps the
//                     selection lock for the whole combining phase, so
//                     BeingHelped is unnecessary (Announced -> Done).
//   UnderGlobalLock — flat combining: the data-structure lock doubles as
//                     the selection lock, and all combining runs under it.
enum class CombinerMode : std::uint8_t {
  None,
  Multi,
  SingleHolder,
  UnderGlobalLock,
};

template <CombinerMode Mode>
struct EnginePolicy {
  static constexpr CombinerMode kMode = Mode;
  // Only Multi needs the BeingHelped transition: SingleHolder dooms owners
  // by holding the selection lock instead, and the other modes never help.
  static constexpr bool kMarkBeingHelped = (Mode == CombinerMode::Multi);
};

// The statically-parameterized phase machine every engine instantiates.
// `EP` is an EnginePolicy; `Lock` elides the data structure; SelectionLock
// serializes combiner selection per publication array.
template <typename DS, typename EP, sync::ElidableLock Lock = sync::TxLock,
          sync::ElidableLock SelectionLock = sync::TxLock>
class PhaseMachine {
 public:
  using Op = Operation<DS>;
  using PubArray = PublicationArray<DS, SelectionLock>;
  using Core = CombineCore<DS, Lock, SelectionLock>;
  static constexpr CombinerMode kMode = EP::kMode;

  // `classes[i]` configures operations with class_id == i. `num_arrays`
  // publication arrays are created; every ClassConfig::array must be < it.
  // `scan_rounds` is UnderGlobalLock-only: how many times a combiner
  // rescans the array before releasing the lock (classic FC performs
  // several passes to pick up late arrivals).
  PhaseMachine(DS& ds, std::vector<ClassConfig> classes,
               std::size_t num_arrays = 1, int scan_rounds = 1)
      : ds_(ds), scan_rounds_(scan_rounds) {
    assert(!classes.empty());
    assert(classes.size() <= static_cast<std::size_t>(kMaxOpClasses));
    classes_.reserve(classes.size());
    for (const auto& c : classes) {
      assert(c.array < num_arrays);
      classes_.emplace_back(c);
    }
    arrays_.reserve(num_arrays);
    for (std::size_t i = 0; i < num_arrays; ++i) {
      arrays_.push_back(std::make_unique<PubArray>());
    }
  }

  Phase execute(Op& op) {
    mem::Guard ebr;
    op.prepare();
    assert(static_cast<std::size_t>(op.class_id()) < classes_.size());
    const ClassSlot& cfg = classes_[static_cast<std::size_t>(op.class_id())];
    // One policy snapshot per operation: set_class_policy may update the
    // slot concurrently, and each phase should see a consistent budget.
    const PhasePolicy policy = cfg.policy.load();
    PubArray& pa = *arrays_[cfg.array];

    // Telemetry hooks live here, between phases and outside every
    // htm::attempt body (lint rules tx-telemetry-call and
    // phase-telemetry-pairing). A phase's enter/exit pair is emitted iff
    // the policy actually runs the phase.
    if (policy.try_private > 0) {
      telemetry::phase_enter(static_cast<int>(Phase::Private));
      const bool done_private = try_private(op, policy);
      telemetry::phase_exit(static_cast<int>(Phase::Private), done_private);
      if (done_private) return Phase::Private;
    }

    if constexpr (kMode == CombinerMode::None) {
      run_own_under_lock(op, policy.wait);
      return Phase::UnderLock;
    } else if constexpr (kMode == CombinerMode::UnderGlobalLock) {
      if (!policy.announce) {
        run_own_under_lock(op, policy.wait);
        return Phase::UnderLock;
      }
      return announce_and_combine_global(op, pa, policy.wait);
    } else {
      return visible_then_combine(op, pa, policy);
    }
  }

  EngineStats& stats() noexcept { return stats_; }
  std::uint64_t lock_acquisitions() const noexcept {
    return lock_.acquisition_count();
  }
  void reset_stats() noexcept {
    stats_.reset();
    lock_.reset_stats();
  }

  DS& data() noexcept { return ds_; }
  Lock& lock() noexcept { return lock_; }
  PubArray& publication_array(std::size_t i) noexcept { return *arrays_[i]; }
  std::size_t num_arrays() const noexcept { return arrays_.size(); }
  std::size_t num_classes() const noexcept { return classes_.size(); }
  ClassConfig class_config(std::size_t cls) const noexcept {
    return {classes_[cls].array, classes_[cls].policy.load()};
  }

  // Commutativity graph gating delegated-session admission (parallel
  // combining, core/delegation.hpp). Adapters seed the statically-known
  // commuting class pairs at engine setup; the graph refines itself online
  // from HTM conflict aborts observed while delegated sessions run.
  ConflictGraph& conflict_graph() noexcept { return graph_; }
  void seed_commutes(int a, int b, bool on = true) noexcept {
    graph_.seed(a, b, on);
  }

  // Dynamic reconfiguration (§2.4: "the customization may be dynamic").
  // Configuration affects only performance, never correctness, so this may
  // overlap with concurrent execute() calls: the policy fields are relaxed
  // atomics (detail::AtomicPolicy), and a reader of a half-updated policy
  // merely runs one operation with a hybrid trial budget. The publication
  // array assignment is intentionally NOT changeable here — moving a class
  // between arrays while its ops are announced would need a handshake.
  void set_class_policy(std::size_t cls, const PhasePolicy& policy) noexcept {
    classes_[cls].policy.store(policy);
  }

 private:
  // ---- Phase 1 -------------------------------------------------------
  bool try_private(Op& op, const PhasePolicy& policy) {
    util::ExpBackoff backoff(
        util::backoff_seed(util::BackoffSite::kPhasePrivate));
    for (int attempt = 0; attempt < policy.try_private; ++attempt) {
      lock_.wait_until_free(policy.wait);
      const bool committed = htm::attempt([&] {
        lock_.subscribe();
        op.run_seq(ds_);
      });
      if (committed) {
        complete(op, Phase::Private);
        return true;
      }
      stats_.record_attempt_failure(op.class_id());
      if (htm::last_abort_code() == htm::AbortCode::Capacity) return false;
      if (htm::last_abort_code() == htm::AbortCode::Conflict) backoff.pause();
    }
    return false;
  }

  // ---- Phase 2 -------------------------------------------------------
  bool try_visible(Op& op, PubArray& pa, const PhasePolicy& policy) {
    op.mark_announced();
    pa.add(&op);

    util::ExpBackoff backoff(
        util::backoff_seed(util::BackoffSite::kPhaseVisible));
    for (int attempt = 0; attempt < policy.try_visible; ++attempt) {
      // A combiner may have selected (and completed) us already — or
      // delegated a group to us (await_done claims and applies it).
      if (op.status() != OpStatus::Announced) {
        await_done(op, pa, policy.wait);
        return true;
      }
      lock_.wait_until_free(policy.wait);
      if constexpr (kMode == CombinerMode::SingleHolder) {
        // An active combiner holds the selection lock for its entire
        // combining phase; a transaction started before it releases would
        // only abort on the subscription below.
        pa.selection_lock().wait_until_free(policy.wait);
      }
      const bool committed = htm::attempt([&] {
        lock_.subscribe();
        // Abort if a combiner selected us or is scanning the array: these
        // reads join the read set, so *later* selection also dooms us.
        if (op.status_tx() != OpStatus::Announced) htm::abort_tx();
        pa.selection_lock().subscribe();
        op.run_seq(ds_);
        // Unpublish atomically with the op's effect (the race discussed in
        // §2.2: a combiner must never select an already-applied op).
        pa.remove_tx(&op);
      });
      if (committed) {
        complete(op, Phase::Visible);
        return true;
      }
      stats_.record_attempt_failure(op.class_id());
      if (htm::last_abort_code() == htm::AbortCode::Conflict) backoff.pause();
    }
    // Not completed; the op stays announced and we escalate to combining.
    return false;
  }

  // ---- Phases 2–4, Multi / SingleHolder ------------------------------
  Phase visible_then_combine(Op& op, PubArray& pa, const PhasePolicy& policy) {
    if (policy.announce) {
      telemetry::phase_enter(static_cast<int>(Phase::Visible));
      const bool done_visible = try_visible(op, pa, policy);
      telemetry::phase_exit(static_cast<int>(Phase::Visible), done_visible);
      if (done_visible) return op.completed_phase();
    }

    std::vector<Op*>& ops_to_help = Core::scratch();
    ops_to_help.clear();
    // Delegated-group storage for this combining session lives on this
    // frame: finish_delegation below must drain every published group
    // before the frame (and the groups' done words) goes away.
    DelegationSession<DS> session;
    std::size_t session_ops = 0;
    bool holding_selection = false;
    bool done_combining;
    if (policy.announce || policy.try_combining > 0) {
      telemetry::phase_enter(static_cast<int>(Phase::Combining));
      done_combining = try_combining(op, pa, policy, ops_to_help, session,
                                     session_ops, holding_selection);
      telemetry::phase_exit(static_cast<int>(Phase::Combining),
                            done_combining);
    } else {
      // Never-announced class with no combining budget: carry only our
      // own op straight to the under-lock fallback.
      ops_to_help.push_back(&op);
      done_combining = false;
    }
    if (!done_combining) {
      telemetry::phase_enter(static_cast<int>(Phase::UnderLock));
      Core::combine_under_lock(lock_, ds_, op, pa, ops_to_help, stats_,
                               policy.wait);
      telemetry::phase_exit(static_cast<int>(Phase::UnderLock), true);
    }
    // Delegated groups are part of this session: sweep unclaimed ones
    // (serial fallback) and wait out claimed ones before the session's
    // stack storage dies. Runs with no lock held.
    if (session.num_groups() != 0) {
      Core::finish_delegation(lock_, ds_, pa, session, graph_, stats_,
                              policy.wait);
    }
    // A combining session (if one started) is over once every selected op
    // has been applied — by us, speculatively or under the lock, or by the
    // delegates we just waited for.
    if (session_ops != 0) telemetry::combine_end(session_ops);
    // Session-boundary reclamation flush: retires run on the helped
    // owners' behalf (their ops' owner_slot() pools) were batched into
    // this thread's outbound bins; push them to the owners' inboxes in
    // one CAS per destination before leaving the session.
    if (session_ops != 0) mem::flush_remote_frees();
    if constexpr (kMode == CombinerMode::SingleHolder) {
      release_selection_if_held(pa, holding_selection);
    }
    return op.completed_phase();
  }

  // tsa: counterpart of try_combining's deferred release — whether the
  // selection lock is held here depends on the runtime `holding` flag set
  // two frames down, a protocol shape outside TSA's block-scoped model.
  // SingleHolder-only; Multi releases inside try_combining itself.
  NO_THREAD_SAFETY_ANALYSIS
  void release_selection_if_held(PubArray& pa, bool holding) {
    if (holding) {
      pa.selection_lock().unlock();
      // Liveness (§12): a competition loser may have parked on the epoch
      // just after this session's final publish; the release is its last
      // wake source, so every session-ending unlock must issue one.
      pa.wake_epoch_waiters();
      telemetry::sel_lock_released();
    }
  }

  // ---- Phase 3 -------------------------------------------------------
  // Returns true iff nothing is left for CombineUnderLock. The caller's
  // own op may be complete even when this returns false (the paper notes
  // exactly this asymmetry) — remaining selected ops still must be run.
  // In SingleHolder mode a successful selection sets `holding_selection`;
  // the caller releases the selection lock after the under-lock fallback.
  //
  // tsa: the selection lock's lifetime here is conditional on runtime state
  // (acquired iff policy.announce and not already Done; released before
  // returning in Multi mode but retained across the return in SingleHolder,
  // signalled through `holding_selection`). TSA requires every path of a
  // function to agree on the held set, so this juggling function opts out;
  // the scan discipline it brokers stays compiler-checked inside
  // CombineCore (select_batch REQUIRES the selection lock) and
  // PublicationArray.
  NO_THREAD_SAFETY_ANALYSIS
  bool try_combining(Op& op, PubArray& pa, const PhasePolicy& policy,
                     std::vector<Op*>& ops_to_help,
                     DelegationSession<DS>& session, std::size_t& session_ops,
                     bool& holding_selection) {
    if (policy.announce) {
      if (!Core::acquire_selection_or_done(
              op, pa, policy.wait,
              [&] { await_done(op, pa, policy.wait); })) {
        return true;
      }
      telemetry::sel_lock_acquired();
      if (op.status() != OpStatus::Announced) {
        // Selected between our last check and the lock acquisition; the
        // selecting combiner is guaranteed to finish our op.
        pa.selection_lock().unlock();
        pa.wake_epoch_waiters();  // liveness, see release_selection_if_held
        telemetry::sel_lock_released();
        await_done(op, pa, policy.wait);
        return true;
      }
      Core::template select_batch<EP::kMarkBeingHelped>(op, pa, ops_to_help,
                                                        stats_);
      if constexpr (kMode == CombinerMode::Multi) {
        pa.selection_lock().unlock();
        pa.wake_epoch_waiters();  // liveness, see release_selection_if_held
        telemetry::sel_lock_released();
      } else {
        holding_selection = true;
      }
      // Batch shaping happens outside the scan (in Multi mode, after the
      // selection lock is released): group by the adapter's combine key
      // (so run_multi sees eliminable pairs adjacent) and pull the
      // descriptors toward this core.
      Core::group_and_prefetch(op, ops_to_help, stats_);
      // Only announcing classes count as combining sessions — a TLE-like
      // class falling through to the lock is not a combiner (keeps the
      // Fig. 4 combining-degree metric meaningful).
      stats_.combiner_sessions.add();
      stats_.ops_selected.add(ops_to_help.size());
      session_ops = ops_to_help.size();
      telemetry::combine_begin(session_ops);
      // Parallel combining: hand disjoint key-groups of the batch back to
      // their waiting owners (Multi only — delegation needs owners parked
      // in wait_done rather than doomed by a held selection lock). The
      // admitted groups leave ops_to_help; we apply the remainder below,
      // concurrently with the delegates, and sweep stragglers in
      // finish_delegation (visible_then_combine).
      if constexpr (kMode == CombinerMode::Multi) {
        if (policy.delegate) {
          Core::delegate_batch(op, ops_to_help, session, graph_, stats_);
        }
      }
    } else {
      // Never-announced (TLE-like) class: we "combine" only our own op.
      ops_to_help.push_back(&op);
    }
    return Core::combine_on_htm(lock_, ds_, op, pa, ops_to_help,
                                policy.try_combining, stats_, policy.wait);
  }

  // ---- Phases 2+4, UnderGlobalLock (flat combining) ------------------
  Phase announce_and_combine_global(Op& op, PubArray& pa,
                                    util::WaitPolicy wait) {
    op.mark_announced();
    pa.add(&op);
    telemetry::phase_enter(static_cast<int>(Phase::Visible));
    // Waiter protocol (DESIGN.md §9.3): bounded exponential pause on our
    // own status line; when the combiner's epoch moves a batch just
    // retired, so re-check status before re-polling the lock line. Under
    // SpinPark losers sleep on the epoch word; combine_global's publishes
    // and every combiner's wake_all_epoch_waiters (below) wake them.
    util::TieredWait waiter(util::WaitSite::kSelectionLock, wait);
    std::uint32_t epoch = pa.combined_epoch();
    for (;;) {
      if (op.status() == OpStatus::Done) {
        telemetry::phase_exit(static_cast<int>(Phase::Visible), true);
        return op.completed_phase();
      }
      const std::uint32_t now = pa.combined_epoch();
      if (now != epoch) {
        epoch = now;
        waiter.reset();
        continue;
      }
      if (lock_.try_lock()) {
        telemetry::phase_exit(static_cast<int>(Phase::Visible), false);
        telemetry::phase_enter(static_cast<int>(Phase::UnderLock));
        Core::combine_global(lock_, ds_, op, pa, stats_, scan_rounds_);
        lock_.unlock();
        // Liveness (§12): the global lock serves every class's array, and
        // a waiter of *any* array may have parked just after our last
        // publish on it, watching an epoch we will never bump again. The
        // release is their signal that the lock is worth re-trying.
        wake_all_epoch_waiters();
        telemetry::phase_exit(static_cast<int>(Phase::UnderLock), true);
        // The combiner always executes its own announced operation.
        assert(op.status() == OpStatus::Done);
        return op.completed_phase();
      }
      if (waiter.wait()) {
        pa.park_on_epoch(now);
        waiter.reset();
      }
    }
  }

  // ---- Phase 4, own op only ------------------------------------------
  void run_own_under_lock(Op& op, util::WaitPolicy wait) {
    telemetry::phase_enter(static_cast<int>(Phase::UnderLock));
    {
      sync::LockGuard<Lock> guard(lock_, wait);
      op.run_seq(ds_);
    }
    if constexpr (kMode == CombinerMode::UnderGlobalLock) {
      // A never-announced class just cycled the global lock; announced
      // waiters parked on their arrays' epochs must re-try it (§12).
      wake_all_epoch_waiters();
    }
    telemetry::phase_exit(static_cast<int>(Phase::UnderLock), true);
    complete(op, Phase::UnderLock);
  }

  void wake_all_epoch_waiters() noexcept {
    for (auto& a : arrays_) a->wake_epoch_waiters();
  }

  // Terminal wait once a combiner selected our op: in Multi mode a
  // combiner may also *delegate* a group to us — claim it (exactly one
  // winner against the combiner's fallback sweep) and apply it ourselves,
  // which completes our own op as part of the group. Losing the claim
  // means the fallback combiner owns the apply; go back to waiting for
  // Done. Other modes never delegate, so plain wait_done suffices.
  void await_done(Op& op, PubArray& pa, util::WaitPolicy wait) {
    if constexpr (kMode == CombinerMode::Multi) {
      for (;;) {
        const OpStatus s = op.wait_done_or_delegated(wait);
        if (s == OpStatus::Done) return;
        if (op.claim_delegation()) {
          Core::apply_delegated_group(lock_, ds_, op, pa, graph_, stats_,
                                      wait, /*by_delegate=*/true);
          assert(op.status() == OpStatus::Done);
          return;
        }
      }
    } else {
      (void)pa;
      op.wait_done(wait);
    }
  }

  void complete(Op& op, Phase phase) {
    op.mark_done(phase);
    stats_.record_completion(op.class_id(), phase);
  }

  // Internal mirror of ClassConfig with an atomically-updatable policy.
  struct ClassSlot {
    explicit ClassSlot(const ClassConfig& c)
        : array(c.array), policy(c.policy) {}
    std::size_t array;
    detail::AtomicPolicy policy;
  };

  DS& ds_;
  std::vector<ClassSlot> classes_;
  std::vector<std::unique_ptr<PubArray>> arrays_;
  Lock lock_;
  EngineStats stats_;
  ConflictGraph graph_;
  int scan_rounds_;
};

}  // namespace hcf::core
