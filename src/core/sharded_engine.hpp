// Sharded HCF — a partitioned meta-engine (DESIGN.md §11).
//
// Every engine in this tree funnels all operations through one
// data-structure lock and one selection lock per operation class. That is
// faithful to the paper, but it caps scalability at whatever one combiner
// (or one lock) can retire. ShardedEngine<Inner> partitions the structure
// into N independent instances of *any* core-based engine — each shard owns
// its own elidable lock, publication arrays, combiners, and per-class
// stats — so shard-local operations on different shards never contend: the
// combiners of shard 0 and shard 3 run concurrently, their transactions
// touch disjoint orecs, and their waiters spin on disjoint cache lines
// ("Sharded Elimination and Combining" / "Parallel Combining", PAPERS.md).
//
// Routing. Each Operation carries a shard_key() (core/operation.hpp): a
// well-mixed 64-bit hash of the operation's target. The router takes the
// *high* bits of that key, so with the hash table's Fibonacci-hash key
// (adapters/ht_ops.hpp uses the same util::mix64 the table's bucket_index
// uses) every shard owns a contiguous range of the hashed-bucket space —
// bucket-range partitioning of one global hash space. Two operations that
// can touch the same state must produce the same shard_key; the shard then
// provides exactly the single-lock serialization the paper's protocol
// assumes, and per-shard linearizability composes to whole-structure
// linearizability because the shards share no state.
//
// Cross-shard operations. Whole-structure queries (size(), snapshots,
// clears) cannot be expressed as a single-shard key. They go through
// with_all_locked(): acquire every shard's data lock in ascending shard
// index — the total order that makes concurrent cross-shard sweeps
// deadlock-free, enforced by the linter's cross-shard-lock-order rule —
// run the functor, release. Holding a shard's lock gives the usual TLE
// guarantee (in-flight subscribed transactions abort, write-backs drain),
// so once the last lock is acquired the sweep observes an atomic snapshot
// of the whole structure; that instant is the operation's linearization
// point.
//
// Invariants:
//   * shard_of(op.shard_key()) is the only shard whose state op touches.
//   * All-shard lock acquisition iterates shard indices ascending.
//   * Policy updates broadcast per shard through the inner engine's
//     detail::AtomicPolicy slots (field-wise atomic; a concurrent reader
//     sees a consistent-enough hybrid for at most one operation, exactly
//     as on the unsharded engine — §2.1: configuration cannot affect
//     correctness).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/engine_stats.hpp"
#include "core/operation.hpp"
#include "core/phase_exec.hpp"
#include "mem/ebr.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_annotations.hpp"

namespace hcf::core {

template <typename InnerEngine>
class ShardedEngine {
 public:
  using Inner = InnerEngine;
  using DS = std::remove_reference_t<decltype(std::declval<Inner&>().data())>;
  using Op = Operation<DS>;

  // `shards` are caller-owned sub-structures, one per shard (the same
  // non-owning contract every engine has with its DS&). The shard count
  // must be a power of two so the router is a shift of the key's high bits.
  ShardedEngine(std::span<DS* const> shards, std::vector<ClassConfig> classes,
                std::size_t num_arrays = 1) {
    assert(!shards.empty() && std::has_single_bit(shards.size()));
    shard_bits_ = static_cast<unsigned>(std::countr_zero(shards.size()));
    shards_.reserve(shards.size());
    for (DS* ds : shards) {
      assert(ds != nullptr);
      shards_.push_back(std::make_unique<Inner>(*ds, classes, num_arrays));
    }
  }

  static std::string_view name() noexcept { return "Sharded"; }

  // ---- routing --------------------------------------------------------

  // Maps a well-mixed 64-bit shard key to [0, num_shards). Static so
  // callers (bench prefill, tests) can route keys identically without an
  // engine instance. num_shards must be a power of two.
  static std::size_t route(std::uint64_t shard_key,
                           std::size_t num_shards) noexcept {
    const auto bits = static_cast<unsigned>(std::countr_zero(num_shards));
    return bits == 0 ? 0 : static_cast<std::size_t>(shard_key >> (64 - bits));
  }

  std::size_t shard_of(std::uint64_t shard_key) const noexcept {
    return shard_bits_ == 0
               ? 0
               : static_cast<std::size_t>(shard_key >> (64 - shard_bits_));
  }

  // ---- the sharded fast path ------------------------------------------

  Phase execute(Op& op) {
    const std::size_t s = shard_of(op.shard_key());
    telemetry::shard_route(s);
    // Tag every event the inner engine records with the shard it ran on.
    telemetry::ShardScope scope(s);
    return shards_[s]->execute(op);
  }

  // ---- cross-shard path -----------------------------------------------

  // Runs `f()` with every shard's data lock held: an atomic whole-structure
  // snapshot (see header comment for the linearization argument). `f` must
  // not execute operations through this engine (self-deadlock) and should
  // read shard state via data(i)/shard(i).
  template <typename F>
  auto with_all_locked(F&& f) -> decltype(f()) {
    // Retired nodes a pre-lock reader may still publish must outlive the
    // sweep; the guard pins the reclamation epoch exactly like execute().
    mem::Guard ebr;
    telemetry::cross_shard_begin(num_shards());
    lock_all_ascending();
    if constexpr (std::is_void_v<decltype(f())>) {
      f();
      unlock_all();
      telemetry::cross_shard_end(num_shards());
    } else {
      auto result = f();
      unlock_all();
      telemetry::cross_shard_end(num_shards());
      return result;
    }
  }

  // Linearizable whole-structure size for structures exposing a sequential
  // size_slow() (e.g. ds::HashTable).
  std::size_t size()
    requires requires(DS& d) {
      { d.size_slow() } -> std::convertible_to<std::size_t>;
    }
  {
    return with_all_locked([&] {
      std::size_t sum = 0;
      for (auto& shard : shards_) sum += shard->data().size_slow();
      return sum;
    });
  }

  // ---- aggregate statistics (driver surface) --------------------------

  // One merged snapshot over all shards. Unlike stats() on the flat
  // engines this is a value, not a live reference — harness::run_timed
  // prefers this hook when present (detail::capture_stats).
  EngineStatsSnapshot stats_snapshot() const noexcept {
    EngineStatsSnapshot total{};
    for (const auto& shard : shards_) {
      accumulate(total, EngineStatsSnapshot::capture(shard->stats()));
    }
    return total;
  }

  std::uint64_t lock_acquisitions() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) sum += shard->lock_acquisitions();
    return sum;
  }

  void reset_stats() noexcept {
    for (auto& shard : shards_) shard->reset_stats();
  }

  // ---- policy surface (PolicyConfigurable pass-through) ---------------
  // Broadcast to every shard; each inner engine stores through its
  // detail::AtomicPolicy slot, so per-shard atomicity of a policy update
  // is exactly the unsharded engine's guarantee. Ascending shard order
  // (range-for) keeps the broadcast deterministic for tests.

  std::size_t num_classes() const noexcept
    requires PolicyConfigurable<Inner>
  {
    return shards_.front()->num_classes();
  }

  ClassConfig class_config(std::size_t cls) const noexcept
    requires PolicyConfigurable<Inner>
  {
    return shards_.front()->class_config(cls);
  }

  void set_class_policy(std::size_t cls, const PhasePolicy& policy) noexcept
    requires PolicyConfigurable<Inner>
  {
    for (auto& shard : shards_) shard->set_class_policy(cls, policy);
  }

  // Commutativity seeding broadcast (parallel combining): each shard keeps
  // its own ConflictGraph — shards share no state, so a pair demoted by
  // one shard's abort storm stays delegable on the others.
  void seed_commutes(int a, int b, bool on = true) noexcept
    requires requires(Inner& e) { e.seed_commutes(a, b, on); }
  {
    for (auto& shard : shards_) shard->seed_commutes(a, b, on);
  }

  // ---- introspection --------------------------------------------------

  std::size_t num_shards() const noexcept { return shards_.size(); }
  Inner& shard(std::size_t i) noexcept { return *shards_[i]; }
  const Inner& shard(std::size_t i) const noexcept { return *shards_[i]; }
  DS& data(std::size_t i) noexcept { return shards_[i]->data(); }

 private:
  static void accumulate(EngineStatsSnapshot& into,
                         const EngineStatsSnapshot& from) noexcept {
    for (int c = 0; c < kMaxOpClasses; ++c) {
      for (int p = 0; p < kNumPhases; ++p) {
        into.completions[static_cast<std::size_t>(c)]
                        [static_cast<std::size_t>(p)] +=
            from.completions[static_cast<std::size_t>(c)]
                            [static_cast<std::size_t>(p)];
      }
      into.attempt_failures[static_cast<std::size_t>(c)] +=
          from.attempt_failures[static_cast<std::size_t>(c)];
    }
    into.combiner_sessions += from.combiner_sessions;
    into.ops_selected += from.ops_selected;
    into.combine_rounds += from.combine_rounds;
    into.helped_ops += from.helped_ops;
    into.scan_words_skipped += from.scan_words_skipped;
    into.batch_groups += from.batch_groups;
    into.batch_group_sizes += from.batch_group_sizes;
    into.delegated_groups += from.delegated_groups;
    into.delegated_ops += from.delegated_ops;
    into.delegate_applies += from.delegate_applies;
    into.delegate_fallbacks += from.delegate_fallbacks;
    into.delegate_conflict_aborts += from.delegate_conflict_aborts;
  }

  // tsa: a loop over N runtime shard locks acquires/releases a capability
  // set TSA cannot name; the ascending-order discipline is enforced by the
  // linter's cross-shard-lock-order rule instead.
  void lock_all_ascending() NO_THREAD_SAFETY_ANALYSIS {
    // Ascending shard index: the global lock order that keeps concurrent
    // cross-shard sweeps deadlock-free (linter: cross-shard-lock-order).
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      shards_[i]->lock().lock();
    }
  }

  // tsa: releases the loop-acquired capability set of lock_all_ascending.
  void unlock_all() NO_THREAD_SAFETY_ANALYSIS {
    // Release order is unconstrained; descending mirrors acquisition.
    for (std::size_t i = shards_.size(); i-- > 0;) {
      shards_[i]->lock().unlock();
    }
  }

  std::vector<std::unique_ptr<Inner>> shards_;
  unsigned shard_bits_ = 0;
};

}  // namespace hcf::core
