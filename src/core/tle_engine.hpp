// Transactional lock elision (Rajwar & Goodman / Dice et al.): try the
// operation speculatively up to `budget` times, subscribing to the
// data-structure lock; fall back to acquiring the lock.
//
// Retry discipline follows production TLE: wait for the lock to be free
// before (re)starting a transaction, back off between conflict aborts, and
// stop retrying after a capacity abort (it will repeat deterministically).
#pragma once

#include <string_view>

#include "core/engine_stats.hpp"
#include "core/operation.hpp"
#include "mem/ebr.hpp"
#include "sim_htm/htm.hpp"
#include "sync/tx_lock.hpp"
#include "telemetry/telemetry.hpp"
#include "util/backoff.hpp"

namespace hcf::core {

inline constexpr int kDefaultHtmBudget = 10;

template <typename DS, sync::ElidableLock Lock = sync::TxLock>
class TleEngine {
 public:
  using Op = Operation<DS>;

  explicit TleEngine(DS& ds, int budget = kDefaultHtmBudget) noexcept
      : ds_(ds), budget_(budget) {}

  static std::string_view name() noexcept { return "TLE"; }

  Phase execute(Op& op) {
    mem::Guard ebr;
    op.prepare();
    // Telemetry hooks sit between attempts, never inside the htm::attempt
    // body (lint rule tx-telemetry-call).
    telemetry::phase_enter(static_cast<int>(Phase::Private));
    util::ExpBackoff backoff(0x71e0 + util::this_thread_id());
    for (int attempt = 0; attempt < budget_; ++attempt) {
      lock_.wait_until_free();
      const bool committed = htm::attempt([&] {
        lock_.subscribe();
        op.run_seq(ds_);
      });
      if (committed) {
        telemetry::phase_exit(static_cast<int>(Phase::Private), true);
        op.mark_done(Phase::Private);
        stats_.record_completion(op.class_id(), Phase::Private);
        return Phase::Private;
      }
      if (htm::last_abort_code() == htm::AbortCode::Capacity) break;
      if (htm::last_abort_code() == htm::AbortCode::Conflict) backoff.pause();
    }
    telemetry::phase_exit(static_cast<int>(Phase::Private), false);
    telemetry::phase_enter(static_cast<int>(Phase::UnderLock));
    {
      sync::LockGuard<Lock> guard(lock_);
      op.run_seq(ds_);
    }
    telemetry::phase_exit(static_cast<int>(Phase::UnderLock), true);
    op.mark_done(Phase::UnderLock);
    stats_.record_completion(op.class_id(), Phase::UnderLock);
    return Phase::UnderLock;
  }

  EngineStats& stats() noexcept { return stats_; }
  std::uint64_t lock_acquisitions() const noexcept {
    return lock_.acquisition_count();
  }
  void reset_stats() noexcept {
    stats_.reset();
    lock_.reset_stats();
  }

  DS& data() noexcept { return ds_; }
  Lock& lock() noexcept { return lock_; }

 private:
  DS& ds_;
  int budget_;
  Lock lock_;
  EngineStats stats_;
};

}  // namespace hcf::core
