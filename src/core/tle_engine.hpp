// Transactional lock elision (Rajwar & Goodman / Dice et al.): try the
// operation speculatively up to `budget` times, subscribing to the
// data-structure lock; fall back to acquiring the lock.
//
// Expressed on the shared phase machine (§2.4's degeneration theorem,
// stated structurally): CombinerMode::None with a tle_like policy —
// TryPrivate with the full budget, no announcing, no combining. The retry
// discipline (wait for the lock to be free before (re)starting, back off
// between conflict aborts, stop retrying after a capacity abort) lives in
// the shared TryPrivate loop.
#pragma once

#include <string_view>

#include "core/phase_exec.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock Lock = sync::TxLock>
class TleEngine
    : public PhaseMachine<DS, EnginePolicy<CombinerMode::None>, Lock> {
  using Base = PhaseMachine<DS, EnginePolicy<CombinerMode::None>, Lock>;

 public:
  explicit TleEngine(DS& ds, int budget = kDefaultHtmBudget)
      : Base(ds, uniform_classes(PhasePolicy::tle_like(budget))) {}

  static std::string_view name() noexcept { return "TLE"; }
};

}  // namespace hcf::core
