// Specialized HCF variant (§2.4): the combiner holds the publication
// array's selection lock for the *entire* combining phase, not just for
// selection — the phase machine's CombinerMode::SingleHolder instantiation.
// Consequences, exactly as the paper describes:
//
//   * owners in TryVisible cannot run concurrently with an active combiner
//     on the same array (their transactions subscribe to the selection
//     lock), eliminating owner-vs-combiner conflicts — a form of contention
//     control akin to SCM's auxiliary lock, but amortized over the whole
//     combined batch;
//   * the BeingHelped state becomes unnecessary: an operation's status
//     moves Announced -> Done, simplifying the protocol;
//   * at most one combiner per publication array, while combiners of
//     different arrays and non-combining threads still run concurrently.
#pragma once

#include <string_view>
#include <vector>

#include "core/phase_exec.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock Lock = sync::TxLock,
          sync::ElidableLock SelectionLock = sync::TxLock>
class HcfSingleCombinerEngine
    : public PhaseMachine<DS, EnginePolicy<CombinerMode::SingleHolder>, Lock,
                          SelectionLock> {
  using Base = PhaseMachine<DS, EnginePolicy<CombinerMode::SingleHolder>,
                            Lock, SelectionLock>;

 public:
  HcfSingleCombinerEngine(DS& ds, std::vector<ClassConfig> classes,
                          std::size_t num_arrays = 1)
      : Base(ds, std::move(classes), num_arrays) {}

  explicit HcfSingleCombinerEngine(
      DS& ds, PhasePolicy policy = PhasePolicy::paper_default())
      : Base(ds, {ClassConfig{0, policy}}, 1) {}

  static std::string_view name() noexcept { return "HCF-1C"; }
};

}  // namespace hcf::core
