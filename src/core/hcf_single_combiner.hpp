// Specialized HCF variant (§2.4): the combiner holds the publication
// array's selection lock for the *entire* combining phase, not just for
// selection. Consequences, exactly as the paper describes:
//
//   * owners in TryVisible cannot run concurrently with an active combiner
//     on the same array (their transactions subscribe to the selection
//     lock), eliminating owner-vs-combiner conflicts — a form of contention
//     control akin to SCM's auxiliary lock, but amortized over the whole
//     combined batch;
//   * the BeingHelped state becomes unnecessary: an operation's status
//     moves Announced -> Done, simplifying the protocol;
//   * at most one combiner per publication array, while combiners of
//     different arrays and non-combining threads still run concurrently.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/engine_stats.hpp"
#include "core/hcf_engine.hpp"
#include "core/operation.hpp"
#include "core/publication_array.hpp"
#include "mem/ebr.hpp"
#include "sim_htm/htm.hpp"
#include "sync/tx_lock.hpp"
#include "telemetry/telemetry.hpp"
#include "util/backoff.hpp"
#include "util/thread_id.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock Lock = sync::TxLock,
          sync::ElidableLock SelectionLock = sync::TxLock>
class HcfSingleCombinerEngine {
 public:
  using Op = Operation<DS>;
  using PubArray = PublicationArray<DS, SelectionLock>;

  HcfSingleCombinerEngine(DS& ds, std::vector<ClassConfig> classes,
                          std::size_t num_arrays = 1)
      : ds_(ds), classes_(std::move(classes)) {
    assert(!classes_.empty());
    arrays_.reserve(num_arrays);
    for (std::size_t i = 0; i < num_arrays; ++i) {
      arrays_.push_back(std::make_unique<PubArray>());
    }
  }

  explicit HcfSingleCombinerEngine(
      DS& ds, PhasePolicy policy = PhasePolicy::paper_default())
      : HcfSingleCombinerEngine(ds, {ClassConfig{0, policy}}, 1) {}

  static std::string_view name() noexcept { return "HCF-1C"; }

  Phase execute(Op& op) {
    mem::Guard ebr;
    op.prepare();
    const ClassConfig& cfg = classes_[static_cast<std::size_t>(op.class_id())];
    PubArray& pa = *arrays_[cfg.array];

    // Telemetry hooks between phases, outside all htm::attempt bodies.
    telemetry::phase_enter(static_cast<int>(Phase::Private));
    const bool done_private = try_private(op, cfg.policy);
    telemetry::phase_exit(static_cast<int>(Phase::Private), done_private);
    if (done_private) return Phase::Private;

    telemetry::phase_enter(static_cast<int>(Phase::Visible));
    const bool done_visible = try_visible(op, pa, cfg.policy);
    telemetry::phase_exit(static_cast<int>(Phase::Visible), done_visible);
    if (done_visible) return op.completed_phase();

    telemetry::phase_enter(static_cast<int>(Phase::Combining));
    combine(op, pa, cfg.policy);
    telemetry::phase_exit(static_cast<int>(Phase::Combining), true);
    return op.completed_phase();
  }

  EngineStats& stats() noexcept { return stats_; }
  std::uint64_t lock_acquisitions() const noexcept {
    return lock_.acquisition_count();
  }
  void reset_stats() noexcept {
    stats_.reset();
    lock_.reset_stats();
  }

  DS& data() noexcept { return ds_; }
  Lock& lock() noexcept { return lock_; }

 private:
  bool try_private(Op& op, const PhasePolicy& policy) {
    util::ExpBackoff backoff(0x1c01 + util::this_thread_id());
    for (int attempt = 0; attempt < policy.try_private; ++attempt) {
      lock_.wait_until_free();
      const bool committed = htm::attempt([&] {
        lock_.subscribe();
        op.run_seq(ds_);
      });
      if (committed) {
        complete(op, Phase::Private);
        return true;
      }
      if (htm::last_abort_code() == htm::AbortCode::Capacity) return false;
      if (htm::last_abort_code() == htm::AbortCode::Conflict) backoff.pause();
    }
    return false;
  }

  bool try_visible(Op& op, PubArray& pa, const PhasePolicy& policy) {
    if (!policy.announce) return false;
    op.mark_announced();
    pa.add(&op);

    util::ExpBackoff backoff(0x1c02 + util::this_thread_id());
    for (int attempt = 0; attempt < policy.try_visible; ++attempt) {
      if (op.status() == OpStatus::Done) return true;
      lock_.wait_until_free();
      pa.selection_lock().wait_until_free();
      const bool committed = htm::attempt([&] {
        lock_.subscribe();
        // Status check first: the combiner (selection-lock holder) may have
        // already applied us. The selection-lock subscription dooms this
        // transaction if a combiner starts while we speculate.
        if (op.status_tx() != OpStatus::Announced) htm::abort_tx();
        pa.selection_lock().subscribe();
        op.run_seq(ds_);
        pa.remove_tx(&op);
      });
      if (committed) {
        complete(op, Phase::Visible);
        return true;
      }
      if (htm::last_abort_code() == htm::AbortCode::Conflict) backoff.pause();
    }
    return false;
  }

  // Combining with the selection lock held throughout; Announced -> Done
  // directly, no BeingHelped.
  void combine(Op& op, PubArray& pa, const PhasePolicy& policy) {
    std::vector<Op*>& ops_to_help = scratch();
    ops_to_help.clear();

    if (policy.announce) {
      // As in HcfEngine::try_combining: watch our own status while
      // competing for the selection lock, so owners helped by the active
      // combiner return without ever acquiring it. The combined-count
      // epoch makes that wake-up O(1): when the active combiner retires a
      // batch, waiters re-check their own status instead of re-polling the
      // contended lock line (DESIGN.md §9.3).
      util::ProportionalWait waiter;
      std::uint64_t epoch = pa.combined_epoch();
      for (;;) {
        if (op.status() == OpStatus::Done) return;
        const std::uint64_t now = pa.combined_epoch();
        if (now != epoch) {
          epoch = now;
          waiter.reset();
          continue;
        }
        if (pa.selection_lock().try_lock()) break;
        waiter.wait();
      }
      telemetry::sel_lock_acquired();
      if (op.status() == OpStatus::Done) {
        pa.selection_lock().unlock();
        telemetry::sel_lock_released();
        return;
      }
      // Select. Slots are unpublished now (still under the selection lock),
      // so owners re-running TryVisible after we release cannot duplicate.
      // Unlike HcfEngine there is no BeingHelped transition — holding the
      // selection lock for the whole phase is what dooms the owners.
      pa.clear_slot(util::this_thread_id());
      ops_to_help.push_back(&op);
      const std::size_t words_skipped =
          // scan-locked: pa.selection_lock() acquired above, held throughout.
          pa.collect_announced(ops_to_help, [&](Op* candidate) {
            return candidate != &op &&
                   candidate->status() == OpStatus::Announced &&
                   op.should_help(*candidate);
          });
      stats_.scan_words_skipped.add(words_skipped);
      if (ops_to_help.size() > 1 && op.combine_keyed()) {
        const std::size_t groups =
            group_batch(std::span<Op*>(ops_to_help));
        stats_.batch_groups.add(groups);
        stats_.batch_group_sizes.add(ops_to_help.size());
      }
      prefetch_batch(std::span<Op* const>(ops_to_help));
      stats_.combiner_sessions.add();
      stats_.ops_selected.add(ops_to_help.size());
      telemetry::combine_begin(ops_to_help.size());
    } else {
      ops_to_help.push_back(&op);
    }
    const std::size_t session_ops = policy.announce ? ops_to_help.size() : 0;

    util::ExpBackoff backoff(0x1c03 + util::this_thread_id());
    int failures = 0;
    while (failures < policy.try_combining && !ops_to_help.empty()) {
      lock_.wait_until_free();
      std::size_t executed = 0;
      const bool committed = htm::attempt([&] {
        lock_.subscribe();
        executed = op.run_multi(ds_, std::span<Op*>(ops_to_help));
      });
      if (committed) {
        stats_.combine_rounds.add();
        retire_prefix(op, pa, ops_to_help, executed, Phase::Combining);
      } else {
        ++failures;
        if (htm::last_abort_code() == htm::AbortCode::Capacity) break;
        if (htm::last_abort_code() == htm::AbortCode::Conflict) {
          backoff.pause();
        }
      }
    }

    if (!ops_to_help.empty()) {
      telemetry::phase_enter(static_cast<int>(Phase::UnderLock));
      sync::LockGuard<Lock> guard(lock_);
      while (!ops_to_help.empty()) {
        const std::size_t executed =
            op.run_multi(ds_, std::span<Op*>(ops_to_help));
        stats_.combine_rounds.add();
        retire_prefix(op, pa, ops_to_help, executed, Phase::UnderLock);
      }
      telemetry::phase_exit(static_cast<int>(Phase::UnderLock), true);
    }

    if (session_ops != 0) telemetry::combine_end(session_ops);
    if (policy.announce) {
      pa.selection_lock().unlock();
      telemetry::sel_lock_released();
    }
  }

  void retire_prefix(Op& own, PubArray& pa, std::vector<Op*>& ops,
                     std::size_t k, Phase phase) {
    assert(k >= 1 && k <= ops.size());
    for (std::size_t i = 0; i < k; ++i) {
      Op* done = ops[i];
      const int cls = done->class_id();
      done->mark_done(phase);
      stats_.record_completion(cls, phase);
      if (done != &own) stats_.helped_ops.add();
    }
    ops.erase(ops.begin(), ops.begin() + static_cast<std::ptrdiff_t>(k));
    pa.publish_combined(k);
  }

  void complete(Op& op, Phase phase) {
    op.mark_done(phase);
    stats_.record_completion(op.class_id(), phase);
  }

  // Per-thread selection arena, reserved once (no growth under the
  // selection lock).
  static std::vector<Op*>& scratch() {
    thread_local std::vector<Op*> ops = [] {
      std::vector<Op*> v;
      v.reserve(util::kMaxThreads);
      return v;
    }();
    return ops;
  }

  DS& ds_;
  std::vector<ClassConfig> classes_;
  std::vector<std::unique_ptr<PubArray>> arrays_;
  Lock lock_;
  EngineStats stats_;
};

}  // namespace hcf::core
