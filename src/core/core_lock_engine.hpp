// Core locks (Diegues, Romano & Marques — cited in the paper's §4 related
// work): TLE where threads that abort for *capacity* reasons serialize on a
// per-core auxiliary lock and retry speculatively while holding it. The
// rationale on real hardware is that two hyperthreads sharing an L1 halve
// each other's transactional capacity, so serializing same-core siblings
// restores it. Under the simulator the capacity model is per-transaction,
// but the engine faithfully reproduces the control flow so policies can be
// compared (and it degenerates gracefully: with generous capacity it is
// plain TLE).
//
// Conflict aborts retry without the core lock, exactly like TLE.
#pragma once

#include <string_view>

#include "core/engine_stats.hpp"
#include "core/operation.hpp"
#include "core/phase_exec.hpp"
#include "mem/ebr.hpp"
#include "sim_htm/htm.hpp"
#include "sync/spinlock.hpp"
#include "sync/tx_lock.hpp"
#include "telemetry/telemetry.hpp"
#include "util/affinity.hpp"
#include "util/backoff.hpp"
#include "util/cacheline.hpp"
#include "util/thread_id.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock Lock = sync::TxLock>
class CoreLockEngine {
 public:
  using Op = Operation<DS>;

  explicit CoreLockEngine(DS& ds, int budget = kDefaultHtmBudget,
                          int core_budget = kDefaultHtmBudget / 2) noexcept
      : ds_(ds),
        budget_(budget),
        core_budget_(core_budget),
        num_cores_(util::hardware_threads()) {}

  static std::string_view name() noexcept { return "CoreLock"; }

  Phase execute(Op& op) {
    mem::Guard ebr;
    op.prepare();

    // Telemetry hooks between attempts, outside htm::attempt bodies; the
    // core-lock retries count toward the private phase like SCM's aux phase.
    telemetry::phase_enter(static_cast<int>(Phase::Private));
    util::ExpBackoff backoff(
        util::backoff_seed(util::BackoffSite::kCoreLockMain));
    for (int attempt = 0; attempt < budget_; ++attempt) {
      lock_.wait_until_free();
      const bool committed = htm::attempt([&] {
        lock_.subscribe();
        op.run_seq(ds_);
      });
      if (committed) {
        telemetry::phase_exit(static_cast<int>(Phase::Private), true);
        op.mark_done(Phase::Private);
        stats_.record_completion(op.class_id(), Phase::Private);
        return Phase::Private;
      }
      if (htm::last_abort_code() == htm::AbortCode::Capacity) {
        // Serialize with same-core siblings and retry speculatively.
        if (try_under_core_lock(op)) {
          telemetry::phase_exit(static_cast<int>(Phase::Private), true);
          op.mark_done(Phase::Private);
          stats_.record_completion(op.class_id(), Phase::Private);
          return Phase::Private;
        }
        break;  // still failing: take the real lock
      }
      if (htm::last_abort_code() == htm::AbortCode::Conflict) backoff.pause();
    }
    telemetry::phase_exit(static_cast<int>(Phase::Private), false);

    telemetry::phase_enter(static_cast<int>(Phase::UnderLock));
    {
      sync::LockGuard<Lock> guard(lock_);
      op.run_seq(ds_);
    }
    telemetry::phase_exit(static_cast<int>(Phase::UnderLock), true);
    op.mark_done(Phase::UnderLock);
    stats_.record_completion(op.class_id(), Phase::UnderLock);
    return Phase::UnderLock;
  }

  EngineStats& stats() noexcept { return stats_; }
  std::uint64_t lock_acquisitions() const noexcept {
    return lock_.acquisition_count();
  }
  void reset_stats() noexcept {
    stats_.reset();
    lock_.reset_stats();
  }
  DS& data() noexcept { return ds_; }
  Lock& lock() noexcept { return lock_; }

  std::uint64_t core_lock_acquisitions() const noexcept {
    return core_acquisitions_.total();
  }

 private:
  bool try_under_core_lock(Op& op) {
    auto& core_lock =
        core_locks_[util::this_thread_id() % num_cores_].value;
    core_lock.lock();
    core_acquisitions_.add();
    util::ExpBackoff backoff(
        util::backoff_seed(util::BackoffSite::kCoreLockAux));
    bool done = false;
    for (int attempt = 0; attempt < core_budget_; ++attempt) {
      lock_.wait_until_free();
      done = htm::attempt([&] {
        lock_.subscribe();
        op.run_seq(ds_);
      });
      if (done) break;
      stats_.record_attempt_failure(op.class_id());
      if (htm::last_abort_code() == htm::AbortCode::Conflict) backoff.pause();
      // Keep retrying even on capacity here: that is the point of the
      // scheme on hardware (capacity may recover once siblings paused).
    }
    core_lock.unlock();
    return done;
  }

  DS& ds_;
  int budget_;
  int core_budget_;
  std::size_t num_cores_;
  Lock lock_;
  util::CacheAligned<sync::SpinLock> core_locks_[util::kMaxThreads];
  util::Counter core_acquisitions_;
  EngineStats stats_;
};

}  // namespace hcf::core
