// HCF — the HTM-assisted Combining Framework (the paper's contribution).
//
// Every operation goes through at most four phases (§2.1):
//
//   1. TryPrivate       — speculative attempts before announcing.
//   2. TryVisible       — announce in the class's publication array, then
//                         more speculative attempts; the transaction checks
//                         (a) the data-structure lock, (b) the operation is
//                         still Announced, (c) the array's selection lock is
//                         free, and removes the announcement in the same
//                         transaction that applies the op.
//   3. TryCombining     — become a combiner: under the selection lock,
//                         select announced operations (should_help), mark
//                         them BeingHelped and unpublish them; then apply
//                         them in one or more hardware transactions through
//                         run_multi.
//   4. CombineUnderLock — acquire the data-structure lock and finish the
//                         remaining selected operations non-speculatively.
//
// Operation classes (Operation::class_id) map to publication arrays with
// independent per-phase attempt budgets, which is how the paper expresses
// per-operation policies (e.g. hash-table Insert combines, Find/Remove run
// TLE-like). Correctness is configuration-independent; only performance
// changes (§2.1).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/engine_stats.hpp"
#include "core/operation.hpp"
#include "core/publication_array.hpp"
#include "core/tle_engine.hpp"
#include "core/types.hpp"
#include "mem/ebr.hpp"
#include "sim_htm/htm.hpp"
#include "sync/tx_lock.hpp"
#include "telemetry/telemetry.hpp"
#include "util/backoff.hpp"
#include "util/thread_id.hpp"

namespace hcf::core {

// Per-operation-class policy: HTM attempt budgets per phase (paper's
// TryPrivateTrials / TryVisibleTrials / TryCombiningTrials) and whether the
// class announces at all. announce=false yields pure TLE behaviour for the
// class: failed speculation goes straight to running its own op under the
// lock.
struct PhasePolicy {
  int try_private = 2;
  int try_visible = 3;
  int try_combining = 5;
  bool announce = true;

  static constexpr PhasePolicy paper_default() noexcept {
    return {2, 3, 5, true};
  }
  // TLE expressed as an HCF configuration (§2.4).
  static constexpr PhasePolicy tle_like(int budget = kDefaultHtmBudget) noexcept {
    return {budget, 0, 0, false};
  }
  // FC expressed as an HCF configuration (§2.4).
  static constexpr PhasePolicy fc_like() noexcept { return {0, 0, 0, true}; }
  // The paper's contended-operation policy (e.g. priority-queue RemoveMin):
  // skip the private phase, announce immediately, combine on HTM.
  static constexpr PhasePolicy combine_first(int combining = 10) noexcept {
    return {0, 0, combining, true};
  }
};

struct ClassConfig {
  std::size_t array = 0;  // publication array index
  PhasePolicy policy{};
};

namespace detail {

// Atomically-updatable storage for a PhasePolicy. set_class_policy may
// overwrite a class's policy while concurrent execute() calls read it (§2.4
// dynamic customization), so the fields are independent relaxed atomics: a
// reader snapshotting mid-update can observe a mix of old and new budgets,
// which is harmless — the policy shapes trial budgets, never correctness.
// These atomics are engine configuration, never touched inside a
// transaction, so the TxCell/TxField funnel does not apply.
class AtomicPolicy {
 public:
  explicit AtomicPolicy(const PhasePolicy& p) noexcept { store(p); }
  AtomicPolicy(const AtomicPolicy& other) noexcept { store(other.load()); }
  AtomicPolicy& operator=(const AtomicPolicy& other) noexcept {
    store(other.load());
    return *this;
  }

  void store(const PhasePolicy& p) noexcept {
    try_private_.store(p.try_private, std::memory_order_relaxed);
    try_visible_.store(p.try_visible, std::memory_order_relaxed);
    try_combining_.store(p.try_combining, std::memory_order_relaxed);
    announce_.store(p.announce, std::memory_order_relaxed);
  }
  PhasePolicy load() const noexcept {
    return {try_private_.load(std::memory_order_relaxed),
            try_visible_.load(std::memory_order_relaxed),
            try_combining_.load(std::memory_order_relaxed),
            announce_.load(std::memory_order_relaxed)};
  }

 private:
  std::atomic<int> try_private_;    // lint:allow(raw-atomic-in-core)
  std::atomic<int> try_visible_;    // lint:allow(raw-atomic-in-core)
  std::atomic<int> try_combining_;  // lint:allow(raw-atomic-in-core)
  std::atomic<bool> announce_;      // lint:allow(raw-atomic-in-core)
};

}  // namespace detail

template <typename DS, sync::ElidableLock Lock = sync::TxLock,
          sync::ElidableLock SelectionLock = sync::TxLock>
class HcfEngine {
 public:
  using Op = Operation<DS>;
  using PubArray = PublicationArray<DS, SelectionLock>;

  // `classes[i]` configures operations with class_id == i. `num_arrays`
  // publication arrays are created; every ClassConfig::array must be < it.
  HcfEngine(DS& ds, std::vector<ClassConfig> classes,
            std::size_t num_arrays = 1)
      : ds_(ds) {
    assert(!classes.empty());
    assert(classes.size() <= kMaxOpClasses);
    classes_.reserve(classes.size());
    for (const auto& c : classes) {
      assert(c.array < num_arrays);
      classes_.emplace_back(c);
    }
    arrays_.reserve(num_arrays);
    for (std::size_t i = 0; i < num_arrays; ++i) {
      arrays_.push_back(std::make_unique<PubArray>());
    }
  }

  // Single-class convenience constructor.
  explicit HcfEngine(DS& ds, PhasePolicy policy = PhasePolicy::paper_default())
      : HcfEngine(ds, {ClassConfig{0, policy}}, 1) {}

  static std::string_view name() noexcept { return "HCF"; }

  Phase execute(Op& op) {
    mem::Guard ebr;
    op.prepare();
    assert(static_cast<std::size_t>(op.class_id()) < classes_.size());
    const ClassSlot& cfg = classes_[static_cast<std::size_t>(op.class_id())];
    // One policy snapshot per operation: set_class_policy may update the
    // slot concurrently, and each phase should see a consistent budget.
    const PhasePolicy policy = cfg.policy.load();
    PubArray& pa = *arrays_[cfg.array];

    // Telemetry hooks live here, between phases and outside every
    // htm::attempt body (tracing inside a transaction is a protocol
    // violation — see tools/lint rule tx-telemetry-call).
    telemetry::phase_enter(static_cast<int>(Phase::Private));
    const bool done_private = try_private(op, policy);
    telemetry::phase_exit(static_cast<int>(Phase::Private), done_private);
    if (done_private) return Phase::Private;

    telemetry::phase_enter(static_cast<int>(Phase::Visible));
    const bool done_visible = try_visible(op, pa, policy);
    telemetry::phase_exit(static_cast<int>(Phase::Visible), done_visible);
    if (done_visible) return op.completed_phase();

    std::vector<Op*>& ops_to_help = scratch();
    ops_to_help.clear();
    std::size_t session_ops = 0;
    telemetry::phase_enter(static_cast<int>(Phase::Combining));
    const bool done_combining =
        try_combining(op, pa, policy, ops_to_help, session_ops);
    telemetry::phase_exit(static_cast<int>(Phase::Combining), done_combining);
    if (!done_combining) {
      telemetry::phase_enter(static_cast<int>(Phase::UnderLock));
      combine_under_lock(op, pa, ops_to_help);
      telemetry::phase_exit(static_cast<int>(Phase::UnderLock), true);
    }
    // A combining session (if one started) is over once every selected op
    // has been applied, speculatively or under the lock.
    if (session_ops != 0) telemetry::combine_end(session_ops);
    return op.completed_phase();
  }

  EngineStats& stats() noexcept { return stats_; }
  std::uint64_t lock_acquisitions() const noexcept {
    return lock_.acquisition_count();
  }
  void reset_stats() noexcept {
    stats_.reset();
    lock_.reset_stats();
  }

  DS& data() noexcept { return ds_; }
  Lock& lock() noexcept { return lock_; }
  PubArray& publication_array(std::size_t i) noexcept { return *arrays_[i]; }
  std::size_t num_arrays() const noexcept { return arrays_.size(); }
  std::size_t num_classes() const noexcept { return classes_.size(); }
  ClassConfig class_config(std::size_t cls) const noexcept {
    return {classes_[cls].array, classes_[cls].policy.load()};
  }

  // Dynamic reconfiguration (§2.4: "the customization may be dynamic").
  // Configuration affects only performance, never correctness, so this may
  // overlap with concurrent execute() calls: the policy fields are relaxed
  // atomics (detail::AtomicPolicy), and a reader of a half-updated policy
  // merely runs one operation with a hybrid trial budget. The publication
  // array assignment is intentionally NOT changeable here — moving a class
  // between arrays while its ops are announced would need a handshake.
  void set_class_policy(std::size_t cls, const PhasePolicy& policy) noexcept {
    classes_[cls].policy.store(policy);
  }

 private:
  // ---- Phase 1 -------------------------------------------------------
  bool try_private(Op& op, const PhasePolicy& policy) {
    util::ExpBackoff backoff(0x4cf1 + util::this_thread_id());
    for (int attempt = 0; attempt < policy.try_private; ++attempt) {
      lock_.wait_until_free();
      const bool committed = htm::attempt([&] {
        lock_.subscribe();
        op.run_seq(ds_);
      });
      if (committed) {
        complete(op, Phase::Private);
        return true;
      }
      stats_.record_attempt_failure(op.class_id());
      if (htm::last_abort_code() == htm::AbortCode::Capacity) return false;
      if (htm::last_abort_code() == htm::AbortCode::Conflict) backoff.pause();
    }
    return false;
  }

  // ---- Phase 2 -------------------------------------------------------
  bool try_visible(Op& op, PubArray& pa, const PhasePolicy& policy) {
    if (!policy.announce) return false;
    op.mark_announced();
    pa.add(&op);

    util::ExpBackoff backoff(0x4cf2 + util::this_thread_id());
    for (int attempt = 0; attempt < policy.try_visible; ++attempt) {
      // A combiner may have selected (and completed) us already.
      if (op.status() != OpStatus::Announced) {
        op.wait_done();
        return true;
      }
      lock_.wait_until_free();
      const bool committed = htm::attempt([&] {
        lock_.subscribe();
        // Abort if a combiner selected us or is scanning the array: these
        // reads join the read set, so *later* selection also dooms us.
        if (op.status_tx() != OpStatus::Announced) htm::abort_tx();
        pa.selection_lock().subscribe();
        op.run_seq(ds_);
        // Unpublish atomically with the op's effect (the race discussed in
        // §2.2: a combiner must never select an already-applied op).
        pa.remove_tx(&op);
      });
      if (committed) {
        complete(op, Phase::Visible);
        return true;
      }
      stats_.record_attempt_failure(op.class_id());
      if (htm::last_abort_code() == htm::AbortCode::Conflict) backoff.pause();
    }
    // Not completed; the op stays announced and we escalate to combining.
    return false;
  }

  // ---- Phase 3 -------------------------------------------------------
  // Returns true iff nothing is left for CombineUnderLock. The caller's
  // own op may be complete even when this returns false (the paper notes
  // exactly this asymmetry) — remaining selected ops still must be run.
  bool try_combining(Op& op, PubArray& pa, const PhasePolicy& policy,
                     std::vector<Op*>& ops_to_help,
                     std::size_t& session_ops) {
    if (policy.announce) {
      // Compete for the selection lock *while watching our own status*: if
      // a combiner selects us in the meantime we never need the lock — we
      // just wait for Done. Blocking unconditionally on the lock would make
      // every helped owner serialize through it only to discover it was
      // already helped, which caps the combining degree near 1.
      //
      // Waiter protocol (DESIGN.md §9.3): spin with bounded exponential
      // pause, and watch the array's combined-count epoch — when a
      // combining round retires a batch the epoch moves, and a waiter whose
      // op was in that batch wakes on its next status check instead of
      // re-polling the contended lock line.
      util::ProportionalWait waiter;
      std::uint64_t epoch = pa.combined_epoch();
      for (;;) {
        if (op.status() != OpStatus::Announced) {
          op.wait_done();
          return true;
        }
        const std::uint64_t now = pa.combined_epoch();
        if (now != epoch) {
          epoch = now;
          waiter.reset();
          continue;  // a batch just retired; re-check our status first
        }
        if (pa.selection_lock().try_lock()) break;
        waiter.wait();
      }
      telemetry::sel_lock_acquired();
      if (op.status() != OpStatus::Announced) {
        // Selected between our last check and the lock acquisition; the
        // selecting combiner is guaranteed to finish our op.
        pa.selection_lock().unlock();
        telemetry::sel_lock_released();
        op.wait_done();
        return true;
      }
      choose_ops_to_help(op, pa, ops_to_help);
      pa.selection_lock().unlock();
      telemetry::sel_lock_released();
      // Batch shaping happens after the selection lock is released: group
      // by the adapter's combine key (so run_multi sees eliminable pairs
      // adjacent) and pull the descriptors toward this core.
      group_and_prefetch(op, ops_to_help);
      // Only announcing classes count as combining sessions — a TLE-like
      // class falling through to the lock is not a combiner (keeps the
      // Fig. 4 combining-degree metric meaningful).
      stats_.combiner_sessions.add();
      stats_.ops_selected.add(ops_to_help.size());
      session_ops = ops_to_help.size();
      telemetry::combine_begin(session_ops);
    } else {
      // Never-announced (TLE-like) class: we "combine" only our own op.
      ops_to_help.push_back(&op);
    }

    util::ExpBackoff backoff(0x4cf3 + util::this_thread_id());
    int failures = 0;
    while (failures < policy.try_combining && !ops_to_help.empty()) {
      lock_.wait_until_free();
      std::size_t executed = 0;
      const bool committed = htm::attempt([&] {
        lock_.subscribe();
        executed = op.run_multi(ds_, std::span<Op*>(ops_to_help));
      });
      if (committed) {
        assert(executed >= 1 && executed <= ops_to_help.size());
        stats_.combine_rounds.add();
        retire_prefix(op, pa, ops_to_help, executed, Phase::Combining);
      } else {
        ++failures;
        stats_.record_attempt_failure(op.class_id());
        if (htm::last_abort_code() == htm::AbortCode::Capacity) break;
        if (htm::last_abort_code() == htm::AbortCode::Conflict) {
          backoff.pause();
        }
      }
    }
    return ops_to_help.empty();
  }

  // ---- Phase 4 -------------------------------------------------------
  void combine_under_lock(Op& op, PubArray& pa,
                          std::vector<Op*>& ops_to_help) {
    assert(!ops_to_help.empty());
    sync::LockGuard<Lock> guard(lock_);
    while (!ops_to_help.empty()) {
      const std::size_t executed =
          op.run_multi(ds_, std::span<Op*>(ops_to_help));
      assert(executed >= 1 && executed <= ops_to_help.size());
      stats_.combine_rounds.add();
      retire_prefix(op, pa, ops_to_help, executed, Phase::UnderLock);
    }
  }

  // ---- helpers -------------------------------------------------------

  // chooseOpsToHelp (paper §2.2): scan the publication array under the
  // selection lock; the caller's op is chosen unconditionally, every other
  // announced op is offered to should_help. Chosen ops transition to
  // BeingHelped (dooming their owners' speculation) and are unpublished.
  // The gather target is the caller's preallocated per-thread arena, so
  // nothing allocates while the selection lock is held.
  void choose_ops_to_help(Op& op, PubArray& pa,
                          std::vector<Op*>& ops_to_help) {
    op.mark_being_helped();
    pa.clear_slot(util::this_thread_id());
    ops_to_help.push_back(&op);
    const std::size_t words_skipped =
        // scan-locked: try_combining acquired pa.selection_lock() above.
        pa.collect_announced(ops_to_help, [&](Op* candidate) {
          if (candidate == &op) return false;
          if (candidate->status() != OpStatus::Announced) return false;
          if (!op.should_help(*candidate)) return false;
          candidate->mark_being_helped();
          return true;
        });
    stats_.scan_words_skipped.add(words_skipped);
  }

  void group_and_prefetch(Op& op, std::vector<Op*>& ops_to_help) {
    if (ops_to_help.size() > 1 && op.combine_keyed()) {
      const std::size_t groups = group_batch(std::span<Op*>(ops_to_help));
      stats_.batch_groups.add(groups);
      stats_.batch_group_sizes.add(ops_to_help.size());
    }
    prefetch_batch(std::span<Op* const>(ops_to_help));
  }

  void retire_prefix(Op& own, PubArray& pa, std::vector<Op*>& ops,
                     std::size_t k, Phase phase) {
    for (std::size_t i = 0; i < k; ++i) {
      Op* done = ops[i];
      const int cls = done->class_id();
      done->mark_done(phase);
      stats_.record_completion(cls, phase);
      if (done != &own) stats_.helped_ops.add();
    }
    ops.erase(ops.begin(), ops.begin() + static_cast<std::ptrdiff_t>(k));
    // Wake helped owners' selection-lock competition in O(1): the epoch
    // moves after the Done stores above, so a waiter observing it re-checks
    // its own status before touching the lock.
    pa.publish_combined(k);
  }

  void complete(Op& op, Phase phase) {
    op.mark_done(phase);
    stats_.record_completion(op.class_id(), phase);
  }

  // Per-thread selection arena, reserved to full capacity once: selection
  // must never regrow a vector while the selection lock is held (the
  // allocation was a hidden serialization point in the seed).
  static std::vector<Op*>& scratch() {
    thread_local std::vector<Op*> ops = [] {
      std::vector<Op*> v;
      v.reserve(util::kMaxThreads);
      return v;
    }();
    return ops;
  }

  // Internal mirror of ClassConfig with an atomically-updatable policy.
  struct ClassSlot {
    explicit ClassSlot(const ClassConfig& c) : array(c.array), policy(c.policy) {}
    std::size_t array;
    detail::AtomicPolicy policy;
  };

  DS& ds_;
  std::vector<ClassSlot> classes_;
  std::vector<std::unique_ptr<PubArray>> arrays_;
  Lock lock_;
  EngineStats stats_;
};

}  // namespace hcf::core
