// HCF — the HTM-assisted Combining Framework (the paper's contribution).
//
// The four-phase protocol itself lives in the shared phase machine
// (core/phase_exec.hpp) and combining core (core/combine_core.hpp); this
// engine is its CombinerMode::Multi instantiation — the paper's default,
// where combiners hold the selection lock only while selecting (marking
// victims BeingHelped) and then combine on HTM concurrently with owners'
// visible-phase attempts.
#pragma once

#include <string_view>
#include <vector>

#include "core/phase_exec.hpp"

namespace hcf::core {

template <typename DS, sync::ElidableLock Lock = sync::TxLock,
          sync::ElidableLock SelectionLock = sync::TxLock>
class HcfEngine
    : public PhaseMachine<DS, EnginePolicy<CombinerMode::Multi>, Lock,
                          SelectionLock> {
  using Base = PhaseMachine<DS, EnginePolicy<CombinerMode::Multi>, Lock,
                            SelectionLock>;

 public:
  // `classes[i]` configures operations with class_id == i. `num_arrays`
  // publication arrays are created; every ClassConfig::array must be < it.
  HcfEngine(DS& ds, std::vector<ClassConfig> classes,
            std::size_t num_arrays = 1)
      : Base(ds, std::move(classes), num_arrays) {}

  // Single-class convenience constructor.
  explicit HcfEngine(DS& ds, PhasePolicy policy = PhasePolicy::paper_default())
      : Base(ds, {ClassConfig{0, policy}}, 1) {}

  static std::string_view name() noexcept { return "HCF"; }
};

}  // namespace hcf::core
