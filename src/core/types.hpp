// Shared enums for the synchronization engines.
#pragma once

#include <cstdint>

namespace hcf::core {

// Lifecycle of an operation descriptor (paper §2.2).
enum class OpStatus : std::uint32_t {
  UnAnnounced = 0,  // not yet visible to combiners
  Announced = 1,    // published in a publication array
  BeingHelped = 2,  // selected by a combiner
  Done = 3,         // applied; result available
  Delegated = 4,    // group assignee: a combiner published a delegated batch
                    // for the owner to claim and apply (core/delegation.hpp)
};

// Which phase completed an operation (paper Fig. 3). Engines other than HCF
// use the subset that applies to them (e.g. TLE completes ops in Private or
// UnderLock).
enum class Phase : std::uint8_t {
  Private = 0,     // HTM, before announcing
  Visible = 1,     // HTM, after announcing
  Combining = 2,   // executed by a combiner on HTM
  UnderLock = 3,   // executed while holding the data-structure lock
};

inline constexpr int kNumPhases = 4;

inline const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::Private: return "TryPrivate";
    case Phase::Visible: return "TryVisible";
    case Phase::Combining: return "TryCombining";
    case Phase::UnderLock: return "CombineUnderLock";
  }
  return "?";
}

inline const char* to_string(OpStatus s) noexcept {
  switch (s) {
    case OpStatus::UnAnnounced: return "UnAnnounced";
    case OpStatus::Announced: return "Announced";
    case OpStatus::BeingHelped: return "BeingHelped";
    case OpStatus::Done: return "Done";
    case OpStatus::Delegated: return "Delegated";
  }
  return "?";
}

}  // namespace hcf::core
