// Operation descriptors (paper §2.2).
//
// An operation bundles the arguments and result slot of one data-structure
// call together with the three sequential methods the framework invokes:
//
//   * run_seq     — applies the operation; the only method a user *must*
//                   provide (typically a one-line wrapper over the
//                   sequential data structure). Runs inside a hardware
//                   transaction or under the data-structure lock.
//   * should_help — combiner-side selection predicate: given the combiner's
//                   own operation (*this), decide whether `candidate` should
//                   be selected from the publication array. Defaults to
//                   "help everyone" (the framework's select-all policy);
//                   a "help nobody" subclass hook is `HelpNobody`.
//   * run_multi   — applies a subset of the selected operations, combining
//                   and/or eliminating them using data-structure semantics.
//                   The default simply runs each selected op's run_seq.
//
// Framework state (status, completion phase) lives in the base class; the
// synchronization protocol around it is owned by the engines, never by
// user code.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>

#include "core/delegation.hpp"
#include "core/types.hpp"
#include "sim_htm/txcell.hpp"
#include "util/cacheline.hpp"
#include "util/parking.hpp"
#include "util/thread_id.hpp"

namespace hcf::core {

template <typename DS>
class Operation {
 public:
  explicit Operation(int class_id = 0) noexcept : class_id_(class_id) {}
  virtual ~Operation() = default;

  Operation(const Operation&) = delete;
  Operation& operator=(const Operation&) = delete;

  // ---- user-provided sequential methods ----

  virtual void run_seq(DS& ds) = 0;

  virtual bool should_help(const Operation& candidate) const {
    (void)candidate;
    return true;
  }

  // Applies some non-empty subset of `ops`. Contract: the implementation
  // may permute `ops`, must execute exactly a *prefix* of the (permuted)
  // span, and returns that prefix's length (>= 1). Runs inside a hardware
  // transaction or under the data-structure lock.
  virtual std::size_t run_multi(DS& ds, std::span<Operation*> ops) {
    for (auto* op : ops) op->run_seq(ds);
    return ops.size();
  }

  // Combiner-side batch grouping hint. When combine_keyed() is true, the
  // engines sort a selected batch by ascending combine_key() *before*
  // handing it to run_multi (group_batch below), so combinable and
  // eliminable operations arrive adjacent and the adapter's internal
  // sort/partition runs on already-ordered input — outside the hardware
  // transaction instead of inside it. Purely a performance hint: run_multi
  // must stay correct on ungrouped input (its contract already allows any
  // permutation), and a stale or mismatched key mis-groups but never
  // mis-executes.
  virtual bool combine_keyed() const { return false; }
  virtual std::uint64_t combine_key() const { return 0; }

  // Delegation grouping hook (core/delegation.hpp): when delegate_keyed()
  // is true and the class policy enables delegation, the combiner
  // partitions the selected batch into runs of equal delegate_key() and
  // hands whole runs back to waiting clients to apply in parallel. Two
  // operations with the same delegate_key must be safe to apply in one
  // run_multi call (they are — that is run_multi's existing contract); two
  // *different* keys are only applied concurrently if the engine's
  // ConflictGraph says their classes commute. Defaults to the combine key
  // so keyed adapters delegate along their existing grouping; adapters
  // whose combine key is too fine (e.g. hash tables grouping per bucket)
  // override with a coarser partition.
  virtual bool delegate_keyed() const { return combine_keyed(); }
  virtual std::uint64_t delegate_key() const { return combine_key(); }

  // Sharding hook (core/sharded_engine.hpp): a well-mixed 64-bit hash of
  // the operation's target; the sharded meta-engine selects a shard from
  // its high bits. Any two operations that may touch the same state must
  // return the same key — whole-structure operations have no such key and
  // go through the meta-engine's cross-shard path instead. The default
  // routes every operation to shard 0, which is always correct (a single
  // shard sees a total order) just never scalable.
  virtual std::uint64_t shard_key() const noexcept { return 0; }

  // ---- framework state ----

  int class_id() const noexcept { return class_id_; }

  // Resets the descriptor for a fresh execution. Must only be called by the
  // owner when no other thread can reference the descriptor.
  void prepare() noexcept {
    status_.init(static_cast<std::uint32_t>(OpStatus::UnAnnounced));
    completed_phase_ = Phase::Private;
    owner_slot_ = util::this_thread_id();
    delegate_group_.store(nullptr, std::memory_order_relaxed);
  }

  // Reclamation ownership tag (mem/pool.hpp): the pool slot of the thread
  // that announced this operation. A combiner or delegate running this
  // op's retires frees nodes whose block headers name their allocation-
  // time owners — often this slot — and the mem:: facade routes each such
  // free to the owner's remote inbox rather than the applier's limbo. The
  // tag marks the op as carrying foreign-pool traffic, so session code
  // batch-flushes outbound bins once per group/session
  // (mem::flush_remote_frees) instead of per node.
  std::size_t owner_slot() const noexcept { return owner_slot_; }

  OpStatus status() const noexcept {
    return static_cast<OpStatus>(status_.load() & kStatusMask);
  }

  // Transactional status read (owner-side check inside TryVisible).
  OpStatus status_tx() const {
    return static_cast<OpStatus>(status_.read() & kStatusMask);
  }

  // Owner announces before publishing; sequenced before any transaction
  // that subscribes to the status, so a plain store suffices.
  void mark_announced() noexcept {
    status_.store_plain(static_cast<std::uint32_t>(OpStatus::Announced));
  }

  // Combiner selection: dooms the owner's in-flight speculative attempt
  // (strong store bumps the status word's orec). Idempotent: a rescan that
  // offers an already-selected op skips the store — the owner was doomed by
  // the first transition, and a redundant strong store would bump the orec
  // again, aborting unrelated readers that subscribed to the word since.
  void mark_being_helped() noexcept {
    if ((status_.load() & kStatusMask) ==
        static_cast<std::uint32_t>(OpStatus::BeingHelped)) {
      return;
    }
    status_.store(static_cast<std::uint32_t>(OpStatus::BeingHelped));
  }

  // Completion: record where the op completed, then release the owner.
  // Plain release exchange — by this point the owner cannot be speculating
  // on the operation (it was doomed at mark_being_helped, or it is us).
  // The displaced value tells us whether the owner parked on the status
  // word (wait_done below); only then does the wake syscall fire.
  void mark_done(Phase phase) noexcept {
    completed_phase_ = phase;
    const std::uint32_t old =
        status_.exchange_plain(static_cast<std::uint32_t>(OpStatus::Done));
    if ((old & kParkedBit) != 0) util::wake_all(status_.wait_address());
  }

  // Owner-side wait for a combiner to finish the operation. The owner
  // spins locally on its own descriptor's status line with bounded
  // exponential pause (the line is written exactly once more — at
  // mark_done — so growing pauses trade wake-up latency for near-zero
  // coherence traffic), then yields; under WaitPolicy::SpinPark it
  // finally publishes the parked bit (CAS, so a racing mark_done wins)
  // and sleeps on its own status word until the combiner's wake.
  void wait_done(
      util::WaitPolicy wait = util::WaitPolicy::SpinYield) const noexcept {
    util::TieredWait waiter(util::WaitSite::kOpStatus, wait);
    for (;;) {
      const std::uint32_t raw = status_.load();
      if ((raw & kStatusMask) == static_cast<std::uint32_t>(OpStatus::Done)) {
        return;
      }
      if (!waiter.wait()) continue;
      std::uint32_t expected = raw;
      if ((expected & kParkedBit) == 0) {
        // Publish intent to sleep. A failed CAS means the status moved
        // (almost certainly to Done) — loop and re-check before parking.
        if (!status_.cas(expected, expected | kParkedBit)) continue;
        expected |= kParkedBit;
      }
      util::park(status_.wait_address(), expected);
      waiter.reset();
    }
  }

  // ---- delegation protocol (core/delegation.hpp, DESIGN.md §13) ----

  // Combiner side: publish a delegated group with this op as its assignee.
  // Requires status == BeingHelped (the op was selected, so the owner's
  // speculation is already doomed — a plain exchange suffices). The group
  // pointer is released *before* the status flips so a claimant's acquire
  // of the status word makes the pointer visible. If the owner already
  // parked (BeingHelped | parked), wake it: the whole point is for the
  // owner to pick the group up.
  void mark_delegated(DelegateGroup<DS>* group) noexcept {
    assert(status() == OpStatus::BeingHelped);
    delegate_group_.store(group, std::memory_order_release);
    const std::uint32_t old = status_.exchange_plain(
        static_cast<std::uint32_t>(OpStatus::Delegated));
    if ((old & kParkedBit) != 0) util::wake_all(status_.wait_address());
  }

  // Claim the delegated group: exactly one caller (the woken owner or the
  // combiner's fallback sweep) wins the Delegated -> BeingHelped CAS and
  // owns the apply. The CAS is strong (dooming) which is harmless — nobody
  // speculates on a Delegated op — and it preserves a parked bit a
  // concurrent plain wait_done may have published. Returns false once the
  // status has left Delegated (someone else won).
  bool claim_delegation() noexcept {
    std::uint32_t raw = status_.load();
    while ((raw & kStatusMask) ==
           static_cast<std::uint32_t>(OpStatus::Delegated)) {
      const std::uint32_t next =
          (raw & kParkedBit) |
          static_cast<std::uint32_t>(OpStatus::BeingHelped);
      if (status_.cas(raw, next)) return true;
      raw = status_.load();
    }
    return false;
  }

  // Valid after winning claim_delegation() (the claim's acquire pairs with
  // mark_delegated's release); the pointer targets the delegating
  // combiner's stack and must not be touched after the group's done word
  // is set (DelegateGroup::finish is the claimant's last access).
  DelegateGroup<DS>* delegate_group() const noexcept {
    return delegate_group_.load(std::memory_order_acquire);
  }

  // wait_done variant for owners whose engine delegates: returns Done as
  // usual, but also returns (without parking) on Delegated so the caller
  // can try to claim the group and apply it itself. Never parks on a
  // Delegated word — the claim attempt is the next step, not a sleep.
  OpStatus wait_done_or_delegated(
      util::WaitPolicy wait = util::WaitPolicy::SpinYield) const noexcept {
    util::TieredWait waiter(util::WaitSite::kOpStatus, wait);
    for (;;) {
      const std::uint32_t raw = status_.load();
      const std::uint32_t s = raw & kStatusMask;
      if (s == static_cast<std::uint32_t>(OpStatus::Done) ||
          s == static_cast<std::uint32_t>(OpStatus::Delegated)) {
        return static_cast<OpStatus>(s);
      }
      if (!waiter.wait()) continue;
      std::uint32_t expected = raw;
      if ((expected & kParkedBit) == 0) {
        if (!status_.cas(expected, expected | kParkedBit)) continue;
        expected |= kParkedBit;
      }
      util::park(status_.wait_address(), expected);
      waiter.reset();
    }
  }

  // Valid once status() == Done (or after the owner completed it itself).
  Phase completed_phase() const noexcept { return completed_phase_; }

 private:
  // The status word's MSB marks "the owner is parked on this word"; the
  // low bits hold the OpStatus. The bit can only be set while the status
  // is BeingHelped (wait_done and wait_done_or_delegated are only reached
  // after a combiner selected the op, neither parks on Done or Delegated,
  // and the CAS above fails against any concurrent transition). The later
  // writers all handle it atomically: mark_done and mark_delegated observe
  // it through their exchange and wake, claim_delegation's CAS preserves
  // it. status()/status_tx() mask it out.
  static constexpr std::uint32_t kParkedBit = 0x8000'0000u;
  static constexpr std::uint32_t kStatusMask = ~kParkedBit;

  int class_id_;
  mutable htm::TxCell<std::uint32_t> status_{
      static_cast<std::uint32_t>(OpStatus::UnAnnounced)};
  Phase completed_phase_ = Phase::Private;
  std::size_t owner_slot_ = 0;
  // Delegation slot: written by the delegating combiner (mark_delegated),
  // read by the claim winner. Raw atomic — never accessed transactionally.
  std::atomic<DelegateGroup<DS>*> delegate_group_{
      nullptr};  // lint:allow(raw-atomic-in-core)
};

// Sorts a selected batch by combine_key so run_multi receives ready-made
// groups: equal-key (avl) or matching-kind (stack push/pop, pq
// insert/remove-min) operations become adjacent, which is exactly the
// layout the adapters' internal sort/partition would otherwise produce
// inside the transaction. Engines call this after selection, outside both
// the selection lock (where possible) and the hardware transaction.
// Returns the number of distinct key groups (combining telemetry).
template <typename DS>
inline std::size_t group_batch(std::span<Operation<DS>*> ops) {
  std::sort(ops.begin(), ops.end(),
            [](const Operation<DS>* a, const Operation<DS>* b) {
              return a->combine_key() < b->combine_key();
            });
  std::size_t groups = 0;
  std::uint64_t prev_key = 0;
  for (const Operation<DS>* op : ops) {
    const std::uint64_t key = op->combine_key();
    if (groups == 0 || key != prev_key) {
      ++groups;
      prev_key = key;
    }
  }
  return groups;
}

// Prefetches the descriptors of a selected batch before application: the
// combiner is about to read every op's arguments and write every op's
// result slot, and selection just chased kMaxThreads-spread pointers whose
// targets are unlikely to sit in the combiner's cache.
template <typename DS>
inline void prefetch_batch(std::span<Operation<DS>* const> ops) noexcept {
  for (const Operation<DS>* op : ops) util::prefetch_ro(op);
}

// Mixin: a should_help that never helps (the framework's "apply only the
// combiner's own operation" default variant).
template <typename DS, typename Base = Operation<DS>>
class HelpNobody : public Base {
 public:
  using Base::Base;
  bool should_help(const Operation<DS>&) const override { return false; }
};

}  // namespace hcf::core
