// Per-engine statistics: which phase completed each operation (paper
// Fig. 3), split by operation class, plus combining metrics (Fig. 4).
#pragma once

#include <array>
#include <cstdint>

#include "core/types.hpp"
#include "util/counters.hpp"

namespace hcf::core {

inline constexpr int kMaxOpClasses = 4;

struct EngineStats {
  // completions[cls][phase]
  std::array<std::array<util::Counter, kNumPhases>, kMaxOpClasses> completions;
  // Failed HTM attempts per class (any phase) — the contention signal the
  // adaptive controller consumes; completions alone hide retry storms.
  std::array<util::Counter, kMaxOpClasses> attempt_failures;
  util::Counter combiner_sessions;   // times a thread became a combiner
  util::Counter ops_selected;        // total ops chosen by combiners
  util::Counter combine_rounds;      // run_multi invocations by combiners
  util::Counter helped_ops;          // ops completed by a thread != owner
  // Combiner fast-path telemetry (DESIGN.md §9): occupancy words the
  // selection scan never touched, and the key-grouping shape of selected
  // batches (sum of group sizes over count of groups = mean group size).
  util::Counter scan_words_skipped;  // empty 64-slot words skipped per scan
  util::Counter batch_groups;        // distinct combine-key groups formed
  util::Counter batch_group_sizes;   // ops covered by those groups
  // Parallel combining (core/delegation.hpp, DESIGN.md §13).
  util::Counter delegated_groups;    // groups published for delegates
  util::Counter delegated_ops;       // ops inside those groups
  util::Counter delegate_applies;    // groups applied by their delegate
  util::Counter delegate_fallbacks;  // unclaimed groups applied by combiner
  util::Counter delegate_conflict_aborts;  // HTM conflicts in delegated runs

  void record_completion(int cls, Phase phase) noexcept {
    completions[static_cast<std::size_t>(cls % kMaxOpClasses)]
               [static_cast<std::size_t>(phase)]
                   .add();
  }

  void record_attempt_failure(int cls) noexcept {
    attempt_failures[static_cast<std::size_t>(cls % kMaxOpClasses)].add();
  }

  std::uint64_t phase_total(Phase phase) const noexcept {
    std::uint64_t sum = 0;
    for (const auto& cls : completions) {
      sum += cls[static_cast<std::size_t>(phase)].total();
    }
    return sum;
  }

  std::uint64_t class_total(int cls) const noexcept {
    std::uint64_t sum = 0;
    for (const auto& c : completions[static_cast<std::size_t>(cls)]) {
      sum += c.total();
    }
    return sum;
  }

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (int p = 0; p < kNumPhases; ++p) {
      sum += phase_total(static_cast<Phase>(p));
    }
    return sum;
  }

  // Average operations applied per combiner session (the paper's
  // "combining degree").
  double combining_degree() const noexcept {
    const auto sessions = combiner_sessions.total();
    return sessions == 0
               ? 0.0
               : static_cast<double>(ops_selected.total()) /
                     static_cast<double>(sessions);
  }

  void reset() noexcept {
    for (auto& cls : completions) {
      for (auto& c : cls) c.reset();
    }
    for (auto& c : attempt_failures) c.reset();
    combiner_sessions.reset();
    ops_selected.reset();
    combine_rounds.reset();
    helped_ops.reset();
    scan_words_skipped.reset();
    batch_groups.reset();
    batch_group_sizes.reset();
    delegated_groups.reset();
    delegated_ops.reset();
    delegate_applies.reset();
    delegate_fallbacks.reset();
    delegate_conflict_aborts.reset();
  }
};

// Plain-value snapshot for measurement intervals.
struct EngineStatsSnapshot {
  std::array<std::array<std::uint64_t, kNumPhases>, kMaxOpClasses>
      completions{};
  std::array<std::uint64_t, kMaxOpClasses> attempt_failures{};
  std::uint64_t combiner_sessions = 0;
  std::uint64_t ops_selected = 0;
  std::uint64_t combine_rounds = 0;
  std::uint64_t helped_ops = 0;
  std::uint64_t scan_words_skipped = 0;
  std::uint64_t batch_groups = 0;
  std::uint64_t batch_group_sizes = 0;
  std::uint64_t delegated_groups = 0;
  std::uint64_t delegated_ops = 0;
  std::uint64_t delegate_applies = 0;
  std::uint64_t delegate_fallbacks = 0;
  std::uint64_t delegate_conflict_aborts = 0;

  static EngineStatsSnapshot capture(const EngineStats& s) noexcept {
    EngineStatsSnapshot snap;
    for (int c = 0; c < kMaxOpClasses; ++c) {
      for (int p = 0; p < kNumPhases; ++p) {
        snap.completions[c][p] = s.completions[c][p].total();
      }
    }
    for (int c = 0; c < kMaxOpClasses; ++c) {
      snap.attempt_failures[c] = s.attempt_failures[c].total();
    }
    snap.combiner_sessions = s.combiner_sessions.total();
    snap.ops_selected = s.ops_selected.total();
    snap.combine_rounds = s.combine_rounds.total();
    snap.helped_ops = s.helped_ops.total();
    snap.scan_words_skipped = s.scan_words_skipped.total();
    snap.batch_groups = s.batch_groups.total();
    snap.batch_group_sizes = s.batch_group_sizes.total();
    snap.delegated_groups = s.delegated_groups.total();
    snap.delegated_ops = s.delegated_ops.total();
    snap.delegate_applies = s.delegate_applies.total();
    snap.delegate_fallbacks = s.delegate_fallbacks.total();
    snap.delegate_conflict_aborts = s.delegate_conflict_aborts.total();
    return snap;
  }

  EngineStatsSnapshot delta_since(const EngineStatsSnapshot& base) const {
    EngineStatsSnapshot d;
    for (int c = 0; c < kMaxOpClasses; ++c) {
      for (int p = 0; p < kNumPhases; ++p) {
        d.completions[c][p] = completions[c][p] - base.completions[c][p];
      }
    }
    for (int c = 0; c < kMaxOpClasses; ++c) {
      d.attempt_failures[c] = attempt_failures[c] - base.attempt_failures[c];
    }
    d.combiner_sessions = combiner_sessions - base.combiner_sessions;
    d.ops_selected = ops_selected - base.ops_selected;
    d.combine_rounds = combine_rounds - base.combine_rounds;
    d.helped_ops = helped_ops - base.helped_ops;
    d.scan_words_skipped = scan_words_skipped - base.scan_words_skipped;
    d.batch_groups = batch_groups - base.batch_groups;
    d.batch_group_sizes = batch_group_sizes - base.batch_group_sizes;
    d.delegated_groups = delegated_groups - base.delegated_groups;
    d.delegated_ops = delegated_ops - base.delegated_ops;
    d.delegate_applies = delegate_applies - base.delegate_applies;
    d.delegate_fallbacks = delegate_fallbacks - base.delegate_fallbacks;
    d.delegate_conflict_aborts =
        delegate_conflict_aborts - base.delegate_conflict_aborts;
    return d;
  }

  std::uint64_t phase_total(Phase phase) const noexcept {
    std::uint64_t sum = 0;
    for (const auto& cls : completions) {
      sum += cls[static_cast<std::size_t>(phase)];
    }
    return sum;
  }

  std::uint64_t class_total(int cls) const noexcept {
    std::uint64_t sum = 0;
    for (auto v : completions[static_cast<std::size_t>(cls)]) sum += v;
    return sum;
  }

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (int p = 0; p < kNumPhases; ++p) {
      sum += phase_total(static_cast<Phase>(p));
    }
    return sum;
  }

  double combining_degree() const noexcept {
    return combiner_sessions == 0
               ? 0.0
               : static_cast<double>(ops_selected) /
                     static_cast<double>(combiner_sessions);
  }
};

}  // namespace hcf::core
