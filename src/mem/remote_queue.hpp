// MPSC remote-free queue: a Vyukov-style intrusive stack of pool blocks.
//
// Producers are arbitrary threads returning (or pre-retiring) blocks that
// belong to another thread's pool; the consumer is the pool's owner, which
// takes the entire accumulated chain with one exchange. Producers link
// through the block *header* word — never through object storage — so a
// pre-grace-period node can sit in the queue while doomed transactions are
// still reading its fields (see pool.hpp, BlockHeader::link).
//
// Push is one CAS for a whole pre-linked chain; producers batch locally
// (pool.hpp's outbound bins) so the CAS amortizes over the flush batch.
// Consumption via exchange(nullptr) transfers exclusive ownership of the
// grabbed chain, which also makes the shutdown drain (ebr.hpp) safe to run
// against any pool: two concurrent drainers simply split the traffic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/cacheline.hpp"

namespace hcf::mem {

struct BlockHeader;

namespace detail {

// Header-intrusive link accessors live in pool.hpp (they need the header
// layout); the queue only moves opaque chain heads around.
BlockHeader*& header_link(BlockHeader* h) noexcept;

}  // namespace detail

class RemoteQueue {
 public:
  RemoteQueue() = default;
  RemoteQueue(const RemoteQueue&) = delete;
  RemoteQueue& operator=(const RemoteQueue&) = delete;

  // Pushes a producer-private chain head..tail (linked via header words,
  // `n` blocks). Release ordering publishes the chain contents — header
  // flags and, for post-grace blocks, the dead object bytes — to the
  // consumer's acquire exchange.
  void push_chain(BlockHeader* head, BlockHeader* tail, std::size_t n) noexcept {
    BlockHeader* old = head_.load(std::memory_order_relaxed);
    do {
      detail::header_link(tail) = old;
    } while (!head_.compare_exchange_weak(old, head,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
    depth_.fetch_add(n, std::memory_order_relaxed);
  }

  void push(BlockHeader* h) noexcept { push_chain(h, h, 1); }

  // Takes the whole current chain (LIFO order); returns nullptr when empty.
  // The caller owns every block in the returned chain exclusively.
  BlockHeader* take_all() noexcept {
    if (head_.load(std::memory_order_relaxed) == nullptr) return nullptr;
    BlockHeader* chain = head_.exchange(nullptr, std::memory_order_acquire);
    if (chain != nullptr) depth_.store(0, std::memory_order_relaxed);
    return chain;
  }

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

  // Approximate depth (producers race the consumer's reset); good enough
  // for stats and the shutdown drain's convergence check.
  std::size_t approx_depth() const noexcept {
    return depth_.load(std::memory_order_relaxed);
  }

 private:
  alignas(util::kCacheLineSize) std::atomic<BlockHeader*> head_{nullptr};
  std::atomic<std::size_t> depth_{0};
};

}  // namespace hcf::mem
