// Epoch-based reclamation (EBR), classic three-epoch scheme, with batched
// epoch checks and pool-aware limbo lists.
//
// Why the simulator needs it: with lazy-versioning transactions, a doomed
// transaction can hold a raw pointer to a node that a concurrent committer
// has already unlinked. Opacity guarantees the doomed transaction aborts at
// its next validated read, but it may dereference the stale pointer first —
// so unlinked nodes must stay allocated until every operation that might
// hold such a pointer has finished. Every engine operation runs under an
// ebr::Guard; frees requested during the run are deferred until two epoch
// advances have passed.
//
// Batching (DESIGN.md §14): retirements accumulate in an *open* batch that
// never touches the global epoch; the batch is stamped once when it seals.
// A later stamp is conservative — epochs only grow, and freeing still
// requires two advances past the stamp — so correctness is unchanged while
// the global-epoch load and the collect sweep amortize over the batch. The
// same batch carrier absorbs chains drained from this thread's pool inbox
// (pool.hpp): pre-grace remote retirements from other threads enter the
// owner's limbo here, stamped at drain time.
//
// Thread exit hands both kinds of leftovers to the shared orphan list:
// regular deleter batches, and pool-block chains re-marked to return to the
// arena's central lists (the dead slot may be recycled, so no foreign
// thread may touch that pool's private free lists). EbrDomain::drain()
// additionally sweeps every pool's inbox so queued remote frees from
// exited threads cannot outlive shutdown.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "mem/pool.hpp"
#include "sync/spinlock.hpp"
#include "util/cacheline.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_id.hpp"

namespace hcf::mem {

namespace detail {

struct Reservation {
  std::atomic<bool> active{false};
  std::atomic<std::uint64_t> epoch{0};
  std::uint32_t depth = 0;  // guard nesting, accessed only by owner
};

struct RetiredNode {
  void* ptr;
  void (*deleter)(void*);
};

// One epoch-stamped unit of deferred reclamation: heterogeneous deleter
// entries plus (optionally) a header-linked chain of pool blocks drained
// from an inbox. `to_central` marks orphaned chains whose owner slot may
// have been recycled: they go back to the arena instead of a free list.
struct Batch {
  std::uint64_t epoch = 0;
  std::vector<RetiredNode> nodes;
  BlockHeader* chain = nullptr;
  std::size_t chain_len = 0;
  bool to_central = false;

  std::size_t size() const noexcept { return nodes.size() + chain_len; }
};

}  // namespace detail

// Runtime-tunable collect threshold (satellite of the pool batch sizes in
// pool.hpp): entries a limbo list accumulates before collect() runs.
namespace detail {
inline std::atomic<std::size_t>& collect_threshold_value() noexcept {
  static std::atomic<std::size_t> v{
      env_or("HCF_EBR_COLLECT_THRESHOLD", 64, 1, 1u << 20)};
  return v;
}
}  // namespace detail

inline std::size_t collect_threshold() noexcept {
  return detail::collect_threshold_value().load(std::memory_order_relaxed);
}
inline void set_collect_threshold(std::size_t n) noexcept {
  assert(n >= 1 && n <= (1u << 20) && "collect threshold out of sane bounds");
  detail::collect_threshold_value().store(n, std::memory_order_relaxed);
}

// The domain itself is a shared capability: holding it (via enter/exit or
// the RAII Guard) is the read-side critical section that keeps retired
// nodes alive. drain() EXCLUDES it — draining from inside a guard would
// wait on the caller's own reservation.
class CAPABILITY("ebr.domain") EbrDomain {
 public:
  static EbrDomain& instance() noexcept {
    static EbrDomain dom;
    return dom;
  }

  // Marks the calling thread as inside a read-side critical section.
  void enter() noexcept ACQUIRE_SHARED() {
    auto& r = slot();
    if (r.depth++ > 0) return;
    // Announce the current epoch; seq_cst so that retirers scanning
    // reservations cannot miss us (store-load ordering with try_advance).
    r.epoch.store(global_epoch_.load(std::memory_order_seq_cst),
                  std::memory_order_seq_cst);
    r.active.store(true, std::memory_order_seq_cst);
    // Re-announce in case the epoch advanced between load and store; one
    // re-read closes the window because epochs only block on *active*
    // threads with stale announcements.
    r.epoch.store(global_epoch_.load(std::memory_order_seq_cst),
                  std::memory_order_seq_cst);
  }

  void exit() noexcept RELEASE_SHARED() {
    auto& r = slot();
    if (--r.depth > 0) return;
    r.active.store(false, std::memory_order_release);
  }

  bool in_critical_section() noexcept { return slot().depth > 0; }

  // Defers destruction of `p` until a grace period has elapsed. The entry
  // joins the open batch without touching the global epoch; the batch is
  // stamped when it seals (conservatively later — safe, see header).
  void retire(void* p, void (*deleter)(void*)) {
    auto& limbo = limbo_list();
    limbo.open.push_back({p, deleter});
    ++limbo.total;
    if (limbo.open.size() >= seal_batch_size()) seal_open(limbo);
    if (limbo.total >= collect_threshold()) collect(limbo);
  }

  template <typename T>
  void retire(T* p) {
    retire(p, [](void* q) { delete static_cast<T*>(q); });
  }

  // Shutdown/test hook: advance epochs and free everything that becomes
  // safe, including queued remote frees from exited threads. Must be
  // called outside any guard; converges fully only when no other thread is
  // concurrently inside a guard or holding unflushed outbound bins.
  // Replaces the old fixed-iteration loop with a convergence check: loop
  // until limbo + orphans + every pool inbox are empty, or an epoch fails
  // to advance (a pinned reservation — no further frees can mature).
  void drain() EXCLUDES(this) {
    auto& limbo = limbo_list();
    for (;;) {
      flush_remote_frees();
      drain_all_inboxes(limbo);
      seal_open(limbo);
      const std::uint64_t before =
          global_epoch_.load(std::memory_order_seq_cst);
      try_advance();
      sweep(limbo, /*force=*/true);
      // The sweep's deleters route foreign blocks into this thread's
      // outbound bins; push them before judging emptiness, or the final
      // round would report converged with blocks still parked locally.
      flush_remote_frees();
      if (limbo.empty() && orphans_empty() && all_inboxes_empty()) return;
      if (global_epoch_.load(std::memory_order_seq_cst) == before) return;
    }
  }

  // Allocation-slow-path absorb: pool.hpp routes its refill-time inbox
  // drain here (via the registered hook below) so deferred chains land in
  // the limbo as stamped batches instead of being requeued. Without this,
  // a thread whose nodes are all retired remotely — a client whose
  // combiner frees on its behalf — would never cross the retire-count
  // collect threshold, and its inbox would grow without bound.
  void absorb_for_alloc() {
    auto& limbo = limbo_list();
    absorb_inbox(limbo,
                 detail::this_pool().drain_inbox(/*accept_deferred=*/true));
    if (limbo.total >= collect_threshold()) collect(limbo);
  }

  std::uint64_t epoch() const noexcept {
    return global_epoch_.load(std::memory_order_acquire);
  }

  // Number of entries waiting in this thread's limbo list (for tests).
  std::size_t local_limbo_size() { return limbo_list().total; }

 private:
  EbrDomain() = default;

  // Batches sealed per collect window; keeps the epoch-load amortization
  // proportional to the tunable threshold.
  static std::size_t seal_batch_size() noexcept {
    const std::size_t t = collect_threshold() / 4;
    return t > 0 ? t : 1;
  }

  detail::Reservation& slot() noexcept {
    return reservations_[util::this_thread_id()].value;
  }

  // Thread-local limbo list: sealed epoch-stamped batches plus the open
  // tail. On thread exit remaining entries are handed to the shared orphan
  // list so another thread can reclaim them later; pool chains are
  // re-marked to_central because the dead slot may be recycled.
  struct LimboList {
    std::vector<detail::Batch> sealed;
    std::vector<detail::RetiredNode> open;
    std::size_t total = 0;
    // Global epoch value at the last sweep over this list; the sentinel
    // forces the first collect to sweep. See sweep().
    std::uint64_t last_swept_epoch = ~std::uint64_t{0};

    bool empty() const noexcept { return total == 0; }

    ~LimboList() {
      auto& dom = EbrDomain::instance();
      dom.seal_open(*this);
      if (sealed.empty()) return;
      for (auto& b : sealed) {
        if (b.chain != nullptr) b.to_central = true;
      }
      sync::SpinGuard lk(dom.orphan_lock_);
      for (auto& b : sealed) dom.orphans_.push_back(std::move(b));
    }
  };

  LimboList& limbo_list() {
    thread_local LimboList limbo;
    return limbo;
  }

  void seal_open(LimboList& limbo) {
    if (limbo.open.empty()) return;
    detail::Batch b;
    b.epoch = global_epoch_.load(std::memory_order_acquire);
    b.nodes = std::move(limbo.open);
    limbo.open.clear();
    limbo.sealed.push_back(std::move(b));
    reclaim_stats().batches_sealed.add();
  }

  // Appends an inbox drain's deferred chain to the limbo as a stamped
  // batch. Drain-time stamping is conservative: the nodes were retired at
  // or before this epoch.
  void absorb_inbox(LimboList& limbo, InboxDrain d) {
    if (d.deferred == nullptr) return;
    detail::Batch b;
    b.epoch = global_epoch_.load(std::memory_order_acquire);
    b.chain = d.deferred;
    b.chain_len = d.deferred_count;
    limbo.sealed.push_back(std::move(b));
    limbo.total += d.deferred_count;
    reclaim_stats().batches_sealed.add();
  }

  bool try_advance() noexcept {
    const std::uint64_t g = global_epoch_.load(std::memory_order_seq_cst);
    for (auto& res : reservations_) {
      const auto& r = res.value;
      if (r.active.load(std::memory_order_seq_cst) &&
          r.epoch.load(std::memory_order_seq_cst) != g) {
        return false;
      }
    }
    std::uint64_t expected = g;
    global_epoch_.compare_exchange_strong(expected, g + 1,
                                          std::memory_order_seq_cst);
    return true;
  }

  void collect(LimboList& limbo) {
    // Flush our pending outbound batches so owners can make progress, then
    // drain our own inbox — the epoch-collect drain point (pool.hpp).
    flush_remote_frees();
    absorb_inbox(limbo, detail::this_pool().drain_inbox(
                            /*accept_deferred=*/true));
    try_advance();
    sweep(limbo, /*force=*/false);
  }

  void sweep(LimboList& limbo, bool force) {
    const std::uint64_t g = global_epoch_.load(std::memory_order_acquire);
    // If the epoch hasn't moved since this list was last swept, nothing can
    // have become freeable (freeability depends only on the global epoch,
    // and batches sealed since carry the current epoch). Skipping the sweep
    // matters under oversubscription: a thread preempted while pinned
    // freezes the epoch for its whole time off-CPU, and without this check
    // every collect-threshold retires rescan the entire — growing — limbo
    // list fruitlessly, turning reclamation quadratic exactly when the
    // machine is busiest. drain() forces the sweep regardless.
    if (!force && g == limbo.last_swept_epoch) return;
    limbo.last_swept_epoch = g;
    limbo.total -= free_safe(limbo.sealed, g);
    // Opportunistically reclaim orphans from exited threads.
    if (!orphans_empty()) {
      sync::SpinGuard lk(orphan_lock_);
      free_safe(orphans_, g);
    }
  }

  // Frees every batch whose stamp is two epochs stale; returns entries
  // freed. One epoch comparison per *batch*, not per node.
  static std::size_t free_safe(std::vector<detail::Batch>& batches,
                               std::uint64_t global) {
    std::size_t kept = 0;
    std::size_t freed = 0;
    for (std::size_t i = 0; i < batches.size(); ++i) {
      detail::Batch& b = batches[i];
      if (global >= b.epoch + 2) {
        freed += b.size();
        free_batch(b);
      } else {
        // Guard against self-move: vector move-assignment may clear the
        // source, which here would silently wipe the batch's entries.
        if (kept != i) batches[kept] = std::move(b);
        ++kept;
      }
    }
    batches.resize(kept);
    return freed;
  }

  static void free_batch(detail::Batch& b) {
    for (auto& n : b.nodes) n.deleter(n.ptr);
    if (b.chain == nullptr) return;
    if (b.to_central) {
      Arena::instance().take_back(b.chain);
    } else {
      BlockHeader* c = b.chain;
      while (c != nullptr) {
        BlockHeader* next = c->link;
        free_block(c);
        c = next;
      }
    }
    b.chain = nullptr;
  }

  // Shutdown sweep over every pool inbox: our own drains normally; other
  // slots' traffic — whether their owner exited or just never collected —
  // is routed to the arena's central lists, with pre-grace chains parked
  // on the orphan list until their stamp matures. take_all transfers
  // exclusive ownership, so racing a (still-live) owner is safe: the two
  // drainers split the queue.
  void drain_all_inboxes(LimboList& limbo) {
    const std::size_t self = util::this_thread_id();
    for (std::size_t s = 0; s < util::kMaxThreads; ++s) {
      Pool& p = detail::pool_for_slot(s);
      if (s == self) {
        absorb_inbox(limbo, p.drain_inbox(/*accept_deferred=*/true));
        continue;
      }
      BlockHeader* chain = p.inbox().take_all();
      if (chain == nullptr) continue;
      BlockHeader* immediate = nullptr;
      detail::Batch deferred;
      deferred.epoch = global_epoch_.load(std::memory_order_acquire);
      deferred.to_central = true;
      while (chain != nullptr) {
        BlockHeader* next = chain->link;
        if ((chain->flags() & kFlagDeferred) != 0) {
          chain->link = deferred.chain;
          deferred.chain = chain;
          ++deferred.chain_len;
        } else {
          chain->link = immediate;
          immediate = chain;
        }
        chain = next;
      }
      if (immediate != nullptr) Arena::instance().take_back(immediate);
      if (deferred.chain != nullptr) {
        sync::SpinGuard lk(orphan_lock_);
        orphans_.push_back(std::move(deferred));
      }
    }
  }

  static bool all_inboxes_empty() noexcept {
    for (std::size_t s = 0; s < util::kMaxThreads; ++s) {
      if (!detail::pool_for_slot(s).inbox().empty()) return false;
    }
    return true;
  }

  bool orphans_empty() {
    sync::SpinGuard lk(orphan_lock_);
    return orphans_.empty();
  }

  std::atomic<std::uint64_t> global_epoch_{0};
  util::CacheAligned<detail::Reservation> reservations_[util::kMaxThreads];
  // An annotated SpinLock rather than std::mutex: libstdc++'s mutex carries
  // no capability attributes, so GUARDED_BY would be unenforceable.
  sync::SpinLock orphan_lock_;
  std::vector<detail::Batch> orphans_ GUARDED_BY(orphan_lock_);
};

namespace detail {

// Wires the allocation slow path (pool.hpp) to absorb_for_alloc at static
// initialization. An inline variable so every TU shares one instance; the
// store is idempotent anyway.
struct DeferredAbsorbInit {
  DeferredAbsorbInit() noexcept {
    set_deferred_absorb_hook(
        [] { EbrDomain::instance().absorb_for_alloc(); });
  }
};
inline DeferredAbsorbInit g_deferred_absorb_init;

}  // namespace detail

// RAII read-side critical section.
class SCOPED_CAPABILITY Guard {
 public:
  Guard() noexcept ACQUIRE_SHARED(EbrDomain::instance()) {
    EbrDomain::instance().enter();
  }
  ~Guard() RELEASE() { EbrDomain::instance().exit(); }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
};

}  // namespace hcf::mem
