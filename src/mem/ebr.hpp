// Epoch-based reclamation (EBR), classic three-epoch scheme.
//
// Why the simulator needs it: with lazy-versioning transactions, a doomed
// transaction can hold a raw pointer to a node that a concurrent committer
// has already unlinked. Opacity guarantees the doomed transaction aborts at
// its next validated read, but it may dereference the stale pointer first —
// so unlinked nodes must stay allocated until every operation that might
// hold such a pointer has finished. Every engine operation runs under an
// ebr::Guard; frees requested during the run are deferred until two epoch
// advances have passed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sync/spinlock.hpp"
#include "util/cacheline.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_id.hpp"

namespace hcf::mem {

namespace detail {

struct Reservation {
  std::atomic<bool> active{false};
  std::atomic<std::uint64_t> epoch{0};
  std::uint32_t depth = 0;  // guard nesting, accessed only by owner
};

struct RetiredNode {
  void* ptr;
  void (*deleter)(void*);
  std::uint64_t epoch;
};

}  // namespace detail

// The domain itself is a shared capability: holding it (via enter/exit or
// the RAII Guard) is the read-side critical section that keeps retired
// nodes alive. drain() EXCLUDES it — draining from inside a guard would
// wait on the caller's own reservation.
class CAPABILITY("ebr.domain") EbrDomain {
 public:
  static EbrDomain& instance() noexcept {
    static EbrDomain dom;
    return dom;
  }

  // Marks the calling thread as inside a read-side critical section.
  void enter() noexcept ACQUIRE_SHARED() {
    auto& r = slot();
    if (r.depth++ > 0) return;
    // Announce the current epoch; seq_cst so that retirers scanning
    // reservations cannot miss us (store-load ordering with try_advance).
    r.epoch.store(global_epoch_.load(std::memory_order_seq_cst),
                  std::memory_order_seq_cst);
    r.active.store(true, std::memory_order_seq_cst);
    // Re-announce in case the epoch advanced between load and store; one
    // re-read closes the window because epochs only block on *active*
    // threads with stale announcements.
    r.epoch.store(global_epoch_.load(std::memory_order_seq_cst),
                  std::memory_order_seq_cst);
  }

  void exit() noexcept RELEASE_SHARED() {
    auto& r = slot();
    if (--r.depth > 0) return;
    r.active.store(false, std::memory_order_release);
  }

  bool in_critical_section() noexcept { return slot().depth > 0; }

  // Defers destruction of `p` until a grace period has elapsed.
  void retire(void* p, void (*deleter)(void*)) {
    auto& limbo = limbo_list();
    limbo.push_back({p, deleter,
                     global_epoch_.load(std::memory_order_acquire)});
    if (limbo.size() >= kCollectThreshold) collect(limbo);
  }

  template <typename T>
  void retire(T* p) {
    retire(p, [](void* q) { delete static_cast<T*>(q); });
  }

  // Test/shutdown hook: advance epochs and free everything that becomes
  // safe. Must be called outside any guard with no concurrent guards for a
  // full drain.
  void drain() EXCLUDES(this) {
    auto& limbo = limbo_list();
    for (int i = 0; i < 4 && !(limbo.empty() && orphans_empty()); ++i) {
      try_advance();
      collect(limbo);
    }
  }

  std::uint64_t epoch() const noexcept {
    return global_epoch_.load(std::memory_order_acquire);
  }

  // Number of entries waiting in this thread's limbo list (for tests).
  std::size_t local_limbo_size() { return limbo_list().size(); }

 private:
  static constexpr std::size_t kCollectThreshold = 64;

  EbrDomain() = default;

  detail::Reservation& slot() noexcept {
    return reservations_[util::this_thread_id()].value;
  }

  // Thread-local limbo list. On thread exit remaining entries are handed to
  // the shared orphan list so another thread can reclaim them later.
  struct LimboList : std::vector<detail::RetiredNode> {
    // Global epoch value at the last free_safe sweep over this list; the
    // sentinel forces the first collect to sweep. See collect().
    std::uint64_t last_swept_epoch = ~std::uint64_t{0};
    ~LimboList() {
      if (!empty()) {
        auto& dom = EbrDomain::instance();
        sync::SpinGuard lk(dom.orphan_lock_);
        dom.orphans_.insert(dom.orphans_.end(), begin(), end());
      }
    }
  };

  LimboList& limbo_list() {
    thread_local LimboList limbo;
    return limbo;
  }

  bool try_advance() noexcept {
    const std::uint64_t g = global_epoch_.load(std::memory_order_seq_cst);
    for (auto& res : reservations_) {
      const auto& r = res.value;
      if (r.active.load(std::memory_order_seq_cst) &&
          r.epoch.load(std::memory_order_seq_cst) != g) {
        return false;
      }
    }
    std::uint64_t expected = g;
    global_epoch_.compare_exchange_strong(expected, g + 1,
                                          std::memory_order_seq_cst);
    return true;
  }

  void collect(LimboList& limbo) {
    try_advance();
    const std::uint64_t g = global_epoch_.load(std::memory_order_acquire);
    // If the epoch hasn't moved since this list was last swept, nothing can
    // have become freeable (freeability depends only on the global epoch,
    // and nodes retired since carry the current epoch). Skipping the sweep
    // matters under oversubscription: a thread preempted while pinned
    // freezes the epoch for its whole time off-CPU, and without this check
    // every kCollectThreshold retires rescan the entire — growing — limbo
    // list fruitlessly, turning reclamation quadratic exactly when the
    // machine is busiest.
    if (g == limbo.last_swept_epoch) return;
    limbo.last_swept_epoch = g;
    free_safe(limbo, g);
    // Opportunistically reclaim orphans from exited threads.
    if (!orphans_empty()) {
      sync::SpinGuard lk(orphan_lock_);
      free_safe(orphans_, g);
    }
  }

  static void free_safe(std::vector<detail::RetiredNode>& list,
                        std::uint64_t global) {
    std::size_t kept = 0;
    for (auto& node : list) {
      if (global >= node.epoch + 2) {
        node.deleter(node.ptr);
      } else {
        list[kept++] = node;
      }
    }
    list.resize(kept);
  }

  bool orphans_empty() {
    sync::SpinGuard lk(orphan_lock_);
    return orphans_.empty();
  }

  std::atomic<std::uint64_t> global_epoch_{0};
  util::CacheAligned<detail::Reservation> reservations_[util::kMaxThreads];
  // An annotated SpinLock rather than std::mutex: libstdc++'s mutex carries
  // no capability attributes, so GUARDED_BY would be unenforceable.
  sync::SpinLock orphan_lock_;
  std::vector<detail::RetiredNode> orphans_ GUARDED_BY(orphan_lock_);
};

// RAII read-side critical section.
class SCOPED_CAPABILITY Guard {
 public:
  Guard() noexcept ACQUIRE_SHARED(EbrDomain::instance()) {
    EbrDomain::instance().enter();
  }
  ~Guard() RELEASE() { EbrDomain::instance().exit(); }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
};

template <typename T>
void retire(T* p) {
  EbrDomain::instance().retire(p);
}

}  // namespace hcf::mem
