// The unified allocation facade: every node-sized allocation in the tree —
// htm::make, the abort-time alloc_log unwinder, and all of ds/ — routes
// through mem::alloc / mem::dealloc / mem::retire (enforced by the lint
// rule node-alloc-via-facade for ds/). No raw new/delete on node paths.
//
//   alloc<T>   — pooled placement-new (pool.hpp); oversize types fall back
//                to operator new behind the same block header.
//   dealloc<T> — immediate destroy + free: for memory that was never
//                published to concurrent readers (abort unwind, structure
//                destructors). Foreign blocks travel the owner's MPSC
//                inbox as already-dead memory.
//   retire<T>  — grace-deferred reclamation. A foreign trivially-
//                destructible node skips the local limbo entirely and is
//                pre-retired straight to its owner's inbox (one batched
//                CAS, no global-epoch load); the owner stamps it into an
//                epoch batch at drain time (ebr.hpp). Everything else
//                takes the local limbo with a destroy+free deleter.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "mem/ebr.hpp"
#include "mem/pool.hpp"
#include "util/thread_id.hpp"

namespace hcf::mem {

namespace detail {

// Limbo deleter for facade-allocated nodes: destroy, then route the block
// home (local free list, or the owner's inbox when the limbo that held the
// entry belongs to another thread).
template <typename T>
void retire_deleter(void* q) {
  static_cast<T*>(q)->~T();
  free_block(header_of(q));
}

}  // namespace detail

template <typename T, typename... Args>
T* alloc(Args&&... args) {
  static_assert(alignof(T) <= 2 * alignof(std::max_align_t) &&
                    alignof(T) <= kHeaderSize,
                "over-aligned types cannot ride behind the block header");
  const std::uint8_t cls = detail::class_for_size(sizeof(T));
  const std::size_t self = util::this_thread_id();
  BlockHeader* h;
  if (cls == kOversizeClass) {
    h = static_cast<BlockHeader*>(::operator new(kHeaderSize + sizeof(T)));
    h->set(self, kOversizeClass, 0);
  } else {
    h = detail::this_pool().allocate(cls, self);
  }
  if constexpr (std::is_nothrow_constructible_v<T, Args...>) {
    return ::new (h->object()) T(std::forward<Args>(args)...);
  } else {
    try {
      return ::new (h->object()) T(std::forward<Args>(args)...);
    } catch (...) {
      free_block(h);
      throw;
    }
  }
}

// Immediate destroy + free. Only for memory no concurrent reader can still
// hold: abort-log unwinds and single-threaded teardown.
template <typename T>
void dealloc(T* p) {
  p->~T();
  free_block(header_of(p));
}

// Grace-deferred reclamation through the facade.
template <typename T>
void retire(T* p) {
  BlockHeader* h = header_of(p);
  if constexpr (std::is_trivially_destructible_v<T>) {
    if (h->owner() != util::this_thread_id()) {
      retire_block_remote(h);
      return;
    }
  }
  reclaim_stats().local_retires.add();
  EbrDomain::instance().retire(p, &detail::retire_deleter<T>);
}

}  // namespace hcf::mem
