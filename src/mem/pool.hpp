// Per-thread node pools with batched cross-thread reclamation.
//
// Ownership model (DESIGN.md §14): every facade allocation is prefixed by a
// 16-byte BlockHeader recording the owning pool slot and size class. Blocks
// are carved from a shared backing Arena in refill batches and then live on
// the owner's size-class free lists; allocation and local free are
// single-threaded pointer pops with no synchronization at all.
//
// Cross-thread traffic is message-passing, not shared-state (the snmalloc
// idea): a thread releasing a block it does not own never touches the
// owner's free lists. It links the block into a thread-local outbound bin
// for that owner and, once the bin reaches the flush batch, publishes the
// whole chain to the owner's MPSC inbox with one CAS (remote_queue.hpp).
// Owners drain their inbox opportunistically on refill and at epoch-collect
// time (ebr.hpp). Two kinds of blocks travel the same queue, distinguished
// by a header flag:
//
//   * immediate — the object is already destroyed (post-grace free, or an
//     abort-unwound allocation); the owner pushes it straight to a free
//     list.
//   * deferred  — a *pre-grace retirement* of a live-to-readers node. The
//     owner moves it into its own EBR limbo as an epoch-stamped batch; the
//     block reaches a free list only after the grace period. Queue linkage
//     goes through the header word, never object storage, precisely so
//     doomed transactions can keep reading the node while it waits here.
//
// Pools are process-global and indexed by dense thread id: thread ids
// recycle (util/thread_id.hpp), so a pool must outlive its owner and be a
// safe push target after the owner exits — a thread reusing the slot
// simply inherits the pool, and the shutdown drain (EbrDomain::drain)
// sweeps inboxes of slots nobody reclaimed.
//
// Drains never run inside a transaction body: on real HTM the inbox
// exchange would drag a contended cache line into the write set (dooming
// the transaction for bookkeeping, not data), and an abort would roll back
// the list splice but not the producer's CAS. The facade checks the
// registered in-transaction probe and defers the drain to the next
// non-speculative allocation instead.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "mem/remote_queue.hpp"
#include "sync/spinlock.hpp"
#include "telemetry/telemetry.hpp"
#include "util/counters.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_id.hpp"

namespace hcf::mem {

// ---- Block header ---------------------------------------------------------

inline constexpr std::size_t kHeaderSize = 16;
inline constexpr std::uint32_t kBlockMagic = 0x48434642;  // "HCFB"
inline constexpr std::uint8_t kFlagDeferred = 0x1;

// Size classes by *object* size; block stride is kHeaderSize larger. The
// largest class covers the deepest node in ds/ (SkipListPq::Node, ~144 B);
// anything bigger takes the direct operator-new path (kOversizeClass).
inline constexpr std::size_t kClassObjectSize[] = {48, 112, 176, 240};
inline constexpr std::size_t kNumClasses =
    sizeof(kClassObjectSize) / sizeof(kClassObjectSize[0]);
inline constexpr std::uint8_t kOversizeClass = 0xff;
inline constexpr std::size_t kMaxPooledSize =
    kClassObjectSize[kNumClasses - 1];

struct BlockHeader {
  // magic(32) | owner(16) | class(8) | flags(8). Written only by the
  // thread currently holding the block's release right; published to inbox
  // consumers by RemoteQueue's release CAS.
  std::uint64_t meta;
  // Free-list / queue linkage. Lives in the header so queued pre-grace
  // nodes keep their object bytes intact for concurrent doomed readers.
  BlockHeader* link;

  std::uint32_t magic() const noexcept {
    return static_cast<std::uint32_t>(meta >> 32);
  }
  std::size_t owner() const noexcept {
    return static_cast<std::size_t>((meta >> 16) & 0xffff);
  }
  std::uint8_t size_class() const noexcept {
    return static_cast<std::uint8_t>((meta >> 8) & 0xff);
  }
  std::uint8_t flags() const noexcept {
    return static_cast<std::uint8_t>(meta & 0xff);
  }
  void set(std::size_t owner, std::uint8_t cls, std::uint8_t flags) noexcept {
    meta = (static_cast<std::uint64_t>(kBlockMagic) << 32) |
           (static_cast<std::uint64_t>(owner & 0xffff) << 16) |
           (static_cast<std::uint64_t>(cls) << 8) |
           static_cast<std::uint64_t>(flags);
  }
  void set_flags(std::uint8_t flags) noexcept {
    meta = (meta & ~std::uint64_t{0xff}) | flags;
  }

  void* object() noexcept {
    return reinterpret_cast<char*>(this) + kHeaderSize;
  }
};
static_assert(sizeof(BlockHeader) == kHeaderSize);

inline BlockHeader* header_of(void* object) noexcept {
  auto* h = reinterpret_cast<BlockHeader*>(static_cast<char*>(object) -
                                           kHeaderSize);
  assert(h->magic() == kBlockMagic && "pointer was not mem::alloc'd");
  return h;
}

namespace detail {

inline BlockHeader*& header_link(BlockHeader* h) noexcept { return h->link; }

inline constexpr std::size_t block_stride(std::uint8_t cls) noexcept {
  return kHeaderSize + kClassObjectSize[cls];
}

inline std::uint8_t class_for_size(std::size_t size) noexcept {
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    if (size <= kClassObjectSize[c]) return static_cast<std::uint8_t>(c);
  }
  return kOversizeClass;
}

}  // namespace detail

// ---- Runtime tunables -----------------------------------------------------
// Batch sizes are runtime-tunable (env or setter) so the bench can sweep
// them; bounds are asserted because a zero batch deadlocks refill and an
// absurd one defeats the point of batching.

namespace detail {

inline std::size_t env_or(const char* name, std::size_t fallback,
                          std::size_t lo, std::size_t hi) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const unsigned long parsed = std::strtoul(v, nullptr, 10);
  if (parsed < lo || parsed > hi) return fallback;
  return static_cast<std::size_t>(parsed);
}

inline std::atomic<std::size_t>& refill_batch_value() noexcept {
  static std::atomic<std::size_t> v{
      env_or("HCF_POOL_REFILL_BATCH", 32, 1, 4096)};
  return v;
}

inline std::atomic<std::size_t>& flush_batch_value() noexcept {
  static std::atomic<std::size_t> v{
      env_or("HCF_MEM_REMOTE_FLUSH_BATCH", 32, 1, 4096)};
  return v;
}

}  // namespace detail

inline std::size_t refill_batch() noexcept {
  return detail::refill_batch_value().load(std::memory_order_relaxed);
}
inline void set_refill_batch(std::size_t n) noexcept {
  assert(n >= 1 && n <= 4096 && "refill batch out of sane bounds");
  detail::refill_batch_value().store(n, std::memory_order_relaxed);
}

inline std::size_t remote_flush_batch() noexcept {
  return detail::flush_batch_value().load(std::memory_order_relaxed);
}
inline void set_remote_flush_batch(std::size_t n) noexcept {
  assert(n >= 1 && n <= 4096 && "remote flush batch out of sane bounds");
  detail::flush_batch_value().store(n, std::memory_order_relaxed);
}

// ---- Reclamation statistics ----------------------------------------------

struct ReclaimStats {
  util::Counter local_retires;    // retires that stayed on the local limbo
  util::Counter remote_retires;   // pre-grace retires sent to an owner pool
  util::Counter remote_flushes;   // outbound bin -> inbox CAS publishes
  util::Counter remote_drains;    // non-empty inbox drains by owners
  util::Counter drained_blocks;   // blocks moved out of inboxes
  util::Counter batches_sealed;   // epoch-stamped limbo batches created
  util::Counter pool_refills;     // arena refills (free list ran dry)
};

inline ReclaimStats& reclaim_stats() noexcept {
  static ReclaimStats s;
  return s;
}

// Plain-value snapshot for measurement intervals (harness/driver.hpp).
struct ReclaimSnapshot {
  std::uint64_t local_retires = 0;
  std::uint64_t remote_retires = 0;
  std::uint64_t remote_flushes = 0;
  std::uint64_t remote_drains = 0;
  std::uint64_t drained_blocks = 0;
  std::uint64_t batches_sealed = 0;
  std::uint64_t pool_refills = 0;

  static ReclaimSnapshot capture() noexcept {
    const ReclaimStats& s = reclaim_stats();
    ReclaimSnapshot snap;
    snap.local_retires = s.local_retires.total();
    snap.remote_retires = s.remote_retires.total();
    snap.remote_flushes = s.remote_flushes.total();
    snap.remote_drains = s.remote_drains.total();
    snap.drained_blocks = s.drained_blocks.total();
    snap.batches_sealed = s.batches_sealed.total();
    snap.pool_refills = s.pool_refills.total();
    return snap;
  }

  ReclaimSnapshot delta_since(const ReclaimSnapshot& base) const noexcept {
    ReclaimSnapshot d;
    d.local_retires = local_retires - base.local_retires;
    d.remote_retires = remote_retires - base.remote_retires;
    d.remote_flushes = remote_flushes - base.remote_flushes;
    d.remote_drains = remote_drains - base.remote_drains;
    d.drained_blocks = drained_blocks - base.drained_blocks;
    d.batches_sealed = batches_sealed - base.batches_sealed;
    d.pool_refills = pool_refills - base.pool_refills;
    return d;
  }
};

// ---- In-transaction probe -------------------------------------------------
// The simulator registers a probe at startup (htm.cpp) so the pool can
// refuse to drain inside a transaction body without mem/ depending on
// sim_htm/. A null probe (substrate-free unit tests) means "never in txn".

namespace detail {

inline std::atomic<bool (*)()>& in_txn_probe() noexcept {
  static std::atomic<bool (*)()> probe{nullptr};
  return probe;
}

inline bool in_transaction() noexcept {
  bool (*p)() = in_txn_probe().load(std::memory_order_acquire);
  return p != nullptr && p();
}

}  // namespace detail

inline void set_in_txn_probe(bool (*probe)()) noexcept {
  detail::in_txn_probe().store(probe, std::memory_order_release);
}

// ---- Deferred-absorb hook -------------------------------------------------
// ebr.hpp registers a hook that absorbs this thread's deferred inbox chain
// into its EBR limbo. The allocation slow path calls it instead of the
// requeueing drain: a thread whose nodes are all retired remotely (e.g. a
// client whose combiner frees on its behalf) never crosses the local
// retire-count threshold, so without this hand-off its deferred traffic
// would circulate in the inbox forever while the arena grows. A null hook
// (pool-only unit tests) falls back to drain_inbox(false).

namespace detail {

inline std::atomic<void (*)()>& absorb_hook() noexcept {
  static std::atomic<void (*)()> hook{nullptr};
  return hook;
}

}  // namespace detail

inline void set_deferred_absorb_hook(void (*hook)()) noexcept {
  detail::absorb_hook().store(hook, std::memory_order_release);
}

// ---- Backing arena --------------------------------------------------------
// One process-wide chunk allocator. Refills hand out `refill_batch()`
// blocks at a time: first from the central free lists (blocks recovered
// from exited threads' pools by the shutdown drain), then by carving fresh
// chunk memory. Chunks are never returned individually — the arena owns
// them until process exit, which is what makes un-drained queue traffic
// from dead threads memory-safe (parked, not leaked).

class Arena {
 public:
  static Arena& instance() noexcept {
    // Intentionally leaked: thread-local destructors (outbound bins, limbo
    // lists) may still route blocks here after static destruction begins.
    static Arena* a = new Arena;
    return *a;
  }

  // Pops up to `batch` blocks of class `cls` for pool slot `owner`,
  // returned as a header-linked chain (null-terminated). Every block's
  // header is (re)stamped with the new owner.
  BlockHeader* refill(std::uint8_t cls, std::size_t owner,
                      std::size_t batch) {
    assert(cls < kNumClasses);
    const std::size_t stride = detail::block_stride(cls);
    BlockHeader* chain = nullptr;
    sync::SpinGuard lk(lock_);
    std::size_t got = 0;
    while (got < batch && central_[cls] != nullptr) {
      BlockHeader* h = central_[cls];
      central_[cls] = h->link;
      h->set(owner, cls, 0);
      h->link = chain;
      chain = h;
      ++got;
    }
    while (got < batch) {
      if (bump_ + stride > chunk_end_) new_chunk(stride);
      auto* h = reinterpret_cast<BlockHeader*>(bump_);
      bump_ += stride;
      h->set(owner, cls, 0);
      h->link = chain;
      chain = h;
      ++got;
    }
    return chain;
  }

  // Returns a header-linked chain of already-destroyed blocks to the
  // central lists (shutdown drain recovering a dead pool's traffic).
  // Oversize blocks go back to the system allocator.
  void take_back(BlockHeader* chain) {
    sync::SpinGuard lk(lock_);
    while (chain != nullptr) {
      BlockHeader* next = chain->link;
      if (chain->size_class() == kOversizeClass) {
        ::operator delete(chain);
      } else {
        const std::uint8_t cls = chain->size_class();
        chain->link = central_[cls];
        central_[cls] = chain;
      }
      chain = next;
    }
  }

 private:
  static constexpr std::size_t kChunkSize = 64 * 1024;

  Arena() = default;

  void new_chunk(std::size_t min_bytes) REQUIRES(lock_) {
    const std::size_t size = min_bytes > kChunkSize ? min_bytes : kChunkSize;
    char* chunk = static_cast<char*>(::operator new(size));
    chunks_.push_back(chunk);
    bump_ = chunk;
    chunk_end_ = chunk + size;
  }

  sync::SpinLock lock_;
  std::vector<char*> chunks_ GUARDED_BY(lock_);
  char* bump_ GUARDED_BY(lock_) = nullptr;
  char* chunk_end_ GUARDED_BY(lock_) = nullptr;
  BlockHeader* central_[kNumClasses] GUARDED_BY(lock_) = {};
};

// ---- Per-thread pool ------------------------------------------------------

// Result of draining a pool inbox at collect time: the deferred (pre-grace)
// chain the caller must route through its EBR limbo. Immediate blocks have
// already been pushed to the pool's free lists.
struct InboxDrain {
  BlockHeader* deferred = nullptr;
  std::size_t deferred_count = 0;
  std::size_t freed = 0;
};

class Pool {
 public:
  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  RemoteQueue& inbox() noexcept { return inbox_; }

  // Owner-only: pops a block of class `cls`, refilling (and, outside
  // transactions, draining the inbox) when the free list runs dry.
  BlockHeader* allocate(std::uint8_t cls, std::size_t self) {
    assert(cls < kNumClasses);
    if (free_[cls] == nullptr) refill_slow(cls, self);
    BlockHeader* h = free_[cls];
    free_[cls] = h->link;
    --free_count_[cls];
    h->set(self, cls, 0);
    return h;
  }

  // Owner-only: returns a block to its free list.
  void free_local(BlockHeader* h) noexcept {
    const std::uint8_t cls = h->size_class();
    assert(cls < kNumClasses);
    h->link = free_[cls];
    free_[cls] = h;
    ++free_count_[cls];
  }

  // Owner-only (or shutdown-drain exclusive): empties the inbox. Immediate
  // blocks join the free lists; the deferred chain is returned so the
  // caller can stamp it into an EBR limbo batch. When `accept_deferred` is
  // false (refill path — no limbo at hand), deferred blocks are pushed
  // back onto the inbox untouched.
  InboxDrain drain_inbox(bool accept_deferred) {
    InboxDrain r;
    BlockHeader* chain = inbox_.take_all();
    if (chain == nullptr) return r;
    BlockHeader* requeue_head = nullptr;
    BlockHeader* requeue_tail = nullptr;
    std::size_t requeued = 0;
    while (chain != nullptr) {
      BlockHeader* next = chain->link;
      if ((chain->flags() & kFlagDeferred) != 0) {
        if (accept_deferred) {
          chain->link = r.deferred;
          r.deferred = chain;
          ++r.deferred_count;
        } else {
          chain->link = requeue_head;
          if (requeue_head == nullptr) requeue_tail = chain;
          requeue_head = chain;
          ++requeued;
        }
      } else if (chain->size_class() == kOversizeClass) {
        ::operator delete(chain);
        ++r.freed;
      } else {
        free_local(chain);
        ++r.freed;
      }
      chain = next;
    }
    if (requeue_head != nullptr) {
      inbox_.push_chain(requeue_head, requeue_tail, requeued);
    }
    const std::size_t moved = r.freed + r.deferred_count;
    if (moved > 0) {
      reclaim_stats().remote_drains.add();
      reclaim_stats().drained_blocks.add(moved);
      telemetry::remote_drain(moved);
    }
    return r;
  }

  std::size_t free_count(std::uint8_t cls) const noexcept {
    return free_count_[cls];
  }

 private:
  void refill_slow(std::uint8_t cls, std::size_t self) {
    // Opportunistic drain first: remote frees are cheaper than carving new
    // memory, and this is the owner's natural back-pressure point. Never
    // inside a transaction body (header comment). Prefer the EBR absorb
    // hook so deferred chains land in the limbo instead of requeueing.
    if (!detail::in_transaction()) {
      void (*absorb)() = detail::absorb_hook().load(std::memory_order_acquire);
      if (absorb != nullptr) {
        absorb();
      } else {
        drain_inbox(/*accept_deferred=*/false);
      }
    }
    if (free_[cls] != nullptr) return;
    BlockHeader* chain = Arena::instance().refill(cls, self, refill_batch());
    std::size_t n = 0;
    while (chain != nullptr) {
      BlockHeader* next = chain->link;
      free_local(chain);
      ++n;
      chain = next;
    }
    reclaim_stats().pool_refills.add();
    (void)n;
  }

  BlockHeader* free_[kNumClasses] = {};
  std::size_t free_count_[kNumClasses] = {};
  RemoteQueue inbox_;
};

namespace detail {

// Pools are trivially destructible by design: the array outlives every
// thread-local destructor that might still push into an inbox.
inline Pool& pool_for_slot(std::size_t slot) noexcept {
  static Pool* pools = new Pool[util::kMaxThreads];
  return pools[slot];
}

inline Pool& this_pool() noexcept {
  return pool_for_slot(util::this_thread_id());
}

// ---- Outbound bins --------------------------------------------------------
// Producer-side batching: one bin per destination pool slot, flushed with a
// single inbox CAS when full, at epoch-collect time, at combining-session
// boundaries, and at thread exit.

struct OutboundBins {
  struct Bin {
    BlockHeader* head = nullptr;
    BlockHeader* tail = nullptr;
    std::size_t n = 0;
    // On the dirty list (stays set across a capacity flush so the list
    // holds each owner at most once and can never overflow).
    bool listed = false;
  };
  Bin bins[util::kMaxThreads];
  std::uint16_t dirty[util::kMaxThreads];
  std::size_t num_dirty = 0;

  void add(std::size_t owner, BlockHeader* h) {
    Bin& b = bins[owner];
    h->link = b.head;
    if (b.head == nullptr) b.tail = h;
    if (!b.listed) {
      b.listed = true;
      dirty[num_dirty++] = static_cast<std::uint16_t>(owner);
    }
    b.head = h;
    if (++b.n >= remote_flush_batch()) flush_bin(owner);
  }

  void flush_bin(std::size_t owner) {
    Bin& b = bins[owner];
    if (b.head == nullptr) return;
    pool_for_slot(owner).inbox().push_chain(b.head, b.tail, b.n);
    reclaim_stats().remote_flushes.add();
    telemetry::remote_retire_flush(owner, b.n);
    b.head = nullptr;
    b.tail = nullptr;
    b.n = 0;
  }

  void flush_all() {
    for (std::size_t i = 0; i < num_dirty; ++i) {
      flush_bin(dirty[i]);
      bins[dirty[i]].listed = false;
    }
    num_dirty = 0;
  }

  ~OutboundBins() { flush_all(); }
};

inline OutboundBins& outbound() noexcept {
  thread_local OutboundBins bins;
  return bins;
}

}  // namespace detail

// Flushes this thread's pending outbound remote frees/retires. Called at
// epoch-collect time, at combining-session boundaries (core/), and from
// thread-exit teardown. Must not run inside a transaction body.
inline void flush_remote_frees() noexcept {
  detail::outbound().flush_all();
}

// Routes an already-destroyed block back to memory: the owner's free list
// when we own it, the owner's inbox (batched) otherwise.
inline void free_block(BlockHeader* h) {
  const std::size_t self = util::this_thread_id();
  if (h->owner() == self) {
    if (h->size_class() == kOversizeClass) {
      ::operator delete(h);
    } else {
      detail::this_pool().free_local(h);
    }
  } else {
    h->set_flags(0);
    detail::outbound().add(h->owner(), h);
  }
}

// Pre-grace retirement of a foreign block: the owner will stamp it into an
// epoch batch when it drains. Object bytes stay untouched for concurrent
// doomed readers; only the header travels.
inline void retire_block_remote(BlockHeader* h) {
  assert(h->owner() != util::this_thread_id());
  h->set_flags(kFlagDeferred);
  detail::outbound().add(h->owner(), h);
  reclaim_stats().remote_retires.add();
}

// Approximate inbox depth for a pool slot (tests and the shutdown drain's
// convergence check).
inline std::size_t remote_queue_depth(std::size_t slot) noexcept {
  return detail::pool_for_slot(slot).inbox().approx_depth();
}

}  // namespace hcf::mem
