// Operation descriptors for the skip-list priority queue (the paper's §1
// motivating example).
//
// Configuration follows the paper's discussion exactly:
//
//   * Insert (class 0, array 0) — inserts on random keys rarely conflict;
//     they run with HTM attempts in all of the first three phases.
//   * RemoveMin (class 1, array 1) — all RemoveMins conflict at the head;
//     they skip TryPrivate/TryVisible HTM attempts entirely ("skip HTM
//     attempts in the first two phases ... and go directly to the combining
//     phases, after announcing the operation in TryVisible") and combine
//     through SkipListPq::remove_min_n.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <optional>
#include <span>
#include <vector>

#include "core/hcf_engine.hpp"
#include "util/backoff.hpp"
#include "core/operation.hpp"
#include "ds/skiplist_pq.hpp"

namespace hcf::adapters {

inline constexpr int kPqInsertClass = 0;
inline constexpr int kPqRemoveMinClass = 1;
inline constexpr std::size_t kPqMaxBatch = 16;

template <htm::detail::TxValue K>
class PqOpBase : public core::Operation<ds::SkipListPq<K>> {
 public:
  using Pq = ds::SkipListPq<K>;
  using Op = core::Operation<Pq>;

  enum class Kind : std::uint8_t { Insert, RemoveMin };

  PqOpBase(Kind kind, int class_id) : Op(class_id), kind_(kind) {}

  Kind kind() const noexcept { return kind_; }

  // Synthetic critical-section work; a combined RemoveMin batch pays it
  // once (one traversal removes the whole batch), Inserts pay per op.
  void set_work(std::uint32_t spins) noexcept { work_ = spins; }

  // Batches RemoveMins through remove_min_n, and *eliminates* pending
  // Inserts against RemoveMins when the insert's key is no larger than the
  // queue's current minimum: the RemoveMin is served the insert's key
  // directly and neither operation touches the skip list (the linearization
  // puts each consumed Insert immediately before the RemoveMin it serves,
  // and the surviving Inserts after the batch's RemoveMins).
  // Engine-side pre-sort (DESIGN.md §9.2) puts RemoveMins before Inserts,
  // so the partition below degenerates to a verifying scan with no swaps.
  bool combine_keyed() const override { return true; }
  std::uint64_t combine_key() const override {
    return kind_ == Kind::RemoveMin ? 0 : 1;
  }

  std::size_t run_multi(Pq& ds, std::span<Op*> ops) override {
    auto* begin = ops.data();
    auto* end = begin + ops.size();
    auto* mid = std::partition(begin, end, [](Op* o) {
      return static_cast<PqOpBase*>(o)->kind() == Kind::RemoveMin;
    });
    const std::size_t num_removes = static_cast<std::size_t>(mid - begin);
    const std::size_t k = std::min(ops.size(), kPqMaxBatch);
    const std::size_t remove_count = std::min(num_removes, k);
    const std::size_t insert_count = k - remove_count;

    K insert_keys[kPqMaxBatch];
    for (std::size_t i = 0; i < insert_count; ++i) {
      insert_keys[i] =
          static_cast<PqOpBase*>(ops[remove_count + i])->key_;
    }
    std::sort(insert_keys, insert_keys + insert_count);

    std::size_t next_insert = 0;
    if (remove_count > 0) {
      const auto queue_min = ds.peek_min();
      const bool eliminable =
          insert_count > 0 &&
          (!queue_min.has_value() || insert_keys[0] <= *queue_min);
      if (!eliminable) {
        // Fast path: one traversal removes the whole batch.
        K keys[kPqMaxBatch];
        const std::size_t got =
            ds.remove_min_n(std::span<K>(keys, remove_count));
        for (std::size_t i = 0; i < remove_count; ++i) {
          auto* op = static_cast<PqOpBase*>(ops[i]);
          op->result_ = i < got ? std::optional<K>(keys[i]) : std::nullopt;
        }
      } else {
        // Merge the sorted pending inserts with the queue's ascending
        // minimums; each RemoveMin takes whichever is smaller.
        for (std::size_t i = 0; i < remove_count; ++i) {
          auto* op = static_cast<PqOpBase*>(ops[i]);
          const auto qmin = ds.peek_min();
          if (next_insert < insert_count &&
              (!qmin.has_value() || insert_keys[next_insert] <= *qmin)) {
            op->result_ = insert_keys[next_insert++];
            eliminations_.fetch_add(1, std::memory_order_relaxed);
          } else if (qmin.has_value()) {
            op->result_ = ds.remove_min();
          } else {
            op->result_ = std::nullopt;
          }
        }
      }
      util::spin_for(work_);
    }
    // Surviving inserts take effect after the batch's RemoveMins.
    for (std::size_t j = next_insert; j < insert_count; ++j) {
      ds.insert(insert_keys[j]);
    }
    if (insert_count > next_insert) util::spin_for(work_);
    return k;
  }

  static std::uint64_t eliminations() noexcept {
    return eliminations_.load(std::memory_order_relaxed);
  }
  static void reset_eliminations() noexcept { eliminations_ = 0; }

 protected:
  Kind kind_;
  K key_{};
  std::uint32_t work_ = 0;
  std::optional<K> result_;
  static inline std::atomic<std::uint64_t> eliminations_{0};
};

template <htm::detail::TxValue K>
class PqInsertOp final : public PqOpBase<K> {
 public:
  using Base = PqOpBase<K>;
  PqInsertOp() : Base(Base::Kind::Insert, kPqInsertClass) {}

  void set(K key) noexcept { this->key_ = key; }

  void run_seq(typename Base::Pq& ds) override {
    ds.insert(this->key_);
    util::spin_for(this->work_);
  }
};

template <htm::detail::TxValue K>
class PqRemoveMinOp final : public PqOpBase<K> {
 public:
  using Base = PqOpBase<K>;
  PqRemoveMinOp() : Base(Base::Kind::RemoveMin, kPqRemoveMinClass) {}

  void run_seq(typename Base::Pq& ds) override {
    this->result_ = ds.remove_min();
    util::spin_for(this->work_);
  }

  const std::optional<K>& result() const noexcept { return this->result_; }
};

// The paper's priority-queue configuration.
inline std::vector<core::ClassConfig> pq_paper_config() {
  return {
      core::ClassConfig{0, core::PhasePolicy::paper_default()},
      core::ClassConfig{1, core::PhasePolicy::combine_first()},
  };
}

inline constexpr std::size_t kPqNumArrays = 2;

}  // namespace hcf::adapters
