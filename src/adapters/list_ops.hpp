// Operation descriptors for the sorted-list set. A combiner sorts the
// selected batch by key and applies it in a single list traversal
// (SortedList::apply_sorted_batch) — k combined operations cost one
// O(n + k) pass instead of k O(n) passes, the strongest asymptotic
// combining win of any structure in this library.
#pragma once

#include <algorithm>
#include <cassert>
#include <span>
#include <vector>

#include "core/hcf_engine.hpp"
#include "core/operation.hpp"
#include "ds/sorted_list.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace hcf::adapters {

inline constexpr std::size_t kListMaxBatch = 16;

template <htm::detail::TxValue K>
class ListOpBase : public core::Operation<ds::SortedList<K>> {
 public:
  using List = ds::SortedList<K>;
  using Op = core::Operation<List>;
  using BatchOp = typename List::BatchOp;
  using BatchOpKind = typename List::BatchOpKind;

  enum class Kind : std::uint8_t { Contains, Insert, Remove };

  explicit ListOpBase(Kind kind) : Op(/*class_id=*/0), kind_(kind) {}

  Kind kind() const noexcept { return kind_; }
  K key() const noexcept { return key_; }
  void set(K key) noexcept { key_ = key; }
  bool result() const noexcept { return bool_result_; }
  void set_work(std::uint32_t spins) noexcept { work_ = spins; }

  // Opt-in hashed-key routing for the sharded meta-engine: the same
  // SplitMix64 finalizer the hash-table ops shard with, so ops on one key
  // always agree on a shard and each shard is an independent sorted list
  // over its slice of key space. Off by default — a flat engine keeps
  // every op on shard 0.
  void set_sharded(bool on) noexcept { sharded_ = on; }
  std::uint64_t shard_key() const noexcept override {
    return sharded_ ? util::mix64(static_cast<std::uint64_t>(key_)) : 0;
  }

  void run_seq(List& ds) override {
    switch (kind_) {
      case Kind::Contains: bool_result_ = ds.contains(key_); break;
      case Kind::Insert: bool_result_ = ds.insert(key_); break;
      case Kind::Remove: bool_result_ = ds.remove(key_); break;
    }
    util::spin_for(work_);
  }

  std::size_t run_multi(List& ds, std::span<Op*> ops) override {
    const std::size_t k = std::min(ops.size(), kListMaxBatch);
    std::sort(ops.begin(), ops.begin() + static_cast<std::ptrdiff_t>(k),
              [](Op* a, Op* b) {
                return static_cast<ListOpBase*>(a)->key_ <
                       static_cast<ListOpBase*>(b)->key_;
              });
    BatchOp batch[kListMaxBatch];
    for (std::size_t i = 0; i < k; ++i) {
      auto* op = static_cast<ListOpBase*>(ops[i]);
      batch[i].key = op->key_;
      batch[i].kind = to_batch_kind(op->kind_);
      batch[i].result = false;
    }
    ds.apply_sorted_batch(std::span<BatchOp>(batch, k));
    for (std::size_t i = 0; i < k; ++i) {
      static_cast<ListOpBase*>(ops[i])->bool_result_ = batch[i].result;
    }
    util::spin_for(work_);  // one traversal's worth of extra work
    return k;
  }

 private:
  static BatchOpKind to_batch_kind(Kind kind) noexcept {
    switch (kind) {
      case Kind::Contains: return BatchOpKind::Contains;
      case Kind::Insert: return BatchOpKind::Insert;
      case Kind::Remove: return BatchOpKind::Remove;
    }
    return BatchOpKind::Contains;
  }

  Kind kind_;
  K key_{};
  bool bool_result_ = false;
  std::uint32_t work_ = 0;
  bool sharded_ = false;
};

template <htm::detail::TxValue K>
class ListContainsOp final : public ListOpBase<K> {
 public:
  ListContainsOp() : ListOpBase<K>(ListOpBase<K>::Kind::Contains) {}
};

template <htm::detail::TxValue K>
class ListInsertOp final : public ListOpBase<K> {
 public:
  ListInsertOp() : ListOpBase<K>(ListOpBase<K>::Kind::Insert) {}
};

template <htm::detail::TxValue K>
class ListRemoveOp final : public ListOpBase<K> {
 public:
  ListRemoveOp() : ListOpBase<K>(ListOpBase<K>::Kind::Remove) {}
};

// Long traversals conflict readily and benefit from combining; use the
// default four-phase policy on one array.
inline std::vector<core::ClassConfig> list_paper_config() {
  return {core::ClassConfig{0, core::PhasePolicy::paper_default()}};
}

}  // namespace hcf::adapters
