// Operation descriptors for the AVL-tree set (paper §3.4).
//
// One operation class and one publication array. The paper's HCF variant:
//
//   * should_help selects only pending operations whose key falls in the
//     same (left or right) subtree of the root as the combiner's own
//     operation, using the tree's look-aside root key — so a combiner on
//     one subtree runs concurrently with operations on the other;
//   * run_multi sorts the selected operations by key, then combines and
//     eliminates per set semantics: one lookup per distinct key, each op's
//     result computed against the evolving local state, and at most one
//     physical mutation per key reconciles the tree.
//
// AvlNoCombineMixin provides the ablation variant (§3.4: "does not use
// combining and elimination... applies all announced operations one after
// another").
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "core/hcf_engine.hpp"
#include "util/backoff.hpp"
#include "core/operation.hpp"
#include "ds/avl_tree.hpp"
#include "util/rng.hpp"

namespace hcf::adapters {

inline constexpr std::size_t kAvlMaxBatch = 16;

template <htm::detail::TxValue K>
class AvlOpBase : public core::Operation<ds::AvlTree<K>> {
 public:
  using Tree = ds::AvlTree<K>;
  using Op = core::Operation<Tree>;

  enum class Kind : std::uint8_t { Contains, Insert, Remove };

  explicit AvlOpBase(Kind kind) : Op(/*class_id=*/0), kind_(kind) {}

  Kind kind() const noexcept { return kind_; }
  K key() const noexcept { return key_; }
  void set(K key) noexcept { key_ = key; }
  bool result() const noexcept { return bool_result_; }

  // Synthetic per-operation critical-section work (spin iterations), used
  // by benchmarks to widen transaction conflict windows on small machines
  // (see EXPERIMENTS.md, "contention amplification"). Combined execution
  // pays the work once per key group — elimination saves the work, which
  // is the paper's premise.
  void set_work(std::uint32_t spins) noexcept { work_ = spins; }

  // Opt-in hashed-key routing for the sharded meta-engine: each shard
  // becomes an independent AVL tree over its hashed slice of key space.
  // Off by default — a flat engine keeps every op on shard 0.
  void set_sharded(bool on) noexcept { sharded_ = on; }
  std::uint64_t shard_key() const noexcept override {
    return sharded_ ? util::mix64(static_cast<std::uint64_t>(key_)) : 0;
  }

  void run_seq(Tree& ds) override {
    switch (kind_) {
      case Kind::Contains: bool_result_ = ds.contains(key_); break;
      case Kind::Insert: bool_result_ = ds.insert(key_); break;
      case Kind::Remove: bool_result_ = ds.remove(key_); break;
    }
    util::spin_for(work_);
  }

  // Same-subtree selection using the look-aside root key. The hint is read
  // non-transactionally and may be stale — a mis-selection only affects
  // which ops get batched, never correctness.
  bool should_help(const Op& candidate) const override {
    const auto& cand = static_cast<const AvlOpBase&>(candidate);
    if (tree_ == nullptr) return true;
    K root_key{};
    if (!tree_->root_key_hint(&root_key)) return true;  // tiny tree: combine all
    return (key_ < root_key) == (cand.key_ < root_key);
  }

  // The engines pre-sort selected batches by this key (DESIGN.md §9.2),
  // so run_multi usually finds its key groups already contiguous. The
  // mapping is order-preserving: flipping the sign bit of the same-width
  // unsigned image puts negative keys below positive ones.
  bool combine_keyed() const override { return true; }
  std::uint64_t combine_key() const override {
    using U = std::make_unsigned_t<K>;
    std::uint64_t u = static_cast<std::uint64_t>(static_cast<U>(key_));
    if constexpr (std::is_signed_v<K>) {
      u ^= std::uint64_t{1} << (sizeof(K) * 8 - 1);
    }
    return u;
  }

  // Sorted, combining + eliminating batch application. Key order is what
  // elimination needs; within a key group any order is a valid
  // linearization, so the engine's key-only pre-sort suffices and the
  // local sort only runs for callers that bypassed it.
  std::size_t run_multi(Tree& ds, std::span<Op*> ops) override {
    const std::size_t k = std::min(ops.size(), kAvlMaxBatch);
    const auto by_key = [](Op* a, Op* b) {
      return static_cast<AvlOpBase*>(a)->key_ <
             static_cast<AvlOpBase*>(b)->key_;
    };
    if (!std::is_sorted(ops.begin(),
                        ops.begin() + static_cast<std::ptrdiff_t>(k),
                        by_key)) {
      std::sort(ops.begin(), ops.begin() + static_cast<std::ptrdiff_t>(k),
                by_key);
    }
    std::size_t i = 0;
    while (i < k) {
      std::size_t j = i;
      const K key = static_cast<AvlOpBase*>(ops[i])->key_;
      while (j < k && static_cast<AvlOpBase*>(ops[j])->key_ == key) ++j;
      apply_key_group(ds, key,
                      std::span<Op*>(ops.data() + i, j - i));
      util::spin_for(work_);  // one op's worth of work per combined group
      i = j;
    }
    return k;
  }

  // Engines do not know about trees; the workload driver points each op at
  // its tree so should_help can consult the root hint.
  void bind_tree(const Tree* tree) noexcept { tree_ = tree; }

 private:
  // One lookup, then a local state machine over the group, then at most one
  // physical mutation: Insert/Remove pairs eliminate each other, duplicate
  // Inserts (or Removes) collapse to the first.
  static void apply_key_group(Tree& ds, K key, std::span<Op*> group) {
    const bool initially_present = ds.contains(key);
    bool present = initially_present;
    for (Op* op : group) {
      auto* o = static_cast<AvlOpBase*>(op);
      switch (o->kind_) {
        case Kind::Contains:
          o->bool_result_ = present;
          break;
        case Kind::Insert:
          o->bool_result_ = !present;
          present = true;
          break;
        case Kind::Remove:
          o->bool_result_ = present;
          present = false;
          break;
      }
    }
    if (present != initially_present) {
      if (present) {
        ds.insert(key);
      } else {
        ds.remove(key);
      }
    }
  }

  Kind kind_;
  K key_{};
  bool bool_result_ = false;
  std::uint32_t work_ = 0;
  bool sharded_ = false;
  const Tree* tree_ = nullptr;
};

template <htm::detail::TxValue K>
class AvlContainsOp : public AvlOpBase<K> {
 public:
  AvlContainsOp() : AvlOpBase<K>(AvlOpBase<K>::Kind::Contains) {}
};

template <htm::detail::TxValue K>
class AvlInsertOp : public AvlOpBase<K> {
 public:
  AvlInsertOp() : AvlOpBase<K>(AvlOpBase<K>::Kind::Insert) {}
};

template <htm::detail::TxValue K>
class AvlRemoveOp : public AvlOpBase<K> {
 public:
  AvlRemoveOp() : AvlOpBase<K>(AvlOpBase<K>::Kind::Remove) {}
};

// Ablation mixin: keep selection but apply ops one-by-one, unsorted and
// without elimination (§3.4's "alternative variant").
template <htm::detail::TxValue K>
class AvlNoCombine {
 public:
  template <typename BaseOp>
  class Wrap final : public BaseOp {
   public:
    using Tree = typename BaseOp::Tree;
    using Op = core::Operation<Tree>;
    using BaseOp::BaseOp;
    std::size_t run_multi(Tree& ds, std::span<Op*> ops) override {
      const std::size_t k = std::min(ops.size(), kAvlMaxBatch);
      for (std::size_t i = 0; i < k; ++i) ops[i]->run_seq(ds);
      return k;
    }
  };
  using Contains = Wrap<AvlContainsOp<K>>;
  using Insert = Wrap<AvlInsertOp<K>>;
  using Remove = Wrap<AvlRemoveOp<K>>;
};

// The paper's AVL configuration: one class, one array, all four phases.
inline std::vector<core::ClassConfig> avl_paper_config() {
  return {core::ClassConfig{0, core::PhasePolicy::paper_default()}};
}

}  // namespace hcf::adapters
