// Operation descriptors for the deque (paper §2.4's two-ends example).
//
// Left-end operations (class 0, array 0) and right-end operations
// (class 1, array 1) get separate publication arrays with separate
// combiners — "appealing when it is known a-priori which operations are
// expected to conflict with each other, e.g., operations on different ends
// of a double-ended queue". This pairing is also the natural fit for the
// single-combiner engine variant.
//
// run_multi batches a maximal same-kind prefix: consecutive pushes splice
// one chain (push_n_*), consecutive pops unlink one segment (pop_n_*).
#pragma once

#include <algorithm>
#include <cassert>
#include <optional>
#include <span>
#include <vector>

#include "core/hcf_engine.hpp"
#include "core/operation.hpp"
#include "ds/deque.hpp"

namespace hcf::adapters {

inline constexpr int kDequeLeftClass = 0;
inline constexpr int kDequeRightClass = 1;
inline constexpr std::size_t kDequeMaxBatch = 16;

template <htm::detail::TxValue T>
class DequeOpBase : public core::Operation<ds::Deque<T>> {
 public:
  using Dq = ds::Deque<T>;
  using Op = core::Operation<Dq>;

  enum class Kind : std::uint8_t { PushLeft, PopLeft, PushRight, PopRight };

  DequeOpBase(Kind kind, int class_id) : Op(class_id), kind_(kind) {}

  Kind kind() const noexcept { return kind_; }

  // Parallel combining is intentionally off here (delegate_keyed stays at
  // its false default): the two ends already run under *separate*
  // publication arrays with separate combiners, so the disjoint work that
  // delegation would carve out is never co-selected into one session in
  // the first place — each end's batch is a single end-pointer hot spot.

  std::size_t run_multi(Dq& ds, std::span<Op*> ops) override {
    // Group same-kind ops to the front, then batch the prefix.
    const Kind lead = static_cast<DequeOpBase*>(ops[0])->kind();
    auto* begin = ops.data();
    auto* end = begin + ops.size();
    std::partition(begin, end, [lead](Op* o) {
      return static_cast<DequeOpBase*>(o)->kind() == lead;
    });
    std::size_t k = 0;
    while (k < ops.size() && k < kDequeMaxBatch &&
           static_cast<DequeOpBase*>(ops[k])->kind() == lead) {
      ++k;
    }
    assert(k >= 1);

    switch (lead) {
      case Kind::PushLeft:
      case Kind::PushRight: {
        T values[kDequeMaxBatch];
        for (std::size_t i = 0; i < k; ++i) {
          values[i] = static_cast<DequeOpBase*>(ops[i])->value_;
        }
        if (lead == Kind::PushLeft) {
          ds.push_n_left(std::span<const T>(values, k));
        } else {
          ds.push_n_right(std::span<const T>(values, k));
        }
        break;
      }
      case Kind::PopLeft:
      case Kind::PopRight: {
        T values[kDequeMaxBatch];
        const std::size_t got =
            lead == Kind::PopLeft
                ? ds.pop_n_left(std::span<T>(values, k))
                : ds.pop_n_right(std::span<T>(values, k));
        for (std::size_t i = 0; i < k; ++i) {
          auto* op = static_cast<DequeOpBase*>(ops[i]);
          op->result_ = i < got ? std::optional<T>(values[i]) : std::nullopt;
        }
        break;
      }
    }
    return k;
  }

 protected:
  Kind kind_;
  T value_{};
  std::optional<T> result_;
};

template <htm::detail::TxValue T>
class PushLeftOp final : public DequeOpBase<T> {
 public:
  using Base = DequeOpBase<T>;
  PushLeftOp() : Base(Base::Kind::PushLeft, kDequeLeftClass) {}
  void set(T value) noexcept { this->value_ = value; }
  void run_seq(typename Base::Dq& ds) override { ds.push_left(this->value_); }
};

template <htm::detail::TxValue T>
class PopLeftOp final : public DequeOpBase<T> {
 public:
  using Base = DequeOpBase<T>;
  PopLeftOp() : Base(Base::Kind::PopLeft, kDequeLeftClass) {}
  void run_seq(typename Base::Dq& ds) override {
    this->result_ = ds.pop_left();
  }
  const std::optional<T>& result() const noexcept { return this->result_; }
};

template <htm::detail::TxValue T>
class PushRightOp final : public DequeOpBase<T> {
 public:
  using Base = DequeOpBase<T>;
  PushRightOp() : Base(Base::Kind::PushRight, kDequeRightClass) {}
  void set(T value) noexcept { this->value_ = value; }
  void run_seq(typename Base::Dq& ds) override {
    ds.push_right(this->value_);
  }
};

template <htm::detail::TxValue T>
class PopRightOp final : public DequeOpBase<T> {
 public:
  using Base = DequeOpBase<T>;
  PopRightOp() : Base(Base::Kind::PopRight, kDequeRightClass) {}
  void run_seq(typename Base::Dq& ds) override {
    this->result_ = ds.pop_right();
  }
  const std::optional<T>& result() const noexcept { return this->result_; }
};

// Per-end publication arrays, both with the default four-phase policy.
inline std::vector<core::ClassConfig> deque_paper_config() {
  return {
      core::ClassConfig{0, core::PhasePolicy::paper_default()},
      core::ClassConfig{1, core::PhasePolicy::paper_default()},
  };
}

inline constexpr std::size_t kDequeNumArrays = 2;

}  // namespace hcf::adapters
