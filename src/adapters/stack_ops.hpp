// Operation descriptors for the stack, with *elimination*: a combiner that
// holds both a Push(v) and a Pop can satisfy the Pop with v directly and
// discard both operations without touching the stack at all (linearizing
// the pair adjacently — the elimination optimization FC popularized and
// the paper lists as one of the combining benefits).
//
// Leftover pushes chain into one push_n (single top write); leftover pops
// batch into one pop_n.
#pragma once

#include <algorithm>
#include <cassert>
#include <optional>
#include <span>
#include <vector>

#include "core/hcf_engine.hpp"
#include "core/operation.hpp"
#include "ds/stack.hpp"
#include "util/backoff.hpp"

namespace hcf::adapters {

inline constexpr std::size_t kStackMaxBatch = 16;

template <htm::detail::TxValue T>
class StackOpBase : public core::Operation<ds::Stack<T>> {
 public:
  using St = ds::Stack<T>;
  using Op = core::Operation<St>;

  enum class Kind : std::uint8_t { Push, Pop };

  explicit StackOpBase(Kind kind) : Op(/*class_id=*/0), kind_(kind) {}

  Kind kind() const noexcept { return kind_; }
  void set_work(std::uint32_t spins) noexcept { work_ = spins; }

  // Engine-side pre-sort (DESIGN.md §9.2) puts pushes before pops, so the
  // partition below degenerates to a verifying scan with no swaps.
  bool combine_keyed() const override { return true; }
  std::uint64_t combine_key() const override {
    return kind_ == Kind::Push ? 0 : 1;
  }

  // No parallel combining for the stack (override the delegate_keyed
  // default, which would inherit combine_keyed): splitting a batch by
  // push/pop kind would hand the delegates exactly the pairs elimination
  // wants to cancel against each other, and every surviving group still
  // hammers the one top-of-stack word — delegated groups would serialize
  // on true conflicts with nothing disjoint to gain.
  bool delegate_keyed() const override { return false; }

  std::size_t run_multi(St& ds, std::span<Op*> ops) override {
    // Partition pushes to the front.
    auto* begin = ops.data();
    auto* end = begin + ops.size();
    auto* mid = std::partition(begin, end, [](Op* o) {
      return static_cast<StackOpBase*>(o)->kind() == Kind::Push;
    });
    const auto num_push = static_cast<std::size_t>(mid - begin);
    const std::size_t k = std::min(ops.size(), kStackMaxBatch);
    const std::size_t pushes = std::min(num_push, k);
    const std::size_t pops = k - pushes;

    // Eliminate min(pushes, pops) pairs: the i-th eliminated pop returns
    // the i-th eliminated push's value; neither touches the stack.
    const std::size_t eliminated = std::min(pushes, pops);
    for (std::size_t i = 0; i < eliminated; ++i) {
      auto* push = static_cast<StackOpBase*>(ops[i]);
      auto* pop = static_cast<StackOpBase*>(ops[pushes + i]);
      pop->result_ = push->value_;
      eliminations_.fetch_add(1, std::memory_order_relaxed);
    }

    // Survivors: either extra pushes or extra pops (never both).
    if (pushes > eliminated) {
      T values[kStackMaxBatch];
      const std::size_t n = pushes - eliminated;
      for (std::size_t i = 0; i < n; ++i) {
        values[i] = static_cast<StackOpBase*>(ops[eliminated + i])->value_;
      }
      ds.push_n(std::span<const T>(values, n));
      util::spin_for(work_);
    } else if (pops > eliminated) {
      T values[kStackMaxBatch];
      const std::size_t n = pops - eliminated;
      const std::size_t got = ds.pop_n(std::span<T>(values, n));
      for (std::size_t i = 0; i < n; ++i) {
        auto* pop =
            static_cast<StackOpBase*>(ops[pushes + eliminated + i]);
        pop->result_ = i < got ? std::optional<T>(values[i]) : std::nullopt;
      }
      util::spin_for(work_);
    }
    return k;
  }

  // Global elimination counter (across all descriptors of this type would
  // be nicer per-engine; a static keeps the adapter self-contained).
  static std::uint64_t eliminations() noexcept {
    return eliminations_.load(std::memory_order_relaxed);
  }
  static void reset_eliminations() noexcept { eliminations_ = 0; }

 protected:
  Kind kind_;
  T value_{};
  std::uint32_t work_ = 0;
  std::optional<T> result_;
  static inline std::atomic<std::uint64_t> eliminations_{0};
};

template <htm::detail::TxValue T>
class StackPushOp final : public StackOpBase<T> {
 public:
  using Base = StackOpBase<T>;
  StackPushOp() : Base(Base::Kind::Push) {}

  void set(T value) noexcept { this->value_ = value; }

  void run_seq(typename Base::St& ds) override {
    ds.push(this->value_);
    util::spin_for(this->work_);
  }
};

template <htm::detail::TxValue T>
class StackPopOp final : public StackOpBase<T> {
 public:
  using Base = StackOpBase<T>;
  StackPopOp() : Base(Base::Kind::Pop) {}

  void run_seq(typename Base::St& ds) override {
    this->result_ = ds.pop();
    util::spin_for(this->work_);
  }

  const std::optional<T>& result() const noexcept { return this->result_; }
};

// Stack operations all conflict; announce immediately and combine, as the
// paper prescribes for always-conflicting classes.
inline std::vector<core::ClassConfig> stack_paper_config() {
  return {core::ClassConfig{0, core::PhasePolicy::combine_first()}};
}

}  // namespace hcf::adapters
