// Operation descriptors for the hash table (paper §3.3).
//
// Two operation classes, matching the paper's HCF configuration:
//
//   * kReadWriteClass (Find/Remove) — rarely conflict; configured TLE-like
//     (publication array 0, no announcing: failed speculation goes straight
//     under the lock).
//   * kInsertClass (Insert) — all inserts contend on the table-list head;
//     configured with all four phases (publication array 1) and combined
//     through HashTable::insert_n.
//
// The shared run_multi partitions a selected batch into inserts (combined
// into one insert_n call) and other operations (applied sequentially), so
// the same descriptor code serves HCF, FC and TLE+FC combiners.
#pragma once

#include <algorithm>
#include <cassert>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/hcf_engine.hpp"
#include "util/backoff.hpp"
#include "core/operation.hpp"
#include "ds/hash_table.hpp"
#include "util/rng.hpp"

namespace hcf::adapters {

inline constexpr int kHtReadWriteClass = 0;
inline constexpr int kHtInsertClass = 1;

// Max operations executed per run_multi call: bounds one transaction's
// write set (the paper: "adjust the number of operations executed by a
// single HW transaction").
inline constexpr std::size_t kHtMaxBatch = 16;

template <htm::detail::TxValue K, htm::detail::TxValue V>
class HtOpBase : public core::Operation<ds::HashTable<K, V>> {
 public:
  using Table = ds::HashTable<K, V>;
  using Op = core::Operation<Table>;

  enum class Kind : std::uint8_t { Find, Insert, Remove };

  HtOpBase(Kind kind, int class_id) : Op(class_id), kind_(kind) {}

  Kind kind() const noexcept { return kind_; }
  K key() const noexcept { return key_; }

  // Fibonacci-hash bucket-range sharding: the same SplitMix64 finalizer
  // the table itself hashes buckets with (HashTable::bucket_index), so
  // when the sharded meta-engine takes the high bits each shard owns a
  // contiguous range of the hashed-bucket space. Find/Insert/Remove on the
  // same key always agree, and per-key state lives on exactly one shard.
  std::uint64_t shard_key() const noexcept override {
    return util::mix64(static_cast<std::uint64_t>(key_));
  }

  // Parallel-combining delegation (core/delegation.hpp): partition the
  // hashed-bucket space into four contiguous ranges (top two bits of the
  // same Fibonacci hash shard_key uses). Operations in different ranges
  // touch disjoint buckets, so delegated groups speculate side by side
  // without true data conflicts; the ranges nest inside shard ranges, so
  // sharding composes with delegation. (Inserts still share the
  // table-list head — HTM detects that, and the ConflictGraph demotes the
  // pairing if it aborts too often; see ht_seed_commutes below.)
  bool delegate_keyed() const override { return true; }
  std::uint64_t delegate_key() const override {
    return util::mix64(static_cast<std::uint64_t>(key_)) >> 62;
  }

  // Synthetic critical-section work; see EXPERIMENTS.md. Hash-table
  // combining does not eliminate operations, so batches pay per-op work —
  // the batch still amortizes transactions and lock acquisitions.
  void set_work(std::uint32_t spins) noexcept { work_ = spins; }

  // Emulated mid-operation preemption (WorkloadSpec::cs_preempt): yield
  // after the operation body while the enclosing transaction or lock is
  // still open, so operations genuinely overlap in time even when threads
  // outnumber cores.
  void set_preempt(bool on) noexcept { preempt_ = on; }

 protected:
  void pay_work() const noexcept {
    util::spin_for(work_);
    if (preempt_) std::this_thread::yield();
  }

 public:

  // Combiner batching shared by all hash-table ops.
  std::size_t run_multi(Table& ds, std::span<Op*> ops) override {
    // Put inserts first so they can be chained into one insert_n call.
    auto* begin = ops.data();
    auto* end = begin + ops.size();
    auto* mid = std::partition(begin, end, [](Op* o) {
      return static_cast<HtOpBase*>(o)->kind() == Kind::Insert;
    });
    const std::size_t num_inserts = static_cast<std::size_t>(mid - begin);
    const std::size_t k = std::min(ops.size(), kHtMaxBatch);

    const std::size_t insert_count = std::min(num_inserts, k);
    if (insert_count > 0) {
      std::pair<K, V> kvs[kHtMaxBatch];
      bool results[kHtMaxBatch];
      for (std::size_t i = 0; i < insert_count; ++i) {
        auto* op = static_cast<HtOpBase*>(ops[i]);
        kvs[i] = {op->key_, op->value_};
      }
      ds.insert_n(std::span<const std::pair<K, V>>(kvs, insert_count),
                  std::span<bool>(results, insert_count));
      for (std::size_t i = 0; i < insert_count; ++i) {
        static_cast<HtOpBase*>(ops[i])->bool_result_ = results[i];
        static_cast<HtOpBase*>(ops[i])->pay_work();
      }
    }
    for (std::size_t i = insert_count; i < k; ++i) ops[i]->run_seq(ds);
    return k;
  }

 protected:
  Kind kind_;
  K key_{};
  V value_{};
  bool bool_result_ = false;
  std::uint32_t work_ = 0;
  bool preempt_ = false;
  std::optional<V> find_result_;
};

template <htm::detail::TxValue K, htm::detail::TxValue V>
class HtFindOp final : public HtOpBase<K, V> {
 public:
  using Base = HtOpBase<K, V>;
  HtFindOp() : Base(Base::Kind::Find, kHtReadWriteClass) {}

  void set(K key) noexcept { this->key_ = key; }

  void run_seq(typename Base::Table& ds) override {
    this->find_result_ = ds.find(this->key_);
    this->pay_work();
  }

  const std::optional<V>& result() const noexcept {
    return this->find_result_;
  }
};

template <htm::detail::TxValue K, htm::detail::TxValue V>
class HtInsertOp final : public HtOpBase<K, V> {
 public:
  using Base = HtOpBase<K, V>;
  HtInsertOp() : Base(Base::Kind::Insert, kHtInsertClass) {}

  void set(K key, V value) noexcept {
    this->key_ = key;
    this->value_ = value;
  }

  void run_seq(typename Base::Table& ds) override {
    this->bool_result_ = ds.insert(this->key_, this->value_);
    this->pay_work();
  }

  // True iff the key was newly inserted (false: value updated in place).
  bool result() const noexcept { return this->bool_result_; }
};

template <htm::detail::TxValue K, htm::detail::TxValue V>
class HtRemoveOp final : public HtOpBase<K, V> {
 public:
  using Base = HtOpBase<K, V>;
  HtRemoveOp() : Base(Base::Kind::Remove, kHtReadWriteClass) {}

  void set(K key) noexcept { this->key_ = key; }

  void run_seq(typename Base::Table& ds) override {
    this->bool_result_ = ds.remove(this->key_);
    this->pay_work();
  }

  bool result() const noexcept { return this->bool_result_; }
};

// The paper's HCF configuration for the hash table: Find/Remove TLE-like on
// array 0, Insert with all four phases on array 1.
inline std::vector<core::ClassConfig> ht_paper_config(
    int tle_budget = core::kDefaultHtmBudget) {
  return {
      core::ClassConfig{0, core::PhasePolicy::tle_like(tle_budget)},
      core::ClassConfig{1, core::PhasePolicy::paper_default()},
  };
}

inline constexpr std::size_t kHtNumArrays = 2;

// ht_paper_config plus parallel combining: both classes delegate disjoint
// key-range groups to waiting clients (PhasePolicy::delegate). Find/Remove
// keeps its TLE-like shape — it rarely announces, so it rarely combines,
// but when a read-mostly batch does form its groups are delegable too.
inline std::vector<core::ClassConfig> ht_delegate_config(
    int tle_budget = core::kDefaultHtmBudget) {
  auto classes = ht_paper_config(tle_budget);
  for (auto& cc : classes) cc.policy.delegate = true;
  return classes;
}

// Seeds the engine's ConflictGraph for the hash table. Seeding (a, b)
// asserts "class-a and class-b operations under *different* delegate keys
// do not conflict" — here the delegate-key ranges are disjoint bucket
// ranges, so every class pairing qualifies: Find/Remove (class 0) and
// Insert (class 1) in different ranges touch different buckets. Inserts do
// share the table-list head, but that is a profitability question, not a
// correctness one: HTM conflict detection still serializes true conflicts,
// and the graph demotes (1,1) online if head contention makes delegated
// insert groups abort past the threshold.
template <typename Engine>
void ht_seed_commutes(Engine& engine) {
  engine.seed_commutes(kHtReadWriteClass, kHtReadWriteClass);
  engine.seed_commutes(kHtReadWriteClass, kHtInsertClass);
  engine.seed_commutes(kHtInsertClass, kHtInsertClass);
}

}  // namespace hcf::adapters
