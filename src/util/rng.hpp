// Small, fast, deterministic PRNGs for workload generation and randomized
// backoff. We avoid <random> engines on hot paths: xoshiro256** is an order
// of magnitude cheaper than mt19937_64 and its statistical quality is more
// than sufficient for key selection.
#pragma once

#include <array>
#include <cstdint>

namespace hcf::util {

// SplitMix64: used to seed other generators (recommended by the xoshiro
// authors) and as a standalone mixer for hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Stateless mixing function usable as a cheap hash.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256**: general-purpose generator; one instance per thread.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  // Uniform integer in [0, bound). Uses the multiply-shift reduction
  // (Lemire); the modulo bias is negligible for our bounds (<< 2^64).
  constexpr std::uint64_t next_bounded(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hcf::util
