// Clang Thread Safety Analysis (TSA) annotation macros.
//
// The HCF correctness argument rests on lock discipline: operations run
// either under the data-structure lock, under lock *subscription* inside a
// transaction, or under the selection lock that grants combiner rights over
// a publication array (DESIGN.md; docs/static_analysis.md maps each
// capability to the invariant it enforces). These macros make the
// discipline compiler-checked: a clang build with
//
//   -Wthread-safety -Werror=thread-safety-analysis
//
// (the `clang-tsa` preset / HCF_TSA=ON) proves REQUIRES/ACQUIRE/RELEASE
// obligations on every call path. Under GCC every macro expands to nothing,
// so non-clang builds are byte-for-byte unaffected.
//
// Conventions in this tree:
//   * Lock types (sync::SpinLock, sync::TxLock, sync::FairTxLock) are
//     CAPABILITY classes; distinct lock *objects* are distinct capabilities,
//     which is how the data lock and the selection lock stay separate even
//     though both are TxLock instances.
//   * subscribe() is ASSERT_SHARED_CAPABILITY: inside a transaction a
//     subscription confers the shared (reader) right — the transaction
//     aborts before it can observe a lock holder's partial state.
//   * NO_THREAD_SAFETY_ANALYSIS is reserved for protocol shapes TSA cannot
//     express (conditional lock retention across function boundaries).
//     Every use must carry an adjacent '// tsa:' justification comment —
//     enforced by tools/lint/hcf_lint.py, rule tsa-escape-justification.
#pragma once

#if defined(__clang__) && !defined(HCF_NO_THREAD_SAFETY_ANNOTATIONS)
#define HCF_TSA_ATTR(x) __attribute__((x))
#else
#define HCF_TSA_ATTR(x)  // no-op off clang
#endif

// A type whose instances are lockable capabilities (mutexes, roles).
#define CAPABILITY(x) HCF_TSA_ATTR(capability(x))

// RAII type that acquires a capability in its constructor and releases it
// in its destructor.
#define SCOPED_CAPABILITY HCF_TSA_ATTR(scoped_lockable)

// Data member readable/writable only while holding the given capability.
#define GUARDED_BY(x) HCF_TSA_ATTR(guarded_by(x))
#define PT_GUARDED_BY(x) HCF_TSA_ATTR(pt_guarded_by(x))

// Function-level capability obligations.
#define REQUIRES(...) HCF_TSA_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  HCF_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) HCF_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) HCF_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) HCF_TSA_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) HCF_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) HCF_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  HCF_TSA_ATTR(try_acquire_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability (anti-deadlock / blocking-wait
// preconditions, e.g. EbrDomain::drain must run outside any guard).
#define EXCLUDES(...) HCF_TSA_ATTR(locks_excluded(__VA_ARGS__))

// Re-states a capability the analysis cannot see being acquired (thread
// identity, protocol-level serialization). The function body is expected to
// verify — or document — the claim; callers gain the capability afterwards.
#define ASSERT_CAPABILITY(x) HCF_TSA_ATTR(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) HCF_TSA_ATTR(assert_shared_capability(x))

// Accessor returning a reference to a capability (lets attribute
// expressions at call sites canonicalize through the accessor).
#define RETURN_CAPABILITY(x) HCF_TSA_ATTR(lock_returned(x))

// Last resort; see header comment for the justification requirement.
#define NO_THREAD_SAFETY_ANALYSIS HCF_TSA_ATTR(no_thread_safety_analysis)
