// Best-effort CPU pinning, mirroring the paper's placement policy (thread i
// and i + cores_per_socket share a core). On machines with fewer CPUs than
// benchmark threads (such as CI containers) pinning wraps around; failures
// are ignored — placement is a performance hint, never a correctness issue.
#pragma once

#include <cstddef>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace hcf::util {

inline unsigned hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

// Pins the calling thread to a CPU derived from `logical_index` using the
// paper's fill-one-socket-first policy. Returns true on success.
inline bool pin_to_cpu(std::size_t logical_index) noexcept {
#if defined(__linux__)
  const unsigned ncpu = hardware_threads();
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(logical_index % ncpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)logical_index;
  return false;
#endif
}

}  // namespace hcf::util
