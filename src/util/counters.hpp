// Lightweight per-thread event counters. A Counter owns one cache line per
// thread slot; increments are plain (relaxed) stores to the caller's own
// slot, and reads aggregate across slots. Used for all simulator and engine
// statistics so that instrumentation does not perturb the contention being
// measured.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "util/cacheline.hpp"
#include "util/thread_id.hpp"

namespace hcf::util {

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) noexcept {
    auto& slot = slots_[this_thread_id()].value;
    slot.store(slot.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  }

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : slots_) sum += s.value.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (auto& s : slots_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<CacheAligned<std::atomic<std::uint64_t>>, kMaxThreads> slots_{};
};

// A named bundle of counters with snapshot/delta support, for reporting
// per-measurement-interval statistics.
struct CounterSnapshot {
  std::uint64_t value = 0;
};

}  // namespace hcf::util
