// Cache-line alignment helpers used across the library to avoid false
// sharing between per-thread slots and hot shared words.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace hcf::util {

// std::hardware_destructive_interference_size is 64 on the x86 targets we
// support; pin it so layouts are stable across toolchains.
inline constexpr std::size_t kCacheLineSize = 64;

// Wraps a value so that it occupies (at least) one full cache line.
// Use for per-thread slots laid out in arrays.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  CacheAligned() = default;
  template <typename... Args>
  explicit CacheAligned(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(CacheAligned<int>) == kCacheLineSize);
static_assert(sizeof(CacheAligned<int>) == kCacheLineSize);

// Read-only prefetch hint (no-op where unsupported). Used by combiners to
// pull selected operation descriptors toward the core before applying them.
inline void prefetch_ro(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace hcf::util
