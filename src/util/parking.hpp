// Kernel-assisted parking: the third tier of the wait hierarchy
// (DESIGN.md §12). Every wait site in the tree steps through
//
//   spin (bounded, doubling pause)  ->  yield  ->  park (this file)
//
// under a per-class WaitPolicy knob. Parking trades one syscall for not
// occupying a run-queue slot — on the oversubscribed hosts this repo
// actually measures on (1–2 cores running 8–32 threads), that is the
// difference between the lock holder / combiner getting the CPU
// immediately and it being time-sliced against a crowd of yield-looping
// waiters.
//
// The primitive is a 4-byte futex: park(addr, expected) sleeps iff
// *addr == expected, atomically against concurrent wakes — the kernel
// re-checks the word under its own bucket lock, which is what closes the
// lost-wakeup window that plain "check, then sleep" would have. On Linux
// this is SYS_futex; elsewhere (or with -DHCF_NO_FUTEX=ON, the CI
// portability job) a small global parking lot built on
// std::atomic::wait/notify provides the same contract with possible extra
// spurious wakes, which every call site tolerates by re-checking its
// predicate in a loop.
//
// Nothing in this file may be reached from inside an htm::attempt body
// (lint rules tx-blocking-call and sema-tx-transitive-purity): a parked
// transaction would deadlock against the quiescence gate in the
// simulator, and on real HTM the context switch simply aborts the
// transaction. Elided readers subscribe() and abort — they never arrive
// here.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>

#include "telemetry/telemetry.hpp"
#include "util/backoff.hpp"
#include "util/counters.hpp"

#if defined(__linux__) && !defined(HCF_NO_FUTEX)
#define HCF_HAS_FUTEX 1
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace hcf::util {

// How a wait site behaves once its spin tier is exhausted. Per operation
// class via core::PhasePolicy::wait; SpinYield is the default everywhere
// (parking costs a syscall round-trip that low-thread-count runs never
// amortize).
enum class WaitPolicy : std::uint8_t {
  SpinOnly = 0,   // keep re-reading with the capped pause; never deschedule
  SpinYield = 1,  // after the spin tier, sched_yield between re-reads
  SpinPark = 2,   // after spinning and a few yields, futex-sleep on the word
};

inline const char* to_string(WaitPolicy p) noexcept {
  switch (p) {
    case WaitPolicy::SpinOnly: return "spin-only";
    case WaitPolicy::SpinYield: return "spin-yield";
    case WaitPolicy::SpinPark: return "spin-park";
  }
  return "?";
}

// Why park() returned.
enum class ParkResult : std::uint8_t {
  Woken = 0,     // the watched word changed value
  Spurious = 1,  // kernel returned but the word still holds `expected`
};

// Global parking counters (always-on, cache-line-sharded like every other
// util::Counter): parks that actually reached the kernel wait, wake calls
// that issued a syscall, parks that returned with the word unchanged, and
// sched_yield calls from the yield tier (the oversubscription signal the
// adaptive wait-policy controller watches — a high yields-per-op rate means
// waiters are burning quanta that the combiner needs).
struct ParkStats {
  Counter parks;
  Counter wakes;
  Counter spurious_wakes;
  Counter yields;

  void reset() noexcept {
    parks.reset();
    wakes.reset();
    spurious_wakes.reset();
    yields.reset();
  }
};

inline ParkStats& park_stats() noexcept {
  static ParkStats stats;
  return stats;
}

namespace detail {

#if defined(HCF_HAS_FUTEX)

inline void futex_wait(const void* addr, std::uint32_t expected) noexcept {
  // EAGAIN (word already changed) and EINTR (signal) both just return;
  // callers re-check their predicate.
  syscall(SYS_futex, const_cast<void*>(addr), FUTEX_WAIT_PRIVATE, expected,
          nullptr, nullptr, 0);
}

inline void futex_wake(const void* addr, int count) noexcept {
  syscall(SYS_futex, const_cast<void*>(addr), FUTEX_WAKE_PRIVATE, count,
          nullptr, nullptr, 0);
}

#else  // portable fallback: a hashed parking lot over atomic generations

// One generation counter per bucket; park waits on the generation, wake
// bumps it and notifies. Collisions across unrelated words sharing a
// bucket only cause spurious wakes — the contract already allows them.
inline constexpr std::size_t kParkingBuckets = 64;

struct ParkingLot {
  std::atomic<std::uint32_t> gen[kParkingBuckets];
};

inline ParkingLot& parking_lot() noexcept {
  static ParkingLot lot{};
  return lot;
}

inline std::size_t bucket_of(const void* addr) noexcept {
  auto x = reinterpret_cast<std::uintptr_t>(addr);
  x ^= x >> 7;  // drop alignment zeros, then Fibonacci-mix
  return static_cast<std::size_t>((x * 0x9e3779b97f4a7c15ULL) >> 58) &
         (kParkingBuckets - 1);
}

template <typename Reload>
inline void futex_wait_with(const void* addr, std::uint32_t expected,
                            Reload&& reload) noexcept {
  auto& gen = parking_lot().gen[bucket_of(addr)];
  const std::uint32_t g = gen.load(std::memory_order_acquire);
  // Re-check after reading the generation: a waker bumps the generation
  // only after changing the word, so if the word still matches, any
  // subsequent wake bumps past `g` and wait() returns.
  if (reload() != expected) return;
  gen.wait(g, std::memory_order_acquire);
}

inline void futex_wake(const void* addr, int /*count*/) noexcept {
  auto& gen = parking_lot().gen[bucket_of(addr)];
  gen.fetch_add(1, std::memory_order_release);
  gen.notify_all();
}

#endif  // HCF_HAS_FUTEX

template <typename Reload>
inline ParkResult park_impl(const void* addr, std::uint32_t expected,
                            Reload&& reload) noexcept {
  park_stats().parks.add();
  const std::uint64_t t0 = telemetry::park_begin();
#if defined(HCF_HAS_FUTEX)
  futex_wait(addr, expected);
#else
  futex_wait_with(addr, expected, reload);
#endif
  const ParkResult result =
      reload() == expected ? ParkResult::Spurious : ParkResult::Woken;
  if (result == ParkResult::Spurious) park_stats().spurious_wakes.add();
  telemetry::park_end(t0, result == ParkResult::Spurious);
  return result;
}

inline void wake_impl(const void* addr, int count) noexcept {
  park_stats().wakes.add();
  futex_wake(addr, count);
}

}  // namespace detail

// ---- park / wake entry points ---------------------------------------------
// Two word flavours: a plain 4-byte object re-read through std::atomic_ref
// (TxCell words expose their location via wait_address()), and a
// std::atomic<uint32_t> re-read natively. Both must be 4-byte aligned,
// which their natural alignment guarantees.

template <typename T>
  requires(sizeof(T) == 4 && std::is_trivially_copyable_v<T>)
inline ParkResult park(const T* addr, T expected) noexcept {
  std::uint32_t raw;
  std::memcpy(&raw, &expected, sizeof(raw));
  return detail::park_impl(addr, raw, [addr] {
    const T v = std::atomic_ref<T>(*const_cast<T*>(addr))
                    .load(std::memory_order_acquire);
    std::uint32_t w;
    std::memcpy(&w, &v, sizeof(w));
    return w;
  });
}

inline ParkResult park(const std::atomic<std::uint32_t>& word,
                       std::uint32_t expected) noexcept {
  return detail::park_impl(&word, expected, [&word] {
    return word.load(std::memory_order_acquire);
  });
}

template <typename T>
  requires(sizeof(T) == 4 && std::is_trivially_copyable_v<T>)
inline void wake_one(const T* addr) noexcept {
  detail::wake_impl(addr, 1);
}

template <typename T>
  requires(sizeof(T) == 4 && std::is_trivially_copyable_v<T>)
inline void wake_all(const T* addr) noexcept {
  detail::wake_impl(addr, INT32_MAX);
}

inline void wake_one(const std::atomic<std::uint32_t>& word) noexcept {
  detail::wake_impl(&word, 1);
}

inline void wake_all(const std::atomic<std::uint32_t>& word) noexcept {
  detail::wake_impl(&word, INT32_MAX);
}

// ---- the wait-site tuning table -------------------------------------------
// One row per wait-site class; TieredWait below consumes it. This is the
// single home of every spin/yield limit that used to be scattered across
// SpinWait (kSpinLimit = 128) and ProportionalWait (4..256) — per-site
// tuning changes here, never at call sites.

enum class WaitSite : std::uint8_t {
  kLockWord = 0,    // TxLock/FairTxLock word: held -> free transitions
  kTicketQueue,     // FairTxLock serving counter: my-turn waits
  kSelectionLock,   // selection-lock competition / FC waiter loops (epoch)
  kOpStatus,        // Operation::wait_done: waiting on a combiner
  kSpinLockWord,    // util SpinLock internals (never parks)
};

struct WaitTuning {
  std::uint32_t min_pause;          // first spin burst (cpu_relax iterations)
  std::uint32_t max_pause;          // doubling cap for the spin tier
  std::uint32_t yields_before_park; // SpinPark: yields between spin and park
};

inline constexpr WaitTuning kWaitTuning[] = {
    /*kLockWord*/ {1, 128, 8},
    /*kTicketQueue*/ {1, 128, 8},
    /*kSelectionLock*/ {4, 256, 4},
    /*kOpStatus*/ {4, 256, 4},
    /*kSpinLockWord*/ {1, 128, 0},
};

inline constexpr WaitTuning wait_tuning(WaitSite site) noexcept {
  return kWaitTuning[static_cast<std::size_t>(site)];
}

// ---- the tiered waiter ----------------------------------------------------
// The successor of both SpinWait and ProportionalWait: every wait site
// constructs one with its WaitSite row and the operation class's
// WaitPolicy, then loops
//
//     while (!predicate()) {
//       if (waiter.wait()) { <publish waiter intent; park on the word>;
//                            waiter.reset(); }
//     }
//
// wait() runs the spin tier (doubling pause, min..max from the table),
// then the yield tier. It returns true exactly when the policy is
// SpinPark and the yield allotment is spent — the *caller* performs the
// actual park, because what to park on (lock word, ticket counter, epoch,
// status word) and how to publish the waiter bit is site-specific.
class TieredWait {
 public:
  explicit TieredWait(WaitSite site,
                      WaitPolicy policy = WaitPolicy::SpinYield) noexcept
      : tuning_(wait_tuning(site)), policy_(policy),
        pause_(tuning_.min_pause) {}

  // One wait step; true means "park now" (SpinPark only).
  bool wait() noexcept {
    if (pause_ <= tuning_.max_pause) {
      spin_for(pause_);
      pause_ <<= 1;
      return false;
    }
    switch (policy_) {
      case WaitPolicy::SpinOnly:
        spin_for(tuning_.max_pause);
        return false;
      case WaitPolicy::SpinYield:
        park_stats().yields.add();
        std::this_thread::yield();
        return false;
      case WaitPolicy::SpinPark:
        if (yields_ < tuning_.yields_before_park) {
          ++yields_;
          park_stats().yields.add();
          std::this_thread::yield();
          return false;
        }
        return true;
    }
    return false;
  }

  // Back to the spin tier — after the watched state moved, or after a park
  // returned (the condition likely changed; re-spin briefly before the
  // next syscall).
  void reset() noexcept {
    pause_ = tuning_.min_pause;
    yields_ = 0;
  }

  WaitPolicy policy() const noexcept { return policy_; }

 private:
  WaitTuning tuning_;
  WaitPolicy policy_;
  std::uint32_t pause_;
  std::uint32_t yields_ = 0;
};

// ---- parkable epoch -------------------------------------------------------
// Eventcount over a 32-bit counter: the publication array's combined-count
// epoch (DESIGN.md §9.3) made parkable. advance() is the combiner-side
// publish; park_if(seen) is the waiter side, sleeping only while the
// counter still reads `seen`. The waiters counter keeps the common case
// (nobody parked) at one load on the publish path.
class ParkableEpoch {
 public:
  std::uint32_t load() const noexcept {
    return value_.load(std::memory_order_acquire);
  }

  // Publish `delta` retired operations and wake any parked cohort.
  void advance(std::uint32_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_seq_cst);
    wake_waiters();
  }

  // Wake parked waiters without moving the counter. Called after lock
  // releases that end a combining session: a waiter may have parked just
  // after the session's last advance(), watching a value that will now
  // never change — the wake sends it back to the competition loop.
  void wake_waiters() noexcept {
    if (waiters_.load(std::memory_order_seq_cst) != 0) wake_all(value_);
  }

  // Sleep until the counter moves past `seen` (or spuriously). Returns
  // immediately if it already has. The seq_cst pairing with advance()
  // closes the Dekker race: our waiter registration is ordered before the
  // value re-check, the advancer's value bump before its waiter check —
  // one of the two sides must see the other.
  void park_if(std::uint32_t seen) noexcept {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    if (value_.load(std::memory_order_seq_cst) == seen) {
      park(value_, seen);
    }
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint32_t> value_{0};
  std::atomic<std::uint32_t> waiters_{0};
};

}  // namespace hcf::util
