// Sense-reversing centralized barrier for benchmark thread coordination.
// std::barrier exists, but this variant spins (no futex syscalls), which is
// what we want when measuring microsecond-scale phases.
#pragma once

#include <atomic>
#include <cstddef>

#include "util/backoff.hpp"
#include "util/cacheline.hpp"

namespace hcf::util {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties), sense_(false) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  // Blocks until all parties arrive. Safe for repeated use.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) cpu_relax();
    }
  }

  std::size_t parties() const noexcept { return parties_; }

 private:
  std::size_t parties_;
  alignas(kCacheLineSize) std::atomic<std::size_t> remaining_;
  alignas(kCacheLineSize) std::atomic<bool> sense_;
};

}  // namespace hcf::util
