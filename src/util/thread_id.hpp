// Dense thread-id registry. The simulator, publication arrays and EBR all
// need small integer thread ids to index per-thread slots. Ids are assigned
// on first use, cached in a thread_local, and recycled when the thread (or
// an explicit guard) releases them, so tests that spawn thousands of
// short-lived threads do not exhaust the id space.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>

namespace hcf::util {

inline constexpr std::size_t kMaxThreads = 128;

class ThreadRegistry {
 public:
  static ThreadRegistry& instance() noexcept {
    static ThreadRegistry reg;
    return reg;
  }

  // Claims the lowest free id. Aborts (assert) if more than kMaxThreads
  // threads are simultaneously registered.
  std::size_t acquire() noexcept {
    for (;;) {
      for (std::size_t i = 0; i < kMaxThreads; ++i) {
        bool expected = false;
        if (!used_[i].load(std::memory_order_relaxed) &&
            used_[i].compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
          return i;
        }
      }
      assert(false && "thread id space exhausted");
    }
  }

  void release(std::size_t id) noexcept {
    assert(id < kMaxThreads);
    used_[id].store(false, std::memory_order_release);
  }

 private:
  ThreadRegistry() = default;
  std::atomic<bool> used_[kMaxThreads]{};
};

namespace detail {
struct ThreadIdHolder {
  std::size_t id;
  ThreadIdHolder() : id(ThreadRegistry::instance().acquire()) {}
  ~ThreadIdHolder() { ThreadRegistry::instance().release(id); }
};
}  // namespace detail

// Returns this thread's dense id in [0, kMaxThreads). First call registers.
inline std::size_t this_thread_id() noexcept {
  thread_local detail::ThreadIdHolder holder;
  return holder.id;
}

}  // namespace hcf::util
