// Minimal ASCII table formatter for benchmark reports. Every figure bench
// prints its series through this so outputs are uniform and greppable.
#pragma once

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace hcf::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  static std::string num(std::uint64_t v) { return std::to_string(v); }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    print_row(os, header_, widths);
    std::string sep;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      sep += std::string(widths[c] + 2, '-');
      if (c + 1 < widths.size()) sep += "+";
    }
    os << sep << "\n";
    for (const auto& row : rows_) print_row(os, row, widths);
  }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << " " << std::setw(static_cast<int>(widths[c])) << cell << " ";
      if (c + 1 < widths.size()) os << "|";
    }
    os << "\n";
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hcf::util
