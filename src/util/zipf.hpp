// Zipfian key-distribution generator, matching the formulation used in the
// paper's AVL experiment: skew parameter theta in [0, 1), where larger theta
// concentrates probability mass on the *low* end of the key range.
//
// This is the classic Gray et al. / YCSB rejection-free inversion method:
// the CDF is inverted analytically using the zeta normalization constant,
// so each draw costs O(1) after an O(n)-ish setup (the zeta sum is computed
// once per (n, theta) pair and cached by value in the generator).
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

#include "util/rng.hpp"

namespace hcf::util {

class ZipfianGenerator {
 public:
  // Generates values in [0, n). theta == 0 degenerates to uniform-ish
  // (all ranks equally weighted); theta -> 1 is maximally skewed.
  ZipfianGenerator(std::uint64_t n, double theta)
      : n_(n), theta_(theta) {
    assert(n >= 1);
    assert(theta >= 0.0 && theta < 1.0);
    zetan_ = zeta(n, theta);
    zeta2_ = zeta(2, theta);
    half_pow_theta_ = std::pow(0.5, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  // Draws the next rank in [0, n); rank 0 is the most popular.
  std::uint64_t next(Xoshiro256& rng) const {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + half_pow_theta_) return 1;
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

  std::uint64_t range() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

  // Exact probability of rank k (for tests): p(k) = (1/(k+1)^theta) / zetan.
  double probability(std::uint64_t k) const {
    assert(k < n_);
    return 1.0 / (std::pow(static_cast<double>(k + 1), theta_) * zetan_);
  }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double half_pow_theta_;
  double alpha_;
  double eta_;
};

// A shared helper that scatters Zipf ranks over the key space so that
// popular keys are not numerically adjacent (avoids accidental spatial
// locality in trees). Deterministic permutation via a multiplicative hash.
class ScatteredZipf {
 public:
  ScatteredZipf(std::uint64_t n, double theta, bool scatter = true)
      : zipf_(n, theta), scatter_(scatter) {}

  std::uint64_t next(Xoshiro256& rng) const {
    const std::uint64_t rank = zipf_.next(rng);
    if (!scatter_) return rank;
    // Feistel-free cheap permutation: multiply by odd constant mod 2^64,
    // then reduce. This is a bijection over [0, n) only approximately, so
    // we instead use mix64 and fold — collisions just merge hot keys,
    // preserving the skew profile.
    return mix64(rank) % zipf_.range();
  }

  std::uint64_t range() const noexcept { return zipf_.range(); }

 private:
  ZipfianGenerator zipf_;
  bool scatter_;
};

}  // namespace hcf::util
