// Log-bucketed latency histogram: lock-free recording into per-thread
// shards, percentile queries at report time. Used by the driver to report
// operation-latency percentiles next to throughput — combining trades a
// little mean latency for a lot of tail behaviour, which percentiles make
// visible.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>

#include "util/cacheline.hpp"
#include "util/thread_id.hpp"

namespace hcf::util {

// Buckets cover [0, 2^kBuckets) nanoseconds-ish units with one bucket per
// power of two plus kSubBuckets linear sub-buckets each — ~3% resolution.
class LatencyHistogram {
 public:
  static constexpr int kLogBuckets = 36;
  static constexpr int kSubBuckets = 16;
  static constexpr int kTotalBuckets = kLogBuckets * kSubBuckets;

  void record(std::uint64_t value) noexcept {
    auto& shard = shards_[this_thread_id()].value;
    const int idx = bucket_index(value);
    auto& cell = shard.counts[static_cast<std::size_t>(idx)];
    cell.store(cell.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  }

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) {
      for (const auto& c : shard.value.counts) {
        sum += c.load(std::memory_order_relaxed);
      }
    }
    return sum;
  }

  // Returns an upper bound of the bucket containing quantile q (0..1].
  std::uint64_t percentile(double q) const noexcept {
    const std::uint64_t n = total();
    if (n == 0) return 0;
    auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (target == 0) target = 1;
    if (target > n) target = n;
    std::uint64_t seen = 0;
    for (int idx = 0; idx < kTotalBuckets; ++idx) {
      std::uint64_t bucket_sum = 0;
      for (const auto& shard : shards_) {
        bucket_sum += shard.value.counts[static_cast<std::size_t>(idx)].load(
            std::memory_order_relaxed);
      }
      seen += bucket_sum;
      if (seen >= target) return bucket_upper_bound(idx);
    }
    return bucket_upper_bound(kTotalBuckets - 1);
  }

  void reset() noexcept {
    for (auto& shard : shards_) {
      for (auto& c : shard.value.counts) {
        c.store(0, std::memory_order_relaxed);
      }
    }
  }

  // Exposed for tests.
  static int bucket_index(std::uint64_t value) noexcept {
    if (value < kSubBuckets) return static_cast<int>(value);
    const int log = 63 - std::countl_zero(value);
    const auto sub = static_cast<int>(
        (value >> (log - 4)) & (kSubBuckets - 1));  // top 4 bits below MSB
    int idx = (log - 3) * kSubBuckets + sub;
    return idx >= kTotalBuckets ? kTotalBuckets - 1 : idx;
  }

  static std::uint64_t bucket_upper_bound(int idx) noexcept {
    if (idx < kSubBuckets) return static_cast<std::uint64_t>(idx);
    const int log = idx / kSubBuckets + 3;
    const int sub = idx % kSubBuckets;
    return (std::uint64_t{1} << log) +
           (static_cast<std::uint64_t>(sub + 1) << (log - 4)) - 1;
  }

 private:
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kTotalBuckets> counts{};
  };
  std::array<CacheAligned<Shard>, kMaxThreads> shards_{};
};

}  // namespace hcf::util
