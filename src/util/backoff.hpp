// Randomized exponential backoff used between failed HTM attempts and in
// spinlock acquisition loops. Mirrors the standard TLE retry discipline:
// short pauses that grow exponentially with a random jitter, capped.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/thread_id.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace hcf::util {

// Single CPU relax hint.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

// Spin for roughly `iters` relax hints.
inline void spin_for(std::uint64_t iters) noexcept {
  for (std::uint64_t i = 0; i < iters; ++i) cpu_relax();
}

// NOTE: the old SpinWait / ProportionalWait waiters lived here. Both are
// unified behind util::TieredWait (util/parking.hpp), which adds the
// kernel-parking tier and moves their spin/yield limits into the
// per-WaitSite tuning table. This header keeps only the raw pause
// primitives and the jittered inter-attempt backoff.

// Registry of per-site backoff seed bases. Every ExpBackoff call site
// derives its seed here — site base + thread id — so two threads (or two
// sites) never walk the same jitter sequence in lockstep, and the magic
// numbers live in one table instead of being copy-pasted per engine.
enum class BackoffSite : std::uint64_t {
  kPhasePrivate = 0x4cf1,     // shared phase machine, TryPrivate attempts
  kPhaseVisible = 0x4cf2,     // shared phase machine, TryVisible attempts
  kPhaseCombining = 0x4cf3,   // combine core, speculative combining rounds
  kScmSpeculate = 0x5c30,     // SCM free/aux speculation rounds
  kCoreLockMain = 0xc07e,     // CoreLock main TLE loop
  kCoreLockAux = 0xc07f,      // CoreLock retries under the per-core lock
  kLockAcquire = 0x51ed2701,  // TxLock acquisition loop
};

inline std::uint64_t backoff_seed(BackoffSite site) noexcept {
  return static_cast<std::uint64_t>(site) +
         static_cast<std::uint64_t>(this_thread_id());
}

class ExpBackoff {
 public:
  explicit ExpBackoff(std::uint64_t seed = 0x9e3779b97f4a7c15ULL,
                      std::uint64_t min_spins = 4,
                      std::uint64_t max_spins = 1024) noexcept
      : rng_(seed), min_(min_spins), max_(max_spins), current_(min_spins) {}

  // Pause for a random duration in [0, current), then double the window.
  void pause() noexcept {
    spin_for(rng_.next_bounded(current_ + 1));
    if (current_ < max_) current_ *= 2;
  }

  void reset() noexcept { current_ = min_; }

  std::uint64_t window() const noexcept { return current_; }

 private:
  Xoshiro256 rng_;
  std::uint64_t min_;
  std::uint64_t max_;
  std::uint64_t current_;
};

}  // namespace hcf::util
