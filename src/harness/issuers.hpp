// Per-thread operation issuers: own one descriptor of each kind, draw ops
// from a WorkloadSpec, and push them through an engine. Shared by the
// figure benchmarks, examples, and stress tests.
#pragma once

#include <cstdint>

#include "adapters/avl_ops.hpp"
#include "adapters/deque_ops.hpp"
#include "adapters/ht_ops.hpp"
#include "adapters/pq_ops.hpp"
#include "harness/workload.hpp"

namespace hcf::harness {

// ---- Hash table -----------------------------------------------------------

template <typename Engine>
class HtWorker {
 public:
  using K = std::uint64_t;
  using V = std::uint64_t;

  HtWorker(Engine& engine, const WorkloadSpec& spec, std::uint64_t seed)
      : engine_(engine), spec_(spec), keys_(spec, seed) {
    find_.set_work(spec.cs_work);
    insert_.set_work(spec.cs_work);
    remove_.set_work(spec.cs_work);
    find_.set_preempt(spec.cs_preempt);
    insert_.set_preempt(spec.cs_preempt);
    remove_.set_preempt(spec.cs_preempt);
  }

  void operator()() {
    const K key = keys_.next_key();
    const int p = keys_.next_percent();
    if (p < spec_.find_pct) {
      find_.set(key);
      engine_.execute(find_);
    } else if (p < spec_.find_pct + spec_.insert_pct) {
      insert_.set(key, key * 2 + 1);
      engine_.execute(insert_);
    } else {
      remove_.set(key);
      engine_.execute(remove_);
    }
  }

 private:
  Engine& engine_;
  WorkloadSpec spec_;
  KeyGenerator keys_;
  adapters::HtFindOp<K, V> find_;
  adapters::HtInsertOp<K, V> insert_;
  adapters::HtRemoveOp<K, V> remove_;
};

// ---- AVL tree --------------------------------------------------------------

template <typename Engine, typename ContainsOp = adapters::AvlContainsOp<std::uint64_t>,
          typename InsertOp = adapters::AvlInsertOp<std::uint64_t>,
          typename RemoveOp = adapters::AvlRemoveOp<std::uint64_t>>
class AvlWorker {
 public:
  using K = std::uint64_t;

  AvlWorker(Engine& engine, const WorkloadSpec& spec, std::uint64_t seed)
      : engine_(engine), spec_(spec), keys_(spec, seed) {
    contains_.bind_tree(&engine.data());
    insert_.bind_tree(&engine.data());
    remove_.bind_tree(&engine.data());
    contains_.set_work(spec.cs_work);
    insert_.set_work(spec.cs_work);
    remove_.set_work(spec.cs_work);
  }

  void operator()() {
    const K key = keys_.next_key();
    const int p = keys_.next_percent();
    if (p < spec_.find_pct) {
      contains_.set(key);
      engine_.execute(contains_);
    } else if (p < spec_.find_pct + spec_.insert_pct) {
      insert_.set(key);
      engine_.execute(insert_);
    } else {
      remove_.set(key);
      engine_.execute(remove_);
    }
  }

 private:
  Engine& engine_;
  WorkloadSpec spec_;
  KeyGenerator keys_;
  ContainsOp contains_;
  InsertOp insert_;
  RemoveOp remove_;
};

// ---- Priority queue --------------------------------------------------------

template <typename Engine>
class PqWorker {
 public:
  using K = std::uint64_t;

  // insert_pct of operations are Insert, the rest RemoveMin.
  PqWorker(Engine& engine, int insert_pct, std::uint64_t key_range,
           std::uint64_t seed, std::uint32_t cs_work = 0)
      : engine_(engine),
        insert_pct_(insert_pct),
        key_range_(key_range),
        keys_(WorkloadSpec{.key_range = key_range, .prefill = 0}, seed) {
    insert_.set_work(cs_work);
    remove_min_.set_work(cs_work);
  }

  void operator()() {
    if (keys_.next_percent() < insert_pct_) {
      insert_.set(keys_.next_key());
      engine_.execute(insert_);
    } else {
      engine_.execute(remove_min_);
    }
  }

 private:
  Engine& engine_;
  int insert_pct_;
  std::uint64_t key_range_;
  KeyGenerator keys_;
  adapters::PqInsertOp<K> insert_;
  adapters::PqRemoveMinOp<K> remove_min_;
};

// ---- Deque -----------------------------------------------------------------

template <typename Engine>
class DequeWorker {
 public:
  using T = std::uint64_t;

  // Each op picks a side uniformly (or is pinned to one side when
  // `pin_side` >= 0) and then push vs pop with push_pct.
  DequeWorker(Engine& engine, int push_pct, std::uint64_t seed,
              int pin_side = -1)
      : engine_(engine),
        push_pct_(push_pct),
        pin_side_(pin_side),
        keys_(WorkloadSpec{.key_range = 1 << 20, .prefill = 0}, seed) {}

  void operator()() {
    const bool left =
        pin_side_ >= 0 ? pin_side_ == 0 : (keys_.rng().next() & 1) == 0;
    const bool push = keys_.next_percent() < push_pct_;
    if (left) {
      if (push) {
        push_left_.set(keys_.next_key());
        engine_.execute(push_left_);
      } else {
        engine_.execute(pop_left_);
      }
    } else {
      if (push) {
        push_right_.set(keys_.next_key());
        engine_.execute(push_right_);
      } else {
        engine_.execute(pop_right_);
      }
    }
  }

 private:
  Engine& engine_;
  int push_pct_;
  int pin_side_;
  KeyGenerator keys_;
  adapters::PushLeftOp<T> push_left_;
  adapters::PopLeftOp<T> pop_left_;
  adapters::PushRightOp<T> push_right_;
  adapters::PopRightOp<T> pop_right_;
};

}  // namespace hcf::harness
