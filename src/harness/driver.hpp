// Timed multi-thread benchmark driver.
//
// Spawns N worker threads, each repeatedly issuing one operation through an
// engine until the stop flag fires. The driver resets engine + simulator
// statistics after a warm-up interval so every reported number covers
// exactly the measurement window, and pins threads with the paper's
// fill-one-socket-first policy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include <memory>

#include "core/engine_stats.hpp"
#include "mem/pool.hpp"
#include "sim_htm/stats.hpp"
#include "telemetry/telemetry.hpp"
#include "util/affinity.hpp"
#include "util/barrier.hpp"
#include "util/cacheline.hpp"
#include "util/histogram.hpp"

namespace hcf::harness {

namespace detail {

// Engines normally expose one live EngineStats& (stats()); a sharded
// meta-engine owns one per shard and exposes a merged value snapshot
// instead (stats_snapshot()). Preferring the snapshot hook when present
// lets run_timed drive both without constraining either surface.
template <typename Engine>
core::EngineStatsSnapshot capture_stats(Engine& engine) {
  if constexpr (requires { engine.stats_snapshot(); }) {
    return engine.stats_snapshot();
  } else {
    return core::EngineStatsSnapshot::capture(engine.stats());
  }
}

}  // namespace detail

struct RunResult {
  std::uint64_t total_ops = 0;
  double duration_s = 0.0;
  core::EngineStatsSnapshot engine;
  htm::StatsSnapshot htm;
  // Reclamation traffic over the measurement window (mem/pool.hpp): how
  // many retires stayed local vs. crossed pools, and the batching those
  // crossings got (flush CASes, owner drains, refills).
  mem::ReclaimSnapshot reclaim;
  std::uint64_t lock_acquisitions = 0;
  // Operation latency percentiles in nanoseconds; only populated when
  // DriverOptions::measure_latency is set.
  std::uint64_t latency_p50_ns = 0;
  std::uint64_t latency_p99_ns = 0;
  std::uint64_t latency_p999_ns = 0;

  double throughput_mops() const noexcept {
    return duration_s == 0.0
               ? 0.0
               : static_cast<double>(total_ops) / duration_s / 1e6;
  }

  // Lock acquisitions per 1000 operations — the metric behind the paper's
  // Fig. 4 discussion.
  double lock_rate_per_kop() const noexcept {
    return total_ops == 0 ? 0.0
                          : 1000.0 * static_cast<double>(lock_acquisitions) /
                                static_cast<double>(total_ops);
  }

  double aborts_per_op() const noexcept {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(htm.total_aborts()) /
                                static_cast<double>(total_ops);
  }

  // Instrumented shared-memory accesses per operation: the simulator's
  // cache-traffic proxy (DESIGN.md on Fig. 4).
  double shared_accesses_per_op() const noexcept {
    return total_ops == 0
               ? 0.0
               : static_cast<double>(htm.tx_reads + htm.tx_writes +
                                     htm.strong_stores) /
                     static_cast<double>(total_ops);
  }
};

struct DriverOptions {
  std::chrono::milliseconds warmup{50};
  std::chrono::milliseconds duration{300};
  bool pin_threads = true;
  // Yield between operations. With more workers than cores this emulates a
  // loaded machine where threads are frequently preempted mid-wait, which
  // is the arrival pattern that lets announced-operation backlogs form
  // (EXPERIMENTS.md, "oversubscription and combining degree").
  bool yield_every_op = false;
  // Time every operation and report p50/p99/p999 (adds ~2 clock reads per
  // op).
  bool measure_latency = false;
  // > 0: print a progress line to stderr every interval during the
  // measurement window — interval and cumulative throughput, plus
  // cumulative latency percentiles when measure_latency is on.
  std::chrono::milliseconds report_interval{0};
};

// `make_worker(thread_index)` returns a callable invoked repeatedly; each
// call must execute exactly one operation through the engine. `engine`
// only needs reset_stats() / stats() (or stats_snapshot(), see
// detail::capture_stats — how sharded meta-engines register here) /
// lock_acquisitions().
template <typename Engine, typename WorkerFactory>
RunResult run_timed(Engine& engine, std::size_t num_threads,
                    WorkerFactory&& make_worker,
                    const DriverOptions& options = {}) {
  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  std::unique_ptr<util::LatencyHistogram> histogram_owner;
  if (options.measure_latency) {
    histogram_owner = std::make_unique<util::LatencyHistogram>();
  }
  util::LatencyHistogram* histogram = histogram_owner.get();
  util::SpinBarrier barrier(num_threads + 1);
  // Per-thread progress counters, published with relaxed stores each op so
  // the interval reporter can read a running total without joining anyone.
  std::vector<util::CacheAligned<std::atomic<std::uint64_t>>> ops_done(
      num_threads);
  std::vector<std::thread> threads;
  threads.reserve(num_threads);

  for (std::size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      if (options.pin_threads) util::pin_to_cpu(t);
      auto worker = make_worker(t);
      barrier.arrive_and_wait();  // start of warmup
      std::uint64_t count = 0;
      bool counting = false;
      while (!stop.load(std::memory_order_relaxed)) {
        // Telemetry samples a 1-in-N subset of ops even when the full
        // histogram is off, so traces carry latency without per-op clocks.
        const bool sampled = telemetry::should_sample_op();
        if ((histogram != nullptr && counting) || sampled) {
          const auto op_start = std::chrono::steady_clock::now();
          worker();
          const auto op_end = std::chrono::steady_clock::now();
          const auto ns = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(op_end -
                                                                   op_start)
                  .count());
          if (histogram != nullptr && counting) histogram->record(ns);
          if (sampled) telemetry::op_latency(ns);
        } else {
          worker();
        }
        if (options.yield_every_op) std::this_thread::yield();
        if (counting) {
          ops_done[t].value.store(++count, std::memory_order_relaxed);
        } else if (measuring.load(std::memory_order_relaxed)) {
          counting = true;  // measurement window opened
        }
      }
    });
  }

  barrier.arrive_and_wait();
  std::this_thread::sleep_for(options.warmup);

  engine.reset_stats();
  htm::stats().reset();
  const auto base_htm = htm::StatsSnapshot::capture();
  const auto base_engine = detail::capture_stats(engine);
  const auto base_reclaim = mem::ReclaimSnapshot::capture();
  const auto start = std::chrono::steady_clock::now();
  measuring.store(true, std::memory_order_relaxed);

  auto running_total = [&ops_done] {
    std::uint64_t sum = 0;
    for (const auto& slot : ops_done) {
      sum += slot.value.load(std::memory_order_relaxed);
    }
    return sum;
  };

  if (options.report_interval.count() > 0) {
    const auto deadline = start + options.duration;
    auto next = start + options.report_interval;
    std::uint64_t prev_total = 0;
    int tick = 0;
    while (next < deadline) {
      std::this_thread::sleep_until(next);
      const double elapsed_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const std::uint64_t total = running_total();
      const double interval_s =
          std::chrono::duration<double>(options.report_interval).count();
      std::fprintf(stderr,
                   "[interval %d] t=%.1fs ops=%llu (+%llu, %.2f Mops/s)",
                   ++tick, elapsed_s,
                   static_cast<unsigned long long>(total),
                   static_cast<unsigned long long>(total - prev_total),
                   static_cast<double>(total - prev_total) / interval_s /
                       1e6);
      if (histogram != nullptr) {
        std::fprintf(
            stderr, " p50=%lluns p99=%lluns",
            static_cast<unsigned long long>(histogram->percentile(0.50)),
            static_cast<unsigned long long>(histogram->percentile(0.99)));
      }
      std::fprintf(stderr, "\n");
      prev_total = total;
      next += options.report_interval;
    }
    std::this_thread::sleep_until(deadline);
  } else {
    std::this_thread::sleep_for(options.duration);
  }

  stop.store(true, std::memory_order_relaxed);
  const auto end = std::chrono::steady_clock::now();
  for (auto& th : threads) th.join();

  RunResult result;
  result.duration_s =
      std::chrono::duration<double>(end - start).count();
  result.total_ops = running_total();
  result.engine = detail::capture_stats(engine).delta_since(base_engine);
  result.htm = htm::StatsSnapshot::capture().delta_since(base_htm);
  result.reclaim = mem::ReclaimSnapshot::capture().delta_since(base_reclaim);
  result.lock_acquisitions = engine.lock_acquisitions();
  if (histogram != nullptr) {
    result.latency_p50_ns = histogram->percentile(0.50);
    result.latency_p99_ns = histogram->percentile(0.99);
    result.latency_p999_ns = histogram->percentile(0.999);
  }
  return result;
}

}  // namespace hcf::harness
