// A small linearizability checker (Wing & Gong style exhaustive search with
// memoization) and a concurrent history recorder.
//
// Usage pattern (see tests/linearizability_test.cpp):
//   * threads record each operation with invoke/response timestamps drawn
//     from one global atomic counter (so o1 really-precedes o2 iff
//     o1.response_seq < o2.invoke_seq);
//   * histories are collected in *rounds* separated by barriers (a few ops
//     per thread per round), keeping each search window small;
//   * the checker threads the set of possible abstract states from round
//     to round, so the full run is validated even though each window is
//     checked independently.
//
// The sequential specification is a Model:
//
//   struct Model {
//     using State = ...;   // regular + hashable via StateHash
//     using Op = ...;      // operation descriptor incl. observed result
//     // Applies op to state; returns false if the observed result is
//     // impossible from this state (candidate linearization rejected).
//     static bool apply(State& state, const Op& op);
//   };
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

namespace hcf::harness {

// Global sequence source for invoke/response stamps.
class HistoryClock {
 public:
  std::uint64_t tick() noexcept {
    return counter_.fetch_add(1, std::memory_order_acq_rel);
  }
  void reset() noexcept { counter_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> counter_{0};
};

template <typename Op>
struct TimedOp {
  std::uint64_t invoke = 0;
  std::uint64_t response = 0;
  Op op{};
};

// Records one thread's operations; merge() combines threads for checking.
template <typename Op>
class HistoryRecorder {
 public:
  explicit HistoryRecorder(HistoryClock& clock) : clock_(&clock) {}

  // Call around each operation:
  std::uint64_t invoke() { return clock_->tick(); }
  void response(std::uint64_t invoke_seq, Op op) {
    ops_.push_back({invoke_seq, clock_->tick(), std::move(op)});
  }

  std::vector<TimedOp<Op>>& ops() noexcept { return ops_; }
  void clear() { ops_.clear(); }

 private:
  HistoryClock* clock_;
  std::vector<TimedOp<Op>> ops_;
};

template <typename Op>
std::vector<TimedOp<Op>> merge_histories(
    std::vector<std::vector<TimedOp<Op>>> threads) {
  std::vector<TimedOp<Op>> all;
  for (auto& t : threads) {
    all.insert(all.end(), t.begin(), t.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TimedOp<Op>& a, const TimedOp<Op>& b) {
              return a.invoke < b.invoke;
            });
  return all;
}

// Checks one window (up to 64 operations) against a Model, starting from
// any state in `initial_states`. Returns the set of states a valid
// linearization can end in; empty => NOT linearizable from those states.
template <typename Model>
class LinearizabilityChecker {
 public:
  using State = typename Model::State;
  using Op = typename Model::Op;

  static std::set<State> check_window(const std::vector<TimedOp<Op>>& window,
                                      const std::set<State>& initial_states) {
    std::set<State> finals;
    if (window.size() > 64) return finals;  // caller must keep windows small
    for (const State& init : initial_states) {
      Search search(window);
      search.run(init, 0);
      finals.insert(search.finals.begin(), search.finals.end());
    }
    return finals;
  }

 private:
  struct Search {
    explicit Search(const std::vector<TimedOp<Op>>& w) : window(w) {}

    const std::vector<TimedOp<Op>>& window;
    std::set<State> finals;
    // Memo of (done-mask, state) pairs already explored (dead or alive);
    // exploring them again cannot add new final states.
    std::set<std::pair<std::uint64_t, State>> visited;

    void run(const State& state, std::uint64_t done_mask) {
      if (done_mask + 1 == (std::uint64_t{1} << window.size()) ||
          (window.size() == 64 && done_mask == ~std::uint64_t{0})) {
        finals.insert(state);
        return;
      }
      if (!visited.insert({done_mask, state}).second) return;

      // An undone op may linearize next iff no other undone op's response
      // precedes its invocation (it is not strictly after anything undone).
      std::uint64_t min_response = ~std::uint64_t{0};
      for (std::size_t i = 0; i < window.size(); ++i) {
        if (done_mask & (std::uint64_t{1} << i)) continue;
        min_response = std::min(min_response, window[i].response);
      }
      for (std::size_t i = 0; i < window.size(); ++i) {
        const auto bit = std::uint64_t{1} << i;
        if (done_mask & bit) continue;
        if (window[i].invoke > min_response) continue;  // strictly after
        State next = state;
        if (!Model::apply(next, window[i].op)) continue;
        run(next, done_mask | bit);
      }
    }
  };
};

// Convenience: check a full history split into quiescent rounds (the caller
// guarantees rounds were separated by barriers, i.e. no op of round r+1
// invoked before every op of round r responded). Returns true iff every
// round is linearizable, threading state sets between rounds.
template <typename Model>
bool check_rounds(
    const std::vector<std::vector<TimedOp<typename Model::Op>>>& rounds,
    typename Model::State initial) {
  std::set<typename Model::State> states{std::move(initial)};
  for (const auto& round : rounds) {
    states = LinearizabilityChecker<Model>::check_window(round, states);
    if (states.empty()) return false;
  }
  return true;
}

}  // namespace hcf::harness
