// Workload specification shared by benchmarks and stress tests: an
// operation mix over a key range with uniform or Zipfian key selection,
// mirroring the paper's experimental setup (§3.2-§3.4).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>

#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace hcf::harness {

enum class KeyDist { Uniform, Zipfian };

struct WorkloadSpec {
  // Percentages in [0, 100]; the remainder after find is split between
  // insert and remove by the caller's construction.
  int find_pct = 100;
  int insert_pct = 0;
  int remove_pct = 0;

  std::uint64_t key_range = 16 * 1024;
  KeyDist dist = KeyDist::Uniform;
  double zipf_theta = 0.0;

  // Number of distinct keys inserted before measurement (the paper
  // prefills to half the key range).
  std::uint64_t prefill = 8 * 1024;

  // Synthetic critical-section work per operation (spin iterations inside
  // the transaction / lock). 0 reproduces the paper's parameters verbatim;
  // nonzero widens conflict windows to reach the paper's contention regime
  // on machines with few cores (EXPERIMENTS.md, "contention amplification").
  std::uint32_t cs_work = 0;

  // Emulated mid-operation preemption: yield the CPU after the operation
  // body while its transaction (or lock) is still open, modeling a loaded
  // machine where threads outnumber cores and operations are routinely
  // descheduled in flight. On few-core hosts this is what creates temporal
  // overlap between transactions at all — without it two transactions
  // almost never coexist, so conflict rates stay near zero no matter how
  // much cs_work widens the window (EXPERIMENTS.md, "preemption
  // amplification"). Off by default; every figure's paper-parameters panel
  // is unaffected.
  bool cs_preempt = false;

  // The paper's workload naming: N% find, rest split evenly.
  static WorkloadSpec reads(int find_pct, std::uint64_t key_range,
                            KeyDist dist = KeyDist::Uniform,
                            double theta = 0.0) {
    assert(find_pct >= 0 && find_pct <= 100);
    WorkloadSpec spec;
    spec.find_pct = find_pct;
    spec.insert_pct = (100 - find_pct) / 2;
    spec.remove_pct = 100 - find_pct - spec.insert_pct;
    spec.key_range = key_range;
    spec.prefill = key_range / 2;
    spec.dist = dist;
    spec.zipf_theta = theta;
    return spec;
  }

  std::string label() const {
    std::string s = std::to_string(find_pct) + "f/" +
                    std::to_string(insert_pct) + "i/" +
                    std::to_string(remove_pct) + "r";
    if (dist == KeyDist::Zipfian) {
      s += " zipf(" + std::to_string(zipf_theta).substr(0, 4) + ")";
    }
    if (cs_work != 0) s += " work=" + std::to_string(cs_work);
    if (cs_preempt) s += " preempt";
    return s;
  }
};

// Per-thread key generator for a spec. Construction is cheap enough to do
// once per worker thread.
class KeyGenerator {
 public:
  KeyGenerator(const WorkloadSpec& spec, std::uint64_t seed)
      : rng_(seed), range_(spec.key_range) {
    if (spec.dist == KeyDist::Zipfian) {
      zipf_ = std::make_unique<util::ZipfianGenerator>(spec.key_range,
                                                       spec.zipf_theta);
    }
  }

  std::uint64_t next_key() {
    if (zipf_ != nullptr) return zipf_->next(rng_);
    return rng_.next_bounded(range_);
  }

  // Uniform draw in [0, 100) for op-mix selection.
  int next_percent() { return static_cast<int>(rng_.next_bounded(100)); }

  util::Xoshiro256& rng() noexcept { return rng_; }

 private:
  util::Xoshiro256 rng_;
  std::uint64_t range_;
  std::unique_ptr<util::ZipfianGenerator> zipf_;
};

}  // namespace hcf::harness
