// Machine-readable benchmark results: the "hcf-bench-v1" JSON schema.
//
// Every figure/ablation binary can emit its measurements through JsonReport
// (bench_util.hpp wires it to --json=FILE); tools/perflab/run.py collects
// the files into BENCH_<name>.json at the repo root and compare.py diffs
// two collections with noise-aware thresholds. The schema is versioned so
// downstream tooling can reject files it does not understand, and the field
// set mirrors what the paper's figures are read from: throughput, phase
// breakdown (Fig. 3), combining degree (Fig. 4), abort counts, and latency
// percentiles.
//
// Output is deterministic for a given row set (fixed field order, fixed
// float formatting, no timestamps), which is what lets tests golden-file
// it. Host details are injected via HostInfo so tests can pin them.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/driver.hpp"
#include "sim_htm/abort.hpp"
#include "telemetry/telemetry.hpp"

namespace hcf::harness {

inline constexpr const char* kBenchSchema = "hcf-bench-v1";

struct HostInfo {
  std::string os = "unknown";
  unsigned hardware_threads = 0;
  std::string sanitizer = "none";
  bool telemetry_compiled = false;

  static HostInfo detect() {
    HostInfo h;
#if defined(__linux__)
    h.os = "linux";
#elif defined(__APPLE__)
    h.os = "darwin";
#endif
    h.hardware_threads = std::thread::hardware_concurrency();
#if defined(HCF_TSAN)
    h.sanitizer = "thread";
#elif defined(__SANITIZE_ADDRESS__)
    h.sanitizer = "address";
#endif
    h.telemetry_compiled = telemetry::kCompiledIn;
    return h;
  }

  // Fixed values for byte-exact golden-file tests.
  static HostInfo fixed_for_tests() {
    return HostInfo{"testhost", 4, "none", true};
  }
};

namespace detail {

inline void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

// Locale-independent fixed formatting so output is reproducible.
inline std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

}  // namespace detail

// One measured configuration: a (workload, engine, threads, cs_work) cell
// plus everything RunResult knows about it.
struct ReportRow {
  std::string workload;
  std::string engine;
  std::size_t threads = 0;
  std::uint32_t cs_work = 0;
  RunResult result;
};

class JsonReport {
 public:
  explicit JsonReport(std::string bench, HostInfo host = HostInfo::detect())
      : bench_(std::move(bench)), host_(std::move(host)) {}

  void add_row(std::string workload, std::string engine, std::size_t threads,
               std::uint32_t cs_work, const RunResult& result) {
    rows_.push_back(ReportRow{std::move(workload), std::move(engine), threads,
                              cs_work, result});
  }

  std::size_t size() const noexcept { return rows_.size(); }
  const std::string& bench() const noexcept { return bench_; }

  void write(std::ostream& os) const {
    os << "{\n";
    os << "  \"schema\": \"" << kBenchSchema << "\",\n";
    os << "  \"bench\": \"";
    detail::json_escape(os, bench_);
    os << "\",\n";
    os << "  \"host\": {\"os\": \"";
    detail::json_escape(os, host_.os);
    os << "\", \"hardware_threads\": " << host_.hardware_threads
       << ", \"sanitizer\": \"";
    detail::json_escape(os, host_.sanitizer);
    os << "\", \"telemetry\": "
       << (host_.telemetry_compiled ? "true" : "false")
       << ", \"sim_htm\": true},\n";
    os << "  \"results\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n");
      write_row(os, rows_[i]);
    }
    os << "\n  ]\n}\n";
  }

  // Returns false (and prints to stderr) if the file cannot be written.
  bool write_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return false;
    }
    write(out);
    return out.good();
  }

 private:
  static void write_row(std::ostream& os, const ReportRow& row) {
    const RunResult& r = row.result;
    os << "    {\"workload\": \"";
    detail::json_escape(os, row.workload);
    os << "\", \"engine\": \"";
    detail::json_escape(os, row.engine);
    os << "\", \"threads\": " << row.threads
       << ", \"cs_work\": " << row.cs_work << ",\n";
    os << "     \"ops\": " << r.total_ops
       << ", \"duration_s\": " << detail::json_double(r.duration_s)
       << ", \"ops_per_sec\": "
       << detail::json_double(r.throughput_mops() * 1e6) << ",\n";
    os << "     \"phases\": {\"private\": "
       << r.engine.phase_total(core::Phase::Private)
       << ", \"visible\": " << r.engine.phase_total(core::Phase::Visible)
       << ", \"combining\": " << r.engine.phase_total(core::Phase::Combining)
       << ", \"under_lock\": "
       << r.engine.phase_total(core::Phase::UnderLock) << "},\n";
    os << "     \"combining\": {\"sessions\": " << r.engine.combiner_sessions
       << ", \"ops_selected\": " << r.engine.ops_selected
       << ", \"rounds\": " << r.engine.combine_rounds
       << ", \"helped_ops\": " << r.engine.helped_ops << ", \"degree\": "
       << detail::json_double(r.engine.combining_degree()) << "},\n";
    os << "     \"delegation\": {\"groups\": " << r.engine.delegated_groups
       << ", \"ops\": " << r.engine.delegated_ops
       << ", \"delegate_applies\": " << r.engine.delegate_applies
       << ", \"fallbacks\": " << r.engine.delegate_fallbacks
       << ", \"conflict_aborts\": " << r.engine.delegate_conflict_aborts
       << "},\n";
    os << "     \"htm\": {\"starts\": " << r.htm.starts
       << ", \"commits\": " << r.htm.commits
       << ", \"read_only_commits\": " << r.htm.read_only_commits
       << ", \"aborts\": {\"conflict\": "
       << r.htm.aborts[static_cast<int>(htm::AbortCode::Conflict)]
       << ", \"capacity\": "
       << r.htm.aborts[static_cast<int>(htm::AbortCode::Capacity)]
       << ", \"explicit\": "
       << r.htm.aborts[static_cast<int>(htm::AbortCode::Explicit)]
       << ", \"lock_busy\": "
       << r.htm.aborts[static_cast<int>(htm::AbortCode::LockBusy)] << "}},\n";
    os << "     \"reclamation\": {\"local_retires\": "
       << r.reclaim.local_retires
       << ", \"remote_retires\": " << r.reclaim.remote_retires
       << ", \"remote_flushes\": " << r.reclaim.remote_flushes
       << ", \"remote_drains\": " << r.reclaim.remote_drains
       << ", \"drained_blocks\": " << r.reclaim.drained_blocks
       << ", \"batches_sealed\": " << r.reclaim.batches_sealed
       << ", \"pool_refills\": " << r.reclaim.pool_refills << "},\n";
    os << "     \"lock_acquisitions\": " << r.lock_acquisitions
       << ", \"latency_ns\": {\"p50\": " << r.latency_p50_ns
       << ", \"p99\": " << r.latency_p99_ns
       << ", \"p999\": " << r.latency_p999_ns << "}}";
  }

  std::string bench_;
  HostInfo host_;
  std::vector<ReportRow> rows_;
};

}  // namespace hcf::harness
