// Exporters for recorded telemetry: Chrome trace_event JSON (load the file
// in chrome://tracing or https://ui.perfetto.dev) and a compact aggregate
// summary for terminals and logs. Both read the rings through the
// mode-independent snapshot API in telemetry.hpp, so they compile — and
// emit an empty trace/summary — even when telemetry is compiled out.
//
// Not a hot path: exporters run after (or at worst concurrently with) the
// measured region, and snapshotting is wait-free for the recording threads.
#pragma once

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/event.hpp"
#include "telemetry/telemetry.hpp"

namespace hcf::telemetry {

namespace detail {

// Local name tables: telemetry sits below core/ and sim_htm/, so it names
// their enums without including them. Kept in sync with core::Phase and
// htm::AbortCode (telemetry_trace_test pins the correspondence).
inline const char* phase_name(std::uint8_t p) noexcept {
  switch (p) {
    case 0: return "try-private";
    case 1: return "try-visible";
    case 2: return "try-combining";
    case 3: return "combine-under-lock";
  }
  return "phase-?";
}

inline const char* abort_name(std::uint8_t c) noexcept {
  switch (c) {
    case 0: return "none";
    case 1: return "conflict";
    case 2: return "capacity";
    case 3: return "explicit";
    case 4: return "lock-busy";
  }
  return "abort-?";
}

inline void write_ts_us(std::ostream& os, std::uint64_t ts_ns) {
  // trace_event "ts" is microseconds; keep ns resolution as a decimal.
  os << ts_ns / 1000 << '.' << ts_ns % 1000 / 100 << ts_ns % 100 / 10
     << ts_ns % 10;
}

}  // namespace detail

// Aggregate view of everything currently retained in the rings, plus the
// latency percentiles from the sampled-op histogram.
struct TraceSummary {
  // Per-shard rollup (sharded meta-engines tag events with a shard index;
  // indices >= kMaxShardSlots fold into the last slot).
  static constexpr int kMaxShardSlots = 64;

  std::uint64_t by_type[kNumEventTypes] = {};
  std::uint64_t aborts_by_code[16] = {};
  std::uint64_t phase_completions[16] = {};
  std::uint64_t ops_selected = 0;  // summed over combine-begin events
  std::uint64_t ops_delegated = 0;     // summed over delegate events
  std::uint64_t delegated_groups = 0;  // summed over delegate events
  std::uint64_t delegate_applies = 0;    // delegate-apply with code=1
  std::uint64_t delegate_fallbacks = 0;  // delegate-apply with code=0
  std::uint64_t events_by_shard[kMaxShardSlots] = {};  // any tagged event
  std::uint64_t routed_by_shard[kMaxShardSlots] = {};  // shard-route events
  std::uint64_t cross_shard_sweeps = 0;  // all-shard-lock operations begun
  std::uint64_t remote_retire_blocks = 0;  // summed over remote-retire events
  std::uint64_t remote_drain_blocks = 0;   // summed over remote-drain events
  int max_shard = -1;  // highest shard index seen; -1 = nothing sharded
  std::uint64_t events_pushed = 0;
  std::uint64_t events_dropped = 0;
  std::uint64_t latency_samples = 0;
  std::uint64_t latency_p50_ns = 0;
  std::uint64_t latency_p99_ns = 0;
  std::uint64_t latency_p999_ns = 0;
  int threads = 0;

  std::uint64_t count(EventType t) const noexcept {
    return by_type[static_cast<int>(t)];
  }
};

inline TraceSummary collect_summary() {
  TraceSummary s;
  std::vector<std::pair<std::size_t, std::vector<Event>>> per_thread;
  snapshot_all(per_thread);
  s.threads = static_cast<int>(per_thread.size());
  for (const auto& [tid, events] : per_thread) {
    (void)tid;
    for (const Event& e : events) {
      const int t = static_cast<int>(e.type);
      if (t >= 0 && t < kNumEventTypes) ++s.by_type[t];
      if (e.shard != kNoShardId) {
        const int slot = std::min<int>(e.shard, TraceSummary::kMaxShardSlots - 1);
        ++s.events_by_shard[slot];
        if (e.shard > s.max_shard) s.max_shard = e.shard;
      }
      switch (e.type) {
        case EventType::HtmAbort:
          ++s.aborts_by_code[e.code & 0xf];
          break;
        case EventType::PhaseExit:
          if (e.arg != 0) ++s.phase_completions[e.code & 0xf];
          break;
        case EventType::CombineBegin:
          s.ops_selected += e.arg;
          break;
        case EventType::Delegate:
          s.delegated_groups += e.code;
          s.ops_delegated += e.arg;
          break;
        case EventType::DelegateApply:
          if (e.code != 0) {
            ++s.delegate_applies;
          } else {
            ++s.delegate_fallbacks;
          }
          break;
        case EventType::ShardRoute: {
          const int slot = std::min<int>(e.code, TraceSummary::kMaxShardSlots - 1);
          ++s.routed_by_shard[slot];
          if (e.code > s.max_shard) s.max_shard = e.code;
          break;
        }
        case EventType::CrossShardBegin:
          ++s.cross_shard_sweeps;
          break;
        case EventType::RemoteRetire:
          s.remote_retire_blocks += e.arg;
          break;
        case EventType::RemoteDrain:
          s.remote_drain_blocks += e.arg;
          break;
        default:
          break;
      }
    }
  }
  s.events_pushed = total_pushed();
  s.events_dropped = total_dropped();
  s.latency_samples = latency_samples();
  s.latency_p50_ns = latency_percentile(0.50);
  s.latency_p99_ns = latency_percentile(0.99);
  s.latency_p999_ns = latency_percentile(0.999);
  return s;
}

// Human-readable aggregate block, e.g. appended to bench stderr output.
inline void write_summary(std::ostream& os, const TraceSummary& s) {
  os << "[telemetry] events=" << s.events_pushed
     << " dropped=" << s.events_dropped << " threads=" << s.threads << '\n';
  os << "[telemetry] phase completions:";
  for (int p = 0; p < 4; ++p) {
    os << ' ' << detail::phase_name(static_cast<std::uint8_t>(p)) << '='
       << s.phase_completions[p];
  }
  os << '\n';
  os << "[telemetry] htm: commits=" << s.count(EventType::HtmCommit)
     << " aborts=" << s.count(EventType::HtmAbort);
  for (int c = 1; c < 5; ++c) {
    if (s.aborts_by_code[c] == 0) continue;
    os << ' ' << detail::abort_name(static_cast<std::uint8_t>(c)) << '='
       << s.aborts_by_code[c];
  }
  os << '\n';
  os << "[telemetry] combining: sessions="
     << s.count(EventType::CombineBegin)
     << " ops-selected=" << s.ops_selected << " sel-lock-acquires="
     << s.count(EventType::SelLockAcquire) << '\n';
  if (s.delegated_groups != 0 || s.delegate_fallbacks != 0) {
    os << "[telemetry] delegation: groups=" << s.delegated_groups
       << " ops=" << s.ops_delegated
       << " delegate-applies=" << s.delegate_applies
       << " combiner-fallbacks=" << s.delegate_fallbacks << '\n';
  }
  if (s.count(EventType::RemoteRetire) != 0 ||
      s.count(EventType::RemoteDrain) != 0) {
    os << "[telemetry] reclamation: remote-flushes="
       << s.count(EventType::RemoteRetire)
       << " blocks-flushed=" << s.remote_retire_blocks
       << " drains=" << s.count(EventType::RemoteDrain)
       << " blocks-drained=" << s.remote_drain_blocks << '\n';
  }
  if (s.max_shard >= 0) {
    const int shown =
        std::min(s.max_shard, TraceSummary::kMaxShardSlots - 1);
    os << "[telemetry] shards: routed-ops";
    for (int i = 0; i <= shown; ++i) {
      os << " s" << i << '=' << s.routed_by_shard[i];
    }
    os << " cross-shard-sweeps=" << s.cross_shard_sweeps << '\n';
  }
  if (s.latency_samples > 0) {
    os << "[telemetry] op latency (" << s.latency_samples
       << " samples): p50=" << s.latency_p50_ns
       << "ns p99=" << s.latency_p99_ns << "ns p999=" << s.latency_p999_ns
       << "ns\n";
  }
}

inline void write_summary(std::ostream& os) {
  write_summary(os, collect_summary());
}

// Chrome trace_event JSON. Phase/combine/selection-lock events become
// nested "B"/"E" duration slices per thread; HTM commit/abort and latency
// samples become "i" instants. Because the ring keeps only the most recent
// events, an exit whose matching begin was overwritten is skipped (tracked
// per slice kind) so every emitted "E" closes an emitted "B".
inline void write_chrome_trace(std::ostream& os) {
  std::vector<std::pair<std::size_t, std::vector<Event>>> per_thread;
  snapshot_all(per_thread);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](std::size_t tid, const Event& e, char ph,
                  const std::string& name, const std::string& args) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"" << ph << "\",\"pid\":1,\"tid\":" << tid
       << ",\"ts\":";
    detail::write_ts_us(os, e.ts_ns);
    os << ",\"name\":\"" << name << '"';
    if (ph == 'i') os << ",\"s\":\"t\"";
    // Shard-tagged events carry the shard as a slice arg so the viewer
    // can filter one shard's activity.
    std::string full_args = args;
    if (e.shard != kNoShardId) {
      if (!full_args.empty()) full_args += ',';
      full_args += "\"shard\":" + std::to_string(e.shard);
    }
    if (!full_args.empty()) os << ",\"args\":{" << full_args << '}';
    os << '}';
  };
  for (const auto& [tid, events] : per_thread) {
    // Open-slice depth per kind: phases, combine sessions, selection lock,
    // cross-shard sweeps.
    int phase_depth = 0, combine_depth = 0, lock_depth = 0, cross_depth = 0;
    for (const Event& e : events) {
      switch (e.type) {
        case EventType::PhaseEnter:
          ++phase_depth;
          emit(tid, e, 'B', detail::phase_name(e.code), "");
          break;
        case EventType::PhaseExit:
          if (phase_depth == 0) break;  // begin fell off the ring
          --phase_depth;
          emit(tid, e, 'E', detail::phase_name(e.code),
               "\"completed\":" + std::to_string(e.arg));
          break;
        case EventType::CombineBegin:
          ++combine_depth;
          emit(tid, e, 'B', "combine",
               "\"ops_selected\":" + std::to_string(e.arg));
          break;
        case EventType::CombineEnd:
          if (combine_depth == 0) break;
          --combine_depth;
          emit(tid, e, 'E', "combine",
               "\"ops_applied\":" + std::to_string(e.arg));
          break;
        case EventType::SelLockAcquire:
          ++lock_depth;
          emit(tid, e, 'B', "selection-lock", "");
          break;
        case EventType::SelLockRelease:
          if (lock_depth == 0) break;
          --lock_depth;
          emit(tid, e, 'E', "selection-lock", "");
          break;
        case EventType::HtmCommit:
          emit(tid, e, 'i', e.code != 0 ? "htm-commit-ro" : "htm-commit",
               "");
          break;
        case EventType::HtmAbort:
          emit(tid, e, 'i',
               std::string("htm-abort:") + detail::abort_name(e.code), "");
          break;
        case EventType::OpLatency:
          emit(tid, e, 'i', "op-sample",
               "\"latency_ns\":" + std::to_string(e.arg));
          break;
        case EventType::Delegate:
          emit(tid, e, 'i', "delegate",
               "\"groups\":" + std::to_string(e.code) +
                   ",\"ops\":" + std::to_string(e.arg));
          break;
        case EventType::DelegateApply:
          emit(tid, e, 'i',
               e.code != 0 ? "delegate-apply" : "delegate-fallback",
               "\"ops\":" + std::to_string(e.arg));
          break;
        case EventType::CrossShardBegin:
          ++cross_depth;
          emit(tid, e, 'B', "cross-shard",
               "\"shards\":" + std::to_string(e.arg));
          break;
        case EventType::CrossShardEnd:
          if (cross_depth == 0) break;
          --cross_depth;
          emit(tid, e, 'E', "cross-shard", "");
          break;
        case EventType::RemoteRetire:
          emit(tid, e, 'i', "remote-retire-flush",
               "\"owner\":" + std::to_string(e.code) +
                   ",\"blocks\":" + std::to_string(e.arg));
          break;
        case EventType::RemoteDrain:
          emit(tid, e, 'i', "remote-drain",
               "\"blocks\":" + std::to_string(e.arg));
          break;
        // ShardRoute is deliberately not drawn: one instant per routed
        // operation would swamp the timeline; the aggregate summary's
        // per-shard rollup carries that information instead (slices still
        // expose their shard via the args tag above).
        default:
          break;
      }
    }
    // Close any slices left open at snapshot time so the JSON is balanced.
    std::uint64_t end_ts =
        events.empty() ? 0 : events.back().ts_ns;
    Event closer;
    closer.ts_ns = end_ts;
    closer.shard = kNoShardId;
    while (cross_depth-- > 0) emit(tid, closer, 'E', "cross-shard", "");
    while (lock_depth-- > 0) emit(tid, closer, 'E', "selection-lock", "");
    while (combine_depth-- > 0) emit(tid, closer, 'E', "combine", "");
    while (phase_depth-- > 0) emit(tid, closer, 'E', "phase", "");
  }
  os << "],\"otherData\":{\"events_pushed\":" << total_pushed()
     << ",\"events_dropped\":" << total_dropped() << "}}\n";
}

}  // namespace hcf::telemetry
